package main

import (
	"net/http/httptest"
	"testing"
	"time"

	"stopss/internal/broker"
	"stopss/internal/core"
	"stopss/internal/journal"
	"stopss/internal/notify"
	"stopss/internal/ontology"
	"stopss/internal/semantic"
	"stopss/internal/webapp"
	"stopss/internal/workload"
)

// TestLoadDriverEndToEnd runs the workload driver against an in-process
// server — the Figure 2 load path without separate processes.
func TestLoadDriverEndToEnd(t *testing.T) {
	ont, err := ontology.Load(workload.JobsODL, ontology.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(ont.Stage(semantic.FullConfig()))
	b := broker.New(eng, nil)
	ts := httptest.NewServer(webapp.NewServer(b))
	defer ts.Close()

	if err := run(ts.URL, 20, 100, 4, 2003, 0, 0); err != nil {
		t.Fatal(err)
	}
	st := b.Stats()
	if st.Clients != 20 {
		t.Errorf("Clients = %d, want 20", st.Clients)
	}
	if st.Subscriptions != 20 {
		t.Errorf("Subscriptions = %d, want 20", st.Subscriptions)
	}
	if st.Published != 100 {
		t.Errorf("Published = %d, want 100", st.Published)
	}
	if st.Engine.Matches == 0 {
		t.Error("the semantic pipeline produced no matches under load")
	}
}

// TestLoadDriverDurableChurn drives the durable-subscriber churn mode
// against an in-process server with a journal and a real TCP notify
// transport: half the companies subscribe durably, the local endpoint
// flaps every 50ms, and the driver's final resume loop must leave no
// parked notifications behind.
func TestLoadDriverDurableChurn(t *testing.T) {
	ont, err := ontology.Load(workload.JobsODL, ontology.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ne, err := notify.NewEngine(notify.Config{Workers: 4, MaxRetries: 1, Backoff: time.Millisecond},
		notify.NewTCPTransport(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer ne.Close()
	j, err := journal.Open(journal.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	b := broker.New(core.NewEngine(ont.Stage(semantic.FullConfig())), ne)
	b.AttachJournal(j)
	ts := httptest.NewServer(webapp.NewServer(b))
	defer ts.Close()

	if err := run(ts.URL, 10, 120, 4, 2003, 0.5, 50*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	st := b.Stats()
	if st.Durable != 5 {
		t.Fatalf("durable subs = %d, want 5 (frac 0.5 of 10)", st.Durable)
	}
	if st.Journal.Appends == 0 {
		t.Fatal("nothing journaled under load")
	}
	if st.Acked == 0 {
		t.Fatal("no durable delivery ever acknowledged")
	}
	if st.Notify.DeadLetters != 0 {
		t.Fatalf("durable failures dead-lettered instead of parking: %d", st.Notify.DeadLetters)
	}
	// run()'s final resume loop exits only after two quiescent rounds;
	// one more resume pass must therefore replay nothing.
	for _, s := range b.Subscriptions() {
		if !b.Durable(s.ID) {
			continue
		}
		if n, err := b.ResumeDurable(s.Subscriber, s.ID); err != nil || n != 0 {
			t.Errorf("sub %d still owed %d notifications after churn settled (err %v)", s.ID, n, err)
		}
	}
}

func TestLoadDriverBadURL(t *testing.T) {
	if err := run("http://127.0.0.1:1", 1, 1, 1, 1, 0, 0); err == nil {
		t.Error("unreachable server must error")
	}
}
