package main

import (
	"net/http/httptest"
	"testing"

	"stopss/internal/broker"
	"stopss/internal/core"
	"stopss/internal/ontology"
	"stopss/internal/semantic"
	"stopss/internal/webapp"
	"stopss/internal/workload"
)

// TestLoadDriverEndToEnd runs the workload driver against an in-process
// server — the Figure 2 load path without separate processes.
func TestLoadDriverEndToEnd(t *testing.T) {
	ont, err := ontology.Load(workload.JobsODL, ontology.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(ont.Stage(semantic.FullConfig()))
	b := broker.New(eng, nil)
	ts := httptest.NewServer(webapp.NewServer(b))
	defer ts.Close()

	if err := run(ts.URL, 20, 100, 4, 2003); err != nil {
		t.Fatal(err)
	}
	st := b.Stats()
	if st.Clients != 20 {
		t.Errorf("Clients = %d, want 20", st.Clients)
	}
	if st.Subscriptions != 20 {
		t.Errorf("Subscriptions = %d, want 20", st.Subscriptions)
	}
	if st.Published != 100 {
		t.Errorf("Published = %d, want 100", st.Published)
	}
	if st.Engine.Matches == 0 {
		t.Error("the semantic pipeline produced no matches under load")
	}
}

func TestLoadDriverBadURL(t *testing.T) {
	if err := run("http://127.0.0.1:1", 1, 1, 1, 1); err == nil {
		t.Error("unreachable server must error")
	}
}
