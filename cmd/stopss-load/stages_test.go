package main

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

const sampleExposition = `# HELP stopss_stage_match_seconds histogram
# TYPE stopss_stage_match_seconds histogram
stopss_stage_match_seconds_bucket{broker="b1",le="0.001"} 50
stopss_stage_match_seconds_bucket{broker="b1",le="0.01"} 90
stopss_stage_match_seconds_bucket{broker="b1",le="0.1"} 99
stopss_stage_match_seconds_bucket{broker="b1",le="+Inf"} 100
stopss_stage_match_seconds_sum{broker="b1"} 0.42
stopss_stage_match_seconds_count{broker="b1"} 100
# TYPE stopss_stage_publish_to_ack_seconds histogram
stopss_stage_publish_to_ack_seconds_bucket{broker="b1",le="0.5"} 0
stopss_stage_publish_to_ack_seconds_bucket{broker="b1",le="+Inf"} 4
stopss_stage_publish_to_ack_seconds_sum{broker="b1"} 9.1
stopss_stage_publish_to_ack_seconds_count{broker="b1"} 4
# TYPE stopss_trace_spans_total counter
stopss_trace_spans_total{broker="b1"} 7
# TYPE stopss_stage_idle_seconds histogram
stopss_stage_idle_seconds_bucket{broker="b1",le="+Inf"} 0
stopss_stage_idle_seconds_count{broker="b1"} 0
`

func TestParseStageHistograms(t *testing.T) {
	stats, err := parseStageHistograms(strings.NewReader(sampleExposition))
	if err != nil {
		t.Fatal(err)
	}
	// The counter is not a stage; the empty histogram is dropped.
	if len(stats) != 2 {
		t.Fatalf("parsed %d stages, want 2: %+v", len(stats), stats)
	}
	match := stats[0]
	if match.Name != "match" || match.Count != 100 {
		t.Fatalf("first stage = %+v, want match with 100 observations", match)
	}
	// p50: 50th of 100 falls in the first bucket (cum 50 ≥ 50) → 1ms.
	if match.P50 != 0.001 {
		t.Errorf("match p50 = %v, want 0.001", match.P50)
	}
	// p99: 99th falls in the 0.1 bucket (cum 99 ≥ 99).
	if match.P99 != 0.1 {
		t.Errorf("match p99 = %v, want 0.1", match.P99)
	}

	ack := stats[1]
	if ack.Name != "publish_to_ack" {
		t.Fatalf("second stage = %q, want publish_to_ack", ack.Name)
	}
	// All four observations sit past the last finite bound: both
	// quantiles land in the overflow bucket.
	if !math.IsInf(ack.P50, 1) || !math.IsInf(ack.P99, 1) {
		t.Errorf("overflow quantiles = %v/%v, want +Inf", ack.P50, ack.P99)
	}

	var buf bytes.Buffer
	printStageTable(&buf, stats)
	out := buf.String()
	for _, want := range []string{"stage", "match", "publish_to_ack", "1ms", ">500ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("stage table lacks %q:\n%s", want, out)
		}
	}
}

func TestHistQuantileEdges(t *testing.T) {
	if got := histQuantile(nil, nil, 0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
	bounds := []float64{0.001, 0.01, math.Inf(1)}
	cums := []uint64{0, 0, 0}
	if got := histQuantile(bounds, cums, 0.99); got != 0 {
		t.Errorf("zero-count quantile = %v, want 0", got)
	}
	cums = []uint64{1, 1, 1}
	if got := histQuantile(bounds, cums, 0.01); got != 0.001 {
		t.Errorf("single-observation p1 = %v, want first bound", got)
	}
	if got := histQuantile(bounds, cums, 1); got != 0.001 {
		t.Errorf("single-observation p100 = %v, want first bound", got)
	}
}
