package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// subRow is one row of the server's GET /api/v1/subs response
// (broker.SubStat), decoded loosely — only the fields the post-run
// table renders.
type subRow struct {
	ID                uint64 `json:"id"`
	Client            string `json:"client"`
	Durable           bool   `json:"durable"`
	Matched           uint64 `json:"matched"`
	Delivered         uint64 `json:"delivered"`
	Parked            uint64 `json:"parked"`
	Lag               uint64 `json:"lag"`
	LastDeliveryAgeMS int64  `json:"last_delivery_age_ms"`
}

// scrapeSubs fetches the laggiest subscriptions from the server's
// per-subscription accounting endpoint (DESIGN §10).
func scrapeSubs(baseURL string, limit int) (total int, rows []subRow, err error) {
	resp, err := http.Get(fmt.Sprintf("%s/api/v1/subs?limit=%d", baseURL, limit))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, nil, fmt.Errorf("/api/v1/subs: %s", resp.Status)
	}
	var body struct {
		Total int      `json:"total"`
		Subs  []subRow `json:"subs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return 0, nil, err
	}
	return body.Total, body.Subs, nil
}

// printSubsTable renders the post-run laggiest-subscriptions view:
// which subscribers ended the run behind the journal head, and by how
// much. The rows arrive laggiest-first from the server.
func printSubsTable(w io.Writer, total int, rows []subRow) {
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "laggiest subscriptions (%d tracked):\n", total)
	fmt.Fprintf(w, "%-6s %-14s %-7s %10s %10s %8s %8s %12s\n",
		"sub", "client", "durable", "matched", "delivered", "parked", "lag", "last-deliver")
	for _, r := range rows {
		last := "never"
		if r.LastDeliveryAgeMS >= 0 {
			last = (time.Duration(r.LastDeliveryAgeMS) * time.Millisecond).Round(time.Millisecond).String() + " ago"
		}
		fmt.Fprintf(w, "%-6d %-14s %-7v %10d %10d %8d %8d %12s\n",
			r.ID, r.Client, r.Durable, r.Matched, r.Delivered, r.Parked, r.Lag, last)
	}
}
