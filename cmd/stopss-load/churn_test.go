package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestStoreChurnSmall runs the -store-churn scenario end to end at a
// size CI can afford: the invariants (detached count across the
// simulated crash, post-restart fault-ins, bounded pool residency) are
// the same ones the million-subscriber run checks.
func TestStoreChurnSmall(t *testing.T) {
	var out bytes.Buffer
	rep, err := runStoreChurn(&out, t.TempDir(), 3000, 8, 2003)
	if err != nil {
		t.Fatalf("store churn: %v\n%s", err, out.String())
	}
	if rep.Store.Resident > rep.Store.PoolCapacity {
		t.Fatalf("resident %d exceeds pool budget %d", rep.Store.Resident, rep.Store.PoolCapacity)
	}
	if rep.Store.Evictions == 0 || rep.Store.WriteBacks == 0 {
		t.Fatalf("churn never pressured the pool: %+v", rep.Store)
	}
	// 3000 churned, 1000 resumed before the crash, 100 after.
	if rep.Detached != 3000-1000-100 {
		t.Fatalf("detached after run = %d, want 1900", rep.Detached)
	}
	if rep.ResumeP50 <= 0 || rep.ResumeP99 < rep.ResumeP50 {
		t.Fatalf("latency sample broken: p50 %v p99 %v", rep.ResumeP50, rep.ResumeP99)
	}

	var rbuf bytes.Buffer
	printChurnReport(&rbuf, rep)
	for _, want := range []string{"subscribers:", "resume latency:", "crash restart:", "store:", "pool:"} {
		if !strings.Contains(rbuf.String(), want) {
			t.Fatalf("report lacks %q:\n%s", want, rbuf.String())
		}
	}
}
