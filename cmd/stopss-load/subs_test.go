package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestScrapeAndPrintSubs(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/api/v1/subs" || r.URL.Query().Get("limit") != "5" {
			t.Errorf("unexpected request %s?%s", r.URL.Path, r.URL.RawQuery)
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"total":42,"matched":42,"subs":[
			{"id":7,"client":"acme","durable":true,"matched":120,"delivered":100,"parked":9,"lag":20,"last_delivery_age_ms":1500},
			{"id":3,"client":"beta","matched":5,"delivered":5,"lag":0,"last_delivery_age_ms":-1}]}`))
	}))
	defer ts.Close()

	total, rows, err := scrapeSubs(ts.URL, 5)
	if err != nil {
		t.Fatal(err)
	}
	if total != 42 || len(rows) != 2 || rows[0].ID != 7 || rows[0].Lag != 20 {
		t.Fatalf("scraped total=%d rows=%+v", total, rows)
	}

	var sb strings.Builder
	printSubsTable(&sb, total, rows)
	out := sb.String()
	for _, want := range []string{"42 tracked", "acme", "1.5s ago", "never"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table lacks %q:\n%s", want, out)
		}
	}

	// An empty view prints nothing — no noise on fire-and-forget runs.
	sb.Reset()
	printSubsTable(&sb, 0, nil)
	if sb.Len() != 0 {
		t.Fatalf("empty view printed %q", sb.String())
	}
}
