package main

import (
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"stopss/internal/broker"
	"stopss/internal/core"
	"stopss/internal/journal"
	"stopss/internal/message"
	"stopss/internal/notify"
	"stopss/internal/ontology"
	"stopss/internal/semantic"
	"stopss/internal/store"
	"stopss/internal/workload"
)

// Store-churn mode (-store-churn N): instead of driving a server over
// HTTP, build the broker stack in-process and churn N durable
// subscribers through the paged subscription store — subscribe,
// detach, publish while paged out, resume a sample, crash-restart,
// resume again. The point is the scale claim behind DESIGN §11: a
// million offline durable subscribers cost the store's page budget in
// RAM, not a million resident subscriptions, and the report prints the
// process RSS alongside the store's counters so the claim is checkable
// from the command line.

// churnReport is what one store-churn run measured.
type churnReport struct {
	Subscribers   int
	Detached      int           // records in the store after churn
	SubDetachRate float64       // subscribe+detach ops/sec
	ResumeP50     time.Duration // fault-in + replay latency over the sample
	ResumeP99     time.Duration
	RestartAttach time.Duration // reopen + AttachStore scan after the crash
	RSSStartKiB   int64
	RSSEndKiB     int64
	Store         store.Stats
}

// vmRSSKiB reads the process's resident set from /proc (0 where /proc
// is unavailable; the report then only carries store counters).
func vmRSSKiB() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(line, "VmRSS:"); ok {
			f := strings.Fields(rest)
			if len(f) >= 1 {
				v, _ := strconv.ParseInt(f[0], 10, 64)
				return v
			}
		}
	}
	return 0
}

// runStoreChurn executes the in-process churn scenario: n durable
// subscribers cycled through the store under the given page budget.
func runStoreChurn(w io.Writer, dir string, n, pages int, seed int64) (*churnReport, error) {
	ont, err := ontology.Load(workload.JobsODL, ontology.Options{})
	if err != nil {
		return nil, err
	}
	stage := ont.Stage(semantic.FullConfig())
	jcfg := journal.Config{Dir: filepath.Join(dir, "journal"), SegmentBytes: 8 << 20, EphemeralCursors: true}
	scfg := store.Config{Path: filepath.Join(dir, "subs.heap"), Pages: pages}

	build := func() (*broker.Broker, *notify.Engine, *journal.Journal, *store.Store, error) {
		nt, err := notify.NewEngine(notify.Config{Workers: 4, QueueSize: 1 << 14}, nopSink{})
		if err != nil {
			return nil, nil, nil, nil, err
		}
		j, err := journal.Open(jcfg)
		if err != nil {
			nt.Close()
			return nil, nil, nil, nil, err
		}
		st, err := store.Open(scfg)
		if err != nil {
			nt.Close()
			j.Close()
			return nil, nil, nil, nil, err
		}
		b := broker.New(core.NewEngine(stage), nt)
		b.AttachJournal(j)
		if err := b.AttachStore(st); err != nil {
			nt.Close()
			j.Close()
			st.Close()
			return nil, nil, nil, nil, err
		}
		if err := b.Register(broker.Client{Name: "churn", Route: notify.Route{Transport: "nop", Addr: "churn"}}); err != nil {
			nt.Close()
			j.Close()
			st.Close()
			return nil, nil, nil, nil, err
		}
		return b, nt, j, st, nil
	}

	rep := &churnReport{Subscribers: n, RSSStartKiB: vmRSSKiB()}
	b, nt, j, st, err := build()
	if err != nil {
		return nil, err
	}

	// Phase 1: churn — every subscriber registers durably and is paged
	// out at once, the worst case for the store's allocator and pool.
	ids := make([]message.SubID, n)
	t0 := time.Now()
	for i := 0; i < n; i++ {
		preds := []message.Predicate{message.Pred("university", message.OpEq,
			message.String(fmt.Sprintf("City%d", i%199)))}
		id, err := b.SubscribeDurable("churn", preds)
		if err != nil {
			return nil, fmt.Errorf("subscribe %d: %w", i, err)
		}
		if err := b.DetachDurable("churn", id); err != nil {
			return nil, fmt.Errorf("detach %d: %w", i, err)
		}
		ids[i] = id
		if (i+1)%100000 == 0 {
			fmt.Fprintf(w, "  churned %d/%d (RSS %d KiB, store %d pages)\n",
				i+1, n, vmRSSKiB(), b.Stats().Store.Pages)
		}
	}
	rep.SubDetachRate = float64(n) / time.Since(t0).Seconds()

	// Phase 2: publications while everyone is paged out — journaled and
	// owed, delivered to nobody.
	for i := 0; i < 20; i++ {
		ev := message.E("school", fmt.Sprintf("City%d", i%199))
		if _, err := b.Publish(ev); err != nil {
			return nil, fmt.Errorf("publish: %w", err)
		}
	}

	// Phase 3: resume a random sample, timing each fault-in + replay.
	rng := rand.New(rand.NewSource(seed))
	sample := 1000
	if sample > n/2 {
		sample = n / 2
	}
	resumed := make(map[message.SubID]bool, sample)
	lats := make([]time.Duration, 0, sample)
	for len(resumed) < sample {
		id := ids[rng.Intn(n)]
		if resumed[id] {
			continue
		}
		resumed[id] = true
		r0 := time.Now()
		if _, err := b.ResumeDurable("churn", id); err != nil {
			return nil, fmt.Errorf("resume %d: %w", id, err)
		}
		lats = append(lats, time.Since(r0))
	}
	nt.Drain(10 * time.Second)
	if len(lats) > 0 {
		sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
		rep.ResumeP50 = lats[len(lats)/2]
		rep.ResumeP99 = lats[len(lats)*99/100]
	}

	// The churn phase is what the store counters should describe; the
	// post-restart instance only ever reads.
	rep.Store = b.Stats().Store

	// Phase 4: crash-restart. Checkpoint (detach durability is
	// checkpoint-granular), then abandon the stack without closing the
	// store and rebuild it from disk.
	if err := b.CheckpointStore(); err != nil {
		return nil, err
	}
	if err := j.Close(); err != nil {
		return nil, err
	}
	nt.Close()
	t1 := time.Now()
	b, nt, _, st2, err := build()
	if err != nil {
		return nil, err
	}
	rep.RestartAttach = time.Since(t1)
	defer nt.Close()
	defer st2.Close()
	_ = st
	if got, want := b.Stats().Detached, n-len(resumed); got != want {
		return nil, fmt.Errorf("after restart: %d detached records, want %d", got, want)
	}
	// The survivors still fault in.
	checked := 0
	for _, id := range ids {
		if resumed[id] {
			continue
		}
		if _, err := b.ResumeDurable("churn", id); err != nil {
			return nil, fmt.Errorf("post-restart resume %d: %w", id, err)
		}
		if checked++; checked == 100 {
			break
		}
	}
	nt.Drain(10 * time.Second)

	rep.RSSEndKiB = vmRSSKiB()
	rep.Detached = b.Stats().Detached
	return rep, nil
}

// nopSink acknowledges every notification; churn mode measures the
// store, not delivery transports.
type nopSink struct{}

func (nopSink) Name() string                           { return "nop" }
func (nopSink) Send(string, notify.Notification) error { return nil }
func (nopSink) Close() error                           { return nil }

func printChurnReport(w io.Writer, rep *churnReport) {
	fmt.Fprintln(w, strings.Repeat("-", 60))
	fmt.Fprintf(w, "subscribers:    %d churned at %.0f subscribe+detach/sec\n", rep.Subscribers, rep.SubDetachRate)
	fmt.Fprintf(w, "resume latency: p50 %v  p99 %v (fault-in + replay)\n", rep.ResumeP50, rep.ResumeP99)
	fmt.Fprintf(w, "crash restart:  store reattached in %v\n", rep.RestartAttach)
	if rep.RSSStartKiB > 0 {
		fmt.Fprintf(w, "process RSS:    %d KiB -> %d KiB\n", rep.RSSStartKiB, rep.RSSEndKiB)
	}
	s := rep.Store // churn-phase counters, captured before the crash
	fmt.Fprintf(w, "store:          %d records, %d pages (%d free), %d resident of %d pool pages\n",
		s.Records, s.Pages, s.FreePages, s.Resident, s.PoolCapacity)
	fmt.Fprintf(w, "pool:           %d hits, %d misses, %d evictions, %d write-backs, %d pin-waits\n",
		s.Hits, s.Misses, s.Evictions, s.WriteBacks, s.PinWaits)
}

// storeChurnMain is the -store-churn entry point.
func storeChurnMain(n, pages int, dir string, seed int64) error {
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "stopss-churn-*"); err != nil {
			return err
		}
		defer os.RemoveAll(dir)
	}
	log.Printf("store churn: %d durable subscribers, %d pool pages, dir %s", n, pages, dir)
	rep, err := runStoreChurn(os.Stdout, dir, n, pages, seed)
	if err != nil {
		return err
	}
	printChurnReport(os.Stdout, rep)
	return nil
}
