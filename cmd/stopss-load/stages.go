package main

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

// stageStat is one per-stage latency histogram scraped from the
// server's Prometheus exposition (the stopss_stage_* families of
// DESIGN §10).
type stageStat struct {
	Name   string // stage name with the prefix and unit stripped
	Count  uint64
	P50    float64 // seconds; +Inf when the quantile lands in the overflow bucket
	P99    float64
	maxLe  float64 // largest finite bucket bound seen (for overflow display)
	bounds []float64
	cums   []uint64
}

var leRe = regexp.MustCompile(`le="([^"]+)"`)

// parseStageHistograms extracts every `<anything>_stage_<name>_seconds`
// histogram from a Prometheus text exposition. Quantiles are
// bucket-upper-bound estimates — the same resolution Prometheus's own
// histogram_quantile would report.
func parseStageHistograms(r io.Reader) ([]stageStat, error) {
	byName := make(map[string]*stageStat)
	order := []string{}
	get := func(name string) *stageStat {
		st, ok := byName[name]
		if !ok {
			st = &stageStat{Name: name}
			byName[name] = st
			order = append(order, name)
		}
		return st
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		metric, value, ok := splitSample(line)
		if !ok {
			continue
		}
		base, kind := histPart(metric)
		stage := stageName(base)
		if stage == "" {
			continue
		}
		switch kind {
		case "bucket":
			m := leRe.FindStringSubmatch(metric)
			if m == nil {
				continue
			}
			bound, err := strconv.ParseFloat(m[1], 64)
			if m[1] == "+Inf" {
				bound, err = math.Inf(1), nil
			}
			if err != nil {
				continue
			}
			cum, err := strconv.ParseUint(value, 10, 64)
			if err != nil {
				continue
			}
			st := get(stage)
			st.bounds = append(st.bounds, bound)
			st.cums = append(st.cums, cum)
			if !math.IsInf(bound, 1) && bound > st.maxLe {
				st.maxLe = bound
			}
		case "count":
			n, err := strconv.ParseUint(value, 10, 64)
			if err != nil {
				continue
			}
			get(stage).Count = n
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	var out []stageStat
	for _, name := range order {
		st := byName[name]
		if st.Count == 0 {
			continue
		}
		// Exposition order is ascending, but sort defensively: quantile
		// extraction walks the cumulative counts in bound order.
		sort.Sort(byBound{st})
		st.P50 = histQuantile(st.bounds, st.cums, 0.50)
		st.P99 = histQuantile(st.bounds, st.cums, 0.99)
		out = append(out, *st)
	}
	return out, nil
}

type byBound struct{ s *stageStat }

func (b byBound) Len() int           { return len(b.s.bounds) }
func (b byBound) Less(i, j int) bool { return b.s.bounds[i] < b.s.bounds[j] }
func (b byBound) Swap(i, j int) {
	b.s.bounds[i], b.s.bounds[j] = b.s.bounds[j], b.s.bounds[i]
	b.s.cums[i], b.s.cums[j] = b.s.cums[j], b.s.cums[i]
}

// splitSample separates one exposition line into metric (name plus
// optional label set) and value.
func splitSample(line string) (metric, value string, ok bool) {
	// The value follows the last space outside the label braces; label
	// values in these families never contain spaces, so a plain split
	// on the final space is sound.
	i := strings.LastIndexByte(line, ' ')
	if i < 0 {
		return "", "", false
	}
	return strings.TrimSpace(line[:i]), strings.TrimSpace(line[i+1:]), true
}

// histPart splits a histogram sample name into its base family and the
// bucket/count/sum role.
func histPart(metric string) (base, kind string) {
	name := metric
	if i := strings.IndexByte(name, '{'); i >= 0 {
		name = name[:i]
	}
	for _, suffix := range []string{"_bucket", "_count", "_sum"} {
		if strings.HasSuffix(name, suffix) {
			return strings.TrimSuffix(name, suffix), suffix[1:]
		}
	}
	return name, ""
}

// stageName extracts the stage from a family like
// `stopss_stage_journal_append_seconds`; empty when the family is not
// a stage histogram.
func stageName(base string) string {
	i := strings.Index(base, "_stage_")
	if i < 0 || !strings.HasSuffix(base, "_seconds") {
		return ""
	}
	return strings.TrimSuffix(base[i+len("_stage_"):], "_seconds")
}

// histQuantile returns the upper bound of the first bucket whose
// cumulative count covers quantile q — +Inf when only the overflow
// bucket does.
func histQuantile(bounds []float64, cums []uint64, q float64) float64 {
	if len(bounds) == 0 {
		return 0
	}
	total := cums[len(cums)-1]
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	for i, c := range cums {
		if c >= target {
			return bounds[i]
		}
	}
	return bounds[len(bounds)-1]
}

// scrapeStages fetches the server's /metrics exposition and extracts
// the per-stage latency histograms.
func scrapeStages(baseURL string) ([]stageStat, error) {
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metrics: %s", resp.Status)
	}
	return parseStageHistograms(resp.Body)
}

// printStageTable renders the scraped per-stage latency quantiles.
func printStageTable(w io.Writer, stats []stageStat) {
	if len(stats) == 0 {
		return
	}
	fmt.Fprintf(w, "%-18s %10s %12s %12s\n", "stage", "count", "p50", "p99")
	for _, st := range stats {
		fmt.Fprintf(w, "%-18s %10d %12s %12s\n",
			st.Name, st.Count, fmtSeconds(st.P50, st.maxLe), fmtSeconds(st.P99, st.maxLe))
	}
}

// fmtSeconds renders a bucket-bound quantile; an overflow-bucket hit
// shows as a lower bound on the true latency.
func fmtSeconds(sec, maxLe float64) string {
	if math.IsInf(sec, 1) {
		return ">" + time.Duration(maxLe*float64(time.Second)).Round(time.Microsecond).String()
	}
	return time.Duration(sec * float64(time.Second)).Round(time.Microsecond).String()
}
