// Command stopss-load is the workload generator of the demonstration
// setup (paper §4): it simulates many concurrent companies and
// candidates driving a running stopss-server over HTTP.
//
// Usage:
//
//	stopss-load -url http://127.0.0.1:8080 -companies 50 -resumes 500
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"stopss/internal/sublang"
	"stopss/internal/workload"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:8080", "stopss-server base URL")
	companies := flag.Int("companies", 50, "number of subscribing companies")
	resumes := flag.Int("resumes", 500, "number of candidate resumes to publish")
	concurrency := flag.Int("concurrency", 8, "concurrent publishers")
	seed := flag.Int64("seed", 2003, "workload seed")
	flag.Parse()
	if err := run(*url, *companies, *resumes, *concurrency, *seed); err != nil {
		log.Fatalf("stopss-load: %v", err)
	}
}

func post(url string, body any) (map[string]any, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("%s: %v", resp.Status, out["error"])
	}
	return out, nil
}

func run(url string, companies, resumes, concurrency int, seed int64) error {
	jf := workload.NewJobFinder(seed)

	// Register companies and their subscriptions.
	for _, s := range jf.Recruiters(companies) {
		if _, err := post(url+"/api/register", map[string]string{"name": s.Subscriber}); err != nil {
			return fmt.Errorf("register %s: %w", s.Subscriber, err)
		}
		if _, err := post(url+"/api/subscribe", map[string]string{
			"client":       s.Subscriber,
			"subscription": sublang.FormatSubscription(s.Preds),
		}); err != nil {
			return fmt.Errorf("subscribe %s: %w", s.Subscriber, err)
		}
	}
	log.Printf("registered %d companies", companies)

	// Publish resumes concurrently.
	events := jf.Resumes(resumes)
	var matches, published atomic.Int64
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(events); i += concurrency {
				out, err := post(url+"/api/publish", map[string]string{
					"event": sublang.FormatEvent(events[i]),
				})
				if err != nil {
					log.Printf("publish: %v", err)
					continue
				}
				published.Add(1)
				if ms, ok := out["matches"].([]any); ok {
					matches.Add(int64(len(ms)))
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(t0)

	fmt.Println(strings.Repeat("-", 60))
	fmt.Printf("published:  %d resumes in %v (%.0f/sec)\n",
		published.Load(), elapsed.Round(time.Millisecond),
		float64(published.Load())/elapsed.Seconds())
	fmt.Printf("matches:    %d (%.2f per resume)\n",
		matches.Load(), float64(matches.Load())/float64(published.Load()))

	// Server-side stats.
	resp, err := http.Get(url + "/api/stats")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		return err
	}
	fmt.Printf("server:     %v clients, %v subscriptions, %v published, %v notified\n",
		stats["Clients"], stats["Subscriptions"], stats["Published"], stats["Notified"])
	return nil
}
