// Command stopss-load is the workload generator of the demonstration
// setup (paper §4): it simulates many concurrent companies and
// candidates driving a running stopss-server over HTTP.
//
// With -durable-frac > 0 a fraction of the companies subscribe
// DURABLY (requires -journal-dir on the server) and receive their
// notifications on a local TCP endpoint that the generator
// periodically kills and revives (-churn-interval), issuing
// /api/resume on every revival — exercising park, catch-up replay and
// at-least-once delivery under subscriber churn.
//
// With -store-churn N the generator runs a different, in-process
// experiment instead: it builds the broker stack locally and churns N
// durable subscribers through the paged subscription store — detach,
// publish, resume, crash-restart — reporting resume latencies and the
// process RSS against the store's fixed page budget.
//
// Usage:
//
//	stopss-load -url http://127.0.0.1:8080 -companies 50 -resumes 500
//	stopss-load -durable-frac 0.3 -churn-interval 300ms
//	stopss-load -store-churn 1000000 -store-pages 1024
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"stopss/internal/sublang"
	"stopss/internal/workload"
)

// churnEndpoint is the durable subscribers' notification sink: a TCP
// listener on a fixed local port that can be killed and revived to
// simulate a flapping subscriber. Received notification lines are
// counted and discarded.
type churnEndpoint struct {
	addr string
	n    atomic.Int64

	mu    sync.Mutex
	ln    net.Listener
	conns map[net.Conn]struct{}
	wg    sync.WaitGroup
}

func newChurnEndpoint() (*churnEndpoint, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("churn endpoint: %w", err)
	}
	ep := &churnEndpoint{addr: ln.Addr().String(), conns: make(map[net.Conn]struct{})}
	ep.mu.Lock()
	ep.ln = ln
	ep.mu.Unlock()
	ep.wg.Add(1)
	go ep.accept(ln)
	return ep, nil
}

// start revives the listener on the SAME port (no-op when alive).
func (e *churnEndpoint) start() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.ln != nil {
		return nil
	}
	ln, err := net.Listen("tcp", e.addr)
	if err != nil {
		return fmt.Errorf("churn endpoint relisten: %w", err)
	}
	e.ln = ln
	e.wg.Add(1)
	go e.accept(ln)
	return nil
}

// stop kills the listener AND every accepted connection — the
// server's cached conns break on their next write, so deliveries fail
// and park.
func (e *churnEndpoint) stop() {
	e.mu.Lock()
	if e.ln != nil {
		e.ln.Close()
		e.ln = nil
	}
	for c := range e.conns {
		c.Close()
	}
	e.mu.Unlock()
}

func (e *churnEndpoint) close() { e.stop(); e.wg.Wait() }

func (e *churnEndpoint) received() int64 { return e.n.Load() }

func (e *churnEndpoint) accept(ln net.Listener) {
	defer e.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener killed
		}
		e.mu.Lock()
		e.conns[conn] = struct{}{}
		e.mu.Unlock()
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			defer func() {
				conn.Close()
				e.mu.Lock()
				delete(e.conns, conn)
				e.mu.Unlock()
			}()
			sc := bufio.NewScanner(conn)
			sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
			for sc.Scan() {
				e.n.Add(1)
			}
		}()
	}
}

func main() {
	url := flag.String("url", "http://127.0.0.1:8080", "stopss-server base URL")
	companies := flag.Int("companies", 50, "number of subscribing companies")
	resumes := flag.Int("resumes", 500, "number of candidate resumes to publish")
	concurrency := flag.Int("concurrency", 8, "concurrent publishers")
	seed := flag.Int64("seed", 2003, "workload seed")
	durableFrac := flag.Float64("durable-frac", 0, "fraction of companies subscribing durably with a churning local TCP endpoint (0..1; needs -journal-dir on the server)")
	churnInterval := flag.Duration("churn-interval", 300*time.Millisecond, "durable endpoint disconnect/reconnect period")
	storeChurn := flag.Int("store-churn", 0, "in-process mode: churn this many durable subscribers through the paged subscription store instead of driving a server (try 1000000)")
	storeChurnDir := flag.String("store-churn-dir", "", "working directory for -store-churn (default: a temp dir, removed afterwards)")
	storePages := flag.Int("store-pages", 1024, "subscription-store buffer-pool pages for -store-churn")
	flag.Parse()
	if *storeChurn > 0 {
		if err := storeChurnMain(*storeChurn, *storePages, *storeChurnDir, *seed); err != nil {
			log.Fatalf("stopss-load: %v", err)
		}
		return
	}
	if *durableFrac < 0 || *durableFrac > 1 {
		log.Fatalf("stopss-load: -durable-frac must be in [0,1], got %v", *durableFrac)
	}
	if err := run(*url, *companies, *resumes, *concurrency, *seed, *durableFrac, *churnInterval); err != nil {
		log.Fatalf("stopss-load: %v", err)
	}
}

func post(url string, body any) (map[string]any, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("%s: %v", resp.Status, out["error"])
	}
	return out, nil
}

func run(url string, companies, resumes, concurrency int, seed int64, durableFrac float64, churnInterval time.Duration) error {
	jf := workload.NewJobFinder(seed)

	// Durable subscribers get a real, churnable TCP endpoint.
	var ep *churnEndpoint
	var durableNames []string
	nDurable := int(durableFrac * float64(companies))
	if nDurable > 0 {
		var err error
		if ep, err = newChurnEndpoint(); err != nil {
			return err
		}
		defer ep.close()
	}

	// Register companies and their subscriptions; the first nDurable
	// subscribe durably, routed to the churn endpoint.
	for i, s := range jf.Recruiters(companies) {
		durable := i < nDurable
		reg := map[string]any{"name": s.Subscriber}
		if durable {
			reg["transport"], reg["addr"] = "tcp", ep.addr
		}
		if _, err := post(url+"/api/register", reg); err != nil {
			return fmt.Errorf("register %s: %w", s.Subscriber, err)
		}
		if _, err := post(url+"/api/subscribe", map[string]any{
			"client":       s.Subscriber,
			"subscription": sublang.FormatSubscription(s.Preds),
			"durable":      durable,
		}); err != nil {
			return fmt.Errorf("subscribe %s: %w", s.Subscriber, err)
		}
		if durable {
			durableNames = append(durableNames, s.Subscriber)
		}
	}
	log.Printf("registered %d companies (%d durable)", companies, nDurable)

	// Churn loop: kill the endpoint (deliveries park server-side),
	// revive it, resume every durable subscription from its cursor.
	churnDone := make(chan struct{})
	var churnWG sync.WaitGroup
	if nDurable > 0 && churnInterval > 0 {
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			tick := time.NewTicker(churnInterval)
			defer tick.Stop()
			for {
				select {
				case <-churnDone:
					return
				case <-tick.C:
				}
				ep.stop()
				select {
				case <-churnDone:
				case <-time.After(churnInterval):
				}
				if err := ep.start(); err != nil {
					log.Printf("churn: relisten: %v", err)
					return
				}
				resumeAll(url, durableNames)
			}
		}()
	}

	// Publish resumes concurrently.
	events := jf.Resumes(resumes)
	var matches, published atomic.Int64
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(events); i += concurrency {
				out, err := post(url+"/api/publish", map[string]string{
					"event": sublang.FormatEvent(events[i]),
				})
				if err != nil {
					log.Printf("publish: %v", err)
					continue
				}
				published.Add(1)
				if ms, ok := out["matches"].([]any); ok {
					matches.Add(int64(len(ms)))
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(t0)
	if nDurable > 0 {
		close(churnDone)
		churnWG.Wait()
		// Final revival, then resume until quiescent: three consecutive
		// rounds replaying nothing means no parked notifications remain
		// (in-flight ones either ack or park into a later round; the
		// spacing outlasts the server's retry backoff).
		if err := ep.start(); err == nil {
			quiet := 0
			for tries := 0; tries < 100 && quiet < 3; tries++ {
				if resumeAll(url, durableNames) == 0 {
					quiet++
				} else {
					quiet = 0
				}
				time.Sleep(20 * time.Millisecond)
			}
		}
	}

	fmt.Println(strings.Repeat("-", 60))
	fmt.Printf("published:  %d resumes in %v (%.0f/sec)\n",
		published.Load(), elapsed.Round(time.Millisecond),
		float64(published.Load())/elapsed.Seconds())
	fmt.Printf("matches:    %d (%.2f per resume)\n",
		matches.Load(), float64(matches.Load())/float64(published.Load()))

	// Server-side stats.
	resp, err := http.Get(url + "/api/stats")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		return err
	}
	fmt.Printf("server:     %v clients, %v subscriptions, %v published, %v notified\n",
		stats["Clients"], stats["Subscriptions"], stats["Published"], stats["Notified"])
	// Per-stage latency quantiles from the Prometheus exposition
	// (DESIGN §10) — best-effort: older servers have no /metrics.
	if stages, err := scrapeStages(url); err == nil {
		printStageTable(os.Stdout, stages)
	} else {
		log.Printf("scraping /metrics: %v", err)
	}
	// Laggiest subscriptions from the per-subscription accounting
	// endpoint — also best-effort on older servers.
	if total, rows, err := scrapeSubs(url, 5); err == nil {
		printSubsTable(os.Stdout, total, rows)
	} else {
		log.Printf("scraping /api/v1/subs: %v", err)
	}
	if nDurable > 0 {
		fmt.Printf("durable:    %v subs, %v acked, %v parked, %v replayed; endpoint received %d\n",
			stats["Durable"], stats["Acked"], stats["Parked"], stats["Replayed"], ep.received())
		if resp, err := http.Get(url + "/api/journal"); err == nil {
			var jb map[string]any
			if json.NewDecoder(resp.Body).Decode(&jb) == nil {
				fmt.Printf("journal:    %v\n", jb["stats"])
			}
			resp.Body.Close()
		}
	}
	return nil
}

// resumeAll issues replay-from-cursor for every durable subscription
// of the named clients (id lookup via /api/subscriptions) and returns
// the total number of notifications the server re-dispatched.
func resumeAll(url string, clients []string) int {
	total := 0
	for _, c := range clients {
		resp, err := http.Get(url + "/api/subscriptions?client=" + c)
		if err != nil {
			log.Printf("churn: listing subs of %s: %v", c, err)
			continue
		}
		var body struct {
			Subscriptions []struct {
				ID float64 `json:"id"`
			} `json:"subscriptions"`
		}
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil {
			log.Printf("churn: decoding subs of %s: %v", c, err)
			continue
		}
		for _, s := range body.Subscriptions {
			out, err := post(url+"/api/resume", map[string]any{"client": c, "id": s.ID})
			if err != nil {
				log.Printf("churn: resume %s/%v: %v", c, s.ID, err)
				continue
			}
			if n, ok := out["replayed"].(float64); ok {
				total += int(n)
			}
		}
	}
	return total
}
