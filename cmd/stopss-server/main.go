// Command stopss-server runs the full demonstration stack of Figure 2:
// the S-ToPSS engine over a domain ontology, the notification engine
// with all four transports, and the web application — optionally as one
// node of a multi-broker overlay with a sharded matching engine.
//
// Usage:
//
//	stopss-server -addr :8080
//	stopss-server -ontology my-domain.odl -matcher cluster -mode syntactic
//	stopss-server -addr :8080 -shards 8
//	stopss-server -addr :8081 -node b1 -overlay 127.0.0.1:7001
//	stopss-server -addr :8082 -node b2 -overlay 127.0.0.1:7002 -peer 127.0.0.1:7001
//	stopss-server -addr :8080 -log-format json -log-level debug
//	stopss-server -addr :8080 -pprof-addr 127.0.0.1:6060 -trace-out boot.trace
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registers the profiling surface on DefaultServeMux (-pprof-addr)
	"os"
	"os/signal"
	"path/filepath"
	rtrace "runtime/trace"
	"strings"
	"time"

	"stopss/internal/broker"
	"stopss/internal/core"
	"stopss/internal/journal"
	"stopss/internal/knowledge"
	"stopss/internal/matching"
	"stopss/internal/metrics"
	"stopss/internal/notify"
	"stopss/internal/ontology"
	"stopss/internal/overlay"
	"stopss/internal/semantic"
	"stopss/internal/store"
	"stopss/internal/trace"
	"stopss/internal/webapp"
	"stopss/internal/workload"
)

// logger is the process-wide structured logger. main replaces it with
// one carrying the broker identity on every record; tests run against
// the default.
var logger = slog.Default()

// peerList collects repeatable -peer flags.
type peerList []string

func (p *peerList) String() string     { return strings.Join(*p, ",") }
func (p *peerList) Set(v string) error { *p = append(*p, v); return nil }

// buildLogger constructs the slog handler selected by -log-format and
// -log-level.
func buildLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", level)
	}
	ho := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "text":
		return slog.New(slog.NewTextHandler(w, ho)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, ho)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
	}
}

// fatal logs at error level and exits.
func fatal(msg string, args ...any) {
	logger.Error(msg, args...)
	os.Exit(1)
}

// obsOptions groups the observability surface of run: profiling,
// execution tracing, and per-publication trace sampling (DESIGN §10).
type obsOptions struct {
	PprofAddr     string        // net/http/pprof listen address ("" = off)
	TraceOut      string        // runtime/trace capture file ("" = off)
	TraceSample   int           // keep 1 in N publication traces; <=0 disables
	TraceCapacity int           // retained-trace ring bound (0 = default)
	OpsInterval   time.Duration // ops-gossip refresh period (0 = on link events only)
	OpsStaleAfter time.Duration // cluster-view staleness threshold (0 = 30s)
}

func main() {
	var peers peerList
	addr := flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
	ontPath := flag.String("ontology", "", "ODL ontology file (default: embedded job-finder domain)")
	matcherName := flag.String("matcher", "counting", "matching algorithm: naive, counting, cluster or tree")
	modeName := flag.String("mode", "semantic", "initial mode: semantic or syntactic")
	snapshot := flag.String("snapshot", "", "snapshot file: restored on start if present, written on shutdown")
	shards := flag.Int("shards", 1, "matching engine shards (>1 enables the concurrent sharded pool)")
	expansionCache := flag.Int("expansion-cache", core.DefaultExpansionCacheSize, "semantic expansion LRU capacity in event shapes, invalidated precisely by knowledge deltas (0 disables memoization)")
	nodeName := flag.String("node", "", "overlay node name (default: the -addr value)")
	overlayAddr := flag.String("overlay", "", "overlay TCP listen address for peer brokers (empty: no listener)")
	flag.Var(&peers, "peer", "overlay peer address to connect to (repeatable)")
	wireCodec := flag.String("wire-codec", "binary", "highest overlay wire codec to offer: binary (compact framing, negotiated per link) or json (force the legacy framing, e.g. while old brokers are being upgraded)")
	kbWatch := flag.String("kb-watch", "", "JSONL knowledge-delta file (ontc -delta output) polled for appended deltas to inject at runtime")
	kbWatchInterval := flag.Duration("kb-watch-interval", time.Second, "poll interval for -kb-watch (must be > 0; sub-second values pick up appends nearly live)")
	journalDir := flag.String("journal-dir", "", "publication-journal directory: enables durable subscriptions with at-least-once catch-up delivery")
	journalSegBytes := flag.Int64("journal-segment-bytes", 8<<20, "journal segment roll threshold in bytes (must be > 0)")
	journalRetention := flag.Int64("journal-retention", 0, "cap on sealed journal bytes; oldest segments are dropped past it even if unacked (0 = unlimited)")
	journalFsync := flag.Bool("journal-fsync", true, "group-committed fsync per publication batch (disable to trade crash durability for latency)")
	journalIndexEvery := flag.Int("journal-index-every", 128, "sparse seq->offset index granularity in records: catch-up scans seek instead of reading whole segments (0 disables indexing)")
	storeDir := flag.String("store-dir", "", "paged subscription-store directory: durable subscriptions of disconnected clients are paged out to disk instead of staying resident (journal cursors become snapshot+store authority)")
	storePages := flag.Int("store-pages", 1024, "subscription-store buffer-pool size in pages (8 KiB each): the resident memory budget for paged-out subscriptions")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty: disabled)")
	traceOut := flag.String("trace-out", "", "write a runtime/trace capture to this file until shutdown (inspect with `go tool trace`)")
	traceSample := flag.Int("trace-sample", 1, "keep the span tree of 1 in N publications (1 = all, 0 = off; dead-lettered deliveries are always kept)")
	traceCapacity := flag.Int("trace-capacity", 0, "bound on retained publication traces (0 = default)")
	opsInterval := flag.Duration("ops-interval", 10*time.Second, "broker health-summary gossip refresh period for GET /api/cluster (0: refresh only on link establishment)")
	opsStaleAfter := flag.Duration("ops-stale-after", 0, "age past which a peer's gossiped health summary is flagged stale in GET /api/cluster (0 = 30s)")
	flag.Parse()
	lg, err := buildLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fatal("stopss-server: invalid logging flags", "err", err)
	}
	// Every record names this broker, so interleaved multi-broker logs
	// (or aggregated JSON streams) stay attributable.
	nodeID := *nodeName
	if nodeID == "" {
		nodeID = *addr
	}
	logger = lg.With("broker", nodeID)
	slog.SetDefault(logger)
	if *kbWatchInterval <= 0 {
		fatal("stopss-server: -kb-watch-interval must be positive", "interval", *kbWatchInterval)
	}
	if *journalSegBytes <= 0 {
		fatal("stopss-server: -journal-segment-bytes must be positive", "bytes", *journalSegBytes)
	}
	if *wireCodec != "binary" && *wireCodec != "json" {
		fatal("stopss-server: -wire-codec must be binary or json", "codec", *wireCodec)
	}
	opts := stackOptions{
		Addr:           *addr,
		Ontology:       *ontPath,
		Matcher:        *matcherName,
		ExpansionCache: *expansionCache,
		Mode:           *modeName,
		Shards:         *shards,
	}
	// The flag's "0 = off" maps to the journal's negative sentinel (its
	// own zero value means "default granularity").
	indexEvery := *journalIndexEvery
	if indexEvery <= 0 {
		indexEvery = -1
	}
	jcfg := journal.Config{
		Dir:            *journalDir,
		SegmentBytes:   *journalSegBytes,
		RetentionBytes: *journalRetention,
		Fsync:          *journalFsync,
		IndexEvery:     indexEvery,
		// With a subscription store the store + snapshot are the cursor
		// authorities; the journal stops rewriting cursors.json wholesale.
		EphemeralCursors: *storeDir != "",
	}
	obs := obsOptions{
		PprofAddr:     *pprofAddr,
		TraceOut:      *traceOut,
		TraceSample:   *traceSample,
		TraceCapacity: *traceCapacity,
		OpsInterval:   *opsInterval,
		OpsStaleAfter: *opsStaleAfter,
	}
	scfg := store.Config{Pages: *storePages}
	if *storeDir != "" {
		scfg.Path = filepath.Join(*storeDir, "subs.heap")
	}
	if err := run(opts, *snapshot, *nodeName, *overlayAddr, peers, *wireCodec, *kbWatch, *kbWatchInterval, jcfg, scfg, obs); err != nil {
		fatal("stopss-server: fatal", "err", err)
	}
}

// stackOptions configures buildStack.
type stackOptions struct {
	Addr     string
	Ontology string
	Matcher  string
	Mode     string
	Shards   int
	// ExpansionCache is the semantic expansion LRU capacity (0 = off).
	// Sharded deployments hold it at the pool level; single-engine ones
	// inside the engine.
	ExpansionCache int
	Registry       *metrics.Registry // optional; shared with the overlay node
}

// buildStack assembles engine, notifier and broker — everything the
// HTTP server sits on. Factored out of run so the stack is testable
// without signals or listeners. The returned cleanup stops the sharded
// worker pool (a no-op closure for a single engine).
func buildStack(opts stackOptions) (*broker.Broker, *notify.Engine, func(), error) {
	src := workload.JobsODL
	name := "builtin:jobs"
	if opts.Ontology != "" {
		data, err := os.ReadFile(opts.Ontology)
		if err != nil {
			return nil, nil, nil, err
		}
		src, name = string(data), opts.Ontology
	}
	ont, err := ontology.Load(src, ontology.Options{})
	if err != nil {
		return nil, nil, nil, fmt.Errorf("loading ontology %s: %w", name, err)
	}
	logger.Info("ontology loaded", "source", name, "summary", ont.Summary())

	mode, err := core.ParseMode(opts.Mode)
	if err != nil {
		return nil, nil, nil, err
	}
	// The compiled ontology is the genesis of a runtime knowledge base;
	// the shared semantic stage is built over the base's structures so
	// delta updates (admin endpoint, -kb-watch, overlay replication)
	// swap in coherently.
	base := knowledge.NewBase(ont.Synonyms, ont.Hierarchy, ont.Mappings)
	stage := base.Stage(semantic.FullConfig())

	var engine core.PubSub
	cleanup := func() {}
	if opts.Shards > 1 {
		// Validate the matcher name once up front; the factory below
		// cannot report errors.
		if _, err := matching.New(opts.Matcher); err != nil {
			return nil, nil, nil, err
		}
		shardOpts := []overlay.ShardOption{
			overlay.WithKnowledgeBase(base),
			overlay.WithShardExpansionCache(opts.ExpansionCache),
		}
		if opts.Registry != nil {
			shardOpts = append(shardOpts, overlay.WithRegistry(opts.Registry))
		}
		pool := overlay.NewSharded(opts.Shards, func(int) *core.Engine {
			m, _ := matching.New(opts.Matcher)
			// Shard engines never expand (the pool expands once and
			// memoizes); disable their per-engine caches.
			return core.NewEngine(stage, core.WithMatcher(m), core.WithMode(mode),
				core.WithExpansionCache(0))
		}, shardOpts...)
		engine, cleanup = pool, pool.Close
	} else {
		m, err := matching.New(opts.Matcher)
		if err != nil {
			return nil, nil, nil, err
		}
		engine = core.NewEngine(stage, core.WithMatcher(m), core.WithMode(mode), core.WithKnowledge(base),
			core.WithExpansionCache(opts.ExpansionCache))
	}

	notifier, err := notify.NewEngine(notify.Config{Workers: 8},
		notify.NewTCPTransport(0),
		notify.NewUDPTransport(),
		notify.NewSMTPTransport("stopss@"+opts.Addr),
		notify.NewSMSGateway(100, 64),
	)
	if err != nil {
		cleanup()
		return nil, nil, nil, err
	}
	return broker.New(engine, notifier), notifier, cleanup, nil
}

func run(opts stackOptions, snapshot, nodeName, overlayAddr string, peers []string, wireCodec string, kbWatch string, kbWatchInterval time.Duration, jcfg journal.Config, scfg store.Config, obs obsOptions) error {
	// Execution tracing and the profiling surface come up first so they
	// cover the boot path (journal replay, snapshot restore, overlay
	// joins) — often exactly what needs profiling.
	if obs.TraceOut != "" {
		f, err := os.Create(obs.TraceOut)
		if err != nil {
			return err
		}
		if err := rtrace.Start(f); err != nil {
			f.Close()
			return fmt.Errorf("starting runtime trace: %w", err)
		}
		defer func() {
			rtrace.Stop()
			if err := f.Close(); err != nil {
				logger.Error("closing runtime trace capture", "path", obs.TraceOut, "err", err)
			} else {
				logger.Info("runtime trace written", "path", obs.TraceOut)
			}
		}()
		logger.Info("runtime trace capturing", "path", obs.TraceOut)
	}
	if obs.PprofAddr != "" {
		go func() {
			logger.Info("pprof listening", "addr", obs.PprofAddr)
			// DefaultServeMux carries only the pprof handlers here: the
			// application API below uses its own mux.
			if err := http.ListenAndServe(obs.PprofAddr, nil); err != nil {
				logger.Error("pprof server failed", "addr", obs.PprofAddr, "err", err)
			}
		}()
	}

	reg := metrics.NewRegistry()
	opts.Registry = reg
	b, notifier, cleanup, err := buildStack(opts)
	if err != nil {
		return err
	}
	defer cleanup()
	defer notifier.Close()
	kbOriginName := nodeName
	if kbOriginName == "" {
		kbOriginName = opts.Addr
	}
	b.SetKnowledgeOrigin(knowledge.NewOrigin(kbOriginName))
	// The flag's "0 = off" maps to the tracer's negative sentinel (its
	// own zero value means "trace everything").
	sample := obs.TraceSample
	if sample <= 0 {
		sample = -1
	}
	// The journal attaches BEFORE the snapshot restore so restored
	// durable cursors merge with the journal's own persisted ones.
	if jcfg.Dir != "" {
		jnl, err := journal.Open(jcfg)
		if err != nil {
			return err
		}
		defer jnl.Close()
		b.AttachJournal(jnl)
		st := jnl.Stats()
		logger.Info("journal opened", "dir", jcfg.Dir, "segments", st.Segments,
			"next_seq", st.NextSeq, "fsync", jcfg.Fsync,
			"segment_bytes", jcfg.SegmentBytes, "retention_bytes", jcfg.RetentionBytes,
			"index_entries", st.IndexEntries, "ephemeral_cursors", jcfg.EphemeralCursors)
	}
	// The subscription store attaches after the journal (it extends the
	// journal's compaction floor) and before the snapshot restore (the
	// restore's cursor merge consults stored records).
	if scfg.Path != "" {
		if err := os.MkdirAll(filepath.Dir(scfg.Path), 0o755); err != nil {
			return err
		}
		pst, err := store.Open(scfg)
		if err != nil {
			return err
		}
		defer pst.Close()
		if err := b.AttachStore(pst); err != nil {
			return err
		}
		ss := pst.Stats()
		logger.Info("subscription store opened", "path", scfg.Path,
			"records", ss.Records, "pages", ss.Pages, "pool_pages", ss.PoolCapacity,
			"torn_pages", ss.TornPages)
	}
	if snapshot != "" {
		if f, err := os.Open(snapshot); err == nil {
			restoreErr := b.Restore(f)
			f.Close()
			if restoreErr != nil {
				return fmt.Errorf("restoring %s: %w", snapshot, restoreErr)
			}
			st := b.Stats()
			logger.Info("snapshot restored", "path", snapshot, "clients", st.Clients,
				"subscriptions", st.Subscriptions, "durable", st.Durable)
		} else if !os.IsNotExist(err) {
			return err
		}
	}
	// Catch-up replay: re-dispatch everything the previous incarnation
	// journaled but never saw acknowledged.
	if jcfg.Dir != "" {
		if n, err := b.CatchUp(); err != nil {
			logger.Error("journal catch-up failed", "err", err)
		} else if n > 0 {
			logger.Info("journal catch-up", "redispatched", n)
		}
	}

	// The overlay node starts after a snapshot restore so freshly
	// connected peers see the restored subscription set.
	var node *overlay.Node
	if overlayAddr != "" || len(peers) > 0 {
		if nodeName == "" {
			nodeName = opts.Addr
		}
		node, err = overlay.NewNode(overlay.Config{
			Name:          nodeName,
			Listen:        overlayAddr,
			Peers:         peers,
			Transport:     overlay.TCP(), // production: real sockets
			DisableBinary: wireCodec == "json",
			Registry:      reg,
			TraceSample:   sample,
			TraceCapacity: obs.TraceCapacity,
			OpsInterval:   obs.OpsInterval,
			OpsStaleAfter: obs.OpsStaleAfter,
			Logf: func(format string, args ...any) {
				logger.Info(fmt.Sprintf(format, args...), "subsystem", "overlay")
			},
		}, b)
		if err != nil {
			return err
		}
		if err := node.Start(); err != nil {
			return err
		}
		defer node.Close()
		logger.Info("overlay node started", "node", nodeName, "listen", node.Addr(), "peers", peers)
	} else {
		// Standalone brokers trace too: same stage histograms and span
		// trees, minus forward/recv hops.
		b.SetTracer(trace.New(trace.Config{
			Broker: kbOriginName, Sample: sample,
			Capacity: obs.TraceCapacity, Registry: reg,
		}))
	}

	webOpts := []webapp.Option{webapp.WithMetrics("stopss", reg)}
	if node != nil {
		webOpts = append(webOpts, webapp.WithCluster(node.ClusterView))
	}
	srv := &http.Server{
		Addr:              opts.Addr,
		Handler:           webapp.NewServer(b, webOpts...),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if kbWatch != "" {
		go watchKBFile(ctx, kbWatch, kbWatchInterval, b)
		logger.Info("watching knowledge-delta file", "path", kbWatch, "interval", kbWatchInterval)
	}
	errCh := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", opts.Addr, "matcher", b.Engine().MatcherName(),
			"mode", b.Engine().Mode().String(), "shards", opts.Shards)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case <-ctx.Done():
		logger.Info("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		notifier.Drain(5 * time.Second)
		if snapshot != "" {
			f, err := os.Create(snapshot)
			if err != nil {
				return err
			}
			if err := b.Snapshot(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			logger.Info("snapshot written", "path", snapshot)
		}
		return nil
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

// watchKBFile polls a JSONL knowledge-delta file (ontc -delta output)
// every interval and injects every newly appended complete line into
// the broker; applied deltas replicate to the federation through the
// overlay. Unstamped lines get the deterministic content+line stamp
// (knowledge.FileStamp), so a restart, a regenerated file, or the same
// file fed to several brokers replays to identical delta IDs and
// duplicate suppression absorbs it.
//
// A rewrite is detected by hashing the consumed prefix, not just by a
// size drop: a regenerated log of equal or larger size must replay
// from line 1, or its earlier lines would be skipped entirely and the
// tail would be stamped with continuation line numbers no fresh reader
// ever mints. Delta logs are small, so re-reading the file whole each
// poll is the cheap price of that check.
func watchKBFile(ctx context.Context, path string, interval time.Duration, b *broker.Broker) {
	w := newKBWatcher(path, b)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		w.poll()
	}
}

// kbWatcher carries one watched file's consumption state between polls.
type kbWatcher struct {
	path   string
	b      *broker.Broker
	offset int64  // bytes consumed so far
	lineNo uint64 // complete lines consumed so far
	prefix uint64 // FNV-64a of the consumed bytes
}

func newKBWatcher(path string, b *broker.Broker) *kbWatcher {
	return &kbWatcher{path: path, b: b, prefix: kbFileSum(nil)}
}

func kbFileSum(p []byte) uint64 {
	h := fnv.New64a()
	h.Write(p)
	return h.Sum64()
}

// poll reads the watched file once and injects its newly appended
// complete lines.
func (w *kbWatcher) poll() {
	data, err := os.ReadFile(w.path)
	if err != nil {
		if !os.IsNotExist(err) {
			logger.Warn("kb-watch: reading delta file", "path", w.path, "err", err)
		}
		return
	}
	if int64(len(data)) < w.offset || kbFileSum(data[:w.offset]) != w.prefix {
		// Shrunk, or the consumed prefix changed: the file was
		// regenerated, not appended to. Replay from the start —
		// unchanged lines re-stamp to their old IDs and dedup.
		logger.Info("kb-watch: file rewritten; replaying from line 1", "path", w.path)
		w.offset, w.lineNo, w.prefix = 0, 0, kbFileSum(nil)
	}
	// Only complete (newline-terminated) lines are consumed; a
	// half-written tail stays pending for the next poll.
	tail := data[w.offset:]
	complete := bytes.LastIndexByte(tail, '\n') + 1
	if complete == 0 {
		return
	}
	// tail[:complete] ends with '\n', so Split yields a trailing
	// empty element; dropping it keeps line numbers — and therefore
	// FileStamp identities — identical whether the file is read in
	// one restart-replay batch or across many incremental polls.
	parts := bytes.Split(tail[:complete], []byte{'\n'})
	for _, line := range parts[:len(parts)-1] {
		w.lineNo++
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		d, err := knowledge.Decode(line)
		if err != nil {
			logger.Warn("kb-watch: malformed delta line", "line", w.lineNo, "err", err)
			continue
		}
		if d, err = knowledge.FileStamp(w.lineNo, d); err != nil {
			logger.Warn("kb-watch: stamping delta", "line", w.lineNo, "err", err)
			continue
		}
		rep, err := w.b.InjectKnowledge(d)
		if err != nil {
			logger.Warn("kb-watch: applying delta", "delta", d.String(), "err", err)
			continue
		}
		if rep.Applied {
			logger.Info("kb-watch: delta applied", "op", string(d.Op), "id", rep.ID,
				"reindexed", rep.Reindexed, "kb_digest", rep.Version.Digest)
		}
	}
	w.offset += int64(complete)
	w.prefix = kbFileSum(data[:w.offset])
}
