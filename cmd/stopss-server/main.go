// Command stopss-server runs the full demonstration stack of Figure 2:
// the S-ToPSS engine over a domain ontology, the notification engine
// with all four transports, and the web application.
//
// Usage:
//
//	stopss-server -addr :8080
//	stopss-server -ontology my-domain.odl -matcher cluster -mode syntactic
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"time"

	"stopss/internal/broker"
	"stopss/internal/core"
	"stopss/internal/matching"
	"stopss/internal/notify"
	"stopss/internal/ontology"
	"stopss/internal/semantic"
	"stopss/internal/webapp"
	"stopss/internal/workload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
	ontPath := flag.String("ontology", "", "ODL ontology file (default: embedded job-finder domain)")
	matcherName := flag.String("matcher", "counting", "matching algorithm: naive, counting or cluster")
	modeName := flag.String("mode", "semantic", "initial mode: semantic or syntactic")
	snapshot := flag.String("snapshot", "", "snapshot file: restored on start if present, written on shutdown")
	flag.Parse()
	if err := run(*addr, *ontPath, *matcherName, *modeName, *snapshot); err != nil {
		log.Fatalf("stopss-server: %v", err)
	}
}

// buildStack assembles engine, notifier and broker — everything the
// HTTP server sits on. Factored out of run so the stack is testable
// without signals or listeners.
func buildStack(addr, ontPath, matcherName, modeName string) (*broker.Broker, *notify.Engine, error) {
	src := workload.JobsODL
	name := "builtin:jobs"
	if ontPath != "" {
		data, err := os.ReadFile(ontPath)
		if err != nil {
			return nil, nil, err
		}
		src, name = string(data), ontPath
	}
	ont, err := ontology.Load(src, ontology.Options{})
	if err != nil {
		return nil, nil, fmt.Errorf("loading ontology %s: %w", name, err)
	}
	log.Printf("ontology: %s", ont.Summary())

	m, err := matching.New(matcherName)
	if err != nil {
		return nil, nil, err
	}
	mode, err := core.ParseMode(modeName)
	if err != nil {
		return nil, nil, err
	}
	engine := core.NewEngine(ont.Stage(semantic.FullConfig()),
		core.WithMatcher(m), core.WithMode(mode))

	notifier, err := notify.NewEngine(notify.Config{Workers: 8},
		notify.NewTCPTransport(0),
		notify.NewUDPTransport(),
		notify.NewSMTPTransport("stopss@"+addr),
		notify.NewSMSGateway(100, 64),
	)
	if err != nil {
		return nil, nil, err
	}
	return broker.New(engine, notifier), notifier, nil
}

func run(addr, ontPath, matcherName, modeName, snapshot string) error {
	b, notifier, err := buildStack(addr, ontPath, matcherName, modeName)
	if err != nil {
		return err
	}
	defer notifier.Close()
	if snapshot != "" {
		if f, err := os.Open(snapshot); err == nil {
			restoreErr := b.Restore(f)
			f.Close()
			if restoreErr != nil {
				return fmt.Errorf("restoring %s: %w", snapshot, restoreErr)
			}
			st := b.Stats()
			log.Printf("restored %d clients, %d subscriptions from %s",
				st.Clients, st.Subscriptions, snapshot)
		} else if !os.IsNotExist(err) {
			return err
		}
	}
	srv := &http.Server{
		Addr:              addr,
		Handler:           webapp.NewServer(b),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		log.Printf("listening on http://%s (matcher=%s mode=%s)", addr, matcherName, b.Engine().Mode())
		errCh <- srv.ListenAndServe()
	}()

	select {
	case <-ctx.Done():
		log.Print("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		notifier.Drain(5 * time.Second)
		if snapshot != "" {
			f, err := os.Create(snapshot)
			if err != nil {
				return err
			}
			if err := b.Snapshot(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			log.Printf("snapshot written to %s", snapshot)
		}
		return nil
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}
