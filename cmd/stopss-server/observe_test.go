package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"stopss/internal/broker"
	"stopss/internal/metrics"
	"stopss/internal/overlay"
	"stopss/internal/webapp"
)

// TestBuildLogger covers the -log-format/-log-level surface: both
// handler kinds, level filtering, and rejection of unknown values.
func TestBuildLogger(t *testing.T) {
	var buf bytes.Buffer
	lg, err := buildLogger(&buf, "json", "warn")
	if err != nil {
		t.Fatal(err)
	}
	lg = lg.With("broker", "b1")
	lg.Info("suppressed")
	lg.Warn("kept", "k", "v")
	out := buf.String()
	if strings.Contains(out, "suppressed") {
		t.Fatalf("info record passed a warn-level logger:\n%s", out)
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(out), &rec); err != nil {
		t.Fatalf("json handler produced non-JSON %q: %v", out, err)
	}
	if rec["broker"] != "b1" || rec["msg"] != "kept" || rec["k"] != "v" {
		t.Fatalf("record %v lacks broker identity or attrs", rec)
	}

	buf.Reset()
	lg, err = buildLogger(&buf, "text", "debug")
	if err != nil {
		t.Fatal(err)
	}
	lg.Debug("fine-grained")
	if !strings.Contains(buf.String(), "fine-grained") {
		t.Fatalf("debug record missing from a debug-level text logger:\n%s", buf.String())
	}

	if _, err := buildLogger(io.Discard, "xml", "info"); err == nil {
		t.Error("unknown format must fail")
	}
	if _, err := buildLogger(io.Discard, "text", "loud"); err == nil {
		t.Error("unknown level must fail")
	}
}

// obsBroker is one half of the two-broker observability fixture: a
// full stack with an overlay node on a real TCP socket and the HTTP
// API in front.
type obsBroker struct {
	b    *broker.Broker
	node *overlay.Node
	ts   *httptest.Server
}

func startObsBroker(t *testing.T, name string, peers ...string) *obsBroker {
	t.Helper()
	reg := metrics.NewRegistry()
	b, notifier, cleanup, err := buildStack(stackOptions{
		Addr: "127.0.0.1:0", Matcher: "counting", Mode: "semantic", Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cleanup)
	t.Cleanup(func() { notifier.Close() })
	node, err := overlay.NewNode(overlay.Config{
		Name:      name,
		Listen:    "127.0.0.1:0",
		Peers:     peers,
		Transport: overlay.TCP(),
		Registry:  reg,
	}, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = node.Close() })
	ts := httptest.NewServer(webapp.NewServer(b,
		webapp.WithMetrics("stopss", reg),
		webapp.WithCluster(node.ClusterView)))
	t.Cleanup(ts.Close)
	return &obsBroker{b: b, node: node, ts: ts}
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestThreeBrokerClusterView is the federation-health integration
// scenario behind the CI observability step: three brokers federate in
// a line over real TCP, and GET /api/v1/cluster on EVERY broker —
// including the line's endpoints, which never link to each other —
// reports all three healthy, with no refresh ticker involved (the
// attach-time gossip alone must converge).
func TestThreeBrokerClusterView(t *testing.T) {
	b1 := startObsBroker(t, "b1")
	b2 := startObsBroker(t, "b2", b1.node.Addr())
	b3 := startObsBroker(t, "b3", b2.node.Addr())

	fetch := func(ob *obsBroker) (brokers, stale int, entries map[string]bool) {
		t.Helper()
		resp, err := http.Get(ob.ts.URL + "/api/v1/cluster")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/api/v1/cluster: %d", resp.StatusCode)
		}
		var cr struct {
			Brokers int `json:"brokers"`
			Stale   int `json:"stale"`
			Cluster []struct {
				Broker string `json:"broker"`
				Stale  bool   `json:"stale"`
			} `json:"cluster"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
			t.Fatal(err)
		}
		entries = make(map[string]bool)
		for _, e := range cr.Cluster {
			entries[e.Broker] = !e.Stale
		}
		return cr.Brokers, cr.Stale, entries
	}

	for i, ob := range []*obsBroker{b1, b2, b3} {
		waitUntil(t, "full healthy cluster view on broker "+ob.node.Addr(), func() bool {
			brokers, stale, _ := fetch(ob)
			return brokers == 3 && stale == 0
		})
		_, _, entries := fetch(ob)
		for _, name := range []string{"b1", "b2", "b3"} {
			if !entries[name] {
				t.Errorf("broker %d's cluster view lacks a fresh %s entry: %v", i+1, name, entries)
			}
		}
	}
}

// TestTwoBrokerObservability is the integration scenario behind the CI
// observability step: two brokers federate over TCP, a publication
// flows b1→b2, both /metrics endpoints expose non-zero stage
// histograms, and the origin's /api/trace returns the complete span
// chain including the remote deliver reported back over the overlay.
func TestTwoBrokerObservability(t *testing.T) {
	b1 := startObsBroker(t, "b1")
	b2 := startObsBroker(t, "b2", b1.node.Addr())

	api := func(ob *obsBroker, path string, body map[string]any) map[string]any {
		t.Helper()
		buf, _ := json.Marshal(body)
		resp, err := http.Post(ob.ts.URL+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s: %d %v", path, resp.StatusCode, out)
		}
		return out
	}

	// Subscriber on b2; wait for its interest to flood to b1.
	api(b2, "/api/register", map[string]any{"name": "acme", "transport": "sms", "addr": "555-0100"})
	api(b2, "/api/subscribe", map[string]any{
		"client": "acme", "subscription": "(university = Toronto)",
	})
	waitUntil(t, "subscription propagation to b1", func() bool {
		return b1.b.Stats().Remote.RemoteSubs >= 1
	})

	// Publish at b1: must traverse the overlay and deliver at b2.
	out := api(b1, "/api/publish", map[string]any{"event": "(school, Toronto)"})
	pubID, _ := out["pub_id"].(string)
	if pubID == "" {
		t.Fatalf("publish response missing pub_id: %v", out)
	}

	// The deliver span is reported back asynchronously; poll the origin's
	// trace endpoint until the chain closes.
	traceURL := b1.ts.URL + "/api/trace/" + strings.ReplaceAll(pubID, "#", "%23")
	kinds := make(map[string]int)
	waitUntil(t, "complete span chain at the origin", func() bool {
		resp, err := http.Get(traceURL)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return false
		}
		var tr struct {
			Spans []struct {
				Kind   string `json:"kind"`
				Broker string `json:"broker"`
			} `json:"spans"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
			t.Fatal(err)
		}
		clear(kinds)
		for _, s := range tr.Spans {
			kinds[s.Kind]++
		}
		return kinds["deliver"] >= 1
	})
	for _, want := range []string{"publish", "match", "forward", "recv", "deliver"} {
		if kinds[want] == 0 {
			t.Errorf("span chain lacks a %s span: %v", want, kinds)
		}
	}

	// The laggiest-subscription view is live on both brokers; b2 owns
	// the only subscription and must report it delivered.
	waitUntil(t, "delivery accounted on b2's /api/v1/subs", func() bool {
		resp, err := http.Get(b2.ts.URL + "/api/v1/subs")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb struct {
			Total int `json:"total"`
			Subs  []struct {
				Client    string `json:"client"`
				Delivered uint64 `json:"delivered"`
			} `json:"subs"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.Total == 1 && len(sb.Subs) == 1 &&
			sb.Subs[0].Client == "acme" && sb.Subs[0].Delivered >= 1
	})

	// Both brokers expose populated stage histograms.
	for i, ob := range []*obsBroker{b1, b2} {
		resp, err := http.Get(ob.ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		text := string(raw)
		for _, metric := range []string{
			"stopss_stage_match_seconds_count",
			"stopss_stage_publish_seconds_count",
		} {
			// b2 never ran a local publish admission: its publish stage
			// may legitimately be zero, but match must not be.
			if i == 1 && metric == "stopss_stage_publish_seconds_count" {
				continue
			}
			found := false
			for _, line := range strings.Split(text, "\n") {
				if strings.HasPrefix(line, metric) && !strings.HasSuffix(line, " 0") {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("broker %d: %s missing or zero in /metrics", i+1, metric)
			}
		}
	}
}
