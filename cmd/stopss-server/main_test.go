package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"stopss/internal/broker"
	"stopss/internal/journal"
	"stopss/internal/notify"
	"stopss/internal/sublang"
	"stopss/internal/webapp"
)

// TestServerStackEndToEnd exercises buildStack exactly as run() uses it:
// the builtin ontology, the counting matcher, the HTTP handler tree, and
// snapshot save/restore across two stack instances.
func TestServerStackEndToEnd(t *testing.T) {
	b, notifier, cleanup, err := buildStack(stackOptions{Addr: "127.0.0.1:0", Matcher: "counting", Mode: "semantic"})
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	defer notifier.Close()
	ts := httptest.NewServer(webapp.NewServer(b))
	defer ts.Close()

	post := func(path string, body map[string]any) map[string]any {
		t.Helper()
		buf, _ := json.Marshal(body)
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s: %d %v", path, resp.StatusCode, out)
		}
		return out
	}

	post("/api/register", map[string]any{"name": "acme"})
	post("/api/subscribe", map[string]any{
		"client":       "acme",
		"subscription": "(university = Toronto) and (professional experience >= 4)",
	})
	out := post("/api/publish", map[string]any{
		"event": "(school, Toronto)(graduation year, 1990)",
	})
	if ms := out["matches"].([]any); len(ms) != 1 {
		t.Fatalf("matches = %v", out)
	}

	// Snapshot to disk, restore into a second stack, verify behaviour.
	snapPath := filepath.Join(t.TempDir(), "state.jsonl")
	f, err := os.Create(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Snapshot(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	b2, notifier2, cleanup2, err := buildStack(stackOptions{Addr: "127.0.0.1:0", Matcher: "cluster", Mode: "semantic"})
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup2()
	defer notifier2.Close()
	f2, err := os.Open(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if err := b2.Restore(f2); err != nil {
		t.Fatal(err)
	}
	ev, err := sublang.ParseEvent("(school, Toronto)(graduation year, 1990)")
	if err != nil {
		t.Fatal(err)
	}
	res, err := b2.Publish(ev)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 {
		t.Fatalf("restored stack (cluster matcher) matches = %v", res.Matches)
	}
}

// TestKBWatcherDetectsRewrite: the watcher consumes appended lines
// incrementally, replays idempotently from a fresh start, and detects
// a regenerated file of EQUAL size — a stale-offset read would skip
// the new file's earlier lines entirely and stamp its tail with
// continuation line numbers no fresh reader of the same file mints.
func TestKBWatcherDetectsRewrite(t *testing.T) {
	b, notifier, cleanup, err := buildStack(stackOptions{Addr: "127.0.0.1:0", Matcher: "counting", Mode: "semantic"})
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	defer notifier.Close()

	path := filepath.Join(t.TempDir(), "update.jsonl")
	write := func(content string) {
		t.Helper()
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	deltas := func() int { return b.KnowledgeVersion().Deltas }

	l1 := `{"op":"add_synonym","root":"flurble","terms":["blorp"]}` + "\n"
	l2 := `{"op":"add_concept","term":"zeppelin"}` + "\n"

	w := newKBWatcher(path, b)
	write(l1)
	w.poll()
	if got := deltas(); got != 1 {
		t.Fatalf("after first line: %d deltas, want 1", got)
	}

	// Append-only growth consumes only the new line.
	write(l1 + l2)
	w.poll()
	if got := deltas(); got != 2 {
		t.Fatalf("after append: %d deltas, want 2", got)
	}

	// A fresh watcher over the same file (broker restart) replays to
	// identical stamps: pure duplicates.
	newKBWatcher(path, b).poll()
	if got := deltas(); got != 2 {
		t.Fatalf("restart replay re-injected: %d deltas, want 2", got)
	}

	// Regenerate the file at the SAME byte size with a changed first
	// line. The old size-only check read from the stale offset and
	// missed it; the prefix hash must trigger a full replay that
	// injects the changed line (and dedups the unchanged one).
	l1b := `{"op":"add_synonym","root":"flurble","terms":["blarp"]}` + "\n"
	if len(l1b) != len(l1) {
		t.Fatalf("test invariant: rewritten line must keep the file size (%d vs %d)", len(l1b), len(l1))
	}
	write(l1b + l2)
	w.poll()
	if got := deltas(); got != 3 {
		t.Fatalf("equal-size rewrite: %d deltas, want 3 (changed line skipped?)", got)
	}
}

func TestBuildStackRejectsBadFlags(t *testing.T) {
	if _, _, _, err := buildStack(stackOptions{Addr: "x", Matcher: "quantum", Mode: "semantic"}); err == nil {
		t.Error("unknown matcher must fail")
	}
	if _, _, _, err := buildStack(stackOptions{Addr: "x", Matcher: "quantum", Mode: "semantic", Shards: 4}); err == nil {
		t.Error("unknown matcher must fail in sharded mode too")
	}
	if _, _, _, err := buildStack(stackOptions{Addr: "x", Matcher: "counting", Mode: "psychic"}); err == nil {
		t.Error("unknown mode must fail")
	}
	if _, _, _, err := buildStack(stackOptions{Addr: "x", Ontology: "/nonexistent.odl", Matcher: "counting", Mode: "semantic"}); err == nil {
		t.Error("missing ontology file must fail")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.odl")
	if err := os.WriteFile(bad, []byte("this is not odl"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := buildStack(stackOptions{Addr: "x", Ontology: bad, Matcher: "counting", Mode: "semantic"}); err == nil {
		t.Error("malformed ontology must fail")
	}
}

// TestServerStackSharded runs the HTTP stack on an 8-shard engine pool:
// the same publish/subscribe flow must behave identically.
func TestServerStackSharded(t *testing.T) {
	b, notifier, cleanup, err := buildStack(stackOptions{Addr: "127.0.0.1:0", Matcher: "counting", Mode: "semantic", Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	defer notifier.Close()
	ts := httptest.NewServer(webapp.NewServer(b))
	defer ts.Close()

	buf, _ := json.Marshal(map[string]any{"name": "acme"})
	resp, err := http.Post(ts.URL+"/api/register", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	buf, _ = json.Marshal(map[string]any{
		"client":       "acme",
		"subscription": "(university = Toronto) and (professional experience >= 4)",
	})
	resp, err = http.Post(ts.URL+"/api/subscribe", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	ev, err := sublang.ParseEvent("(school, Toronto)(graduation year, 1990)")
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Publish(ev)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 {
		t.Fatalf("sharded stack matches = %v", res.Matches)
	}
	if got := b.Engine().MatcherName(); got != "counting×8" {
		t.Fatalf("matcher name = %q", got)
	}
}

// TestKBWatchIntervalPromptPickup drives the ticker loop itself (not
// just poll) and proves the interval flag controls the poll cadence
// from both sides: a 20ms watcher picks an appended delta up, while an
// hour-long watcher provably cannot have fired yet — without asserting
// tight wall-clock latencies that flake on loaded CI runners.
func TestKBWatchIntervalPromptPickup(t *testing.T) {
	b, notifier, cleanup, err := buildStack(stackOptions{Addr: "127.0.0.1:0", Matcher: "counting", Mode: "semantic"})
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	defer notifier.Close()

	dir := t.TempDir()
	fast := filepath.Join(dir, "fast.jsonl")
	slow := filepath.Join(dir, "slow.jsonl")
	for _, p := range []string{fast, slow} {
		if err := os.WriteFile(p, nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{}, 2)
	go func() { watchKBFile(ctx, fast, 20*time.Millisecond, b); done <- struct{}{} }()
	go func() { watchKBFile(ctx, slow, time.Hour, b); done <- struct{}{} }()

	if err := os.WriteFile(slow,
		[]byte(`{"op":"add_concept","term":"never-seen"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(fast,
		[]byte(`{"op":"add_synonym","root":"flurble","terms":["quux"]}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for b.KnowledgeVersion().Deltas == 0 {
		if time.Now().After(deadline) {
			t.Fatal("appended delta never picked up by the 20ms watcher")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The hour watcher's first tick is an hour away: the fast watcher's
	// pickup happening first proves the flag sets the cadence (the old
	// hardcoded 1s ticker would have injected the slow file's delta too).
	if got := b.KnowledgeVersion().Deltas; got != 1 {
		t.Fatalf("%d deltas applied, want 1 (the 1h watcher must not have polled)", got)
	}
	cancel()
	for i := 0; i < 2; i++ {
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			t.Fatal("watcher did not stop on context cancel")
		}
	}
}

// TestServerJournalRestart exercises the run() journal wiring order —
// open journal, attach, restore snapshot, catch up — across two stack
// incarnations sharing one journal directory.
func TestServerJournalRestart(t *testing.T) {
	dir := t.TempDir()
	jnl, err := journal.Open(journal.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	b, notifier, cleanup, err := buildStack(stackOptions{Addr: "127.0.0.1:0", Matcher: "counting", Mode: "semantic"})
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	defer notifier.Close()
	b.AttachJournal(jnl)

	var got atomic.Int64
	sink, err := notify.NewTCPSink("127.0.0.1:0", func(notify.Notification) { got.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	if err := b.Register(broker.Client{Name: "acme",
		Route: notify.Route{Transport: "tcp", Addr: sink.Addr()}}); err != nil {
		t.Fatal(err)
	}
	preds, err := sublang.ParseSubscription("(university = Toronto)")
	if err != nil {
		t.Fatal(err)
	}
	id, err := b.SubscribeDurable("acme", preds)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := sublang.ParseEvent("(school, Toronto)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Publish(ev); err != nil {
		t.Fatal(err)
	}
	if !notifier.Drain(5 * time.Second) {
		t.Fatal("notifier did not drain")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if cur, _ := b.DurableCursor(id); cur >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("durable cursor never advanced")
		}
		time.Sleep(time.Millisecond)
	}

	snapPath := filepath.Join(t.TempDir(), "state.jsonl")
	f, err := os.Create(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Snapshot(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := jnl.Close(); err != nil {
		t.Fatal(err)
	}

	// Second incarnation: same journal dir, snapshot restored AFTER the
	// journal attaches (run()'s order), then catch-up.
	jnl2, err := journal.Open(journal.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer jnl2.Close()
	b2, notifier2, cleanup2, err := buildStack(stackOptions{Addr: "127.0.0.1:0", Matcher: "counting", Mode: "semantic"})
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup2()
	defer notifier2.Close()
	b2.AttachJournal(jnl2)
	f2, err := os.Open(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if err := b2.Restore(f2); err != nil {
		t.Fatal(err)
	}
	if cur, ok := b2.DurableCursor(id); !ok || cur != 1 {
		t.Fatalf("restored durable cursor = %d,%v want 1", cur, ok)
	}
	// Everything was acknowledged before the restart: nothing replays.
	if n, err := b2.CatchUp(); err != nil || n != 0 {
		t.Fatalf("catch-up = %d,%v want 0 redispatches", n, err)
	}
	if got.Load() != 1 {
		t.Fatalf("sink saw %d deliveries, want exactly 1", got.Load())
	}
}
