// Command benchgate turns `go test -bench` output into a benchmark
// regression gate for CI. It reads benchmark results on stdin — either
// the `go test -json` event stream or plain text output — aggregates
// the best (minimum) ns/op per benchmark across repeated runs
// (`-count 3` in CI, so scheduler noise inflates at most the losers),
// and:
//
//	benchgate -update            writes the results to the baseline file
//	benchgate                    writes -out and fails (exit 1) when any
//	                             benchmark regressed more than -max-regress
//	                             against the checked-in baseline
//
// Benchmark names are normalized by stripping the trailing -GOMAXPROCS
// suffix, so baselines survive core-count changes (absolute timings do
// not survive hardware changes — refresh the baseline when the runner
// class moves; see README "Refreshing the benchmark baseline").
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the on-disk format of BENCH_baseline.json / BENCH_ci.json.
type Baseline struct {
	// NsPerOp maps normalized benchmark name to best-of-N ns/op.
	NsPerOp map[string]float64 `json:"ns_per_op"`
	// AllocsPerOp maps normalized benchmark name to best-of-N
	// allocs/op, present only for benchmarks that call ReportAllocs.
	// Allocation counts are nearly deterministic, so this gate catches
	// hot-path allocation creep that ns/op noise would hide.
	AllocsPerOp map[string]float64 `json:"allocs_per_op,omitempty"`
}

// testEvent is the subset of the `go test -json` event schema we need.
type testEvent struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

// benchLine matches one benchmark result line, capturing the name
// (GOMAXPROCS suffix split off) and the ns/op figure; allocsPerOp then
// fishes the allocs/op figure (present with -benchmem or ReportAllocs)
// out of the rest of the line.
var (
	benchLine   = regexp.MustCompile(`^(Benchmark[^\s]+?)(-\d+)?\s+\d+\s+([0-9.]+) ns/op`)
	allocsPerOp = regexp.MustCompile(`\s([0-9.]+) allocs/op`)
)

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "checked-in baseline file")
	outPath := flag.String("out", "BENCH_ci.json", "where to write this run's parsed results")
	maxRegress := flag.Float64("max-regress", 0.25, "maximum tolerated ns/op regression (0.25 = +25%)")
	update := flag.Bool("update", false, "write the parsed results to -baseline and exit")
	flag.Parse()

	got, err := parse(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(got.NsPerOp) == 0 {
		fatal(fmt.Errorf("no benchmark results on stdin (run go test -bench ... and pipe the output)"))
	}

	if *update {
		// Show what the refresh changes against the previous baseline —
		// informational only: an update never fails, but a surprising
		// delta in this table is the reviewer's cue to look closer.
		if base, err := read(*baselinePath); err == nil {
			fmt.Printf("benchgate: drift against previous %s:\n", *baselinePath)
			compare(os.Stdout, base, got, *maxRegress)
		}
		if err := write(*baselinePath, got); err != nil {
			fatal(err)
		}
		fmt.Printf("benchgate: wrote %d benchmarks to %s\n", len(got.NsPerOp), *baselinePath)
		return
	}

	if err := write(*outPath, got); err != nil {
		fatal(err)
	}
	base, err := read(*baselinePath)
	if err != nil {
		fatal(fmt.Errorf("%v (seed it with: go test -run xxx -bench ... . | go run ./cmd/benchgate -update)", err))
	}
	regressions := compare(os.Stdout, base, got, *maxRegress)
	if len(regressions) > 0 {
		fmt.Printf("benchgate: FAIL — %d benchmark(s) regressed more than %.0f%%\n",
			len(regressions), *maxRegress*100)
		os.Exit(1)
	}
	fmt.Printf("benchgate: OK — %d benchmarks within %.0f%% of baseline\n",
		len(got.NsPerOp), *maxRegress*100)
}

// parse consumes benchmark output — `go test -json` events or plain
// text — and returns the best ns/op per normalized benchmark name.
//
// JSON events are NOT scanned line-by-line: `go test` prints a
// benchmark's name before running it and the timing after, so
// test2json delivers the two halves as separate Output events. The
// output text is reassembled first and split on real newlines.
func parse(r io.Reader) (Baseline, error) {
	out := Baseline{
		NsPerOp:     make(map[string]float64),
		AllocsPerOp: make(map[string]float64),
	}
	var text strings.Builder
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) > 0 && line[0] == '{' {
			var ev testEvent
			if err := json.Unmarshal(line, &ev); err == nil {
				if ev.Action == "output" {
					text.WriteString(ev.Output)
				}
				continue
			}
		}
		text.Write(line)
		text.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return out, err
	}
	for _, line := range strings.Split(text.String(), "\n") {
		record(&out, line)
	}
	return out, nil
}

// record folds one output line into the result maps, keeping the
// minimum ns/op (and allocs/op, when reported) seen for each benchmark.
func record(acc *Baseline, line string) {
	m := benchLine.FindStringSubmatch(line)
	if m == nil {
		return
	}
	name := m[1]
	if ns, err := strconv.ParseFloat(m[3], 64); err == nil {
		if cur, ok := acc.NsPerOp[name]; !ok || ns < cur {
			acc.NsPerOp[name] = ns
		}
	}
	if a := allocsPerOp.FindStringSubmatch(line); a != nil {
		if n, err := strconv.ParseFloat(a[1], 64); err == nil {
			if cur, ok := acc.AllocsPerOp[name]; !ok || n < cur {
				acc.AllocsPerOp[name] = n
			}
		}
	}
}

// compare prints a per-benchmark verdict and returns the names that
// regressed beyond the tolerance — on ns/op or on allocs/op (the same
// drift rule applies to both; allocation regressions are reported as
// "name (allocs)"). Benchmarks missing on either side are reported but
// never fail the gate: a renamed or newly added benchmark needs a
// baseline refresh, not a red main.
func compare(w io.Writer, base, got Baseline, maxRegress float64) []string {
	names := make([]string, 0, len(got.NsPerOp))
	for name := range got.NsPerOp {
		names = append(names, name)
	}
	sort.Strings(names)

	var regressions []string
	for _, name := range names {
		cur := got.NsPerOp[name]
		ref, ok := base.NsPerOp[name]
		if !ok {
			fmt.Fprintf(w, "  NEW    %-60s %12.0f ns/op (not in baseline; refresh it)\n", name, cur)
			continue
		}
		delta := (cur - ref) / ref
		verdict := "ok"
		if delta > maxRegress {
			verdict = "REGRESS"
			regressions = append(regressions, name)
		}
		fmt.Fprintf(w, "  %-6s %-60s %12.0f ns/op  baseline %12.0f  (%+.1f%%)\n",
			verdict, name, cur, ref, delta*100)

		aCur, haveCur := got.AllocsPerOp[name]
		aRef, haveRef := base.AllocsPerOp[name]
		if !haveCur || !haveRef {
			continue // benchmark does not report allocations (or gained them: refresh)
		}
		aVerdict, aDelta := "ok", 0.0
		switch {
		case aRef > 0:
			aDelta = (aCur - aRef) / aRef
			if aDelta > maxRegress {
				aVerdict = "REGRESS"
			}
		case aCur > 0: // from zero allocations, any allocation is a regression
			aVerdict = "REGRESS"
			aDelta = 1
		}
		if aVerdict == "REGRESS" {
			regressions = append(regressions, name+" (allocs)")
		}
		fmt.Fprintf(w, "  %-6s %-60s %12.1f allocs/op  baseline %9.1f  (%+.1f%%)\n",
			aVerdict, name, aCur, aRef, aDelta*100)
	}
	for name := range base.NsPerOp {
		if _, ok := got.NsPerOp[name]; !ok {
			fmt.Fprintf(w, "  GONE   %-60s (in baseline but not in this run)\n", name)
		}
	}
	return regressions
}

func read(path string) (Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Baseline{}, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return Baseline{}, fmt.Errorf("parsing %s: %w", path, err)
	}
	if b.NsPerOp == nil {
		b.NsPerOp = make(map[string]float64)
	}
	if b.AllocsPerOp == nil {
		b.AllocsPerOp = make(map[string]float64)
	}
	return b, nil
}

func write(path string, b Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
	os.Exit(2)
}
