package main

import (
	"strings"
	"testing"
)

// jsonStream mimics real test2json output, including the split that
// matters: a benchmark's name is printed BEFORE it runs and its timing
// after, arriving as two separate Output events.
const jsonStream = `{"Action":"run","Test":"BenchmarkShard"}
{"Action":"output","Output":"goos: linux\n"}
{"Action":"output","Output":"BenchmarkShard/shards=2/subs=20000-8 \t"}
{"Action":"output","Output":"      50\t    104060 ns/op\n"}
{"Action":"output","Output":"BenchmarkShard/shards=2/subs=20000-8 \t      50\t     99800 ns/op\n"}
{"Action":"output","Output":"BenchmarkKnowledgeMultiOrigin/subs=10000/tailmerge-8 \t50\t2101277 ns/op\t1.000 refolds/op\n"}
{"Action":"output","Output":"not a bench line\n"}
`

func TestParseJSONStream(t *testing.T) {
	got, err := parse(strings.NewReader(jsonStream))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.NsPerOp) != 2 {
		t.Fatalf("parsed %d benchmarks: %v", len(got.NsPerOp), got.NsPerOp)
	}
	// GOMAXPROCS suffix stripped, minimum of repeated runs kept.
	if ns := got.NsPerOp["BenchmarkShard/shards=2/subs=20000"]; ns != 99800 {
		t.Fatalf("Shard ns/op = %v, want 99800 (min of repeats)", ns)
	}
	if ns := got.NsPerOp["BenchmarkKnowledgeMultiOrigin/subs=10000/tailmerge"]; ns != 2101277 {
		t.Fatalf("MultiOrigin ns/op = %v", ns)
	}
}

func TestParsePlainText(t *testing.T) {
	got, err := parse(strings.NewReader("BenchmarkX-4   100   5000 ns/op   12 B/op   3 allocs/op\n" +
		"BenchmarkX-4   100   5100 ns/op   12 B/op   2 allocs/op\n" +
		"BenchmarkY-4   100   7000 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if ns := got.NsPerOp["BenchmarkX"]; ns != 5000 {
		t.Fatalf("plain text parse: %v", got.NsPerOp)
	}
	// allocs/op tracked independently (min of repeats), and only for
	// benchmarks that report it.
	if a := got.AllocsPerOp["BenchmarkX"]; a != 2 {
		t.Fatalf("allocs parse: %v", got.AllocsPerOp)
	}
	if _, ok := got.AllocsPerOp["BenchmarkY"]; ok {
		t.Fatalf("BenchmarkY reports no allocations but was recorded: %v", got.AllocsPerOp)
	}
}

func TestCompareGate(t *testing.T) {
	base := Baseline{NsPerOp: map[string]float64{
		"BenchmarkA":    1000,
		"BenchmarkB":    1000,
		"BenchmarkGone": 1,
	}}
	got := Baseline{NsPerOp: map[string]float64{
		"BenchmarkA":   1240, // +24% — within a 25% gate
		"BenchmarkB":   1260, // +26% — regression
		"BenchmarkNew": 42,   // not in baseline — informational only
	}}
	var sb strings.Builder
	regressed := compare(&sb, base, got, 0.25)
	if len(regressed) != 1 || regressed[0] != "BenchmarkB" {
		t.Fatalf("regressions = %v, want [BenchmarkB]\n%s", regressed, sb.String())
	}
	out := sb.String()
	for _, want := range []string{"REGRESS", "NEW", "GONE", "ok"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestCompareGatesAllocs(t *testing.T) {
	base := Baseline{
		NsPerOp:     map[string]float64{"BenchmarkA": 1000, "BenchmarkB": 1000, "BenchmarkZ": 1000},
		AllocsPerOp: map[string]float64{"BenchmarkA": 100, "BenchmarkB": 100, "BenchmarkZ": 0},
	}
	got := Baseline{
		NsPerOp:     map[string]float64{"BenchmarkA": 1000, "BenchmarkB": 1000, "BenchmarkZ": 1000},
		AllocsPerOp: map[string]float64{"BenchmarkA": 120, "BenchmarkB": 130, "BenchmarkZ": 1},
	}
	var sb strings.Builder
	regressed := compare(&sb, base, got, 0.25)
	// B drifted +30% allocs; Z went from zero allocations to one (any
	// growth from zero fails); A's +20% passes. ns/op is flat for all.
	if len(regressed) != 2 || regressed[0] != "BenchmarkB (allocs)" || regressed[1] != "BenchmarkZ (allocs)" {
		t.Fatalf("regressions = %v, want [BenchmarkB (allocs) BenchmarkZ (allocs)]\n%s", regressed, sb.String())
	}
	if !strings.Contains(sb.String(), "allocs/op") {
		t.Errorf("report missing allocs/op lines:\n%s", sb.String())
	}
}
