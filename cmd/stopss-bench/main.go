// Command stopss-bench runs the experiment harness of EXPERIMENTS.md and
// prints one table per experiment.
//
// Usage:
//
//	stopss-bench                  # run everything at full scale
//	stopss-bench -exp T1,T3      # run selected experiments
//	stopss-bench -scale 10       # divide workload sizes by 10
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"stopss/internal/bench"
)

func main() {
	exps := flag.String("exp", "all", "comma-separated experiment IDs (F1,T1..T8) or 'all'")
	scale := flag.Int("scale", 1, "divide workload sizes by this factor (1 = full scale)")
	flag.Parse()

	ids := bench.Experiments()
	if *exps != "all" {
		ids = strings.Split(*exps, ",")
	}
	sc := bench.Scale{Div: *scale}

	for i, id := range ids {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		t0 := time.Now()
		out, err := bench.Run(id, sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stopss-bench: %v\n", err)
			os.Exit(1)
		}
		if i > 0 {
			fmt.Println(strings.Repeat("=", 72))
		}
		fmt.Print(out)
		fmt.Printf("\n[%s completed in %v]\n", id, time.Since(t0).Round(time.Millisecond))
	}
}
