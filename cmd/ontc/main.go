// Command ontc is the ODL ontology compiler and checker: it parses one
// or more ODL documents, compiles them into the runtime structures, and
// reports a summary or the first error. With several inputs the compiled
// ontologies are merged (multi-domain check).
//
// With -delta it instead diffs exactly two compiled ontologies and
// emits the knowledge-delta log (one JSON delta per line) that evolves
// the first into the second — the input format of the stopss-server
// -kb-watch flag and POST /api/kb admin endpoint, which replicate the
// deltas across the broker federation at runtime.
//
// Usage:
//
//	ontc jobs.odl
//	ontc -normalize -prefix jobs.odl autos.odl
//	ontc -builtin                  # compile the embedded job-finder/autos domains
//	ontc -delta old.odl new.odl > update.jsonl
package main

import (
	"flag"
	"fmt"
	"os"

	"stopss/internal/knowledge"
	"stopss/internal/ontology"
	"stopss/internal/workload"
)

func main() {
	normalize := flag.Bool("normalize", false, "lower-case and space-normalize all terms")
	prefix := flag.Bool("prefix", false, "prefix rule names with their domain")
	builtin := flag.Bool("builtin", false, "compile the embedded jobs and autos ontologies")
	format := flag.Bool("fmt", false, "print each input reformatted in canonical ODL instead of compiling")
	delta := flag.Bool("delta", false, "diff two ontologies (old new) and print a JSONL knowledge-delta log")
	flag.Parse()

	opts := ontology.Options{Normalize: *normalize, Prefix: *prefix}
	type input struct {
		name string
		src  string
	}
	var inputs []input
	if *builtin {
		inputs = append(inputs,
			input{"builtin:jobs", workload.JobsODL},
			input{"builtin:autos", workload.AutosODL})
	}
	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ontc: %v\n", err)
			os.Exit(1)
		}
		inputs = append(inputs, input{path, string(src)})
	}
	if len(inputs) == 0 {
		fmt.Fprintln(os.Stderr, "ontc: no input (pass .odl files or -builtin)")
		os.Exit(2)
	}

	if *format {
		for _, in := range inputs {
			doc, err := ontology.Parse(in.src)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ontc: %s: %v\n", in.name, err)
				os.Exit(1)
			}
			fmt.Print(ontology.Format(doc))
		}
		return
	}

	if *delta {
		if len(inputs) != 2 {
			fmt.Fprintln(os.Stderr, "ontc: -delta needs exactly two inputs: old.odl new.odl")
			os.Exit(2)
		}
		var structs [2]knowledge.Structures
		for i, in := range inputs {
			ont, err := ontology.Load(in.src, opts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ontc: %s: %v\n", in.name, err)
				os.Exit(1)
			}
			structs[i] = knowledge.Structures{
				Synonyms: ont.Synonyms, Hierarchy: ont.Hierarchy, Mappings: ont.Mappings,
			}
		}
		deltas, warnings, err := knowledge.Diff(structs[0], structs[1])
		if err != nil {
			fmt.Fprintf(os.Stderr, "ontc: diff: %v\n", err)
			os.Exit(1)
		}
		for _, w := range warnings {
			fmt.Fprintf(os.Stderr, "ontc: warning: %s\n", w)
		}
		for _, d := range deltas {
			line, err := knowledge.Encode(d)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ontc: encoding %s: %v\n", d, err)
				os.Exit(1)
			}
			fmt.Printf("%s\n", line)
		}
		fmt.Fprintf(os.Stderr, "ontc: %d deltas, %d warnings\n", len(deltas), len(warnings))
		return
	}

	var compiled []*ontology.Ontology
	for _, in := range inputs {
		ont, err := ontology.Load(in.src, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ontc: %s: %v\n", in.name, err)
			os.Exit(1)
		}
		fmt.Printf("%-20s %s\n", in.name+":", ont.Summary())
		compiled = append(compiled, ont)
	}
	if len(compiled) > 1 {
		merged, err := ontology.Merge(compiled...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ontc: merge: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%-20s %s\n", "merged:", merged.Summary())
	}
}
