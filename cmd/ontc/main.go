// Command ontc is the ODL ontology compiler and checker: it parses one
// or more ODL documents, compiles them into the runtime structures, and
// reports a summary or the first error. With several inputs the compiled
// ontologies are merged (multi-domain check).
//
// Usage:
//
//	ontc jobs.odl
//	ontc -normalize -prefix jobs.odl autos.odl
//	ontc -builtin            # compile the embedded job-finder/autos domains
package main

import (
	"flag"
	"fmt"
	"os"

	"stopss/internal/ontology"
	"stopss/internal/workload"
)

func main() {
	normalize := flag.Bool("normalize", false, "lower-case and space-normalize all terms")
	prefix := flag.Bool("prefix", false, "prefix rule names with their domain")
	builtin := flag.Bool("builtin", false, "compile the embedded jobs and autos ontologies")
	format := flag.Bool("fmt", false, "print each input reformatted in canonical ODL instead of compiling")
	flag.Parse()

	opts := ontology.Options{Normalize: *normalize, Prefix: *prefix}
	type input struct {
		name string
		src  string
	}
	var inputs []input
	if *builtin {
		inputs = append(inputs,
			input{"builtin:jobs", workload.JobsODL},
			input{"builtin:autos", workload.AutosODL})
	}
	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ontc: %v\n", err)
			os.Exit(1)
		}
		inputs = append(inputs, input{path, string(src)})
	}
	if len(inputs) == 0 {
		fmt.Fprintln(os.Stderr, "ontc: no input (pass .odl files or -builtin)")
		os.Exit(2)
	}

	if *format {
		for _, in := range inputs {
			doc, err := ontology.Parse(in.src)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ontc: %s: %v\n", in.name, err)
				os.Exit(1)
			}
			fmt.Print(ontology.Format(doc))
		}
		return
	}

	var compiled []*ontology.Ontology
	for _, in := range inputs {
		ont, err := ontology.Load(in.src, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ontc: %s: %v\n", in.name, err)
			os.Exit(1)
		}
		fmt.Printf("%-20s %s\n", in.name+":", ont.Summary())
		compiled = append(compiled, ont)
	}
	if len(compiled) > 1 {
		merged, err := ontology.Merge(compiled...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ontc: merge: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%-20s %s\n", "merged:", merged.Summary())
	}
}
