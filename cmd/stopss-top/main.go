// Command stopss-top is a live terminal dashboard over the federation
// health plane (DESIGN §10). It polls one broker's HTTP API — GET
// /api/v1/cluster for the gossiped cluster view and GET /api/v1/subs
// for the per-subscription delivery accounting — and renders three
// tables: broker health across the whole federation (any broker's
// view covers every peer, so one -url suffices), the hottest overlay
// links by queue depth and traffic, and the laggiest subscriptions on
// the polled broker.
//
// Usage:
//
//	stopss-top -url http://127.0.0.1:8080
//	stopss-top -url http://127.0.0.1:8080 -interval 2s -n 10
//	stopss-top -once            # one frame, no screen control (for scripts)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"time"
)

// The wire shapes below mirror overlay.ClusterEntry / broker.SubStat,
// decoded loosely so the tool keeps working as the server grows
// fields. stopss-top deliberately imports no internal packages: it is
// a pure HTTP client, usable against any reachable broker.

type opsLink struct {
	Peer     string `json:"peer"`
	Codec    int    `json:"codec"`
	Queue    int    `json:"queue"`
	Inflight int64  `json:"inflight"`
	Sent     uint64 `json:"sent"`
	Recv     uint64 `json:"recv"`
}

type opsSummary struct {
	Origin        string    `json:"origin"`
	Epoch         string    `json:"epoch"`
	Stamp         time.Time `json:"stamp"`
	Links         []opsLink `json:"links"`
	Subscriptions int       `json:"subscriptions"`
	Durable       int       `json:"durable"`
	Detached      int       `json:"detached"`
	Published     uint64    `json:"published"`
	Delivered     uint64    `json:"delivered"`
	Parked        uint64    `json:"parked"`
	DeadLetters   int       `json:"dead_letters"`
	JournalHead   uint64    `json:"journal_head"`
	JournalFloor  uint64    `json:"journal_floor"`
	StoreResident int       `json:"store_resident"`
	Goroutines    int64     `json:"goroutines"`
	HeapBytes     uint64    `json:"heap_bytes"`
}

type clusterEntry struct {
	Broker  string     `json:"broker"`
	Self    bool       `json:"self"`
	AgeMS   int64      `json:"age_ms"`
	Stale   bool       `json:"stale"`
	Down    bool       `json:"down"`
	Summary opsSummary `json:"summary"`
}

type clusterView struct {
	Brokers int            `json:"brokers"`
	Stale   int            `json:"stale"`
	Cluster []clusterEntry `json:"cluster"`
}

type subRow struct {
	ID                uint64 `json:"id"`
	Client            string `json:"client"`
	Durable           bool   `json:"durable"`
	Matched           uint64 `json:"matched"`
	Delivered         uint64 `json:"delivered"`
	Retried           uint64 `json:"retried"`
	Parked            uint64 `json:"parked"`
	Pending           int    `json:"pending"`
	Lag               uint64 `json:"lag"`
	LastDeliveryAgeMS int64  `json:"last_delivery_age_ms"`
}

type subsView struct {
	Total int      `json:"total"`
	Subs  []subRow `json:"subs"`
}

func fetchJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 200))
		return fmt.Errorf("GET %s: %s: %s", url, resp.Status, body)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// hotLink is one overlay link flattened out of the cluster view for
// the hottest-links table, keyed by reporting broker.
type hotLink struct {
	broker string
	l      opsLink
}

func render(w io.Writer, url string, cv *clusterView, sv *subsView, subErr error, topN int) {
	now := time.Now().Format("15:04:05")
	fmt.Fprintf(w, "stopss-top — %s — %s   brokers:%d stale:%d\n\n",
		url, now, cv.Brokers, cv.Stale)

	// Broker health across the federation.
	fmt.Fprintf(w, "%-12s %-6s %8s %6s %8s %9s %10s %8s %7s %7s %9s\n",
		"BROKER", "STATE", "AGE", "SUBS", "DURABLE", "PUBLISHED", "DELIVERED", "PARKED", "JHEAD", "GOROS", "HEAP")
	for _, e := range cv.Cluster {
		state, age := "ok", "live"
		switch {
		case e.Down:
			state = "DOWN"
		case e.Stale:
			state = "STALE"
		}
		if !e.Self {
			age = (time.Duration(e.AgeMS) * time.Millisecond).Round(time.Millisecond).String()
		}
		s := e.Summary
		fmt.Fprintf(w, "%-12s %-6s %8s %6d %8d %9d %10d %8d %7d %7d %9s\n",
			e.Broker, state, age, s.Subscriptions, s.Durable,
			s.Published, s.Delivered, s.Parked, s.JournalHead,
			s.Goroutines, fmtBytes(s.HeapBytes))
	}

	// Hottest links: deepest queues first, then busiest.
	var links []hotLink
	for _, e := range cv.Cluster {
		for _, l := range e.Summary.Links {
			links = append(links, hotLink{e.Broker, l})
		}
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i].l.Queue != links[j].l.Queue {
			return links[i].l.Queue > links[j].l.Queue
		}
		return links[i].l.Sent+links[i].l.Recv > links[j].l.Sent+links[j].l.Recv
	})
	if len(links) > topN {
		links = links[:topN]
	}
	if len(links) > 0 {
		fmt.Fprintf(w, "\n%-12s %-12s %6s %6s %9s %10s %10s\n",
			"LINK", "PEER", "CODEC", "QUEUE", "INFLIGHT", "SENT", "RECV")
		for _, h := range links {
			fmt.Fprintf(w, "%-12s %-12s %6d %6d %9d %10d %10d\n",
				h.broker, h.l.Peer, h.l.Codec, h.l.Queue, h.l.Inflight, h.l.Sent, h.l.Recv)
		}
	}

	// Laggiest subscriptions on the polled broker.
	switch {
	case subErr != nil:
		fmt.Fprintf(w, "\nsubscriptions: %v\n", subErr)
	case len(sv.Subs) == 0:
		fmt.Fprintf(w, "\nsubscriptions: %d tracked, none lagging\n", sv.Total)
	default:
		fmt.Fprintf(w, "\nlaggiest subscriptions (%d tracked on polled broker):\n", sv.Total)
		fmt.Fprintf(w, "%-6s %-14s %-7s %8s %9s %7s %8s %6s %12s\n",
			"SUB", "CLIENT", "DURABLE", "MATCHED", "DELIVERED", "PARKED", "PENDING", "LAG", "LAST-DELIVER")
		for _, r := range sv.Subs {
			last := "never"
			if r.LastDeliveryAgeMS >= 0 {
				last = (time.Duration(r.LastDeliveryAgeMS) * time.Millisecond).Round(time.Millisecond).String()
			}
			fmt.Fprintf(w, "%-6d %-14s %-7v %8d %9d %7d %8d %6d %12s\n",
				r.ID, r.Client, r.Durable, r.Matched, r.Delivered, r.Parked, r.Pending, r.Lag, last)
		}
	}
}

func fmtBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}

func main() {
	url := flag.String("url", "http://127.0.0.1:8080", "base URL of any broker in the federation")
	interval := flag.Duration("interval", time.Second, "refresh interval")
	topN := flag.Int("n", 8, "rows in the hottest-links and laggiest-subscriptions tables")
	once := flag.Bool("once", false, "print one frame without screen control and exit")
	flag.Parse()

	client := &http.Client{Timeout: 5 * time.Second}
	frame := func() error {
		var cv clusterView
		if err := fetchJSON(client, *url+"/api/v1/cluster", &cv); err != nil {
			return err
		}
		var sv subsView
		subErr := fetchJSON(client, fmt.Sprintf("%s/api/v1/subs?limit=%d", *url, *topN), &sv)
		if !*once {
			fmt.Print("\x1b[H\x1b[2J") // cursor home + clear screen
		}
		render(os.Stdout, *url, &cv, &sv, subErr, *topN)
		return nil
	}

	if err := frame(); err != nil {
		fmt.Fprintln(os.Stderr, "stopss-top:", err)
		os.Exit(1)
	}
	if *once {
		return
	}
	for range time.Tick(*interval) {
		if err := frame(); err != nil {
			// Transient poll failures (broker restarting) keep the loop
			// alive; the last good frame stays on screen.
			fmt.Fprintln(os.Stderr, "stopss-top:", err)
		}
	}
}
