package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/v1/cluster", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"brokers":3,"stale":1,"cluster":[
			{"broker":"b1","self":true,"summary":{"origin":"b1","subscriptions":4,"durable":2,
				"published":100,"delivered":90,"journal_head":100,"goroutines":20,"heap_bytes":3145728,
				"links":[{"peer":"b2","codec":2,"queue":3,"sent":50,"recv":40}]}},
			{"broker":"b2","age_ms":1200,"summary":{"origin":"b2",
				"links":[{"peer":"b1","codec":2,"queue":0,"sent":40,"recv":50}]}},
			{"broker":"b3","age_ms":95000,"stale":true,"down":true,"summary":{"origin":"b3"}}]}`))
	})
	mux.HandleFunc("GET /api/v1/subs", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"total":4,"subs":[
			{"id":9,"client":"acme","durable":true,"matched":60,"delivered":40,"parked":5,"lag":20,"last_delivery_age_ms":2500}]}`))
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func TestRenderFrame(t *testing.T) {
	ts := testServer(t)
	client := &http.Client{Timeout: time.Second}

	var cv clusterView
	if err := fetchJSON(client, ts.URL+"/api/v1/cluster", &cv); err != nil {
		t.Fatal(err)
	}
	var sv subsView
	if err := fetchJSON(client, ts.URL+"/api/v1/subs?limit=8", &sv); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	render(&sb, ts.URL, &cv, &sv, nil, 8)
	out := sb.String()
	for _, want := range []string{
		"brokers:3 stale:1",
		"b1", "live", // self row shows "live", not an age
		"DOWN",       // b3's state
		"3.0MiB",     // heap rendering
		"b2", "1.2s", // peer age
		"PEER", "QUEUE", // hottest-links table present
		"laggiest subscriptions (4 tracked",
		"acme", "2.5s",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("frame lacks %q:\n%s", want, out)
		}
	}
	// The deepest queue sorts first in the links table.
	if strings.Index(out, "b1           b2") > strings.Index(out, "b2           b1") {
		t.Fatalf("links not sorted by queue depth:\n%s", out)
	}

	// A subs fetch error degrades to a note, not a dead frame.
	sb.Reset()
	render(&sb, ts.URL, &cv, nil, http.ErrServerClosed, 8)
	if !strings.Contains(sb.String(), "subscriptions: http") {
		t.Fatalf("frame hides the subs error:\n%s", sb.String())
	}
}
