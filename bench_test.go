package stopss

// Benchmarks regenerating the performance tables of EXPERIMENTS.md.
// One benchmark family per experiment:
//
//	T1  BenchmarkPipeline      — per-event latency of each pipeline stage
//	T3  BenchmarkMatcher       — matcher scaling with subscription count
//	T5  BenchmarkSynonyms      — hash vs linear synonym resolution
//	T6  BenchmarkFixpoint      — mapping-chain expansion cost
//	T8  BenchmarkNotify        — per-transport delivery latency
//	T10 BenchmarkJournalAppend / BenchmarkDurablePublish — durable
//	    journal cost on the publish hot path (+ group-commit batching)
//	F1  BenchmarkFigure1       — the paper's §1 golden publication
//	F2  BenchmarkJobFinder     — broker end to end on the demo scenario
//
// T2/T4/T7 report match COUNTS rather than time; their tables come from
// `go run ./cmd/stopss-bench -exp T2,T4,T7`.

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"stopss/internal/broker"
	"stopss/internal/core"
	"stopss/internal/journal"
	"stopss/internal/knowledge"
	"stopss/internal/matching"
	"stopss/internal/message"
	"stopss/internal/notify"
	"stopss/internal/ontology"
	"stopss/internal/overlay"
	"stopss/internal/semantic"
	"stopss/internal/sim"
	"stopss/internal/store"
	"stopss/internal/sublang"
	"stopss/internal/trace"
	"stopss/internal/workload"
)

// --- T3: matcher scaling ---

func BenchmarkMatcher(b *testing.B) {
	gen, err := workload.New(workload.Config{Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	sizes := []int{1000, 10000, 50000}
	maxSize := sizes[len(sizes)-1]
	subs := gen.Subscriptions(maxSize)
	events := gen.Events(512)

	for _, alg := range matching.Algorithms() {
		for _, n := range sizes {
			if alg == "naive" && n > 10000 {
				continue // minutes per op; T3 prints the trend up to 10k
			}
			b.Run(fmt.Sprintf("%s/subs=%d", alg, n), func(b *testing.B) {
				m, err := matching.New(alg)
				if err != nil {
					b.Fatal(err)
				}
				for _, s := range subs[:n] {
					if err := matching.Index(m, s); err != nil {
						b.Fatal(err)
					}
				}
				var scratch []message.SubID
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					scratch = m.Match(events[i%len(events)], scratch[:0])
				}
			})
		}
	}
}

func BenchmarkMatcherAdd(b *testing.B) {
	gen, err := workload.New(workload.Config{Seed: 33})
	if err != nil {
		b.Fatal(err)
	}
	subs := gen.Subscriptions(200000)
	for _, alg := range matching.Algorithms() {
		b.Run(alg, func(b *testing.B) {
			m, err := matching.New(alg)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				s := subs[i%len(subs)]
				s.ID = message.SubID(i + 1) // unique
				if err := matching.Index(m, s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- T1: pipeline stages ---

func BenchmarkPipeline(b *testing.B) {
	gen, err := workload.New(workload.Config{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	subs := gen.Subscriptions(20000)
	events := gen.Events(512)

	configs := []struct {
		name string
		mode core.Mode
		cfg  semantic.Config
	}{
		{"syntactic", core.Syntactic, semantic.SyntacticConfig()},
		{"synonyms", core.Semantic, semantic.Config{Synonyms: true}},
		{"syn+hierarchy", core.Semantic, semantic.Config{Synonyms: true, Hierarchy: true}},
		{"full", core.Semantic, semantic.FullConfig()},
	}
	for _, c := range configs {
		b.Run(c.name, func(b *testing.B) {
			eng := core.NewEngine(gen.KB().Stage(c.cfg), core.WithMode(c.mode))
			for _, s := range subs {
				if err := eng.Subscribe(s); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Publish(events[i%len(events)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSemanticStageOnly isolates the semantic stage from matching —
// the paper's claim is specifically that THIS part is fast.
func BenchmarkSemanticStageOnly(b *testing.B) {
	gen, err := workload.New(workload.Config{Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	events := gen.Events(512)
	stages := map[string]semantic.Config{
		"synonyms":  {Synonyms: true},
		"hierarchy": {Hierarchy: true},
		"mappings":  {Mappings: true},
		"full":      semantic.FullConfig(),
	}
	for name, cfg := range stages {
		b.Run(name, func(b *testing.B) {
			st := gen.KB().Stage(cfg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.ProcessEvent(events[i%len(events)])
			}
		})
	}
}

// --- T5: hash vs linear synonym tables ---

func BenchmarkSynonyms(b *testing.B) {
	for _, n := range []int{1000, 100000} {
		hash := semantic.NewSynonyms()
		linear := semantic.NewLinearSynonyms()
		terms := make([]string, 0, n)
		for g := 0; g < n/4; g++ {
			root := fmt.Sprintf("root%d", g)
			syns := []string{fmt.Sprintf("s%d-a", g), fmt.Sprintf("s%d-b", g), fmt.Sprintf("s%d-c", g)}
			if err := hash.AddGroup(root, syns...); err != nil {
				b.Fatal(err)
			}
			linear.AddGroup(root, syns...)
			terms = append(terms, root, syns[0], syns[1], syns[2])
		}
		b.Run(fmt.Sprintf("hash/terms=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				hash.Canonical(terms[i%len(terms)])
			}
		})
		if n <= 1000 { // the scan at 100k terms is ~10000x slower
			b.Run(fmt.Sprintf("linear/terms=%d", n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					linear.Canonical(terms[i%len(terms)])
				}
			})
		}
	}
}

// --- T6: mapping-chain fixpoint ---

func BenchmarkFixpoint(b *testing.B) {
	for _, hops := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("chain=%d", hops), func(b *testing.B) {
			gen, err := workload.New(workload.Config{Seed: 6, MappingChains: 1, ChainLength: hops})
			if err != nil {
				b.Fatal(err)
			}
			st := gen.KB().Stage(semantic.Config{Mappings: true, MaxRounds: hops + 1})
			seed := gen.ChainSeed(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.ProcessEvent(seed)
			}
		})
	}
}

// --- T8: notification transports ---

func BenchmarkNotify(b *testing.B) {
	drop := func(notify.Notification) {}
	tcpSink, err := notify.NewTCPSink("127.0.0.1:0", drop)
	if err != nil {
		b.Fatal(err)
	}
	defer tcpSink.Close()
	udpSink, err := notify.NewUDPSink("127.0.0.1:0", drop)
	if err != nil {
		b.Fatal(err)
	}
	defer udpSink.Close()
	smtpSink, err := notify.NewSMTPSink("127.0.0.1:0", func(notify.Mail) {})
	if err != nil {
		b.Fatal(err)
	}
	defer smtpSink.Close()
	sms := notify.NewSMSGateway(0, 0)
	defer sms.Close()

	n := notify.Notification{SubID: 1, Subscriber: "bench",
		Event: message.E("school", "Toronto", "degree", "PhD")}

	tcp := notify.NewTCPTransport(0)
	defer tcp.Close()
	udp := notify.NewUDPTransport()
	defer udp.Close()
	smtp := notify.NewSMTPTransport("")

	cases := []struct {
		name string
		send func() error
	}{
		{"tcp", func() error { return tcp.Send(tcpSink.Addr(), n) }},
		{"udp", func() error { return udp.Send(udpSink.Addr(), n) }},
		{"smtp", func() error { return smtp.Send("hr@"+smtpSink.Addr(), n) }},
		{"sms", func() error { return sms.Send("+1-416", n) }},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := c.send(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- F1: the paper's golden example ---

func BenchmarkFigure1(b *testing.B) {
	ont, err := ontology.Load(workload.JobsODL, ontology.Options{})
	if err != nil {
		b.Fatal(err)
	}
	eng := core.NewEngine(ont.Stage(semantic.FullConfig()))
	if err := eng.Subscribe(message.NewSubscription(1, "recruiter",
		message.Pred("university", message.OpEq, message.String("Toronto")),
		message.Pred("degree", message.OpEq, message.String("PhD")),
		message.Pred("professional experience", message.OpGe, message.Int(4)))); err != nil {
		b.Fatal(err)
	}
	ev := message.E("school", "Toronto", "degree", "PhD",
		"work experience", true, "graduation year", 1990)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eng.Publish(ev)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Matches) != 1 {
			b.Fatal("golden example stopped matching")
		}
	}
}

// --- F2: broker end to end on the demo scenario ---

func BenchmarkJobFinderEndToEnd(b *testing.B) {
	ont, err := ontology.Load(workload.JobsODL, ontology.Options{})
	if err != nil {
		b.Fatal(err)
	}
	eng := core.NewEngine(ont.Stage(semantic.FullConfig()))
	sms := notify.NewSMSGateway(0, 0)
	ne, err := notify.NewEngine(notify.Config{Workers: 2, QueueSize: 1 << 16}, sms)
	if err != nil {
		b.Fatal(err)
	}
	defer ne.Close()
	br := broker.New(eng, ne)

	jf := workload.NewJobFinder(2003)
	for _, s := range jf.Recruiters(200) {
		if err := br.Register(broker.Client{Name: s.Subscriber,
			Route: notify.Route{Transport: "sms", Addr: "x"}}); err != nil {
			b.Fatal(err)
		}
		if _, err := br.Subscribe(s.Subscriber, s.Preds); err != nil {
			b.Fatal(err)
		}
	}
	resumes := jf.Resumes(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := br.Publish(resumes[i%len(resumes)]); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Overlay routing over the in-process sim fabric ---

// simBenchBroker is benchBroker over the simulation transport: no
// sockets, so the measured cost is pure routing work (framing, cover
// tables, dedup windows, fan-out decisions).
func simBenchBroker(b *testing.B, net *sim.Network, name string) (*broker.Broker, *overlay.Node, *benchTransport) {
	b.Helper()
	tr := &benchTransport{ch: make(chan struct{}, 4096)}
	ne, err := notify.NewEngine(notify.Config{Workers: 4, QueueSize: 8192}, tr)
	if err != nil {
		b.Fatal(err)
	}
	br := broker.New(core.NewEngine(nil), ne)
	// Tracing off: this family isolates routing cost, and trace reports
	// hopping back toward the origin would double the measured traffic.
	// BenchmarkPublishTraced/-Untraced own the tracing overhead numbers.
	node, err := overlay.NewNode(overlay.Config{Name: name, Listen: name,
		Transport: net.Host(name), TraceSample: -1}, br)
	if err != nil {
		b.Fatal(err)
	}
	if err := node.Start(); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		node.Close()
		ne.Close()
	})
	return br, node, tr
}

// BenchmarkOverlaySim measures end-to-end delivered-notification
// throughput across broker chains of increasing depth over the
// internal/sim fabric — the TCP-free counterpart of BenchmarkOverlay,
// isolating per-hop routing cost from socket noise.
func BenchmarkOverlaySim(b *testing.B) {
	subPreds := []message.Predicate{message.Pred("x", message.OpGe, message.Int(0))}
	ev := message.E("x", 42)

	for _, hops := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("chain=%d", hops+1), func(b *testing.B) {
			net := sim.NewNetwork()
			brokers := make([]*broker.Broker, hops+1)
			var tailTr *benchTransport
			for i := 0; i <= hops; i++ {
				name := fmt.Sprintf("s%d", i)
				br, node, tr := simBenchBroker(b, net, name)
				brokers[i] = br
				tailTr = tr
				if i > 0 {
					if err := node.Dial(fmt.Sprintf("s%d", i-1)); err != nil {
						b.Fatal(err)
					}
				}
			}
			tail := brokers[hops]
			if err := tail.Register(broker.Client{Name: "sub", Route: notify.Route{Transport: "bench", Addr: "x"}}); err != nil {
				b.Fatal(err)
			}
			if _, err := tail.Subscribe("sub", subPreds); err != nil {
				b.Fatal(err)
			}
			head := brokers[0]
			// The subscription floods hop by hop; wait for it to reach
			// the chain head before timing.
			for i := 0; i < 400 && head.Stats().Remote.RemoteSubs == 0; i++ {
				time.Sleep(5 * time.Millisecond)
			}
			if head.Stats().Remote.RemoteSubs == 0 {
				b.Fatal("subscription did not propagate to the chain head")
			}

			b.ReportAllocs()
			b.ResetTimer()
			inflight := make(chan struct{}, 512)
			done := make(chan struct{})
			go func() {
				for i := 0; i < b.N; i++ {
					<-tailTr.ch
					<-inflight
				}
				close(done)
			}()
			for i := 0; i < b.N; i++ {
				inflight <- struct{}{}
				if _, err := head.Publish(ev); err != nil {
					b.Fatal(err)
				}
			}
			select {
			case <-done:
			case <-time.After(2 * time.Minute):
				b.Fatal("notifications did not drain")
			}
		})
	}
}

// --- T9: multi-origin knowledge convergence (EXPERIMENTS.md) ---

// kbBenchEngine builds an engine over a fresh knowledge base with n
// stored subscriptions (bounded attribute universe, distinct string
// values — none mention the benchmark's delta terms).
func kbBenchEngine(b *testing.B, n int) *core.Engine {
	b.Helper()
	base := knowledge.NewBase(nil, nil, nil)
	e := core.NewEngine(base.Stage(semantic.FullConfig()), core.WithKnowledge(base))
	for i := 0; i < n; i++ {
		s := message.NewSubscription(message.SubID(i+1), "c",
			message.Pred(fmt.Sprintf("attr%d", i%1024), message.OpEq,
				message.String(fmt.Sprintf("val%d", i))))
		if err := e.Subscribe(s); err != nil {
			b.Fatal(err)
		}
	}
	return e
}

// --- T10: durable publication journal ---

// BenchmarkJournalAppend gates the journal's buffered append path in
// CI: encode, CRC, frame, segment-roll checks — everything the durable
// publish path pays per publication EXCEPT the fsync (group commit is
// measured separately; its cost is dominated by the device, not the
// code).
func BenchmarkJournalAppend(b *testing.B) {
	j, err := journal.Open(journal.Config{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	ev := message.E("school", "Toronto", "degree", "PhD", "graduation year", 1990)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := j.Append(ev, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJournalGroupCommit measures the fsync'd append under
// concurrency: parallel appenders share commits, so per-append cost
// falls as batching kicks in. The commits/appends ratio is reported as
// a metric. Not part of the CI gate — fsync latency is a property of
// the runner's disk, not of this code.
func BenchmarkJournalGroupCommit(b *testing.B) {
	j, err := journal.Open(journal.Config{Dir: b.TempDir(), Fsync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	ev := message.E("school", "Toronto", "degree", "PhD")
	// Force real appender concurrency even on a 1-vCPU runner: the
	// fsync blocks in a syscall, so other appenders run and pile onto
	// the same commit.
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := j.Append(ev, false); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	st := j.Stats()
	if st.Appends > 0 {
		b.ReportMetric(float64(st.GroupCommits)/float64(st.Appends), "commits/append")
	}
}

// BenchmarkJournalReplay measures catch-up scan throughput: one pass
// over a 10k-record journal (decode + CRC per record). Not gated —
// replay is an off-hot-path recovery operation; the number feeds
// EXPERIMENTS T10.
func BenchmarkJournalReplay(b *testing.B) {
	j, err := journal.Open(journal.Config{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	j.SetCursor("pin", 0) // hold history across rolls
	ev := message.E("school", "Toronto", "degree", "PhD", "graduation year", 1990)
	const records = 10_000
	for i := 0; i < records; i++ {
		if _, err := j.Append(ev, false); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := j.Scan(1, func(journal.Record) error { n++; return nil }); err != nil {
			b.Fatal(err)
		}
		if n != records {
			b.Fatalf("scanned %d of %d", n, records)
		}
	}
	b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkCatchUpSeek gates the sparse-index seek on deep-cursor
// catch-up: a 50k-record journal spread over many sealed segments, a
// subscriber 100 records from the tip. The indexed variant seeks to
// the last index entry at or before the cursor and decodes only the
// tail; the scan variant (indexing disabled) re-reads and CRCs every
// record of every retained segment. The gap between the two is the
// ISSUE's "catch-up cost follows replay depth, not journal size".
func BenchmarkCatchUpSeek(b *testing.B) {
	for _, mode := range []struct {
		name  string
		every int
	}{{"indexed", 128}, {"scan", -1}} {
		b.Run(mode.name, func(b *testing.B) {
			j, err := journal.Open(journal.Config{Dir: b.TempDir(),
				SegmentBytes: 256 << 10, IndexEvery: mode.every})
			if err != nil {
				b.Fatal(err)
			}
			defer j.Close()
			j.SetCursor("pin", 0) // hold history across rolls
			ev := message.E("school", "Toronto", "degree", "PhD", "graduation year", 1990)
			const records, depth = 50_000, 100
			for i := 0; i < records; i++ {
				if _, err := j.Append(ev, false); err != nil {
					b.Fatal(err)
				}
			}
			from := uint64(records - depth + 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n := 0
				if err := j.Scan(from, func(journal.Record) error { n++; return nil }); err != nil {
					b.Fatal(err)
				}
				if n != depth {
					b.Fatalf("scanned %d records, want %d", n, depth)
				}
			}
			b.StopTimer()
			st := j.Stats()
			if b.N > 0 && st.SeekScans > 0 {
				b.ReportMetric(float64(st.SeekSkippedBytes)/float64(st.SeekScans), "skipped-B/scan")
			}
		})
	}
}

// BenchmarkStoreReadThrough gates the subscription store's read path
// under pool pressure: 20k records over a 64-page pool (~3% resident),
// random Gets. Most reads miss, evict an unpinned page and fault the
// target page in — pin/unpin, LRU maintenance, CRC verify and the
// directory lookup are all on the measured path.
func BenchmarkStoreReadThrough(b *testing.B) {
	st, err := store.Open(store.Config{Path: filepath.Join(b.TempDir(), "subs.heap"),
		PageSize: 4096, Pages: 64})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	val := make([]byte, 64)
	for i := range val {
		val[i] = byte(i)
	}
	const records = 20_000
	for i := 0; i < records; i++ {
		if err := st.Put(uint64(i+1), val); err != nil {
			b.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(2003))
	s0 := st.Stats() // setup (Put probing) touches the pool too; report deltas
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, ok, err := st.Get(uint64(rng.Intn(records) + 1))
		if err != nil || !ok {
			b.Fatalf("get: %v ok=%v", err, ok)
		}
		if len(data) != len(val) {
			b.Fatalf("got %d bytes, want %d", len(data), len(val))
		}
	}
	b.StopTimer()
	s := st.Stats()
	hits, misses := s.Hits-s0.Hits, s.Misses-s0.Misses
	if hits+misses > 0 {
		b.ReportMetric(float64(hits)/float64(hits+misses), "hit-rate")
	}
}

// BenchmarkDurablePublish gates the durable publish hot path against
// its fire-and-forget twin: one broker, one matching subscription, one
// in-memory transport; each iteration publishes and waits for the
// delivery. The durable variant adds the journal append (buffered
// mode), pending-window registration and the cursor-advancing ack.
func BenchmarkDurablePublish(b *testing.B) {
	for _, durable := range []bool{false, true} {
		name := "fire-and-forget"
		if durable {
			name = "durable"
		}
		b.Run(name, func(b *testing.B) {
			tr := &benchTransport{ch: make(chan struct{}, 8192)}
			ne, err := notify.NewEngine(notify.Config{Workers: 4, QueueSize: 8192}, tr)
			if err != nil {
				b.Fatal(err)
			}
			defer ne.Close()
			br := broker.New(core.NewEngine(nil), ne)
			// Tracing off so the measured delta stays the journal cost
			// alone; the traced publish path has its own gate pair below.
			br.SetTracer(trace.New(trace.Config{Broker: "bench", Sample: -1}))
			if durable {
				j, err := journal.Open(journal.Config{Dir: b.TempDir()})
				if err != nil {
					b.Fatal(err)
				}
				defer j.Close()
				br.AttachJournal(j)
			}
			if err := br.Register(broker.Client{Name: "sub",
				Route: notify.Route{Transport: "bench", Addr: "x"}}); err != nil {
				b.Fatal(err)
			}
			preds := []message.Predicate{message.Pred("x", message.OpGe, message.Int(0))}
			if durable {
				if _, err := br.SubscribeDurable("sub", preds); err != nil {
					b.Fatal(err)
				}
			} else {
				if _, err := br.Subscribe("sub", preds); err != nil {
					b.Fatal(err)
				}
			}
			ev := message.E("x", 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := br.Publish(ev); err != nil {
					b.Fatal(err)
				}
				<-tr.ch
			}
		})
	}
}

// BenchmarkPublishTraced / BenchmarkPublishUntraced gate the span
// recording overhead on the fire-and-forget publish hot path (DESIGN
// §10): same single-broker setup as BenchmarkDurablePublish, with the
// tracer either sampling every publication (the default) or disabled
// outright (-trace-sample=0). Untraced must stay within noise of the
// pre-tracing publish baseline.
func BenchmarkPublishTraced(b *testing.B)   { benchPublishTrace(b, 0) }
func BenchmarkPublishUntraced(b *testing.B) { benchPublishTrace(b, -1) }

func benchPublishTrace(b *testing.B, sample int) {
	tr := &benchTransport{ch: make(chan struct{}, 8192)}
	ne, err := notify.NewEngine(notify.Config{Workers: 4, QueueSize: 8192}, tr)
	if err != nil {
		b.Fatal(err)
	}
	defer ne.Close()
	br := broker.New(core.NewEngine(nil), ne)
	br.SetTracer(trace.New(trace.Config{Broker: "bench", Sample: sample}))
	if err := br.Register(broker.Client{Name: "sub",
		Route: notify.Route{Transport: "bench", Addr: "x"}}); err != nil {
		b.Fatal(err)
	}
	preds := []message.Predicate{message.Pred("x", message.OpGe, message.Int(0))}
	if _, err := br.Subscribe("sub", preds); err != nil {
		b.Fatal(err)
	}
	ev := message.E("x", 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := br.Publish(ev); err != nil {
			b.Fatal(err)
		}
		<-tr.ch
	}
}

// BenchmarkKnowledgeApply gates the single-origin adaptation hot path
// in CI: one in-order synonym delta folded, staged and touch-scanned
// against 10k stored subscriptions (the engine-level counterpart of
// the per-size study in internal/core's benchmark of the same name).
func BenchmarkKnowledgeApply(b *testing.B) {
	e := kbBenchEngine(b, 10_000)
	o := knowledge.NewOrigin("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := o.Stamp(knowledge.Delta{Op: knowledge.OpAddSynonym,
			Root: "bench-root", Terms: []string{fmt.Sprintf("fresh-%d", i)}})
		rep, err := e.ApplyKnowledge(d)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Reindexed != 0 || rep.FullReindex {
			b.Fatalf("unexpected re-index: %+v", rep)
		}
	}
}

// BenchmarkKnowledgeMultiOrigin measures the cost of CONCURRENT
// multi-origin knowledge evolution at 10k stored subscriptions
// (EXPERIMENTS T9). Each op injects one delta from each of two origins
// in an arrival order that makes the second delta out of merge order —
// the pattern a federation sees whenever two brokers evolve the
// ontology at once:
//
//   - tailmerge: the shipping path. The out-of-order arrival refolds a
//     checkpointed suffix, diffs the canonical maps, and re-indexes
//     nothing (the terms are fresh); cost stays near the in-order path.
//   - refold-from-genesis: what the pre-tail-merge implementation paid
//     per cross-origin delta — Rebuilt=true forced every stored
//     subscription through the matcher again. Reproduced here as an
//     explicit full re-index per arrival; the measured ratio is a
//     LOWER bound on the old cost, which refolded the whole log on top.
func BenchmarkKnowledgeMultiOrigin(b *testing.B) {
	run := func(b *testing.B, fullPerArrival bool) {
		e := kbBenchEngine(b, 10_000)
		oa, ob := knowledge.NewOrigin("a"), knowledge.NewOrigin("b")
		b.ReportAllocs()
		b.ResetTimer()
		refolds := 0
		for i := 0; i < b.N; i++ {
			// Origin "b" first, then origin "a" with the same sequence
			// number: "a" sorts before the tail — out of merge order.
			db := ob.Stamp(knowledge.Delta{Op: knowledge.OpAddSynonym,
				Root: "rb", Terms: []string{fmt.Sprintf("tb-%d", i)}})
			da := oa.Stamp(knowledge.Delta{Op: knowledge.OpAddSynonym,
				Root: "ra", Terms: []string{fmt.Sprintf("ta-%d", i)}})
			for _, d := range []knowledge.Delta{db, da} {
				rep, err := e.ApplyKnowledge(d)
				if err != nil {
					b.Fatal(err)
				}
				if rep.Refolded {
					refolds++
				}
				if fullPerArrival {
					if _, err := e.ReindexKnowledge(nil, true); err != nil {
						b.Fatal(err)
					}
				} else if rep.Reindexed != 0 || rep.FullReindex {
					b.Fatalf("tail merge re-indexed: %+v", rep)
				}
			}
		}
		if refolds == 0 && b.N > 0 {
			b.Fatal("arrival pattern produced no out-of-order deltas")
		}
		b.ReportMetric(float64(refolds)/float64(b.N), "refolds/op")
	}
	b.Run("subs=10000/tailmerge", func(b *testing.B) { run(b, false) })
	b.Run("subs=10000/refold-from-genesis", func(b *testing.B) { run(b, true) })
}

// --- supporting micro-benchmarks ---

func BenchmarkSublangParse(b *testing.B) {
	sub := "(university = Toronto) and (degree = PhD) and (professional experience >= 4)"
	ev := "(school, Toronto)(degree, PhD)(work experience, true)(graduation year, 1990)"
	b.Run("subscription", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sublang.ParseSubscription(sub); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("event", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sublang.ParseEvent(ev); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkOntologyCompile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ontology.Load(workload.JobsODL, ontology.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHierarchyAncestors(b *testing.B) {
	h := semantic.NewHierarchy()
	// Depth-8 binary taxonomy.
	var leaves []string
	var build func(name string, depth int)
	build = func(name string, depth int) {
		if depth == 8 {
			leaves = append(leaves, name)
			return
		}
		for c := 0; c < 2; c++ {
			child := fmt.Sprintf("%s.%d", name, c)
			if err := h.AddIsA(child, name); err != nil {
				b.Fatal(err)
			}
			build(child, depth+1)
		}
	}
	build("root", 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Ancestors(leaves[i%len(leaves)], 0)
	}
}

// --- Sharded matching engine: 1 engine vs N-shard pool ---

// BenchmarkShard measures multi-core publication throughput of the
// single engine against overlay.NewSharded pools (EXPERIMENTS.md §Shard).
// Syntactic mode isolates the matching path, which is what sharding
// parallelizes; RunParallel publishes from GOMAXPROCS goroutines.
func BenchmarkShard(b *testing.B) {
	gen, err := workload.New(workload.Config{Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	const nSubs = 20000
	subs := gen.Subscriptions(nSubs)
	events := gen.Events(1024)

	for _, shards := range []int{1, 2, 4, 8} {
		if shards > 2*runtime.NumCPU() {
			continue
		}
		b.Run(fmt.Sprintf("shards=%d/subs=%d", shards, nSubs), func(b *testing.B) {
			stage := gen.KB().Stage(semantic.FullConfig())
			var eng core.PubSub
			if shards == 1 {
				eng = core.NewEngine(stage, core.WithMode(core.Syntactic))
			} else {
				pool := overlay.NewSharded(shards, func(int) *core.Engine {
					return core.NewEngine(stage, core.WithMode(core.Syntactic))
				})
				defer pool.Close()
				eng = pool
			}
			for _, s := range subs {
				if err := eng.Subscribe(s); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if _, err := eng.Publish(events[i%len(events)]); err != nil {
						b.Fatal(err)
					}
					i++
				}
			})
		})
	}
}

// --- Overlay federation: 1 broker vs a 3-broker chain ---

// benchTransport counts deliveries through a channel, closing done when
// the expected number arrives.
type benchTransport struct{ ch chan struct{} }

func (t *benchTransport) Name() string                           { return "bench" }
func (t *benchTransport) Send(string, notify.Notification) error { t.ch <- struct{}{}; return nil }
func (t *benchTransport) Close() error                           { return nil }

// benchBroker builds one broker (empty knowledge base) with a counting
// transport and an overlay node listening on loopback.
func benchBroker(b *testing.B, name string) (*broker.Broker, *overlay.Node, *benchTransport) {
	b.Helper()
	tr := &benchTransport{ch: make(chan struct{}, 4096)}
	ne, err := notify.NewEngine(notify.Config{Workers: 4, QueueSize: 8192}, tr)
	if err != nil {
		b.Fatal(err)
	}
	br := broker.New(core.NewEngine(nil), ne)
	node, err := overlay.NewNode(overlay.Config{Name: name, Listen: "127.0.0.1:0"}, br)
	if err != nil {
		b.Fatal(err)
	}
	if err := node.Start(); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		node.Close()
		ne.Close()
	})
	return br, node, tr
}

// BenchmarkOverlay compares end-to-end delivered-notification
// throughput of a standalone broker against a publication crossing a
// 3-broker chain over loopback TCP (EXPERIMENTS.md §Overlay): publish
// at the head, count notifications at the subscriber's broker.
func BenchmarkOverlay(b *testing.B) {
	subPreds := []message.Predicate{message.Pred("x", message.OpGe, message.Int(0))}
	ev := message.E("x", 42)

	run := func(b *testing.B, pub *broker.Broker, tr *benchTransport) {
		b.Helper()
		b.ResetTimer()
		// Bound in-flight publications well under the notify queue
		// size: the dispatcher drops on a full queue (ErrQueueFull),
		// which would leave the drain goroutine waiting forever.
		inflight := make(chan struct{}, 512)
		done := make(chan struct{})
		go func() {
			for i := 0; i < b.N; i++ {
				<-tr.ch
				<-inflight
			}
			close(done)
		}()
		for i := 0; i < b.N; i++ {
			inflight <- struct{}{}
			if _, err := pub.Publish(ev); err != nil {
				b.Fatal(err)
			}
		}
		select {
		case <-done:
		case <-time.After(2 * time.Minute):
			b.Fatal("notifications did not drain")
		}
	}

	b.Run("brokers=1", func(b *testing.B) {
		br, _, tr := benchBroker(b, "solo")
		if err := br.Register(broker.Client{Name: "sub", Route: notify.Route{Transport: "bench", Addr: "x"}}); err != nil {
			b.Fatal(err)
		}
		if _, err := br.Subscribe("sub", subPreds); err != nil {
			b.Fatal(err)
		}
		run(b, br, tr)
	})

	b.Run("brokers=3", func(b *testing.B) {
		brA, nodeA, _ := benchBroker(b, "A")
		_, nodeB, _ := benchBroker(b, "B")
		brC, nodeC, trC := benchBroker(b, "C")
		if err := nodeB.Dial(nodeA.Addr()); err != nil {
			b.Fatal(err)
		}
		if err := nodeC.Dial(nodeB.Addr()); err != nil {
			b.Fatal(err)
		}
		if err := brC.Register(broker.Client{Name: "sub", Route: notify.Route{Transport: "bench", Addr: "x"}}); err != nil {
			b.Fatal(err)
		}
		if _, err := brC.Subscribe("sub", subPreds); err != nil {
			b.Fatal(err)
		}
		// Wait for the subscription to reach A before timing.
		for i := 0; i < 400 && brA.Stats().Remote.RemoteSubs == 0; i++ {
			time.Sleep(5 * time.Millisecond)
		}
		if brA.Stats().Remote.RemoteSubs == 0 {
			b.Fatal("subscription did not propagate to the chain head")
		}
		run(b, brA, trC)
	})
}

// --- query-optimizer additions (DESIGN §12) ---

// BenchmarkMatchPushdown measures the predicate-pushdown win: every
// subscription carries one selective equality plus expensive string
// scans, and the compiled plan evaluates the equality first, so the
// thousands of non-matching candidates bail on one comparison instead
// of running substring searches.
func BenchmarkMatchPushdown(b *testing.B) {
	haystack := "a-rather-long-resume-field-with-no-needle-in-it-anywhere-at-all"
	for _, alg := range matching.Algorithms() {
		b.Run(alg, func(b *testing.B) {
			m, err := matching.New(alg)
			if err != nil {
				b.Fatal(err)
			}
			for i := 1; i <= 5000; i++ {
				s := message.NewSubscription(message.SubID(i), "c",
					message.Pred("summary", message.OpContains, message.String(fmt.Sprintf("needle-%04d", i))),
					message.Pred("team", message.OpEq, message.String(fmt.Sprintf("team-%04d", i))),
					message.Pred("title", message.OpContains, message.String("engineer")),
				)
				if err := matching.Index(m, s); err != nil {
					b.Fatal(err)
				}
			}
			ev := message.E("summary", haystack, "team", "team-0001", "title", "senior-engineer")
			var scratch []message.SubID
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				scratch = m.Match(ev, scratch[:0])
			}
		})
	}
}

// BenchmarkPlanCache measures subscription compilation: warm hits the
// plan cache (duplicate canonical forms share one compiled plan), cold
// compiles a fresh canonical form every iteration.
func BenchmarkPlanCache(b *testing.B) {
	gen, err := workload.New(workload.Config{Seed: 55})
	if err != nil {
		b.Fatal(err)
	}
	subs := gen.Subscriptions(200000)
	b.Run("warm", func(b *testing.B) {
		m, err := matching.New("counting")
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range subs[:1024] {
			if err := matching.Index(m, s); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.Compile(subs[i%1024]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cold", func(b *testing.B) {
		m, err := matching.New("counting")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.Compile(subs[i%len(subs)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExpansionLRU is the repeated-event-shape publish benchmark:
// real feeds publish the same shapes constantly, and the warm case
// serves the semantic expansion from the engine's LRU instead of
// re-running the synonym/hierarchy/mapping stages per publication.
func BenchmarkExpansionLRU(b *testing.B) {
	// Expansion-heavy shape: deep concept trees, long mapping chains and
	// near-certain synonym/concept usage make the semantic stage the
	// dominant cost, which is precisely the regime the LRU targets
	// (matching cost is identical warm and cold — the cached expansion
	// still gets matched).
	gen, err := workload.New(workload.Config{
		Seed: 77, SynonymProb: 0.95, ConceptProb: 0.9,
		ConceptTrees: 6, ConceptDepth: 6, ConceptFanout: 3,
		MappingChains: 4, ChainLength: 8,
		PairsMin: 8, PairsMax: 12,
	})
	if err != nil {
		b.Fatal(err)
	}
	subs := gen.Subscriptions(500)
	shapes := gen.Events(64) // well inside the default LRU capacity
	for i := range shapes {  // every shape also triggers a mapping chain
		shapes[i].Add(fmt.Sprintf("chain%d-hop0", i%4), message.Int(0))
	}
	for _, tc := range []struct {
		name string
		cap  int
	}{
		{"warm", core.DefaultExpansionCacheSize},
		{"cold", 0},
	} {
		b.Run(tc.name, func(b *testing.B) {
			eng := core.NewEngine(gen.KB().Stage(semantic.FullConfig()),
				core.WithExpansionCache(tc.cap))
			for _, s := range subs {
				if err := eng.Subscribe(s); err != nil {
					b.Fatal(err)
				}
			}
			for _, e := range shapes { // pre-warm the cache
				if _, err := eng.Publish(e); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Publish(shapes[i%len(shapes)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
