package store

import (
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newTestFile(t *testing.T, pageSize int) *heapFile {
	t.Helper()
	h, _, err := openHeapFile(filepath.Join(t.TempDir(), "pool.heap"), pageSize)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { h.close() })
	return h
}

func TestPoolEvictionWritesBackDirty(t *testing.T) {
	h := newTestFile(t, 256)
	bp := newPool(h, 2)
	// Dirty two pages, then fault a third: the LRU one must be written
	// back and readable afterwards.
	ids := make([]uint32, 3)
	for i := range ids {
		ids[i] = h.extend()
	}
	for i := 0; i < 2; i++ {
		f, err := bp.pin(ids[i], true)
		if err != nil {
			t.Fatal(err)
		}
		f.buf.insert(uint64(i), uint64(i+1), []byte{byte(i)})
		bp.unpin(f, true)
	}
	f, err := bp.pin(ids[2], true)
	if err != nil {
		t.Fatal(err)
	}
	bp.unpin(f, true)
	if bp.evictions != 1 || bp.writeBacks != 1 {
		t.Fatalf("evictions=%d writeBacks=%d, want 1/1", bp.evictions, bp.writeBacks)
	}
	// Page 0 of our trio was the LRU victim; fault it back and check.
	f, err = bp.pin(ids[0], false)
	if err != nil {
		t.Fatalf("reload of evicted page: %v", err)
	}
	key, _, val, ok := f.buf.get(0)
	if !ok || key != 0 || val[0] != 0 {
		t.Fatalf("evicted page content lost: %d/%v/%v", key, val, ok)
	}
	bp.unpin(f, false)
}

func TestPoolAllPinnedBackPressure(t *testing.T) {
	h := newTestFile(t, 256)
	bp := newPool(h, 2)
	a, b := h.extend(), h.extend()
	c := h.extend()
	fa, err := bp.pin(a, true)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := bp.pin(b, true)
	if err != nil {
		t.Fatal(err)
	}
	// Both frames pinned: a third pin must block until one is released.
	var got atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		fc, err := bp.pin(c, true)
		if err != nil {
			t.Error(err)
			return
		}
		got.Store(true)
		bp.unpin(fc, false)
	}()
	time.Sleep(20 * time.Millisecond)
	if got.Load() {
		t.Fatal("pin succeeded while all frames were pinned")
	}
	bp.unpin(fa, true)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("blocked pin never woke after unpin")
	}
	bp.mu.Lock()
	waits := bp.pinWaits
	bp.mu.Unlock()
	if waits == 0 {
		t.Fatal("pinWaits not counted")
	}
	bp.unpin(fb, false)
}

// TestPoolConcurrentChurn hammers a small pool from many goroutines —
// pin/unpin racing eviction and write-back — and then verifies every
// page round-tripped byte-identically. Run with -race.
func TestPoolConcurrentChurn(t *testing.T) {
	h := newTestFile(t, 256)
	bp := newPool(h, 4)
	const npages = 32
	ids := make([]uint32, npages)
	for i := range ids {
		ids[i] = h.extend()
		f, err := bp.pin(ids[i], true)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := f.buf.insert(uint64(i), 1, []byte{byte(i), byte(i >> 8)}); !ok {
			t.Fatal("seed insert failed")
		}
		bp.unpin(f, true)
	}
	// Each goroutine owns a disjoint quarter of the pages: pin/unpin,
	// eviction and write-back still race freely across goroutines at
	// the pool layer, but page *content* has a single writer — just as
	// in the store, which serializes record access above the pool.
	const perG = npages / 8
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				idx := g*perG + (g*131+i*31)%perG
				id := ids[idx]
				f, err := bp.pin(id, false)
				if err != nil {
					t.Error(err)
					return
				}
				key, _, val, ok := f.buf.get(0)
				if !ok || key != uint64(idx) || val[0] != byte(key) {
					t.Errorf("page %d content wrong under churn", id)
					bp.unpin(f, false)
					return
				}
				// Mutate the stamp so eviction has dirty pages to write.
				f.buf.update(0, uint64(i+2), val)
				bp.unpin(f, true)
			}
		}(g)
	}
	wg.Wait()
	if bp.resident() > 4 {
		t.Fatalf("pool resident %d exceeds capacity 4", bp.resident())
	}
	bp.mu.Lock()
	evictions := bp.evictions
	bp.mu.Unlock()
	if evictions == 0 {
		t.Fatal("churn produced no evictions; test is not exercising the pool")
	}
	// Every page still holds its key and value after all the churn.
	if err := bp.flush(); err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		f, err := bp.pin(id, false)
		if err != nil {
			t.Fatal(err)
		}
		key, _, val, ok := f.buf.get(0)
		if !ok || key != uint64(i) || val[0] != byte(i) || val[1] != byte(i>>8) {
			t.Fatalf("page %d: got %d/%v/%v after churn", id, key, val, ok)
		}
		bp.unpin(f, false)
	}
}

// TestPoolEvictReloadRoundTrip is the property test: for every page,
// evicting and reloading yields byte-identical content (modulo the
// checksum field, which write-back seals).
func TestPoolEvictReloadRoundTrip(t *testing.T) {
	h := newTestFile(t, 512)
	bp := newPool(h, 1) // capacity 1: every new pin evicts the previous page
	const npages = 16
	want := make(map[uint32][]byte)
	for i := 0; i < npages; i++ {
		id := h.extend()
		f, err := bp.pin(id, true)
		if err != nil {
			t.Fatal(err)
		}
		for j := uint64(0); j < 5; j++ {
			f.buf.insert(uint64(i)*100+j, j+1, []byte{byte(i), byte(j)})
		}
		f.buf.seal()
		want[id] = append([]byte(nil), f.buf...)
		bp.unpin(f, true)
	}
	for id, snapshot := range want {
		f, err := bp.pin(id, false)
		if err != nil {
			t.Fatal(err)
		}
		if string(f.buf) != string(snapshot) {
			t.Fatalf("page %d not byte-identical after evict+reload", id)
		}
		bp.unpin(f, false)
	}
	bp.mu.Lock()
	evictions := bp.evictions
	bp.mu.Unlock()
	if evictions < npages {
		t.Fatalf("expected at least %d evictions with capacity-1 pool, got %d", npages, evictions)
	}
}

func TestPoolUnpinBelowZeroPanics(t *testing.T) {
	h := newTestFile(t, 256)
	bp := newPool(h, 2)
	f, err := bp.pin(h.extend(), true)
	if err != nil {
		t.Fatal(err)
	}
	bp.unpin(f, false)
	defer func() {
		if recover() == nil {
			t.Fatal("double unpin did not panic")
		}
	}()
	bp.unpin(f, false)
}
