package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

func newTestPage(size int, id uint32) page {
	p := make(page, size)
	p.init(id)
	return p
}

func TestPageInsertGetDelete(t *testing.T) {
	p := newTestPage(512, 7)
	if !p.empty() {
		t.Fatal("fresh page not empty")
	}
	s1, ok := p.insert(100, 1, []byte("alpha"))
	if !ok {
		t.Fatal("insert alpha failed")
	}
	s2, ok := p.insert(200, 2, []byte("beta"))
	if !ok {
		t.Fatal("insert beta failed")
	}
	key, stamp, val, ok := p.get(s1)
	if !ok || key != 100 || stamp != 1 || string(val) != "alpha" {
		t.Fatalf("get s1 = %d/%d/%q/%v", key, stamp, val, ok)
	}
	p.delete(s1)
	if _, _, _, ok := p.get(s1); ok {
		t.Fatal("deleted slot still live")
	}
	key, _, val, ok = p.get(s2)
	if !ok || key != 200 || string(val) != "beta" {
		t.Fatal("delete disturbed sibling cell")
	}
	// The dead slot is reused by the next insert.
	s3, ok := p.insert(300, 3, []byte("gamma"))
	if !ok || s3 != s1 {
		t.Fatalf("insert after delete got slot %d, want reused %d", s3, s1)
	}
}

func TestPageUpdateInPlaceAndGrow(t *testing.T) {
	p := newTestPage(512, 1)
	slot, _ := p.insert(1, 1, []byte("longer-value"))
	if !p.update(slot, 2, []byte("short")) {
		t.Fatal("shrinking update should fit in place")
	}
	_, stamp, val, _ := p.get(slot)
	if stamp != 2 || string(val) != "short" {
		t.Fatalf("after update: stamp=%d val=%q", stamp, val)
	}
	if p.update(slot, 3, bytes.Repeat([]byte("x"), 64)) {
		t.Fatal("growing update should not fit in place")
	}
}

func TestPageCompactionReclaimsFragmentation(t *testing.T) {
	p := newTestPage(256, 1)
	// Fill the page with small records.
	var slots []int
	for i := uint64(0); ; i++ {
		s, ok := p.insert(i, i+1, []byte("0123456789"))
		if !ok {
			break
		}
		slots = append(slots, s)
	}
	if len(slots) < 4 {
		t.Fatalf("page too small for test: %d inserts", len(slots))
	}
	// Delete every other record; the free space is fragmented.
	for i := 0; i < len(slots); i += 2 {
		p.delete(slots[i])
	}
	// A larger record only fits after compaction.
	if _, ok := p.insert(999, 1000, []byte("abcdefghijklmnopqrs")); !ok {
		t.Fatal("insert after fragmentation failed; compaction did not reclaim space")
	}
	// Survivors are intact.
	for i := 1; i < len(slots); i += 2 {
		key, _, val, ok := p.get(slots[i])
		if !ok || key != uint64(i) || string(val) != "0123456789" {
			t.Fatalf("slot %d corrupted after compaction: %d/%q/%v", slots[i], key, val, ok)
		}
	}
}

func TestPageFullRejectsInsert(t *testing.T) {
	p := newTestPage(256, 1)
	for i := uint64(0); i < 1000; i++ {
		if _, ok := p.insert(i, i+1, []byte("0123456789")); !ok {
			return // filled up and refused, as expected
		}
	}
	t.Fatal("page never refused an insert")
}

func TestPageSealVerify(t *testing.T) {
	p := newTestPage(512, 42)
	p.insert(1, 1, []byte("payload"))
	p.seal()
	if !p.verify(42) {
		t.Fatal("sealed page does not verify")
	}
	if p.verify(43) {
		t.Fatal("page verifies under the wrong ID")
	}
	p[100] ^= 0xFF
	if p.verify(42) {
		t.Fatal("corrupted page verifies")
	}
}

func TestPageMarkFree(t *testing.T) {
	p := newTestPage(512, 9)
	p.insert(1, 1, []byte("x"))
	p.markFree(17)
	if p.flags()&pageFree == 0 {
		t.Fatal("markFree did not set the free flag")
	}
	if p.id() != 9 {
		t.Fatal("markFree lost the page ID")
	}
	if p.nextFree() != 17 {
		t.Fatal("markFree lost the free link")
	}
	if !p.empty() {
		t.Fatal("freed page still has live cells")
	}
}

// TestPageRandomOps cross-checks the page against a map model through
// a few thousand random insert/update/delete operations.
func TestPageRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := newTestPage(1024, 3)
	model := map[uint64][]byte{} // key -> value
	slots := map[uint64]int{}    // key -> slot
	stamp := uint64(0)
	for op := 0; op < 5000; op++ {
		stamp++
		key := uint64(rng.Intn(40))
		switch rng.Intn(3) {
		case 0: // put
			val := make([]byte, rng.Intn(48))
			rng.Read(val)
			if s, ok := slots[key]; ok {
				if p.update(s, stamp, val) {
					model[key] = val
					continue
				}
				p.delete(s)
				delete(slots, key)
				delete(model, key)
			}
			if s, ok := p.insert(key, stamp, val); ok {
				slots[key] = s
				model[key] = val
			}
		case 1: // delete
			if s, ok := slots[key]; ok {
				p.delete(s)
				delete(slots, key)
				delete(model, key)
			}
		case 2: // get
			s, ok := slots[key]
			if !ok {
				continue
			}
			gotKey, _, val, liveOK := p.get(s)
			if !liveOK || gotKey != key || !bytes.Equal(val, model[key]) {
				t.Fatalf("op %d: get(%d) = %d/%q, want %d/%q", op, s, gotKey, val, key, model[key])
			}
		}
	}
	// Full final cross-check via scan.
	seen := map[uint64][]byte{}
	p.scan(func(_ int, key, _ uint64, val []byte) bool {
		seen[key] = append([]byte(nil), val...)
		return true
	})
	if len(seen) != len(model) {
		t.Fatalf("scan found %d records, model has %d", len(seen), len(model))
	}
	for k, v := range model {
		if !bytes.Equal(seen[k], v) {
			t.Fatalf("key %d: page %q != model %q", k, seen[k], v)
		}
	}
}

func TestPageContiguousFreeAccounting(t *testing.T) {
	for _, size := range []int{256, 512, 4096} {
		t.Run(fmt.Sprint(size), func(t *testing.T) {
			p := newTestPage(size, 1)
			want := size - pageHeaderSize - slotSize
			if got := p.contiguousFree(1); got != want {
				t.Fatalf("fresh page contiguousFree(1) = %d, want %d", got, want)
			}
		})
	}
}
