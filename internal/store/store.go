package store

import (
	"errors"
	"fmt"
	"sync"
)

// Config sizes the store. Zero values get defaults.
type Config struct {
	// Path is the heap file. Required.
	Path string
	// PageSize in bytes (default 8192, min 256). Fixed for the life of
	// the file; reopening with a different size is an error.
	PageSize int
	// Pages caps the buffer pool: the maximum number of pages resident
	// in memory at once (default 1024, min 2). This — not the record
	// count — bounds the store's RAM working set.
	Pages int
}

const (
	defaultPageSize = 8192
	minPageSize     = 256
	defaultPages    = 1024
)

func (c *Config) fill() error {
	if c.Path == "" {
		return errors.New("store: Config.Path is required")
	}
	if c.PageSize == 0 {
		c.PageSize = defaultPageSize
	}
	if c.PageSize < minPageSize {
		return fmt.Errorf("store: page size %d below minimum %d", c.PageSize, minPageSize)
	}
	if c.PageSize > 1<<16 {
		// Slot offsets and lengths are uint16.
		return fmt.Errorf("store: page size %d exceeds maximum %d", c.PageSize, 1<<16)
	}
	if c.Pages == 0 {
		c.Pages = defaultPages
	}
	if c.Pages < 2 {
		c.Pages = 2
	}
	return nil
}

// rid locates a record: page number + directory slot.
type rid struct {
	page uint32
	slot uint16
}

// Store is a key→value heap of durable-subscription records kept on
// disk behind a bounded buffer pool. Keys are uint64 (the broker's
// subscription IDs); values are opaque bytes up to roughly a page. The
// record directory (key→rid) is in-memory — a few dozen bytes per
// record — while the records themselves page in and out on demand, so
// millions of detached subscribers cost pages-budget RAM, not
// records-count RAM.
//
// Crash safety: every page carries a checksum and its own ID; reopen
// scans all pages, drops torn ones (counting them — upstream rebuilds
// those records from journal/snapshot), resolves duplicate keys left
// by a crash between two page write-backs via newest-wins stamps, and
// rebuilds the free list from per-page free flags. The meta page is
// advisory only.
type Store struct {
	mu    sync.Mutex
	file  *heapFile
	pool  *pool
	dir   map[uint64]rid
	free  []uint32            // free page stack (persistent truth: pageFree flags)
	avail map[uint32]struct{} // data pages believed to have insert room
	stamp uint64              // monotonic record stamp, survives reopen

	puts, gets, deletes, torn uint64
}

// Stats is a point-in-time snapshot of store counters.
type Stats struct {
	Records      int    `json:"records"`
	Pages        int    `json:"pages"` // incl. meta page
	FreePages    int    `json:"free_pages"`
	Resident     int    `json:"resident"` // pages in the buffer pool
	PoolCapacity int    `json:"pool_capacity"`
	Hits         uint64 `json:"hits"`
	Misses       uint64 `json:"misses"`
	Evictions    uint64 `json:"evictions"`
	WriteBacks   uint64 `json:"write_backs"`
	PinWaits     uint64 `json:"pin_waits"`
	TornPages    uint64 `json:"torn_pages"` // dropped during recovery
	Puts         uint64 `json:"puts"`
	Gets         uint64 `json:"gets"`
	Deletes      uint64 `json:"deletes"`
}

// Open opens or creates the store and runs the recovery scan.
func Open(cfg Config) (*Store, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	file, meta, err := openHeapFile(cfg.Path, cfg.PageSize)
	if err != nil {
		return nil, err
	}
	s := &Store{
		file:  file,
		pool:  newPool(file, cfg.Pages),
		dir:   make(map[uint64]rid),
		avail: make(map[uint32]struct{}),
		stamp: meta.stamp,
	}
	if err := s.recover(); err != nil {
		file.close()
		return nil, err
	}
	return s, nil
}

// recover scans every page, building the directory, free list, and
// stamp watermark. Torn pages are reinitialized as free; duplicate
// keys (possible after a crash between two write-backs of a record
// move) keep the copy with the larger stamp.
func (s *Store) recover() error {
	for id := uint32(1); id < s.file.npages; id++ {
		f, err := s.pool.pin(id, false)
		if err != nil {
			if !errors.Is(err, ErrTornPage) {
				return err
			}
			s.torn++
			f, err = s.pool.pin(id, true)
			if err != nil {
				return err
			}
			f.buf.markFree(0)
			s.pool.unpin(f, true)
			s.free = append(s.free, id)
			continue
		}
		if f.buf.flags()&pageFree != 0 {
			s.free = append(s.free, id)
			s.pool.unpin(f, false)
			continue
		}
		dirty := false
		var losers []int
		f.buf.scan(func(slot int, key, stamp uint64, _ []byte) bool {
			if stamp > s.stamp {
				s.stamp = stamp
			}
			prev, ok := s.dir[key]
			if !ok {
				s.dir[key] = rid{page: id, slot: uint16(slot)}
				return true
			}
			// Duplicate key. Compare stamps; same-page loser can be
			// deleted now, cross-page losers after this pin.
			if prev.page == id {
				_, prevStamp, _, _ := f.buf.get(int(prev.slot))
				if stamp > prevStamp {
					f.buf.delete(int(prev.slot))
					s.dir[key] = rid{page: id, slot: uint16(slot)}
				} else {
					losers = append(losers, slot)
				}
				dirty = true
				return true
			}
			otherStamp, err := s.stampAt(prev)
			if err == nil && stamp > otherStamp {
				s.deleteAt(prev)
				s.dir[key] = rid{page: id, slot: uint16(slot)}
			} else {
				losers = append(losers, slot)
				dirty = true
			}
			return true
		})
		for _, slot := range losers {
			f.buf.delete(slot)
		}
		if f.buf.empty() {
			f.buf.markFree(0)
			s.free = append(s.free, id)
			s.pool.unpin(f, true)
			continue
		}
		if f.buf.contiguousFree(1) >= cellOverhead+16 {
			s.avail[id] = struct{}{}
		}
		s.pool.unpin(f, dirty)
	}
	return nil
}

func (s *Store) stampAt(r rid) (uint64, error) {
	f, err := s.pool.pin(r.page, false)
	if err != nil {
		return 0, err
	}
	_, stamp, _, ok := f.buf.get(int(r.slot))
	s.pool.unpin(f, false)
	if !ok {
		return 0, fmt.Errorf("store: dangling rid %d/%d", r.page, r.slot)
	}
	return stamp, nil
}

func (s *Store) deleteAt(r rid) {
	f, err := s.pool.pin(r.page, false)
	if err != nil {
		return
	}
	f.buf.delete(int(r.slot))
	s.pool.unpin(f, true)
}

// MaxValue returns the largest value Put accepts for this store's page
// size.
func (s *Store) MaxValue() int {
	return s.file.pageSize - pageHeaderSize - slotSize - cellOverhead
}

// Put inserts or replaces the record for key.
func (s *Store) Put(key uint64, val []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(val) > s.MaxValue() {
		return fmt.Errorf("store: value of %d bytes exceeds page capacity %d", len(val), s.MaxValue())
	}
	s.puts++
	s.stamp++
	stamp := s.stamp
	if r, ok := s.dir[key]; ok {
		f, err := s.pool.pin(r.page, false)
		if err != nil {
			return err
		}
		if f.buf.update(int(r.slot), stamp, val) {
			s.pool.unpin(f, true)
			return nil
		}
		// Doesn't fit in place: retry on the same page (compaction may
		// make room), else move to another page. The old cell stays
		// live until the new copy is inserted, so a crash in between
		// leaves at most a stamped duplicate for recovery to resolve.
		if slot, ok := f.buf.insert(key, stamp, val); ok {
			f.buf.delete(int(r.slot))
			s.dir[key] = rid{page: r.page, slot: uint16(slot)}
			s.pool.unpin(f, true)
			return nil
		}
		s.pool.unpin(f, false)
		newRid, err := s.insertLocked(key, stamp, val, r.page)
		if err != nil {
			return err
		}
		s.deleteAt(r)
		s.avail[r.page] = struct{}{}
		s.dir[key] = newRid
		return nil
	}
	r, err := s.insertLocked(key, stamp, val, 0)
	if err != nil {
		return err
	}
	s.dir[key] = r
	return nil
}

// insertLocked places a new cell on some page with room: a candidate
// from the avail set first, then a free-list page, then a fresh page.
// skip excludes a page already known to be full.
func (s *Store) insertLocked(key, stamp uint64, val []byte, skip uint32) (rid, error) {
	tried := 0
	for id := range s.avail {
		if id == skip {
			continue
		}
		if tried >= 8 {
			break // bound the probe; fall through to a fresh page
		}
		tried++
		f, err := s.pool.pin(id, false)
		if err != nil {
			if errors.Is(err, ErrTornPage) {
				delete(s.avail, id)
				continue
			}
			return rid{}, err
		}
		slot, ok := f.buf.insert(key, stamp, val)
		if !ok {
			s.pool.unpin(f, false)
			delete(s.avail, id)
			continue
		}
		s.pool.unpin(f, true)
		return rid{page: id, slot: uint16(slot)}, nil
	}
	var id uint32
	if n := len(s.free); n > 0 {
		id = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		id = s.file.extend()
	}
	f, err := s.pool.pin(id, true)
	if err != nil {
		return rid{}, err
	}
	f.buf.init(id) // the frame may hold the page's prior (free) content
	slot, ok := f.buf.insert(key, stamp, val)
	if !ok {
		s.pool.unpin(f, true)
		return rid{}, fmt.Errorf("store: record of %d bytes does not fit an empty page", len(val))
	}
	s.pool.unpin(f, true)
	s.avail[id] = struct{}{}
	return rid{page: id, slot: uint16(slot)}, nil
}

// Get returns a copy of the record for key.
func (s *Store) Get(key uint64) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gets++
	r, ok := s.dir[key]
	if !ok {
		return nil, false, nil
	}
	f, err := s.pool.pin(r.page, false)
	if err != nil {
		return nil, false, err
	}
	gotKey, _, val, ok := f.buf.get(int(r.slot))
	if !ok || gotKey != key {
		s.pool.unpin(f, false)
		return nil, false, fmt.Errorf("store: directory entry for key %d is stale", key)
	}
	out := make([]byte, len(val))
	copy(out, val)
	s.pool.unpin(f, false)
	return out, true, nil
}

// Has reports whether key is present without touching the page.
func (s *Store) Has(key uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.dir[key]
	return ok
}

// Delete removes the record for key. Deleting an absent key is a
// no-op. Pages emptied by a delete return to the free list.
func (s *Store) Delete(key uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.deletes++
	r, ok := s.dir[key]
	if !ok {
		return nil
	}
	f, err := s.pool.pin(r.page, false)
	if err != nil {
		return err
	}
	f.buf.delete(int(r.slot))
	if f.buf.empty() {
		f.buf.markFree(0)
		s.free = append(s.free, r.page)
		delete(s.avail, r.page)
	} else {
		s.avail[r.page] = struct{}{}
	}
	s.pool.unpin(f, true)
	delete(s.dir, key)
	return nil
}

// Len returns the number of records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.dir)
}

// Keys returns every record key, unordered.
func (s *Store) Keys() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]uint64, 0, len(s.dir))
	for k := range s.dir {
		keys = append(keys, k)
	}
	return keys
}

// Scan visits every record page by page (so the working set stays
// within the pool budget). Values are only valid during the callback;
// the callback must not call back into the store.
func (s *Store) Scan(fn func(key uint64, val []byte) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id := uint32(1); id < s.file.npages; id++ {
		f, err := s.pool.pin(id, false)
		if err != nil {
			return err
		}
		if f.buf.flags()&pageFree != 0 {
			s.pool.unpin(f, false)
			continue
		}
		var scanErr error
		f.buf.scan(func(_ int, key, _ uint64, val []byte) bool {
			if err := fn(key, val); err != nil {
				scanErr = err
				return false
			}
			return true
		})
		s.pool.unpin(f, false)
		if scanErr != nil {
			return scanErr
		}
	}
	return nil
}

// Checkpoint writes every dirty page and the meta page to disk and
// fsyncs. After Checkpoint returns, all records Put before the call
// survive a crash (modulo torn pages, which recovery drops and
// upstream authorities rebuild).
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.checkpointLocked()
}

func (s *Store) checkpointLocked() error {
	if err := s.pool.flush(); err != nil {
		return err
	}
	if err := s.file.sync(); err != nil {
		return err
	}
	var head uint32
	if len(s.free) > 0 {
		head = s.free[len(s.free)-1]
	}
	if err := s.file.writeMeta(metaState{freeHead: head, stamp: s.stamp}); err != nil {
		return err
	}
	return s.file.sync()
}

// Close checkpoints and closes the file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.checkpointLocked()
	if cerr := s.file.close(); err == nil {
		err = cerr
	}
	return err
}

// Stats returns current counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pool.mu.Lock()
	st := Stats{
		Records:      len(s.dir),
		Pages:        int(s.file.npages),
		FreePages:    len(s.free),
		Resident:     len(s.pool.frames),
		PoolCapacity: s.pool.capacity,
		Hits:         s.pool.hits,
		Misses:       s.pool.misses,
		Evictions:    s.pool.evictions,
		WriteBacks:   s.pool.writeBacks,
		PinWaits:     s.pool.pinWaits,
		TornPages:    s.torn,
		Puts:         s.puts,
		Gets:         s.gets,
		Deletes:      s.deletes,
	}
	s.pool.mu.Unlock()
	return st
}
