package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
)

// heapFile is the on-disk side of the store: a single file of
// fixed-size pages. Page 0 is the meta page; data pages start at 1.
//
// Meta page layout:
//
//	[0:4]   CRC-32 of bytes [4:32]
//	[4:8]   magic "STPS"
//	[8:12]  format version
//	[12:16] page size
//	[16:20] page count (incl. meta) at last checkpoint
//	[20:24] free-list head (0 = empty)
//	[24:32] stamp watermark at last checkpoint
//
// The page count and free-list head are advisory: reopen derives the
// real page count from the file size and rebuilds the free list from
// the pageFree flags found by the recovery scan, so a crash between a
// structural change and the next checkpoint can never orphan or
// double-allocate a page.
const (
	metaMagic   = 0x53545053 // "STPS"
	metaVersion = 1
	metaSize    = 32
)

// ErrTornPage marks a page whose checksum or stored ID does not match:
// a torn write or misdirected I/O. The store recovers by dropping the
// page (its records are rebuilt from the journal/snapshot authorities
// upstream) — it never serves corrupt cells.
var ErrTornPage = errors.New("store: torn page")

type heapFile struct {
	f        *os.File
	pageSize int
	npages   uint32 // incl. meta page 0
}

type metaState struct {
	freeHead uint32
	stamp    uint64
}

// openHeapFile opens or creates the heap file. A fresh file gets a
// meta page; an existing one must match pageSize. The returned meta is
// advisory (see above) — zeroed when the meta page itself is torn.
func openHeapFile(path string, pageSize int) (*heapFile, metaState, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, metaState{}, fmt.Errorf("store: opening %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, metaState{}, fmt.Errorf("store: stat %s: %w", path, err)
	}
	h := &heapFile{f: f, pageSize: pageSize}
	if st.Size() == 0 {
		h.npages = 1
		if err := h.writeMeta(metaState{}); err != nil {
			f.Close()
			return nil, metaState{}, err
		}
		return h, metaState{}, nil
	}
	h.npages = uint32(st.Size() / int64(pageSize))
	if h.npages == 0 {
		h.npages = 1 // short file: meta rewritten below by recovery
	}
	meta, err := h.readMeta()
	if err != nil {
		f.Close()
		return nil, metaState{}, err
	}
	return h, meta, nil
}

func (h *heapFile) readMeta() (metaState, error) {
	buf := make([]byte, metaSize)
	if _, err := h.f.ReadAt(buf, 0); err != nil {
		// Torn/short meta: recoverable — the scan rebuilds everything.
		return metaState{}, nil
	}
	if binary.BigEndian.Uint32(buf[0:4]) != crc32.ChecksumIEEE(buf[4:metaSize]) {
		return metaState{}, nil // torn meta: advisory only, rebuild
	}
	if binary.BigEndian.Uint32(buf[4:8]) != metaMagic {
		return metaState{}, fmt.Errorf("store: %s is not a store file", h.f.Name())
	}
	if v := binary.BigEndian.Uint32(buf[8:12]); v != metaVersion {
		return metaState{}, fmt.Errorf("store: format version %d unsupported (want %d)", v, metaVersion)
	}
	if ps := int(binary.BigEndian.Uint32(buf[12:16])); ps != h.pageSize {
		return metaState{}, fmt.Errorf("store: file has page size %d, configured %d", ps, h.pageSize)
	}
	return metaState{
		freeHead: binary.BigEndian.Uint32(buf[20:24]),
		stamp:    binary.BigEndian.Uint64(buf[24:32]),
	}, nil
}

func (h *heapFile) writeMeta(m metaState) error {
	buf := make([]byte, h.pageSize)
	binary.BigEndian.PutUint32(buf[4:8], metaMagic)
	binary.BigEndian.PutUint32(buf[8:12], metaVersion)
	binary.BigEndian.PutUint32(buf[12:16], uint32(h.pageSize))
	binary.BigEndian.PutUint32(buf[16:20], h.npages)
	binary.BigEndian.PutUint32(buf[20:24], m.freeHead)
	binary.BigEndian.PutUint64(buf[24:32], m.stamp)
	binary.BigEndian.PutUint32(buf[0:4], crc32.ChecksumIEEE(buf[4:metaSize]))
	if _, err := h.f.WriteAt(buf, 0); err != nil {
		return fmt.Errorf("store: writing meta page: %w", err)
	}
	return nil
}

// readPage fills buf with page id, verifying checksum and stored ID.
func (h *heapFile) readPage(id uint32, buf page) error {
	if _, err := h.f.ReadAt(buf, int64(id)*int64(h.pageSize)); err != nil {
		return fmt.Errorf("store: reading page %d: %w", id, err)
	}
	if !buf.verify(id) {
		return fmt.Errorf("%w: page %d", ErrTornPage, id)
	}
	return nil
}

// writePage seals (checksums) and writes buf as page id.
func (h *heapFile) writePage(id uint32, buf page) error {
	buf.seal()
	if _, err := h.f.WriteAt(buf, int64(id)*int64(h.pageSize)); err != nil {
		return fmt.Errorf("store: writing page %d: %w", id, err)
	}
	return nil
}

// extend grows the file by one page and returns its ID.
func (h *heapFile) extend() uint32 {
	id := h.npages
	h.npages++
	return id
}

func (h *heapFile) sync() error {
	if err := h.f.Sync(); err != nil {
		return fmt.Errorf("store: syncing %s: %w", h.f.Name(), err)
	}
	return nil
}

func (h *heapFile) close() error { return h.f.Close() }
