package store

import (
	"fmt"
	"sync"
)

// frame is one buffer-pool slot: a resident page plus its pin count and
// dirty bit. Unpinned frames sit on the pool's LRU list (head = most
// recently released); pinned frames are off-list and unevictable.
type frame struct {
	id         uint32
	buf        page
	pins       int
	dirty      bool
	prev, next *frame // LRU links, nil while pinned
}

// pool is the buffer pool: a bounded set of resident pages over a
// heapFile with pin/unpin reference counting, LRU eviction of the
// least-recently-released unpinned page, and dirty-page write-back at
// eviction (and wholesale on flush). When every frame is pinned, pin
// blocks until a frame is released — back-pressure instead of
// unbounded growth. Safe for concurrent use; I/O for a miss or an
// eviction runs under the pool lock, which serializes faults (the
// store's single-writer usage makes that the simple, correct choice —
// see DESIGN.md §11).
type pool struct {
	mu   sync.Mutex
	cond *sync.Cond

	file     *heapFile
	capacity int
	frames   map[uint32]*frame
	spare    []*frame // allocated buffers not holding any page
	lruHead  *frame
	lruTail  *frame

	hits       uint64
	misses     uint64
	evictions  uint64
	writeBacks uint64
	pinWaits   uint64
}

func newPool(file *heapFile, capacity int) *pool {
	bp := &pool{file: file, capacity: capacity, frames: make(map[uint32]*frame, capacity)}
	bp.cond = sync.NewCond(&bp.mu)
	return bp
}

// pin returns page id resident and pinned, faulting it from disk on a
// miss. init=true skips the disk read and hands back a zeroed,
// initialized page (for pages that have never been written). Every pin
// must be paired with an unpin.
func (bp *pool) pin(id uint32, init bool) (*frame, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if f, ok := bp.frames[id]; ok {
		if f.pins == 0 {
			bp.lruRemove(f)
		}
		f.pins++
		bp.hits++
		return f, nil
	}
	f, err := bp.freeFrameLocked()
	if err != nil {
		return nil, err
	}
	f.id = id
	f.pins = 1
	f.dirty = false
	if init {
		f.buf.init(id)
		f.dirty = true
	} else {
		bp.misses++
		if err := bp.file.readPage(id, f.buf); err != nil {
			// The frame was never published; recycle the buffer so
			// capacity is not leaked.
			f.pins = 0
			bp.spare = append(bp.spare, f)
			return nil, err
		}
	}
	bp.frames[id] = f
	return f, nil
}

// freeFrameLocked produces an unused frame: below capacity it
// allocates (or reuses a spare) one, otherwise it evicts the LRU
// unpinned page (writing it back first when dirty), blocking while
// every frame is pinned.
func (bp *pool) freeFrameLocked() (*frame, error) {
	if len(bp.frames) < bp.capacity {
		if n := len(bp.spare); n > 0 {
			f := bp.spare[n-1]
			bp.spare = bp.spare[:n-1]
			return f, nil
		}
		return &frame{buf: make(page, bp.file.pageSize)}, nil
	}
	for {
		if f := bp.lruTail; f != nil {
			bp.lruRemove(f)
			if f.dirty {
				if err := bp.file.writePage(f.id, f.buf); err != nil {
					bp.lruPush(f) // keep it resident; the error surfaces
					return nil, err
				}
				f.dirty = false
				bp.writeBacks++
			}
			delete(bp.frames, f.id)
			bp.evictions++
			return f, nil
		}
		// Every frame pinned: wait for an unpin (back-pressure).
		bp.pinWaits++
		bp.cond.Wait()
	}
}

// unpin releases one pin, recording whether the caller mutated the
// page. When the pin count reaches zero the frame becomes evictable.
func (bp *pool) unpin(f *frame, dirty bool) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if dirty {
		f.dirty = true
	}
	f.pins--
	if f.pins < 0 {
		panic(fmt.Sprintf("store: unpin of page %d below zero", f.id))
	}
	if f.pins == 0 {
		bp.lruPush(f)
		bp.cond.Signal()
	}
}

// flush writes back every dirty resident page (pinned or not — callers
// quiesce mutation first; the store holds its own lock across
// checkpoints). The pages stay resident.
func (bp *pool) flush() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for _, f := range bp.frames {
		if !f.dirty {
			continue
		}
		if err := bp.file.writePage(f.id, f.buf); err != nil {
			return err
		}
		f.dirty = false
		bp.writeBacks++
	}
	return nil
}

func (bp *pool) resident() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return len(bp.frames)
}

func (bp *pool) lruPush(f *frame) {
	f.prev = nil
	f.next = bp.lruHead
	if bp.lruHead != nil {
		bp.lruHead.prev = f
	}
	bp.lruHead = f
	if bp.lruTail == nil {
		bp.lruTail = f
	}
}

func (bp *pool) lruRemove(f *frame) {
	if f.prev != nil {
		f.prev.next = f.next
	} else if bp.lruHead == f {
		bp.lruHead = f.next
	}
	if f.next != nil {
		f.next.prev = f.prev
	} else if bp.lruTail == f {
		bp.lruTail = f.prev
	}
	f.prev, f.next = nil, nil
}
