package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func openTestStore(t *testing.T, path string, pages int) *Store {
	t.Helper()
	s, err := Open(Config{Path: path, PageSize: 512, Pages: pages})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStorePutGetDelete(t *testing.T) {
	s := openTestStore(t, filepath.Join(t.TempDir(), "s.heap"), 4)
	defer s.Close()
	if err := s.Put(1, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	val, ok, err := s.Get(1)
	if err != nil || !ok || string(val) != "hello" {
		t.Fatalf("Get = %q/%v/%v", val, ok, err)
	}
	if err := s.Put(1, []byte("replaced")); err != nil {
		t.Fatal(err)
	}
	val, _, _ = s.Get(1)
	if string(val) != "replaced" {
		t.Fatalf("after replace: %q", val)
	}
	if err := s.Delete(1); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get(1); ok {
		t.Fatal("deleted key still present")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after delete", s.Len())
	}
}

func TestStoreValueTooLarge(t *testing.T) {
	s := openTestStore(t, filepath.Join(t.TempDir(), "s.heap"), 4)
	defer s.Close()
	if err := s.Put(1, make([]byte, s.MaxValue()+1)); err == nil {
		t.Fatal("oversized value accepted")
	}
	if err := s.Put(1, make([]byte, s.MaxValue())); err != nil {
		t.Fatalf("max-size value rejected: %v", err)
	}
}

// TestStoreWorkingSetBounded puts far more records than the pool can
// hold and checks residency never exceeds the page budget while every
// record remains readable — the core bounded-RSS property.
func TestStoreWorkingSetBounded(t *testing.T) {
	s := openTestStore(t, filepath.Join(t.TempDir(), "s.heap"), 4)
	defer s.Close()
	const n = 500
	for i := uint64(0); i < n; i++ {
		if err := s.Put(i, []byte(fmt.Sprintf("record-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Resident > st.PoolCapacity {
		t.Fatalf("resident %d exceeds pool capacity %d", st.Resident, st.PoolCapacity)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions despite records >> pool budget")
	}
	for i := uint64(0); i < n; i++ {
		val, ok, err := s.Get(i)
		if err != nil || !ok || string(val) != fmt.Sprintf("record-%d", i) {
			t.Fatalf("Get(%d) = %q/%v/%v", i, val, ok, err)
		}
	}
	if st := s.Stats(); st.Resident > st.PoolCapacity {
		t.Fatalf("resident %d exceeds pool capacity %d after reads", st.Resident, st.PoolCapacity)
	}
}

func TestStoreCheckpointReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.heap")
	s := openTestStore(t, path, 8)
	want := map[uint64][]byte{}
	for i := uint64(0); i < 200; i++ {
		v := []byte(fmt.Sprintf("value-%d", i*i))
		if err := s.Put(i, v); err != nil {
			t.Fatal(err)
		}
		want[i] = v
	}
	// Delete a contiguous prefix: sequential inserts pack sequential
	// keys onto the same pages, so this empties whole pages onto the
	// free list.
	for i := uint64(0); i < 100; i++ {
		if err := s.Delete(i); err != nil {
			t.Fatal(err)
		}
		delete(want, i)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openTestStore(t, path, 8)
	defer s2.Close()
	if s2.Len() != len(want) {
		t.Fatalf("reopened Len = %d, want %d", s2.Len(), len(want))
	}
	got := map[uint64][]byte{}
	if err := s2.Scan(func(key uint64, val []byte) error {
		got[key] = append([]byte(nil), val...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for k, v := range want {
		if !bytes.Equal(got[k], v) {
			t.Fatalf("key %d: reopened %q, want %q", k, got[k], v)
		}
	}
	// Freed pages were rediscovered for reuse.
	if st := s2.Stats(); st.FreePages == 0 {
		t.Fatal("free list empty after reopening a store with deletions")
	}
}

func TestStoreReopenRecoversTornPage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.heap")
	s := openTestStore(t, path, 8)
	for i := uint64(0); i < 60; i++ {
		if err := s.Put(i, bytes.Repeat([]byte{byte(i)}, 40)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt one data page in the middle of the file.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("garbage-torn-write"), 2*512+100); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := openTestStore(t, path, 8)
	defer s2.Close()
	st := s2.Stats()
	if st.TornPages != 1 {
		t.Fatalf("TornPages = %d, want 1", st.TornPages)
	}
	// Records on intact pages are still served; the torn page's records
	// are gone (upstream authorities rebuild them), never corrupt.
	if s2.Len() >= 60 || s2.Len() == 0 {
		t.Fatalf("reopened Len = %d, want partial survival", s2.Len())
	}
	if err := s2.Scan(func(key uint64, val []byte) error {
		if !bytes.Equal(val, bytes.Repeat([]byte{byte(key)}, 40)) {
			return fmt.Errorf("key %d served corrupt value %q", key, val)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// The torn page was reinitialized as free and is reusable.
	if st.FreePages == 0 {
		t.Fatal("torn page not reclaimed onto the free list")
	}
	if err := s2.Put(1000, []byte("fresh")); err != nil {
		t.Fatal(err)
	}
}

func TestStoreDuplicateKeyNewestWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.heap")
	s := openTestStore(t, path, 8)
	if err := s.Put(5, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash between two write-backs of a record move: append
	// a second page holding a newer-stamped copy of key 5.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := f.Stat()
	id := uint32(st.Size() / 512)
	p := make(page, 512)
	p.init(id)
	p.insert(5, 1<<40, []byte("new")) // stamp far above the watermark
	p.seal()
	if _, err := f.WriteAt(p, st.Size()); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := openTestStore(t, path, 8)
	defer s2.Close()
	val, ok, err := s2.Get(5)
	if err != nil || !ok || string(val) != "new" {
		t.Fatalf("Get(5) = %q/%v/%v, want newest copy", val, ok, err)
	}
	if s2.Len() != 1 {
		t.Fatalf("Len = %d, want 1 after duplicate resolution", s2.Len())
	}
	// The stamp watermark advanced past the recovered copy, so new puts
	// outrank it.
	if err := s2.Put(5, []byte("newest")); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3 := openTestStore(t, path, 8)
	defer s3.Close()
	if val, _, _ := s3.Get(5); string(val) != "newest" {
		t.Fatalf("after re-put and reopen: %q", val)
	}
}

// TestStoreRandomChurnAgainstModel is the long property test: random
// puts/deletes/reopens cross-checked against a map, with a pool far
// smaller than the data so eviction and reload are constantly
// exercised.
func TestStoreRandomChurnAgainstModel(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.heap")
	rng := rand.New(rand.NewSource(42))
	model := map[uint64][]byte{}
	s := openTestStore(t, path, 3)
	defer func() { s.Close() }()
	for op := 0; op < 4000; op++ {
		key := uint64(rng.Intn(300))
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4, 5: // put
			val := make([]byte, rng.Intn(120))
			rng.Read(val)
			if err := s.Put(key, val); err != nil {
				t.Fatalf("op %d: Put: %v", op, err)
			}
			model[key] = val
		case 6, 7: // delete
			if err := s.Delete(key); err != nil {
				t.Fatalf("op %d: Delete: %v", op, err)
			}
			delete(model, key)
		case 8: // get
			val, ok, err := s.Get(key)
			if err != nil {
				t.Fatalf("op %d: Get: %v", op, err)
			}
			wantVal, wantOK := model[key]
			if ok != wantOK || !bytes.Equal(val, wantVal) {
				t.Fatalf("op %d: Get(%d) = %q/%v, want %q/%v", op, key, val, ok, wantVal, wantOK)
			}
		case 9: // reopen every so often
			if op%500 != 9 {
				continue
			}
			if err := s.Close(); err != nil {
				t.Fatalf("op %d: Close: %v", op, err)
			}
			s = openTestStore(t, path, 3)
		}
	}
	if s.Len() != len(model) {
		t.Fatalf("final Len = %d, model %d", s.Len(), len(model))
	}
	for k, v := range model {
		val, ok, err := s.Get(k)
		if err != nil || !ok || !bytes.Equal(val, v) {
			t.Fatalf("final Get(%d) = %q/%v/%v, want %q", k, val, ok, err, v)
		}
	}
}

func TestStoreOpenRejectsMismatchedPageSize(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.heap")
	s := openTestStore(t, path, 4)
	s.Put(1, []byte("x"))
	s.Close()
	if _, err := Open(Config{Path: path, PageSize: 1024, Pages: 4}); err == nil {
		t.Fatal("open with mismatched page size succeeded")
	}
}

func TestStoreKeysAndHas(t *testing.T) {
	s := openTestStore(t, filepath.Join(t.TempDir(), "s.heap"), 4)
	defer s.Close()
	for i := uint64(0); i < 10; i++ {
		s.Put(i, []byte{byte(i)})
	}
	if !s.Has(3) || s.Has(99) {
		t.Fatal("Has wrong")
	}
	if got := len(s.Keys()); got != 10 {
		t.Fatalf("Keys returned %d, want 10", got)
	}
}
