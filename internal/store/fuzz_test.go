package store

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzPage drives the page codec with fuzzer-chosen operations and
// cross-checks against a map model, then verifies seal/verify detects
// any single-byte corruption the fuzzer picks. Ops are decoded from
// the input: each op is 4 bytes (opcode, key, value length, corrupt
// offset seed).
func FuzzPage(f *testing.F) {
	f.Add([]byte{0, 1, 10, 0, 1, 1, 0, 0, 0, 2, 20, 5})
	f.Add([]byte{0, 5, 200, 9, 0, 5, 3, 1, 2, 5, 0, 0})
	f.Add(bytes.Repeat([]byte{0, 7, 30, 3}, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		p := newTestPage(512, 11)
		model := map[uint64][]byte{}
		slots := map[uint64]int{}
		stamp := uint64(0)
		for i := 0; i+4 <= len(data); i += 4 {
			op, key, vlen := data[i], uint64(data[i+1]), int(data[i+2])
			stamp++
			switch op % 3 {
			case 0: // put
				val := bytes.Repeat([]byte{data[i+3]}, vlen)
				if s, ok := slots[key]; ok {
					if p.update(s, stamp, val) {
						model[key] = val
						continue
					}
					p.delete(s)
					delete(slots, key)
					delete(model, key)
				}
				if s, ok := p.insert(key, stamp, val); ok {
					slots[key] = s
					model[key] = val
				}
			case 1: // delete
				if s, ok := slots[key]; ok {
					p.delete(s)
					delete(slots, key)
					delete(model, key)
				}
			case 2: // compact (any time)
				p.compact()
			}
			// Invariants after every op.
			if p.freeHigh() > len(p) || p.freeHigh() < pageHeaderSize {
				t.Fatalf("freeHigh %d out of range", p.freeHigh())
			}
			if pageHeaderSize+p.nslots()*slotSize > p.freeHigh() {
				t.Fatalf("slot directory overlaps cells: nslots=%d freeHigh=%d", p.nslots(), p.freeHigh())
			}
		}
		// Model equivalence.
		seen := map[uint64][]byte{}
		p.scan(func(_ int, key, _ uint64, val []byte) bool {
			seen[key] = append([]byte(nil), val...)
			return true
		})
		if len(seen) != len(model) {
			t.Fatalf("scan has %d records, model %d", len(seen), len(model))
		}
		for k, v := range model {
			if !bytes.Equal(seen[k], v) {
				t.Fatalf("key %d: page %q != model %q", k, seen[k], v)
			}
		}
		// Round-trip through seal/verify, then corruption detection.
		p.seal()
		if !p.verify(11) {
			t.Fatal("sealed page does not verify")
		}
		if len(data) > 0 {
			off := int(binary.BigEndian.Uint16(append([]byte{data[0]}, data[len(data)-1]))) % len(p)
			if off >= offPageID { // flipping inside the CRC'd region must be caught
				p[off] ^= 0x5A
				if p.verify(11) {
					t.Fatalf("corruption at offset %d not detected", off)
				}
			}
		}
	})
}
