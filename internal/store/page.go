package store

import (
	"encoding/binary"
	"hash/crc32"
)

// Slotted heap-file page (DESIGN.md §11). One page is a fixed-size
// byte buffer:
//
//	[0:4]   CRC-32 (IEEE) of bytes [4:pageSize], set at write-back
//	[4:8]   page ID — guards against misdirected reads/writes
//	[8:10]  flags (pageFree marks a free-list member)
//	[10:12] slot count
//	[12:14] freeHigh: lowest byte offset used by cell data
//	[14:16] reserved
//	[16:20] nextFree: free-list link (meaningful only with pageFree)
//	[20:24] reserved
//	[24:..] slot directory, 4 bytes per slot, growing forward
//	[..:N]  cells, growing backward from the page end
//
// A slot is (cellOff uint16, cellLen uint16); cellLen 0 marks a dead
// slot whose directory entry is reusable. A cell is the record key
// (uint64), a store-assigned stamp (uint64, newest-wins crash
// resolution), then the value bytes. The checksum is what turns a torn
// write into a detected torn page instead of silently corrupt records.
const (
	pageHeaderSize = 24
	slotSize       = 4
	cellOverhead   = 16 // key + stamp

	offCRC      = 0
	offPageID   = 4
	offFlags    = 8
	offNSlots   = 10
	offFreeHigh = 12
	offNextFree = 16

	pageFree = 1 << 0
)

type page []byte

func (p page) init(id uint32) {
	for i := range p {
		p[i] = 0
	}
	binary.BigEndian.PutUint32(p[offPageID:], id)
	binary.BigEndian.PutUint16(p[offFreeHigh:], uint16(len(p)))
}

func (p page) id() uint32       { return binary.BigEndian.Uint32(p[offPageID:]) }
func (p page) flags() uint16    { return binary.BigEndian.Uint16(p[offFlags:]) }
func (p page) nslots() int      { return int(binary.BigEndian.Uint16(p[offNSlots:])) }
func (p page) freeHigh() int    { return int(binary.BigEndian.Uint16(p[offFreeHigh:])) }
func (p page) nextFree() uint32 { return binary.BigEndian.Uint32(p[offNextFree:]) }

func (p page) setFlags(f uint16)     { binary.BigEndian.PutUint16(p[offFlags:], f) }
func (p page) setNSlots(n int)       { binary.BigEndian.PutUint16(p[offNSlots:], uint16(n)) }
func (p page) setFreeHigh(v int)     { binary.BigEndian.PutUint16(p[offFreeHigh:], uint16(v)) }
func (p page) setNextFree(id uint32) { binary.BigEndian.PutUint32(p[offNextFree:], id) }

// markFree reinitializes the page as a free-list member linking to next.
func (p page) markFree(next uint32) {
	id := p.id()
	p.init(id)
	p.setFlags(pageFree)
	p.setNextFree(next)
}

func (p page) slot(i int) (off, length int) {
	base := pageHeaderSize + i*slotSize
	return int(binary.BigEndian.Uint16(p[base:])), int(binary.BigEndian.Uint16(p[base+2:]))
}

func (p page) setSlot(i, off, length int) {
	base := pageHeaderSize + i*slotSize
	binary.BigEndian.PutUint16(p[base:], uint16(off))
	binary.BigEndian.PutUint16(p[base+2:], uint16(length))
}

// contiguousFree returns the bytes available between the end of the
// slot directory and the lowest cell, assuming newSlot additional
// directory entries.
func (p page) contiguousFree(newSlots int) int {
	low := pageHeaderSize + (p.nslots()+newSlots)*slotSize
	if low > p.freeHigh() {
		return 0
	}
	return p.freeHigh() - low
}

// liveBytes sums the cell bytes still referenced by live slots.
func (p page) liveBytes() int {
	total := 0
	for i := 0; i < p.nslots(); i++ {
		_, l := p.slot(i)
		total += l
	}
	return total
}

// insert places a cell on the page, reusing a dead directory slot when
// one exists and compacting first if fragmentation is hiding enough
// space. Returns the slot index, or ok=false when the record cannot
// fit even after compaction.
func (p page) insert(key, stamp uint64, val []byte) (int, bool) {
	need := cellOverhead + len(val)
	slot := -1
	for i := 0; i < p.nslots(); i++ {
		if _, l := p.slot(i); l == 0 {
			slot = i
			break
		}
	}
	newSlots := 0
	if slot == -1 {
		newSlots = 1
	}
	if p.contiguousFree(newSlots) < need {
		// Fragmented free space (dead or shrunk cells) only becomes
		// usable after compaction.
		usable := len(p) - (pageHeaderSize + (p.nslots()+newSlots)*slotSize) - p.liveBytes()
		if usable < need {
			return 0, false
		}
		p.compact()
		if p.contiguousFree(newSlots) < need {
			return 0, false
		}
	}
	if slot == -1 {
		slot = p.nslots()
		p.setNSlots(slot + 1)
	}
	off := p.freeHigh() - need
	binary.BigEndian.PutUint64(p[off:], key)
	binary.BigEndian.PutUint64(p[off+8:], stamp)
	copy(p[off+cellOverhead:], val)
	p.setSlot(slot, off, need)
	p.setFreeHigh(off)
	return slot, true
}

// update rewrites the value of a live slot in place when the new value
// fits the existing cell; the caller falls back to delete+insert
// otherwise. The bytes stranded by a shrinking update are reclaimed by
// the next compaction.
func (p page) update(slot int, stamp uint64, val []byte) bool {
	off, l := p.slot(slot)
	if l == 0 {
		return false
	}
	need := cellOverhead + len(val)
	if need > l {
		return false
	}
	binary.BigEndian.PutUint64(p[off+8:], stamp)
	copy(p[off+cellOverhead:], val)
	p.setSlot(slot, off, need)
	return true
}

// get returns the cell at slot. The value aliases the page buffer —
// callers copy before unpinning.
func (p page) get(slot int) (key, stamp uint64, val []byte, ok bool) {
	if slot < 0 || slot >= p.nslots() {
		return 0, 0, nil, false
	}
	off, l := p.slot(slot)
	if l == 0 {
		return 0, 0, nil, false
	}
	key = binary.BigEndian.Uint64(p[off:])
	stamp = binary.BigEndian.Uint64(p[off+8:])
	return key, stamp, p[off+cellOverhead : off+l], true
}

// delete kills a slot; trailing dead slots shrink the directory.
func (p page) delete(slot int) {
	p.setSlot(slot, 0, 0)
	n := p.nslots()
	for n > 0 {
		if _, l := p.slot(n - 1); l != 0 {
			break
		}
		n--
	}
	p.setNSlots(n)
	if n == 0 {
		p.setFreeHigh(len(p))
	}
}

// scan visits every live cell. Returning false stops the scan. Values
// alias the page buffer.
func (p page) scan(fn func(slot int, key, stamp uint64, val []byte) bool) {
	for i := 0; i < p.nslots(); i++ {
		if key, stamp, val, ok := p.get(i); ok {
			if !fn(i, key, stamp, val) {
				return
			}
		}
	}
}

// empty reports whether the page holds no live cells.
func (p page) empty() bool {
	for i := 0; i < p.nslots(); i++ {
		if _, l := p.slot(i); l != 0 {
			return false
		}
	}
	return true
}

// compact rewrites live cells against the page end, squeezing out dead
// and shrunk-cell space. Slot indices are preserved (the directory is
// the identity RIDs point at).
func (p page) compact() {
	scratch := make([]byte, len(p))
	high := len(p)
	for i := 0; i < p.nslots(); i++ {
		off, l := p.slot(i)
		if l == 0 {
			continue
		}
		high -= l
		copy(scratch[high:], p[off:off+l])
		p.setSlot(i, high, l)
	}
	copy(p[high:], scratch[high:])
	p.setFreeHigh(high)
}

// seal computes and stores the page checksum; verify checks it.
func (p page) seal() {
	binary.BigEndian.PutUint32(p[offCRC:], crc32.ChecksumIEEE(p[4:]))
}

func (p page) verify(wantID uint32) bool {
	if binary.BigEndian.Uint32(p[offCRC:]) != crc32.ChecksumIEEE(p[4:]) {
		return false
	}
	return p.id() == wantID
}
