// Package journal implements the durable publication journal of the
// broker (DESIGN.md §9): a segmented, append-only log of every
// publication a broker accepts — local or federation-routed — plus
// per-subscription cursors that advance only on delivery
// acknowledgement. Together they give durable subscriptions
// at-least-once delivery: after a broker crash/restart or a subscriber
// reconnect, everything past the cursor is replayed.
//
// On disk a journal is a directory of segment files
// (journal-<firstseq>.seg) holding length-prefixed, CRC-checked
// records, a cursors.json file with the acked watermarks, and nothing
// else. Segments roll by size or age and are compacted away once every
// cursor has passed them (or forcibly, under a retention byte cap —
// see the retention vs. replay contract in DESIGN.md §9).
package journal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"

	"stopss/internal/message"
)

// Record is one journaled publication.
type Record struct {
	Seq    uint64        `json:"seq"`              // journal-assigned, monotonic from 1
	Remote bool          `json:"remote,omitempty"` // arrived via the federation overlay
	Event  message.Event `json:"event"`            // reuses the message wire codecs
	// PubID is the publication's federation-wide identity
	// (`broker#epoch/seq`, internal/trace). Catch-up replay propagates
	// it into re-dispatched notifications so replayed deliveries stay
	// correlated with their original trace. Empty in records written
	// before tracing existed — the field is format-compatible both ways.
	PubID string `json:"pub_id,omitempty"`
}

// Frame layout: 4-byte big-endian payload length, 4-byte big-endian
// CRC-32 (IEEE) of the payload, then the JSON payload. The CRC is what
// lets reopen detect a torn tail write and truncate it instead of
// replaying garbage.
const frameHeader = 8

// maxRecordSize bounds a single record's payload so a corrupt length
// prefix cannot drive a giant allocation (mirrors the overlay's
// readFrame hardening).
const maxRecordSize = 8 << 20

// EncodeRecord renders a record as one framed journal entry.
func EncodeRecord(r Record) ([]byte, error) {
	payload, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("journal: encoding record %d: %w", r.Seq, err)
	}
	if len(payload) > maxRecordSize {
		return nil, fmt.Errorf("journal: record %d payload %d bytes exceeds %d", r.Seq, len(payload), maxRecordSize)
	}
	out := make([]byte, frameHeader+len(payload))
	binary.BigEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(payload))
	copy(out[frameHeader:], payload)
	return out, nil
}

// DecodeRecord parses one framed record from the front of b and
// returns it together with the number of bytes consumed. A short
// buffer, a CRC mismatch or malformed JSON is an error; callers at a
// segment tail treat any error as a torn write and stop.
func DecodeRecord(b []byte) (Record, int, error) {
	if len(b) < frameHeader {
		return Record{}, 0, fmt.Errorf("journal: truncated frame header (%d bytes)", len(b))
	}
	size := binary.BigEndian.Uint32(b[0:4])
	if size > maxRecordSize {
		return Record{}, 0, fmt.Errorf("journal: record payload %d bytes exceeds %d", size, maxRecordSize)
	}
	if len(b) < frameHeader+int(size) {
		return Record{}, 0, fmt.Errorf("journal: truncated record payload (%d of %d bytes)", len(b)-frameHeader, size)
	}
	payload := b[frameHeader : frameHeader+int(size)]
	if got, want := crc32.ChecksumIEEE(payload), binary.BigEndian.Uint32(b[4:8]); got != want {
		return Record{}, 0, fmt.Errorf("journal: record CRC mismatch (got %08x, want %08x)", got, want)
	}
	var r Record
	if err := json.Unmarshal(payload, &r); err != nil {
		return Record{}, 0, fmt.Errorf("journal: decoding record: %w", err)
	}
	return r, frameHeader + int(size), nil
}
