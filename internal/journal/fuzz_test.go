package journal

import (
	"bytes"
	"testing"

	"stopss/internal/message"
)

// FuzzJournalRecord mirrors the overlay's FuzzFrame: arbitrary bytes
// must never panic the decoder, and any frame the decoder accepts must
// re-encode to a byte-identical frame (the CRC and length prefix are
// canonical, so a valid decode pins the exact encoding).
func FuzzJournalRecord(f *testing.F) {
	seed := []Record{
		{Seq: 1, Event: message.E("school", "Toronto", "degree", "PhD")},
		{Seq: 42, Remote: true, Event: message.E("salary", 90000, "remote", true, "gpa", 3.9)},
		{Seq: 1 << 60, Event: message.E("a", "b")},
	}
	for _, r := range seed {
		b, err := EncodeRecord(r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := DecodeRecord(data)
		if err != nil {
			return
		}
		if n < frameHeader || n > len(data) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(data))
		}
		re, err := EncodeRecord(rec)
		if err != nil {
			t.Fatalf("re-encoding a decoded record failed: %v", err)
		}
		rec2, n2, err := DecodeRecord(re)
		if err != nil {
			t.Fatalf("decoding a re-encoded record failed: %v", err)
		}
		if n2 != len(re) {
			t.Fatalf("re-decode consumed %d of %d bytes", n2, len(re))
		}
		if rec2.Seq != rec.Seq || rec2.Remote != rec.Remote || !rec2.Event.Equal(rec.Event) {
			t.Fatalf("round trip changed the record: %+v vs %+v", rec, rec2)
		}
		re2, err := EncodeRecord(rec2)
		if err != nil || !bytes.Equal(re, re2) {
			t.Fatalf("encoding is not canonical: %x vs %x (err %v)", re, re2, err)
		}
	})
}
