package journal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"stopss/internal/message"
)

// Config tunes a journal.
type Config struct {
	Dir           string        // journal directory (required)
	SegmentBytes  int64         // roll threshold (default 8 MiB)
	MaxSegmentAge time.Duration // roll the active segment after this age (0 = size-only)
	// RetentionBytes caps the total size of sealed segments: when the
	// cap is exceeded the oldest sealed segment is dropped even if a
	// cursor has not passed it, and the records above that cursor are
	// counted in Stats.RetentionLostRecords — the retention vs. replay
	// contract (DESIGN.md §9). 0 means unlimited.
	RetentionBytes int64
	// Fsync makes Append wait until its record is flushed AND synced to
	// stable storage. Concurrent appenders share one fsync (group
	// commit), so the cost amortizes under load. With Fsync off,
	// records are buffered and reach the file on roll, Scan, cursor
	// sync or Close — cheaper, but a process crash can lose the tail.
	Fsync bool
	// IndexEvery is the record stride of the sparse seq→offset index
	// that lets Scan seek into a segment instead of decoding it from
	// the head (0 = default 128, negative = disabled). Smaller strides
	// seek closer at the cost of bigger sidecars.
	IndexEvery int
	// EphemeralCursors keeps the cursor table purely in memory: no
	// cursors.json is read or written. Set when a higher layer (the
	// broker's subscription store) is the durable cursor authority and
	// re-seeds cursors on reopen.
	EphemeralCursors bool
}

func (c Config) withDefaults() Config {
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 8 << 20
	}
	if c.IndexEvery == 0 {
		c.IndexEvery = defaultIndexEvery
	}
	return c
}

// Stats snapshots journal state and activity.
type Stats struct {
	Segments                 int    // segment files on disk (incl. active)
	Bytes                    int64  // total bytes on disk (excl. cursors file)
	FirstSeq                 uint64 // oldest retained record (0 when empty)
	NextSeq                  uint64 // next sequence number to be assigned
	Appends                  uint64
	GroupCommits             uint64 // fsync batches (Fsync mode only)
	Cursors                  int    // durable cursors tracked
	CompactedSegments        uint64 // sealed segments removed because every cursor passed them
	RetentionDroppedSegments uint64 // sealed segments dropped by the retention cap
	RetentionLostRecords     uint64 // records above a cursor lost to the retention cap
	Replayed                 uint64 // records handed out by Scan
	IndexEntries             int    // sparse index entries across all segments
	SeekScans                uint64 // Scans that used the index to skip into a segment
	SeekSkippedBytes         uint64 // segment bytes never read thanks to index seeks
}

type segInfo struct {
	path  string
	first uint64
	last  uint64
	bytes int64
	index []indexEntry // sparse seq→offset index (nil when disabled)
}

// Journal is a segmented, append-only publication log with durable
// per-subscription cursors. Safe for concurrent use.
type Journal struct {
	cfg Config

	mu sync.Mutex
	// syncMu pins the active file across an fsync running outside
	// j.mu. Lock order is strictly mu→syncMu; anything closing the
	// active file (roll, Close) takes it under mu, so an in-flight
	// sync always completes on an open descriptor.
	syncMu                 sync.Mutex
	cond                   *sync.Cond
	sealed                 []segInfo
	active                 *os.File
	activeInfo             segInfo
	activeBorn             time.Time
	buf                    []byte // pending bytes not yet written to the active file
	nextSeq                uint64
	flushedSeq             uint64 // highest seq durable on disk (Fsync mode)
	flushErr               error
	closed                 bool
	cursors                map[string]uint64
	cursorsDirty           bool
	commitsSinceCursorSave int
	floorFn                func() (uint64, bool)
	stats                  Stats

	flushReq chan struct{}
}

const (
	segPrefix   = "journal-"
	segSuffix   = ".seg"
	cursorsFile = "cursors.json"
	// cursorSaveEvery throttles cursors.json rewrites on the commit
	// path; SyncCursors and Close always persist immediately.
	cursorSaveEvery = 16
)

// Open creates or recovers a journal in cfg.Dir. Existing segments are
// validated (a torn tail write on the newest segment is truncated
// away); appends resume after the highest recovered sequence number.
func Open(cfg Config) (*Journal, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("journal: Config.Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: creating %s: %w", cfg.Dir, err)
	}
	j := &Journal{
		cfg:      cfg,
		nextSeq:  1,
		cursors:  make(map[string]uint64),
		flushReq: make(chan struct{}, 1),
	}
	j.cond = sync.NewCond(&j.mu)
	if err := j.recover(); err != nil {
		return nil, err
	}
	if !cfg.EphemeralCursors {
		if err := j.loadCursors(); err != nil {
			return nil, err
		}
	}
	go j.flusher()
	return j, nil
}

// recover scans existing segments, truncating a torn tail on the
// newest one. All recovered segments are sealed; the next append lazily
// starts a fresh active segment.
func (j *Journal) recover() error {
	entries, err := os.ReadDir(j.cfg.Dir)
	if err != nil {
		return fmt.Errorf("journal: reading %s: %w", j.cfg.Dir, err)
	}
	type cand struct {
		path  string
		first uint64
	}
	var cands []cand
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		seqStr := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
		first, err := strconv.ParseUint(seqStr, 10, 64)
		if err != nil {
			return fmt.Errorf("journal: segment %s has an unparsable sequence: %w", name, err)
		}
		cands = append(cands, cand{path: filepath.Join(j.cfg.Dir, name), first: first})
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].first < cands[b].first })
	for i, c := range cands {
		newest := i == len(cands)-1
		var info segInfo
		if !newest && j.cfg.IndexEvery > 0 {
			// A valid sidecar carries the sealed segment's range, size,
			// and index, so reopen skips re-reading the whole segment.
			if si, err := readSidecar(c.path, c.first); err == nil {
				info = si
			}
		}
		if info.first == 0 {
			var err error
			info, err = scanSegment(c.path, newest, j.cfg.IndexEvery)
			if err != nil {
				return err
			}
			if !newest && info.first != 0 && j.cfg.IndexEvery > 0 {
				writeSidecar(info) // best-effort: derived data, rebuilt next reopen
			}
		}
		if info.first == 0 {
			// Empty segment (crash before the first record flushed):
			// drop the file rather than tracking a hole.
			if err := os.Remove(c.path); err != nil {
				return fmt.Errorf("journal: removing empty segment %s: %w", c.path, err)
			}
			removeSidecar(c.path)
			continue
		}
		j.sealed = append(j.sealed, info)
		if info.last >= j.nextSeq {
			j.nextSeq = info.last + 1
		}
	}
	j.flushedSeq = j.nextSeq - 1
	return nil
}

// scanSegment validates one segment file, returning its record range
// and (when every > 0) a rebuilt sparse index. When truncateTorn is
// set (newest segment only — a crash can only tear the file being
// written), a trailing partial or corrupt record is truncated away;
// anywhere else it is an error.
func scanSegment(path string, truncateTorn bool, every int) (segInfo, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return segInfo{}, fmt.Errorf("journal: reading segment: %w", err)
	}
	info := segInfo{path: path}
	off := 0
	for off < len(data) {
		rec, n, err := DecodeRecord(data[off:])
		if err != nil {
			if !truncateTorn {
				return segInfo{}, fmt.Errorf("journal: segment %s corrupt at byte %d: %w", path, off, err)
			}
			if terr := os.Truncate(path, int64(off)); terr != nil {
				return segInfo{}, fmt.Errorf("journal: truncating torn tail of %s: %w", path, terr)
			}
			break
		}
		if info.first == 0 {
			info.first = rec.Seq
		}
		if every > 0 && (len(info.index) == 0 || rec.Seq >= info.index[len(info.index)-1].seq+uint64(every)) {
			info.index = append(info.index, indexEntry{seq: rec.Seq, off: int64(off)})
		}
		info.last = rec.Seq
		off += n
	}
	info.bytes = int64(off)
	return info, nil
}

// Append journals one publication and returns its sequence number. In
// Fsync mode the call blocks until the record is on stable storage,
// sharing the fsync with concurrent appenders (group commit).
func (j *Journal) Append(ev message.Event, remote bool) (uint64, error) {
	return j.AppendFunc(ev, remote, nil)
}

// AppendFunc is Append with a sequence-assignment callback: onSeq (if
// non-nil) runs under the journal lock immediately after the record is
// assigned its sequence number and buffered, BEFORE the group-commit
// wait. Callers use it to register delivery bookkeeping atomically
// with sequence assignment — two concurrent appends invoke their
// callbacks in sequence order, so no observer can see seq N committed
// while seq N-1 exists but is untracked. The callback must not call
// back into the journal.
func (j *Journal) AppendFunc(ev message.Event, remote bool, onSeq func(uint64)) (uint64, error) {
	return j.AppendTraced(ev, remote, "", onSeq)
}

// AppendTraced is AppendFunc with the publication's trace identity
// (internal/trace pub ID) stored on the record, so catch-up replay can
// re-correlate redelivered notifications with their trace.
func (j *Journal) AppendTraced(ev message.Event, remote bool, pubID string, onSeq func(uint64)) (uint64, error) {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return 0, fmt.Errorf("journal: closed")
	}
	seq := j.nextSeq
	frame, err := EncodeRecord(Record{Seq: seq, Remote: remote, Event: ev, PubID: pubID})
	if err != nil {
		j.mu.Unlock()
		return 0, err
	}
	if err := j.rollIfNeededLocked(int64(len(frame))); err != nil {
		j.mu.Unlock()
		return 0, err
	}
	j.nextSeq++
	if j.activeInfo.first == 0 {
		j.activeInfo.first = seq
	}
	j.activeInfo.last = seq
	if e := j.cfg.IndexEvery; e > 0 {
		idx := j.activeInfo.index
		if len(idx) == 0 || seq >= idx[len(idx)-1].seq+uint64(e) {
			j.activeInfo.index = append(idx, indexEntry{seq: seq, off: j.activeInfo.bytes})
		}
	}
	j.activeInfo.bytes += int64(len(frame))
	j.buf = append(j.buf, frame...)
	j.stats.Appends++
	if onSeq != nil {
		onSeq(seq)
	}
	if !j.cfg.Fsync {
		j.mu.Unlock()
		return seq, nil
	}
	// Group commit: ask the flusher for a commit and wait until our
	// record is covered by one. Everyone who appended before the fsync
	// ran rides the same sync.
	select {
	case j.flushReq <- struct{}{}:
	default: // a commit request is already pending
	}
	for j.flushedSeq < seq && j.flushErr == nil && !j.closed {
		j.cond.Wait()
	}
	err = j.flushErr
	if err == nil && j.flushedSeq < seq {
		err = fmt.Errorf("journal: closed before record %d committed", seq)
	}
	j.mu.Unlock()
	return seq, err
}

// flusher runs commits on request. The fsync itself happens OUTSIDE
// j.mu (guarded by syncMu, acquired in mu→syncMu order everywhere):
// while the device syncs one batch, concurrent appenders keep
// buffering the next one — that overlap is what makes group commit
// actually batch instead of degenerating to one fsync per append.
func (j *Journal) flusher() {
	for range j.flushReq {
		j.mu.Lock()
		if j.closed {
			j.mu.Unlock()
			return
		}
		err := j.writeLocked()
		target := j.nextSeq - 1
		f := j.active
		path := j.activeInfo.path
		j.syncMu.Lock() // under mu: pins f open until the sync is done
		j.mu.Unlock()
		if err == nil && f != nil {
			if serr := f.Sync(); serr != nil {
				err = fmt.Errorf("journal: syncing %s: %w", path, serr)
			}
		}
		j.syncMu.Unlock()
		j.mu.Lock()
		if err != nil && j.flushErr == nil {
			j.flushErr = err
		}
		if err == nil && target > j.flushedSeq {
			j.flushedSeq = target
		}
		// Cursor persistence is throttled: rewriting cursors.json is
		// O(cursors) and would otherwise ride along with nearly every
		// commit under steady ack traffic. A lagging cursor only
		// causes redelivery, never loss, so once every
		// cursorSaveEvery commits (plus SyncCursors/Close) is enough.
		j.commitsSinceCursorSave++
		if j.cursorsDirty && j.commitsSinceCursorSave >= cursorSaveEvery {
			if cerr := j.saveCursorsLocked(); cerr != nil && j.flushErr == nil {
				j.flushErr = cerr
			}
		}
		j.stats.GroupCommits++
		j.cond.Broadcast()
		j.mu.Unlock()
	}
}

// writeLocked moves pending buffered bytes into the active segment
// file (creating it lazily). Cursor durability piggybacks on commits
// elsewhere, which is safe because a cursor that lags only causes
// redelivery, never loss.
func (j *Journal) writeLocked() error {
	if len(j.buf) == 0 {
		return nil
	}
	if j.active == nil {
		if err := j.openActiveLocked(); err != nil {
			return err
		}
	}
	if _, err := j.active.Write(j.buf); err != nil {
		return fmt.Errorf("journal: writing %s: %w", j.activeInfo.path, err)
	}
	j.buf = j.buf[:0]
	return nil
}

func (j *Journal) openActiveLocked() error {
	path := filepath.Join(j.cfg.Dir, fmt.Sprintf("%s%020d%s", segPrefix, j.activeInfo.first, segSuffix))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: opening segment: %w", err)
	}
	// Fsync the directory so the new segment's name survives power
	// loss — without this a freshly rolled segment can vanish even
	// though its records were fsynced.
	if j.cfg.Fsync {
		if err := syncDir(j.cfg.Dir); err != nil {
			f.Close()
			return err
		}
	}
	j.active = f
	j.activeInfo.path = path
	j.activeBorn = time.Now()
	return nil
}

// syncDir fsyncs a directory, making its entries (renames, creates)
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("journal: opening dir %s: %w", dir, err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("journal: syncing dir %s: %w", dir, err)
	}
	return nil
}

// rollIfNeededLocked seals the active segment when the incoming frame
// would push it past the size threshold, or when it is older than
// MaxSegmentAge, then runs compaction and retention.
func (j *Journal) rollIfNeededLocked(incoming int64) error {
	if j.activeInfo.bytes == 0 {
		return nil
	}
	overSize := j.activeInfo.bytes+incoming > j.cfg.SegmentBytes
	overAge := j.cfg.MaxSegmentAge > 0 && j.active != nil && time.Since(j.activeBorn) > j.cfg.MaxSegmentAge
	if !overSize && !overAge {
		return nil
	}
	if err := j.writeLocked(); err != nil {
		return err
	}
	if j.active != nil {
		j.syncMu.Lock() // wait out any in-flight fsync before closing
		var err error
		if j.cfg.Fsync {
			err = j.active.Sync()
		}
		if cerr := j.active.Close(); err == nil {
			err = cerr
		}
		j.syncMu.Unlock()
		if err != nil {
			return fmt.Errorf("journal: sealing segment: %w", err)
		}
		j.active = nil
	}
	if j.activeInfo.first != 0 {
		j.sealed = append(j.sealed, j.activeInfo)
		if j.cfg.IndexEvery > 0 {
			writeSidecar(j.activeInfo) // best-effort: rebuilt on reopen if lost
		}
	}
	j.activeInfo = segInfo{}
	j.compactLocked()
	return nil
}

// ackFloor is the sequence number every cursor has passed. With no
// cursors nothing will ever be replayed, so the whole history up to
// the head is reclaimable. An external floor function (the broker's
// detached-subscription store) can pin the floor lower for consumers
// whose cursors are not resident in the journal's table.
func (j *Journal) ackFloorLocked() uint64 {
	floor := j.nextSeq - 1
	for _, c := range j.cursors {
		if c < floor {
			floor = c
		}
	}
	if j.floorFn != nil {
		if f, ok := j.floorFn(); ok && f < floor {
			floor = f
		}
	}
	return floor
}

// SetFloorFunc registers an external ack-floor source consulted by
// compaction in addition to the in-memory cursor table. fn runs under
// the journal lock and must not call back into the journal. Returning
// ok=false means "no external floor". A conservative (stale-low) floor
// only delays compaction; it never loses records.
func (j *Journal) SetFloorFunc(fn func() (uint64, bool)) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.floorFn = fn
}

// compactLocked removes sealed segments that (a) every cursor has
// fully acknowledged, then (b) enforces the retention byte cap,
// dropping the oldest sealed segments and counting any records a
// cursor still needed as lost.
func (j *Journal) compactLocked() {
	floor := j.ackFloorLocked()
	for len(j.sealed) > 0 && j.sealed[0].last <= floor {
		if os.Remove(j.sealed[0].path) == nil {
			j.stats.CompactedSegments++
		}
		removeSidecar(j.sealed[0].path)
		j.sealed = j.sealed[1:]
	}
	if j.cfg.RetentionBytes <= 0 {
		return
	}
	total := int64(0)
	for _, s := range j.sealed {
		total += s.bytes
	}
	for len(j.sealed) > 1 && total > j.cfg.RetentionBytes {
		s := j.sealed[0]
		removeSidecar(s.path)
		if os.Remove(s.path) == nil {
			j.stats.RetentionDroppedSegments++
			if s.last > floor {
				lostFrom := s.first
				if floor+1 > lostFrom {
					lostFrom = floor + 1
				}
				j.stats.RetentionLostRecords += s.last - lostFrom + 1
			}
		}
		total -= s.bytes
		j.sealed = j.sealed[1:]
	}
}

// Scan replays every retained record with seq >= from, in order,
// through fn. Records appended after Scan starts are not guaranteed to
// be seen. A non-nil error from fn aborts the scan.
func (j *Journal) Scan(from uint64, fn func(Record) error) error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return fmt.Errorf("journal: closed")
	}
	if err := j.writeLocked(); err != nil {
		j.mu.Unlock()
		return err
	}
	paths := make([]segInfo, 0, len(j.sealed)+1)
	for _, s := range j.sealed {
		if s.last >= from {
			paths = append(paths, s)
		}
	}
	if j.activeInfo.first != 0 && j.activeInfo.last >= from {
		paths = append(paths, j.activeInfo)
	}
	j.mu.Unlock()

	for _, s := range paths {
		// Seek: the sparse index names the offset of the last indexed
		// record at or below the cursor, so a deep-cursor scan reads
		// only the tail of the segment instead of the whole file.
		start := seekOffset(s.index, from)
		f, err := os.Open(s.path)
		if os.IsNotExist(err) {
			// A concurrent roll compacted (or retention-dropped) this
			// segment after we snapshotted the list: its records are
			// either below every cursor or counted as retention loss —
			// skip it rather than aborting the whole replay.
			continue
		}
		if err != nil {
			return fmt.Errorf("journal: opening segment: %w", err)
		}
		data := make([]byte, s.bytes-start)
		_, err = f.ReadAt(data, start)
		f.Close()
		if err != nil {
			return fmt.Errorf("journal: reading segment %s: %w", s.path, err)
		}
		if start > 0 {
			j.mu.Lock()
			j.stats.SeekScans++
			j.stats.SeekSkippedBytes += uint64(start)
			j.mu.Unlock()
		}
		off := 0
		for off < len(data) {
			rec, n, err := DecodeRecord(data[off:])
			if err != nil {
				return fmt.Errorf("journal: segment %s corrupt at byte %d: %w", s.path, int64(off)+start, err)
			}
			off += n
			if rec.Seq < from {
				continue
			}
			j.mu.Lock()
			j.stats.Replayed++
			j.mu.Unlock()
			if err := fn(rec); err != nil {
				return err
			}
		}
	}
	return nil
}

// NextSeq returns the sequence number the next append will receive.
func (j *Journal) NextSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.nextSeq
}

// SetCursor advances the named durable cursor to seq (monotonic: a
// lower value is ignored). The cursor means "everything up to and
// including seq is handled"; replay starts at seq+1.
func (j *Journal) SetCursor(key string, seq uint64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if cur, ok := j.cursors[key]; ok && cur >= seq {
		return
	}
	j.cursors[key] = seq
	j.cursorsDirty = true
}

// Cursor returns the named cursor and whether it exists.
func (j *Journal) Cursor(key string) (uint64, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	c, ok := j.cursors[key]
	return c, ok
}

// Cursors returns a copy of every durable cursor.
func (j *Journal) Cursors() map[string]uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make(map[string]uint64, len(j.cursors))
	for k, v := range j.cursors {
		out[k] = v
	}
	return out
}

// DeleteCursor removes a durable cursor (its history becomes
// reclaimable by compaction).
func (j *Journal) DeleteCursor(key string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.cursors[key]; ok {
		delete(j.cursors, key)
		j.cursorsDirty = true
	}
}

// SyncCursors persists the cursor table now (also happens on every
// commit and on Close).
func (j *Journal) SyncCursors() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.cursorsDirty {
		return nil
	}
	return j.saveCursorsLocked()
}

type cursorsOnDisk struct {
	Cursors map[string]uint64 `json:"cursors"`
}

// saveCursorsLocked atomically and durably rewrites cursors.json:
// write a temp file, fsync it, rename into place, fsync the directory.
// A crash at any point leaves either the old complete file or the new
// complete file — never a torn mix.
func (j *Journal) saveCursorsLocked() error {
	j.cursorsDirty = false
	j.commitsSinceCursorSave = 0
	if j.cfg.EphemeralCursors {
		return nil // a higher layer is the durable cursor authority
	}
	data, err := json.Marshal(cursorsOnDisk{Cursors: j.cursors})
	if err != nil {
		return fmt.Errorf("journal: encoding cursors: %w", err)
	}
	tmp := filepath.Join(j.cfg.Dir, cursorsFile+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: creating cursors temp: %w", err)
	}
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: writing cursors: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(j.cfg.Dir, cursorsFile)); err != nil {
		return fmt.Errorf("journal: installing cursors: %w", err)
	}
	return syncDir(j.cfg.Dir)
}

func (j *Journal) loadCursors() error {
	data, err := os.ReadFile(filepath.Join(j.cfg.Dir, cursorsFile))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("journal: reading cursors: %w", err)
	}
	var d cursorsOnDisk
	if err := json.Unmarshal(data, &d); err != nil {
		// A torn cursors file (crash mid-write on a pre-fsync layout, or
		// disk corruption) is recoverable: cursors restart at zero and
		// the affected subscriptions see redelivery, never loss — so
		// tolerate it instead of refusing to open.
		return nil
	}
	if d.Cursors != nil {
		j.cursors = d.Cursors
	}
	return nil
}

// Stats snapshots journal counters.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := j.stats
	s.NextSeq = j.nextSeq
	s.Cursors = len(j.cursors)
	s.Segments = len(j.sealed)
	s.Bytes = int64(len(j.buf))
	s.IndexEntries = len(j.activeInfo.index)
	for _, seg := range j.sealed {
		s.Bytes += seg.bytes
		s.IndexEntries += len(seg.index)
	}
	if j.activeInfo.first != 0 {
		s.Segments++
		s.Bytes += j.activeInfo.bytes - int64(len(j.buf)) // buf already counted
	}
	if len(j.sealed) > 0 {
		s.FirstSeq = j.sealed[0].first
	} else if j.activeInfo.first != 0 {
		s.FirstSeq = j.activeInfo.first
	}
	return s
}

// Close flushes and syncs pending records and cursors, then releases
// the journal. Further operations fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return fmt.Errorf("journal: closed")
	}
	err := j.writeLocked()
	if err == nil {
		j.flushedSeq = j.nextSeq - 1
	}
	if j.cursorsDirty {
		if cerr := j.saveCursorsLocked(); err == nil {
			err = cerr
		}
	}
	if j.active != nil {
		j.syncMu.Lock() // wait out any in-flight fsync
		if serr := j.active.Sync(); err == nil && serr != nil {
			err = serr
		}
		if cerr := j.active.Close(); err == nil && cerr != nil {
			err = cerr
		}
		j.syncMu.Unlock()
		j.active = nil
	}
	j.closed = true
	j.cond.Broadcast()
	j.mu.Unlock()
	close(j.flushReq)
	return err
}
