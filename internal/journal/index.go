package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

// Sparse seq→offset index (DESIGN.md §11). Every IndexEvery-th record
// in a segment gets an entry mapping its sequence number to its byte
// offset, so Scan(from) on a deep cursor seeks near the right record
// instead of decoding the whole segment from the head.
//
// The active segment's index lives only in memory, built as records
// are appended. When a segment seals, the index is persisted to a
// sidecar file (journal-<first>.idx) next to it; the sidecar also
// carries the segment's record range and byte size, which lets reopen
// trust a validated sidecar instead of re-reading the whole sealed
// segment. Sidecars are pure derived data: missing or corrupt ones are
// rebuilt from the segment, never the other way around.
//
// Sidecar layout (big-endian):
//
//	[0:4]   magic "STIX"
//	[4:8]   format version
//	[8:16]  first seq
//	[16:24] last seq
//	[24:32] segment bytes
//	[32:36] entry count
//	[36:..] entries, 16 bytes each: seq u64, offset u64
//	[..:+4] CRC-32 (IEEE) of everything above
const (
	idxMagic   = 0x53544958 // "STIX"
	idxVersion = 1
	idxSuffix  = ".idx"

	// defaultIndexEvery is the record stride between index entries
	// when Config.IndexEvery is zero.
	defaultIndexEvery = 128
)

type indexEntry struct {
	seq uint64
	off int64
}

// seekOffset returns the byte offset to start decoding from when
// looking for records with seq >= from: the offset of the last indexed
// record at or below from, or 0 when the index has nothing useful.
func seekOffset(index []indexEntry, from uint64) int64 {
	off := int64(0)
	for _, e := range index {
		if e.seq > from {
			break
		}
		off = e.off
	}
	return off
}

func sidecarPath(segPath string) string {
	return segPath[:len(segPath)-len(segSuffix)] + idxSuffix
}

// writeSidecar persists a sealed segment's index. Best-effort callers
// may ignore the error: the sidecar is rebuilt on reopen if absent.
func writeSidecar(seg segInfo) error {
	buf := make([]byte, 36+16*len(seg.index)+4)
	binary.BigEndian.PutUint32(buf[0:], idxMagic)
	binary.BigEndian.PutUint32(buf[4:], idxVersion)
	binary.BigEndian.PutUint64(buf[8:], seg.first)
	binary.BigEndian.PutUint64(buf[16:], seg.last)
	binary.BigEndian.PutUint64(buf[24:], uint64(seg.bytes))
	binary.BigEndian.PutUint32(buf[32:], uint32(len(seg.index)))
	at := 36
	for _, e := range seg.index {
		binary.BigEndian.PutUint64(buf[at:], e.seq)
		binary.BigEndian.PutUint64(buf[at+8:], uint64(e.off))
		at += 16
	}
	binary.BigEndian.PutUint32(buf[at:], crc32.ChecksumIEEE(buf[:at]))
	return os.WriteFile(sidecarPath(seg.path), buf, 0o644)
}

// readSidecar loads and validates a segment's index sidecar. The
// segment file itself is cross-checked only by size (the caller knows
// the expected first seq from the segment name); any mismatch or
// corruption returns an error and the caller rebuilds from the
// segment.
func readSidecar(segPath string, wantFirst uint64) (segInfo, error) {
	buf, err := os.ReadFile(sidecarPath(segPath))
	if err != nil {
		return segInfo{}, err
	}
	if len(buf) < 40 {
		return segInfo{}, fmt.Errorf("journal: sidecar for %s truncated", segPath)
	}
	body, sum := buf[:len(buf)-4], binary.BigEndian.Uint32(buf[len(buf)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return segInfo{}, fmt.Errorf("journal: sidecar for %s corrupt", segPath)
	}
	if binary.BigEndian.Uint32(buf[0:]) != idxMagic || binary.BigEndian.Uint32(buf[4:]) != idxVersion {
		return segInfo{}, fmt.Errorf("journal: sidecar for %s has wrong magic/version", segPath)
	}
	info := segInfo{
		path:  segPath,
		first: binary.BigEndian.Uint64(buf[8:]),
		last:  binary.BigEndian.Uint64(buf[16:]),
		bytes: int64(binary.BigEndian.Uint64(buf[24:])),
	}
	if info.first != wantFirst {
		return segInfo{}, fmt.Errorf("journal: sidecar for %s names first seq %d, want %d", segPath, info.first, wantFirst)
	}
	count := int(binary.BigEndian.Uint32(buf[32:]))
	if len(buf) != 36+16*count+4 {
		return segInfo{}, fmt.Errorf("journal: sidecar for %s has inconsistent entry count", segPath)
	}
	st, err := os.Stat(segPath)
	if err != nil {
		return segInfo{}, err
	}
	if st.Size() != info.bytes {
		return segInfo{}, fmt.Errorf("journal: segment %s is %d bytes, sidecar says %d", segPath, st.Size(), info.bytes)
	}
	at := 36
	prevSeq, prevOff := uint64(0), int64(-1)
	for i := 0; i < count; i++ {
		e := indexEntry{
			seq: binary.BigEndian.Uint64(buf[at:]),
			off: int64(binary.BigEndian.Uint64(buf[at+8:])),
		}
		at += 16
		if e.seq < info.first || e.seq > info.last || e.off >= info.bytes ||
			e.seq <= prevSeq && i > 0 || e.off <= prevOff && i > 0 {
			return segInfo{}, fmt.Errorf("journal: sidecar for %s has out-of-range entry", segPath)
		}
		prevSeq, prevOff = e.seq, e.off
		info.index = append(info.index, e)
	}
	return info, nil
}

func removeSidecar(segPath string) {
	os.Remove(sidecarPath(segPath))
}
