package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"stopss/internal/message"
)

func openT(t *testing.T, cfg Config) *Journal {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	j, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = j.Close() })
	return j
}

func ev(i int) message.Event {
	return message.E("school", "Toronto", "seq", i)
}

func appendN(t *testing.T, j *Journal, n int) {
	t.Helper()
	for i := 1; i <= n; i++ {
		seq, err := j.Append(ev(i), i%3 == 0)
		if err != nil {
			t.Fatal(err)
		}
		if seq == 0 {
			t.Fatalf("append %d returned seq 0", i)
		}
	}
}

func collect(t *testing.T, j *Journal, from uint64) []Record {
	t.Helper()
	var out []Record
	if err := j.Scan(from, func(r Record) error {
		out = append(out, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAppendScanRoundTrip(t *testing.T) {
	j := openT(t, Config{})
	appendN(t, j, 10)
	recs := collect(t, j, 1)
	if len(recs) != 10 {
		t.Fatalf("scanned %d records, want 10", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
		if v, ok := r.Event.Get("seq"); !ok || v.IntVal() != int64(i+1) {
			t.Fatalf("record %d event payload mangled: %v", i, r.Event)
		}
		if r.Remote != ((i+1)%3 == 0) {
			t.Fatalf("record %d remote flag lost", i)
		}
	}
	// Scan from the middle.
	if got := len(collect(t, j, 7)); got != 4 {
		t.Fatalf("scan from 7 returned %d records, want 4", got)
	}
}

func TestReopenResumesSequence(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, j, 5)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2 := openT(t, Config{Dir: dir})
	if got := j2.NextSeq(); got != 6 {
		t.Fatalf("reopened NextSeq = %d, want 6", got)
	}
	appendN(t, j2, 3)
	recs := collect(t, j2, 1)
	if len(recs) != 8 {
		t.Fatalf("after reopen: %d records, want 8", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d after reopen", i, r.Seq)
		}
	}
}

func TestReopenTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, j, 4)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the last record: chop a few bytes off the segment tail,
	// simulating a crash mid-write.
	segs, err := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments found: %v", err)
	}
	last := segs[len(segs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	j2 := openT(t, Config{Dir: dir})
	recs := collect(t, j2, 1)
	if len(recs) != 3 {
		t.Fatalf("after torn tail: %d records, want 3", len(recs))
	}
	// The torn record's sequence number is reused by the next append.
	if got := j2.NextSeq(); got != 4 {
		t.Fatalf("NextSeq after torn tail = %d, want 4", got)
	}
}

func TestSegmentRollAndStats(t *testing.T) {
	j := openT(t, Config{SegmentBytes: 256})
	j.SetCursor("pin", 0) // hold history: with no cursors rolls self-compact
	appendN(t, j, 30)
	st := j.Stats()
	if st.Segments < 2 {
		t.Fatalf("expected multiple segments, got %d", st.Segments)
	}
	if st.Appends != 30 || st.NextSeq != 31 {
		t.Fatalf("stats = %+v", st)
	}
	if got := len(collect(t, j, 1)); got != 30 {
		t.Fatalf("scan across segments returned %d records", got)
	}
}

func TestNoCursorsSelfCompactsOnRoll(t *testing.T) {
	// Without durable cursors nothing is ever replayed, so sealed
	// segments are reclaimed as they roll: the journal stays bounded
	// in deployments with no durable subscribers.
	j := openT(t, Config{SegmentBytes: 256})
	appendN(t, j, 30)
	st := j.Stats()
	if st.Segments != 1 {
		t.Fatalf("expected only the active segment to remain, got %d", st.Segments)
	}
	if st.CompactedSegments == 0 {
		t.Fatalf("no compaction recorded: %+v", st)
	}
}

func TestAgeBasedRoll(t *testing.T) {
	j := openT(t, Config{MaxSegmentAge: time.Millisecond})
	j.SetCursor("pin", 0)
	appendN(t, j, 1)
	if err := j.Scan(1, func(Record) error { return nil }); err != nil {
		t.Fatal(err) // force the active file into existence
	}
	time.Sleep(5 * time.Millisecond)
	appendN(t, j, 1)
	appendN(t, j, 1)
	if st := j.Stats(); st.Segments < 2 {
		t.Fatalf("expected an age-based roll, got %d segments", st.Segments)
	}
}

func TestCompactionReclaimsAckedSegments(t *testing.T) {
	j := openT(t, Config{SegmentBytes: 256})
	j.SetCursor("sub-1", 0)
	appendN(t, j, 10)
	before := j.Stats()
	if before.Segments < 2 {
		t.Fatalf("need multiple segments, got %d", before.Segments)
	}
	// Cursor passes everything: the next roll reclaims sealed history.
	j.SetCursor("sub-1", 10)
	appendN(t, j, 20)
	st := j.Stats()
	if st.CompactedSegments == 0 {
		t.Fatalf("expected compaction, stats = %+v", st)
	}
	// Records above the cursor are still replayable.
	recs := collect(t, j, 11)
	if len(recs) != 20 {
		t.Fatalf("post-compaction scan returned %d records, want 20", len(recs))
	}
}

func TestCompactionHoldsBelowUnackedCursor(t *testing.T) {
	// A lagging cursor pins everything above it: the fully-acked
	// prefix may compact, but no record past the cursor is lost.
	j := openT(t, Config{SegmentBytes: 256})
	j.SetCursor("slow", 2)
	appendN(t, j, 40)
	st := j.Stats()
	if st.RetentionLostRecords != 0 {
		t.Fatalf("records lost without a retention cap: %+v", st)
	}
	if st.FirstSeq > 3 {
		t.Fatalf("compaction ran past the unacked cursor: FirstSeq=%d", st.FirstSeq)
	}
	if got := len(collect(t, j, 3)); got != 38 {
		t.Fatalf("scan from unacked cursor returned %d records, want 38", got)
	}
}

func TestRetentionCapDropsOldestAndCountsLoss(t *testing.T) {
	j := openT(t, Config{SegmentBytes: 256, RetentionBytes: 512})
	j.SetCursor("slow", 0) // never acks: every drop is a loss
	appendN(t, j, 60)
	st := j.Stats()
	if st.RetentionDroppedSegments == 0 {
		t.Fatalf("retention cap never engaged: %+v", st)
	}
	if st.RetentionLostRecords == 0 {
		t.Fatalf("lost records not counted: %+v", st)
	}
	if st.FirstSeq <= 1 {
		t.Fatalf("FirstSeq did not advance: %+v", st)
	}
	// Replay degrades gracefully: it starts at the first retained record.
	recs := collect(t, j, 1)
	if len(recs) == 0 || recs[0].Seq != st.FirstSeq {
		t.Fatalf("replay after retention starts at %d, want %d", recs[0].Seq, st.FirstSeq)
	}
}

func TestCursorsPersistAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, j, 5)
	j.SetCursor("sub-7", 3)
	j.SetCursor("sub-9", 5)
	j.SetCursor("sub-7", 2) // monotonic: must not regress
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2 := openT(t, Config{Dir: dir})
	if c, ok := j2.Cursor("sub-7"); !ok || c != 3 {
		t.Fatalf("sub-7 cursor = %d,%v want 3", c, ok)
	}
	if c, ok := j2.Cursor("sub-9"); !ok || c != 5 {
		t.Fatalf("sub-9 cursor = %d,%v want 5", c, ok)
	}
	j2.DeleteCursor("sub-9")
	if err := j2.SyncCursors(); err != nil {
		t.Fatal(err)
	}
	if _, ok := j2.Cursor("sub-9"); ok {
		t.Fatal("deleted cursor still present")
	}
}

func TestGroupCommitConcurrentAppends(t *testing.T) {
	j := openT(t, Config{Fsync: true})
	const (
		workers = 8
		each    = 25
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := j.Append(ev(w*1000+i), false); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := j.Stats()
	if st.Appends != workers*each {
		t.Fatalf("appends = %d, want %d", st.Appends, workers*each)
	}
	// The whole point of group commit: fewer fsync batches than
	// appends under concurrency. With 8 workers racing and the fsync
	// running outside the append lock, at least one batch must cover
	// several appends; equality would mean one fsync per append.
	if st.GroupCommits == 0 || st.GroupCommits >= st.Appends {
		t.Fatalf("group commits = %d for %d appends: batching never engaged", st.GroupCommits, st.Appends)
	}
	recs := collect(t, j, 1)
	if len(recs) != workers*each {
		t.Fatalf("scanned %d records, want %d", len(recs), workers*each)
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d: appends interleaved out of order", i, r.Seq)
		}
	}
}

func TestFsyncSurvivesReopenWithoutClose(t *testing.T) {
	// Fsync mode guarantees appended records are on disk even when the
	// process dies without Close: reopen without closing and recover.
	dir := t.TempDir()
	j, err := Open(Config{Dir: dir, Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, j, 7)
	// No Close: simulate a crash. (The file handle leaks for the test's
	// duration, which is fine.)
	j2 := openT(t, Config{Dir: dir})
	if got := len(collect(t, j2, 1)); got != 7 {
		t.Fatalf("fsynced records lost: %d of 7 recovered", got)
	}
	_ = j.Close()
}

func TestAppendAfterCloseFails(t *testing.T) {
	j, err := Open(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(ev(1), false); err == nil {
		t.Fatal("append after close succeeded")
	}
	if err := j.Scan(1, func(Record) error { return nil }); err == nil {
		t.Fatal("scan after close succeeded")
	}
}

func TestScanAbortsOnCallbackError(t *testing.T) {
	j := openT(t, Config{})
	appendN(t, j, 5)
	boom := fmt.Errorf("boom")
	n := 0
	err := j.Scan(1, func(Record) error {
		n++
		if n == 3 {
			return boom
		}
		return nil
	})
	if err != boom || n != 3 {
		t.Fatalf("scan err=%v after %d records, want boom after 3", err, n)
	}
}

func TestOpenRequiresDir(t *testing.T) {
	if _, err := Open(Config{}); err == nil {
		t.Fatal("Open with empty dir succeeded")
	}
}
