package journal

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// smallSegs is a config that rolls often and indexes densely so tests
// exercise many segments and sidecars with few records.
func smallSegs(dir string) Config {
	return Config{Dir: dir, SegmentBytes: 2 << 10, IndexEvery: 4}
}

func segAndIdxFiles(t *testing.T, dir string) (segs, idxs []string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		switch {
		case strings.HasSuffix(e.Name(), segSuffix):
			segs = append(segs, e.Name())
		case strings.HasSuffix(e.Name(), idxSuffix):
			idxs = append(idxs, e.Name())
		}
	}
	return segs, idxs
}

func TestIndexSeekScanMatchesFullScan(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, smallSegs(dir))
	j.SetCursor("keep", 0) // retain all history across rolls
	appendN(t, j, 400)
	for _, from := range []uint64{1, 2, 57, 128, 199, 200, 201, 399, 400, 401} {
		recs := collect(t, j, from)
		want := 0
		if from <= 400 {
			want = int(401 - from)
		}
		if len(recs) != want {
			t.Fatalf("scan from %d returned %d records, want %d", from, len(recs), want)
		}
		for i, r := range recs {
			if r.Seq != from+uint64(i) {
				t.Fatalf("scan from %d: record %d has seq %d", from, i, r.Seq)
			}
		}
	}
	// Deep-cursor scans actually seeked.
	if st := j.Stats(); st.SeekScans == 0 || st.SeekSkippedBytes == 0 {
		t.Fatalf("no index seeks recorded: %+v", st)
	}
}

func TestIndexSidecarsWrittenOnRollAndReopen(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, smallSegs(dir))
	j.SetCursor("keep", 0)
	appendN(t, j, 400)
	collect(t, j, 1) // flush so the active segment exists on disk too
	segs, idxs := segAndIdxFiles(t, dir)
	if len(segs) < 3 {
		t.Fatalf("want several segments, got %d", len(segs))
	}
	// Every sealed segment (all but the newest) has a sidecar.
	if len(idxs) != len(segs)-1 {
		t.Fatalf("%d sidecars for %d segments", len(idxs), len(segs))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Delete one sidecar and corrupt another: reopen must rebuild both
	// and scans must stay correct.
	if err := os.Remove(filepath.Join(dir, idxs[0])); err != nil {
		t.Fatal(err)
	}
	if len(idxs) > 1 {
		if err := os.WriteFile(filepath.Join(dir, idxs[1]), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	j2 := openT(t, smallSegs(dir))
	recs := collect(t, j2, 390)
	if len(recs) != 11 {
		t.Fatalf("post-rebuild scan returned %d records, want 11", len(recs))
	}
	if _, idxs2 := segAndIdxFiles(t, dir); len(idxs2) < len(idxs) {
		t.Fatalf("sidecars not rebuilt: %d, want >= %d", len(idxs2), len(idxs))
	}
	if st := j2.Stats(); st.IndexEntries == 0 {
		t.Fatal("no index entries after reopen")
	}
}

func TestIndexDisabled(t *testing.T) {
	j := openT(t, Config{SegmentBytes: 2 << 10, IndexEvery: -1})
	j.SetCursor("keep", 0)
	appendN(t, j, 200)
	if got := len(collect(t, j, 150)); got != 51 {
		t.Fatalf("scan returned %d records, want 51", got)
	}
	st := j.Stats()
	if st.IndexEntries != 0 || st.SeekScans != 0 {
		t.Fatalf("index active despite IndexEvery=-1: %+v", st)
	}
}

func TestIndexCompactionRemovesSidecars(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, smallSegs(dir))
	j.SetCursor("sub", 0)
	appendN(t, j, 400)
	j.SetCursor("sub", 400)
	appendN(t, j, 50) // trigger rolls so compaction can run
	if st := j.Stats(); st.CompactedSegments == 0 {
		t.Fatalf("no compaction happened: %+v", st)
	}
	_, idxs := segAndIdxFiles(t, dir)
	for _, idx := range idxs {
		seg := strings.TrimSuffix(idx, idxSuffix) + segSuffix
		if _, err := os.Stat(filepath.Join(dir, seg)); err != nil {
			t.Fatalf("sidecar %s outlived its segment", idx)
		}
	}
}

// TestReopenAfterRollDurable is the directory-fsync regression test:
// roll segments with Fsync on, reopen, and verify every record is
// still there (the roll path must have fsynced the directory so the
// new segment name is durable).
func TestReopenAfterRollDurable(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, SegmentBytes: 1 << 10, Fsync: true, IndexEvery: 8}
	j := openT(t, cfg)
	j.SetCursor("keep", 0)
	appendN(t, j, 120)
	segs, _ := segAndIdxFiles(t, dir)
	if len(segs) < 2 {
		t.Fatalf("want a roll, got %d segments", len(segs))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2 := openT(t, cfg)
	if got := len(collect(t, j2, 1)); got != 120 {
		t.Fatalf("reopen after roll lost records: %d, want 120", got)
	}
	if next := j2.NextSeq(); next != 121 {
		t.Fatalf("NextSeq = %d, want 121", next)
	}
}

func TestCursorsFileTornReopen(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, Config{Dir: dir})
	appendN(t, j, 10)
	j.SetCursor("sub-1", 7)
	if err := j.SyncCursors(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Truncate cursors.json mid-file, as a torn write would.
	path := filepath.Join(dir, cursorsFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	j2 := openT(t, Config{Dir: dir})
	// The torn table is dropped: cursor gone, journal healthy, and the
	// subscription sees redelivery from the start rather than loss.
	if _, ok := j2.Cursor("sub-1"); ok {
		t.Fatal("cursor survived a torn cursors.json")
	}
	if got := len(collect(t, j2, 1)); got != 10 {
		t.Fatalf("records lost alongside torn cursors: %d, want 10", got)
	}
	// And the next save repairs the file.
	j2.SetCursor("sub-1", 3)
	if err := j2.SyncCursors(); err != nil {
		t.Fatal(err)
	}
	j3 := openT(t, Config{Dir: dir})
	if c, ok := j3.Cursor("sub-1"); !ok || c != 3 {
		t.Fatalf("cursor after repair = %d/%v, want 3", c, ok)
	}
}

func TestEphemeralCursors(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, Config{Dir: dir, EphemeralCursors: true})
	appendN(t, j, 5)
	j.SetCursor("sub-1", 4)
	if err := j.SyncCursors(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, cursorsFile)); !os.IsNotExist(err) {
		t.Fatal("ephemeral mode wrote cursors.json")
	}
	j2 := openT(t, Config{Dir: dir, EphemeralCursors: true})
	if _, ok := j2.Cursor("sub-1"); ok {
		t.Fatal("ephemeral cursor survived reopen")
	}
	// A leftover cursors.json from a previous non-ephemeral run is
	// ignored too.
	if err := os.WriteFile(filepath.Join(dir, cursorsFile), []byte(`{"cursors":{"sub-9":9}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	j3 := openT(t, Config{Dir: dir, EphemeralCursors: true})
	if _, ok := j3.Cursor("sub-9"); ok {
		t.Fatal("ephemeral mode loaded cursors.json")
	}
}

func TestFloorFuncPinsCompaction(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, smallSegs(dir))
	var floor uint64 = 1
	j.SetFloorFunc(func() (uint64, bool) { return floor, true })
	appendN(t, j, 400)
	// No journal cursors exist, but the external floor pins seq 2+.
	if got := len(collect(t, j, 2)); got != 399 {
		t.Fatalf("external floor did not pin history: %d records from seq 2, want 399", got)
	}
	// Raising the floor releases history on the next roll.
	floor = 400
	appendN(t, j, 200)
	if st := j.Stats(); st.CompactedSegments == 0 {
		t.Fatalf("raised floor never compacted: %+v", st)
	}
}
