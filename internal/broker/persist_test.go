package broker

import (
	"bytes"
	"strings"
	"testing"

	"stopss/internal/message"
	"stopss/internal/notify"
	"stopss/internal/sublang"
)

func populatedBroker(t *testing.T, ne *notify.Engine) *Broker {
	t.Helper()
	b := New(jobsEngine(t), ne)
	clients := []Client{
		{Name: "acme"},
		{Name: "globex"},
	}
	if ne != nil {
		clients[0].Route = notify.Route{Transport: "sms", Addr: "+1-416"}
	}
	for _, c := range clients {
		if err := b.Register(c); err != nil {
			t.Fatal(err)
		}
	}
	for i, text := range []string{
		"(university = Toronto) and (professional experience >= 4)",
		"(degree = PhD)",
		"(skill = COBOL)",
	} {
		preds, err := sublang.ParseSubscription(text)
		if err != nil {
			t.Fatal(err)
		}
		owner := clients[i%2].Name
		if _, err := b.Subscribe(owner, preds); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	sms := notify.NewSMSGateway(0, 0)
	ne, err := notify.NewEngine(notify.Config{Workers: 1}, sms)
	if err != nil {
		t.Fatal(err)
	}
	defer ne.Close()

	orig := populatedBroker(t, ne)
	var buf bytes.Buffer
	if err := orig.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	restored := New(jobsEngine(t), ne)
	if err := restored.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}

	// Same clients.
	if got, want := restored.Clients(), orig.Clients(); strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("clients = %v, want %v", got, want)
	}
	// Same subscriptions per client.
	for _, c := range orig.Clients() {
		if got, want := len(restored.SubscriptionsOf(c)), len(orig.SubscriptionsOf(c)); got != want {
			t.Errorf("subscriptions of %s = %d, want %d", c, got, want)
		}
	}
	// Same matching behaviour, including the semantic pipeline.
	ev, _ := sublang.ParseEvent("(school, Toronto)(graduation year, 1995)")
	r1, err := orig.Publish(ev)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := restored.Publish(ev)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(idStrings(r1.Matches), ",") != strings.Join(idStrings(r2.Matches), ",") {
		t.Errorf("restored matches %v, want %v", r2.Matches, r1.Matches)
	}
	// Routes survived: the acme match must be routable.
	if _, ok := ne.RouteOf("acme"); !ok {
		t.Error("route lost through snapshot")
	}
	// New subscriptions continue from the watermark (no ID collision).
	preds, _ := sublang.ParseSubscription("(x = 1)")
	id, err := restored.Subscribe("acme", preds)
	if err != nil {
		t.Fatal(err)
	}
	if id <= 3 {
		t.Errorf("new subscription ID %d collides with restored range", id)
	}
}

func idStrings(ids []message.SubID) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = string(rune('0' + int(id)))
	}
	return out
}

func TestRestoreRequiresEmptyBroker(t *testing.T) {
	orig := populatedBroker(t, nil)
	var buf bytes.Buffer
	if err := orig.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if err := orig.Restore(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("restore into a populated broker must fail")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"",
		"not json\n",
		`{"kind":"client","client":{"name":"x"}}` + "\n", // record before header
		`{"kind":"header","version":99}` + "\n",
		`{"kind":"header","version":1}` + "\n" + `{"kind":"martian"}` + "\n",
		`{"kind":"header","version":1}` + "\n" + `{"kind":"client"}` + "\n",
		`{"kind":"header","version":1}` + "\n" + `{"kind":"subscription"}` + "\n",
	} {
		b := New(jobsEngine(t), nil)
		if err := b.Restore(strings.NewReader(bad)); err == nil {
			t.Errorf("Restore(%q) should fail", bad)
		}
	}
}

func TestRestoreFixesIDWatermark(t *testing.T) {
	// A snapshot whose header under-reports next_id must still avoid
	// collisions thanks to the max-ID guard.
	snap := `{"kind":"header","version":1,"next_id":1}
{"kind":"client","client":{"name":"acme"}}
{"kind":"subscription","sub":{"id":7,"subscriber":"acme","preds":[{"attr":"a","op":"=","val":{"kind":"int","int":1}}]}}
`
	b := New(jobsEngine(t), nil)
	if err := b.Restore(strings.NewReader(snap)); err != nil {
		t.Fatal(err)
	}
	preds, _ := sublang.ParseSubscription("(b = 2)")
	id, err := b.Subscribe("acme", preds)
	if err != nil {
		t.Fatal(err)
	}
	if id <= 7 {
		t.Errorf("new ID %d collides with restored subscription 7", id)
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	b := populatedBroker(t, nil)
	var a, c bytes.Buffer
	if err := b.Snapshot(&a); err != nil {
		t.Fatal(err)
	}
	if err := b.Snapshot(&c); err != nil {
		t.Fatal(err)
	}
	if a.String() != c.String() {
		t.Error("snapshot output not deterministic")
	}
	// Snapshot excludes transient counters.
	if strings.Contains(a.String(), "Published") {
		t.Error("snapshot should not contain transient stats")
	}
}
