package broker

import (
	"encoding/json"
	"fmt"
	"sort"

	"stopss/internal/message"
	"stopss/internal/store"
)

// Detached durable subscriptions (DESIGN.md §11): with a subscription
// store attached, a durable subscription whose subscriber is offline
// can be paged out entirely — removed from the matching engine, the
// broker's maps, and the journal's cursor table — and persisted as one
// record in the paged store. Only the store's buffer-pool budget stays
// resident, so millions of offline durable subscribers cost disk, not
// RAM. ResumeDurable faults the record back in and replays from its
// cursor; at-least-once delivery is preserved because (a) the detach
// cursor is the last *acked* position and (b) the store's minimum
// cursor pins the journal's compaction floor (SetFloorFunc) so the
// records a detached subscriber still owes are retained.
//
// While detached, the subscription does not match locally. Publications
// that arrive meanwhile are journaled (they are appended before
// fan-out regardless of match results) and redelivered by the resume
// replay. Overlay interest propagation is intentionally NOT retracted
// on detach — peers keep forwarding matching publications so they land
// in this broker's journal; see ROADMAP for the crash-restart re-sync
// caveat.

// storedSub is the store's record payload for one detached durable
// subscription.
type storedSub struct {
	Client string               `json:"client"`
	Cursor uint64               `json:"cursor"`
	Sub    message.Subscription `json:"sub"`
}

// AttachStore binds a subscription store to the broker. Call after
// AttachJournal and before Restore/traffic. The store becomes the
// durable authority for detached subscriptions and their cursors; the
// journal's compaction floor is extended to cover them.
func (b *Broker) AttachStore(st *store.Store) error {
	// Recompute the detached floor and the ID watermark from the
	// store's surviving records (recovery may have dropped torn pages).
	var (
		minCursor uint64
		count     int64
		maxID     uint64
	)
	err := st.Scan(func(key uint64, val []byte) error {
		var rec storedSub
		if err := json.Unmarshal(val, &rec); err != nil {
			return fmt.Errorf("broker: store record %d corrupt: %w", key, err)
		}
		if count == 0 || rec.Cursor < minCursor {
			minCursor = rec.Cursor
		}
		count++
		if key > maxID {
			maxID = key
		}
		return nil
	})
	if err != nil {
		return err
	}
	b.mu.Lock()
	b.store = st
	if message.SubID(maxID) >= b.nextID {
		// Detached IDs must never be re-issued to new subscriptions.
		b.nextID = message.SubID(maxID)
	}
	b.detachedFloor.Store(minCursor)
	b.detachedCount.Store(count)
	j := b.journal
	b.mu.Unlock()
	if j != nil {
		j.SetFloorFunc(b.storeFloor)
	}
	return nil
}

// Store exposes the attached subscription store (nil when none).
func (b *Broker) Store() *store.Store {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.store
}

// storeFloor is the journal's external ack-floor source: the minimum
// cursor over detached subscriptions. It runs under the journal lock,
// so it reads atomics only. The value is maintained monotonically
// downward at runtime (detaches lower it; resumes never raise it) and
// recomputed exactly at AttachStore — stale-low is safe, it only
// delays compaction.
func (b *Broker) storeFloor() (uint64, bool) {
	if b.detachedCount.Load() == 0 {
		return 0, false
	}
	return b.detachedFloor.Load(), true
}

// DetachDurable pages a durable subscription out to the store: the
// record (subscription + acked cursor) is persisted, and the resident
// state — engine entry, broker maps, journal cursor — is released.
// The overlay forwarder is NOT notified, so peer brokers keep
// forwarding matching publications into the journal. In-flight
// deliveries settle as no-ops; anything unacked at detach time is
// redelivered by the resume replay.
func (b *Broker) DetachDurable(client string, id message.SubID) error {
	b.mu.Lock()
	st := b.store
	if st == nil {
		b.mu.Unlock()
		return fmt.Errorf("broker: detaching needs an attached store")
	}
	owner, ok := b.subs[id]
	if !ok {
		b.mu.Unlock()
		return fmt.Errorf("broker: %w %d", ErrUnknownSubscription, id)
	}
	if owner != client {
		b.mu.Unlock()
		return fmt.Errorf("broker: subscription %d belongs to %q, not %q: %w", id, owner, client, ErrNotOwner)
	}
	dst, durable := b.durable[id]
	if !durable {
		b.mu.Unlock()
		return fmt.Errorf("broker: subscription %d: %w", id, ErrNotDurable)
	}
	cursor := dst.cursor
	b.mu.Unlock()

	sub, ok := b.engine.Subscription(id)
	if !ok {
		return fmt.Errorf("broker: subscription %d vanished from the engine", id)
	}
	data, err := json.Marshal(storedSub{Client: client, Cursor: cursor, Sub: sub})
	if err != nil {
		return fmt.Errorf("broker: encoding subscription %d: %w", id, err)
	}
	// Persist first, then lower the compaction floor, then release the
	// resident state — at every crash point the subscription is covered
	// by at least one authority.
	if err := st.Put(uint64(id), data); err != nil {
		return fmt.Errorf("broker: storing subscription %d: %w", id, err)
	}
	b.mu.Lock()
	if b.detachedCount.Load() == 0 || cursor < b.detachedFloor.Load() {
		b.detachedFloor.Store(cursor)
	}
	b.detachedCount.Add(1)
	delete(b.subs, id)
	delete(b.durable, id)
	b.detaches++
	j := b.journal
	b.mu.Unlock()
	if j != nil {
		j.DeleteCursor(cursorKey(id))
	}
	b.engine.Unsubscribe(id)
	b.dropSubCounters(id)
	return nil
}

// faultIn loads a detached subscription back into residency: engine,
// maps, journal cursor. Caller replays afterwards.
func (b *Broker) faultIn(client string, id message.SubID) error {
	b.mu.Lock()
	st := b.store
	j := b.journal
	b.mu.Unlock()
	if st == nil {
		return fmt.Errorf("broker: %w %d", ErrUnknownSubscription, id)
	}
	data, ok, err := st.Get(uint64(id))
	if err != nil {
		return fmt.Errorf("broker: loading subscription %d: %w", id, err)
	}
	if !ok {
		return fmt.Errorf("broker: %w %d", ErrUnknownSubscription, id)
	}
	var rec storedSub
	if err := json.Unmarshal(data, &rec); err != nil {
		return fmt.Errorf("broker: stored subscription %d corrupt: %w", id, err)
	}
	if rec.Client != client {
		return fmt.Errorf("broker: subscription %d belongs to %q, not %q: %w", id, rec.Client, client, ErrNotOwner)
	}
	// Merge with any journal cursor that survived (non-ephemeral mode).
	if j != nil {
		if jc, ok := j.Cursor(cursorKey(id)); ok && jc > rec.Cursor {
			rec.Cursor = jc
		}
	}
	if err := b.engine.Subscribe(rec.Sub); err != nil {
		return fmt.Errorf("broker: re-indexing subscription %d: %w", id, err)
	}
	b.mu.Lock()
	b.subs[id] = client
	b.durable[id] = &durableState{cursor: rec.Cursor, maxSeen: rec.Cursor, pending: make(map[uint64]bool)}
	b.faultedIn++
	b.mu.Unlock()
	// Seed the journal cursor BEFORE dropping the store record: the
	// floor never gaps. The detached floor itself is not raised —
	// stale-low only delays compaction.
	if j != nil {
		j.SetCursor(cursorKey(id), rec.Cursor)
	}
	if err := st.Delete(uint64(id)); err != nil {
		return fmt.Errorf("broker: releasing stored subscription %d: %w", id, err)
	}
	b.detachedCount.Add(-1)
	return nil
}

// dropDetached removes a detached subscription's store record during
// an unsubscribe-while-detached. Returns the stored subscription for
// forwarder retraction, or ok=false when the store has no record.
func (b *Broker) dropDetached(client string, id message.SubID) (message.Subscription, bool, error) {
	b.mu.Lock()
	st := b.store
	j := b.journal
	b.mu.Unlock()
	if st == nil {
		return message.Subscription{}, false, nil
	}
	data, ok, err := st.Get(uint64(id))
	if err != nil || !ok {
		return message.Subscription{}, false, err
	}
	var rec storedSub
	if err := json.Unmarshal(data, &rec); err != nil {
		return message.Subscription{}, false, fmt.Errorf("broker: stored subscription %d corrupt: %w", id, err)
	}
	if rec.Client != client {
		return message.Subscription{}, false, fmt.Errorf("broker: subscription %d belongs to %q, not %q: %w", id, rec.Client, client, ErrNotOwner)
	}
	if err := st.Delete(uint64(id)); err != nil {
		return message.Subscription{}, false, err
	}
	b.detachedCount.Add(-1)
	if j != nil {
		j.DeleteCursor(cursorKey(id))
	}
	return rec.Sub, true, nil
}

// DetachedSubscriptions returns every subscription currently paged out
// to the store, in its original form, ascending by ID. The overlay's
// link re-sync uses it to re-advertise detached interests after a
// broker restart: a detached subscriber's interest must keep routing
// remote publications into this broker's journal even though no
// resident subscription carries it (the DESIGN §11 crash-restart
// caveat). Corrupt records are skipped — re-advertisement is
// best-effort diagnostics-free routing state, and recovery already
// counted any torn pages.
func (b *Broker) DetachedSubscriptions() []message.Subscription {
	b.mu.Lock()
	st := b.store
	b.mu.Unlock()
	if st == nil {
		return nil
	}
	var out []message.Subscription
	_ = st.Scan(func(key uint64, val []byte) error {
		var rec storedSub
		if err := json.Unmarshal(val, &rec); err != nil {
			return nil
		}
		out = append(out, rec.Sub)
		return nil
	})
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// CheckpointStore flushes the subscription store to stable storage
// (no-op without a store). Detach durability is checkpoint-granular:
// records written since the last checkpoint can be lost by a crash, in
// which case the subscription falls back to its snapshot/journal
// authorities.
func (b *Broker) CheckpointStore() error {
	b.mu.Lock()
	st := b.store
	b.mu.Unlock()
	if st == nil {
		return nil
	}
	return st.Checkpoint()
}
