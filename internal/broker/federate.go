package broker

import (
	"sort"

	"stopss/internal/core"
	"stopss/internal/knowledge"
	"stopss/internal/matching"
	"stopss/internal/message"
)

// Federation hooks: a broker participating in a multi-broker overlay
// (internal/overlay) needs three things from the dispatcher — to hear
// about local subscription/advertisement changes and accepted
// publications (so they can be routed to peers), to accept publications
// arriving from peers without bouncing them back out (DeliverRemote in
// broker.go), and to fold the overlay's routing counters into Stats.

// Forwarder observes local broker activity for inter-broker routing.
// Callbacks are invoked synchronously after the local operation has
// succeeded, never while the broker's own lock is held. Implementations
// may call back into the broker.
type Forwarder interface {
	// SubscriptionChanged reports a local subscription being added
	// (added=true) or removed. The subscription is the original,
	// pre-canonicalization form.
	SubscriptionChanged(sub message.Subscription, added bool)
	// PublicationAccepted reports a locally published event after local
	// matching and notification dispatch, together with the publication
	// ID the broker's tracer minted (`broker#epoch/seq`) — the overlay
	// uses it both as the federation-wide dedup key and as the trace
	// identity carried on pub frames. Publications injected by
	// DeliverRemote are not reported.
	PublicationAccepted(ev message.Event, pubID string)
	// AdvertisementChanged reports a local advertisement being recorded
	// (added=true) or withdrawn.
	AdvertisementChanged(adv matching.Advertisement, added bool)
	// KnowledgeChanged reports a locally injected knowledge delta that
	// was newly applied to the broker's knowledge base (duplicates are
	// not reported; deterministically rejected deltas ARE — peers need
	// them for version digests to converge). The report carries the
	// engine-level outcome (Changed, Version) so the overlay can skip
	// routing re-canonicalization for no-op deltas. Deltas arriving
	// from peers via DeliverRemoteKnowledge are not reported: the
	// overlay owns inter-broker propagation.
	KnowledgeChanged(d knowledge.Delta, rep core.KnowledgeReport)
}

// SetForwarder installs (or clears, with nil) the overlay hook.
func (b *Broker) SetForwarder(f Forwarder) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.forwarder = f
}

// RemoteStats summarizes the overlay routing activity of one broker.
// The overlay node fills it via SetRemoteStatsSource; a standalone
// broker reports zeros.
type RemoteStats struct {
	Peers         int      // connected peer links
	SubsForwarded uint64   // subscriptions sent to peers
	SubsPruned    uint64   // subscriptions suppressed by a covering sub
	SubsReissued  uint64   // suppressed subs re-advertised after un-covering
	PubsForwarded uint64   // publications sent along matching links
	PubsReceived  uint64   // publications accepted from peers
	PubsDeduped   uint64   // duplicate publications dropped
	AdvertsSeen   uint64   // remote advertisements currently held
	RemoteSubs    int      // remote subscriptions currently routed
	KBForwarded   uint64   // knowledge deltas sent to peers
	KBReceived    uint64   // knowledge deltas accepted from peers
	KBDeduped     uint64   // duplicate knowledge deltas dropped
	ShardMatches  []uint64 // per-shard match counts (sharded engine only)
}

// SetRemoteStatsSource installs the overlay's stats callback; Stats()
// invokes it to populate Stats.Remote.
func (b *Broker) SetRemoteStatsSource(fn func() RemoteStats) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.remoteStats = fn
}

// Subscriptions returns every live local subscription in its original
// form, ascending by ID. The overlay uses it to synchronize state onto
// a freshly connected peer link.
func (b *Broker) Subscriptions() []message.Subscription {
	b.mu.Lock()
	ids := make([]message.SubID, 0, len(b.subs))
	for id := range b.subs {
		ids = append(ids, id)
	}
	b.mu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]message.Subscription, 0, len(ids))
	for _, id := range ids {
		if s, ok := b.engine.Subscription(id); ok {
			out = append(out, s)
		}
	}
	return out
}

// Advertisements returns every live local advertisement, sorted by
// publisher; the overlay floods them to new peer links.
func (b *Broker) Advertisements() []matching.Advertisement {
	b.mu.Lock()
	out := make([]matching.Advertisement, 0, len(b.adverts))
	for _, a := range b.adverts {
		out = append(out, a)
	}
	b.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Publisher < out[j].Publisher })
	return out
}
