package broker

import (
	"bytes"
	"reflect"
	"testing"

	"stopss/internal/core"
	"stopss/internal/knowledge"
	"stopss/internal/message"
	"stopss/internal/ontology"
	"stopss/internal/semantic"
	"stopss/internal/sublang"
)

// kbBroker builds a broker over the jobs ontology with a bound
// knowledge base, so snapshots carry a KB log.
func kbBroker(t testing.TB) *Broker {
	t.Helper()
	ont, err := ontology.Load(jobsODL, ontology.Options{})
	if err != nil {
		t.Fatal(err)
	}
	base := knowledge.NewBase(ont.Synonyms, ont.Hierarchy, ont.Mappings)
	return New(core.NewEngine(base.Stage(semantic.FullConfig()), core.WithKnowledge(base)), nil)
}

// TestSnapshotRestoreAdvertsRoutesAndKB round-trips the full durable
// state: clients with routes, advertisements, the applied knowledge
// log, and subscriptions. The restored broker must hold the same KB
// version (so a rejoining broker resumes at the right version instead
// of re-receiving the federation's history) and match identically.
func TestSnapshotRestoreAdvertsRoutesAndKB(t *testing.T) {
	b := kbBroker(t)
	if err := b.Register(Client{Name: "acme"}); err != nil {
		t.Fatal(err)
	}
	preds, err := sublang.ParseSubscription("(position = dev)")
	if err != nil {
		t.Fatal(err)
	}
	subID, err := b.Subscribe("acme", preds)
	if err != nil {
		t.Fatal(err)
	}
	advPreds := []message.Predicate{message.Exists("position")}
	if err := b.Advertise("acme", advPreds); err != nil {
		t.Fatal(err)
	}

	// Two applied deltas (one affecting the stored subscription) and
	// one deterministically rejected delta — the rejection must
	// round-trip too, or version digests diverge on rejoin.
	for _, d := range []knowledge.Delta{
		{Op: knowledge.OpAddSynonym, Root: "position", Terms: []string{"job"}},
		{Op: knowledge.OpAddIsA, Child: "sedan", Parent: "car"},
		{Op: knowledge.OpAddIsA, Child: "car", Parent: "sedan"}, // cycle: rejected
	} {
		if _, err := b.InjectKnowledge(d); err != nil {
			t.Fatal(err)
		}
	}
	wantVersion := b.KnowledgeVersion()
	if wantVersion.Deltas != 3 || wantVersion.Rejected != 1 {
		t.Fatalf("pre-snapshot version: %+v", wantVersion)
	}

	var buf bytes.Buffer
	if err := b.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	r2 := kbBroker(t)
	if err := r2.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}

	gotVersion := r2.KnowledgeVersion()
	if gotVersion.Digest != wantVersion.Digest || gotVersion.Deltas != wantVersion.Deltas ||
		gotVersion.Rejected != wantVersion.Rejected {
		t.Fatalf("restored KB version %+v, want %+v", gotVersion, wantVersion)
	}

	// Advertisement restored: a non-conforming publication is rejected.
	if _, err := r2.PublishFrom("acme", message.E("salary", 10)); err == nil {
		t.Fatal("restored advertisement not enforced")
	}
	adv, ok := r2.AdvertisementOf("acme")
	if !ok || !reflect.DeepEqual(adv.Preds, advPreds) {
		t.Fatalf("restored advertisement: %+v, %v", adv, ok)
	}

	// The subscription matches through the restored synonym delta, and
	// through the restored hierarchy edge + genesis knowledge combined.
	res, err := r2.Publish(message.E("job", "dev"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 || res.Matches[0] != subID {
		t.Fatalf("restored synonym match: %v", res.Matches)
	}

	// Replaying the same snapshot's deltas again (as a peer sync would)
	// is a no-op: duplicates.
	rep, err := r2.InjectKnowledge(b.KnowledgeLog()[0])
	if err != nil || !rep.Duplicate {
		t.Fatalf("replayed delta: %+v, %v", rep, err)
	}
}

// TestRestoreRejectsNonEmptyKB: the empty-broker guard must cover the
// knowledge log too — folding a snapshot's deltas over an
// already-evolved base would silently merge the two KB histories into
// a digest matching neither.
func TestRestoreRejectsNonEmptyKB(t *testing.T) {
	b := kbBroker(t)
	if _, err := b.InjectKnowledge(knowledge.Delta{Op: knowledge.OpAddConcept, Term: "x"}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := b.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	target := kbBroker(t) // no clients/subs/adverts, but one applied delta
	if _, err := target.InjectKnowledge(knowledge.Delta{Op: knowledge.OpAddConcept, Term: "y"}); err != nil {
		t.Fatal(err)
	}
	if err := target.Restore(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("restore into a broker with applied knowledge deltas succeeded")
	}
}

// TestRestoreRejectsKBIntoUnboundEngine: snapshots carrying kbdelta
// records must not silently drop them when the target engine has no
// knowledge base.
func TestRestoreRejectsKBIntoUnboundEngine(t *testing.T) {
	b := kbBroker(t)
	if _, err := b.InjectKnowledge(knowledge.Delta{Op: knowledge.OpAddConcept, Term: "x"}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := b.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	plain := New(jobsEngine(t), nil)
	if err := plain.Restore(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("restore with kbdelta records into an unbound engine succeeded")
	}
}
