package broker

import "errors"

// Sentinel errors the HTTP front end (internal/webapp) maps to status
// codes. Broker methods wrap them with %w and site context (which
// client, which subscription), so callers classify with errors.Is and
// humans still get the full story.
var (
	// ErrUnknownClient: the named client was never registered here.
	ErrUnknownClient = errors.New("unknown client")
	// ErrUnknownSubscription: no resident or stored subscription has
	// the given ID.
	ErrUnknownSubscription = errors.New("unknown subscription")
	// ErrNotOwner: the subscription exists but belongs to a different
	// client than the caller.
	ErrNotOwner = errors.New("not the owning client")
	// ErrNotDurable: the operation needs a durable subscription (one
	// created with SubscribeDurable) and this one is not.
	ErrNotDurable = errors.New("subscription is not durable")
	// ErrNoJournal: the operation needs the publication journal and the
	// broker was started without one (-journal-dir).
	ErrNoJournal = errors.New("no journal attached")
)
