package broker

import (
	"encoding/json"
	"fmt"
	"strconv"
	"time"

	"stopss/internal/core"
	"stopss/internal/journal"
	"stopss/internal/message"
	"stopss/internal/notify"
	"stopss/internal/trace"
)

// Durable subscriptions (DESIGN.md §9): when a journal is attached,
// every accepted publication — local or federation-routed — is
// appended to it before notification fan-out, and subscriptions
// created with SubscribeDurable get a per-subscription cursor that
// advances only on acknowledged delivery. A delivery that fails, or a
// broker that crashes, leaves the cursor behind; catch-up replay
// (CatchUp after restart, ResumeDurable on subscriber reconnect) then
// re-delivers everything past the cursor — at-least-once semantics
// (duplicates possible, gaps impossible up to the journal's retention
// contract).

// durableState tracks one durable subscription's delivery window.
//
// Invariant: the cursor never advances past a journal seq this
// subscription still owes a delivery for. Two mechanisms uphold it:
// pending registration is atomic with journal sequence assignment
// (journal.AppendFunc runs the registration under the journal lock, so
// an ack of seq N can never race ahead of the bookkeeping for N-1),
// and replays freeze the cursor (barriers) while they scan, because
// replayed records are by definition not yet in pending.
type durableState struct {
	// cursor: every journal seq <= cursor is fully handled; replay
	// starts at cursor+1.
	cursor uint64
	// pending maps dispatched-but-unacked journal seqs to whether the
	// delivery is parked (retry-exhausted or undispatchable — only
	// replay will retry it). A pending seq pins the cursor below it.
	pending map[uint64]bool
	// maxSeen is the highest journal seq ever dispatched to this
	// subscription; the cursor jumps to it when pending drains.
	maxSeen uint64
	// barriers counts replays in progress over this subscription; the
	// cursor is frozen while any are active.
	barriers int
}

// advance returns the cursor position the delivery window currently
// supports: just below the oldest pending seq, or the newest
// dispatched seq when nothing is pending. Frozen during replays.
func (st *durableState) advance() (uint64, bool) {
	if st.barriers > 0 {
		return 0, false
	}
	newCursor := st.maxSeen
	for p := range st.pending {
		if p-1 < newCursor {
			newCursor = p - 1
		}
	}
	if newCursor <= st.cursor {
		return 0, false
	}
	st.cursor = newCursor
	return newCursor, true
}

func cursorKey(id message.SubID) string {
	return "sub-" + strconv.FormatUint(uint64(id), 10)
}

// AttachJournal binds a publication journal to the broker. The
// delivery-acknowledgement hook that drives durable ack/park is
// installed by New (deliveryOutcome in broker.go — it also closes
// trace span chains, so it is live with or without a journal). Must be
// called before publishing; typically right after New and before
// Restore (so restored durable cursors merge with the journal's own).
func (b *Broker) AttachJournal(j *journal.Journal) {
	b.mu.Lock()
	b.journal = j
	b.mu.Unlock()
}

// Journal exposes the attached journal (nil when none).
func (b *Broker) Journal() *journal.Journal {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.journal
}

// SubscribeDurable stores a subscription with at-least-once delivery:
// its cursor starts at the journal head (no history replay for a new
// subscription) and advances only on acknowledged delivery.
func (b *Broker) SubscribeDurable(client string, preds []message.Predicate) (message.SubID, error) {
	b.mu.Lock()
	j := b.journal
	b.mu.Unlock()
	if j == nil {
		return 0, fmt.Errorf("broker: durable subscriptions need an attached journal (-journal-dir): %w", ErrNoJournal)
	}
	id, err := b.Subscribe(client, preds)
	if err != nil {
		return 0, err
	}
	cursor := j.NextSeq() - 1
	b.mu.Lock()
	b.durable[id] = &durableState{cursor: cursor, maxSeen: cursor, pending: make(map[uint64]bool)}
	b.mu.Unlock()
	j.SetCursor(cursorKey(id), cursor)
	return id, nil
}

// restoreDurable re-creates a durable subscription's state during
// Restore, merging the snapshot's cursor with the journal's persisted
// one and any store record for the same ID (three-way max — each
// authority only ever lags the acked truth, so the max is still
// conservative). A store record here means the subscription was
// detached after the snapshot was taken; the snapshot re-creates it
// resident, so the store copy is absorbed and dropped.
func (b *Broker) restoreDurable(id message.SubID, cursor uint64) {
	b.mu.Lock()
	j := b.journal
	st := b.store
	b.mu.Unlock()
	if j != nil {
		if jc, ok := j.Cursor(cursorKey(id)); ok && jc > cursor {
			cursor = jc
		}
	}
	if st != nil {
		if data, ok, err := st.Get(uint64(id)); err == nil && ok {
			var rec storedSub
			if json.Unmarshal(data, &rec) == nil && rec.Cursor > cursor {
				cursor = rec.Cursor
			}
			if st.Delete(uint64(id)) == nil {
				b.detachedCount.Add(-1)
			}
		}
	}
	b.mu.Lock()
	b.durable[id] = &durableState{cursor: cursor, maxSeen: cursor, pending: make(map[uint64]bool)}
	b.mu.Unlock()
	if j != nil {
		j.SetCursor(cursorKey(id), cursor)
	}
}

// Durable reports whether a subscription is durable.
func (b *Broker) Durable(id message.SubID) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, ok := b.durable[id]
	return ok
}

// DurableCursor returns a durable subscription's acked cursor.
func (b *Broker) DurableCursor(id message.SubID) (uint64, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	st, ok := b.durable[id]
	if !ok {
		return 0, false
	}
	return st.cursor, true
}

// durableMatches filters a match set down to the durable IDs. Called
// on the publish path before the journal append.
func (b *Broker) durableMatches(matches []message.SubID) []message.SubID {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.durable) == 0 {
		return nil
	}
	var out []message.SubID
	for _, id := range matches {
		if _, ok := b.durable[id]; ok {
			out = append(out, id)
		}
	}
	return out
}

// registerPending records seq as dispatched-but-unacked for the given
// durable subscriptions. Runs under the journal lock via AppendFunc on
// the publish path (atomic with seq assignment) and under b.mu alone
// during replay (where barriers protect ordering instead).
func (b *Broker) registerPending(ids []message.SubID, seq uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, id := range ids {
		st, ok := b.durable[id]
		if !ok {
			continue
		}
		if _, have := st.pending[seq]; !have {
			st.pending[seq] = false
		}
		if seq > st.maxSeen {
			st.maxSeen = seq
		}
	}
}

// ackDurable acknowledges one delivered journal seq and advances the
// cursor as far as the delivery window allows. Runs on notifier worker
// goroutines.
func (b *Broker) ackDurable(id message.SubID, seq uint64) {
	b.mu.Lock()
	st, ok := b.durable[id]
	if !ok {
		b.mu.Unlock()
		return
	}
	delete(st.pending, seq)
	b.acked++
	newCursor, advanced := st.advance()
	j := b.journal
	b.mu.Unlock()
	if advanced && j != nil {
		j.SetCursor(cursorKey(id), newCursor)
	}
}

// parkDurable marks a delivery attempt as parked: the seq stays
// pending (pinning the cursor) but only a replay will retry it. It
// reports whether the subscription is (still) durable — when true the
// notifier skips its dead-letter list, because the journal retains the
// publication.
func (b *Broker) parkDurable(id message.SubID, seq uint64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	st, ok := b.durable[id]
	if !ok {
		return false
	}
	if wasParked, have := st.pending[seq]; !have || !wasParked {
		st.pending[seq] = true
		b.parked++
		b.subCountersFor(id).parked.Add(1)
	}
	if seq > st.maxSeen {
		st.maxSeen = seq
	}
	return true
}

// dropDurable forgets a durable subscription's state on unsubscribe.
func (b *Broker) dropDurable(id message.SubID) {
	b.mu.Lock()
	_, was := b.durable[id]
	delete(b.durable, id)
	j := b.journal
	b.mu.Unlock()
	if was && j != nil {
		j.DeleteCursor(cursorKey(id))
	}
}

// ResumeDurable re-attaches a durable subscriber after a reconnect:
// everything past the subscription's cursor that matches it is
// re-dispatched. Returns the number of notifications re-dispatched.
// When the subscription was paged out to the store (DetachDurable), it
// is faulted back into residency first.
func (b *Broker) ResumeDurable(client string, id message.SubID) (int, error) {
	b.mu.Lock()
	owner, ok := b.subs[id]
	if !ok {
		b.mu.Unlock()
		if err := b.faultIn(client, id); err != nil {
			return 0, err
		}
		return b.replay([]message.SubID{id})
	}
	if owner != client {
		b.mu.Unlock()
		return 0, fmt.Errorf("broker: subscription %d belongs to %q, not %q: %w", id, owner, client, ErrNotOwner)
	}
	if _, durable := b.durable[id]; !durable {
		b.mu.Unlock()
		return 0, fmt.Errorf("broker: subscription %d: %w", id, ErrNotDurable)
	}
	b.mu.Unlock()
	return b.replay([]message.SubID{id})
}

// CatchUp replays every durable subscription from its cursor — the
// restart path: call it after Restore (with the journal attached) to
// re-dispatch everything the previous incarnation never acknowledged.
func (b *Broker) CatchUp() (int, error) {
	b.mu.Lock()
	ids := make([]message.SubID, 0, len(b.durable))
	for id := range b.durable {
		ids = append(ids, id)
	}
	b.mu.Unlock()
	if len(ids) == 0 {
		return 0, nil
	}
	return b.replay(ids)
}

// replay scans the journal once and re-dispatches, for each target
// subscription, every record past its cursor that matches it —
// skipping seqs with a live in-flight delivery (they will ack or park
// on their own) but re-dispatching parked ones. Target cursors are
// frozen for the duration: a record the scan has not reached yet is
// not in pending, so without the freeze a concurrent ack could walk
// the cursor over it.
func (b *Broker) replay(ids []message.SubID) (int, error) {
	b.mu.Lock()
	j := b.journal
	if j == nil {
		b.mu.Unlock()
		return 0, fmt.Errorf("broker: %w", ErrNoJournal)
	}
	if b.notifier == nil {
		b.mu.Unlock()
		return 0, fmt.Errorf("broker: replay needs a notifier")
	}
	type target struct {
		id     message.SubID
		client string
		from   uint64
		sub    message.Subscription // canonicalized form, matched per record
	}
	targets := make([]target, 0, len(ids))
	minFrom := uint64(0)
	for _, id := range ids {
		st, ok := b.durable[id]
		if !ok {
			continue
		}
		st.barriers++
		t := target{id: id, client: b.subs[id], from: st.cursor + 1}
		targets = append(targets, t)
		if minFrom == 0 || t.from < minFrom {
			minFrom = t.from
		}
	}
	b.mu.Unlock()
	if len(targets) == 0 {
		return 0, nil
	}
	defer func() {
		// Lift the barriers and let the cursors catch up with whatever
		// acked while they were frozen.
		b.mu.Lock()
		type adv struct {
			id  message.SubID
			cur uint64
		}
		var advs []adv
		for _, t := range targets {
			st, ok := b.durable[t.id]
			if !ok {
				continue
			}
			st.barriers--
			if st.barriers == 0 {
				if cur, ok := st.advance(); ok {
					advs = append(advs, adv{t.id, cur})
				}
			}
		}
		b.mu.Unlock()
		for _, a := range advs {
			j.SetCursor(cursorKey(a.id), a.cur)
		}
	}()

	// Canonicalize each target's subscription ONCE (in semantic mode
	// the stage rewrites its terms), and expand each record's event
	// ONCE — matching is then the reference Subscription.Matches per
	// derived event, exactly Publish's same-event conjunction
	// semantics, instead of a full per-(record×target) Explain whose
	// repeated event expansion would make catch-up O(records × subs)
	// in stage work.
	mode := b.engine.Mode()
	stage := b.engine.Stage()
	semanticMode := mode == core.Semantic && stage != nil
	live := targets[:0]
	for _, t := range targets {
		sub, ok := b.engine.Subscription(t.id)
		if !ok {
			continue // raced with unsubscribe; barrier lifts in the defer
		}
		t.sub = sub.Clone()
		if semanticMode {
			t.sub, _ = stage.ProcessSubscription(t.sub)
		}
		live = append(live, t)
	}
	targets = live

	redispatched := 0
	err := j.Scan(minFrom, func(rec journal.Record) error {
		events := []message.Event{rec.Event}
		if semanticMode {
			events = stage.ProcessEvent(rec.Event).Events
		}
		for _, t := range targets {
			if rec.Seq < t.from {
				continue
			}
			matched := false
			for _, dev := range events {
				if t.sub.Matches(dev) {
					matched = true
					break
				}
			}
			if !matched {
				continue
			}
			// Claim the seq atomically with the skip checks so a
			// concurrent ack cannot slip between decision and
			// registration.
			b.mu.Lock()
			st, stillDurable := b.durable[t.id]
			claim := stillDurable && rec.Seq > st.cursor
			if claim {
				if parked, inflight := st.pending[rec.Seq]; inflight && !parked {
					claim = false // live delivery in flight; it will settle itself
				}
			}
			if claim {
				st.pending[rec.Seq] = false
				if rec.Seq > st.maxSeen {
					st.maxSeen = rec.Seq
				}
			}
			b.mu.Unlock()
			if !claim {
				continue
			}
			n := notify.Notification{
				SubID:      t.id,
				Subscriber: t.client,
				Event:      rec.Event,
				Mode:       mode.String(),
				JournalSeq: rec.Seq,
				PubID:      rec.PubID,
			}
			b.tracer.Load().Observe(rec.PubID, trace.KindReplay, time.Now(), 0)
			if _, routed := b.notifier.RouteOf(t.client); !routed {
				b.parkDurable(t.id, rec.Seq)
				continue
			}
			if err := b.notifier.Dispatch(n); err != nil {
				b.parkDurable(t.id, rec.Seq)
				continue
			}
			redispatched++
		}
		return nil
	})
	b.mu.Lock()
	b.replayed += uint64(redispatched)
	b.mu.Unlock()
	return redispatched, err
}
