package broker

import (
	"reflect"
	"strings"
	"testing"

	"stopss/internal/message"
	"stopss/internal/sublang"
)

func TestAdvertiseLifecycle(t *testing.T) {
	b := New(jobsEngine(t), nil)
	if err := b.Register(Client{Name: "jobsite"}); err != nil {
		t.Fatal(err)
	}
	preds, err := sublang.ParseSubscription("(school exists) and (graduation year between 1950 and 2003)")
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Advertise("jobsite", preds); err != nil {
		t.Fatal(err)
	}
	if err := b.Advertise("ghost", preds); err == nil {
		t.Error("unknown client must be rejected")
	}
	if err := b.Advertise("jobsite", nil); err == nil {
		t.Error("empty advertisement must be rejected")
	}
	if a, ok := b.AdvertisementOf("jobsite"); !ok || len(a.Preds) != 2 {
		t.Errorf("AdvertisementOf = %v, %v", a, ok)
	}
	b.Unadvertise("jobsite")
	if _, ok := b.AdvertisementOf("jobsite"); ok {
		t.Error("advertisement survived Unadvertise")
	}
}

func TestPublishFromEnforcesAdvertisement(t *testing.T) {
	b := New(jobsEngine(t), nil)
	if err := b.Register(Client{Name: "jobsite"}); err != nil {
		t.Fatal(err)
	}
	adv, _ := sublang.ParseSubscription("(school exists) and (graduation year between 1950 and 2003)")
	if err := b.Advertise("jobsite", adv); err != nil {
		t.Fatal(err)
	}

	ok, _ := sublang.ParseEvent("(school, Toronto)(graduation year, 1990)")
	if _, err := b.PublishFrom("jobsite", ok); err != nil {
		t.Fatalf("conforming publication rejected: %v", err)
	}
	// Unadvertised attribute.
	bad1, _ := sublang.ParseEvent("(school, Toronto)(graduation year, 1990)(salary, 90)")
	if _, err := b.PublishFrom("jobsite", bad1); err == nil {
		t.Error("unadvertised attribute must be rejected")
	}
	// Constraint violation.
	bad2, _ := sublang.ParseEvent("(school, Toronto)(graduation year, 2050)")
	if _, err := b.PublishFrom("jobsite", bad2); err == nil {
		t.Error("constraint-violating publication must be rejected")
	}
	if st := b.Stats(); st.RejectedNonConforming != 2 {
		t.Errorf("RejectedNonConforming = %d, want 2", st.RejectedNonConforming)
	}
	// Unadvertised publishers are unconstrained.
	if err := b.Register(Client{Name: "free"}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.PublishFrom("free", bad1); err != nil {
		t.Errorf("unadvertised publisher constrained: %v", err)
	}
}

func TestOverlappingSubscriptions(t *testing.T) {
	b := New(jobsEngine(t), nil)
	for _, c := range []string{"jobsite", "acme", "globex"} {
		if err := b.Register(Client{Name: c}); err != nil {
			t.Fatal(err)
		}
	}
	mustSub := func(client, text string) message.SubID {
		t.Helper()
		preds, err := sublang.ParseSubscription(text)
		if err != nil {
			t.Fatal(err)
		}
		id, err := b.Subscribe(client, preds)
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	// The advertisement uses publisher-side vocabulary ("school"); the
	// first subscription uses subscriber-side vocabulary ("university").
	// Semantic canonicalization must let them overlap anyway.
	idUni := mustSub("acme", "(university = Toronto)")
	idVol := mustSub("globex", "(stock volume > 100)")
	idNE := mustSub("acme", `(salary not-exists) and (school = Waterloo)`)

	adv, _ := sublang.ParseSubscription("(school exists)")
	if err := b.Advertise("jobsite", adv); err != nil {
		t.Fatal(err)
	}
	got, err := b.OverlappingSubscriptions("jobsite")
	if err != nil {
		t.Fatal(err)
	}
	want := []message.SubID{idUni, idNE}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("OverlappingSubscriptions = %v, want %v (vol sub %d must be pruned)", got, want, idVol)
	}

	// Without an advertisement everything is reachable.
	all, err := b.OverlappingSubscriptions("acme")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Errorf("unadvertised publisher should reach all 3, got %v", all)
	}
}

func TestAdvertisementSemanticCanonicalization(t *testing.T) {
	// Advertisement says "work experience"; subscription says
	// "professional experience" — synonyms in the jobs ontology. The
	// overlap must be detected through canonicalization.
	b := New(jobsEngine(t), nil)
	if err := b.Register(Client{Name: "p"}); err != nil {
		t.Fatal(err)
	}
	if err := b.Register(Client{Name: "s"}); err != nil {
		t.Fatal(err)
	}
	preds, _ := sublang.ParseSubscription(`("professional experience" >= 4)`)
	id, err := b.Subscribe("s", preds)
	if err != nil {
		t.Fatal(err)
	}
	adv, _ := sublang.ParseSubscription(`("work experience" between 0 and 40)`)
	if err := b.Advertise("p", adv); err != nil {
		t.Fatal(err)
	}
	got, err := b.OverlappingSubscriptions("p")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != id {
		t.Errorf("synonym-level overlap missed: %v", got)
	}
}

func TestAdvertisementErrorMessages(t *testing.T) {
	b := New(jobsEngine(t), nil)
	if err := b.Register(Client{Name: "p"}); err != nil {
		t.Fatal(err)
	}
	adv, _ := sublang.ParseSubscription("(x = 1)")
	if err := b.Advertise("p", adv); err != nil {
		t.Fatal(err)
	}
	ev, _ := sublang.ParseEvent("(y, 2)")
	_, err := b.PublishFrom("p", ev)
	if err == nil || !strings.Contains(err.Error(), "advertised space") {
		t.Errorf("error = %v", err)
	}
}
