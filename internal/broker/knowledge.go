package broker

import (
	"stopss/internal/core"
	"stopss/internal/knowledge"
)

// Knowledge-base integration: the broker is where ontology updates
// enter the system (admin endpoint, -kb-watch file, ontc delta logs)
// and where deltas arriving from peer brokers are applied. Mirroring
// the publication paths, InjectKnowledge is the local entry point that
// offers newly applied deltas to the overlay forwarder, while
// DeliverRemoteKnowledge applies without re-offering — the overlay owns
// inter-broker propagation and its loop prevention.

// SetKnowledgeOrigin installs the identity used to stamp locally
// injected deltas that arrive unstamped. Overlay deployments set it to
// the node name; standalone brokers default to "local".
func (b *Broker) SetKnowledgeOrigin(o *knowledge.Origin) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.kbOrigin = o
}

// knowledgeOrigin returns the stamping identity, creating the
// standalone default on first use.
func (b *Broker) knowledgeOrigin() *knowledge.Origin {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.kbOrigin == nil {
		b.kbOrigin = knowledge.NewOrigin("local")
	}
	return b.kbOrigin
}

// InjectKnowledge applies a locally injected delta: unstamped deltas
// are stamped with the broker's origin, the engine folds the delta in
// (swapping the semantic stage and re-indexing affected subscriptions),
// and a newly applied delta is offered to the overlay forwarder for
// replication.
func (b *Broker) InjectKnowledge(d knowledge.Delta) (core.KnowledgeReport, error) {
	if !d.Stamped() {
		d = b.knowledgeOrigin().Stamp(d)
	}
	rep, err := b.engine.ApplyKnowledge(d)
	if err != nil {
		return rep, err
	}
	b.mu.Lock()
	if rep.Applied {
		b.kbLocal++
	}
	f := b.forwarder
	b.mu.Unlock()
	if f != nil && rep.Applied {
		f.KnowledgeChanged(d, rep)
	}
	return rep, nil
}

// DeliverRemoteKnowledge applies a delta forwarded by a peer broker. It
// is NOT offered to the forwarder again; the overlay decides whether to
// propagate further based on the report (only newly applied deltas
// travel on).
func (b *Broker) DeliverRemoteKnowledge(d knowledge.Delta) (core.KnowledgeReport, error) {
	rep, err := b.engine.ApplyKnowledge(d)
	if err != nil {
		return rep, err
	}
	if rep.Applied {
		b.mu.Lock()
		b.kbRemote++
		b.mu.Unlock()
	}
	return rep, nil
}

// KnowledgeLog returns the broker's applied delta log in canonical
// order (nil when no knowledge base is bound). The overlay replays it
// onto freshly connected peer links; Snapshot persists it.
func (b *Broker) KnowledgeLog() []knowledge.Delta {
	kb := b.engine.Knowledge()
	if kb == nil {
		return nil
	}
	return kb.Log()
}

// KnowledgeVersion reports the engine's knowledge-base version (zero
// Version when no base is bound).
func (b *Broker) KnowledgeVersion() knowledge.Version {
	kb := b.engine.Knowledge()
	if kb == nil {
		return knowledge.Version{}
	}
	return kb.Version()
}
