package broker

import (
	"reflect"
	"sync"
	"testing"

	"stopss/internal/core"
	"stopss/internal/knowledge"
	"stopss/internal/matching"
	"stopss/internal/message"
)

// recordingForwarder captures every federation callback so the hook
// contract can be asserted without an overlay attached.
type recordingForwarder struct {
	mu      sync.Mutex
	subs    []message.Subscription
	subAdds []bool
	pubs    []message.Event
	pubIDs  []string
	advs    []matching.Advertisement
	advAdds []bool
	kbs     []knowledge.Delta
}

func (f *recordingForwarder) SubscriptionChanged(sub message.Subscription, added bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.subs = append(f.subs, sub)
	f.subAdds = append(f.subAdds, added)
}

func (f *recordingForwarder) PublicationAccepted(ev message.Event, pubID string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.pubs = append(f.pubs, ev)
	f.pubIDs = append(f.pubIDs, pubID)
}

func (f *recordingForwarder) AdvertisementChanged(adv matching.Advertisement, added bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.advs = append(f.advs, adv)
	f.advAdds = append(f.advAdds, added)
}

func (f *recordingForwarder) KnowledgeChanged(d knowledge.Delta, _ core.KnowledgeReport) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.kbs = append(f.kbs, d)
}

func fedBroker(t *testing.T) (*Broker, *recordingForwarder) {
	t.Helper()
	b := New(core.NewEngine(nil), nil)
	f := &recordingForwarder{}
	b.SetForwarder(f)
	if err := b.Register(Client{Name: "alice"}); err != nil {
		t.Fatal(err)
	}
	return b, f
}

func TestForwarderSubscriptionLifecycle(t *testing.T) {
	b, f := fedBroker(t)
	preds := []message.Predicate{message.Pred("x", message.OpGe, message.Int(3))}
	id, err := b.Subscribe("alice", preds)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.subs) != 1 || !f.subAdds[0] {
		t.Fatalf("subscribe reported %d callbacks (adds %v), want 1 add", len(f.subs), f.subAdds)
	}
	// The callback must carry the ORIGINAL form (ID, owner, predicates),
	// not a canonicalized rewrite.
	got := f.subs[0]
	if got.ID != id || got.Subscriber != "alice" || !reflect.DeepEqual(got.Preds, preds) {
		t.Fatalf("callback subscription %+v does not reflect the original (id %d)", got, id)
	}

	if err := b.Unsubscribe("alice", id); err != nil {
		t.Fatal(err)
	}
	if len(f.subs) != 2 || f.subAdds[1] {
		t.Fatalf("unsubscribe reported %d callbacks (adds %v), want removal as second", len(f.subs), f.subAdds)
	}
	if f.subs[1].ID != id {
		t.Fatalf("removal callback names subscription %d, want %d", f.subs[1].ID, id)
	}

	// A failed unsubscribe (wrong owner) must not fire the hook.
	id2, err := b.Subscribe("alice", preds)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Register(Client{Name: "mallory"}); err != nil {
		t.Fatal(err)
	}
	if err := b.Unsubscribe("mallory", id2); err == nil {
		t.Fatal("foreign unsubscribe must fail")
	}
	if len(f.subs) != 3 {
		t.Fatalf("failed unsubscribe fired the forwarder (%d callbacks)", len(f.subs))
	}
}

func TestForwarderPublications(t *testing.T) {
	b, f := fedBroker(t)
	ev := message.E("x", 9)
	if _, err := b.Publish(ev); err != nil {
		t.Fatal(err)
	}
	if len(f.pubs) != 1 || !f.pubs[0].Equal(ev) {
		t.Fatalf("local publish reported %d forwarder callbacks, want the published event once", len(f.pubs))
	}

	// Remote deliveries must NOT re-enter the forwarder: the overlay
	// owns inter-broker propagation, and a bounce here would loop
	// publications forever.
	if _, err := b.DeliverRemote(message.E("x", 10)); err != nil {
		t.Fatal(err)
	}
	if len(f.pubs) != 1 {
		t.Fatalf("DeliverRemote leaked into the forwarder (%d callbacks)", len(f.pubs))
	}
	st := b.Stats()
	if st.Published != 1 || st.RemoteDelivered != 1 {
		t.Fatalf("counters: published %d remoteDelivered %d, want 1 and 1", st.Published, st.RemoteDelivered)
	}
}

func TestForwarderAdvertisements(t *testing.T) {
	b, f := fedBroker(t)
	preds := []message.Predicate{message.Pred("x", message.OpGe, message.Int(0))}
	if err := b.Advertise("alice", preds); err != nil {
		t.Fatal(err)
	}
	if len(f.advs) != 1 || !f.advAdds[0] || f.advs[0].Publisher != "alice" {
		t.Fatalf("advertise callbacks %v (adds %v), want one add for alice", f.advs, f.advAdds)
	}
	b.Unadvertise("alice")
	if len(f.advs) != 2 || f.advAdds[1] {
		t.Fatalf("unadvertise callbacks %v (adds %v), want removal as second", f.advs, f.advAdds)
	}
	// Unadvertising a client without an advertisement is a no-op.
	b.Unadvertise("alice")
	if len(f.advs) != 2 {
		t.Fatalf("no-op unadvertise fired the forwarder (%d callbacks)", len(f.advs))
	}
	// A rejected advertisement (unknown client) must not fire the hook.
	if err := b.Advertise("nobody", preds); err == nil {
		t.Fatal("advertising an unknown client must fail")
	}
	if len(f.advs) != 2 {
		t.Fatalf("failed advertise fired the forwarder (%d callbacks)", len(f.advs))
	}
}

func TestForwarderDetach(t *testing.T) {
	b, f := fedBroker(t)
	b.SetForwarder(nil)
	if _, err := b.Subscribe("alice", []message.Predicate{message.Exists("x")}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Publish(message.E("x", 1)); err != nil {
		t.Fatal(err)
	}
	if err := b.Advertise("alice", []message.Predicate{message.Exists("x")}); err != nil {
		t.Fatal(err)
	}
	if len(f.subs)+len(f.pubs)+len(f.advs) != 0 {
		t.Fatal("detached forwarder still received callbacks")
	}
}

func TestRemoteStatsSource(t *testing.T) {
	b := New(core.NewEngine(nil), nil)
	want := RemoteStats{
		Peers:         3,
		SubsForwarded: 7,
		SubsPruned:    2,
		PubsForwarded: 11,
		PubsDeduped:   1,
		RemoteSubs:    5,
		ShardMatches:  []uint64{4, 4},
	}
	calls := 0
	b.SetRemoteStatsSource(func() RemoteStats { calls++; return want })
	if got := b.Stats().Remote; !reflect.DeepEqual(got, want) {
		t.Fatalf("Stats().Remote = %+v, want %+v", got, want)
	}
	if calls != 1 {
		t.Fatalf("stats source invoked %d times for one Stats call", calls)
	}
	// Clearing the source reverts to standalone zeros.
	b.SetRemoteStatsSource(nil)
	if got := b.Stats().Remote; !reflect.DeepEqual(got, RemoteStats{}) {
		t.Fatalf("standalone Stats().Remote = %+v, want zero", got)
	}
}

func TestFederationSnapshots(t *testing.T) {
	b := New(core.NewEngine(nil), nil)
	for _, name := range []string{"zoe", "amy"} {
		if err := b.Register(Client{Name: name}); err != nil {
			t.Fatal(err)
		}
	}
	// Subscriptions come back in ascending ID order regardless of
	// insertion interleaving, in their original (pre-canonical) form.
	ids := make([]message.SubID, 0, 4)
	for i := 3; i >= 0; i-- {
		owner := []string{"zoe", "amy"}[i%2]
		id, err := b.Subscribe(owner, []message.Predicate{message.Pred("x", message.OpGe, message.Int(int64(i)))})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	subs := b.Subscriptions()
	if len(subs) != 4 {
		t.Fatalf("Subscriptions returned %d entries, want 4", len(subs))
	}
	for i := 1; i < len(subs); i++ {
		if subs[i-1].ID >= subs[i].ID {
			t.Fatalf("Subscriptions not ascending by ID: %v", subs)
		}
	}

	// Advertisements come back sorted by publisher.
	for _, name := range []string{"zoe", "amy"} {
		if err := b.Advertise(name, []message.Predicate{message.Exists("x")}); err != nil {
			t.Fatal(err)
		}
	}
	advs := b.Advertisements()
	if len(advs) != 2 || advs[0].Publisher != "amy" || advs[1].Publisher != "zoe" {
		t.Fatalf("Advertisements = %v, want sorted by publisher", advs)
	}
	_ = ids
}
