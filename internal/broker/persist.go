package broker

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"stopss/internal/knowledge"
	"stopss/internal/message"
	"stopss/internal/notify"
)

// Snapshot / Restore persist the broker's durable state — clients,
// routes, advertisements, the applied knowledge-delta log, and
// subscriptions — as a stream of JSON lines, so a restarted event
// dispatcher resumes with the same subscription base AND the same
// knowledge-base version: on rejoin it replays only deltas it has not
// seen instead of re-flooding (or re-receiving) the federation's whole
// knowledge history from zero. Transient state (counters, in-flight
// notifications) is deliberately excluded.
//
// Format: one header line, then one line per record. Knowledge deltas
// precede subscriptions so restored subscriptions index under the
// restored knowledge:
//
//	{"kind":"header","version":1,"next_id":42}
//	{"kind":"client","client":{...}}
//	{"kind":"kbdelta","kb":{...}}
//	{"kind":"advertisement","adv":{...}}
//	{"kind":"subscription","sub":{...}}
//	{"kind":"subscription","sub":{...},"durable":true,"cursor":17}
//
// Durable subscriptions carry their journal cursor: on Restore (with
// the journal attached first) the cursor merges with the journal's own
// persisted one — max wins, both only ever lag the acked truth — so a
// restarted broker resumes at-least-once delivery where it left off.

const snapshotVersion = 1

type snapRecord struct {
	Kind    string                `json:"kind"`
	Version int                   `json:"version,omitempty"`
	NextID  message.SubID         `json:"next_id,omitempty"`
	Client  *snapClient           `json:"client,omitempty"`
	Sub     *message.Subscription `json:"sub,omitempty"`
	Durable bool                  `json:"durable,omitempty"`
	Cursor  uint64                `json:"cursor,omitempty"`
	Adv     *snapAdvert           `json:"adv,omitempty"`
	KB      *knowledge.Delta      `json:"kb,omitempty"`
}

type snapClient struct {
	Name      string `json:"name"`
	Transport string `json:"transport,omitempty"`
	Addr      string `json:"addr,omitempty"`
}

type snapAdvert struct {
	Publisher string              `json:"publisher"`
	Preds     []message.Predicate `json:"preds"`
}

// Snapshot writes the broker's durable state to w.
func (b *Broker) Snapshot(w io.Writer) error {
	b.mu.Lock()
	header := snapRecord{Kind: "header", Version: snapshotVersion, NextID: b.nextID}
	clients := make([]snapClient, 0, len(b.clients))
	for _, c := range b.clients {
		clients = append(clients, snapClient{Name: c.Name, Transport: c.Route.Transport, Addr: c.Route.Addr})
	}
	ids := make([]message.SubID, 0, len(b.subs))
	for id := range b.subs {
		ids = append(ids, id)
	}
	b.mu.Unlock()
	sort.Slice(clients, func(i, j int) bool { return clients[i].Name < clients[j].Name })
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(header); err != nil {
		return fmt.Errorf("broker: writing snapshot header: %w", err)
	}
	for i := range clients {
		if err := enc.Encode(snapRecord{Kind: "client", Client: &clients[i]}); err != nil {
			return fmt.Errorf("broker: writing client: %w", err)
		}
	}
	for _, d := range b.KnowledgeLog() {
		d := d
		if err := enc.Encode(snapRecord{Kind: "kbdelta", KB: &d}); err != nil {
			return fmt.Errorf("broker: writing knowledge delta %s: %w", d.ID(), err)
		}
	}
	for _, a := range b.Advertisements() {
		if err := enc.Encode(snapRecord{Kind: "advertisement",
			Adv: &snapAdvert{Publisher: a.Publisher, Preds: a.Preds}}); err != nil {
			return fmt.Errorf("broker: writing advertisement of %q: %w", a.Publisher, err)
		}
	}
	for _, id := range ids {
		sub, ok := b.engine.Subscription(id)
		if !ok {
			continue // raced with unsubscribe
		}
		rec := snapRecord{Kind: "subscription", Sub: &sub}
		b.mu.Lock()
		if st, durable := b.durable[id]; durable {
			rec.Durable = true
			rec.Cursor = st.cursor
		}
		b.mu.Unlock()
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("broker: writing subscription %d: %w", id, err)
		}
	}
	return bw.Flush()
}

// Restore loads a snapshot into an EMPTY broker (one with no clients,
// subscriptions, advertisements or applied knowledge deltas).
// Restoring into a non-empty broker is rejected to avoid silently
// merging states — for the knowledge log in particular, folding a
// snapshot's deltas over an already-evolved base would produce a
// digest matching neither history, a divergence no later check could
// explain.
func (b *Broker) Restore(r io.Reader) error {
	b.mu.Lock()
	kbDeltas := 0
	if kb := b.engine.Knowledge(); kb != nil {
		kbDeltas = kb.Len()
	}
	if len(b.clients) != 0 || len(b.subs) != 0 || len(b.adverts) != 0 || kbDeltas != 0 {
		b.mu.Unlock()
		return fmt.Errorf("broker: restore requires an empty broker (%d clients, %d subscriptions, %d advertisements, %d knowledge deltas present)",
			len(b.clients), len(b.subs), len(b.adverts), kbDeltas)
	}
	b.mu.Unlock()

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	line := 0
	sawHeader := false
	var maxID message.SubID
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec snapRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return fmt.Errorf("broker: snapshot line %d: %w", line, err)
		}
		switch rec.Kind {
		case "header":
			if rec.Version != snapshotVersion {
				return fmt.Errorf("broker: snapshot version %d unsupported (want %d)", rec.Version, snapshotVersion)
			}
			sawHeader = true
			b.mu.Lock()
			// Never lower the watermark: AttachStore may already have
			// raised it past detached IDs the snapshot predates.
			if rec.NextID > b.nextID {
				b.nextID = rec.NextID
			}
			b.mu.Unlock()
		case "client":
			if !sawHeader {
				return fmt.Errorf("broker: snapshot line %d: record before header", line)
			}
			if rec.Client == nil {
				return fmt.Errorf("broker: snapshot line %d: client record without payload", line)
			}
			c := Client{Name: rec.Client.Name}
			if rec.Client.Transport != "" {
				c.Route = notify.Route{Transport: rec.Client.Transport, Addr: rec.Client.Addr}
			}
			if err := b.Register(c); err != nil {
				return fmt.Errorf("broker: snapshot line %d: %w", line, err)
			}
		case "kbdelta":
			if !sawHeader {
				return fmt.Errorf("broker: snapshot line %d: record before header", line)
			}
			if rec.KB == nil {
				return fmt.Errorf("broker: snapshot line %d: kbdelta record without payload", line)
			}
			// Applied directly on the engine: the delta keeps its original
			// stamp and must not be re-offered to a forwarder here — the
			// overlay replays the restored log itself when links come up.
			if _, err := b.engine.ApplyKnowledge(*rec.KB); err != nil {
				return fmt.Errorf("broker: snapshot line %d: %w", line, err)
			}
		case "advertisement":
			if !sawHeader {
				return fmt.Errorf("broker: snapshot line %d: record before header", line)
			}
			if rec.Adv == nil {
				return fmt.Errorf("broker: snapshot line %d: advertisement record without payload", line)
			}
			if err := b.Advertise(rec.Adv.Publisher, rec.Adv.Preds); err != nil {
				return fmt.Errorf("broker: snapshot line %d: %w", line, err)
			}
		case "subscription":
			if !sawHeader {
				return fmt.Errorf("broker: snapshot line %d: record before header", line)
			}
			if rec.Sub == nil {
				return fmt.Errorf("broker: snapshot line %d: subscription record without payload", line)
			}
			s := *rec.Sub
			if err := b.engine.Subscribe(s); err != nil {
				return fmt.Errorf("broker: snapshot line %d: %w", line, err)
			}
			b.mu.Lock()
			b.subs[s.ID] = s.Subscriber
			b.mu.Unlock()
			if rec.Durable {
				b.restoreDurable(s.ID, rec.Cursor)
			}
			if s.ID > maxID {
				maxID = s.ID
			}
		default:
			return fmt.Errorf("broker: snapshot line %d: unknown record kind %q", line, rec.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("broker: reading snapshot: %w", err)
	}
	if !sawHeader {
		return fmt.Errorf("broker: snapshot has no header")
	}
	// Guard against a header that under-reports the ID watermark.
	b.mu.Lock()
	if maxID > b.nextID {
		b.nextID = maxID
	}
	b.mu.Unlock()
	return nil
}
