package broker

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"stopss/internal/message"
	"stopss/internal/notify"
)

// Snapshot / Restore persist the broker's durable state — clients,
// routes and subscriptions — as a stream of JSON lines, so a restarted
// event dispatcher resumes with the same subscription base. Transient
// state (counters, in-flight notifications) is deliberately excluded.
//
// Format: one header line, then one line per record:
//
//	{"kind":"header","version":1,"next_id":42}
//	{"kind":"client","client":{...}}
//	{"kind":"subscription","sub":{...}}

const snapshotVersion = 1

type snapRecord struct {
	Kind    string                `json:"kind"`
	Version int                   `json:"version,omitempty"`
	NextID  message.SubID         `json:"next_id,omitempty"`
	Client  *snapClient           `json:"client,omitempty"`
	Sub     *message.Subscription `json:"sub,omitempty"`
}

type snapClient struct {
	Name      string `json:"name"`
	Transport string `json:"transport,omitempty"`
	Addr      string `json:"addr,omitempty"`
}

// Snapshot writes the broker's durable state to w.
func (b *Broker) Snapshot(w io.Writer) error {
	b.mu.Lock()
	header := snapRecord{Kind: "header", Version: snapshotVersion, NextID: b.nextID}
	clients := make([]snapClient, 0, len(b.clients))
	for _, c := range b.clients {
		clients = append(clients, snapClient{Name: c.Name, Transport: c.Route.Transport, Addr: c.Route.Addr})
	}
	ids := make([]message.SubID, 0, len(b.subs))
	for id := range b.subs {
		ids = append(ids, id)
	}
	b.mu.Unlock()
	sort.Slice(clients, func(i, j int) bool { return clients[i].Name < clients[j].Name })
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(header); err != nil {
		return fmt.Errorf("broker: writing snapshot header: %w", err)
	}
	for i := range clients {
		if err := enc.Encode(snapRecord{Kind: "client", Client: &clients[i]}); err != nil {
			return fmt.Errorf("broker: writing client: %w", err)
		}
	}
	for _, id := range ids {
		sub, ok := b.engine.Subscription(id)
		if !ok {
			continue // raced with unsubscribe
		}
		if err := enc.Encode(snapRecord{Kind: "subscription", Sub: &sub}); err != nil {
			return fmt.Errorf("broker: writing subscription %d: %w", id, err)
		}
	}
	return bw.Flush()
}

// Restore loads a snapshot into an EMPTY broker (one with no clients or
// subscriptions). Restoring into a non-empty broker is rejected to avoid
// silently merging states.
func (b *Broker) Restore(r io.Reader) error {
	b.mu.Lock()
	if len(b.clients) != 0 || len(b.subs) != 0 {
		b.mu.Unlock()
		return fmt.Errorf("broker: restore requires an empty broker (%d clients, %d subscriptions present)",
			len(b.clients), len(b.subs))
	}
	b.mu.Unlock()

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	line := 0
	sawHeader := false
	var maxID message.SubID
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec snapRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return fmt.Errorf("broker: snapshot line %d: %w", line, err)
		}
		switch rec.Kind {
		case "header":
			if rec.Version != snapshotVersion {
				return fmt.Errorf("broker: snapshot version %d unsupported (want %d)", rec.Version, snapshotVersion)
			}
			sawHeader = true
			b.mu.Lock()
			b.nextID = rec.NextID
			b.mu.Unlock()
		case "client":
			if !sawHeader {
				return fmt.Errorf("broker: snapshot line %d: record before header", line)
			}
			if rec.Client == nil {
				return fmt.Errorf("broker: snapshot line %d: client record without payload", line)
			}
			c := Client{Name: rec.Client.Name}
			if rec.Client.Transport != "" {
				c.Route = notify.Route{Transport: rec.Client.Transport, Addr: rec.Client.Addr}
			}
			if err := b.Register(c); err != nil {
				return fmt.Errorf("broker: snapshot line %d: %w", line, err)
			}
		case "subscription":
			if !sawHeader {
				return fmt.Errorf("broker: snapshot line %d: record before header", line)
			}
			if rec.Sub == nil {
				return fmt.Errorf("broker: snapshot line %d: subscription record without payload", line)
			}
			s := *rec.Sub
			if err := b.engine.Subscribe(s); err != nil {
				return fmt.Errorf("broker: snapshot line %d: %w", line, err)
			}
			b.mu.Lock()
			b.subs[s.ID] = s.Subscriber
			b.mu.Unlock()
			if s.ID > maxID {
				maxID = s.ID
			}
		default:
			return fmt.Errorf("broker: snapshot line %d: unknown record kind %q", line, rec.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("broker: reading snapshot: %w", err)
	}
	if !sawHeader {
		return fmt.Errorf("broker: snapshot has no header")
	}
	// Guard against a header that under-reports the ID watermark.
	b.mu.Lock()
	if maxID > b.nextID {
		b.nextID = maxID
	}
	b.mu.Unlock()
	return nil
}
