package broker

import (
	"sort"
	"sync/atomic"
	"time"

	"stopss/internal/message"
)

// Per-subscription delivery accounting (DESIGN §10). The observability
// layer of PR 6 answers "where did THIS publication go"; this one
// answers the operator's standing question "which subscriptions are
// falling behind". Every subscription carries a small block of atomic
// counters updated on the paths that already exist — the engine match
// loop in publish and the notifier's delivery hook — so the hot path
// pays a map lookup plus a handful of atomic adds, no new locks and no
// blocking in the hook (which runs on notify worker goroutines).
//
// The counters live in a sync.Map keyed by SubID: subscription churn
// is rare next to delivery traffic, so the map is read-mostly exactly
// where sync.Map is cheap. Entries are created lazily on first
// activity and dropped on unsubscribe/detach; a resumed subscription
// starts its activity counters afresh (the durable cursor, not these
// diagnostics, is the correctness state).

// subCounters is one subscription's accounting block.
type subCounters struct {
	matched      atomic.Uint64 // engine matches on the live publish path
	delivered    atomic.Uint64 // acknowledged deliveries
	retried      atomic.Uint64 // extra delivery attempts beyond the first
	parked       atomic.Uint64 // park events (journal will redeliver)
	deadLettered atomic.Uint64 // retry-exhausted, not journal-claimed
	lastDelivery atomic.Int64  // unix nanos of the last successful delivery
}

// subCountersFor returns the accounting block for id, creating it on
// first use.
func (b *Broker) subCountersFor(id message.SubID) *subCounters {
	if c, ok := b.subStats.Load(id); ok {
		return c.(*subCounters)
	}
	c, _ := b.subStats.LoadOrStore(id, &subCounters{})
	return c.(*subCounters)
}

// dropSubCounters forgets a subscription's accounting (unsubscribe,
// detach).
func (b *Broker) dropSubCounters(id message.SubID) {
	b.subStats.Delete(id)
}

// SubStat is the operator-facing accounting snapshot of one resident
// subscription, served by GET /api/v1/subs.
type SubStat struct {
	ID           message.SubID `json:"id"`
	Client       string        `json:"client"`
	Durable      bool          `json:"durable"`
	Matched      uint64        `json:"matched"`
	Delivered    uint64        `json:"delivered"`
	Retried      uint64        `json:"retried,omitempty"`
	Parked       uint64        `json:"parked,omitempty"`
	DeadLettered uint64        `json:"dead_lettered,omitempty"`
	Pending      int           `json:"pending,omitempty"` // dispatched-but-unacked seqs (durable)
	Cursor       uint64        `json:"cursor,omitempty"`  // acked journal cursor (durable)
	// Lag is the consumer-lag signal: journal head minus acked cursor,
	// i.e. how many journaled publications this durable subscription
	// has not yet acknowledged. 0 for fire-and-forget subscriptions.
	Lag uint64 `json:"lag"`
	// LastDeliveryAgeMS is milliseconds since the last acknowledged
	// delivery; -1 when nothing was ever delivered.
	LastDeliveryAgeMS int64 `json:"last_delivery_age_ms"`
}

// SubStats snapshots per-subscription delivery accounting for every
// resident subscription, sorted laggiest-first (then most-matched,
// then by ID — a stable, operator-useful order). Detached
// subscriptions are excluded: while paged out they accrue no delivery
// activity and their owed history is pinned by the journal floor, not
// a live cursor.
func (b *Broker) SubStats() []SubStat {
	type durSnap struct {
		cursor  uint64
		pending int
	}
	b.mu.Lock()
	subs := make(map[message.SubID]string, len(b.subs))
	for id, client := range b.subs {
		subs[id] = client
	}
	dur := make(map[message.SubID]durSnap, len(b.durable))
	for id, st := range b.durable {
		dur[id] = durSnap{cursor: st.cursor, pending: len(st.pending)}
	}
	j := b.journal
	b.mu.Unlock()

	var head uint64
	if j != nil {
		head = j.NextSeq() - 1
	}
	now := time.Now().UnixNano()
	out := make([]SubStat, 0, len(subs))
	for id, client := range subs {
		s := SubStat{ID: id, Client: client, LastDeliveryAgeMS: -1}
		if d, ok := dur[id]; ok {
			s.Durable = true
			s.Cursor = d.cursor
			s.Pending = d.pending
			if head > d.cursor {
				s.Lag = head - d.cursor
			}
		}
		if c, ok := b.subStats.Load(id); ok {
			sc := c.(*subCounters)
			s.Matched = sc.matched.Load()
			s.Delivered = sc.delivered.Load()
			s.Retried = sc.retried.Load()
			s.Parked = sc.parked.Load()
			s.DeadLettered = sc.deadLettered.Load()
			if last := sc.lastDelivery.Load(); last != 0 {
				s.LastDeliveryAgeMS = (now - last) / int64(time.Millisecond)
			}
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Lag != out[j].Lag {
			return out[i].Lag > out[j].Lag
		}
		if out[i].Matched != out[j].Matched {
			return out[i].Matched > out[j].Matched
		}
		return out[i].ID < out[j].ID
	})
	return out
}
