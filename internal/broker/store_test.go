package broker

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"

	"stopss/internal/journal"
	"stopss/internal/message"
	"stopss/internal/notify"
	"stopss/internal/store"
	"stopss/internal/sublang"

	"time"
)

func attachTestStore(t *testing.T, b *Broker, dir string, pages int) *store.Store {
	t.Helper()
	st, err := store.Open(store.Config{Path: filepath.Join(dir, "subs.heap"), PageSize: 512, Pages: pages})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AttachStore(st); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = st.Close() })
	return st
}

func TestDetachResumeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r := newDurableRig(t, dir)
	attachTestStore(t, r.b, dir, 4)
	id := r.subscribeDurable(t, "acme", "(university = Toronto)")
	r.publish(t, "(school, Toronto)")
	waitCursor(t, r.b, id, 1)

	if err := r.b.DetachDurable("acme", id); err != nil {
		t.Fatal(err)
	}
	st := r.b.Stats()
	if st.Detached != 1 || st.Subscriptions != 0 || st.Durable != 0 {
		t.Fatalf("after detach: Detached=%d Subscriptions=%d Durable=%d", st.Detached, st.Subscriptions, st.Durable)
	}
	if r.b.Durable(id) {
		t.Fatal("detached subscription still reported durable/resident")
	}

	// Publications while detached are journaled but not delivered.
	before := r.tr.total()
	r.publish(t, "(school, Toronto)")
	if got := r.tr.total(); got != before {
		t.Fatalf("detached subscription still delivered: %d -> %d", before, got)
	}

	// Resume faults the record back in and replays the missed event.
	n, err := r.b.ResumeDurable("acme", id)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("resume redispatched %d, want 1", n)
	}
	waitCursor(t, r.b, id, 2)
	if r.tr.countSeq(2) == 0 {
		t.Fatal("missed event not redelivered on resume")
	}
	st = r.b.Stats()
	if st.Detached != 0 || st.Durable != 1 || st.FaultedIn != 1 {
		t.Fatalf("after resume: Detached=%d Durable=%d FaultedIn=%d", st.Detached, st.Durable, st.FaultedIn)
	}
}

func TestDetachRequiresOwnershipAndDurability(t *testing.T) {
	dir := t.TempDir()
	r := newDurableRig(t, dir)
	attachTestStore(t, r.b, dir, 4)
	id := r.subscribeDurable(t, "acme", "(university = Toronto)")
	if err := r.b.DetachDurable("mallory", id); err == nil {
		t.Fatal("detach by non-owner succeeded")
	}
	if err := r.b.Register(Client{Name: "beta", Route: notify.Route{Transport: "mem", Addr: "beta"}}); err != nil {
		t.Fatal(err)
	}
	preds, err := sublang.ParseSubscription("(degree = phd)")
	if err != nil {
		t.Fatal(err)
	}
	plain, err := r.b.Subscribe("beta", preds)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.b.DetachDurable("beta", plain); err == nil {
		t.Fatal("detach of non-durable subscription succeeded")
	}
	if err := r.b.DetachDurable("acme", id); err != nil {
		t.Fatal(err)
	}
	// Resume by the wrong client is refused; the record stays stored.
	if _, err := r.b.ResumeDurable("mallory", id); err == nil {
		t.Fatal("resume by non-owner succeeded")
	}
	if r.b.Stats().Detached != 1 {
		t.Fatal("failed resume consumed the stored record")
	}
}

func TestUnsubscribeWhileDetached(t *testing.T) {
	dir := t.TempDir()
	r := newDurableRig(t, dir)
	attachTestStore(t, r.b, dir, 4)
	id := r.subscribeDurable(t, "acme", "(university = Toronto)")
	if err := r.b.DetachDurable("acme", id); err != nil {
		t.Fatal(err)
	}
	if err := r.b.Unsubscribe("acme", id); err != nil {
		t.Fatal(err)
	}
	if r.b.Stats().Detached != 0 {
		t.Fatal("unsubscribe left the stored record behind")
	}
	if _, err := r.b.ResumeDurable("acme", id); err == nil {
		t.Fatal("resume of an unsubscribed detached subscription succeeded")
	}
}

// TestDetachedFloorPinsJournal verifies the journal retains history a
// detached subscription still owes, even though its cursor left the
// journal's own table.
func TestDetachedFloorPinsJournal(t *testing.T) {
	dir := t.TempDir()
	tr := &memTransport{}
	nt, err := notify.NewEngine(notify.Config{Workers: 2, MaxRetries: 1, Backoff: time.Millisecond}, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer nt.Close()
	// Tiny segments so compaction gets plenty of roll opportunities.
	j, err := journal.Open(journal.Config{Dir: dir, SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	b := New(jobsEngine(t), nt)
	b.AttachJournal(j)
	attachTestStore(t, b, dir, 4)

	if err := b.Register(Client{Name: "acme", Route: notify.Route{Transport: "mem", Addr: "acme"}}); err != nil {
		t.Fatal(err)
	}
	preds, err := sublang.ParseSubscription("(university = Toronto)")
	if err != nil {
		t.Fatal(err)
	}
	id, err := b.SubscribeDurable("acme", preds)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.DetachDurable("acme", id); err != nil {
		t.Fatal(err)
	}
	ev, err := sublang.ParseEvent("(school, Toronto)")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, err := b.Publish(ev); err != nil {
			t.Fatal(err)
		}
	}
	// All 200 records must still be in the journal: the detached floor
	// pinned compaction at seq 0 despite the empty cursor table.
	recs := 0
	if err := j.Scan(1, func(journal.Record) error { recs++; return nil }); err != nil {
		t.Fatal(err)
	}
	if recs != 200 {
		t.Fatalf("journal retained %d records, want 200 (detached floor not pinning)", recs)
	}
	// Resume redelivers every one of them.
	n, err := b.ResumeDurable("acme", id)
	if err != nil {
		t.Fatal(err)
	}
	if n != 200 {
		t.Fatalf("resume redispatched %d, want 200", n)
	}
}

// TestStoreRestartResume is the crash-restart path: detach, checkpoint,
// "crash" (no close), rebuild broker+journal+store, resume — the
// subscription and its missed events come back.
func TestStoreRestartResume(t *testing.T) {
	dir := t.TempDir()
	storePath := filepath.Join(dir, "subs.heap")
	r := newDurableRig(t, dir)
	st, err := store.Open(store.Config{Path: storePath, PageSize: 512, Pages: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.b.AttachStore(st); err != nil {
		t.Fatal(err)
	}
	id := r.subscribeDurable(t, "acme", "(university = Toronto)")
	r.publish(t, "(school, Toronto)")
	waitCursor(t, r.b, id, 1)
	if err := r.b.DetachDurable("acme", id); err != nil {
		t.Fatal(err)
	}
	r.publish(t, "(school, Toronto)")
	if err := r.b.CheckpointStore(); err != nil {
		t.Fatal(err)
	}
	if err := r.j.Close(); err != nil { // flush the journal; store file is checkpointed
		t.Fatal(err)
	}
	// No store.Close(): simulate a crash. Reopen everything.
	tr2 := &memTransport{}
	nt2, err := notify.NewEngine(notify.Config{Workers: 2, MaxRetries: 1, Backoff: time.Millisecond}, tr2)
	if err != nil {
		t.Fatal(err)
	}
	defer nt2.Close()
	j2, err := journal.Open(journal.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	st3, err := store.Open(store.Config{Path: storePath, PageSize: 512, Pages: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	b2 := New(jobsEngine(t), nt2)
	b2.AttachJournal(j2)
	if err := b2.AttachStore(st3); err != nil {
		t.Fatal(err)
	}
	if got := b2.Stats().Detached; got != 1 {
		t.Fatalf("reopened store has %d detached records, want 1", got)
	}
	if err := b2.Register(Client{Name: "acme", Route: notify.Route{Transport: "mem", Addr: "acme"}}); err != nil {
		t.Fatal(err)
	}
	n, err := b2.ResumeDurable("acme", id)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("post-restart resume redispatched %d, want 1", n)
	}
	waitCursor(t, b2, id, 2)
	if tr2.countSeq(2) == 0 {
		t.Fatal("missed event not redelivered after restart")
	}
	// New subscriptions never collide with the detached ID space.
	if err := b2.Register(Client{Name: "beta"}); err != nil {
		t.Fatal(err)
	}
	preds, err := sublang.ParseSubscription("(degree = phd)")
	if err != nil {
		t.Fatal(err)
	}
	nid, err := b2.Subscribe("beta", preds)
	if err != nil {
		t.Fatal(err)
	}
	if nid <= id {
		t.Fatalf("new subscription ID %d collides with detached space (max detached %d)", nid, id)
	}
}

// TestSnapshotRestoreMergesStoreCursor: a subscription snapshotted
// while resident, then detached with a further-along cursor, must
// restore with the store's (newer) cursor — the 3-way max.
func TestSnapshotRestoreMergesStoreCursor(t *testing.T) {
	dir := t.TempDir()
	r := newDurableRig(t, dir)
	attachTestStore(t, r.b, dir, 4)
	id := r.subscribeDurable(t, "acme", "(university = Toronto)")

	var snap bytes.Buffer
	if err := r.b.Snapshot(&snap); err != nil { // cursor 0 in the snapshot
		t.Fatal(err)
	}
	r.publish(t, "(school, Toronto)")
	waitCursor(t, r.b, id, 1)
	if err := r.b.DetachDurable("acme", id); err != nil { // store cursor 1
		t.Fatal(err)
	}

	// Fresh broker over the same journal+store, restored from the stale
	// snapshot.
	tr2 := &memTransport{}
	nt2, err := notify.NewEngine(notify.Config{Workers: 2, MaxRetries: 1, Backoff: time.Millisecond}, tr2)
	if err != nil {
		t.Fatal(err)
	}
	defer nt2.Close()
	b2 := New(jobsEngine(t), nt2)
	b2.AttachJournal(r.j)
	if err := b2.AttachStore(r.b.Store()); err != nil {
		t.Fatal(err)
	}
	if err := b2.Restore(&snap); err != nil {
		t.Fatal(err)
	}
	cur, ok := b2.DurableCursor(id)
	if !ok || cur != 1 {
		t.Fatalf("restored cursor = %d/%v, want 1 (store's copy)", cur, ok)
	}
	if b2.Stats().Detached != 0 {
		t.Fatal("store record not absorbed by restore")
	}
}

// TestManyDetachedBoundedResidency pages thousands of durable subs out
// and verifies the broker's resident footprint is the store's page
// budget, not the subscription count.
func TestManyDetachedBoundedResidency(t *testing.T) {
	dir := t.TempDir()
	r := newDurableRig(t, dir)
	attachTestStore(t, r.b, dir, 8)
	if err := r.b.Register(Client{Name: "acme", Route: notify.Route{Transport: "mem", Addr: "acme"}}); err != nil {
		t.Fatal(err)
	}
	const n = 2000
	for i := 0; i < n; i++ {
		preds, err := sublang.ParseSubscription(fmt.Sprintf("(university = City%d)", i%97))
		if err != nil {
			t.Fatal(err)
		}
		id, err := r.b.SubscribeDurable("acme", preds)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.b.DetachDurable("acme", id); err != nil {
			t.Fatal(err)
		}
	}
	st := r.b.Stats()
	if st.Detached != n {
		t.Fatalf("Detached = %d, want %d", st.Detached, n)
	}
	if st.Subscriptions != 0 || st.Durable != 0 {
		t.Fatalf("resident maps not empty: subs=%d durable=%d", st.Subscriptions, st.Durable)
	}
	if st.Store.Resident > st.Store.PoolCapacity {
		t.Fatalf("store resident %d exceeds pool budget %d", st.Store.Resident, st.Store.PoolCapacity)
	}
	if st.Store.Evictions == 0 {
		t.Fatal("no evictions despite records >> pool budget")
	}
	// Spot-check a few resumes still work under heavy eviction.
	for _, id := range []int{1, n / 2, n} {
		if _, err := r.b.ResumeDurable("acme", message.SubID(id)); err != nil {
			t.Fatalf("resume of sub %d: %v", id, err)
		}
	}
}
