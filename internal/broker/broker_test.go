package broker

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"stopss/internal/core"
	"stopss/internal/message"
	"stopss/internal/notify"
	"stopss/internal/ontology"
	"stopss/internal/semantic"
	"stopss/internal/sublang"
)

const jobsODL = `
domain jobs
synonyms {
    university: school, college
    "professional experience": "work experience"
}
concepts {
    degree { "graduate degree" { PhD MSc } BSc }
}
mappings {
    rule experience_from_graduation
        when exists("graduation year")
        derive "professional experience" = 2003 - attr("graduation year")
}
`

func jobsEngine(t testing.TB) *core.Engine {
	t.Helper()
	ont, err := ontology.Load(jobsODL, ontology.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return core.NewEngine(ont.Stage(semantic.FullConfig()))
}

func TestBrokerLifecycle(t *testing.T) {
	b := New(jobsEngine(t), nil)
	if err := b.Register(Client{Name: "acme"}); err != nil {
		t.Fatal(err)
	}
	if err := b.Register(Client{}); err == nil {
		t.Error("nameless client must be rejected")
	}
	preds, err := sublang.ParseSubscription("(university = Toronto) and (professional experience >= 4)")
	if err != nil {
		t.Fatal(err)
	}
	id, err := b.Subscribe("acme", preds)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Subscribe("ghost", preds); err == nil {
		t.Error("unknown client must be rejected")
	}
	if got := b.SubscriptionsOf("acme"); len(got) != 1 || got[0] != id {
		t.Errorf("SubscriptionsOf = %v", got)
	}
	if got := b.Clients(); len(got) != 1 || got[0] != "acme" {
		t.Errorf("Clients = %v", got)
	}

	ev, err := sublang.ParseEvent("(school, Toronto)(graduation year, 1995)")
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Publish(ev)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 || res.Matches[0] != id {
		t.Fatalf("Matches = %v (semantic pipeline broken)", res.Matches)
	}

	// Ownership enforcement on unsubscribe.
	if err := b.Register(Client{Name: "rival"}); err != nil {
		t.Fatal(err)
	}
	if err := b.Unsubscribe("rival", id); err == nil {
		t.Error("foreign unsubscribe must be rejected")
	}
	if err := b.Unsubscribe("acme", id); err != nil {
		t.Fatal(err)
	}
	if err := b.Unsubscribe("acme", id); err == nil {
		t.Error("double unsubscribe must be rejected")
	}
	res, err = b.Publish(ev)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 0 {
		t.Errorf("unsubscribed subscription still matches: %v", res.Matches)
	}
}

func TestBrokerNotifies(t *testing.T) {
	var mu sync.Mutex
	var got []notify.Notification
	sink, err := notify.NewTCPSink("127.0.0.1:0", func(n notify.Notification) {
		mu.Lock()
		defer mu.Unlock()
		got = append(got, n)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()

	ne, err := notify.NewEngine(notify.Config{Workers: 2}, notify.NewTCPTransport(0))
	if err != nil {
		t.Fatal(err)
	}
	defer ne.Close()

	b := New(jobsEngine(t), ne)
	if err := b.Register(Client{
		Name:  "acme",
		Route: notify.Route{Transport: "tcp", Addr: sink.Addr()},
	}); err != nil {
		t.Fatal(err)
	}
	preds, _ := sublang.ParseSubscription("(university = Toronto)")
	id, err := b.Subscribe("acme", preds)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Publish(message.E("school", "Toronto"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Notified != 1 || res.Dropped != 0 {
		t.Fatalf("PublishResult = %+v", res)
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("notification never arrived over TCP")
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	n := got[0]
	mu.Unlock()
	if n.SubID != id || n.Subscriber != "acme" || n.Mode != "semantic" {
		t.Errorf("notification = %+v", n)
	}
	if !n.Event.Has("school") {
		t.Errorf("notification should carry the original event, got %v", n.Event)
	}
}

func TestBrokerDropsUnroutedMatches(t *testing.T) {
	ne, err := notify.NewEngine(notify.Config{Workers: 1}, notify.NewSMSGateway(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer ne.Close()
	b := New(jobsEngine(t), ne)
	// No Route on the client → matches are counted as drops.
	if err := b.Register(Client{Name: "acme"}); err != nil {
		t.Fatal(err)
	}
	preds, _ := sublang.ParseSubscription("(university = Toronto)")
	if _, err := b.Subscribe("acme", preds); err != nil {
		t.Fatal(err)
	}
	res, err := b.Publish(message.E("university", "Toronto"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped != 1 || res.Notified != 0 {
		t.Errorf("PublishResult = %+v", res)
	}
	if st := b.Stats(); st.DropsNoRoute != 1 {
		t.Errorf("DropsNoRoute = %d", st.DropsNoRoute)
	}
}

func TestBrokerStats(t *testing.T) {
	b := New(jobsEngine(t), nil)
	if err := b.Register(Client{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	preds, _ := sublang.ParseSubscription("(x = 1)")
	if _, err := b.Subscribe("a", preds); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := b.Publish(message.E("x", 1)); err != nil {
			t.Fatal(err)
		}
	}
	st := b.Stats()
	if st.Clients != 1 || st.Subscriptions != 1 || st.Published != 3 {
		t.Errorf("Stats = %+v", st)
	}
	if st.Engine.Matches != 3 {
		t.Errorf("engine matches = %d", st.Engine.Matches)
	}
}

func TestBrokerConcurrentPublishers(t *testing.T) {
	b := New(jobsEngine(t), nil)
	if err := b.Register(Client{Name: "acme"}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 32)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				preds, err := sublang.ParseSubscription(fmt.Sprintf("(k%d = %d)", w, i))
				if err != nil {
					errCh <- err
					return
				}
				if _, err := b.Subscribe("acme", preds); err != nil {
					errCh <- err
					return
				}
				if _, err := b.Publish(message.E(fmt.Sprintf("k%d", w), i)); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if st := b.Stats(); st.Subscriptions != 240 {
		t.Errorf("Subscriptions = %d, want 240", st.Subscriptions)
	}
	// Subscription IDs must be unique across concurrent subscribers.
	ids := b.SubscriptionsOf("acme")
	seen := make(map[message.SubID]bool)
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate subscription ID %d", id)
		}
		seen[id] = true
	}
}

func TestBrokerModeSwitchVisibleInNotifications(t *testing.T) {
	sms := notify.NewSMSGateway(0, 0)
	ne, err := notify.NewEngine(notify.Config{Workers: 1}, sms)
	if err != nil {
		t.Fatal(err)
	}
	defer ne.Close()
	b := New(jobsEngine(t), ne)
	if err := b.Register(Client{Name: "acme", Route: notify.Route{Transport: "sms", Addr: "x"}}); err != nil {
		t.Fatal(err)
	}
	preds, _ := sublang.ParseSubscription("(university = Toronto)")
	if _, err := b.Subscribe("acme", preds); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Publish(message.E("university", "Toronto")); err != nil {
		t.Fatal(err)
	}
	if err := b.Engine().SetMode(core.Syntactic); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Publish(message.E("university", "Toronto")); err != nil {
		t.Fatal(err)
	}
	if !ne.Drain(2 * time.Second) {
		t.Fatal("queue did not drain")
	}
	payloads := strings.Join(sms.Reassemble("x"), "\n")
	if !strings.Contains(payloads, `"mode":"semantic"`) || !strings.Contains(payloads, `"mode":"syntactic"`) {
		t.Errorf("modes not recorded in notifications:\n%s", payloads)
	}
}
