// Package broker implements the event dispatcher of a pub/sub system
// (paper §1): it records client registrations and subscriptions, runs
// every publication through the S-ToPSS engine, and forwards matches to
// the notification engine.
//
// The broker is the composition root of Figure 2's server side:
//
//	web app / workload generator → Broker → core.Engine → notify.Engine
package broker

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"stopss/internal/core"
	"stopss/internal/journal"
	"stopss/internal/knowledge"
	"stopss/internal/matching"
	"stopss/internal/message"
	"stopss/internal/notify"
	"stopss/internal/store"
	"stopss/internal/trace"
)

// Client is a registered participant: a company (subscriber) or a
// candidate (publisher) in the job-finder scenario. One client may both
// publish and subscribe.
type Client struct {
	Name  string
	Route notify.Route // where notifications go; zero Route means none
}

// Stats summarizes broker activity.
type Stats struct {
	Clients               int
	Subscriptions         int
	Durable               int // durable subscriptions (journal-backed)
	Published             uint64
	Notified              uint64
	RemoteDelivered       uint64 // publications accepted from peer brokers
	DropsNoRoute          uint64
	RejectedNonConforming uint64
	Acked                 uint64 // durable deliveries acknowledged
	Parked                uint64 // durable deliveries parked for replay
	Replayed              uint64 // notifications re-dispatched by catch-up replay
	Detached              int    // durable subscriptions paged out to the store
	Detaches              uint64 // DetachDurable calls
	FaultedIn             uint64 // detached subscriptions faulted back in by resume
	KBLocal               uint64 // knowledge deltas injected locally
	KBRemote              uint64 // knowledge deltas applied from peer brokers
	JournalEnabled        bool
	StoreEnabled          bool
	Journal               journal.Stats       // zero when no journal attached
	Store                 store.Stats         // zero when no store attached
	Notify                notify.Stats        // dead-letter/park counters; zero without a notifier
	Engine                core.Stats          // includes KBDeltas/KBVersion (federation skew check)
	Remote                RemoteStats         // overlay routing counters; zero when standalone
	Trace                 trace.Stats         // tracer ring/sampling counters
	Stages                trace.StageSnapshot // per-stage latency histograms (DESIGN §10)
}

// Broker is the event dispatcher.
type Broker struct {
	engine   core.PubSub
	notifier *notify.Engine
	// tracer mints publication IDs and records the per-stage span chain
	// (DESIGN §10). Never nil — New installs a default; SetTracer
	// replaces it (before traffic, so one identity mints every ID).
	tracer atomic.Pointer[trace.Tracer]

	mu      sync.Mutex
	clients map[string]Client
	subs    map[message.SubID]string // sub → client name
	nextID  message.SubID

	adverts map[string]matching.Advertisement

	journal *journal.Journal                // durable publication log; nil when not attached
	durable map[message.SubID]*durableState // delivery windows of durable subscriptions

	// store pages detached durable subscriptions out of RAM (store.go).
	// detachedFloor/detachedCount back the journal's external ack floor;
	// they are atomics because the journal reads them under its own lock
	// (writers hold b.mu, readers don't).
	store         *store.Store
	detachedFloor atomic.Uint64
	detachedCount atomic.Int64

	forwarder   Forwarder          // overlay hook; nil when standalone
	remoteStats func() RemoteStats // overlay stats source; nil when standalone
	kbOrigin    *knowledge.Origin  // stamps unstamped local deltas

	// subStats holds per-subscription delivery accounting blocks
	// (substats.go): SubID → *subCounters, updated lock-free on the
	// publish and delivery-hook paths.
	subStats sync.Map

	published             uint64
	notified              uint64
	remoteDelivered       uint64
	dropsNoRoute          uint64
	rejectedNonConforming uint64
	acked                 uint64
	parked                uint64
	replayed              uint64
	detaches              uint64
	faultedIn             uint64
	kbLocal               uint64
	kbRemote              uint64
}

// New builds a broker over an engine and an optional notifier (nil means
// matches are returned to the publisher but not delivered anywhere).
func New(engine core.PubSub, notifier *notify.Engine) *Broker {
	b := &Broker{
		engine:   engine,
		notifier: notifier,
		clients:  make(map[string]Client),
		subs:     make(map[message.SubID]string),
		durable:  make(map[message.SubID]*durableState),
	}
	b.tracer.Store(trace.New(trace.Config{}))
	if notifier != nil {
		// One delivery hook serves both consumers of per-delivery
		// outcomes: the tracer (terminal deliver/dead-letter/park spans,
		// end-to-end latency) and the durable journal (ack/park via
		// JournalSeq) — see deliveryOutcome.
		notifier.SetDeliveryHook(b.deliveryOutcome)
	}
	return b
}

// Engine exposes the underlying S-ToPSS engine (mode switching, stats).
func (b *Broker) Engine() core.PubSub { return b.engine }

// Tracer exposes the broker's publication tracer.
func (b *Broker) Tracer() *trace.Tracer { return b.tracer.Load() }

// SetTracer replaces the broker's tracer (overlay nodes and servers
// install one carrying the node name). Call before any traffic: IDs
// minted by the previous tracer stay resolvable only through it.
func (b *Broker) SetTracer(t *trace.Tracer) {
	if t != nil {
		b.tracer.Store(t)
	}
}

// deliveryOutcome is the notifier's DeliveryHook: it closes the
// publication's span chain for this subscriber and drives the durable
// ack/park state machine. Returning true claims a failed durable
// delivery for journal replay (skipping the dead-letter list).
func (b *Broker) deliveryOutcome(n notify.Notification, _ notify.Route, err error, attempts int) bool {
	tr := b.tracer.Load()
	sc := b.subCountersFor(n.SubID)
	if attempts > 1 {
		sc.retried.Add(uint64(attempts - 1))
	}
	if err == nil {
		sc.delivered.Add(1)
		sc.lastDelivery.Store(time.Now().UnixNano())
		if n.JournalSeq != 0 {
			b.ackDurable(n.SubID, n.JournalSeq)
		}
		tr.Outcome(n.PubID, trace.KindDeliver, n.Subscriber, uint64(n.SubID), time.Now(), 0, "")
		return false
	}
	parked := false
	if n.JournalSeq != 0 {
		parked = b.parkDurable(n.SubID, n.JournalSeq)
	}
	if !parked {
		sc.deadLettered.Add(1)
	}
	kind := trace.KindDeadLetter
	if parked {
		kind = trace.KindPark
	}
	tr.Outcome(n.PubID, kind, n.Subscriber, uint64(n.SubID), time.Now(), 0, err.Error())
	return parked
}

// Register adds or updates a client. When the client has a route and a
// notifier is attached, the route is installed.
func (b *Broker) Register(c Client) error {
	if c.Name == "" {
		return fmt.Errorf("broker: client needs a name")
	}
	if b.notifier != nil && c.Route.Transport != "" {
		if err := b.notifier.SetRoute(c.Name, c.Route); err != nil {
			return fmt.Errorf("broker: registering %q: %w", c.Name, err)
		}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.clients[c.Name] = c
	return nil
}

// Clients lists registered client names, sorted.
func (b *Broker) Clients() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.clients))
	for n := range b.clients {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Subscribe stores a subscription for the named client and returns its
// assigned ID.
func (b *Broker) Subscribe(client string, preds []message.Predicate) (message.SubID, error) {
	b.mu.Lock()
	if _, ok := b.clients[client]; !ok {
		b.mu.Unlock()
		return 0, fmt.Errorf("broker: %w %q", ErrUnknownClient, client)
	}
	b.nextID++
	id := b.nextID
	b.mu.Unlock()

	s := message.NewSubscription(id, client, preds...)
	if err := b.engine.Subscribe(s); err != nil {
		return 0, err
	}
	b.mu.Lock()
	b.subs[id] = client
	f := b.forwarder
	b.mu.Unlock()
	if f != nil {
		f.SubscriptionChanged(s, true)
	}
	return id, nil
}

// Unsubscribe removes a subscription. Only the owning client may remove
// it.
func (b *Broker) Unsubscribe(client string, id message.SubID) error {
	b.mu.Lock()
	owner, ok := b.subs[id]
	if !ok {
		f := b.forwarder
		b.mu.Unlock()
		// Not resident — it may be a detached durable subscription whose
		// record lives only in the store.
		sub, had, err := b.dropDetached(client, id)
		if err != nil {
			return err
		}
		if !had {
			return fmt.Errorf("broker: %w %d", ErrUnknownSubscription, id)
		}
		b.dropSubCounters(id)
		if f != nil {
			// Detach kept the overlay interest alive; a real unsubscribe
			// finally retracts it.
			f.SubscriptionChanged(sub, false)
		}
		return nil
	}
	if owner != client {
		b.mu.Unlock()
		return fmt.Errorf("broker: subscription %d belongs to %q, not %q: %w", id, owner, client, ErrNotOwner)
	}
	delete(b.subs, id)
	f := b.forwarder
	b.mu.Unlock()
	b.dropDurable(id)
	b.dropSubCounters(id)
	sub, had := b.engine.Subscription(id)
	b.engine.Unsubscribe(id)
	if f != nil && had {
		f.SubscriptionChanged(sub, false)
	}
	return nil
}

// SubscriptionsOf lists the subscription IDs of one client, ascending.
func (b *Broker) SubscriptionsOf(client string) []message.SubID {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []message.SubID
	for id, owner := range b.subs {
		if owner == client {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PublishResult reports one publication's outcome to the publisher.
type PublishResult struct {
	Matches  []message.SubID
	Notified int // notifications successfully enqueued
	Dropped  int // matches without a routable subscriber
	// Parked counts durable matches that could not be dispatched now
	// (no route, full queue): the journal retains them and catch-up
	// replay will redeliver — parked, not lost.
	Parked int
	// JournalSeq is the publication's journal sequence number (0 when
	// no journal is attached).
	JournalSeq uint64
	// PubID is the publication's federation-wide trace identity
	// (`broker#epoch/seq`); feed it to GET /api/trace/<pubID>.
	PubID string
}

// Publish runs the publication through the engine and dispatches one
// notification per match. Publishing does not require registration —
// candidates in the demo scenario submit resumes anonymously.
func (b *Broker) Publish(ev message.Event) (PublishResult, error) {
	tr := b.tracer.Load()
	pubID := tr.NewPubID()
	t0 := time.Now()
	tr.StampLocal(pubID, t0)
	res, err := b.publish(ev, pubID, false)
	if err == nil {
		tr.Observe(pubID, trace.KindPublish, t0, time.Since(t0))
	}
	return res, err
}

// DeliverRemote accepts a publication forwarded by a peer broker: it is
// matched and notified locally exactly like Publish, but is NOT offered
// to the forwarder again — the overlay layer owns inter-broker
// propagation (and its loop prevention).
func (b *Broker) DeliverRemote(ev message.Event) (PublishResult, error) {
	return b.publish(ev, "", true)
}

// DeliverRemotePub is DeliverRemote carrying the publication's
// federation-wide identity, so local matching/journal/delivery spans
// land on the trace the origin broker started. The overlay node stamps
// the trace (Tracer.StampRemote) before calling this.
func (b *Broker) DeliverRemotePub(ev message.Event, pubID string) (PublishResult, error) {
	return b.publish(ev, pubID, true)
}

func (b *Broker) publish(ev message.Event, pubID string, remote bool) (PublishResult, error) {
	tr := b.tracer.Load()
	tMatch := time.Now()
	res, err := b.engine.Publish(ev)
	if err != nil {
		return PublishResult{}, err
	}
	tr.Observe(pubID, trace.KindMatch, tMatch, time.Since(tMatch))
	out := PublishResult{Matches: res.Matches, PubID: pubID}

	// Journal append BEFORE notification fan-out: once the record is
	// in the log, a crash anywhere downstream cannot lose a durable
	// delivery — the cursor stays behind and replay redelivers. The
	// durable matches are registered as pending atomically with
	// sequence assignment (AppendFunc) so a concurrent ack of a later
	// seq can never advance a cursor over this one.
	b.mu.Lock()
	j := b.journal
	b.mu.Unlock()
	var durableIDs map[message.SubID]bool
	if j != nil {
		ids := b.durableMatches(res.Matches)
		tAppend := time.Now()
		out.JournalSeq, err = j.AppendTraced(ev, remote, pubID, func(seq uint64) {
			b.registerPending(ids, seq)
		})
		if err != nil {
			return PublishResult{}, fmt.Errorf("broker: journaling publication: %w", err)
		}
		tr.Observe(pubID, trace.KindJournal, tAppend, time.Since(tAppend))
		if len(ids) > 0 {
			durableIDs = make(map[message.SubID]bool, len(ids))
			for _, id := range ids {
				durableIDs[id] = true
			}
		}
	}

	b.mu.Lock()
	if remote {
		b.remoteDelivered++
	} else {
		b.published++
	}
	f := b.forwarder
	b.mu.Unlock()
	if f != nil && !remote {
		f.PublicationAccepted(ev, pubID)
	}

	if b.notifier == nil {
		return out, nil
	}
	mode := b.engine.Mode().String()
	for _, id := range res.Matches {
		sub, ok := b.engine.Subscription(id)
		if !ok {
			continue // raced with unsubscribe
		}
		b.subCountersFor(id).matched.Add(1)
		n := notify.Notification{
			SubID:      id,
			Subscriber: sub.Subscriber,
			Event:      ev,
			Mode:       mode,
			PubID:      pubID,
		}
		if durableIDs[id] {
			n.JournalSeq = out.JournalSeq
		}
		if _, routed := b.notifier.RouteOf(sub.Subscriber); !routed {
			if durableIDs[id] {
				// No endpoint right now: the journal keeps the event;
				// replay on reconnect redelivers it.
				b.parkDurable(id, out.JournalSeq)
				tr.Outcome(pubID, trace.KindPark, sub.Subscriber, uint64(id), time.Now(), 0, "no route")
				out.Parked++
				continue
			}
			out.Dropped++
			tr.Outcome(pubID, trace.KindUndeliverab, sub.Subscriber, uint64(id), time.Now(), 0, "no route")
			b.mu.Lock()
			b.dropsNoRoute++
			b.mu.Unlock()
			continue
		}
		if err := b.notifier.Dispatch(n); err != nil {
			if durableIDs[id] {
				b.parkDurable(id, out.JournalSeq)
				tr.Outcome(pubID, trace.KindPark, sub.Subscriber, uint64(id), time.Now(), 0, err.Error())
				out.Parked++
				continue
			}
			out.Dropped++
			tr.Outcome(pubID, trace.KindUndeliverab, sub.Subscriber, uint64(id), time.Now(), 0, err.Error())
			b.mu.Lock()
			b.dropsNoRoute++
			b.mu.Unlock()
			continue
		}
		out.Notified++
	}
	b.mu.Lock()
	b.notified += uint64(out.Notified)
	b.mu.Unlock()
	return out, nil
}

// Stats snapshots broker counters.
func (b *Broker) Stats() Stats {
	b.mu.Lock()
	s := Stats{
		Clients:               len(b.clients),
		Subscriptions:         len(b.subs),
		Durable:               len(b.durable),
		Published:             b.published,
		Notified:              b.notified,
		RemoteDelivered:       b.remoteDelivered,
		DropsNoRoute:          b.dropsNoRoute,
		RejectedNonConforming: b.rejectedNonConforming,
		Acked:                 b.acked,
		Parked:                b.parked,
		Replayed:              b.replayed,
		Detaches:              b.detaches,
		FaultedIn:             b.faultedIn,
		KBLocal:               b.kbLocal,
		KBRemote:              b.kbRemote,
	}
	rs := b.remoteStats
	j := b.journal
	st := b.store
	b.mu.Unlock()
	if j != nil {
		s.JournalEnabled = true
		s.Journal = j.Stats()
	}
	if st != nil {
		s.StoreEnabled = true
		s.Store = st.Stats()
		s.Detached = s.Store.Records
	}
	if b.notifier != nil {
		s.Notify = b.notifier.Stats()
	}
	s.Engine = b.engine.Stats()
	if rs != nil {
		s.Remote = rs()
	}
	tr := b.tracer.Load()
	s.Trace = tr.Stats()
	s.Stages = tr.Stages()
	return s
}
