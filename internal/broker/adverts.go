package broker

import (
	"fmt"

	"stopss/internal/matching"
	"stopss/internal/message"
)

// Advertisement support: publishers may declare their event space; the
// broker then (a) rejects publications that leave the advertised space
// and (b) can report which subscriptions a publisher could ever match —
// the routing information a distributed deployment would ship to peer
// brokers.

// Advertise records (or replaces) the advertisement of a registered
// client.
func (b *Broker) Advertise(client string, preds []message.Predicate) error {
	b.mu.Lock()
	if _, ok := b.clients[client]; !ok {
		b.mu.Unlock()
		return fmt.Errorf("broker: %w %q", ErrUnknownClient, client)
	}
	a := matching.NewAdvertisement(client, preds...)
	if err := a.Validate(); err != nil {
		b.mu.Unlock()
		return fmt.Errorf("broker: advertisement of %q: %w", client, err)
	}
	if b.adverts == nil {
		b.adverts = make(map[string]matching.Advertisement)
	}
	b.adverts[client] = a
	f := b.forwarder
	b.mu.Unlock()
	if f != nil {
		f.AdvertisementChanged(a, true)
	}
	return nil
}

// Unadvertise removes a client's advertisement; subsequent publications
// from it are unconstrained again.
func (b *Broker) Unadvertise(client string) {
	b.mu.Lock()
	a, had := b.adverts[client]
	delete(b.adverts, client)
	f := b.forwarder
	b.mu.Unlock()
	if f != nil && had {
		f.AdvertisementChanged(a, false)
	}
}

// AdvertisementOf returns the client's advertisement.
func (b *Broker) AdvertisementOf(client string) (matching.Advertisement, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a, ok := b.adverts[client]
	return a, ok
}

// PublishFrom publishes on behalf of a named client. When the client has
// an advertisement, the event must conform to it; non-conforming
// publications are rejected before entering the pipeline.
func (b *Broker) PublishFrom(client string, ev message.Event) (PublishResult, error) {
	b.mu.Lock()
	a, advertised := b.adverts[client]
	b.mu.Unlock()
	if advertised && !a.ConformsTo(ev) {
		b.mu.Lock()
		b.rejectedNonConforming++
		b.mu.Unlock()
		return PublishResult{}, fmt.Errorf("broker: publication %v leaves the advertised space of %q", ev, client)
	}
	return b.Publish(ev)
}

// OverlappingSubscriptions reports the subscriptions a publisher could
// ever match, given its advertisement — ascending IDs. Without an
// advertisement every subscription is reachable.
func (b *Broker) OverlappingSubscriptions(client string) ([]message.SubID, error) {
	b.mu.Lock()
	a, advertised := b.adverts[client]
	ids := make([]message.SubID, 0, len(b.subs))
	for id := range b.subs {
		ids = append(ids, id)
	}
	b.mu.Unlock()
	sortSubIDs(ids)
	if !advertised {
		return ids, nil
	}
	var out []message.SubID
	for _, id := range ids {
		sub, ok := b.engine.Subscription(id)
		if !ok {
			continue
		}
		// Overlap is computed against the canonicalized (indexed) form
		// when in semantic mode, so synonym-level overlap is honoured.
		canon, _ := b.engine.Stage().ProcessSubscription(sub)
		canonAdv, _ := b.engine.Stage().ProcessSubscription(
			message.Subscription{ID: 0, Preds: a.Preds})
		if matching.Overlaps(matching.NewAdvertisement(client, canonAdv.Preds...), canon) {
			out = append(out, id)
		}
	}
	return out, nil
}

func sortSubIDs(ids []message.SubID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j-1] > ids[j]; j-- {
			ids[j-1], ids[j] = ids[j], ids[j-1]
		}
	}
}
