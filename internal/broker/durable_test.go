package broker

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"stopss/internal/journal"
	"stopss/internal/message"
	"stopss/internal/notify"
	"stopss/internal/sublang"
)

// memTransport is an in-memory notification endpoint with an on/off
// switch, for exercising park/replay without sockets.
type memTransport struct {
	mu      sync.Mutex
	offline bool
	seen    []notify.Notification
}

func (m *memTransport) Name() string { return "mem" }

func (m *memTransport) Send(_ string, n notify.Notification) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.offline {
		return errors.New("mem: endpoint offline")
	}
	m.seen = append(m.seen, n)
	return nil
}

func (m *memTransport) Close() error { return nil }

func (m *memTransport) setOffline(v bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.offline = v
}

// countSeq returns how many deliveries carried the given journal seq.
func (m *memTransport) countSeq(seq uint64) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, d := range m.seen {
		if d.JournalSeq == seq {
			n++
		}
	}
	return n
}

func (m *memTransport) total() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.seen)
}

type durableRig struct {
	b  *Broker
	nt *notify.Engine
	j  *journal.Journal
	tr *memTransport
}

func newDurableRig(t *testing.T, dir string) *durableRig {
	t.Helper()
	tr := &memTransport{}
	nt, err := notify.NewEngine(notify.Config{Workers: 2, MaxRetries: 1, Backoff: time.Millisecond}, tr)
	if err != nil {
		t.Fatal(err)
	}
	j, err := journal.Open(journal.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	b := New(jobsEngine(t), nt)
	b.AttachJournal(j)
	t.Cleanup(func() {
		nt.Close()
		_ = j.Close() // may already be closed by the scenario
	})
	return &durableRig{b: b, nt: nt, j: j, tr: tr}
}

func (r *durableRig) subscribeDurable(t *testing.T, client, sub string) message.SubID {
	t.Helper()
	if err := r.b.Register(Client{Name: client, Route: notify.Route{Transport: "mem", Addr: client}}); err != nil {
		t.Fatal(err)
	}
	preds, err := sublang.ParseSubscription(sub)
	if err != nil {
		t.Fatal(err)
	}
	id, err := r.b.SubscribeDurable(client, preds)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func (r *durableRig) publish(t *testing.T, event string) PublishResult {
	t.Helper()
	ev, err := sublang.ParseEvent(event)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.b.Publish(ev)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func waitCursor(t *testing.T, b *Broker, id message.SubID, want uint64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cur, ok := b.DurableCursor(id); ok && cur >= want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	cur, _ := b.DurableCursor(id)
	t.Fatalf("cursor stuck at %d, want >= %d", cur, want)
}

func TestDurableAckAdvancesCursor(t *testing.T) {
	r := newDurableRig(t, t.TempDir())
	id := r.subscribeDurable(t, "acme", "(university = Toronto)")

	for i := 0; i < 3; i++ {
		res := r.publish(t, "(school, Toronto)")
		if res.JournalSeq == 0 {
			t.Fatal("publication not journaled")
		}
		if res.Notified != 1 {
			t.Fatalf("notified = %d, want 1", res.Notified)
		}
	}
	if !r.nt.Drain(2 * time.Second) {
		t.Fatal("notifier did not drain")
	}
	waitCursor(t, r.b, id, 3)
	// The cursor reached the journal's own persistence layer too.
	if cur, ok := r.j.Cursor("sub-" + "1"); !ok || cur != 3 {
		t.Fatalf("journal cursor = %d,%v want 3", cur, ok)
	}
	st := r.b.Stats()
	if st.Durable != 1 || st.Acked != 3 || !st.JournalEnabled {
		t.Fatalf("stats = Durable %d Acked %d JournalEnabled %v", st.Durable, st.Acked, st.JournalEnabled)
	}
	if st.Journal.Appends != 3 {
		t.Fatalf("journal appends = %d, want 3", st.Journal.Appends)
	}
}

func TestDurableParkAndResume(t *testing.T) {
	r := newDurableRig(t, t.TempDir())
	id := r.subscribeDurable(t, "acme", "(university = Toronto)")

	r.publish(t, "(school, Toronto)")
	if !r.nt.Drain(2 * time.Second) {
		t.Fatal("drain 1")
	}
	waitCursor(t, r.b, id, 1)

	// Endpoint goes offline: the next publications exhaust retries and
	// park instead of dead-lettering.
	r.tr.setOffline(true)
	r.publish(t, "(school, Toronto)")
	r.publish(t, "(school, Toronto)")
	if !r.nt.Drain(2 * time.Second) {
		t.Fatal("drain 2")
	}
	if dead := r.nt.DeadLetters(); len(dead) != 0 {
		t.Fatalf("durable failures must park, not dead-letter: %+v", dead)
	}
	st := r.b.Stats()
	if st.Parked != 2 {
		t.Fatalf("parked = %d, want 2", st.Parked)
	}
	if cur, _ := r.b.DurableCursor(id); cur != 1 {
		t.Fatalf("cursor moved to %d despite parked deliveries", cur)
	}

	// Publication while parked that does NOT match must not disturb
	// anything.
	r.publish(t, "(school, Waterloo)")

	// Endpoint back: resume replays exactly the parked records.
	r.tr.setOffline(false)
	n, err := r.b.ResumeDurable("acme", id)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("resume redispatched %d, want 2", n)
	}
	if !r.nt.Drain(2 * time.Second) {
		t.Fatal("drain 3")
	}
	// Cursor clears the parked seqs (3); the non-matching seq 4 was
	// never dispatched to this sub, so the cursor rests below it and a
	// future replay merely re-filters it.
	waitCursor(t, r.b, id, 3)
	if got := r.tr.countSeq(2) + r.tr.countSeq(3); got != 2 {
		t.Fatalf("parked seqs delivered %d times total, want 2", got)
	}
	if st := r.b.Stats(); st.Replayed != 2 {
		t.Fatalf("replayed = %d, want 2", st.Replayed)
	}
}

func TestDurableCrashRestartCatchUp(t *testing.T) {
	dir := t.TempDir()
	r := newDurableRig(t, dir)
	id := r.subscribeDurable(t, "acme", "(university = Toronto)")

	// Snapshot the subscription base up front (cursor 0), as a
	// periodic snapshotter would.
	var snap bytes.Buffer
	if err := r.b.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}

	// Two delivered+acked, then the endpoint dies and two park.
	r.publish(t, "(school, Toronto)")
	r.publish(t, "(school, Toronto)")
	if !r.nt.Drain(2 * time.Second) {
		t.Fatal("drain 1")
	}
	waitCursor(t, r.b, id, 2)
	r.tr.setOffline(true)
	r.publish(t, "(school, Toronto)")
	r.publish(t, "(school, Toronto)")
	if !r.nt.Drain(2 * time.Second) {
		t.Fatal("drain 2")
	}
	if err := r.j.Close(); err != nil { // crash: the journal survives on disk
		t.Fatal(err)
	}

	// New incarnation over the same journal dir, restored from the
	// OLD snapshot: the journal's persisted cursor (2) must win over
	// the snapshot's (0), and catch-up must redeliver exactly the
	// unacked tail.
	r2 := newDurableRig(t, dir)
	if err := r2.b.Restore(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	if cur, ok := r2.b.DurableCursor(id); !ok || cur != 2 {
		t.Fatalf("restored cursor = %d,%v want 2 (journal wins over snapshot)", cur, ok)
	}
	n, err := r2.b.CatchUp()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("catch-up redispatched %d, want 2", n)
	}
	if !r2.nt.Drain(2 * time.Second) {
		t.Fatal("drain 3")
	}
	waitCursor(t, r2.b, id, 4)
	if got := r2.tr.countSeq(3) + r2.tr.countSeq(4); got != 2 {
		t.Fatalf("unacked tail delivered %d times, want 2", got)
	}
	if got := r2.tr.countSeq(1) + r2.tr.countSeq(2); got != 0 {
		t.Fatalf("acked records redelivered %d times after restart", got)
	}
}

func TestDurableNeedsJournal(t *testing.T) {
	b := New(jobsEngine(t), nil)
	if err := b.Register(Client{Name: "acme"}); err != nil {
		t.Fatal(err)
	}
	preds, _ := sublang.ParseSubscription("(university = Toronto)")
	if _, err := b.SubscribeDurable("acme", preds); err == nil {
		t.Fatal("durable subscribe without a journal succeeded")
	}
}

func TestDurableNoRouteParksInsteadOfDropping(t *testing.T) {
	r := newDurableRig(t, t.TempDir())
	// Register WITHOUT a route: durable matches park instead of being
	// counted as drops.
	if err := r.b.Register(Client{Name: "acme"}); err != nil {
		t.Fatal(err)
	}
	preds, err := sublang.ParseSubscription("(university = Toronto)")
	if err != nil {
		t.Fatal(err)
	}
	id, err := r.b.SubscribeDurable("acme", preds)
	if err != nil {
		t.Fatal(err)
	}
	res := r.publish(t, "(school, Toronto)")
	if res.Parked != 1 || res.Dropped != 0 {
		t.Fatalf("result = %+v, want Parked 1 / Dropped 0", res)
	}
	st := r.b.Stats()
	if st.DropsNoRoute != 0 || st.Parked != 1 {
		t.Fatalf("stats = DropsNoRoute %d Parked %d", st.DropsNoRoute, st.Parked)
	}
	// Route appears (subscriber finally registers an endpoint): resume
	// delivers the parked publication.
	if err := r.b.Register(Client{Name: "acme", Route: notify.Route{Transport: "mem", Addr: "acme"}}); err != nil {
		t.Fatal(err)
	}
	if n, err := r.b.ResumeDurable("acme", id); err != nil || n != 1 {
		t.Fatalf("resume = %d,%v want 1", n, err)
	}
	if !r.nt.Drain(2 * time.Second) {
		t.Fatal("drain")
	}
	if r.tr.total() != 1 {
		t.Fatalf("delivered %d, want 1", r.tr.total())
	}
}

func TestUnsubscribeDropsDurableState(t *testing.T) {
	r := newDurableRig(t, t.TempDir())
	id := r.subscribeDurable(t, "acme", "(university = Toronto)")
	if !r.b.Durable(id) {
		t.Fatal("subscription not durable")
	}
	if err := r.b.Unsubscribe("acme", id); err != nil {
		t.Fatal(err)
	}
	if r.b.Durable(id) {
		t.Fatal("durable state survived unsubscribe")
	}
	if _, ok := r.j.Cursor("sub-1"); ok {
		t.Fatal("journal cursor survived unsubscribe")
	}
	if _, err := r.b.ResumeDurable("acme", id); err == nil {
		t.Fatal("resume of removed subscription succeeded")
	}
}

func TestDeliverRemoteJournalsToo(t *testing.T) {
	r := newDurableRig(t, t.TempDir())
	id := r.subscribeDurable(t, "acme", "(university = Toronto)")
	ev, err := sublang.ParseEvent("(school, Toronto)")
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.b.DeliverRemote(ev)
	if err != nil {
		t.Fatal(err)
	}
	if res.JournalSeq != 1 {
		t.Fatalf("remote publication not journaled: %+v", res)
	}
	if !r.nt.Drain(2 * time.Second) {
		t.Fatal("drain")
	}
	waitCursor(t, r.b, id, 1)
	// The journaled record remembers its federation origin.
	var remote bool
	if err := r.j.Scan(1, func(rec journal.Record) error {
		remote = rec.Remote
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !remote {
		t.Fatal("remote flag lost in the journal")
	}
}
