package overlay

import (
	"io"
	"net"
	"time"
)

// Conn is one bidirectional byte stream between two overlay nodes. It
// is the minimal surface the overlay needs from a connection: framed
// reads and writes, teardown, a deadline for the handshake, and an
// endpoint description for log lines. *net.TCPConn satisfies it via
// tcpConn; internal/sim provides an in-process implementation.
type Conn interface {
	io.Reader
	io.Writer
	Close() error
	// SetDeadline bounds subsequent reads and writes; the zero time
	// clears it. Transports without a meaningful clock may treat it as
	// a no-op — the overlay uses deadlines only to bound the hello
	// exchange against peers that connect and go silent.
	SetDeadline(t time.Time) error
	// RemoteAddr describes the peer endpoint for diagnostics.
	RemoteAddr() string
}

// Listener accepts inbound overlay connections.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	// Addr is the bound address peers can dial, resolved (a TCP
	// listener on ":0" reports the assigned port).
	Addr() string
}

// Transport creates overlay connections. Node is programmed entirely
// against this interface: TCP() is the production implementation, and
// test harnesses substitute deterministic in-process transports to run
// large topologies and fault scenarios without sockets.
type Transport interface {
	// Listen binds addr for inbound links; the address format is
	// transport-specific.
	Listen(addr string) (Listener, error)
	// Dial opens one connection to addr, giving up after timeout. A
	// failed dial is retried by the caller (Node.Dial), so Dial itself
	// must not retry.
	Dial(addr string, timeout time.Duration) (Conn, error)
}

// TCP returns the production transport: real TCP sockets via the net
// package. It is stateless; the zero value is usable and all callers
// may share one.
func TCP() Transport { return tcpTransport{} }

type tcpTransport struct{}

func (tcpTransport) Listen(addr string) (Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return tcpListener{ln}, nil
}

func (tcpTransport) Dial(addr string, timeout time.Duration) (Conn, error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return tcpConn{c}, nil
}

type tcpListener struct{ ln net.Listener }

func (l tcpListener) Accept() (Conn, error) {
	c, err := l.ln.Accept()
	if err != nil {
		return nil, err
	}
	return tcpConn{c}, nil
}

func (l tcpListener) Close() error { return l.ln.Close() }
func (l tcpListener) Addr() string { return l.ln.Addr().String() }

type tcpConn struct{ net.Conn }

func (c tcpConn) RemoteAddr() string { return c.Conn.RemoteAddr().String() }
