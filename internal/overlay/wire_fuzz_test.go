package overlay

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"runtime"
	"testing"

	"stopss/internal/message"
)

// frameBytes encodes one frame for seeding the corpus.
func frameBytes(t *testing.F, f Frame) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := writeFrame(&buf, f); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzFrame drives readFrame with arbitrary bytes. Four guarantees: it
// never panics, it never allocates beyond the frame cap no matter what
// the length prefix claims, any frame it accepts survives a JSON
// encode→decode round trip unchanged (decode∘encode is the identity on
// decoded frames), and the same frame pushed through the BINARY codec
// (struct→binary→struct) is indistinguishable — by canonical JSON —
// from the JSON round trip, so a mixed-version cluster cannot disagree
// about a frame's meaning.
func FuzzFrame(f *testing.F) {
	sub := message.NewSubscription(7, "acme",
		message.Pred("x", message.OpGe, message.Int(10)),
		message.Pred("city", message.OpEq, message.String("Toronto")))
	ev := message.E("x", 42, "city", "Toronto")
	f.Add(frameBytes(f, Frame{Type: frameHello, Name: "broker-a", Codec: codecBinary}))
	f.Add(frameBytes(f, Frame{Type: frameSub, Origin: "c", Hops: []string{"c", "b"}, Sub: &sub}))
	f.Add(frameBytes(f, Frame{Type: frameUnsub, Origin: "c", SubID: 7, Hops: []string{"c"}}))
	f.Add(frameBytes(f, Frame{Type: frameAdv, Origin: "a", Client: "p",
		Preds: []message.Predicate{message.Between("x", message.Int(0), message.Int(9))}}))
	f.Add(frameBytes(f, Frame{Type: framePub, Origin: "a", PubID: "a#0/1", Event: &ev, Hops: []string{"a"}}))
	// Malformed length prefixes: zero, oversized, truncated body.
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 'x'})
	f.Add([]byte{0, 0, 4, 0, '{', '}'})
	f.Add(binary.BigEndian.AppendUint32(nil, maxFrameSize+1))

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := readFrame(bufio.NewReader(bytes.NewReader(data)), nil)
		if err != nil {
			if len(data) >= 4 {
				if n := binary.BigEndian.Uint32(data[:4]); n > maxFrameSize && !errors.Is(err, errFrameTooLarge) {
					t.Fatalf("length %d rejected with %v, want errFrameTooLarge", n, err)
				}
			}
			return // malformed input rejected: that is the contract
		}
		if fr.Type == "" {
			t.Fatal("readFrame accepted a frame without a type")
		}

		var buf bytes.Buffer
		if err := writeFrame(&buf, fr); err != nil {
			// JSON string escaping can expand a near-cap body past the
			// cap on re-encode; only the size limit excuses a failure.
			if errors.Is(err, errFrameTooLarge) {
				return
			}
			t.Fatalf("re-encoding an accepted frame: %v", err)
		}
		fr2, err := readFrame(bufio.NewReader(&buf), nil)
		if err != nil {
			t.Fatalf("re-decoding an accepted frame: %v", err)
		}
		// Compare via canonical JSON: the first decode may normalize
		// arbitrary input, but a decoded frame must be a fixpoint.
		b1, err := json.Marshal(fr)
		if err != nil {
			t.Fatalf("marshalling decoded frame: %v", err)
		}
		b2, err := json.Marshal(fr2)
		if err != nil {
			t.Fatalf("marshalling re-decoded frame: %v", err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("round trip not stable:\n first: %s\nsecond: %s", b1, b2)
		}

		// Cross-codec leg: the binary codec must agree with JSON on
		// every frame JSON accepts. An arbitrary Type string that is
		// not a real frame type has no binary type code — that is the
		// only excusable encode failure (the overlay never routes such
		// frames; handleFrame ignores unknown types).
		var bw message.BWriter
		bw.Dict = message.NewIntern()
		if err := appendFrameBinary(&bw, fr); err != nil {
			if frameTypeCode[fr.Type] == 0 && errors.Is(err, errFrameEncode) {
				return
			}
			t.Fatalf("binary-encoding an accepted frame: %v", err)
		}
		fr3, err := decodeFrameBinary(bw.Buf, message.NewIntern())
		if err != nil {
			t.Fatalf("binary round trip of an accepted frame failed: %v\nframe: %s", err, b1)
		}
		b3, err := json.Marshal(fr3)
		if err != nil {
			t.Fatalf("marshalling binary-decoded frame: %v", err)
		}
		if !bytes.Equal(b1, b3) {
			t.Fatalf("binary and JSON codecs disagree:\n  json:   %s\n  binary: %s", b1, b3)
		}
	})
}

// TestReadFrameBoundedAllocation pins the hardening FuzzFrame relies
// on: a forged length prefix claiming the full 1 MiB backed by no data
// must not allocate the claimed size up front. Both framings are
// probed; the binary framing's varint prefix can claim the cap too.
func TestReadFrameBoundedAllocation(t *testing.T) {
	jsonHdr := binary.BigEndian.AppendUint32(nil, maxFrameSize)
	binHdr := binary.AppendUvarint(nil, maxFrameSize)
	dict := message.NewIntern()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	const rounds = 100
	for i := 0; i < rounds; i++ {
		if _, err := readFrame(bufio.NewReader(bytes.NewReader(jsonHdr)), nil); err == nil {
			t.Fatal("truncated 1MiB JSON frame must not decode")
		}
		if _, err := readFrameBinary(bufio.NewReader(bytes.NewReader(binHdr)), nil, dict); err == nil {
			t.Fatal("truncated 1MiB binary frame must not decode")
		}
	}
	runtime.ReadMemStats(&after)
	// Pre-hardening, each forged header committed the full claimed MiB
	// (rounds × 1 MiB total per framing); incremental allocation stays
	// around the initial chunk per call. A quarter of the unbounded cost
	// is the dividing line, leaving headroom for race-detector and
	// runtime noise.
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 2*rounds*maxFrameSize/4 {
		t.Fatalf("%d forged 1MiB headers allocated %d bytes; prefix-driven allocation is unbounded", rounds, grew)
	}
}
