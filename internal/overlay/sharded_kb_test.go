package overlay

import (
	"fmt"
	"sync"
	"testing"

	"stopss/internal/core"
	"stopss/internal/knowledge"
	"stopss/internal/message"
	"stopss/internal/semantic"
)

func newKBPool(t testing.TB, shards int) (*ShardedEngine, *knowledge.Base) {
	t.Helper()
	base := knowledge.NewBase(nil, nil, nil)
	stage := base.Stage(semantic.FullConfig())
	pool := NewSharded(shards, func(int) *core.Engine {
		return core.NewEngine(stage)
	}, WithKnowledgeBase(base))
	t.Cleanup(pool.Close)
	return pool, base
}

func TestShardedApplyKnowledge(t *testing.T) {
	pool, _ := newKBPool(t, 4)

	// Enough subscriptions to land on several shards; every one of them
	// mentions "job", so all must be re-indexed by the synonym delta.
	const n = 32
	for i := 1; i <= n; i++ {
		s := message.NewSubscription(message.SubID(i), fmt.Sprintf("c%d", i),
			message.Pred("job", message.OpEq, message.String("dev")))
		if err := pool.Subscribe(s); err != nil {
			t.Fatal(err)
		}
	}
	res, err := pool.Publish(message.E("position", "dev"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 0 {
		t.Fatalf("pre-delta matches: %v", res.Matches)
	}

	rep, err := pool.ApplyKnowledge(knowledge.Delta{
		Origin: "t", Epoch: "e1", Seq: 1,
		Op: knowledge.OpAddSynonym, Root: "position", Terms: []string{"job"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Applied || rep.Reindexed != n {
		t.Fatalf("report: %+v, want %d re-indexed", rep, n)
	}

	res, err = pool.Publish(message.E("position", "dev"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != n {
		t.Fatalf("post-delta matches: %d, want %d", len(res.Matches), n)
	}

	st := pool.Stats()
	if st.KBDeltas != 1 || st.KBReindexed != uint64(n) || st.KBVersion == "" {
		t.Fatalf("stats: KBDeltas=%d KBReindexed=%d KBVersion=%q", st.KBDeltas, st.KBReindexed, st.KBVersion)
	}
}

// TestShardedApplyKnowledgeConcurrentPublish hammers publishes while
// deltas land; run with -race. Matching must be all-or-nothing per
// publication: an event published in terms of synonyms applied so far
// always matches (exclusion means no event observes new stage + old
// index or vice versa).
func TestShardedApplyKnowledgeConcurrentPublish(t *testing.T) {
	pool, _ := newKBPool(t, 4)
	if err := pool.Subscribe(message.NewSubscription(1, "c1",
		message.Pred("position", message.OpEq, message.String("dev")))); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// The canonical form always matches, delta or not.
				res, err := pool.Publish(message.E("position", "dev"))
				if err != nil {
					t.Error(err)
					return
				}
				if len(res.Matches) != 1 {
					t.Errorf("canonical publish matched %v", res.Matches)
					return
				}
			}
		}()
	}
	for i := 1; i <= 50; i++ {
		if _, err := pool.ApplyKnowledge(knowledge.Delta{
			Origin: "t", Epoch: "e1", Seq: uint64(i),
			Op: knowledge.OpAddSynonym, Root: "position", Terms: []string{fmt.Sprintf("syn%d", i)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	// Every synonym added mid-storm now routes to the subscription.
	for i := 1; i <= 50; i++ {
		res, err := pool.Publish(message.E(fmt.Sprintf("syn%d", i), "dev"))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Matches) != 1 {
			t.Fatalf("syn%d matched %v", i, res.Matches)
		}
	}
}

// TestShardedApplyKnowledgeOutOfOrder: an out-of-merge-order delta
// refolds the pool-level base but still re-indexes incrementally —
// the refold's changed-term diff reaches every shard, and only the
// subscriptions mentioning a changed term pass through the matcher.
func TestShardedApplyKnowledgeOutOfOrder(t *testing.T) {
	pool, _ := newKBPool(t, 4)
	const n = 16
	for i := 1; i <= n; i++ {
		attr := "job"
		if i%2 == 0 {
			attr = "untouched"
		}
		s := message.NewSubscription(message.SubID(i), fmt.Sprintf("c%d", i),
			message.Pred(attr, message.OpEq, message.String("dev")))
		if err := pool.Subscribe(s); err != nil {
			t.Fatal(err)
		}
	}

	// In-order delta from origin "b", then origin "a" at the same
	// sequence number: "a" sorts before the tail and forces a refold.
	if _, err := pool.ApplyKnowledge(knowledge.Delta{
		Origin: "b", Epoch: "e1", Seq: 1,
		Op: knowledge.OpAddSynonym, Root: "salary", Terms: []string{"pay"},
	}); err != nil {
		t.Fatal(err)
	}
	rep, err := pool.ApplyKnowledge(knowledge.Delta{
		Origin: "a", Epoch: "e1", Seq: 1,
		Op: knowledge.OpAddSynonym, Root: "position", Terms: []string{"job"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Refolded || rep.FullReindex {
		t.Fatalf("out-of-order report: %+v", rep)
	}
	if rep.Reindexed != n/2 {
		t.Fatalf("re-indexed %d, want the %d subscriptions mentioning %q", rep.Reindexed, n/2, "job")
	}
	if len(rep.Affected) != 1 || rep.Affected[0] != "job" {
		t.Fatalf("affected = %v, want [job]", rep.Affected)
	}

	res, err := pool.Publish(message.E("position", "dev"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != n/2 {
		t.Fatalf("post-refold matches: %d, want %d", len(res.Matches), n/2)
	}
	if st := pool.Stats(); st.KBFullReindexes != 0 {
		t.Fatalf("full re-indexes: %d", st.KBFullReindexes)
	}
}
