package overlay

import (
	"testing"

	"stopss/internal/core"
	"stopss/internal/knowledge"
	"stopss/internal/message"
	"stopss/internal/semantic"
)

// TestShardedExpansionCache: the pool memoizes semantic expansions per
// event signature, and a synonym delta invalidates exactly the entries
// whose raw terms it touched — a stale entry here would keep matching
// the pre-delta vocabulary.
func TestShardedExpansionCache(t *testing.T) {
	pool, _ := newKBPool(t, 2)
	if err := pool.Subscribe(message.NewSubscription(1, "c1",
		message.Pred("position", message.OpEq, message.String("dev")))); err != nil {
		t.Fatal(err)
	}

	// "job" is unknown vocabulary pre-delta: no match, and the (miss,
	// hit) pair proves the second publish was served from the memo.
	ev := message.E("job", "dev")
	for i := 0; i < 2; i++ {
		res, err := pool.Publish(ev)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Matches) != 0 {
			t.Fatalf("publish %d: pre-delta matches %v", i, res.Matches)
		}
	}
	st := pool.Stats()
	if st.ExpansionMisses != 1 || st.ExpansionHits != 1 || st.ExpansionSize != 1 {
		t.Fatalf("warm-up stats: misses=%d hits=%d size=%d, want 1/1/1",
			st.ExpansionMisses, st.ExpansionHits, st.ExpansionSize)
	}

	// The delta's changed-term set is {"job"}; the cached entry mentions
	// "job" as written and must be dropped, so the re-published event is
	// re-expanded under the new stage and now canonicalizes to
	// "position" — which the subscription matches.
	if _, err := pool.ApplyKnowledge(knowledge.Delta{
		Origin: "t", Epoch: "e1", Seq: 1,
		Op: knowledge.OpAddSynonym, Root: "position", Terms: []string{"job"},
	}); err != nil {
		t.Fatal(err)
	}
	res, err := pool.Publish(ev)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 || res.Matches[0] != 1 {
		t.Fatalf("post-delta matches: %v, want [1] (stale expansion served?)", res.Matches)
	}
	if st = pool.Stats(); st.ExpansionInvalidated == 0 {
		t.Fatalf("synonym delta invalidated nothing: %+v", st)
	}

	// Hierarchy deltas restructure the expansion stages and flush the
	// whole memo.
	before := pool.Stats().ExpansionSize
	if before == 0 {
		t.Fatal("expected a repopulated cache before the is-a delta")
	}
	if _, err := pool.ApplyKnowledge(knowledge.Delta{
		Origin: "t", Epoch: "e1", Seq: 2,
		Op: knowledge.OpAddIsA, Child: "dev", Parent: "engineer",
	}); err != nil {
		t.Fatal(err)
	}
	if st = pool.Stats(); st.ExpansionSize != 0 {
		t.Fatalf("is-a delta left %d cached expansions, want a flush", st.ExpansionSize)
	}
}

// TestShardedExpansionCacheDisabled: capacity 0 turns memoization off;
// every publish runs the stage and no cache counters move.
func TestShardedExpansionCacheDisabled(t *testing.T) {
	base := knowledge.NewBase(nil, nil, nil)
	stage := base.Stage(semantic.FullConfig())
	pool := NewSharded(2, func(int) *core.Engine {
		return core.NewEngine(stage)
	}, WithKnowledgeBase(base), WithShardExpansionCache(0))
	t.Cleanup(pool.Close)

	ev := message.E("job", "dev")
	for i := 0; i < 3; i++ {
		if _, err := pool.Publish(ev); err != nil {
			t.Fatal(err)
		}
	}
	st := pool.Stats()
	if st.ExpansionHits != 0 || st.ExpansionMisses != 0 || st.ExpansionSize != 0 {
		t.Fatalf("disabled cache moved counters: %+v", st)
	}
	if st.Events != 3 {
		t.Fatalf("events: %d, want 3", st.Events)
	}
}
