package overlay

import (
	"encoding/json"
	"fmt"

	"stopss/internal/knowledge"
	"stopss/internal/message"
	"stopss/internal/trace"
)

// Binary frame codec (wire protocol version 1, DESIGN §6). A binary
// frame on the wire is a uvarint body length followed by the body:
//
//	type byte · presence mask (uvarint) · present fields in fixed order
//
// Fields reuse the message-layer binary codecs; recurring strings
// (broker names, attributes, terms) go through a per-link, per-direction
// interning dictionary that both ends grow deterministically, so after
// warm-up a hop name or attribute costs one or two bytes. Knowledge
// deltas stay as an embedded JSON blob: they are rare control-plane
// traffic with a deeply nested shape, not worth a hand-rolled codec.
//
// The codec is negotiated at hello: the hello frame always travels in
// the legacy length-prefixed JSON framing and advertises the sender's
// maximum supported version in Frame.Codec; each side then uses
// min(local, peer) for everything after the hello. Old peers omit the
// field (JSON decoders ignore unknown keys), which reads as version 0 —
// pure JSON framing — so mixed clusters keep working.
const (
	codecJSON   = 0 // legacy: 4-byte big-endian length + JSON body
	codecBinary = 1 // uvarint length + binary body, interned strings
	// codecOps adds the ops frame (broker health gossip) to the binary
	// framing. Negotiation is unchanged — min(local, peer) — so a v1
	// peer never receives an ops frame in binary form (its decoder
	// rejects unknown type codes as corruption); senders gate on the
	// negotiated link version (Node.sendOps).
	codecOps = 2
)

// Binary frame type codes (never 0, so a zeroed byte is malformed).
var frameTypeCode = map[string]byte{
	frameHello: 1,
	frameSub:   2,
	frameUnsub: 3,
	frameAdv:   4,
	frameUnadv: 5,
	framePub:   6,
	frameKB:    7,
	frameTrace: 8,
	frameOps:   9,
}

var frameTypeName = map[byte]string{
	1: frameHello,
	2: frameSub,
	3: frameUnsub,
	4: frameAdv,
	5: frameUnadv,
	6: framePub,
	7: frameKB,
	8: frameTrace,
	9: frameOps,
}

// Presence-mask bits, one per Frame payload field, in encode order. A
// field is present iff it would survive the JSON codec's omitempty —
// the two codecs must agree on what an absent field means for the
// cross-codec round-trip guarantee to hold.
const (
	bitOrigin = 1 << iota
	bitHops
	bitName
	bitSub
	bitSubID
	bitClient
	bitPreds
	bitEvent
	bitPubID
	bitTrace
	bitKB
	bitCodec
	bitOps

	maskKnown = bitOps<<1 - 1
)

// appendFrameBinary encodes f onto w. On error the caller must roll
// back w's dictionary to its pre-call mark — partially encoded literals
// have claimed ids the peer will never learn.
func appendFrameBinary(w *message.BWriter, f Frame) error {
	tc := frameTypeCode[f.Type]
	if tc == 0 {
		return fmt.Errorf("%w: unknown frame type %q", errFrameEncode, f.Type)
	}
	w.Byte(tc)

	var mask uint64
	if f.Origin != "" {
		mask |= bitOrigin
	}
	if len(f.Hops) > 0 {
		mask |= bitHops
	}
	if f.Name != "" {
		mask |= bitName
	}
	if f.Sub != nil {
		mask |= bitSub
	}
	if f.SubID != 0 {
		mask |= bitSubID
	}
	if f.Client != "" {
		mask |= bitClient
	}
	if len(f.Preds) > 0 {
		mask |= bitPreds
	}
	if f.Event != nil {
		mask |= bitEvent
	}
	if f.PubID != "" {
		mask |= bitPubID
	}
	if len(f.Trace) > 0 {
		mask |= bitTrace
	}
	if f.KB != nil {
		mask |= bitKB
	}
	if f.Codec != 0 {
		mask |= bitCodec
	}
	if f.Ops != nil {
		mask |= bitOps
	}
	w.Uvarint(mask)

	if mask&bitOrigin != 0 {
		w.String(f.Origin)
	}
	if mask&bitHops != 0 {
		w.Uvarint(uint64(len(f.Hops)))
		for _, h := range f.Hops {
			w.String(h)
		}
	}
	if mask&bitName != 0 {
		w.String(f.Name)
	}
	if mask&bitSub != 0 {
		w.Subscription(*f.Sub)
	}
	if mask&bitSubID != 0 {
		w.Uvarint(uint64(f.SubID))
	}
	if mask&bitClient != 0 {
		w.String(f.Client)
	}
	if mask&bitPreds != 0 {
		w.Uvarint(uint64(len(f.Preds)))
		for _, p := range f.Preds {
			w.Predicate(p)
		}
	}
	if mask&bitEvent != 0 {
		w.Event(*f.Event)
	}
	if mask&bitPubID != 0 {
		// Publication IDs are unique by construction; interning them
		// would only churn the dictionary.
		w.RawString(f.PubID)
	}
	if mask&bitTrace != 0 {
		trace.AppendSpans(w, f.Trace)
	}
	if mask&bitKB != 0 {
		blob, err := json.Marshal(f.KB)
		if err != nil {
			return fmt.Errorf("%w: kb delta: %v", errFrameEncode, err)
		}
		w.Uvarint(uint64(len(blob)))
		w.Buf = append(w.Buf, blob...)
	}
	if mask&bitCodec != 0 {
		// Signed: a (hostile or buggy) JSON hello can carry a negative
		// codec, and re-encoding must not corrupt it.
		w.Varint(int64(f.Codec))
	}
	if mask&bitOps != 0 {
		// Like knowledge deltas, ops summaries travel as an embedded
		// JSON blob: rare low-rate control-plane traffic with an
		// evolving shape, not worth a hand-rolled codec.
		blob, err := json.Marshal(f.Ops)
		if err != nil {
			return fmt.Errorf("%w: ops summary: %v", errFrameEncode, err)
		}
		w.Uvarint(uint64(len(blob)))
		w.Buf = append(w.Buf, blob...)
	}
	return nil
}

// decodeFrameBinary decodes one binary frame body. dict must be the
// receive-direction dictionary mirroring the sender's.
func decodeFrameBinary(body []byte, dict *message.Intern) (Frame, error) {
	r := message.NewBReader(body, dict)
	tc, err := r.Byte()
	if err != nil {
		return Frame{}, err
	}
	var f Frame
	if f.Type = frameTypeName[tc]; f.Type == "" {
		return Frame{}, fmt.Errorf("overlay: unknown binary frame type %d", tc)
	}
	mask, err := r.Uvarint()
	if err != nil {
		return Frame{}, err
	}
	if mask&^uint64(maskKnown) != 0 {
		// Unknown fields carry no length, so they cannot be skipped;
		// version negotiation guarantees both ends speak the same
		// version, making this corruption, not a newer peer.
		return Frame{}, fmt.Errorf("overlay: binary frame with unknown field bits %#x", mask)
	}

	if mask&bitOrigin != 0 {
		if f.Origin, err = r.String(); err != nil {
			return Frame{}, err
		}
	}
	if mask&bitHops != 0 {
		n, err := r.Uvarint()
		if err != nil {
			return Frame{}, err
		}
		if n > uint64(r.Len()) {
			return Frame{}, fmt.Errorf("overlay: hop count %d exceeds input", n)
		}
		f.Hops = make([]string, 0, n)
		for i := uint64(0); i < n; i++ {
			h, err := r.String()
			if err != nil {
				return Frame{}, err
			}
			f.Hops = append(f.Hops, h)
		}
	}
	if mask&bitName != 0 {
		if f.Name, err = r.String(); err != nil {
			return Frame{}, err
		}
	}
	if mask&bitSub != 0 {
		sub, err := r.Subscription()
		if err != nil {
			return Frame{}, err
		}
		f.Sub = &sub
	}
	if mask&bitSubID != 0 {
		id, err := r.Uvarint()
		if err != nil {
			return Frame{}, err
		}
		f.SubID = message.SubID(id)
	}
	if mask&bitClient != 0 {
		if f.Client, err = r.String(); err != nil {
			return Frame{}, err
		}
	}
	if mask&bitPreds != 0 {
		n, err := r.Uvarint()
		if err != nil {
			return Frame{}, err
		}
		if n > uint64(r.Len()) {
			return Frame{}, fmt.Errorf("overlay: predicate count %d exceeds input", n)
		}
		f.Preds = make([]message.Predicate, 0, n)
		for i := uint64(0); i < n; i++ {
			p, err := r.Predicate()
			if err != nil {
				return Frame{}, err
			}
			f.Preds = append(f.Preds, p)
		}
	}
	if mask&bitEvent != 0 {
		ev, err := r.Event()
		if err != nil {
			return Frame{}, err
		}
		f.Event = &ev
	}
	if mask&bitPubID != 0 {
		if f.PubID, err = r.RawString(); err != nil {
			return Frame{}, err
		}
	}
	if mask&bitTrace != 0 {
		if f.Trace, err = trace.ReadSpans(r); err != nil {
			return Frame{}, err
		}
	}
	if mask&bitKB != 0 {
		blob, err := r.RawString()
		if err != nil {
			return Frame{}, err
		}
		var d knowledge.Delta
		if err := json.Unmarshal([]byte(blob), &d); err != nil {
			return Frame{}, fmt.Errorf("overlay: decoding kb delta: %w", err)
		}
		f.KB = &d
	}
	if mask&bitCodec != 0 {
		c, err := r.Varint()
		if err != nil {
			return Frame{}, err
		}
		f.Codec = int(c)
	}
	if mask&bitOps != 0 {
		blob, err := r.RawString()
		if err != nil {
			return Frame{}, err
		}
		var s OpsSummary
		if err := json.Unmarshal([]byte(blob), &s); err != nil {
			return Frame{}, fmt.Errorf("overlay: decoding ops summary: %w", err)
		}
		f.Ops = &s
	}
	if r.Len() != 0 {
		return Frame{}, fmt.Errorf("overlay: %d trailing bytes after %s frame", r.Len(), f.Type)
	}
	return f, nil
}
