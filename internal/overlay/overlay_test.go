package overlay

import (
	"strings"
	"testing"
	"time"

	"stopss/internal/broker"
	"stopss/internal/core"
	"stopss/internal/message"
	"stopss/internal/notify"
)

// chanTransport delivers notifications into a channel, giving tests a
// synchronization point for the asynchronous notify pipeline.
type chanTransport struct{ ch chan notify.Notification }

func (c *chanTransport) Name() string                                  { return "chan" }
func (c *chanTransport) Send(addr string, n notify.Notification) error { c.ch <- n; return nil }
func (c *chanTransport) Close() error                                  { return nil }

// testBroker is one in-process overlay participant: broker, notifier
// with a channel transport, and a node listening on loopback.
type testBroker struct {
	b    *broker.Broker
	node *Node
	nt   *notify.Engine
	ch   chan notify.Notification
}

func newTestBroker(t *testing.T, name string, quench bool) *testBroker {
	t.Helper()
	ch := make(chan notify.Notification, 256)
	nt, err := notify.NewEngine(notify.Config{Workers: 2}, &chanTransport{ch: ch})
	if err != nil {
		t.Fatal(err)
	}
	b := broker.New(core.NewEngine(nil), nt)
	node, err := NewNode(Config{Name: name, Listen: "127.0.0.1:0", Quench: quench}, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		node.Close()
		nt.Close()
	})
	return &testBroker{b: b, node: node, nt: nt, ch: ch}
}

// subscribe registers a client with a channel route and subscribes it.
func (tb *testBroker) subscribe(t *testing.T, client string, preds ...message.Predicate) message.SubID {
	t.Helper()
	if err := tb.b.Register(broker.Client{Name: client, Route: notify.Route{Transport: "chan", Addr: client}}); err != nil {
		t.Fatal(err)
	}
	id, err := tb.b.Subscribe(client, preds)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// nodeHasInterest reports whether any link of n currently routes the
// given overlay-wide subscription identity.
func nodeHasInterest(n *Node, origin string, id message.SubID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, l := range n.links {
		if _, ok := l.interests[routeID{Origin: origin, ID: id}]; ok {
			return true
		}
	}
	return false
}

// waitFor polls cond for up to two seconds.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// expectNotification receives one notification for the named subscriber
// or fails.
func expectNotification(t *testing.T, ch chan notify.Notification, subscriber string) notify.Notification {
	t.Helper()
	select {
	case n := <-ch:
		if n.Subscriber != subscriber {
			t.Fatalf("notification for %q, want %q", n.Subscriber, subscriber)
		}
		return n
	case <-time.After(2 * time.Second):
		t.Fatalf("no notification for %q", subscriber)
		return notify.Notification{}
	}
}

// expectSilence asserts no notification arrives within a short window.
func expectSilence(t *testing.T, ch chan notify.Notification) {
	t.Helper()
	select {
	case n := <-ch:
		t.Fatalf("unexpected notification: %+v", n)
	case <-time.After(100 * time.Millisecond):
	}
}

// TestThreeBrokerChain is the acceptance scenario: brokers A—B—C on
// real loopback TCP. A publication entering A reaches a subscriber at
// C; the covered subscription from C is NOT forwarded on the B→A link
// while B's covering subscription stands, and removing the coverer
// re-advertises it.
func TestThreeBrokerChain(t *testing.T) {
	a := newTestBroker(t, "A", false)
	b := newTestBroker(t, "B", false)
	c := newTestBroker(t, "C", false)

	// Chain topology: B dials A, C dials B.
	if err := b.node.Dial(a.node.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := c.node.Dial(b.node.Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "links up", func() bool {
		return len(a.node.Peers()) == 1 && len(b.node.Peers()) == 2 && len(c.node.Peers()) == 1
	})

	// bob@B subscribes the broad x >= 0 first; it floods to A and C.
	bobID := b.subscribe(t, "bob", message.Pred("x", message.OpGe, message.Int(0)))
	waitFor(t, "bob's subscription at A and C", func() bool {
		return a.b.Stats().Remote.RemoteSubs == 1 && c.b.Stats().Remote.RemoteSubs == 1
	})

	// carol@C subscribes the covered x >= 10: it reaches B, but B must
	// prune it on the link to A (bob's x >= 0 covers it).
	carolID := c.subscribe(t, "carol", message.Pred("x", message.OpGe, message.Int(10)))
	waitFor(t, "carol's subscription pruned at B", func() bool {
		return b.b.Stats().Remote.SubsPruned >= 1
	})
	if got := a.b.Stats().Remote.RemoteSubs; got != 1 {
		t.Fatalf("A holds %d remote subscriptions, want 1 (covered sub must not cross B→A)", got)
	}

	// A publication entering A must notify bob at B and carol at C.
	if _, err := a.b.Publish(message.E("x", 42)); err != nil {
		t.Fatal(err)
	}
	nb := expectNotification(t, b.ch, "bob")
	if v, _ := nb.Event.Get("x"); v.IntVal() != 42 {
		t.Fatalf("bob received %v", nb.Event)
	}
	nc := expectNotification(t, c.ch, "carol")
	if v, _ := nc.Event.Get("x"); v.IntVal() != 42 {
		t.Fatalf("carol received %v", nc.Event)
	}

	// Broker-level accounting: the publication travelled A→B→C.
	waitFor(t, "pub counters", func() bool {
		return a.b.Stats().Remote.PubsForwarded == 1 &&
			b.b.Stats().Remote.PubsReceived == 1 &&
			c.b.Stats().Remote.PubsReceived == 1
	})

	// Un-covering: bob unsubscribes; B must withdraw x >= 0 from A and
	// re-advertise carol's x >= 10 in its place.
	if err := b.b.Unsubscribe("bob", bobID); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "carol's subscription reissued to A", func() bool {
		return b.b.Stats().Remote.SubsReissued >= 1
	})
	// Wait on the actual table content: bob's entry gone, carol's
	// present (the count alone can transiently read 1 while the unsub
	// is still in flight).
	waitFor(t, "A's routing table converged on carol", func() bool {
		return !nodeHasInterest(a.node, "B", bobID) && nodeHasInterest(a.node, "C", carolID)
	})

	// x = 5 no longer interests anyone (carol wants >= 10): A must not
	// forward it.
	if _, err := a.b.Publish(message.E("x", 5)); err != nil {
		t.Fatal(err)
	}
	expectSilence(t, c.ch)
	expectSilence(t, b.ch)
	if got := a.b.Stats().Remote.PubsForwarded; got != 1 {
		t.Fatalf("A forwarded %d publications, want still 1 (x=5 matches nothing)", got)
	}

	// x = 99 travels the reissued route end to end.
	if _, err := a.b.Publish(message.E("x", 99)); err != nil {
		t.Fatal(err)
	}
	nc = expectNotification(t, c.ch, "carol")
	if v, _ := nc.Event.Get("x"); v.IntVal() != 99 {
		t.Fatalf("carol received %v after reissue", nc.Event)
	}
	expectSilence(t, b.ch) // bob is gone
}

// TestTriangleDedup: in a cyclic topology a publication reaches the
// subscriber on two paths; the duplicate is suppressed and delivery
// happens exactly once.
func TestTriangleDedup(t *testing.T) {
	a := newTestBroker(t, "A", false)
	b := newTestBroker(t, "B", false)
	c := newTestBroker(t, "C", false)
	if err := b.node.Dial(a.node.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := c.node.Dial(b.node.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := c.node.Dial(a.node.Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "triangle up", func() bool {
		return len(a.node.Peers()) == 2 && len(b.node.Peers()) == 2 && len(c.node.Peers()) == 2
	})

	c.subscribe(t, "carol", message.Pred("x", message.OpGe, message.Int(0)))
	// A learns carol's interest on both its links (directly from C and
	// relayed via B).
	waitFor(t, "carol known at A on both links", func() bool {
		return a.b.Stats().Remote.RemoteSubs == 2
	})

	for i := 1; i <= 3; i++ {
		if _, err := a.b.Publish(message.E("x", i)); err != nil {
			t.Fatal(err)
		}
		expectNotification(t, c.ch, "carol")
	}
	expectSilence(t, c.ch) // duplicates suppressed, not delivered twice
	waitFor(t, "duplicate suppression counted", func() bool {
		return c.b.Stats().Remote.PubsDeduped >= 1
	})
}

// TestQuenching: with Quench enabled a subscription is only forwarded
// toward links whose advertisements overlap it.
func TestQuenching(t *testing.T) {
	a := newTestBroker(t, "A", false)
	b := newTestBroker(t, "B", true) // B prunes its outgoing subscriptions
	if err := b.node.Dial(a.node.Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "link up", func() bool { return len(a.node.Peers()) == 1 })

	// A publisher at A advertises the numeric x space.
	if err := a.b.Register(broker.Client{Name: "px"}); err != nil {
		t.Fatal(err)
	}
	if err := a.b.Advertise("px", []message.Predicate{
		message.Pred("x", message.OpGe, message.Int(0)),
	}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "advertisement at B", func() bool {
		return b.b.Stats().Remote.AdvertsSeen == 1
	})

	// A subscription outside the advertised space is quenched at B …
	b.subscribe(t, "bty", message.Pred("y", message.OpEq, message.String("jobs")))
	waitFor(t, "quenched sub counted", func() bool {
		return b.b.Stats().Remote.SubsPruned >= 1
	})
	// … while an overlapping one crosses to A.
	b.subscribe(t, "btx", message.Pred("x", message.OpGe, message.Int(5)))
	waitFor(t, "overlapping sub at A", func() bool {
		return a.b.Stats().Remote.RemoteSubs == 1
	})

	if _, err := a.b.PublishFrom("px", message.E("x", 7)); err != nil {
		t.Fatal(err)
	}
	n := expectNotification(t, b.ch, "btx")
	if v, _ := n.Event.Get("x"); v.IntVal() != 7 {
		t.Fatalf("btx received %v", n.Event)
	}
}

// TestLateJoinSync: a node that connects after subscriptions exist
// receives the full state on the new link.
func TestLateJoinSync(t *testing.T) {
	a := newTestBroker(t, "A", false)
	b := newTestBroker(t, "B", false)
	b.subscribe(t, "bob", message.Pred("x", message.OpGe, message.Int(0)))

	// Link comes up only after bob subscribed.
	if err := b.node.Dial(a.node.Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "state sync", func() bool {
		return a.b.Stats().Remote.RemoteSubs == 1
	})
	if _, err := a.b.Publish(message.E("x", 1)); err != nil {
		t.Fatal(err)
	}
	expectNotification(t, b.ch, "bob")
}

// TestOverlayMetricsReport: the node's counters land in its registry
// with per-link entries.
func TestOverlayMetricsReport(t *testing.T) {
	a := newTestBroker(t, "A", false)
	b := newTestBroker(t, "B", false)
	if err := b.node.Dial(a.node.Addr()); err != nil {
		t.Fatal(err)
	}
	b.subscribe(t, "bob", message.Pred("x", message.OpGe, message.Int(0)))
	waitFor(t, "sub at A", func() bool { return a.b.Stats().Remote.RemoteSubs == 1 })

	if got := b.node.Registry().Counter("overlay.subs_forwarded").Value(); got != 1 {
		t.Fatalf("subs_forwarded = %d, want 1", got)
	}
	if got := b.node.Registry().Counter("overlay.link.A.frames_sent").Value(); got == 0 {
		t.Fatal("per-link sent counter missing")
	}
	report := b.node.Registry().Report()
	for _, want := range []string{"overlay.subs_forwarded", "overlay.link.A.frames_sent"} {
		if !strings.Contains(report, want) {
			t.Errorf("registry report lacks %s:\n%s", want, report)
		}
	}
}
