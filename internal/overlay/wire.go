// Package overlay federates S-ToPSS brokers into a multi-node
// publish/subscribe network: peer brokers connect over TCP and exchange
// length-prefixed JSON frames that propagate subscriptions (with
// covering-based pruning), advertisements, and publications.
//
// Routing model (the classic content-based federation scheme the
// Toronto group's later systems use):
//
//   - Subscriptions flood away from the subscriber's broker, hop by
//     hop, so every broker learns which of its links lead to
//     interested parties. A subscription is NOT forwarded on a link
//     when an already-forwarded one covers it (matching.Covers): the
//     covering subscription routes a superset of the covered one's
//     publications, so the covered entry adds no reachability.
//     Removing a covering subscription re-advertises whatever it was
//     suppressing (see coverTable).
//   - Advertisements flood the same way and are recorded per origin;
//     with Config.Quench enabled they additionally prune subscription
//     forwarding (a subscription only travels toward links whose side
//     has advertised an overlapping event space).
//   - Publications travel only along links whose recorded remote
//     subscriptions match, carry the hop list for loop prevention and
//     a origin-sequence ID for duplicate suppression, and are matched
//     semantically at every broker they visit.
//
// Brokers must agree on the semantic knowledge for routing to be
// faithful: decisions canonicalize remote subscriptions and expand
// publications with the local semantic stage, which makes the
// forwarding predicate equivalent to the destination engine's own
// matching. The federation starts from one shared genesis ontology and
// evolves it at runtime through replicated knowledge deltas (kb
// frames, internal/knowledge): deltas flood like publications —
// hop-list loop prevention, origin-scoped dedup — are folded into
// every broker's versioned knowledge base in one canonical order, and
// each application re-canonicalizes the node's routing state so stale
// canonical forms cannot strand publications.
package overlay

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"stopss/internal/knowledge"
	"stopss/internal/message"
	"stopss/internal/trace"
)

// Frame types.
const (
	frameHello = "hello" // first frame on a link, carries the node name
	frameSub   = "sub"   // subscription propagation
	frameUnsub = "unsub" // subscription withdrawal
	frameAdv   = "adv"   // advertisement propagation
	frameUnadv = "unadv" // advertisement withdrawal
	framePub   = "pub"   // publication forwarding
	frameKB    = "kb"    // knowledge-delta replication
	frameTrace = "trace" // trace report travelling BACK toward a pub's origin
)

// Frame is one overlay protocol message. Payload fields are pointers or
// omit-empty so each frame type serializes only what it carries; the
// message-layer JSON codecs (internal/message/json.go) are reused for
// subscriptions, predicates and events.
type Frame struct {
	Type string `json:"type"`
	// Origin names the broker where the carried state was created;
	// together with Sub.ID (or Client for advertisements) it forms the
	// overlay-wide identity of the routed entry.
	Origin string `json:"origin,omitempty"`
	// Hops lists brokers the frame has visited, in order. A node never
	// forwards a frame to a peer already in Hops and drops frames that
	// have looped back to itself.
	Hops []string `json:"hops,omitempty"`

	Name string `json:"name,omitempty"` // hello: node name

	Sub   *message.Subscription `json:"sub,omitempty"`    // sub
	SubID message.SubID         `json:"sub_id,omitempty"` // unsub

	Client string              `json:"client,omitempty"` // adv/unadv: publisher
	Preds  []message.Predicate `json:"preds,omitempty"`  // adv

	Event *message.Event `json:"event,omitempty"`  // pub
	PubID string         `json:"pub_id,omitempty"` // pub/trace: origin-scoped identity

	// Trace carries per-publication span records (DESIGN §10). On pub
	// frames it holds the spans accumulated by every broker already
	// visited — its presence IS the head-based sampling decision, made
	// once at the origin. On trace frames it carries a broker's full
	// current span set for the publication back along the reverse
	// forwarding path, so terminal delivery outcomes reach the origin.
	Trace []trace.Span `json:"trace,omitempty"`

	// KB carries one knowledge delta (kb frames). The delta's own
	// origin#epoch/seq identity is the dedup key, reusing the
	// publication suppression machinery with a "kb|" prefix.
	KB *knowledge.Delta `json:"kb,omitempty"`
}

// maxFrameSize bounds one frame on the wire; a subscription or expanded
// event is a few hundred bytes, so 1 MiB is generous headroom.
const maxFrameSize = 1 << 20

// frameAllocChunk caps the buffer readFrame allocates up front. The
// length prefix is attacker-controlled until the hello exchange has
// vetted the peer, so memory beyond this chunk is committed only as
// body bytes actually arrive.
const frameAllocChunk = 64 << 10

// errFrameTooLarge reports a length prefix outside (0, maxFrameSize].
var errFrameTooLarge = fmt.Errorf("overlay: frame length out of range (max %d)", maxFrameSize)

// writeFrame encodes f as a 4-byte big-endian length prefix followed by
// the JSON body. The caller serializes concurrent writers.
func writeFrame(w io.Writer, f Frame) error {
	body, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("overlay: encoding %s frame: %w", f.Type, err)
	}
	if len(body) > maxFrameSize {
		return fmt.Errorf("overlay: %s frame of %d bytes: %w", f.Type, len(body), errFrameTooLarge)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// readFrame decodes one length-prefixed frame. A malformed length
// prefix can neither allocate unbounded memory (lengths above
// maxFrameSize are rejected before any body allocation) nor force a
// large allocation backed by no data (the body buffer grows
// incrementally as bytes arrive, starting at frameAllocChunk).
func readFrame(r *bufio.Reader) (Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrameSize {
		return Frame{}, fmt.Errorf("overlay: frame length %d: %w", n, errFrameTooLarge)
	}
	var body bytes.Buffer
	body.Grow(int(min(n, frameAllocChunk)))
	if _, err := io.CopyN(&body, r, int64(n)); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	var f Frame
	if err := json.Unmarshal(body.Bytes(), &f); err != nil {
		return Frame{}, fmt.Errorf("overlay: decoding frame: %w", err)
	}
	if f.Type == "" {
		return Frame{}, fmt.Errorf("overlay: frame missing type")
	}
	return f, nil
}

// visited reports whether node name appears in the hop list.
func visited(hops []string, name string) bool {
	for _, h := range hops {
		if h == name {
			return true
		}
	}
	return false
}
