// Package overlay federates S-ToPSS brokers into a multi-node
// publish/subscribe network: peer brokers connect over TCP and exchange
// length-prefixed frames that propagate subscriptions (with
// covering-based pruning), advertisements, and publications. Frames are
// binary with per-link interned dictionaries between up-to-date peers
// and fall back to JSON framing for old ones (wire_binary.go).
//
// Routing model (the classic content-based federation scheme the
// Toronto group's later systems use):
//
//   - Subscriptions flood away from the subscriber's broker, hop by
//     hop, so every broker learns which of its links lead to
//     interested parties. A subscription is NOT forwarded on a link
//     when an already-forwarded one covers it (matching.Covers): the
//     covering subscription routes a superset of the covered one's
//     publications, so the covered entry adds no reachability.
//     Removing a covering subscription re-advertises whatever it was
//     suppressing (see coverTable).
//   - Advertisements flood the same way and are recorded per origin;
//     with Config.Quench enabled they additionally prune subscription
//     forwarding (a subscription only travels toward links whose side
//     has advertised an overlapping event space).
//   - Publications travel only along links whose recorded remote
//     subscriptions match, carry the hop list for loop prevention and
//     a origin-sequence ID for duplicate suppression, and are matched
//     semantically at every broker they visit.
//
// Brokers must agree on the semantic knowledge for routing to be
// faithful: decisions canonicalize remote subscriptions and expand
// publications with the local semantic stage, which makes the
// forwarding predicate equivalent to the destination engine's own
// matching. The federation starts from one shared genesis ontology and
// evolves it at runtime through replicated knowledge deltas (kb
// frames, internal/knowledge): deltas flood like publications —
// hop-list loop prevention, origin-scoped dedup — are folded into
// every broker's versioned knowledge base in one canonical order, and
// each application re-canonicalizes the node's routing state so stale
// canonical forms cannot strand publications.
package overlay

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"stopss/internal/knowledge"
	"stopss/internal/message"
	"stopss/internal/trace"
)

// Frame types.
const (
	frameHello = "hello" // first frame on a link, carries the node name
	frameSub   = "sub"   // subscription propagation
	frameUnsub = "unsub" // subscription withdrawal
	frameAdv   = "adv"   // advertisement propagation
	frameUnadv = "unadv" // advertisement withdrawal
	framePub   = "pub"   // publication forwarding
	frameKB    = "kb"    // knowledge-delta replication
	frameTrace = "trace" // trace report travelling BACK toward a pub's origin
	frameOps   = "ops"   // broker health summary gossip (cluster introspection)
)

// Frame is one overlay protocol message. Payload fields are pointers or
// omit-empty so each frame type serializes only what it carries; the
// message-layer JSON codecs (internal/message/json.go) are reused for
// subscriptions, predicates and events.
type Frame struct {
	Type string `json:"type"`
	// Origin names the broker where the carried state was created;
	// together with Sub.ID (or Client for advertisements) it forms the
	// overlay-wide identity of the routed entry.
	Origin string `json:"origin,omitempty"`
	// Hops lists brokers the frame has visited, in order. A node never
	// forwards a frame to a peer already in Hops and drops frames that
	// have looped back to itself.
	Hops []string `json:"hops,omitempty"`

	Name string `json:"name,omitempty"` // hello: node name

	// Codec is the sender's maximum supported wire-codec version
	// (hello only). Both sides use min(local, peer) for every frame
	// after the hello; peers predating the field leave it 0, selecting
	// the legacy JSON framing (see wire_binary.go).
	Codec int `json:"codec,omitempty"`

	Sub   *message.Subscription `json:"sub,omitempty"`    // sub
	SubID message.SubID         `json:"sub_id,omitempty"` // unsub

	Client string              `json:"client,omitempty"` // adv/unadv: publisher
	Preds  []message.Predicate `json:"preds,omitempty"`  // adv

	Event *message.Event `json:"event,omitempty"`  // pub
	PubID string         `json:"pub_id,omitempty"` // pub/trace: origin-scoped identity

	// Trace carries per-publication span records (DESIGN §10). On pub
	// frames it holds the spans accumulated by every broker already
	// visited — its presence IS the head-based sampling decision, made
	// once at the origin. On trace frames it carries a broker's full
	// current span set for the publication back along the reverse
	// forwarding path, so terminal delivery outcomes reach the origin.
	Trace []trace.Span `json:"trace,omitempty"`

	// KB carries one knowledge delta (kb frames). The delta's own
	// origin#epoch/seq identity is the dedup key, reusing the
	// publication suppression machinery with a "kb|" prefix.
	KB *knowledge.Delta `json:"kb,omitempty"`

	// Ops carries one broker health summary (ops frames, DESIGN §10):
	// low-rate cluster-introspection gossip flooded with the same
	// hop-list/dedup machinery as publications, keyed "ops|" +
	// origin#epoch/seq. Requires wire codec ≥ 2 on binary links; on
	// JSON links old peers simply ignore the unknown frame type.
	Ops *OpsSummary `json:"ops,omitempty"`
}

// maxFrameSize bounds one frame on the wire; a subscription or expanded
// event is a few hundred bytes, so 1 MiB is generous headroom.
const maxFrameSize = 1 << 20

// frameAllocChunk caps the buffer readFrame allocates up front. The
// length prefix is attacker-controlled until the hello exchange has
// vetted the peer, so memory beyond this chunk is committed only as
// body bytes actually arrive.
const frameAllocChunk = 64 << 10

// errFrameTooLarge reports a length prefix outside (0, maxFrameSize].
var errFrameTooLarge = fmt.Errorf("overlay: frame length out of range (max %d)", maxFrameSize)

// errFrameEncode marks failures that happen while ENCODING a frame,
// before any byte reaches the connection. Together with an oversized
// encoded body (errFrameTooLarge from the write path) these are
// droppable: the link writer discards the single frame (counted in
// overlay.frames_oversized) instead of tearing down the link, because
// the stream is still in sync — only this frame's payload was
// unshippable.
var errFrameEncode = fmt.Errorf("overlay: frame encoding failed")

// droppableWriteError reports whether a writeFrame/appendFrameBinary
// error cost the link nothing on the wire, so the frame can be dropped
// and the link kept.
func droppableWriteError(err error) bool {
	return errors.Is(err, errFrameTooLarge) || errors.Is(err, errFrameEncode)
}

// writeFrame encodes f as a 4-byte big-endian length prefix followed by
// the JSON body (wire codec version 0). The caller serializes
// concurrent writers. The body is marshaled and size-checked before any
// byte reaches w, so a failure leaves the stream intact (see
// droppableWriteError).
func writeFrame(w io.Writer, f Frame) error {
	body, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("%w: %s frame: %v", errFrameEncode, f.Type, err)
	}
	if len(body) > maxFrameSize {
		return fmt.Errorf("overlay: %s frame of %d bytes: %w", f.Type, len(body), errFrameTooLarge)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// readFrame decodes one JSON-framed (codec version 0) frame. A
// malformed length prefix can neither allocate unbounded memory
// (lengths above maxFrameSize are rejected before any body allocation)
// nor force a large allocation backed by no data (the body buffer grows
// incrementally as bytes arrive, starting at frameAllocChunk). bufp, if
// non-nil, is the caller's reusable body buffer: its capacity is kept
// across frames, so a steady-state link reads without allocating.
func readFrame(r *bufio.Reader, bufp *[]byte) (Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrameSize {
		return Frame{}, fmt.Errorf("overlay: frame length %d: %w", n, errFrameTooLarge)
	}
	body, err := readBody(r, bufp, int(n))
	if err != nil {
		return Frame{}, err
	}
	var f Frame
	if err := json.Unmarshal(body, &f); err != nil {
		return Frame{}, fmt.Errorf("overlay: decoding frame: %w", err)
	}
	if f.Type == "" {
		return Frame{}, fmt.Errorf("overlay: frame missing type")
	}
	return f, nil
}

// readFrameBinary decodes one binary-framed (codec version 1) frame:
// uvarint body length, then the body (wire_binary.go). The same
// incremental-allocation hardening as readFrame applies, although
// binary frames only ever arrive after the hello has vetted the peer.
func readFrameBinary(r *bufio.Reader, bufp *[]byte, dict *message.Intern) (Frame, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return Frame{}, err
	}
	if n == 0 || n > maxFrameSize {
		return Frame{}, fmt.Errorf("overlay: frame length %d: %w", n, errFrameTooLarge)
	}
	body, err := readBody(r, bufp, int(n))
	if err != nil {
		return Frame{}, err
	}
	return decodeFrameBinary(body, dict)
}

// readBody fills a buffer with n body bytes from r, growing it in
// frameAllocChunk steps so an attacker-controlled length prefix commits
// memory only as body bytes actually arrive. With a non-nil bufp the
// buffer (and its grown capacity) is reused across calls; decoded
// frames must therefore copy what they keep, which both frame codecs
// do (json.Unmarshal copies strings; BReader.String copies bytes).
func readBody(r *bufio.Reader, bufp *[]byte, n int) ([]byte, error) {
	var buf []byte
	if bufp != nil {
		buf = (*bufp)[:0]
	}
	for len(buf) < n {
		start := len(buf)
		chunk := min(n-start, frameAllocChunk)
		if start+chunk > cap(buf) {
			grown := make([]byte, start+chunk)
			copy(grown, buf)
			buf = grown
		} else {
			buf = buf[:start+chunk]
		}
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
		if bufp != nil {
			*bufp = buf
		}
	}
	return buf, nil
}

// visited reports whether node name appears in the hop list.
func visited(hops []string, name string) bool {
	for _, h := range hops {
		if h == name {
			return true
		}
	}
	return false
}
