package overlay

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"stopss/internal/core"
	"stopss/internal/knowledge"
	"stopss/internal/message"
	"stopss/internal/metrics"
	"stopss/internal/semantic"
)

// ShardedEngine partitions the subscription index across N core.Engines
// and matches publications against all shards concurrently through a
// pool of per-shard workers, unioning the results. It implements
// core.PubSub, so a broker runs on it unchanged.
//
// Subscriptions are placed by a hash of their ID; a publication is
// expanded by the semantic stage ONCE (core.Engine.MatchEvents lets the
// shards skip their own stage) and the derived event set is matched by
// every shard in parallel. With matching dominating the pipeline this
// makes publication throughput scale with cores, which is the point:
// each shard holds 1/N of the index and the N matches overlap in time.
//
// All shards share one semantic stage and are kept in the same mode;
// SetMode re-indexes every shard. The stage is mutable at runtime
// through ApplyKnowledge (it is swapped copy-on-write, so in-flight
// expansions stay coherent); a knowledge base bound with
// WithKnowledgeBase is applied once at the pool level and re-indexed
// per shard under the same exclusion SetMode uses.
type ShardedEngine struct {
	shards []*core.Engine
	jobs   []chan matchJob
	wg     sync.WaitGroup

	mu     sync.RWMutex // excludes SetMode/ApplyKnowledge against in-flight publishes
	closed bool

	kb *knowledge.Base // optional; bound at the pool level

	// expCache memoizes semantic expansions at the pool level — the pool
	// expands once per publication, so the memo lives where the work is.
	// stageVersion is the stage snapshot version the cache was filled
	// under; Publish flushes on mismatch (out-of-band SetConfig or
	// ontology swap), while ApplyKnowledge invalidates precisely and
	// re-stamps. The cache is self-locking: publishers probe it
	// concurrently under the pool read lock.
	expCache     *core.ExpansionCache
	expCap       int
	stageVersion atomic.Uint64

	// Publication-level statistics (the semantic half lives here, not
	// in the shards, because expansion happens once at this level).
	events    atomic.Uint64
	derived   atomic.Uint64
	rewrites  atomic.Uint64
	hierPairs atomic.Uint64
	mapPairs  atomic.Uint64
	mapCalls  atomic.Uint64
	truncated atomic.Uint64
	semTime   atomic.Int64 // ns

	shardMatches []atomic.Uint64 // per-shard match deliveries

	reg *metrics.Registry // optional; mirrors counters when set

	// Publish hot-path pools: the one-event wrapper slice used in
	// syntactic mode and the per-publication reply channel. Both are
	// fully private to a Publish call by the time it returns (every
	// worker has replied and MatchEvents does not retain its argument),
	// so recycling them is safe under concurrent publishers.
	evPool    sync.Pool // *[]message.Event, len 1
	replyPool sync.Pool // chan shardReply, cap len(shards)-1
}

type matchJob struct {
	events []message.Event
	reply  chan<- shardReply
}

type shardReply struct {
	shard int
	ids   []message.SubID
}

// ShardOption configures a ShardedEngine.
type ShardOption func(*ShardedEngine)

// WithRegistry mirrors per-shard match counts and publication counters
// into the given metrics registry under "engine.shard.<i>.matches" and
// "engine.sharded.publishes".
func WithRegistry(reg *metrics.Registry) ShardOption {
	return func(s *ShardedEngine) { s.reg = reg }
}

// WithShardExpansionCache sets the pool-level expansion LRU capacity;
// n <= 0 disables memoization. Default: core.DefaultExpansionCacheSize.
// Shard engines never consult their own caches (the pool expands once
// and hands shards pre-expanded events), so this is the only expansion
// memo a sharded deployment has.
func WithShardExpansionCache(n int) ShardOption {
	return func(s *ShardedEngine) { s.expCap = n }
}

// WithKnowledgeBase binds a runtime knowledge base to the pool. The
// shared semantic stage the shard factory uses must have been built
// over the base's structures (knowledge.Base.Stage); individual shards
// must NOT bind the base themselves — the pool applies each delta once.
func WithKnowledgeBase(b *knowledge.Base) ShardOption {
	return func(s *ShardedEngine) { s.kb = b }
}

// NewSharded builds an engine pool of n shards, constructing each with
// mk (which must return engines sharing one semantic stage and mode,
// each with its own matcher instance). n < 1 is treated as 1.
func NewSharded(n int, mk func(shard int) *core.Engine, opts ...ShardOption) *ShardedEngine {
	if n < 1 {
		n = 1
	}
	s := &ShardedEngine{
		shards:       make([]*core.Engine, n),
		jobs:         make([]chan matchJob, n),
		shardMatches: make([]atomic.Uint64, n),
		expCap:       core.DefaultExpansionCacheSize,
	}
	for _, o := range opts {
		o(s)
	}
	s.expCache = core.NewExpansionCache(s.expCap)
	for i := range s.shards {
		s.shards[i] = mk(i)
		s.jobs[i] = make(chan matchJob)
	}
	s.stageVersion.Store(s.Stage().Version())
	// Shard 0 is matched by the publishing goroutine itself (see
	// Publish); workers cover shards 1..n-1.
	s.wg.Add(n - 1)
	for i := 1; i < n; i++ {
		go s.worker(i)
	}
	return s
}

// worker is the matching loop of one shard, draining its job channel
// until Close. Engine-internal locking serializes it against any other
// accessor of the same shard.
func (s *ShardedEngine) worker(i int) {
	defer s.wg.Done()
	eng := s.shards[i]
	for job := range s.jobs[i] {
		ids := eng.MatchEvents(job.events)
		s.shardMatches[i].Add(uint64(len(ids)))
		if s.reg != nil {
			s.reg.Counter(fmt.Sprintf("engine.shard.%d.matches", i)).Add(uint64(len(ids)))
		}
		job.reply <- shardReply{shard: i, ids: ids}
	}
}

// Close stops the worker pool. The engine must not be published to
// afterwards; subscription bookkeeping remains readable.
func (s *ShardedEngine) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	for _, ch := range s.jobs {
		close(ch)
	}
	s.wg.Wait()
}

// Shards reports the pool width.
func (s *ShardedEngine) Shards() int { return len(s.shards) }

// shardOf places a subscription ID deterministically (FNV-1a over the
// eight ID bytes, folded modulo the pool width).
func (s *ShardedEngine) shardOf(id message.SubID) int {
	h := uint64(14695981039346656037)
	x := uint64(id)
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= 1099511628211
		x >>= 8
	}
	return int(h % uint64(len(s.shards)))
}

// Subscribe implements core.PubSub: the subscription lands on exactly
// one shard, which canonicalizes and indexes it under its own lock.
func (s *ShardedEngine) Subscribe(sub message.Subscription) error {
	return s.shards[s.shardOf(sub.ID)].Subscribe(sub)
}

// Unsubscribe implements core.PubSub.
func (s *ShardedEngine) Unsubscribe(id message.SubID) bool {
	return s.shards[s.shardOf(id)].Unsubscribe(id)
}

// Subscription implements core.PubSub.
func (s *ShardedEngine) Subscription(id message.SubID) (message.Subscription, bool) {
	return s.shards[s.shardOf(id)].Subscription(id)
}

// Explain implements core.PubSub by delegating to the owning shard.
func (s *ShardedEngine) Explain(id message.SubID, ev message.Event) (core.Explanation, error) {
	return s.shards[s.shardOf(id)].Explain(id, ev)
}

// Mode implements core.PubSub; all shards share one mode.
func (s *ShardedEngine) Mode() core.Mode { return s.shards[0].Mode() }

// SetMode implements core.PubSub, re-indexing every shard. In-flight
// publications are excluded for the duration so no event is matched
// against a half-switched pool.
func (s *ShardedEngine) SetMode(m core.Mode) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, sh := range s.shards {
		if err := sh.SetMode(m); err != nil {
			return fmt.Errorf("overlay: shard %d: %w", i, err)
		}
	}
	return nil
}

// Stage implements core.PubSub (the stage is shared by every shard).
func (s *ShardedEngine) Stage() *semantic.Stage { return s.shards[0].Stage() }

// Knowledge implements core.PubSub.
func (s *ShardedEngine) Knowledge() *knowledge.Base { return s.kb }

// ApplyKnowledge implements core.PubSub: the delta is folded into the
// pool-level base ONCE, the shared stage is swapped to the fresh
// snapshot, and every shard re-indexes its partition of the
// subscription set. In-flight publications are excluded for the whole
// sequence (the SetMode exclusion), so no event is ever expanded by the
// new knowledge but matched against an old index, or vice versa.
func (s *ShardedEngine) ApplyKnowledge(d knowledge.Delta) (core.KnowledgeReport, error) {
	if s.kb == nil {
		return core.KnowledgeReport{}, fmt.Errorf("overlay: no knowledge base bound to this pool")
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	out, err := s.kb.Apply(d)
	if err != nil {
		return core.KnowledgeReport{}, err
	}
	rep := core.KnowledgeReport{
		ID:        d.ID(),
		Applied:   out.Applied,
		Duplicate: out.Duplicate,
		Rejected:  out.Rejected,
		Refolded:  out.Refolded,
		Changed:   out.Changed,
		Affected:  out.Affected,
		Version:   s.kb.Version(),
	}
	// The delta count and applied counter track every newly logged
	// delta — including rejected ones, which still advance the version
	// — before the structure-change early return, so the gauge agrees
	// with Version.Deltas and the node-level overlay.kb_deltas gauge
	// operators compare across brokers.
	if s.reg != nil && out.Applied {
		s.reg.Counter("engine.kb.applied").Inc()
		s.reg.Gauge("engine.kb.deltas").Set(int64(rep.Version.Deltas))
	}
	if !out.Changed {
		return rep, nil
	}
	s.Stage().Replace(out.Synonyms, out.Hierarchy, out.Mappings)
	// Memoized expansions: an in-order synonym delta invalidates exactly
	// the entries touching an affected term (the same raw-term argument
	// that scopes shard re-indexing); hierarchy/mapping deltas and
	// refolds flush. Re-stamp the validated stage version so the next
	// Publish does not flush redundantly.
	if s.expCache != nil {
		if d.Op == knowledge.OpAddSynonym && !out.Refolded {
			s.expCache.InvalidateTerms(out.Affected)
		} else {
			s.expCache.Flush()
		}
	}
	s.stageVersion.Store(s.Stage().Version())
	// The base reports the exact changed-term set even across a suffix
	// refold, so every shard re-indexes incrementally; only a delta past
	// the KBFullReindexTerms threshold widens to the full partition.
	for i, sh := range s.shards {
		n, err := sh.ReindexKnowledge(out.Affected, false)
		if err != nil {
			return rep, fmt.Errorf("overlay: shard %d: %w", i, err)
		}
		rep.Reindexed += n
	}
	rep.FullReindex = len(out.Affected) > core.KBFullReindexTerms
	if s.reg != nil {
		s.reg.Counter("engine.kb.reindexed").Add(uint64(rep.Reindexed))
	}
	return rep, nil
}

// MatcherName implements core.PubSub.
func (s *ShardedEngine) MatcherName() string {
	return fmt.Sprintf("%s×%d", s.shards[0].MatcherName(), len(s.shards))
}

// Size implements core.PubSub: total indexed subscriptions.
func (s *ShardedEngine) Size() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Size()
	}
	return n
}

// Publish implements core.PubSub: expand once, match everywhere, union.
func (s *ShardedEngine) Publish(ev message.Event) (core.MatchResult, error) {
	if err := ev.Validate(); err != nil {
		return core.MatchResult{}, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return core.MatchResult{}, fmt.Errorf("overlay: sharded engine closed")
	}

	var res core.MatchResult
	s.events.Add(1)
	if s.reg != nil {
		s.reg.Counter("engine.sharded.publishes").Inc()
	}

	wrap, _ := s.evPool.Get().(*[]message.Event)
	if wrap == nil {
		w := make([]message.Event, 1)
		wrap = &w
	}
	(*wrap)[0] = ev
	events := *wrap
	defer func() {
		(*wrap)[0] = message.Event{} // drop the event reference
		s.evPool.Put(wrap)
	}()
	if s.Mode() == core.Semantic {
		t0 := time.Now()
		res.Expansion = s.expand(ev)
		res.SemanticTime = time.Since(t0)
		events = res.Expansion.Events
		s.semTime.Add(int64(res.SemanticTime))
		s.derived.Add(uint64(len(events)))
		s.rewrites.Add(uint64(res.Expansion.SynonymRewrites))
		s.hierPairs.Add(uint64(res.Expansion.HierarchyPairs))
		s.mapPairs.Add(uint64(res.Expansion.MappingPairs))
		s.mapCalls.Add(uint64(res.Expansion.MappingCalls))
		if res.Expansion.Truncated {
			s.truncated.Add(1)
		}
	}

	t1 := time.Now()
	n := len(s.shards)
	var reply chan shardReply
	if n > 1 {
		reply, _ = s.replyPool.Get().(chan shardReply)
		if reply == nil {
			reply = make(chan shardReply, n-1)
		}
		// The channel goes back to the pool only after all n-1 replies
		// have been received below, so a recycled channel is always empty.
		defer s.replyPool.Put(reply)
		for i := 1; i < n; i++ {
			s.jobs[i] <- matchJob{events: events, reply: reply}
		}
	}
	// Shard 0 runs in the publishing goroutine: it overlaps with the
	// workers anyway and saves one handoff per publication.
	ids0 := s.shards[0].MatchEvents(events)
	s.shardMatches[0].Add(uint64(len(ids0)))
	if s.reg != nil {
		s.reg.Counter("engine.shard.0.matches").Add(uint64(len(ids0)))
	}
	if n == 1 {
		res.Matches = ids0
	} else {
		// Shards partition the subscription set, so the per-shard
		// results are disjoint sorted runs: concatenate onto shard 0's
		// result (which this call owns) and sort, no dedup map needed.
		out := ids0
		for i := 1; i < n; i++ {
			out = append(out, (<-reply).ids...)
		}
		slices.Sort(out)
		res.Matches = out
	}
	res.MatchTime = time.Since(t1)
	return res, nil
}

// expand runs the shared semantic stage on a publication, memoized
// through the pool-level expansion LRU. Callers hold s.mu for reading;
// concurrent publishers may race the version flush, which at worst
// flushes twice.
func (s *ShardedEngine) expand(ev message.Event) semantic.Result {
	if s.expCache == nil {
		return s.Stage().ProcessEvent(ev)
	}
	if v := s.Stage().Version(); v != s.stageVersion.Load() {
		s.expCache.Flush()
		s.stageVersion.Store(v)
	}
	sig := ev.Signature()
	if res, ok := s.expCache.Get(sig); ok {
		return res
	}
	res := s.Stage().ProcessEvent(ev)
	s.expCache.Put(sig, res, core.EventTerms(ev))
	return res
}

// Stats implements core.PubSub: per-shard counters are summed and the
// publication-level semantic counters (tracked here, since expansion
// happens once) are layered on top. MatchTime is the sum of per-shard
// CPU time, which exceeds wall time when shards overlap — by design.
func (s *ShardedEngine) Stats() core.Stats {
	var out core.Stats
	for _, sh := range s.shards {
		out = out.Merge(sh.Stats())
	}
	out.Events += s.events.Load()
	out.DerivedEvents += s.derived.Load()
	out.SynonymRewrites += s.rewrites.Load()
	out.HierarchyPairs += s.hierPairs.Load()
	out.MappingPairs += s.mapPairs.Load()
	out.MappingCalls += s.mapCalls.Load()
	out.Truncated += s.truncated.Load()
	out.SemanticTime += time.Duration(s.semTime.Load())
	if es := s.expCache.Stats(); es.Capacity > 0 {
		out.ExpansionHits += es.Hits
		out.ExpansionMisses += es.Misses
		out.ExpansionEvictions += es.Evictions
		out.ExpansionInvalidated += es.Invalidated
		out.ExpansionSize += es.Size
	}
	if s.kb != nil {
		v := s.kb.Version()
		out.KBDeltas = uint64(v.Deltas)
		out.KBRejected = uint64(v.Rejected)
		out.KBVersion = v.Digest
	}
	return out
}

// ShardMatchCounts snapshots the per-shard match counters.
func (s *ShardedEngine) ShardMatchCounts() []uint64 {
	out := make([]uint64, len(s.shardMatches))
	for i := range s.shardMatches {
		out[i] = s.shardMatches[i].Load()
	}
	return out
}
