package overlay

import (
	"testing"

	"stopss/internal/message"
)

func entryOf(origin string, id message.SubID, preds ...message.Predicate) (routeID, routeEntry) {
	s := message.NewSubscription(id, "sub", preds...)
	return routeID{Origin: origin, ID: id},
		routeEntry{raw: s, canon: s, hops: []string{origin}}
}

func TestCoverTablePrunesCovered(t *testing.T) {
	tbl := newCoverTable()

	broadID, broad := entryOf("b", 1, message.Pred("x", message.OpGe, message.Int(0)))
	narrowID, narrow := entryOf("c", 1, message.Pred("x", message.OpGe, message.Int(10)))

	if !tbl.add(broadID, broad) {
		t.Fatal("first subscription must be forwarded")
	}
	if tbl.add(narrowID, narrow) {
		t.Fatal("x>=10 is covered by forwarded x>=0 and must be pruned")
	}
	if f, s := tbl.size(); f != 1 || s != 1 {
		t.Fatalf("table = %d forwarded / %d suppressed, want 1/1", f, s)
	}
	// Duplicate offers change nothing.
	if tbl.add(narrowID, narrow) || tbl.add(broadID, broad) {
		t.Fatal("duplicate offers must not be re-sent")
	}
}

func TestCoverTableUncoveringReissues(t *testing.T) {
	tbl := newCoverTable()

	broadID, broad := entryOf("b", 1, message.Pred("x", message.OpGe, message.Int(0)))
	midID, mid := entryOf("c", 1, message.Pred("x", message.OpGe, message.Int(5)))
	narrowID, narrow := entryOf("d", 1, message.Pred("x", message.OpGe, message.Int(10)))

	tbl.add(broadID, broad)
	tbl.add(midID, mid)       // suppressed by broad
	tbl.add(narrowID, narrow) // suppressed by broad

	wasForwarded, reissue := tbl.remove(broadID)
	if !wasForwarded {
		t.Fatal("the covering subscription had been forwarded")
	}
	// mid (x>=5) becomes uncovered and is promoted first (deterministic
	// order); it then covers narrow (x>=10), which stays suppressed.
	if len(reissue) != 1 || reissue[0].id != midID {
		ids := make([]routeID, len(reissue))
		for i, r := range reissue {
			ids[i] = r.id
		}
		t.Fatalf("reissue = %v, want exactly [%v]", ids, midID)
	}
	if f, s := tbl.size(); f != 1 || s != 1 {
		t.Fatalf("table = %d forwarded / %d suppressed after uncovering, want 1/1", f, s)
	}

	// Removing mid uncovers narrow in turn.
	wasForwarded, reissue = tbl.remove(midID)
	if !wasForwarded || len(reissue) != 1 || reissue[0].id != narrowID {
		t.Fatalf("removing the promoted coverer must reissue the narrow sub, got fwd=%v reissue=%v",
			wasForwarded, reissue)
	}
}

func TestCoverTableRemoveSuppressed(t *testing.T) {
	tbl := newCoverTable()
	broadID, broad := entryOf("b", 1, message.Pred("x", message.OpGe, message.Int(0)))
	narrowID, narrow := entryOf("c", 1, message.Pred("x", message.OpGe, message.Int(10)))
	tbl.add(broadID, broad)
	tbl.add(narrowID, narrow)

	// Withdrawing a suppressed entry must not disturb the peer.
	wasForwarded, reissue := tbl.remove(narrowID)
	if wasForwarded || len(reissue) != 0 {
		t.Fatalf("suppressed removal: fwd=%v reissue=%v, want false/none", wasForwarded, reissue)
	}
	// Withdrawing an unknown entry is a no-op.
	wasForwarded, reissue = tbl.remove(routeID{Origin: "zz", ID: 99})
	if wasForwarded || len(reissue) != 0 {
		t.Fatal("unknown removal must be a no-op")
	}
}

func TestCoverTableIncomparableSubsBothForwarded(t *testing.T) {
	tbl := newCoverTable()
	aID, a := entryOf("b", 1, message.Pred("x", message.OpGe, message.Int(0)))
	bID, bb := entryOf("c", 1, message.Pred("y", message.OpEq, message.String("jobs")))
	if !tbl.add(aID, a) || !tbl.add(bID, bb) {
		t.Fatal("subscriptions on disjoint attributes must both be forwarded")
	}
}
