package overlay

import (
	"testing"

	"stopss/internal/broker"
	"stopss/internal/core"
	"stopss/internal/knowledge"
	"stopss/internal/message"
	"stopss/internal/notify"
	"stopss/internal/semantic"
)

// newKBTestBroker is newTestBroker with a runtime knowledge base bound
// and a stamping origin named after the node.
func newKBTestBroker(t *testing.T, name string, quench bool) *testBroker {
	t.Helper()
	ch := make(chan notify.Notification, 256)
	nt, err := notify.NewEngine(notify.Config{Workers: 2}, &chanTransport{ch: ch})
	if err != nil {
		t.Fatal(err)
	}
	base := knowledge.NewBase(nil, nil, nil)
	b := broker.New(core.NewEngine(base.Stage(semantic.FullConfig()), core.WithKnowledge(base)), nt)
	b.SetKnowledgeOrigin(knowledge.NewOrigin(name))
	node, err := NewNode(Config{Name: name, Listen: "127.0.0.1:0", Quench: quench}, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		node.Close()
		nt.Close()
	})
	return &testBroker{b: b, node: node, nt: nt, ch: ch}
}

func kbDigest(tb *testBroker) string { return tb.b.KnowledgeVersion().Digest }
func kbDeltas(tb *testBroker) int    { return tb.b.KnowledgeVersion().Deltas }

// TestKnowledgeFloodAndLateJoin: a delta injected at one end of an
// A—B—C chain floods over real TCP links; a subscription created
// before the knowledge existed starts matching events phrased in the
// new term on every broker; and a broker that joins AFTER the delta
// catches up through the link-sync replay of the knowledge log.
func TestKnowledgeFloodAndLateJoin(t *testing.T) {
	a := newKBTestBroker(t, "A", false)
	b := newKBTestBroker(t, "B", false)

	// Pre-knowledge subscription at A, written in the synonym term.
	subID := a.subscribe(t, "alice", message.Pred("job", message.OpEq, message.String("dev")))
	_ = subID

	if err := b.node.Dial(a.node.Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "subscription sync", func() bool { return nodeHasInterest(b.node, "A", subID) })

	rep, err := b.b.InjectKnowledge(knowledge.Delta{
		Op: knowledge.OpAddSynonym, Root: "position", Terms: []string{"job"}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Applied || rep.Reindexed != 0 { // B holds no local subscriptions
		t.Fatalf("inject at B: %+v", rep)
	}
	waitFor(t, "delta flood to A", func() bool { return kbDeltas(a) == 1 && kbDigest(a) == kbDigest(b) })

	// A publication at B in the CANONICAL term must route to A: B's
	// recorded interest for alice's subscription was canonicalized
	// under the empty knowledge ("job"), so this only works if the
	// delta re-canonicalized B's routing state.
	if _, err := b.b.Publish(message.E("position", "dev")); err != nil {
		t.Fatal(err)
	}
	expectNotification(t, a.ch, "alice")
	expectSilence(t, a.ch)

	// Late joiner: C connects after the delta and converges via sync.
	c := newKBTestBroker(t, "C", false)
	if err := c.node.Dial(b.node.Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "late-join KB sync", func() bool { return kbDeltas(c) == 1 && kbDigest(c) == kbDigest(b) })

	// Duplicate suppression: re-injecting the same delta at C is a
	// no-op everywhere.
	log := c.b.KnowledgeLog()
	rep, err = c.b.InjectKnowledge(log[0])
	if err != nil || !rep.Duplicate {
		t.Fatalf("replay: %+v, %v", rep, err)
	}

	// A publication entering C in the synonym term reaches alice at A
	// through two hops.
	if _, err := c.b.Publish(message.E("job", "dev")); err != nil {
		t.Fatal(err)
	}
	expectNotification(t, a.ch, "alice")

	rs := b.b.Stats().Remote
	if rs.KBForwarded == 0 {
		t.Fatalf("B forwarded no KB deltas: %+v", rs)
	}
	st := a.b.Stats()
	if st.KBRemote != 1 || st.Engine.KBDeltas != 1 {
		t.Fatalf("A KB stats: KBRemote=%d Engine=%+v", st.KBRemote, st.Engine)
	}
}

// TestKnowledgeTransitsUnboundBroker: a broker without a bound
// knowledge base cannot apply deltas, but it must still forward them —
// dropping the frame on the application error would sever the flood
// and permanently diverge the federation behind it.
func TestKnowledgeTransitsUnboundBroker(t *testing.T) {
	a := newKBTestBroker(t, "A", false)
	b := newTestBroker(t, "B", false) // engine without core.WithKnowledge
	c := newKBTestBroker(t, "C", false)
	if err := b.node.Dial(a.node.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := c.node.Dial(b.node.Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "links up", func() bool { return len(b.node.Peers()) == 2 })

	rep, err := a.b.InjectKnowledge(knowledge.Delta{Op: knowledge.OpAddConcept, Term: "x"})
	if err != nil || !rep.Applied {
		t.Fatalf("inject at A: %+v, %v", rep, err)
	}
	waitFor(t, "delta transits B to C", func() bool {
		return kbDeltas(c) == 1 && kbDigest(c) == kbDigest(a)
	})
}

// TestKnowledgeUnquenchesSubscriptions: with quenching on, a
// subscription whose canonical form overlaps no advertised space is
// recorded in neither the cover table nor the suppressed set, so the
// ordinary re-canonicalization pass never sees it. A knowledge delta
// that creates the overlap must re-offer it to the link, or it stays
// unrouted until the client resubscribes.
func TestKnowledgeUnquenchesSubscriptions(t *testing.T) {
	a := newKBTestBroker(t, "A", false)
	b := newKBTestBroker(t, "B", true) // B quenches its outgoing subscriptions
	if err := b.node.Dial(a.node.Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "link up", func() bool { return len(a.node.Peers()) == 1 })

	// A publisher at A advertises the canonical term.
	if err := a.b.Register(broker.Client{Name: "px"}); err != nil {
		t.Fatal(err)
	}
	if err := a.b.Advertise("px", []message.Predicate{
		message.Pred("position", message.OpEq, message.String("dev")),
	}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "advertisement at B", func() bool {
		return b.b.Stats().Remote.AdvertsSeen == 1
	})

	// "job" is unknown, so the subscription's canonical form overlaps
	// no advertised space: quenched at B, never recorded at A.
	subID := b.subscribe(t, "bob", message.Pred("job", message.OpEq, message.String("dev")))
	waitFor(t, "sub quenched at B", func() bool {
		return b.b.Stats().Remote.SubsPruned >= 1
	})
	if nodeHasInterest(a.node, "B", subID) {
		t.Fatal("quenched subscription reached A")
	}

	// The synonym delta makes the canonical form (position = dev)
	// overlap A's advertisement; the re-offer pass must forward it.
	rep, err := b.b.InjectKnowledge(knowledge.Delta{
		Op: knowledge.OpAddSynonym, Root: "position", Terms: []string{"job"}})
	if err != nil || !rep.Applied {
		t.Fatalf("inject at B: %+v, %v", rep, err)
	}
	waitFor(t, "unquenched sub at A", func() bool {
		return nodeHasInterest(a.node, "B", subID)
	})

	// End to end: an advertised publication at A now reaches bob at B.
	if _, err := a.b.PublishFrom("px", message.E("position", "dev")); err != nil {
		t.Fatal(err)
	}
	n := expectNotification(t, b.ch, "bob")
	if v, _ := n.Event.Get("position"); v.Str() != "dev" {
		t.Fatalf("bob received %v", n.Event)
	}
}

// TestKnowledgeCanonicalizesAdverts mirrors the test above on the
// advertisement side: quench overlap must compare canonical forms of
// BOTH the advertisement and the subscription, so an advert phrased in
// a synonym term un-quenches a subscription phrased in the root term
// once the knowledge links them.
func TestKnowledgeCanonicalizesAdverts(t *testing.T) {
	a := newKBTestBroker(t, "A", false)
	b := newKBTestBroker(t, "B", true)
	if err := b.node.Dial(a.node.Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "link up", func() bool { return len(a.node.Peers()) == 1 })

	// The advertisement uses the SYNONYM term…
	if err := a.b.Register(broker.Client{Name: "px"}); err != nil {
		t.Fatal(err)
	}
	if err := a.b.Advertise("px", []message.Predicate{
		message.Pred("job", message.OpEq, message.String("dev")),
	}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "advertisement at B", func() bool {
		return b.b.Stats().Remote.AdvertsSeen == 1
	})

	// …and the subscription the ROOT term: disjoint until the delta.
	subID := b.subscribe(t, "bob", message.Pred("position", message.OpEq, message.String("dev")))
	waitFor(t, "sub quenched at B", func() bool {
		return b.b.Stats().Remote.SubsPruned >= 1
	})
	if nodeHasInterest(a.node, "B", subID) {
		t.Fatal("quenched subscription reached A")
	}

	rep, err := b.b.InjectKnowledge(knowledge.Delta{
		Op: knowledge.OpAddSynonym, Root: "position", Terms: []string{"job"}})
	if err != nil || !rep.Applied {
		t.Fatalf("inject at B: %+v, %v", rep, err)
	}
	waitFor(t, "unquenched sub at A", func() bool {
		return nodeHasInterest(a.node, "B", subID)
	})

	// The advertised publication, phrased in the synonym term, reaches
	// the root-term subscriber across the link.
	if _, err := a.b.PublishFrom("px", message.E("job", "dev")); err != nil {
		t.Fatal(err)
	}
	n := expectNotification(t, b.ch, "bob")
	if v, _ := n.Event.Get("job"); v.Str() != "dev" {
		t.Fatalf("bob received %v", n.Event)
	}
}

// TestCoverTableRecanonicalize exercises the covering repair directly:
// a suppressed entry whose coverage disappears under a new
// canonicalization must be promoted (returned for forwarding), while
// still-covered entries stay suppressed.
func TestCoverTableRecanonicalize(t *testing.T) {
	tbl := newCoverTable()
	mkSub := func(id message.SubID, attr string, ge int64) message.Subscription {
		return message.NewSubscription(id, "c",
			message.Pred(attr, message.OpGe, message.Int(ge)))
	}
	ident := func(s message.Subscription) message.Subscription { return s.Clone() }

	broad := mkSub(1, "x", 0)
	narrow := mkSub(2, "x", 10)
	other := mkSub(3, "x", 20)
	if !tbl.add(routeID{Origin: "o", ID: 1}, routeEntry{raw: broad, canon: ident(broad)}) {
		t.Fatal("broad not forwarded")
	}
	if tbl.add(routeID{Origin: "o", ID: 2}, routeEntry{raw: narrow, canon: ident(narrow)}) {
		t.Fatal("narrow not suppressed")
	}
	if tbl.add(routeID{Origin: "o", ID: 3}, routeEntry{raw: other, canon: ident(other)}) {
		t.Fatal("other not suppressed")
	}

	// New knowledge moves the NARROW subscription to a different
	// canonical attribute; the broad one no longer covers it.
	recanon := func(s message.Subscription) message.Subscription {
		out := s.Clone()
		if out.ID == 2 {
			out.Preds[0].Attr = "y"
		}
		return out
	}
	// The touches filter limits recanonicalization to entries mentioning
	// a changed term; sub 2's raw form constrains "x", so a filter on
	// {"x"} must still reach it (all three entries mention "x" here —
	// the filtered sweep behaves identically to the full one).
	touchesX := func(s message.Subscription) bool {
		return s.TouchesTerms(map[string]bool{"x": true})
	}
	promoted := tbl.recanonicalize(recanon, touchesX)
	if len(promoted) != 1 || promoted[0].id.ID != 2 {
		t.Fatalf("promoted %v, want exactly sub 2", promoted)
	}
	fwd, sup := tbl.size()
	if fwd != 2 || sup != 1 {
		t.Fatalf("table after recanonicalize: %d forwarded, %d suppressed", fwd, sup)
	}
	// Idempotent: a second pass with the same canon promotes nothing
	// (nil filter = recanonicalize everything).
	if again := tbl.recanonicalize(recanon, nil); len(again) != 0 {
		t.Fatalf("second pass promoted %v", again)
	}
	// The promoted entry now blocks removal-reissue bookkeeping like
	// any forwarded entry.
	wasForwarded, _ := tbl.remove(routeID{Origin: "o", ID: 2})
	if !wasForwarded {
		t.Fatal("promoted entry not tracked as forwarded")
	}
}
