package overlay

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"testing"
	"time"

	"stopss/internal/knowledge"
	"stopss/internal/message"
	"stopss/internal/trace"
)

// testFrames is one frame of every type, exercising every payload
// field at least once.
func testFrames(t testing.TB) []Frame {
	t.Helper()
	sub := message.NewSubscription(7, "acme",
		message.Pred("x", message.OpGe, message.Int(10)),
		message.Pred("city", message.OpEq, message.String("Toronto")))
	ev := message.E("x", 42, "city", "Toronto", "score", 3.25, "ok", true)
	spans := []trace.Span{
		{Broker: "broker-a", Seq: 1, Kind: trace.KindPublish, Start: time.Date(2026, 8, 8, 9, 0, 0, 123456789, time.UTC)},
		{Broker: "broker-a", Seq: 2, Kind: trace.KindForward, Start: time.Date(2026, 8, 8, 9, 0, 1, 0, time.UTC), Link: "broker-b"},
	}
	kb := knowledge.Delta{Origin: "broker-a", Epoch: "e1", Seq: 3, Op: knowledge.OpAddSynonym,
		Root: "school", Terms: []string{"university", "college"}}

	return []Frame{
		{Type: frameHello, Name: "broker-a", Codec: codecBinary},
		{Type: frameSub, Origin: "broker-c", Hops: []string{"broker-c", "broker-b"}, Sub: &sub},
		{Type: frameUnsub, Origin: "broker-c", SubID: 7, Hops: []string{"broker-c"}},
		{Type: frameAdv, Origin: "broker-a", Client: "pub-1",
			Preds: []message.Predicate{message.Pred("x", message.OpGe, message.Int(0))},
			Hops:  []string{"broker-a"}},
		{Type: frameUnadv, Origin: "broker-a", Client: "pub-1", Hops: []string{"broker-a"}},
		{Type: framePub, Origin: "broker-a", PubID: "broker-a/1", Event: &ev, Hops: []string{"broker-a"}, Trace: spans},
		{Type: frameKB, Origin: "broker-a", KB: &kb, Hops: []string{"broker-a"}},
		{Type: frameTrace, PubID: "broker-a/1", Trace: spans},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	sub := message.NewSubscription(7, "acme",
		message.Pred("x", message.OpGe, message.Int(10)),
		message.Pred("city", message.OpEq, message.String("Toronto")))
	ev := message.E("x", 42, "city", "Toronto")

	frames := []Frame{
		{Type: frameHello, Name: "broker-a"},
		{Type: frameSub, Origin: "broker-c", Hops: []string{"broker-c", "broker-b"}, Sub: &sub},
		{Type: frameUnsub, Origin: "broker-c", SubID: 7, Hops: []string{"broker-c"}},
		{Type: frameAdv, Origin: "broker-a", Client: "pub-1",
			Preds: []message.Predicate{message.Pred("x", message.OpGe, message.Int(0))},
			Hops:  []string{"broker-a"}},
		{Type: frameUnadv, Origin: "broker-a", Client: "pub-1", Hops: []string{"broker-a"}},
		{Type: framePub, Origin: "broker-a", PubID: "broker-a/1", Event: &ev, Hops: []string{"broker-a"}},
	}

	var buf bytes.Buffer
	for _, f := range frames {
		if err := writeFrame(&buf, f); err != nil {
			t.Fatalf("writing %s frame: %v", f.Type, err)
		}
	}
	r := bufio.NewReader(&buf)
	var rbuf []byte
	for i, want := range frames {
		got, err := readFrame(r, &rbuf)
		if err != nil {
			t.Fatalf("reading frame %d: %v", i, err)
		}
		if got.Type != want.Type || got.Origin != want.Origin ||
			got.Name != want.Name || got.Client != want.Client ||
			got.SubID != want.SubID || got.PubID != want.PubID ||
			!reflect.DeepEqual(got.Hops, want.Hops) {
			t.Errorf("frame %d: got %+v, want %+v", i, got, want)
		}
		switch want.Type {
		case frameSub:
			if got.Sub == nil || got.Sub.ID != sub.ID || got.Sub.Subscriber != sub.Subscriber ||
				len(got.Sub.Preds) != len(sub.Preds) {
				t.Errorf("frame %d: subscription did not survive the round trip: %+v", i, got.Sub)
			}
			// A covered event must still satisfy the decoded form.
			if !got.Sub.Matches(ev) {
				t.Errorf("frame %d: decoded subscription no longer matches %v", i, ev)
			}
		case framePub:
			if got.Event == nil || !got.Event.Equal(ev) {
				t.Errorf("frame %d: event did not survive the round trip: %v", i, got.Event)
			}
		case frameAdv:
			if len(got.Preds) != 1 || got.Preds[0].Attr != "x" {
				t.Errorf("frame %d: advertisement predicates lost: %+v", i, got.Preds)
			}
		}
	}
	if _, err := readFrame(r, &rbuf); err == nil {
		t.Error("expected EOF after the last frame")
	}
}

// TestBinaryFrameRoundTrip sends every frame type through the binary
// codec over persistent dictionaries (as a real link would) and checks
// the decoded frames are indistinguishable — by canonical JSON — from
// the originals. The second pass re-sends the same frames so
// dictionary back-references are actually exercised, and must produce
// strictly smaller bodies.
func TestBinaryFrameRoundTrip(t *testing.T) {
	frames := testFrames(t)
	l := &link{codec: codecBinary, bw: nil}
	l.enc.Dict = message.NewIntern()
	rdict := message.NewIntern()

	var firstPass, secondPass int
	for pass := 0; pass < 2; pass++ {
		for i, want := range frames {
			mark := l.enc.Dict.Mark()
			l.enc.Reset()
			if err := appendFrameBinary(&l.enc, want); err != nil {
				l.enc.Dict.Rollback(mark)
				t.Fatalf("pass %d frame %d (%s): encode: %v", pass, i, want.Type, err)
			}
			if pass == 0 {
				firstPass += l.enc.Len()
			} else {
				secondPass += l.enc.Len()
			}
			got, err := decodeFrameBinary(l.enc.Buf, rdict)
			if err != nil {
				t.Fatalf("pass %d frame %d (%s): decode: %v", pass, i, want.Type, err)
			}
			wantJS, err := json.Marshal(want)
			if err != nil {
				t.Fatal(err)
			}
			gotJS, err := json.Marshal(got)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(wantJS, gotJS) {
				t.Fatalf("pass %d frame %d (%s) round trip mismatch:\n  sent %s\n  got  %s",
					pass, i, want.Type, wantJS, gotJS)
			}
		}
	}
	if secondPass >= firstPass {
		t.Fatalf("interning had no effect: first pass %d bytes, second pass %d", firstPass, secondPass)
	}
}

// TestBinaryFrameSmallerThanJSON pins the point of the exercise: a
// warmed-up binary pub frame is a small fraction of its JSON form.
func TestBinaryFrameSmallerThanJSON(t *testing.T) {
	ev := message.E("x", 42, "city", "Toronto")
	pub := Frame{Type: framePub, Origin: "broker-a", PubID: "broker-a#e/9",
		Event: &ev, Hops: []string{"broker-a", "broker-b"}}

	var w message.BWriter
	w.Dict = message.NewIntern()
	// Warm the dictionary with one frame, then measure the second.
	if err := appendFrameBinary(&w, pub); err != nil {
		t.Fatal(err)
	}
	w.Reset()
	if err := appendFrameBinary(&w, pub); err != nil {
		t.Fatal(err)
	}
	js, err := json.Marshal(pub)
	if err != nil {
		t.Fatal(err)
	}
	if w.Len()*2 >= len(js) {
		t.Fatalf("binary pub frame is %d bytes vs %d JSON — expected < half", w.Len(), len(js))
	}
}

func TestBinaryFrameRejectsGarbage(t *testing.T) {
	dict := message.NewIntern()
	if _, err := decodeFrameBinary(nil, dict); err == nil {
		t.Error("empty body must be rejected")
	}
	if _, err := decodeFrameBinary([]byte{0x77}, dict); err == nil {
		t.Error("unknown frame type must be rejected")
	}
	// Unknown presence bits cannot be skipped (no per-field lengths).
	var w message.BWriter
	w.Byte(frameTypeCode[frameHello])
	w.Uvarint(maskKnown + 1)
	if _, err := decodeFrameBinary(w.Buf, dict); err == nil {
		t.Error("unknown presence bits must be rejected")
	}
	// Trailing bytes after a well-formed frame are corruption.
	w.Reset()
	if err := appendFrameBinary(&w, Frame{Type: frameHello, Name: "a"}); err != nil {
		t.Fatal(err)
	}
	w.Byte(0xff)
	if _, err := decodeFrameBinary(w.Buf, message.NewIntern()); err == nil {
		t.Error("trailing bytes must be rejected")
	}
}

// TestLinkWriteFrameOversizedRollsBackDict pins the dictionary-desync
// hazard: when an encoded frame is dropped for size, every literal it
// interned must be forgotten, or the peer's table (which never sees the
// frame) diverges and later back-references resolve to wrong strings.
func TestLinkWriteFrameOversizedRollsBackDict(t *testing.T) {
	var sink bytes.Buffer
	l := &link{codec: codecBinary, bw: bufio.NewWriter(&sink), peer: "peer"}
	l.enc.Dict = message.NewIntern()
	rdict := message.NewIntern()

	big := message.E("payload", string(make([]byte, maxFrameSize)))
	over := Frame{Type: framePub, Origin: "broker-a", PubID: "p/1",
		Event: &big, Hops: []string{"broker-a"}}
	err := l.writeFrame(over)
	if !errors.Is(err, errFrameTooLarge) {
		t.Fatalf("oversized frame: got %v, want errFrameTooLarge", err)
	}
	if !droppableWriteError(err) {
		t.Fatal("oversized encode must be classified droppable")
	}
	if sink.Len() != 0 || l.bw.Buffered() != 0 {
		t.Fatal("oversized frame leaked bytes onto the stream")
	}

	// The dropped frame interned "payload", "broker-a" etc. Re-encode a
	// frame reusing those strings: a fresh receiver dictionary (which
	// never saw the dropped frame) must still decode it.
	ok := message.E("payload", "small")
	good := Frame{Type: framePub, Origin: "broker-a", PubID: "p/2",
		Event: &ok, Hops: []string{"broker-a"}}
	if err := l.writeFrame(good); err != nil {
		t.Fatalf("follow-up frame: %v", err)
	}
	if err := l.bw.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := readFrameBinary(bufio.NewReader(&sink), nil, rdict)
	if err != nil {
		t.Fatalf("decoding follow-up frame after a dropped one: %v", err)
	}
	wantJS, _ := json.Marshal(good)
	gotJS, _ := json.Marshal(got)
	if !bytes.Equal(wantJS, gotJS) {
		t.Fatalf("dictionary desynced after drop:\n  sent %s\n  got  %s", wantJS, gotJS)
	}
}

func TestFrameRejectsGarbage(t *testing.T) {
	// Length prefix claiming more than the cap.
	r := bufio.NewReader(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff, 'x'}))
	if _, err := readFrame(r, nil); err == nil {
		t.Error("oversized frame length must be rejected")
	}
	// Valid length, invalid JSON.
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 2})
	buf.WriteString("{]")
	if _, err := readFrame(bufio.NewReader(&buf), nil); err == nil {
		t.Error("malformed JSON body must be rejected")
	}
	// Valid JSON, missing type.
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 2})
	buf.WriteString("{}")
	if _, err := readFrame(bufio.NewReader(&buf), nil); err == nil {
		t.Error("frame without type must be rejected")
	}
}
