package overlay

import (
	"bufio"
	"bytes"
	"reflect"
	"testing"

	"stopss/internal/message"
)

func TestFrameRoundTrip(t *testing.T) {
	sub := message.NewSubscription(7, "acme",
		message.Pred("x", message.OpGe, message.Int(10)),
		message.Pred("city", message.OpEq, message.String("Toronto")))
	ev := message.E("x", 42, "city", "Toronto")

	frames := []Frame{
		{Type: frameHello, Name: "broker-a"},
		{Type: frameSub, Origin: "broker-c", Hops: []string{"broker-c", "broker-b"}, Sub: &sub},
		{Type: frameUnsub, Origin: "broker-c", SubID: 7, Hops: []string{"broker-c"}},
		{Type: frameAdv, Origin: "broker-a", Client: "pub-1",
			Preds: []message.Predicate{message.Pred("x", message.OpGe, message.Int(0))},
			Hops:  []string{"broker-a"}},
		{Type: frameUnadv, Origin: "broker-a", Client: "pub-1", Hops: []string{"broker-a"}},
		{Type: framePub, Origin: "broker-a", PubID: "broker-a/1", Event: &ev, Hops: []string{"broker-a"}},
	}

	var buf bytes.Buffer
	for _, f := range frames {
		if err := writeFrame(&buf, f); err != nil {
			t.Fatalf("writing %s frame: %v", f.Type, err)
		}
	}
	r := bufio.NewReader(&buf)
	for i, want := range frames {
		got, err := readFrame(r)
		if err != nil {
			t.Fatalf("reading frame %d: %v", i, err)
		}
		if got.Type != want.Type || got.Origin != want.Origin ||
			got.Name != want.Name || got.Client != want.Client ||
			got.SubID != want.SubID || got.PubID != want.PubID ||
			!reflect.DeepEqual(got.Hops, want.Hops) {
			t.Errorf("frame %d: got %+v, want %+v", i, got, want)
		}
		switch want.Type {
		case frameSub:
			if got.Sub == nil || got.Sub.ID != sub.ID || got.Sub.Subscriber != sub.Subscriber ||
				len(got.Sub.Preds) != len(sub.Preds) {
				t.Errorf("frame %d: subscription did not survive the round trip: %+v", i, got.Sub)
			}
			// A covered event must still satisfy the decoded form.
			if !got.Sub.Matches(ev) {
				t.Errorf("frame %d: decoded subscription no longer matches %v", i, ev)
			}
		case framePub:
			if got.Event == nil || !got.Event.Equal(ev) {
				t.Errorf("frame %d: event did not survive the round trip: %v", i, got.Event)
			}
		case frameAdv:
			if len(got.Preds) != 1 || got.Preds[0].Attr != "x" {
				t.Errorf("frame %d: advertisement predicates lost: %+v", i, got.Preds)
			}
		}
	}
	if _, err := readFrame(r); err == nil {
		t.Error("expected EOF after the last frame")
	}
}

func TestFrameRejectsGarbage(t *testing.T) {
	// Length prefix claiming more than the cap.
	r := bufio.NewReader(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff, 'x'}))
	if _, err := readFrame(r); err == nil {
		t.Error("oversized frame length must be rejected")
	}
	// Valid length, invalid JSON.
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 2})
	buf.WriteString("{]")
	if _, err := readFrame(bufio.NewReader(&buf)); err == nil {
		t.Error("malformed JSON body must be rejected")
	}
	// Valid JSON, missing type.
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 2})
	buf.WriteString("{}")
	if _, err := readFrame(bufio.NewReader(&buf)); err == nil {
		t.Error("frame without type must be rejected")
	}
}
