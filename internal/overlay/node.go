package overlay

import (
	"fmt"
	"sync"
	"time"

	"stopss/internal/broker"
	"stopss/internal/core"
	"stopss/internal/knowledge"
	"stopss/internal/matching"
	"stopss/internal/message"
	"stopss/internal/metrics"
	"stopss/internal/trace"
)

// Config describes one overlay node.
type Config struct {
	// Name is the node's overlay-wide identity; it must be unique among
	// connected brokers (it keys hop lists and routing state).
	Name string
	// Listen is the TCP address to accept peer links on; empty means
	// the node only dials out.
	Listen string
	// Peers are addresses dialed at Start. A dial is retried briefly so
	// a fleet can start in any order.
	Peers []string
	// Transport supplies connections; nil means TCP() — real sockets.
	// Simulation harnesses (internal/sim) inject in-process transports
	// here to run large topologies and fault scenarios deterministically.
	Transport Transport
	// Quench enables advertisement-based subscription pruning: a
	// subscription is forwarded on a link only when the link has no
	// recorded advertisements (mixed deployment) or one of them
	// overlaps the subscription. Sound only when every publisher in the
	// overlay advertises.
	Quench bool
	// DisableBinary forces the legacy JSON wire codec on every link by
	// advertising codec version 0 at hello. Negotiation then selects
	// JSON regardless of what the peer supports — a compatibility and
	// debugging knob (JSON frames are greppable on the wire), also used
	// by the mixed-version interop tests.
	DisableBinary bool
	// Registry receives the overlay counters; nil allocates a private
	// one (see Node.Registry).
	Registry *metrics.Registry
	// TraceSample is the tracer's head-based sampling rate: keep 1 in
	// TraceSample publications. 0 defaults to 1 (trace everything);
	// negative disables tracing (see trace.Config.Sample).
	TraceSample int
	// TraceCapacity bounds the tracer's in-memory ring of recent traces
	// (0 = trace package default, 1024).
	TraceCapacity int
	// OpsInterval, when positive, refreshes the node's health summary
	// into the ops gossip at this period (ops.go). Zero disables the
	// ticker — summaries still flow on every link establishment, which
	// keeps the clock-free simulation harness quiescence-detectable.
	OpsInterval time.Duration
	// OpsStaleAfter is the age past which a gossiped peer summary is
	// flagged stale in ClusterView (0 = 30s default).
	OpsStaleAfter time.Duration
	// Logf, when set, receives one line per link event.
	Logf func(format string, args ...any)
}

// Node connects a local broker into the overlay. It implements
// broker.Forwarder: the broker reports local activity, the node routes
// it to peers, and frames arriving from peers are applied back onto the
// broker (DeliverRemote) or propagated onward.
type Node struct {
	cfg       Config
	b         *broker.Broker
	reg       *metrics.Registry
	transport Transport

	ln Listener
	wg sync.WaitGroup

	mu     sync.Mutex
	links  []*link
	closed bool

	// Publication duplicate suppression: origin-scoped IDs in a bounded
	// FIFO set (cycles in the peer graph can deliver a publication on
	// several paths).
	seen  map[string]bool
	seenQ []string

	// Cluster introspection gossip (ops.go): the per-incarnation epoch
	// and sequence identifying this node's own summaries, and the
	// eventually-consistent view of every broker's last summary.
	opsEpoch string
	opsSeq   uint64
	opsView  map[string]*opsEntry
	opsStop  chan struct{}

	// trc is the tracer NewNode installs on the broker: it mints the
	// node-named publication IDs (`name#epoch/seq`; the per-incarnation
	// epoch keeps a restarted broker's fresh IDs out of peers' stale
	// dedup windows — found by the internal/sim crash/rejoin scenario)
	// and records the span chain tracing each publication's journey.
	trc *trace.Tracer

	subsForwarded, subsPruned, subsQuenched, subsReissued *metrics.Counter
	pubsForwarded, pubsReceived, pubsDeduped              *metrics.Counter
	advertsForwarded                                      *metrics.Counter
	kbForwarded, kbReceived, kbDeduped                    *metrics.Counter
	opsForwarded, opsReceived                             *metrics.Counter
	framesOversized                                       *metrics.Counter
	kbDeltas                                              *metrics.Gauge
}

// seenCap bounds the duplicate-suppression window.
const seenCap = 8192

// NewNode wires a node onto a broker (installing itself as the broker's
// Forwarder and remote-stats source) but opens no connections until
// Start.
func NewNode(cfg Config, b *broker.Broker) (*Node, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("overlay: node needs a name")
	}
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	tr := cfg.Transport
	if tr == nil {
		tr = TCP()
	}
	n := &Node{
		cfg:       cfg,
		b:         b,
		reg:       reg,
		transport: tr,
		seen:      make(map[string]bool),
		opsEpoch:  newOpsEpoch(),
		opsView:   make(map[string]*opsEntry),
		opsStop:   make(chan struct{}),

		subsForwarded:    reg.Counter("overlay.subs_forwarded"),
		subsPruned:       reg.Counter("overlay.subs_pruned"),
		subsQuenched:     reg.Counter("overlay.subs_quenched"),
		subsReissued:     reg.Counter("overlay.subs_reissued"),
		pubsForwarded:    reg.Counter("overlay.pubs_forwarded"),
		pubsReceived:     reg.Counter("overlay.pubs_received"),
		pubsDeduped:      reg.Counter("overlay.pubs_deduped"),
		advertsForwarded: reg.Counter("overlay.adverts_forwarded"),
		kbForwarded:      reg.Counter("overlay.kb_forwarded"),
		kbReceived:       reg.Counter("overlay.kb_received"),
		kbDeduped:        reg.Counter("overlay.kb_deduped"),
		opsForwarded:     reg.Counter("overlay.ops_forwarded"),
		opsReceived:      reg.Counter("overlay.ops_received"),
		framesOversized:  reg.Counter("overlay.frames_oversized"),
		kbDeltas:         reg.Gauge("overlay.kb_deltas"),
	}
	// The node owns the broker's tracer: publication IDs must carry the
	// node's overlay name (peers dedup and trace by them), and the
	// tracer's reporter needs the links to send trace reports upstream.
	n.trc = trace.New(trace.Config{
		Broker:   cfg.Name,
		Sample:   cfg.TraceSample,
		Capacity: cfg.TraceCapacity,
		Registry: reg,
	})
	n.trc.SetReporter(n.reportUpstream)
	b.SetTracer(n.trc)
	b.SetForwarder(n)
	b.SetRemoteStatsSource(n.remoteStats)
	return n, nil
}

// Tracer exposes the node's publication tracer (shared with the
// broker).
func (n *Node) Tracer() *trace.Tracer { return n.trc }

// Registry exposes the node's metrics registry.
func (n *Node) Registry() *metrics.Registry { return n.reg }

// Name reports the node's overlay identity.
func (n *Node) Name() string { return n.cfg.Name }

// Addr reports the listen address ("" when not listening), usable by
// peers once Start has returned.
func (n *Node) Addr() string {
	if n.ln == nil {
		return ""
	}
	return n.ln.Addr()
}

// Start opens the listener (when configured) and dials every configured
// peer, synchronizing current broker state onto each link.
func (n *Node) Start() error {
	if n.cfg.Listen != "" {
		ln, err := n.transport.Listen(n.cfg.Listen)
		if err != nil {
			return fmt.Errorf("overlay: listen %s: %w", n.cfg.Listen, err)
		}
		n.ln = ln
		n.wg.Add(1)
		go n.acceptLoop(ln)
	}
	for _, addr := range n.cfg.Peers {
		if err := n.Dial(addr); err != nil {
			n.Close()
			return err
		}
	}
	if n.cfg.OpsInterval > 0 {
		n.wg.Add(1)
		go n.opsLoop(n.cfg.OpsInterval)
	}
	return nil
}

// Dial connects to a peer broker, retrying briefly so fleets can start
// in any order.
func (n *Node) Dial(addr string) error {
	var conn Conn
	var err error
	for attempt := 0; attempt < 20; attempt++ {
		conn, err = n.transport.Dial(addr, handshakeTimeout)
		if err == nil {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if err != nil {
		return fmt.Errorf("overlay: dialing peer %s: %w", addr, err)
	}
	return n.attach(conn)
}

func (n *Node) acceptLoop(ln Listener) {
	defer n.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		// Handshake per connection in its own goroutine: one slow or
		// silent dialer must not stall every other incoming peer for
		// the handshake timeout.
		go func(conn Conn) {
			if err := n.attach(conn); err != nil {
				n.logf("overlay %s: %v", n.cfg.Name, err)
			}
		}(conn)
	}
}

// attach performs the hello exchange, registers the link, synchronizes
// the node's current routing state onto it, and starts its read loop.
func (n *Node) attach(conn Conn) error {
	maxCodec := codecOps
	if n.cfg.DisableBinary {
		maxCodec = codecJSON
	}
	l, err := newLink(conn, n.cfg.Name, maxCodec)
	if err != nil {
		return err
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		l.close()
		return fmt.Errorf("overlay: node closed")
	}
	for _, existing := range n.links {
		if existing.peer == l.peer {
			n.mu.Unlock()
			l.close()
			return fmt.Errorf("overlay: rejecting second link named %q from %s (names must be overlay-unique)",
				l.peer, conn.RemoteAddr())
		}
	}
	l.sent = n.reg.Counter("overlay.link." + l.peer + ".frames_sent")
	l.recv = n.reg.Counter("overlay.link." + l.peer + ".frames_recv")
	l.qwait = n.reg.Histogram("overlay.link." + l.peer + ".queue_wait")
	l.oversized = n.framesOversized
	l.logf = n.cfg.Logf
	n.reg.Gauge("overlay.link." + l.peer + ".codec").Set(int64(l.codec))
	n.links = append(n.links, l)
	n.wg.Add(1)
	go l.writer(&n.wg)
	n.syncLink(l)
	n.mu.Unlock()
	n.logf("overlay %s: link established with %s (%s)", n.cfg.Name, l.peer, conn.RemoteAddr())

	n.wg.Add(1)
	go n.readLoop(l)
	// Flood a fresh health summary now that the topology changed — the
	// event-driven emission that keeps the gossip current (and the sim's
	// clock-free Settle converging) without any ticker.
	n.PublishOps()
	return nil
}

// syncLink pushes every known subscription, advertisement and applied
// knowledge delta to a fresh link: local broker state plus entries
// learned from other links. The knowledge-log replay is what lets a
// healed partition or a restarted broker catch up — receivers fold the
// deltas through ordinary duplicate-suppressed application, so replay
// is idempotent. Callers hold n.mu.
func (n *Node) syncLink(l *link) {
	for _, d := range n.b.KnowledgeLog() {
		d := d
		if l.send(Frame{Type: frameKB, Origin: d.Origin, KB: &d, Hops: []string{n.cfg.Name}}) == nil {
			n.kbForwarded.Inc()
		}
	}
	for _, sub := range n.b.Subscriptions() {
		rid := routeID{Origin: n.cfg.Name, ID: sub.ID}
		n.offerSub(l, rid, routeEntry{raw: sub, canon: n.canonicalize(sub), hops: []string{n.cfg.Name}})
	}
	// Detached durable subscriptions are paged out of the engine but
	// their delivery obligation survives (DESIGN §11): after a broker
	// restart the link re-sync must re-advertise them too, or remote
	// publications stop flowing here until the subscriber resumes.
	for _, sub := range n.b.DetachedSubscriptions() {
		rid := routeID{Origin: n.cfg.Name, ID: sub.ID}
		n.offerSub(l, rid, routeEntry{raw: sub, canon: n.canonicalize(sub), hops: []string{n.cfg.Name}})
	}
	for _, adv := range n.b.Advertisements() {
		aid := advID{Origin: n.cfg.Name, Client: adv.Publisher}
		n.sendAdv(l, aid, adv, []string{n.cfg.Name})
	}
	for _, other := range n.links {
		if other == l {
			continue
		}
		for rid, e := range other.interests {
			fwd := routeEntry{raw: e.raw, canon: e.canon, hops: appendHop(e.hops, n.cfg.Name)}
			if visited(fwd.hops, l.peer) {
				continue
			}
			n.offerSub(l, rid, fwd)
		}
		for aid, ae := range other.adverts {
			hops := appendHop(ae.hops, n.cfg.Name)
			if visited(hops, l.peer) {
				continue
			}
			n.sendAdv(l, aid, ae.adv, hops)
		}
	}
	n.syncOps(l)
}

// readLoop pumps frames off one link until it fails, then detaches it.
func (n *Node) readLoop(l *link) {
	defer n.wg.Done()
	for {
		f, err := l.readFrame()
		if err != nil {
			n.detach(l)
			return
		}
		l.recv.Inc()
		n.handleFrame(l, f)
	}
}

// detach removes a failed link. Its interests are dropped; a production
// deployment would additionally withdraw them from other peers, which
// is future work recorded in DESIGN.md.
func (n *Node) detach(l *link) {
	l.close()
	n.mu.Lock()
	for i, x := range n.links {
		if x == l {
			n.links = append(n.links[:i], n.links[i+1:]...)
			break
		}
	}
	// A direct link failing is the one deterministic down signal the
	// gossip has; the flag clears when a fresh summary arrives.
	n.markPeerDown(l.peer)
	closed := n.closed
	n.mu.Unlock()
	if !closed {
		n.logf("overlay %s: link to %s closed", n.cfg.Name, l.peer)
	}
}

// Close tears down the listener and every link and unhooks the broker.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	links := append([]*link(nil), n.links...)
	n.mu.Unlock()

	close(n.opsStop)

	n.b.SetForwarder(nil)
	n.b.SetRemoteStatsSource(nil)
	if n.ln != nil {
		n.ln.Close()
	}
	for _, l := range links {
		l.close()
	}
	n.wg.Wait()
	return nil
}

// Pending reports the number of outbound frames this node has accepted
// for transmission but not yet fully serialized onto a connection
// (queued on a link or sitting in a writer's flush batch). Simulation
// harnesses combine it with transport-level idleness to detect overlay
// quiescence without wall-clock waits; production code has no use for
// it.
func (n *Node) Pending() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	total := int64(0)
	for _, l := range n.links {
		select {
		case <-l.done:
			// A closed link still registered here awaits its detach: its
			// peer slot is not yet reusable, so quiescence must not be
			// declared (a harness could otherwise re-dial and be rejected
			// as a duplicate peer name). Its inflight count, however, is
			// dead weight and must NOT be included: send can win the race
			// against close (done-check, then enqueue) and strand a
			// counted frame in a queue no writer will ever drain — the
			// stranded count would wedge quiescence forever.
			total++
		default:
			total += l.inflight.Load()
		}
	}
	return int(total)
}

// Peers lists the names of currently connected peers.
func (n *Node) Peers() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, len(n.links))
	for i, l := range n.links {
		out[i] = l.peer
	}
	return out
}

// --- broker.Forwarder ---

// SubscriptionChanged implements broker.Forwarder for local
// subscriptions.
func (n *Node) SubscriptionChanged(sub message.Subscription, added bool) {
	rid := routeID{Origin: n.cfg.Name, ID: sub.ID}
	n.mu.Lock()
	defer n.mu.Unlock()
	if added {
		e := routeEntry{raw: sub, canon: n.canonicalize(sub), hops: []string{n.cfg.Name}}
		for _, l := range n.links {
			n.offerSub(l, rid, e)
		}
		return
	}
	n.withdrawSub(rid, []string{n.cfg.Name}, nil)
}

// PublicationAccepted implements broker.Forwarder for local
// publications. The broker's tracer (which this node installed) minted
// pubID, so it already carries this node's name and incarnation epoch.
func (n *Node) PublicationAccepted(ev message.Event, pubID string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.markSeen(pubID)
	n.routePub(ev, pubID, []string{n.cfg.Name}, nil)
}

// KnowledgeChanged implements broker.Forwarder for locally injected
// knowledge deltas: the delta (already applied to the local base) is
// flooded to every peer, and — when it actually changed the semantic
// structures — the node's routing state is re-canonicalized under the
// new knowledge.
func (n *Node) KnowledgeChanged(d knowledge.Delta, rep core.KnowledgeReport) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.markSeen("kb|" + d.ID())
	n.routeKB(d, []string{n.cfg.Name}, nil)
	if set := affectedTerms(rep); set != nil {
		n.reindexRouting(set)
	}
	n.kbDeltas.Set(int64(rep.Version.Deltas))
}

// affectedTerms returns the changed-canonical-term set of an applied
// delta, or nil when routing state cannot have changed: subscriptions
// and advertisements pass only the synonym stage, and the base reports
// exactly the terms whose canonical form changed — even across a
// suffix refold, where the old and new synonym tables are diffed. So
// concept/is-a/mapping deltas (empty set) never trigger the
// O(links × subscriptions) requench sweep, and synonym deltas
// re-canonicalize only entries mentioning one of the changed terms.
func affectedTerms(rep core.KnowledgeReport) map[string]bool {
	if !rep.Changed || len(rep.Affected) == 0 {
		return nil
	}
	set := make(map[string]bool, len(rep.Affected))
	for _, t := range rep.Affected {
		set[t] = true
	}
	return set
}

// AdvertisementChanged implements broker.Forwarder for local
// advertisements.
func (n *Node) AdvertisementChanged(adv matching.Advertisement, added bool) {
	aid := advID{Origin: n.cfg.Name, Client: adv.Publisher}
	hops := []string{n.cfg.Name}
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, l := range n.links {
		if added {
			n.sendAdv(l, aid, adv, hops)
		} else {
			l.send(Frame{Type: frameUnadv, Origin: aid.Origin, Client: aid.Client, Hops: hops})
		}
	}
}

// --- frame handling ---

func (n *Node) handleFrame(l *link, f Frame) {
	switch f.Type {
	case frameSub:
		if f.Sub == nil || f.Origin == "" || f.Origin == n.cfg.Name || visited(f.Hops, n.cfg.Name) {
			return
		}
		rid := routeID{Origin: f.Origin, ID: f.Sub.ID}
		e := routeEntry{raw: *f.Sub, canon: n.canonicalize(*f.Sub), hops: f.Hops}
		n.mu.Lock()
		l.interests[rid] = e
		fwd := routeEntry{raw: e.raw, canon: e.canon, hops: appendHop(f.Hops, n.cfg.Name)}
		for _, other := range n.links {
			if other == l || visited(fwd.hops, other.peer) {
				continue
			}
			n.offerSub(other, rid, fwd)
		}
		n.mu.Unlock()

	case frameUnsub:
		if f.Origin == "" || f.Origin == n.cfg.Name || visited(f.Hops, n.cfg.Name) {
			return
		}
		rid := routeID{Origin: f.Origin, ID: f.SubID}
		n.mu.Lock()
		delete(l.interests, rid)
		n.withdrawSub(rid, appendHop(f.Hops, n.cfg.Name), l)
		n.mu.Unlock()

	case frameAdv:
		if f.Origin == "" || f.Origin == n.cfg.Name || f.Client == "" || visited(f.Hops, n.cfg.Name) {
			return
		}
		aid := advID{Origin: f.Origin, Client: f.Client}
		adv := matching.NewAdvertisement(f.Client, f.Preds...)
		n.mu.Lock()
		if _, known := l.adverts[aid]; !known {
			l.adverts[aid] = advEntry{adv: adv, canon: n.canonicalizeAdv(adv), hops: f.Hops}
			hops := appendHop(f.Hops, n.cfg.Name)
			for _, other := range n.links {
				if other == l || visited(hops, other.peer) {
					continue
				}
				n.sendAdv(other, aid, adv, hops)
			}
			if n.cfg.Quench {
				// A new advertised space may unlock previously quenched
				// subscriptions toward this link.
				n.requench(l)
			}
		}
		n.mu.Unlock()

	case frameUnadv:
		if f.Origin == "" || f.Origin == n.cfg.Name || visited(f.Hops, n.cfg.Name) {
			return
		}
		aid := advID{Origin: f.Origin, Client: f.Client}
		n.mu.Lock()
		if _, known := l.adverts[aid]; known {
			delete(l.adverts, aid)
			hops := appendHop(f.Hops, n.cfg.Name)
			for _, other := range n.links {
				if other == l || visited(hops, other.peer) {
					continue
				}
				other.send(Frame{Type: frameUnadv, Origin: aid.Origin, Client: aid.Client, Hops: hops})
			}
		}
		n.mu.Unlock()

	case frameKB:
		if f.KB == nil || visited(f.Hops, n.cfg.Name) {
			return
		}
		id := "kb|" + f.KB.ID()
		n.mu.Lock()
		if n.seen[id] {
			n.kbDeduped.Inc()
			n.mu.Unlock()
			return
		}
		n.markSeen(id)
		n.mu.Unlock()

		// Application runs outside n.mu: it takes engine and base locks
		// and must not nest under routing state.
		rep, err := n.b.DeliverRemoteKnowledge(*f.KB)
		n.kbReceived.Inc()
		if err != nil {
			// Forward anyway: a broker that cannot apply the delta
			// (no knowledge base bound) must not sever the flood for
			// the federation behind it — every broker needs every
			// delta, or digests diverge permanently. Hop lists and the
			// seen window still bound the traffic; only the
			// newly-applied backstop is unavailable here.
			n.logf("overlay %s: remote knowledge delta rejected: %v", n.cfg.Name, err)
			n.mu.Lock()
			n.routeKB(*f.KB, appendHop(f.Hops, n.cfg.Name), l)
			n.mu.Unlock()
			return
		}
		if !rep.Applied {
			// The base had it already (seen-window eviction or snapshot
			// restore); whoever applied it first propagated it.
			n.kbDeduped.Inc()
			return
		}
		n.mu.Lock()
		n.routeKB(*f.KB, appendHop(f.Hops, n.cfg.Name), l)
		if set := affectedTerms(rep); set != nil {
			n.reindexRouting(set)
		}
		n.kbDeltas.Set(int64(rep.Version.Deltas))
		n.mu.Unlock()

	case framePub:
		if f.Event == nil || f.PubID == "" || visited(f.Hops, n.cfg.Name) {
			return
		}
		n.mu.Lock()
		if n.seen[f.PubID] {
			n.pubsDeduped.Inc()
			n.mu.Unlock()
			return
		}
		n.markSeen(f.PubID)
		n.mu.Unlock()

		n.pubsReceived.Inc()
		// Inherit the origin's sampling decision: spans on the frame
		// mean the publication is traced; record our hop's recv span.
		now := time.Now()
		if n.trc.StampRemote(f.PubID, l.peer, f.Trace, now) {
			n.trc.Recv(f.PubID, l.peer, now)
		}
		// Local delivery runs outside n.mu: it takes broker and engine
		// locks and must not nest under routing state.
		if _, err := n.b.DeliverRemotePub(*f.Event, f.PubID); err != nil {
			n.logf("overlay %s: remote publication rejected: %v", n.cfg.Name, err)
		}
		n.mu.Lock()
		n.routePub(*f.Event, f.PubID, appendHop(f.Hops, n.cfg.Name), l)
		n.mu.Unlock()

	case frameOps:
		if f.Ops == nil {
			return
		}
		n.handleOps(l, f)

	case frameTrace:
		if f.PubID == "" || len(f.Trace) == 0 {
			return
		}
		// Fold the downstream broker's span set into ours; when it told
		// us something new and we are not the origin, relay our merged
		// set one hop further upstream. Dedup by (broker, span seq)
		// makes the relay idempotent, so repeated reports converge
		// instead of echoing.
		if !n.trc.Merge(f.PubID, f.Trace) {
			return
		}
		if up := n.trc.Upstream(f.PubID); up != "" && up != l.peer {
			n.sendTraceReport(f.PubID, up, n.trc.Spans(f.PubID))
		}
	}
}

// reportUpstream is the tracer's Reporter: a terminal delivery outcome
// on this broker, for a publication that arrived from a peer, is sent
// back along the arrival link so the origin assembles the full tree.
// Runs on notify worker goroutines — send only enqueues.
func (n *Node) reportUpstream(pubID, upstream string, spans []trace.Span) {
	n.sendTraceReport(pubID, upstream, spans)
}

// sendTraceReport sends a trace frame to the named peer, if a link to
// it is up (trace reports are best-effort diagnostics: a torn link
// loses the report, never the delivery).
func (n *Node) sendTraceReport(pubID, peer string, spans []trace.Span) {
	if len(spans) == 0 {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, l := range n.links {
		if l.peer == peer {
			l.send(Frame{Type: frameTrace, PubID: pubID, Trace: spans})
			return
		}
	}
}

// --- routing helpers (callers hold n.mu) ---

// offerSub runs one subscription through quenching and the link's cover
// table and sends it when it survives both.
func (n *Node) offerSub(l *link, rid routeID, e routeEntry) {
	if n.cfg.Quench && len(l.adverts) > 0 {
		overlapping := false
		for _, ae := range l.adverts {
			// Canonical forms on both sides: an advertisement phrased
			// in a synonym term must still overlap a subscription
			// phrased in the root term (mirrors the broker-level
			// check in Broker.OverlappingSubscriptions).
			if matching.Overlaps(ae.canon, e.canon) {
				overlapping = true
				break
			}
		}
		if !overlapping {
			n.subsQuenched.Inc()
			return
		}
	}
	if !l.out.add(rid, e) {
		n.subsPruned.Inc()
		return
	}
	raw := e.raw.Clone()
	if err := l.send(Frame{Type: frameSub, Origin: rid.Origin, Sub: &raw, Hops: e.hops}); err != nil {
		return
	}
	n.subsForwarded.Inc()
}

// withdrawSub removes rid from every link's cover table (except from,
// the link the withdrawal arrived on), sending unsubs for entries the
// peers had seen and re-advertising entries the removal uncovered.
func (n *Node) withdrawSub(rid routeID, hops []string, from *link) {
	for _, l := range n.links {
		if l == from || visited(hops, l.peer) {
			continue
		}
		wasForwarded, reissue := l.out.remove(rid)
		if wasForwarded {
			l.send(Frame{Type: frameUnsub, Origin: rid.Origin, SubID: rid.ID, Hops: hops})
		}
		for _, rs := range reissue {
			raw := rs.e.raw.Clone()
			if err := l.send(Frame{Type: frameSub, Origin: rs.id.Origin, Sub: &raw, Hops: rs.e.hops}); err != nil {
				continue
			}
			n.subsReissued.Inc()
		}
	}
}

// requench re-offers every known subscription to l; the cover table
// drops duplicates, so only entries previously quenched (never offered)
// go out.
func (n *Node) requench(l *link) {
	for _, sub := range n.b.Subscriptions() {
		rid := routeID{Origin: n.cfg.Name, ID: sub.ID}
		n.offerSub(l, rid, routeEntry{raw: sub, canon: n.canonicalize(sub), hops: []string{n.cfg.Name}})
	}
	for _, sub := range n.b.DetachedSubscriptions() {
		rid := routeID{Origin: n.cfg.Name, ID: sub.ID}
		n.offerSub(l, rid, routeEntry{raw: sub, canon: n.canonicalize(sub), hops: []string{n.cfg.Name}})
	}
	for _, other := range n.links {
		if other == l {
			continue
		}
		for rid, e := range other.interests {
			fwd := routeEntry{raw: e.raw, canon: e.canon, hops: appendHop(e.hops, n.cfg.Name)}
			if visited(fwd.hops, l.peer) {
				continue
			}
			n.offerSub(l, rid, fwd)
		}
	}
}

// routePub forwards a publication along every link with a matching
// recorded interest, excluding the arrival link and visited peers.
// Traced publications carry this node's accumulated span set on the
// frame (the receiving hop inherits the sampling decision from its
// presence), with a forward span recorded per link first.
func (n *Node) routePub(ev message.Event, pubID string, hops []string, from *link) {
	var events []message.Event
	// evShared is one defensive clone of the event, made lazily and
	// shared by every forwarded frame: link writers only READ the frame
	// while encoding it, so the per-link copies this used to make were
	// pure allocation overhead (the hop list is shared the same way).
	var evShared *message.Event
	traced := n.trc.Traced(pubID)
	for _, l := range n.links {
		if l == from || visited(hops, l.peer) {
			continue
		}
		if len(l.interests) == 0 {
			continue
		}
		if events == nil {
			events = n.expandForRouting(ev)
		}
		if !interestsMatch(l, events) {
			continue
		}
		var spans []trace.Span
		if traced {
			n.trc.Forward(pubID, l.peer, time.Now())
			spans = n.trc.Spans(pubID)
		}
		if evShared == nil {
			evCopy := ev.Clone()
			evShared = &evCopy
		}
		if err := l.send(Frame{Type: framePub, Origin: hops[0], Event: evShared, PubID: pubID, Hops: hops, Trace: spans}); err != nil {
			continue
		}
		n.pubsForwarded.Inc()
	}
}

// routeKB floods a knowledge delta to every link except the arrival
// link and peers already on the hop list. Unlike publications, deltas
// are not interest-filtered: every broker needs every delta, or
// matching diverges.
func (n *Node) routeKB(d knowledge.Delta, hops []string, from *link) {
	for _, l := range n.links {
		if l == from || visited(hops, l.peer) {
			continue
		}
		dd := d
		if err := l.send(Frame{Type: frameKB, Origin: d.Origin, KB: &dd, Hops: hops}); err != nil {
			continue
		}
		n.kbForwarded.Inc()
	}
}

// reindexRouting re-canonicalizes the node's routing state after the
// knowledge base changed the canonical form of the given terms:
// recorded remote interests (the publication forwarding predicate) and
// per-link cover tables are recomputed under the new stage, suppressed
// subscriptions that the new knowledge uncovers are forwarded now, and
// — with quenching on — every link is re-offered the subscriptions its
// advertised space may newly overlap. Without this, a subscription
// recorded under old knowledge could silently stop routing
// publications phrased in the new terms, or stay quenched forever
// after the knowledge made it routable.
//
// Only entries whose RAW form mentions an affected term are
// re-canonicalized (the semantic-stage pass per entry is the expensive
// part of the sweep); everything else keeps its cached canonical form,
// which by the changed-term diff is still exact.
func (n *Node) reindexRouting(affected map[string]bool) {
	touches := func(s message.Subscription) bool { return s.TouchesTerms(affected) }
	for _, l := range n.links {
		for rid, e := range l.interests {
			if !touches(e.raw) {
				continue
			}
			e.canon = n.canonicalize(e.raw)
			l.interests[rid] = e
		}
		for aid, ae := range l.adverts {
			if !touches(message.Subscription{Subscriber: ae.adv.Publisher, Preds: ae.adv.Preds}) {
				continue
			}
			ae.canon = n.canonicalizeAdv(ae.adv)
			l.adverts[aid] = ae
		}
	}
	for _, l := range n.links {
		for _, rs := range l.out.recanonicalize(n.canonicalize, touches) {
			raw := rs.e.raw.Clone()
			if err := l.send(Frame{Type: frameSub, Origin: rs.id.Origin, Sub: &raw, Hops: rs.e.hops}); err != nil {
				continue
			}
			n.subsReissued.Inc()
		}
	}
	if n.cfg.Quench {
		// New canonical forms can overlap a link's advertised space
		// that quenching previously saw as disjoint. A quenched
		// subscription is recorded in neither the cover table nor the
		// suppressed set, so nothing above re-offers it — without this
		// pass it would stay unrouted until the client resubscribed.
		// The cover tables drop everything already sent.
		for _, l := range n.links {
			n.requench(l)
		}
	}
}

// interestsMatch reports whether any interest on the link matches any
// derived event.
func interestsMatch(l *link, events []message.Event) bool {
	for _, e := range l.interests {
		for _, ev := range events {
			if e.canon.Matches(ev) {
				return true
			}
		}
	}
	return false
}

// canonicalize maps a subscription into the local engine's indexed form
// so routing-table covering and matching agree with the engine.
func (n *Node) canonicalize(sub message.Subscription) message.Subscription {
	eng := n.b.Engine()
	if eng.Mode() != core.Semantic {
		return sub.Clone()
	}
	canon, _ := eng.Stage().ProcessSubscription(sub)
	return canon
}

// canonicalizeAdv maps an advertisement's predicates into the local
// canonical form, so quench overlap honours synonym equivalence on the
// advertisement side too.
func (n *Node) canonicalizeAdv(adv matching.Advertisement) matching.Advertisement {
	canon := n.canonicalize(message.Subscription{ID: 1, Subscriber: adv.Publisher, Preds: adv.Preds})
	return matching.NewAdvertisement(adv.Publisher, canon.Preds...)
}

// expandForRouting derives the event set the local engine would match,
// making the forwarding predicate semantically faithful.
func (n *Node) expandForRouting(ev message.Event) []message.Event {
	eng := n.b.Engine()
	if eng.Mode() != core.Semantic {
		return []message.Event{ev}
	}
	return eng.Stage().ProcessEvent(ev).Events
}

// sendAdv transmits one advertisement on a link. Hops must be the real
// travel path (origin first, this node included as the last hop): sync
// replays pass the stored path so an advertisement can never echo back
// to its origin and be mistaken for a remote one.
func (n *Node) sendAdv(l *link, aid advID, adv matching.Advertisement, hops []string) {
	if err := l.send(Frame{Type: frameAdv, Origin: aid.Origin, Client: aid.Client, Preds: adv.Preds, Hops: hops}); err != nil {
		return
	}
	n.advertsForwarded.Inc()
}

// markSeen records a publication ID in the bounded dedup window.
// Callers hold n.mu.
func (n *Node) markSeen(id string) {
	if n.seen[id] {
		return
	}
	n.seen[id] = true
	n.seenQ = append(n.seenQ, id)
	if len(n.seenQ) > seenCap {
		old := n.seenQ[0]
		n.seenQ = n.seenQ[1:]
		delete(n.seen, old)
	}
}

// appendHop returns hops + name in a fresh slice (frames alias their
// hop lists; sharing backing arrays across links would corrupt paths).
func appendHop(hops []string, name string) []string {
	out := make([]string, 0, len(hops)+1)
	out = append(out, hops...)
	return append(out, name)
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

// remoteStats snapshots the node's routing counters for broker.Stats.
func (n *Node) remoteStats() broker.RemoteStats {
	n.mu.Lock()
	peers := len(n.links)
	remoteSubs := 0
	adverts := 0
	for _, l := range n.links {
		remoteSubs += len(l.interests)
		adverts += len(l.adverts)
	}
	n.mu.Unlock()
	rs := broker.RemoteStats{
		Peers:         peers,
		RemoteSubs:    remoteSubs,
		AdvertsSeen:   uint64(adverts),
		SubsForwarded: n.subsForwarded.Value(),
		SubsPruned:    n.subsPruned.Value() + n.subsQuenched.Value(),
		SubsReissued:  n.subsReissued.Value(),
		PubsForwarded: n.pubsForwarded.Value(),
		PubsReceived:  n.pubsReceived.Value(),
		PubsDeduped:   n.pubsDeduped.Value(),
		KBForwarded:   n.kbForwarded.Value(),
		KBReceived:    n.kbReceived.Value(),
		KBDeduped:     n.kbDeduped.Value(),
	}
	if se, ok := n.b.Engine().(*ShardedEngine); ok {
		rs.ShardMatches = se.ShardMatchCounts()
	}
	return rs
}
