package overlay

import (
	"sort"

	"stopss/internal/matching"
	"stopss/internal/message"
)

// routeID identifies a routed subscription overlay-wide: broker-local
// SubIDs collide between brokers, so routing state is keyed by the
// originating broker plus its local ID.
type routeID struct {
	Origin string
	ID     message.SubID
}

// routeEntry is one routed subscription in both the form it travels in
// (raw — each broker canonicalizes against its own stage) and the form
// this node reasons with (canon — the local semantic canonicalization,
// which makes Covers and Matches agree with the local engine).
type routeEntry struct {
	raw   message.Subscription
	canon message.Subscription
	// hops is the broker path the subscription travelled to reach this
	// node (origin first, this node excluded); forwarding appends the
	// local name and never targets a peer already on the path.
	hops []string
}

// coverTable tracks what this node has told one peer: forwarded holds
// entries actually sent, suppressed holds entries pruned because a
// forwarded entry covers them. The table preserves the routing
// invariant that every suppressed subscription is covered by at least
// one forwarded subscription, so the peer routes a superset of the
// publications the suppressed entries would have requested.
//
// coverTable is not safe for concurrent use; the Node serializes access.
type coverTable struct {
	forwarded  map[routeID]routeEntry
	suppressed map[routeID]routeEntry
}

func newCoverTable() *coverTable {
	return &coverTable{
		forwarded:  make(map[routeID]routeEntry),
		suppressed: make(map[routeID]routeEntry),
	}
}

// add records a subscription headed for the peer and reports whether it
// must actually be sent: false means an already-forwarded subscription
// covers it and the entry was suppressed instead.
func (t *coverTable) add(id routeID, e routeEntry) bool {
	if _, dup := t.forwarded[id]; dup {
		return false
	}
	if _, dup := t.suppressed[id]; dup {
		return false
	}
	for _, f := range t.forwarded {
		if matching.Covers(f.canon, e.canon) {
			t.suppressed[id] = e
			return false
		}
	}
	t.forwarded[id] = e
	return true
}

// routeSend pairs a routing identity with its entry, for frames that
// must name the originating broker.
type routeSend struct {
	id routeID
	e  routeEntry
}

// remove withdraws a subscription. It reports whether the peer had
// actually been sent the entry (and so must receive an unsub) and which
// suppressed entries became uncovered by the removal and must be
// forwarded now. Promotion is iterative in deterministic order: a
// promoted entry may itself cover later candidates.
func (t *coverTable) remove(id routeID) (wasForwarded bool, reissue []routeSend) {
	if _, ok := t.suppressed[id]; ok {
		delete(t.suppressed, id)
		return false, nil
	}
	if _, ok := t.forwarded[id]; !ok {
		return false, nil
	}
	delete(t.forwarded, id)

	ids := make([]routeID, 0, len(t.suppressed))
	for sid := range t.suppressed {
		ids = append(ids, sid)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].Origin != ids[j].Origin {
			return ids[i].Origin < ids[j].Origin
		}
		return ids[i].ID < ids[j].ID
	})
	for _, sid := range ids {
		s := t.suppressed[sid]
		covered := false
		for _, f := range t.forwarded {
			if matching.Covers(f.canon, s.canon) {
				covered = true
				break
			}
		}
		if covered {
			continue
		}
		delete(t.suppressed, sid)
		t.forwarded[sid] = s
		reissue = append(reissue, routeSend{id: sid, e: s})
	}
	return true, reissue
}

// size reports (forwarded, suppressed) entry counts.
func (t *coverTable) size() (int, int) {
	return len(t.forwarded), len(t.suppressed)
}

// recanonicalize recomputes entries' canonical forms (a knowledge
// delta may have changed how raw subscriptions canonicalize) and
// repairs the covering invariant: suppressed entries no longer covered
// by any forwarded entry are promoted and returned so the caller can
// forward them now — without this, a subscription quenched under the
// old knowledge could remain unknown to a peer that now needs it.
// Previously forwarded entries stay forwarded even if the new
// knowledge would cover them: the peer holding extra routing state is
// harmless (a superset routes a superset).
//
// touches (nil = every entry) limits the canonical recomputation to
// entries whose raw form the knowledge change could have altered; the
// coverage re-check still runs over ALL suppressed entries, because an
// untouched suppressed entry can lose its cover when the entry
// covering it was re-canonicalized.
func (t *coverTable) recanonicalize(canon func(message.Subscription) message.Subscription, touches func(message.Subscription) bool) []routeSend {
	for id, e := range t.forwarded {
		if touches != nil && !touches(e.raw) {
			continue
		}
		e.canon = canon(e.raw)
		t.forwarded[id] = e
	}
	ids := make([]routeID, 0, len(t.suppressed))
	for sid := range t.suppressed {
		ids = append(ids, sid)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].Origin != ids[j].Origin {
			return ids[i].Origin < ids[j].Origin
		}
		return ids[i].ID < ids[j].ID
	})
	var promote []routeSend
	for _, sid := range ids {
		e := t.suppressed[sid]
		if touches == nil || touches(e.raw) {
			e.canon = canon(e.raw)
		}
		covered := false
		for _, f := range t.forwarded {
			if matching.Covers(f.canon, e.canon) {
				covered = true
				break
			}
		}
		if covered {
			t.suppressed[sid] = e
			continue
		}
		delete(t.suppressed, sid)
		t.forwarded[sid] = e
		promote = append(promote, routeSend{id: sid, e: e})
	}
	return promote
}
