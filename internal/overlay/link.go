package overlay

import (
	"bufio"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"stopss/internal/matching"
	"stopss/internal/metrics"
)

// advID identifies a routed advertisement overlay-wide (publisher names
// are broker-local, like SubIDs).
type advID struct {
	Origin string
	Client string
}

// advEntry is one routed advertisement together with the broker path it
// travelled (origin first, this node excluded) — preserved so state
// sync onto new links replays the real path and loop prevention keeps
// working for advertisements. canon is the advertisement under the
// local canonicalization (quench overlap must compare canonical forms
// on BOTH sides, like the broker-level check does); it is recomputed
// after every knowledge change.
type advEntry struct {
	adv   matching.Advertisement
	canon matching.Advertisement
	hops  []string
}

// Errors returned by link.send.
var (
	errLinkClosed = errors.New("overlay: link closed")
	errLinkSlow   = errors.New("overlay: peer too slow, link dropped")
)

// outqCap bounds the per-link outbound queue. A full queue means the
// peer is not draining its socket; the link is sacrificed rather than
// letting backpressure propagate into the routing lock (which could
// distributed-deadlock two mutually publishing nodes).
const outqCap = 1024

// link is one established peer connection. Routing state attached to
// the link (interests, adverts, the outbound cover table) is guarded by
// the owning Node's mutex; conn writes happen on a dedicated writer
// goroutine fed by a bounded queue, so callers never block on the
// network.
type link struct {
	conn Conn
	bw   *bufio.Writer
	br   *bufio.Reader

	peer string // peer node name, fixed by the hello exchange

	outq chan outFrame
	done chan struct{}
	once sync.Once

	// inflight counts frames accepted by send but not yet flushed onto
	// the connection. It spans the outbound queue AND the writer's
	// buffered batch, so a zero value means this link holds no
	// unserialized outbound work — the property simulation harnesses
	// poll (via Node.Pending) to detect quiescence without timers.
	inflight atomic.Int64

	// Per-link frame counters and the queue-wait histogram (time a
	// frame spends between send's enqueue and the writer picking it
	// up — the per-link backpressure signal of DESIGN §10), bound by
	// the Node at attach time so the hot paths skip registry lookups.
	sent, recv *metrics.Counter
	qwait      *metrics.Histogram

	// interests holds subscriptions received FROM this link: the
	// downstream demand reachable through the peer. Publications are
	// forwarded along the link only when one of these matches.
	interests map[routeID]routeEntry
	// adverts holds advertisements received from this link — the event
	// spaces of publishers reachable through the peer (used by
	// quenching).
	adverts map[advID]advEntry
	// out tracks what this node has advertised to the peer, with
	// covering-based suppression.
	out *coverTable
}

// handshakeTimeout bounds the hello exchange on a new connection.
const handshakeTimeout = 5 * time.Second

// newLink wraps an accepted or dialed connection and performs the hello
// exchange: each side sends its node name and reads the peer's. The
// writer goroutine is not yet running; the handshake writes directly.
func newLink(conn Conn, localName string) (*link, error) {
	l := &link{
		conn:      conn,
		bw:        bufio.NewWriter(conn),
		br:        bufio.NewReader(conn),
		outq:      make(chan outFrame, outqCap),
		done:      make(chan struct{}),
		interests: make(map[routeID]routeEntry),
		adverts:   make(map[advID]advEntry),
		out:       newCoverTable(),
	}
	deadline := time.Now().Add(handshakeTimeout)
	conn.SetDeadline(deadline)
	if err := writeFrame(l.bw, Frame{Type: frameHello, Name: localName}); err == nil {
		err = l.bw.Flush()
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("overlay: hello to %s: %w", conn.RemoteAddr(), err)
		}
	} else {
		conn.Close()
		return nil, fmt.Errorf("overlay: hello to %s: %w", conn.RemoteAddr(), err)
	}
	f, err := readFrame(l.br)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("overlay: awaiting hello from %s: %w", conn.RemoteAddr(), err)
	}
	if f.Type != frameHello || f.Name == "" {
		conn.Close()
		return nil, fmt.Errorf("overlay: expected hello from %s, got %q", conn.RemoteAddr(), f.Type)
	}
	if f.Name == localName {
		conn.Close()
		return nil, fmt.Errorf("overlay: peer %s has this node's own name %q", conn.RemoteAddr(), f.Name)
	}
	l.peer = f.Name
	conn.SetDeadline(time.Time{})
	return l, nil
}

// outFrame is one queued outbound frame stamped with its enqueue time,
// so the writer can report how long it waited for the socket.
type outFrame struct {
	f  Frame
	at time.Time
}

// writer drains the outbound queue onto the socket, batching frames
// already queued before each flush. It exits when the link fails or is
// closed.
func (l *link) writer(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		select {
		case of := <-l.outq:
			batch := int64(1)
			l.observeWait(of)
			if err := writeFrame(l.bw, of.f); err != nil {
				l.close()
				return
			}
		drain:
			for {
				select {
				case of := <-l.outq:
					l.observeWait(of)
					if err := writeFrame(l.bw, of.f); err != nil {
						l.close()
						return
					}
					batch++
				default:
					break drain
				}
			}
			if err := l.bw.Flush(); err != nil {
				l.close()
				return
			}
			// Only after the flush has the batch truly left this node;
			// decrementing earlier would let Pending read zero while
			// frames sit in the bufio buffer.
			l.inflight.Add(-batch)
		case <-l.done:
			return
		}
	}
}

// observeWait feeds the per-link queue-wait histogram.
func (l *link) observeWait(of outFrame) {
	if l.qwait != nil {
		l.qwait.Observe(time.Since(of.at))
	}
}

// send enqueues one frame without ever blocking on the network. A full
// queue drops the link (slow peer) instead of stalling the caller.
func (l *link) send(f Frame) error {
	select {
	case <-l.done:
		return errLinkClosed
	default:
	}
	// Count the frame before enqueueing so there is no instant where it
	// sits in the queue uncounted (quiescence detection relies on this).
	l.inflight.Add(1)
	select {
	case l.outq <- outFrame{f: f, at: time.Now()}:
		if l.sent != nil {
			l.sent.Inc()
		}
		return nil
	default:
		l.inflight.Add(-1)
		l.close()
		return errLinkSlow
	}
}

// close tears the connection down (idempotent); the read and writer
// loops exit on the resulting error/signal.
func (l *link) close() {
	l.once.Do(func() {
		close(l.done)
		l.conn.Close()
	})
}
