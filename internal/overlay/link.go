package overlay

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"stopss/internal/matching"
	"stopss/internal/message"
	"stopss/internal/metrics"
)

// advID identifies a routed advertisement overlay-wide (publisher names
// are broker-local, like SubIDs).
type advID struct {
	Origin string
	Client string
}

// advEntry is one routed advertisement together with the broker path it
// travelled (origin first, this node excluded) — preserved so state
// sync onto new links replays the real path and loop prevention keeps
// working for advertisements. canon is the advertisement under the
// local canonicalization (quench overlap must compare canonical forms
// on BOTH sides, like the broker-level check does); it is recomputed
// after every knowledge change.
type advEntry struct {
	adv   matching.Advertisement
	canon matching.Advertisement
	hops  []string
}

// Errors returned by link.send.
var (
	errLinkClosed = errors.New("overlay: link closed")
	errLinkSlow   = errors.New("overlay: peer too slow, link dropped")
)

// Errors from the hello exchange, distinguishable by the caller: a
// timeout means a silent or stalled peer (worth re-dialing), a
// malformed hello means the remote speaks something else entirely.
var (
	errHelloTimeout   = errors.New("overlay: hello handshake timed out")
	errHelloMalformed = errors.New("overlay: malformed hello")
)

// outqCap bounds the per-link outbound queue. A full queue means the
// peer is not draining its socket; the link is sacrificed rather than
// letting backpressure propagate into the routing lock (which could
// distributed-deadlock two mutually publishing nodes).
const outqCap = 1024

// link is one established peer connection. Routing state attached to
// the link (interests, adverts, the outbound cover table) is guarded by
// the owning Node's mutex; conn writes happen on a dedicated writer
// goroutine fed by a bounded queue, so callers never block on the
// network.
type link struct {
	conn Conn
	bw   *bufio.Writer
	br   *bufio.Reader

	peer string // peer node name, fixed by the hello exchange

	// codec is the negotiated wire-codec version: min(local max, peer
	// max) from the hello exchange. codecJSON framing is the fallback
	// that keeps mixed-version clusters interoperable.
	codec int

	// Encode scratch (writer goroutine only): binary frames are encoded
	// here first — so an oversized or unencodable frame is detected
	// before any byte reaches the connection and can be dropped without
	// desyncing the stream — then copied into bw. The buffer and the
	// interning dictionary persist for the link's lifetime, so steady
	// state encodes without allocating.
	enc message.BWriter

	// Decode state (read-loop goroutine only): the reusable body buffer
	// and the receive-direction dictionary mirroring the peer's encoder.
	rbuf  []byte
	rdict *message.Intern

	outq chan outFrame
	done chan struct{}
	once sync.Once

	// inflight counts frames accepted by send but not yet flushed onto
	// the connection. It spans the outbound queue AND the writer's
	// buffered batch, so a zero value means this link holds no
	// unserialized outbound work — the property simulation harnesses
	// poll (via Node.Pending) to detect quiescence without timers.
	// Frames stranded in the queue when the link closes are never
	// drained, so Pending ignores inflight for closed links (the race
	// where send enqueues between the writer's exit and close would
	// otherwise wedge quiescence forever).
	inflight atomic.Int64

	// Per-link frame counters and the queue-wait histogram (time a
	// frame spends between send's enqueue and the writer picking it
	// up — the per-link backpressure signal of DESIGN §10), bound by
	// the Node at attach time so the hot paths skip registry lookups.
	sent, recv *metrics.Counter
	// oversized counts frames dropped because their encoded body
	// exceeded maxFrameSize (node-wide counter, bound at attach).
	oversized *metrics.Counter
	qwait     *metrics.Histogram
	// logf receives drop warnings (bound to the node's logger at
	// attach; nil before that and in tests).
	logf func(format string, args ...any)

	// interests holds subscriptions received FROM this link: the
	// downstream demand reachable through the peer. Publications are
	// forwarded along the link only when one of these matches.
	interests map[routeID]routeEntry
	// adverts holds advertisements received from this link — the event
	// spaces of publishers reachable through the peer (used by
	// quenching).
	adverts map[advID]advEntry
	// out tracks what this node has advertised to the peer, with
	// covering-based suppression.
	out *coverTable
}

// handshakeTimeout bounds the hello exchange on a new connection.
const handshakeTimeout = 5 * time.Second

// newLink wraps an accepted or dialed connection and performs the hello
// exchange: each side sends its node name plus its maximum supported
// wire-codec version and reads the peer's; both then derive the same
// negotiated codec. The hello itself always travels in the legacy JSON
// framing — it is the only frame a version-0 peer is guaranteed to
// parse. The writer goroutine is not yet running; the handshake writes
// directly.
func newLink(conn Conn, localName string, maxCodec int) (*link, error) {
	l := &link{
		conn:      conn,
		bw:        bufio.NewWriter(conn),
		br:        bufio.NewReader(conn),
		outq:      make(chan outFrame, outqCap),
		done:      make(chan struct{}),
		interests: make(map[routeID]routeEntry),
		adverts:   make(map[advID]advEntry),
		out:       newCoverTable(),
	}
	fail := func(err error) (*link, error) {
		conn.Close()
		return nil, err
	}
	conn.SetDeadline(time.Now().Add(handshakeTimeout))
	if err := writeFrame(l.bw, Frame{Type: frameHello, Name: localName, Codec: maxCodec}); err != nil {
		return fail(fmt.Errorf("overlay: hello to %s: %w", conn.RemoteAddr(), err))
	}
	if err := l.bw.Flush(); err != nil {
		return fail(fmt.Errorf("overlay: hello to %s: %w", conn.RemoteAddr(), err))
	}
	f, err := readFrame(l.br, &l.rbuf)
	switch {
	case err != nil && isTimeout(err):
		return fail(fmt.Errorf("overlay: awaiting hello from %s: %w", conn.RemoteAddr(), errHelloTimeout))
	case err != nil:
		return fail(fmt.Errorf("overlay: awaiting hello from %s: %w (%v)", conn.RemoteAddr(), errHelloMalformed, err))
	case f.Type != frameHello || f.Name == "":
		return fail(fmt.Errorf("overlay: from %s got %q frame: %w", conn.RemoteAddr(), f.Type, errHelloMalformed))
	case f.Name == localName:
		return fail(fmt.Errorf("overlay: peer %s has this node's own name %q", conn.RemoteAddr(), f.Name))
	}
	l.peer = f.Name
	l.codec = min(maxCodec, f.Codec)
	if l.codec < codecJSON {
		l.codec = codecJSON // a negative advertisement is meaningless
	}
	if l.codec >= codecBinary {
		if l.codec > codecOps {
			l.codec = codecOps // cap at the highest version we implement
		}
		l.enc.Dict = message.NewIntern()
		l.rdict = message.NewIntern()
	}
	conn.SetDeadline(time.Time{})
	return l, nil
}

// isTimeout reports whether a handshake read failed on the connection
// deadline rather than on the peer's bytes.
func isTimeout(err error) bool {
	if errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// readFrame decodes the next inbound frame under the link's negotiated
// codec, reusing the link's body buffer. Read-loop goroutine only.
func (l *link) readFrame() (Frame, error) {
	if l.codec >= codecBinary {
		return readFrameBinary(l.br, &l.rbuf, l.rdict)
	}
	return readFrame(l.br, &l.rbuf)
}

// writeFrame encodes one outbound frame into the link's buffered
// writer under the negotiated codec. Droppable failures (see
// droppableWriteError) are reported before any byte reaches the
// stream; for the binary codec the interning dictionary is rolled back
// too, so the peer's table stays in sync. Writer goroutine only.
func (l *link) writeFrame(f Frame) error {
	if l.codec < codecBinary {
		return writeFrame(l.bw, f)
	}
	mark := l.enc.Dict.Mark()
	l.enc.Reset()
	if err := appendFrameBinary(&l.enc, f); err != nil {
		l.enc.Dict.Rollback(mark)
		return err
	}
	if l.enc.Len() > maxFrameSize {
		l.enc.Dict.Rollback(mark)
		return fmt.Errorf("overlay: %s frame of %d bytes: %w", f.Type, l.enc.Len(), errFrameTooLarge)
	}
	var hdr [binary.MaxVarintLen32]byte
	n := binary.PutUvarint(hdr[:], uint64(l.enc.Len()))
	if _, err := l.bw.Write(hdr[:n]); err != nil {
		return err
	}
	_, err := l.bw.Write(l.enc.Buf)
	return err
}

// outFrame is one queued outbound frame stamped with its enqueue time,
// so the writer can report how long it waited for the socket.
type outFrame struct {
	f  Frame
	at time.Time
}

// writer drains the outbound queue onto the socket, batching frames
// already queued before each flush. It exits when the link fails or is
// closed. Frames whose encoding fails before touching the stream
// (oversized bodies — a journal payload can exceed maxFrameSize once
// trace spans inflate the frame) are dropped and counted individually;
// only actual connection errors tear the link down.
func (l *link) writer(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		select {
		case of := <-l.outq:
			batch := int64(1)
			if err := l.emit(of, &batch); err != nil {
				l.inflight.Add(-batch)
				l.close()
				return
			}
		drain:
			for {
				select {
				case of := <-l.outq:
					batch++
					if err := l.emit(of, &batch); err != nil {
						l.inflight.Add(-batch)
						l.close()
						return
					}
				default:
					break drain
				}
			}
			if err := l.bw.Flush(); err != nil {
				l.inflight.Add(-batch)
				l.close()
				return
			}
			// Only after the flush has the batch truly left this node;
			// decrementing earlier would let Pending read zero while
			// frames sit in the bufio buffer.
			l.inflight.Add(-batch)
		case <-l.done:
			return
		}
	}
}

// emit writes one dequeued frame into the buffered writer. A droppable
// encoding failure discards the frame — its inflight count is settled
// immediately and it leaves the batch — and keeps the link; any other
// error is a connection failure the caller must close on (the caller
// settles the remaining batch).
func (l *link) emit(of outFrame, batch *int64) error {
	l.observeWait(of)
	err := l.writeFrame(of.f)
	if err == nil {
		return nil
	}
	if droppableWriteError(err) {
		*batch--
		l.inflight.Add(-1)
		if l.oversized != nil {
			l.oversized.Inc()
		}
		if l.logf != nil {
			l.logf("overlay: dropping %s frame to %s: %v", of.f.Type, l.peer, err)
		}
		return nil
	}
	return err
}

// observeWait feeds the per-link queue-wait histogram.
func (l *link) observeWait(of outFrame) {
	if l.qwait != nil {
		l.qwait.Observe(time.Since(of.at))
	}
}

// send enqueues one frame without ever blocking on the network. A full
// queue drops the link (slow peer) instead of stalling the caller.
func (l *link) send(f Frame) error {
	select {
	case <-l.done:
		return errLinkClosed
	default:
	}
	// Count the frame before enqueueing so there is no instant where it
	// sits in the queue uncounted (quiescence detection relies on this).
	l.inflight.Add(1)
	select {
	case l.outq <- outFrame{f: f, at: time.Now()}:
		if l.sent != nil {
			l.sent.Inc()
		}
		return nil
	default:
		l.inflight.Add(-1)
		l.close()
		return errLinkSlow
	}
}

// close tears the connection down (idempotent); the read and writer
// loops exit on the resulting error/signal.
func (l *link) close() {
	l.once.Do(func() {
		close(l.done)
		l.conn.Close()
	})
}
