package overlay

import (
	"slices"
	"sync"
	"testing"

	"stopss/internal/core"
	"stopss/internal/message"
	"stopss/internal/metrics"
	"stopss/internal/semantic"
	"stopss/internal/workload"
)

// shardedFixture builds a single reference engine and an n-shard pool
// over the same knowledge base, loaded with the same subscriptions.
func shardedFixture(t testing.TB, shards, subs int, mode core.Mode) (*core.Engine, *ShardedEngine, []message.Event) {
	t.Helper()
	gen, err := workload.New(workload.Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	stage := gen.KB().Stage(semantic.FullConfig())
	single := core.NewEngine(stage, core.WithMode(mode))
	pool := NewSharded(shards, func(int) *core.Engine {
		return core.NewEngine(stage, core.WithMode(mode))
	})
	t.Cleanup(pool.Close)
	for _, s := range gen.Subscriptions(subs) {
		if err := single.Subscribe(s); err != nil {
			t.Fatal(err)
		}
		if err := pool.Subscribe(s); err != nil {
			t.Fatal(err)
		}
	}
	return single, pool, gen.Events(64)
}

func TestShardedMatchesSingleEngine(t *testing.T) {
	for _, mode := range []core.Mode{core.Syntactic, core.Semantic} {
		t.Run(mode.String(), func(t *testing.T) {
			single, pool, events := shardedFixture(t, 4, 400, mode)
			if pool.Size() != single.Size() {
				t.Fatalf("pool indexes %d subs, single %d", pool.Size(), single.Size())
			}
			for _, ev := range events {
				want, err := single.Publish(ev)
				if err != nil {
					t.Fatal(err)
				}
				got, err := pool.Publish(ev)
				if err != nil {
					t.Fatal(err)
				}
				if !slices.Equal(got.Matches, want.Matches) {
					t.Fatalf("event %v: sharded matches %v, single %v", ev, got.Matches, want.Matches)
				}
			}
		})
	}
}

func TestShardedDistributesSubscriptions(t *testing.T) {
	_, pool, _ := shardedFixture(t, 4, 400, core.Syntactic)
	for i, sh := range pool.shards {
		if sh.Size() == 0 {
			t.Errorf("shard %d is empty — hash placement is degenerate", i)
		}
	}
}

func TestShardedUnsubscribeAndLookup(t *testing.T) {
	_, pool, _ := shardedFixture(t, 3, 50, core.Syntactic)
	if _, ok := pool.Subscription(17); !ok {
		t.Fatal("subscription 17 must be retrievable")
	}
	if !pool.Unsubscribe(17) {
		t.Fatal("unsubscribe of a live subscription must report true")
	}
	if pool.Unsubscribe(17) {
		t.Fatal("second unsubscribe must report false")
	}
	if _, ok := pool.Subscription(17); ok {
		t.Fatal("removed subscription must not be retrievable")
	}
	if pool.Size() != 49 {
		t.Fatalf("size = %d after one removal of 50, want 49", pool.Size())
	}
}

func TestShardedSetModeReindexes(t *testing.T) {
	single, pool, events := shardedFixture(t, 4, 200, core.Semantic)
	if err := single.SetMode(core.Syntactic); err != nil {
		t.Fatal(err)
	}
	if err := pool.SetMode(core.Syntactic); err != nil {
		t.Fatal(err)
	}
	if pool.Mode() != core.Syntactic {
		t.Fatalf("mode = %v after switch", pool.Mode())
	}
	for _, ev := range events[:16] {
		want, _ := single.Publish(ev)
		got, err := pool.Publish(ev)
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(got.Matches, want.Matches) {
			t.Fatalf("post-switch mismatch on %v: %v vs %v", ev, got.Matches, want.Matches)
		}
	}
}

func TestShardedConcurrentPublish(t *testing.T) {
	single, pool, events := shardedFixture(t, 4, 300, core.Semantic)
	want := make(map[int][]message.SubID, len(events))
	for i, ev := range events {
		r, err := single.Publish(ev)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r.Matches
	}
	var wg sync.WaitGroup
	errs := make(chan string, len(events))
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(events); i += 8 {
				got, err := pool.Publish(events[i])
				if err != nil {
					errs <- err.Error()
					return
				}
				if !slices.Equal(got.Matches, want[i]) {
					errs <- "match divergence under concurrency"
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	st := pool.Stats()
	if st.Events != uint64(len(events)) {
		t.Fatalf("stats.Events = %d, want %d", st.Events, len(events))
	}
	var shardTotal uint64
	for _, c := range pool.ShardMatchCounts() {
		shardTotal += c
	}
	if shardTotal < st.Matches {
		t.Fatalf("per-shard match counts %d < unioned matches %d", shardTotal, st.Matches)
	}
}

func TestShardedRegistryCounters(t *testing.T) {
	reg := metrics.NewRegistry()
	gen, err := workload.New(workload.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	stage := gen.KB().Stage(semantic.FullConfig())
	pool := NewSharded(2, func(int) *core.Engine {
		return core.NewEngine(stage, core.WithMode(core.Syntactic))
	}, WithRegistry(reg))
	defer pool.Close()
	for _, s := range gen.Subscriptions(100) {
		if err := pool.Subscribe(s); err != nil {
			t.Fatal(err)
		}
	}
	for _, ev := range gen.Events(32) {
		if _, err := pool.Publish(ev); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Counter("engine.sharded.publishes").Value(); got != 32 {
		t.Fatalf("publishes counter = %d, want 32", got)
	}
	total := reg.Counter("engine.shard.0.matches").Value() + reg.Counter("engine.shard.1.matches").Value()
	if total != pool.Stats().Matches {
		t.Fatalf("registry shard matches %d != stats matches %d", total, pool.Stats().Matches)
	}
}

func TestShardedClosedPublishFails(t *testing.T) {
	pool := NewSharded(2, func(int) *core.Engine { return core.NewEngine(nil) })
	pool.Close()
	pool.Close() // idempotent
	if _, err := pool.Publish(message.E("x", 1)); err == nil {
		t.Fatal("publish after Close must fail")
	}
}
