package overlay

import (
	"bufio"
	"bytes"
	"testing"

	"stopss/internal/message"
)

// BenchmarkWireCodec measures one pub frame through encode + decode
// under each framing, with warmed per-link dictionaries for the binary
// codec — the steady-state per-hop serialization cost the overlay pays
// on every forwarded publication. Gated in CI on both ns/op and
// allocs/op (EXPERIMENTS.md has the comparison table).
func BenchmarkWireCodec(b *testing.B) {
	ev := message.E("x", 42, "city", "Toronto", "score", 3.25)
	f := Frame{Type: framePub, Origin: "broker-a", PubID: "broker-a#e1/99",
		Event: &ev, Hops: []string{"broker-a", "broker-b"}}

	b.Run("json", func(b *testing.B) {
		var buf bytes.Buffer
		var rbuf []byte
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := writeFrame(&buf, f); err != nil {
				b.Fatal(err)
			}
			if _, err := readFrame(bufio.NewReader(&buf), &rbuf); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("binary", func(b *testing.B) {
		var w message.BWriter
		w.Dict = message.NewIntern()
		rdict := message.NewIntern()
		// Warm both dictionaries so the loop measures steady state.
		if err := appendFrameBinary(&w, f); err != nil {
			b.Fatal(err)
		}
		if _, err := decodeFrameBinary(w.Buf, rdict); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.Reset()
			if err := appendFrameBinary(&w, f); err != nil {
				b.Fatal(err)
			}
			if _, err := decodeFrameBinary(w.Buf, rdict); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Ops gossip frames are low-rate (one per broker per refresh
	// interval), so these sub-benchmarks guard against accidental bloat
	// of the summary payload rather than a hot path.
	ops := benchOpsFrame()

	b.Run("ops-json", func(b *testing.B) {
		var buf bytes.Buffer
		var rbuf []byte
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := writeFrame(&buf, ops); err != nil {
				b.Fatal(err)
			}
			if _, err := readFrame(bufio.NewReader(&buf), &rbuf); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("ops-binary", func(b *testing.B) {
		var w message.BWriter
		w.Dict = message.NewIntern()
		rdict := message.NewIntern()
		if err := appendFrameBinary(&w, ops); err != nil {
			b.Fatal(err)
		}
		if _, err := decodeFrameBinary(w.Buf, rdict); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.Reset()
			if err := appendFrameBinary(&w, ops); err != nil {
				b.Fatal(err)
			}
			if _, err := decodeFrameBinary(w.Buf, rdict); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchOpsFrame builds a representative ops frame: a busy broker with
// two links, a deep journal and live caches.
func benchOpsFrame() Frame {
	return Frame{Type: frameOps, Origin: "broker-a", Hops: []string{"broker-a", "broker-b"},
		Ops: &OpsSummary{
			Origin: "broker-a", Epoch: "deadbeef", Seq: 12345,
			Links: []OpsLink{
				{Peer: "broker-b", Codec: 2, Queue: 3, Inflight: 5, Sent: 99999, Recv: 88888},
				{Peer: "broker-c", Codec: 1, Sent: 777, Recv: 555},
			},
			Subscriptions: 2048, Durable: 512, Detached: 64,
			Published: 1 << 20, Delivered: 1 << 19, Parked: 33, DeadLetters: 2,
			JournalHead: 1 << 20, JournalFloor: 4096, RetentionLost: 16,
			StoreResident: 448, StorePages: 1024,
			KBVersion: "a1b2c3d4", KBDeltas: 42,
			ExpansionHitRate: 0.93, Goroutines: 87, HeapBytes: 64 << 20,
		}}
}
