package overlay

import (
	"bufio"
	"bytes"
	"testing"

	"stopss/internal/message"
)

// BenchmarkWireCodec measures one pub frame through encode + decode
// under each framing, with warmed per-link dictionaries for the binary
// codec — the steady-state per-hop serialization cost the overlay pays
// on every forwarded publication. Gated in CI on both ns/op and
// allocs/op (EXPERIMENTS.md has the comparison table).
func BenchmarkWireCodec(b *testing.B) {
	ev := message.E("x", 42, "city", "Toronto", "score", 3.25)
	f := Frame{Type: framePub, Origin: "broker-a", PubID: "broker-a#e1/99",
		Event: &ev, Hops: []string{"broker-a", "broker-b"}}

	b.Run("json", func(b *testing.B) {
		var buf bytes.Buffer
		var rbuf []byte
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := writeFrame(&buf, f); err != nil {
				b.Fatal(err)
			}
			if _, err := readFrame(bufio.NewReader(&buf), &rbuf); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("binary", func(b *testing.B) {
		var w message.BWriter
		w.Dict = message.NewIntern()
		rdict := message.NewIntern()
		// Warm both dictionaries so the loop measures steady state.
		if err := appendFrameBinary(&w, f); err != nil {
			b.Fatal(err)
		}
		if _, err := decodeFrameBinary(w.Buf, rdict); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.Reset()
			if err := appendFrameBinary(&w, f); err != nil {
				b.Fatal(err)
			}
			if _, err := decodeFrameBinary(w.Buf, rdict); err != nil {
				b.Fatal(err)
			}
		}
	})
}
