package overlay

import (
	"crypto/rand"
	"encoding/hex"
	"sort"
	"strconv"
	"time"

	"stopss/internal/metrics"
)

// Cluster introspection gossip (DESIGN §10). Each node periodically —
// and on every link (re)establishment — floods a compact summary of
// its own health: link backpressure, journal head/floor, store
// residency, knowledge version, cache hit rates, process vitals. The
// summaries ride the same hop-list/dedup flood machinery as
// publications (dedup key "ops|origin#epoch/seq"), so every broker
// converges on an eventually-consistent view of the whole federation
// — served at GET /api/v1/cluster — with no coordinator and no
// full-mesh scrape fan-out.
//
// Ordering is (Stamp, Seq): Seq is per-incarnation monotonic and the
// origin's wall-clock stamp dominates across incarnations, so a
// restarted broker's fresh summaries replace its previous life's even
// though its sequence counter reset (clock skew between brokers only
// skews the ops view, never routing). Staleness is local: an entry is
// flagged stale when its locally observed receive time ages past
// Config.OpsStaleAfter, and flagged down immediately when the direct
// link to that broker fails — the event-driven signal that keeps the
// simulation's clock-free fault scenarios deterministic.

// OpsLink is one peer link's health as seen by the reporting broker.
type OpsLink struct {
	Peer     string `json:"peer"`
	Codec    int    `json:"codec"`
	Queue    int    `json:"queue"`    // frames waiting in the outbound queue
	Inflight int64  `json:"inflight"` // queued + writer-batched frames
	Sent     uint64 `json:"sent"`
	Recv     uint64 `json:"recv"`
}

// OpsSummary is one broker's self-reported health, gossiped on ops
// frames. It is deliberately small (a few hundred bytes of JSON): the
// whole cluster view must stay cheap to flood at a low rate.
type OpsSummary struct {
	Origin string `json:"origin"`
	// Epoch identifies the broker incarnation that produced the
	// summary (restart detection for operators; ordering uses Stamp).
	Epoch string `json:"epoch"`
	// Seq is per-incarnation monotonic; with Stamp it orders summaries.
	Seq uint64 `json:"seq"`
	// Stamp is the origin's wall clock at summary build time.
	Stamp time.Time `json:"stamp"`

	Links []OpsLink `json:"links,omitempty"`

	Subscriptions int    `json:"subscriptions"`
	Durable       int    `json:"durable"`
	Detached      int    `json:"detached,omitempty"`
	Published     uint64 `json:"published"`
	Delivered     uint64 `json:"delivered"`
	Parked        uint64 `json:"parked,omitempty"`
	DeadLetters   int    `json:"dead_letters,omitempty"`

	JournalHead   uint64 `json:"journal_head,omitempty"`
	JournalFloor  uint64 `json:"journal_floor,omitempty"`
	RetentionLost uint64 `json:"retention_lost,omitempty"`

	StoreResident int `json:"store_resident,omitempty"`
	StorePages    int `json:"store_pages,omitempty"`

	KBVersion string `json:"kb_version,omitempty"`
	KBDeltas  uint64 `json:"kb_deltas,omitempty"`

	// ExpansionHitRate is the semantic expansion cache's hit fraction
	// in [0,1]; -1 when the cache has seen no traffic.
	ExpansionHitRate float64 `json:"expansion_hit_rate"`

	Goroutines int64  `json:"goroutines"`
	HeapBytes  uint64 `json:"heap_bytes"`
}

// opsEntry is one stored peer summary plus the local metadata the view
// derives staleness from.
type opsEntry struct {
	summary OpsSummary
	hops    []string  // travel path, origin first (relayed on link sync)
	recvAt  time.Time // local receive time; staleness ages against it
	down    bool      // direct link to the origin failed since receipt
}

// ClusterEntry is one broker's row in the federation health view.
type ClusterEntry struct {
	Broker string `json:"broker"`
	Self   bool   `json:"self,omitempty"`
	// AgeMS is milliseconds since this broker last heard from the
	// entry's origin (0 for self).
	AgeMS int64 `json:"age_ms"`
	// Stale means the summary can no longer be trusted: the direct
	// link to the origin failed (Down) or the summary aged past the
	// node's staleness threshold.
	Stale bool `json:"stale"`
	// Down means a direct link to this broker failed and no fresh
	// summary has arrived since.
	Down    bool       `json:"down,omitempty"`
	Summary OpsSummary `json:"summary"`
}

// defaultOpsStaleAfter is the staleness threshold when the Config
// leaves OpsStaleAfter zero.
const defaultOpsStaleAfter = 30 * time.Second

// newOpsEpoch mints a per-incarnation ops epoch (restart detection).
func newOpsEpoch() string {
	var b [4]byte
	_, _ = rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// opsKey is the flood-dedup key of one summary.
func opsKey(s OpsSummary) string {
	return "ops|" + s.Origin + "#" + s.Epoch + "/" + strconv.FormatUint(s.Seq, 10)
}

// buildOps assembles this node's current health summary. It reads
// broker stats (broker/engine locks) and therefore must run OUTSIDE
// n.mu — broker.Stats calls back into the node's remote-stats source,
// which takes n.mu. Seq/Stamp are filled by the caller under n.mu.
func (n *Node) buildOps() OpsSummary {
	st := n.b.Stats()
	rt := metrics.ReadRuntime()
	s := OpsSummary{
		Origin:        n.cfg.Name,
		Epoch:         n.opsEpoch,
		Subscriptions: st.Subscriptions,
		Durable:       st.Durable,
		Detached:      st.Detached,
		Published:     st.Published,
		Delivered:     st.Notify.Delivered,
		Parked:        st.Parked,
		DeadLetters:   st.Notify.DeadLetters,
		KBVersion:     st.Engine.KBVersion,
		KBDeltas:      st.Engine.KBDeltas,
		Goroutines:    rt.Goroutines,
		HeapBytes:     rt.HeapBytes,
	}
	if st.JournalEnabled {
		s.JournalHead = st.Journal.NextSeq - 1
		s.JournalFloor = st.Journal.FirstSeq
		s.RetentionLost = st.Journal.RetentionLostRecords
	}
	if st.StoreEnabled {
		s.StoreResident = st.Store.Resident
		s.StorePages = st.Store.Pages
	}
	if hits, misses := st.Engine.ExpansionHits, st.Engine.ExpansionMisses; hits+misses > 0 {
		s.ExpansionHitRate = float64(hits) / float64(hits+misses)
	} else {
		s.ExpansionHitRate = -1
	}
	n.mu.Lock()
	s.Links = make([]OpsLink, 0, len(n.links))
	for _, l := range n.links {
		s.Links = append(s.Links, OpsLink{
			Peer:     l.peer,
			Codec:    l.codec,
			Queue:    len(l.outq),
			Inflight: l.inflight.Load(),
			Sent:     l.sent.Value(),
			Recv:     l.recv.Value(),
		})
	}
	n.mu.Unlock()
	sort.Slice(s.Links, func(i, j int) bool { return s.Links[i].Peer < s.Links[j].Peer })
	return s
}

// PublishOps builds a fresh health summary and floods it to every
// peer. Called on link establishment (attach), by the optional
// refresh ticker (Config.OpsInterval), and by anything that wants the
// federation to see current numbers now.
func (n *Node) PublishOps() {
	s := n.buildOps()
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.opsSeq++
	s.Seq = n.opsSeq
	s.Stamp = time.Now()
	hops := []string{n.cfg.Name}
	n.markSeen(opsKey(s))
	n.storeOps(s, hops)
	for _, l := range n.links {
		n.sendOps(l, s, hops)
	}
	n.mu.Unlock()
}

// storeOps folds one summary into the local cluster view, newest-wins
// by (Stamp, Seq). Returns whether the summary was fresh (and so worth
// relaying). Callers hold n.mu.
func (n *Node) storeOps(s OpsSummary, hops []string) bool {
	if e, ok := n.opsView[s.Origin]; ok {
		old := e.summary
		if s.Stamp.Before(old.Stamp) || (s.Stamp.Equal(old.Stamp) && s.Seq <= old.Seq) {
			return false
		}
	}
	n.opsView[s.Origin] = &opsEntry{summary: s, hops: hops, recvAt: time.Now()}
	return true
}

// sendOps transmits one summary on a link when the negotiated codec
// can carry it: v2 binary links encode it natively; JSON links carry
// it as an ordinary frame that pre-ops peers ignore as an unknown
// type. v1 binary links are skipped — their decoder treats an unknown
// frame code as stream corruption and would tear the link down.
func (n *Node) sendOps(l *link, s OpsSummary, hops []string) {
	if l.codec == codecBinary {
		return
	}
	ss := s
	if l.send(Frame{Type: frameOps, Origin: s.Origin, Ops: &ss, Hops: hops}) == nil {
		n.opsForwarded.Inc()
	}
}

// handleOps processes one inbound ops frame: dedup, fold into the
// view, relay to the remaining links.
func (n *Node) handleOps(l *link, f Frame) {
	s := *f.Ops
	if s.Origin == "" || s.Origin == n.cfg.Name || visited(f.Hops, n.cfg.Name) {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	id := opsKey(s)
	if n.seen[id] {
		return
	}
	n.markSeen(id)
	n.opsReceived.Inc()
	hops := appendHop(f.Hops, n.cfg.Name)
	if !n.storeOps(s, hops) {
		return
	}
	for _, other := range n.links {
		if other == l || visited(hops, other.peer) {
			continue
		}
		n.sendOps(other, s, hops)
	}
}

// syncOps relays every stored peer summary to a fresh link, so a new
// or healed peer converges on the cluster view without waiting for the
// next refresh from each origin. Stored hops already end with this
// node (handleOps appends it before storing), so they are relayed
// as-is. Callers hold n.mu.
func (n *Node) syncOps(l *link) {
	for origin, e := range n.opsView {
		if origin == n.cfg.Name || e.down {
			continue
		}
		if visited(e.hops, l.peer) {
			continue
		}
		n.sendOps(l, e.summary, e.hops)
	}
}

// markPeerDown flags the view entry of a directly linked peer whose
// link just failed. The flag clears when a fresh summary arrives
// (storeOps replaces the entry). Callers hold n.mu.
func (n *Node) markPeerDown(peer string) {
	if e, ok := n.opsView[peer]; ok {
		e.down = true
	}
}

// ClusterView renders the node's current federation health view: one
// entry per known broker (self included, built fresh), sorted by
// name. Staleness is evaluated at call time against
// Config.OpsStaleAfter (default 30s).
func (n *Node) ClusterView() []ClusterEntry {
	staleAfter := n.cfg.OpsStaleAfter
	if staleAfter <= 0 {
		staleAfter = defaultOpsStaleAfter
	}
	self := n.buildOps()
	now := time.Now()
	n.mu.Lock()
	self.Seq = n.opsSeq
	self.Stamp = now
	out := make([]ClusterEntry, 0, len(n.opsView)+1)
	out = append(out, ClusterEntry{Broker: n.cfg.Name, Self: true, Summary: self})
	for origin, e := range n.opsView {
		if origin == n.cfg.Name {
			continue
		}
		age := now.Sub(e.recvAt)
		out = append(out, ClusterEntry{
			Broker:  origin,
			AgeMS:   age.Milliseconds(),
			Stale:   e.down || age > staleAfter,
			Down:    e.down,
			Summary: e.summary,
		})
	}
	n.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Broker < out[j].Broker })
	return out
}

// opsLoop is the optional low-rate refresh ticker (Config.OpsInterval
// > 0): production clusters keep the view fresh without any link
// churn; the clock-free simulation harness leaves it off and relies on
// the event-driven emissions.
func (n *Node) opsLoop(interval time.Duration) {
	defer n.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-n.opsStop:
			return
		case <-t.C:
			n.PublishOps()
		}
	}
}
