package overlay

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"stopss/internal/broker"
	"stopss/internal/core"
	"stopss/internal/message"
	"stopss/internal/notify"
)

// newCodecBroker is newTestBroker with the wire codec pinned.
func newCodecBroker(t *testing.T, name string, disableBinary bool) *testBroker {
	t.Helper()
	ch := make(chan notify.Notification, 256)
	nt, err := notify.NewEngine(notify.Config{Workers: 2}, &chanTransport{ch: ch})
	if err != nil {
		t.Fatal(err)
	}
	b := broker.New(core.NewEngine(nil), nt)
	node, err := NewNode(Config{Name: name, Listen: "127.0.0.1:0", DisableBinary: disableBinary}, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		node.Close()
		nt.Close()
	})
	return &testBroker{b: b, node: node, nt: nt, ch: ch}
}

// TestOversizedFrameDropsFrameNotLink is the regression test for the
// link-teardown bug: a single publication whose encoded frame exceeds
// maxFrameSize used to error inside link.writer, which closed the whole
// link — one big publication tore down the peering and re-dial loops
// forever. The writer must instead drop that one frame (counted in
// overlay.frames_oversized) and keep the link carrying everything else.
func TestOversizedFrameDropsFrameNotLink(t *testing.T) {
	for _, tc := range []struct {
		name          string
		disableBinary bool
	}{
		{"binary", false},
		{"json", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := newCodecBroker(t, "A", tc.disableBinary)
			b := newCodecBroker(t, "B", tc.disableBinary)
			if err := b.node.Dial(a.node.Addr()); err != nil {
				t.Fatal(err)
			}
			waitFor(t, "link up", func() bool { return len(a.node.Peers()) == 1 })

			b.subscribe(t, "bob", message.Pred("x", message.OpGe, message.Int(0)))
			waitFor(t, "subscription at A", func() bool {
				return a.b.Stats().Remote.RemoteSubs == 1
			})

			if _, err := a.b.Publish(message.E("x", 1)); err != nil {
				t.Fatal(err)
			}
			expectNotification(t, b.ch, "bob")

			// The oversized publication matches bob too, so A routes it
			// at the link — where encoding must drop it.
			big := message.E("x", 2, "payload", message.String(strings.Repeat("p", maxFrameSize)))
			if _, err := a.b.Publish(big); err != nil {
				t.Fatal(err)
			}
			oversized := a.node.Registry().Counter("overlay.frames_oversized")
			waitFor(t, "oversized frame counted", func() bool { return oversized.Value() == 1 })
			expectSilence(t, b.ch)

			// The link survived: still peered, and the next publication
			// flows through it.
			if got := len(a.node.Peers()); got != 1 {
				t.Fatalf("oversized frame tore down the link: %d peers", got)
			}
			if _, err := a.b.Publish(message.E("x", 3)); err != nil {
				t.Fatal(err)
			}
			n := expectNotification(t, b.ch, "bob")
			if v, _ := n.Event.Get("x"); v.IntVal() != 3 {
				t.Fatalf("follow-up event corrupted: %v", n.Event)
			}
			// And the drop did not strand quiescence accounting.
			waitFor(t, "inflight settled", func() bool { return a.node.Pending() == 0 })
		})
	}
}

// pipeConn adapts one end of net.Pipe to the overlay Conn interface.
type pipeConn struct{ net.Conn }

func (c pipeConn) RemoteAddr() string { return "pipe" }

// timeoutConn simulates a peer that connects and goes silent: reads
// fail like an expired deadline, writes succeed.
type timeoutConn struct{}

func (timeoutConn) Read(p []byte) (int, error)  { return 0, os.ErrDeadlineExceeded }
func (timeoutConn) Write(p []byte) (int, error) { return len(p), nil }
func (timeoutConn) Close() error                { return nil }
func (timeoutConn) SetDeadline(time.Time) error { return nil }
func (timeoutConn) RemoteAddr() string          { return "stub" }

// TestNewLinkHelloErrors pins the error taxonomy of the hello exchange:
// a silent peer surfaces as errHelloTimeout, garbage or a non-hello
// frame as errHelloMalformed — previously both collapsed into one
// indistinguishable wrapped error on the caller's log line.
func TestNewLinkHelloErrors(t *testing.T) {
	t.Run("silent peer times out", func(t *testing.T) {
		_, err := newLink(timeoutConn{}, "local", codecBinary)
		if !errors.Is(err, errHelloTimeout) {
			t.Fatalf("got %v, want errHelloTimeout", err)
		}
		if errors.Is(err, errHelloMalformed) {
			t.Fatal("timeout must not also classify as malformed")
		}
	})

	// peerScript runs f against the far end of a pipe while newLink
	// handshakes on the near end.
	peerScript := func(t *testing.T, f func(c net.Conn)) error {
		t.Helper()
		near, far := net.Pipe()
		done := make(chan struct{})
		go func() {
			defer close(done)
			f(far)
			far.Close()
		}()
		_, err := newLink(pipeConn{near}, "local", codecBinary)
		<-done
		return err
	}
	drainHello := func(c net.Conn) {
		buf := make([]byte, 4096)
		c.Read(buf)
	}

	t.Run("garbage bytes are malformed", func(t *testing.T) {
		err := peerScript(t, func(c net.Conn) {
			drainHello(c)
			c.Write([]byte{0, 0, 0, 2, '{', ']'})
		})
		if !errors.Is(err, errHelloMalformed) {
			t.Fatalf("got %v, want errHelloMalformed", err)
		}
		if errors.Is(err, errHelloTimeout) {
			t.Fatal("malformed hello must not classify as timeout")
		}
	})

	t.Run("non-hello frame is malformed", func(t *testing.T) {
		err := peerScript(t, func(c net.Conn) {
			drainHello(c)
			writeFrame(c, Frame{Type: frameSub, Origin: "x"})
		})
		if !errors.Is(err, errHelloMalformed) {
			t.Fatalf("got %v, want errHelloMalformed", err)
		}
	})

	t.Run("own name is rejected", func(t *testing.T) {
		err := peerScript(t, func(c net.Conn) {
			drainHello(c)
			writeFrame(c, Frame{Type: frameHello, Name: "local"})
		})
		if err == nil || !strings.Contains(err.Error(), "own name") {
			t.Fatalf("got %v, want own-name rejection", err)
		}
	})
}

// TestNewLinkCodecNegotiation checks both ends derive the same codec
// from the hello exchange: min of the two advertised versions, clamped
// to what this build implements.
func TestNewLinkCodecNegotiation(t *testing.T) {
	cases := []struct {
		a, b, want int
	}{
		{codecBinary, codecBinary, codecBinary},
		{codecBinary, codecJSON, codecJSON},
		{codecJSON, codecBinary, codecJSON},
		{codecJSON, codecJSON, codecJSON},
		{codecOps, codecOps, codecOps},
		{codecOps, codecBinary, codecBinary}, // v2 against a v1 peer: v1 framing
		{99, codecOps, codecOps},             // future peer: capped at ours
		{codecBinary, -3, codecJSON},         // nonsense advertisement
	}
	// TCP loopback rather than net.Pipe: both ends of the handshake
	// write their hello before reading, which deadlocks on an unbuffered
	// pipe but not on a kernel-buffered socket.
	connPair := func(t *testing.T) (Conn, Conn) {
		t.Helper()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		type res struct {
			c   net.Conn
			err error
		}
		ch := make(chan res, 1)
		go func() {
			c, err := ln.Accept()
			ch <- res{c, err}
		}()
		dialed, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		accepted := <-ch
		if accepted.err != nil {
			t.Fatal(accepted.err)
		}
		return tcpConn{dialed}, tcpConn{accepted.c}
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%d-%d", tc.a, tc.b), func(t *testing.T) {
			near, far := connPair(t)
			type res struct {
				l   *link
				err error
			}
			ch := make(chan res, 1)
			go func() {
				l, err := newLink(far, "peer-b", tc.b)
				ch <- res{l, err}
			}()
			la, errA := newLink(near, "peer-a", tc.a)
			rb := <-ch
			if errA != nil || rb.err != nil {
				t.Fatalf("handshake failed: %v / %v", errA, rb.err)
			}
			defer la.close()
			defer rb.l.close()
			if la.codec != tc.want || rb.l.codec != tc.want {
				t.Fatalf("negotiated %d/%d, want %d on both ends", la.codec, rb.l.codec, tc.want)
			}
			if (la.codec >= codecBinary) != (la.rdict != nil) {
				t.Fatal("dictionary allocation must track the negotiated codec")
			}
		})
	}
}

// failConn accepts writes into the void until failAfter bytes have
// arrived, then errors every write.
type failConn struct {
	mu        sync.Mutex
	written   int
	failAfter int
}

func (c *failConn) Read(p []byte) (int, error) { select {} }
func (c *failConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.written += len(p)
	if c.written > c.failAfter {
		return 0, errors.New("wire cut")
	}
	return len(p), nil
}
func (c *failConn) Close() error                { return nil }
func (c *failConn) SetDeadline(time.Time) error { return nil }
func (c *failConn) RemoteAddr() string          { return "failconn" }

// TestWriterErrorSettlesBatchInflight is the regression test for the
// inflight leak: the writer's error exits used to return without
// decrementing the partial batch, leaving inflight > 0 forever and
// wedging Node.Pending/sim.Settle quiescence.
func TestWriterErrorSettlesBatchInflight(t *testing.T) {
	l := &link{
		conn: &failConn{},
		outq: make(chan outFrame, outqCap),
		done: make(chan struct{}),
	}
	l.bw = bufio.NewWriter(l.conn)
	const frames = 5
	for i := 0; i < frames; i++ {
		if err := l.send(Frame{Type: frameUnsub, Origin: "a", SubID: message.SubID(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.inflight.Load(); got != frames {
		t.Fatalf("inflight %d before writer, want %d", got, frames)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go l.writer(&wg)
	wg.Wait() // writer must exit on the write error
	if got := l.inflight.Load(); got != 0 {
		t.Fatalf("writer exit leaked inflight = %d, want 0", got)
	}
	select {
	case <-l.done:
	default:
		t.Fatal("writer exit must close the link")
	}
}
