package webapp

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"stopss/internal/metrics"
	"stopss/internal/trace"
)

// tracePath escapes a pub ID for GET /api/trace/<id>: browser-side URL
// handling strips a raw '#' as a fragment, so clients going through a
// URL parser send it %23-encoded, while the '/' stays literal for the
// {id...} wildcard to capture. (The server also accepts a raw '#' —
// see TestTraceEndpointRawHash.)
func tracePath(pubID string) string {
	return "/api/trace/" + strings.ReplaceAll(pubID, "#", "%23")
}

func TestTraceEndpoint(t *testing.T) {
	ts, _ := newStack(t, nil)

	code, _ := post(t, ts, "/api/register", map[string]string{"name": "acme"})
	if code != http.StatusOK {
		t.Fatalf("register: %d", code)
	}
	code, _ = post(t, ts, "/api/subscribe", map[string]string{
		"client":       "acme",
		"subscription": "(degree = PhD)",
	})
	if code != http.StatusOK {
		t.Fatalf("subscribe: %d", code)
	}
	code, body := post(t, ts, "/api/publish", map[string]string{
		"event": "(degree, PhD)",
	})
	if code != http.StatusOK {
		t.Fatalf("publish: %d", code)
	}
	pubID, _ := body["pub_id"].(string)
	if pubID == "" {
		t.Fatalf("publish response missing pub_id: %v", body)
	}

	code, tr := get(t, ts, tracePath(pubID))
	if code != http.StatusOK {
		t.Fatalf("trace fetch: %d (%v)", code, tr)
	}
	if tr["pub_id"] != pubID {
		t.Fatalf("trace names pub %v, want %s", tr["pub_id"], pubID)
	}
	spans, _ := tr["spans"].([]any)
	kinds := make(map[string]bool)
	for _, s := range spans {
		sp := s.(map[string]any)
		kinds[sp["kind"].(string)] = true
	}
	for _, want := range []string{trace.KindPublish, trace.KindMatch} {
		if !kinds[want] {
			t.Fatalf("trace lacks %q span; got kinds %v", want, kinds)
		}
	}

	// Unknown publications are a 404, not an empty tree.
	code, _ = get(t, ts, tracePath("nowhere#dead/99"))
	if code != http.StatusNotFound {
		t.Fatalf("unknown trace: %d, want 404", code)
	}
	// A missing ID is a usage error.
	resp, err := http.Get(ts.URL + "/api/trace/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusNotFound {
		t.Fatalf("empty trace ID: %d", resp.StatusCode)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts, b := newStack(t, nil)
	b.SetTracer(trace.New(trace.Config{Broker: "b1"}))

	code, _ := post(t, ts, "/api/register", map[string]string{"name": "acme"})
	if code != http.StatusOK {
		t.Fatalf("register: %d", code)
	}
	code, _ = post(t, ts, "/api/subscribe", map[string]string{
		"client": "acme", "subscription": "(degree = PhD)",
	})
	if code != http.StatusOK {
		t.Fatalf("subscribe: %d", code)
	}
	if code, _ := post(t, ts, "/api/publish", map[string]string{"event": "(degree, PhD)"}); code != http.StatusOK {
		t.Fatalf("publish: %d", code)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") || !strings.Contains(ct, "0.0.4") {
		t.Fatalf("content type %q, want text exposition 0.0.4", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"stopss_trace_stamped_total",
		"stopss_stage_match_seconds_bucket",
		"stopss_stage_publish_seconds_count",
		`broker="b1"`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics output lacks %q:\n%s", want, text)
		}
	}
}

// TestMetricsExtraSources checks WithMetrics sources render after the
// tracer registry and that a source aliasing it is not emitted twice.
func TestMetricsExtraSources(t *testing.T) {
	ts, b := newStack(t, nil)
	tr := trace.New(trace.Config{Broker: "b2"})
	b.SetTracer(tr)

	extra := metrics.NewRegistry()
	extra.Counter("custom.events").Add(7)
	srv := NewServer(b,
		WithMetrics("app", extra),
		WithMetrics("stopss", tr.Registry()), // alias of the tracer registry
	)
	ts2 := httptest.NewServer(srv)
	defer ts2.Close()

	resp, err := http.Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	if !strings.Contains(text, "app_custom_events_total") ||
		!strings.Contains(text, `app_custom_events_total{broker="b2"} 7`) {
		t.Fatalf("extra source missing from exposition:\n%s", text)
	}
	if n := strings.Count(text, "# TYPE stopss_trace_stamped_total counter"); n != 1 {
		t.Fatalf("tracer registry rendered %d times, want exactly once", n)
	}
	_ = ts
}
