package webapp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"stopss/internal/broker"
	"stopss/internal/core"
	"stopss/internal/message"
	"stopss/internal/notify"
	"stopss/internal/ontology"
	"stopss/internal/semantic"
	"stopss/internal/sublang"
	"stopss/internal/workload"
)

// newStack builds broker + engine (+ optional notifier) over the jobs
// ontology and returns the HTTP test server.
func newStack(t *testing.T, ne *notify.Engine) (*httptest.Server, *broker.Broker) {
	t.Helper()
	ont, err := ontology.Load(workload.JobsODL, ontology.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(ont.Stage(semantic.FullConfig()))
	b := broker.New(eng, ne)
	ts := httptest.NewServer(NewServer(b))
	t.Cleanup(ts.Close)
	return ts, b
}

func post(t *testing.T, ts *httptest.Server, path string, body any) (int, map[string]any) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response of %s: %v", path, err)
	}
	return resp.StatusCode, out
}

func get(t *testing.T, ts *httptest.Server, path string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response of %s: %v", path, err)
	}
	return resp.StatusCode, out
}

func TestAPIRoundTrip(t *testing.T) {
	ts, _ := newStack(t, nil)

	code, _ := post(t, ts, "/api/register", map[string]string{"name": "acme"})
	if code != http.StatusOK {
		t.Fatalf("register: %d", code)
	}

	code, body := post(t, ts, "/api/subscribe", map[string]string{
		"client":       "acme",
		"subscription": "(university = Toronto) and (degree = PhD) and (professional experience >= 4)",
	})
	if code != http.StatusOK {
		t.Fatalf("subscribe: %d %v", code, body)
	}
	if body["id"].(float64) != 1 {
		t.Fatalf("subscribe body = %v", body)
	}

	// The paper's §1 event, submitted in surface syntax, matches
	// semantically through synonyms + mapping function.
	code, body = post(t, ts, "/api/publish", map[string]string{
		"event": "(school, Toronto)(degree, PhD)(work experience, true)(graduation year, 1990)",
	})
	if code != http.StatusOK {
		t.Fatalf("publish: %d %v", code, body)
	}
	if ms := body["matches"].([]any); len(ms) != 1 {
		t.Fatalf("matches = %v, want the semantic match", body)
	}

	// Switch to syntactic mode: the same publication no longer matches.
	if code, _ := post(t, ts, "/api/mode", map[string]string{"mode": "syntactic"}); code != http.StatusOK {
		t.Fatal("mode switch failed")
	}
	if _, body := get(t, ts, "/api/mode"); body["mode"] != "syntactic" {
		t.Fatalf("mode = %v", body)
	}
	_, body = post(t, ts, "/api/publish", map[string]string{
		"event": "(school, Toronto)(degree, PhD)(work experience, true)(graduation year, 1990)",
	})
	if ms := body["matches"].([]any); len(ms) != 0 {
		t.Fatalf("syntactic matches = %v, want none", ms)
	}

	// Unsubscribe and stats.
	if code, body := post(t, ts, "/api/unsubscribe", map[string]any{"client": "acme", "id": 1}); code != http.StatusOK {
		t.Fatalf("unsubscribe: %d %v", code, body)
	}
	_, stats := get(t, ts, "/api/stats")
	if stats["Subscriptions"].(float64) != 0 || stats["Published"].(float64) != 2 {
		t.Fatalf("stats = %v", stats)
	}
	_, clients := get(t, ts, "/api/clients")
	if cs := clients["clients"].([]any); len(cs) != 1 || cs[0] != "acme" {
		t.Fatalf("clients = %v", clients)
	}
}

func TestAPIErrors(t *testing.T) {
	ts, _ := newStack(t, nil)
	cases := []struct {
		path string
		body any
		want int
	}{
		{"/api/register", map[string]string{}, http.StatusBadRequest},                                          // empty name
		{"/api/subscribe", map[string]string{"client": "ghost", "subscription": "(a=1)"}, http.StatusNotFound}, // unknown client
		{"/api/subscribe", map[string]string{"client": "acme", "subscription": "((("}, http.StatusBadRequest},  // parse error
		{"/api/publish", map[string]string{"event": "not an event"}, http.StatusBadRequest},                    // parse error
		{"/api/mode", map[string]string{"mode": "quantum"}, http.StatusBadRequest},                             // unknown mode
		{"/api/unsubscribe", map[string]any{"client": "acme", "id": 99}, http.StatusNotFound},                  // unknown sub
	}
	for _, tc := range cases {
		code, body := post(t, ts, tc.path, tc.body)
		if code != tc.want {
			t.Errorf("POST %s %v: code = %d, want %d (%v)", tc.path, tc.body, code, tc.want, body)
		}
		if body["error"] == "" {
			t.Errorf("POST %s: missing error message", tc.path)
		}
		// The envelope repeats the HTTP status in the body.
		if got, ok := body["code"].(float64); !ok || int(got) != tc.want {
			t.Errorf("POST %s: envelope code = %v, want %d", tc.path, body["code"], tc.want)
		}
	}
	// Unknown fields are rejected.
	code, _ := post(t, ts, "/api/publish", map[string]string{"event": "(a, 1)", "bogus": "x"})
	if code != http.StatusBadRequest {
		t.Errorf("unknown field accepted: %d", code)
	}
	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/api/publish", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: %d", resp.StatusCode)
	}
}

func TestIndexPage(t *testing.T) {
	ts, _ := newStack(t, nil)
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := ioCopy(&sb, resp); err != nil {
		t.Fatal(err)
	}
	page := sb.String()
	for _, want := range []string{"S-ToPSS", "semantic", "syntactic", "/api/publish"} {
		if !strings.Contains(page, want) {
			t.Errorf("index page missing %q", want)
		}
	}
	// Unknown paths 404.
	resp2, err := http.Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("GET /nope = %d", resp2.StatusCode)
	}
}

func ioCopy(sb *strings.Builder, resp *http.Response) (int64, error) {
	buf := make([]byte, 32*1024)
	var n int64
	for {
		k, err := resp.Body.Read(buf)
		sb.Write(buf[:k])
		n += int64(k)
		if err != nil {
			if err.Error() == "EOF" {
				return n, nil
			}
			return n, err
		}
	}
}

// TestFigure2 is the end-to-end reproduction of the demonstration setup
// (experiment F2): a workload generator drives the web application over
// HTTP; matches flow through the notification engine to TCP, UDP, SMTP
// and SMS sinks.
func TestFigure2(t *testing.T) {
	// Notification sinks (the right-hand side of Figure 2).
	var col struct {
		mu    sync.Mutex
		tcp   int
		udp   int
		smtp  int
		total int
	}
	bump := func(which *int) func() {
		return func() {
			col.mu.Lock()
			defer col.mu.Unlock()
			*which++
			col.total++
		}
	}
	tcpSink, err := notify.NewTCPSink("127.0.0.1:0", func(notify.Notification) { bump(&col.tcp)() })
	if err != nil {
		t.Fatal(err)
	}
	defer tcpSink.Close()
	udpSink, err := notify.NewUDPSink("127.0.0.1:0", func(notify.Notification) { bump(&col.udp)() })
	if err != nil {
		t.Fatal(err)
	}
	defer udpSink.Close()
	smtpSink, err := notify.NewSMTPSink("127.0.0.1:0", func(notify.Mail) { bump(&col.smtp)() })
	if err != nil {
		t.Fatal(err)
	}
	defer smtpSink.Close()
	sms := notify.NewSMSGateway(0, 0)

	ne, err := notify.NewEngine(notify.Config{Workers: 4},
		notify.NewTCPTransport(0), notify.NewUDPTransport(),
		notify.NewSMTPTransport(""), sms)
	if err != nil {
		t.Fatal(err)
	}
	defer ne.Close()

	ts, _ := newStack(t, ne)

	// 40 companies registered over HTTP, round-robin across transports.
	routes := []map[string]string{
		{"transport": "tcp", "addr": tcpSink.Addr()},
		{"transport": "udp", "addr": udpSink.Addr()},
		{"transport": "smtp", "addr": "hr@" + smtpSink.Addr()},
		{"transport": "sms", "addr": "+1-416-555-0100"},
	}
	jf := workload.NewJobFinder(2003)
	subs := jf.Recruiters(40)
	for i, s := range subs {
		name := s.Subscriber
		reg := map[string]string{"name": name}
		for k, v := range routes[i%len(routes)] {
			reg[k] = v
		}
		if code, body := post(t, ts, "/api/register", reg); code != http.StatusOK {
			t.Fatalf("register %s: %v", name, body)
		}
		text := subFormat(s)
		if code, body := post(t, ts, "/api/subscribe", map[string]string{
			"client": name, "subscription": text,
		}); code != http.StatusOK {
			t.Fatalf("subscribe %q: %v", text, body)
		}
	}

	// 150 candidate resumes published over HTTP (the workload generator
	// of Figure 2 simulating many concurrent candidates).
	var wg sync.WaitGroup
	var pubMu sync.Mutex
	notified := 0
	resumes := jf.Resumes(150)
	for w := 0; w < 5; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(resumes); i += 5 {
				buf, _ := json.Marshal(map[string]string{"event": evFormat(resumes[i])})
				resp, err := http.Post(ts.URL+"/api/publish", "application/json", bytes.NewReader(buf))
				if err != nil {
					t.Error(err)
					return
				}
				var out struct {
					Notified int `json:"notified"`
				}
				_ = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				pubMu.Lock()
				notified += out.Notified
				pubMu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	if notified == 0 {
		t.Fatal("no notifications produced — the semantic pipeline is dead")
	}
	if !ne.Drain(5 * time.Second) {
		t.Fatal("notification queue did not drain")
	}

	// Every transport must have delivered something.
	deadline := time.Now().Add(3 * time.Second)
	for {
		col.mu.Lock()
		tcp, udp, smtp, total := col.tcp, col.udp, col.smtp, col.total
		col.mu.Unlock()
		smsN := len(sms.Messages())
		if tcp > 0 && udp > 0 && smtp > 0 && smsN > 0 && total+smsN >= notified {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("deliveries: tcp=%d udp=%d smtp=%d sms=%d, notified=%d",
				tcp, udp, smtp, smsN, notified)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func subFormat(s message.Subscription) string {
	parts := make([]string, len(s.Preds))
	for i, p := range s.Preds {
		if p.Val.Kind() == message.KindString && strings.ContainsAny(p.Val.Str(), " ") {
			parts[i] = fmt.Sprintf("(%s %s %q)", p.Attr, p.Op, p.Val.Str())
		} else {
			parts[i] = p.String()
		}
	}
	return strings.Join(parts, " and ")
}

func evFormat(e message.Event) string {
	var sb strings.Builder
	for _, p := range e.Pairs() {
		if p.Val.Kind() == message.KindString && strings.ContainsAny(p.Val.Str(), ",()") {
			fmt.Fprintf(&sb, "(%s, %q)", p.Attr, p.Val.Str())
		} else {
			fmt.Fprintf(&sb, "(%s, %s)", p.Attr, p.Val)
		}
	}
	return sb.String()
}

func TestSubscriptionsEndpoint(t *testing.T) {
	ts, _ := newStack(t, nil)
	if code, _ := post(t, ts, "/api/register", map[string]string{"name": "acme"}); code != http.StatusOK {
		t.Fatal("register failed")
	}
	for _, sub := range []string{"(a = 1)", "(b >= 2) and (c exists)"} {
		if code, body := post(t, ts, "/api/subscribe", map[string]string{
			"client": "acme", "subscription": sub,
		}); code != http.StatusOK {
			t.Fatalf("subscribe: %v", body)
		}
	}
	code, body := get(t, ts, "/api/subscriptions?client=acme")
	if code != http.StatusOK {
		t.Fatalf("subscriptions: %d %v", code, body)
	}
	subs := body["subscriptions"].([]any)
	if len(subs) != 2 {
		t.Fatalf("subscriptions = %v", subs)
	}
	first := subs[0].(map[string]any)
	if first["text"] != "(a = 1)" {
		t.Errorf("text = %v", first["text"])
	}
	// Unknown client → empty list, missing param → 400.
	if _, body := get(t, ts, "/api/subscriptions?client=ghost"); len(body["subscriptions"].([]any)) != 0 {
		t.Error("ghost client should list nothing")
	}
	if code, _ := get(t, ts, "/api/subscriptions"); code != http.StatusBadRequest {
		t.Errorf("missing client param = %d, want 400", code)
	}
}

func TestSnapshotEndpointRestores(t *testing.T) {
	ts, _ := newStack(t, nil)
	if code, _ := post(t, ts, "/api/register", map[string]string{"name": "acme"}); code != http.StatusOK {
		t.Fatal("register failed")
	}
	if code, _ := post(t, ts, "/api/subscribe", map[string]string{
		"client": "acme", "subscription": "(university = Toronto)",
	}); code != http.StatusOK {
		t.Fatal("subscribe failed")
	}

	resp, err := http.Get(ts.URL + "/api/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	snap, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(snap), `"kind":"header"`) {
		t.Fatalf("snapshot body = %q", snap)
	}

	// A second, empty stack restores the snapshot and behaves the same.
	_, b2 := newStack(t, nil)
	if err := b2.Restore(bytes.NewReader(snap)); err != nil {
		t.Fatalf("restore: %v", err)
	}
	ev, _ := sublang.ParseEvent("(school, Toronto)")
	res, err := b2.Publish(ev)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 {
		t.Errorf("restored broker matches = %v", res.Matches)
	}
}

func TestExplainEndpoint(t *testing.T) {
	ts, _ := newStack(t, nil)
	if code, _ := post(t, ts, "/api/register", map[string]string{"name": "acme"}); code != http.StatusOK {
		t.Fatal("register failed")
	}
	if code, _ := post(t, ts, "/api/subscribe", map[string]string{
		"client": "acme", "subscription": "(university = Toronto) and (professional experience >= 4)",
	}); code != http.StatusOK {
		t.Fatal("subscribe failed")
	}
	code, body := post(t, ts, "/api/explain", map[string]any{
		"id": 1, "event": "(school, Toronto)(graduation year, 1990)",
	})
	if code != http.StatusOK {
		t.Fatalf("explain: %d %v", code, body)
	}
	if body["matched"] != true {
		t.Fatalf("matched = %v", body)
	}
	trace := body["trace"].(string)
	if !strings.Contains(trace, "DERIVED by the semantic stage") {
		t.Errorf("trace = %q", trace)
	}
	// Error paths.
	if code, _ := post(t, ts, "/api/explain", map[string]any{"id": 99, "event": "(a, 1)"}); code != http.StatusBadRequest {
		t.Error("unknown subscription should 400")
	}
	if code, _ := post(t, ts, "/api/explain", map[string]any{"id": 1, "event": "broken"}); code != http.StatusBadRequest {
		t.Error("unparsable event should 400")
	}
}

func TestAdvertiseEndpoints(t *testing.T) {
	ts, _ := newStack(t, nil)
	for _, name := range []string{"jobsite", "acme"} {
		if code, _ := post(t, ts, "/api/register", map[string]string{"name": name}); code != http.StatusOK {
			t.Fatal("register failed")
		}
	}
	if code, body := post(t, ts, "/api/subscribe", map[string]string{
		"client": "acme", "subscription": "(university = Toronto)",
	}); code != http.StatusOK {
		t.Fatalf("subscribe: %v", body)
	}
	if code, body := post(t, ts, "/api/advertise", map[string]string{
		"client": "jobsite", "advertisement": "(school exists)",
	}); code != http.StatusOK {
		t.Fatalf("advertise: %v", body)
	}

	// Overlaps: the university subscription is reachable via synonyms.
	code, body := get(t, ts, "/api/overlaps?client=jobsite")
	if code != http.StatusOK {
		t.Fatalf("overlaps: %d %v", code, body)
	}
	if ov := body["overlaps"].([]any); len(ov) != 1 {
		t.Fatalf("overlaps = %v", body)
	}

	// publish-from: conforming succeeds, non-conforming 400s.
	code, body = post(t, ts, "/api/publish-from", map[string]string{
		"client": "jobsite", "event": "(school, Toronto)",
	})
	if code != http.StatusOK {
		t.Fatalf("publish-from: %v", body)
	}
	if ms := body["matches"].([]any); len(ms) != 1 {
		t.Fatalf("matches = %v", body)
	}
	code, body = post(t, ts, "/api/publish-from", map[string]string{
		"client": "jobsite", "event": "(salary, 90)",
	})
	if code != http.StatusBadRequest {
		t.Fatalf("non-conforming publication accepted: %v", body)
	}
	// Missing param on overlaps.
	if code, _ := get(t, ts, "/api/overlaps"); code != http.StatusBadRequest {
		t.Error("missing client param should 400")
	}
}

func TestDisjunctiveSubscription(t *testing.T) {
	ts, _ := newStack(t, nil)
	if code, _ := post(t, ts, "/api/register", map[string]string{"name": "acme"}); code != http.StatusOK {
		t.Fatal("register failed")
	}
	code, body := post(t, ts, "/api/subscribe", map[string]string{
		"client":       "acme",
		"subscription": "(university = Toronto) or (degree = PhD)",
	})
	if code != http.StatusOK {
		t.Fatalf("subscribe: %v", body)
	}
	if ids := body["ids"].([]any); len(ids) != 2 {
		t.Fatalf("ids = %v, want 2 disjunct subscriptions", body)
	}
	// Either disjunct alone matches.
	_, pub := post(t, ts, "/api/publish", map[string]string{"event": "(school, Toronto)"})
	if ms := pub["matches"].([]any); len(ms) != 1 {
		t.Fatalf("first disjunct: %v", pub)
	}
	_, pub = post(t, ts, "/api/publish", map[string]string{"event": "(degree, PhD)"})
	if ms := pub["matches"].([]any); len(ms) != 1 {
		t.Fatalf("second disjunct: %v", pub)
	}
	// A failing disjunct rolls the whole submission back.
	code, _ = post(t, ts, "/api/subscribe", map[string]string{
		"client":       "acme",
		"subscription": "(a = 1) or (b = )",
	})
	if code != http.StatusBadRequest {
		t.Fatal("malformed disjunct accepted")
	}
	_, listing := get(t, ts, "/api/subscriptions?client=acme")
	if subs := listing["subscriptions"].([]any); len(subs) != 2 {
		t.Errorf("rollback failed, subscriptions = %v", subs)
	}
}
