package webapp

import (
	"fmt"
	"net/http"
	"strconv"

	"stopss/internal/broker"
	"stopss/internal/metrics"
	"stopss/internal/overlay"
)

// Federation health plane (DESIGN §10): the per-subscription delivery
// accounting view and the gossiped cluster introspection view.
//
//	GET /api/v1/subs     → per-subscription delivery counters, journal
//	                       lag and last-delivery age, laggiest first
//	                       (?limit=K caps the rows, ?min_lag=N filters)
//	GET /api/v1/cluster  → every broker's last gossiped health summary
//	                       with local staleness stamps (overlay only)

// WithCluster exposes the overlay node's federation health view at
// GET /api/v1/cluster (pass overlay.Node.ClusterView). Standalone
// brokers leave it unset; the endpoint then reports 404.
func WithCluster(view func() []overlay.ClusterEntry) Option {
	return func(s *Server) { s.cluster = view }
}

// defaultSubsLimit caps a GET /api/v1/subs response when the client
// sends no ?limit= — the endpoint is a "what's hurting" view, not a
// full dump, and a broker can hold tens of thousands of subscriptions.
const defaultSubsLimit = 100

// subsResponse is the GET /api/v1/subs body. Total counts every
// tracked subscription on the broker, Matched the rows passing the
// min_lag filter; Subs holds at most the requested limit, laggiest
// first (the broker's SubStats order).
type subsResponse struct {
	Total   int              `json:"total"`
	Matched int              `json:"matched"`
	Subs    []broker.SubStat `json:"subs"`
}

func (s *Server) handleSubs(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit := defaultSubsLimit
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("webapp: bad ?limit=%q (want a non-negative integer)", v))
			return
		}
		limit = n
	}
	var minLag uint64
	if v := q.Get("min_lag"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("webapp: bad ?min_lag=%q (want a non-negative integer)", v))
			return
		}
		minLag = n
	}
	all := s.broker.SubStats()
	resp := subsResponse{Total: len(all), Subs: []broker.SubStat{}}
	for _, st := range all {
		if st.Lag < minLag {
			continue
		}
		resp.Matched++
		if limit == 0 || len(resp.Subs) < limit {
			resp.Subs = append(resp.Subs, st)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// clusterResponse is the GET /api/v1/cluster body.
type clusterResponse struct {
	Brokers int                    `json:"brokers"`
	Stale   int                    `json:"stale"`
	Cluster []overlay.ClusterEntry `json:"cluster"`
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("webapp: no overlay attached to this broker (cluster view needs -listen/-peer federation)"))
		return
	}
	view := s.cluster()
	resp := clusterResponse{Brokers: len(view), Cluster: view}
	for _, e := range view {
		if e.Stale {
			resp.Stale++
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// healthTopK bounds the per-subscription lag gauges on /metrics. Ranked
// names (sub_lag_rank1…K) keep the exposition's cardinality constant no
// matter how many subscriptions the broker holds — per-sub label values
// would grow without bound and blow up any scraping backend.
const healthTopK = 5

// writeHealthMetrics appends the process-health and subscription-lag
// families to a /metrics scrape: Go runtime vitals (goroutines, heap,
// GC pause p99, scheduler latency p99) and the top-K laggiest durable
// subscriptions, all snapshotted into scratch registries per scrape
// like the optimizer gauges.
func (s *Server) writeHealthMetrics(w http.ResponseWriter, labels map[string]string) {
	run := metrics.NewRegistry()
	run.SetRuntimeGauges(metrics.ReadRuntime())
	if err := run.WritePrometheus(w, "stopss", labels); err != nil {
		return
	}

	stats := s.broker.SubStats()
	sub := metrics.NewRegistry()
	sub.Gauge("tracked").Set(int64(len(stats)))
	var maxLag, sumLag uint64
	for _, st := range stats {
		sumLag += st.Lag
		if st.Lag > maxLag {
			maxLag = st.Lag
		}
	}
	sub.Gauge("lag_max").Set(int64(maxLag))
	sub.Gauge("lag_sum").Set(int64(sumLag))
	for i := 0; i < len(stats) && i < healthTopK; i++ {
		if stats[i].Lag == 0 {
			break // SubStats sorts lag-descending; the rest are caught up
		}
		rank := strconv.Itoa(i + 1)
		sub.Gauge("lag_rank" + rank).Set(int64(stats[i].Lag))
		sub.Gauge("lag_rank" + rank + "_id").Set(int64(stats[i].ID))
	}
	_ = sub.WritePrometheus(w, "stopss_subs", labels)
}
