package webapp

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
)

// TestAPIv1Aliases: every route is reachable under /api/v1 and the
// legacy /api prefix, against the same broker state — a client may mix
// the two surfaces freely mid-session.
func TestAPIv1Aliases(t *testing.T) {
	ts, _ := newStack(t, nil)

	if code, _ := post(t, ts, "/api/v1/register", map[string]string{"name": "acme"}); code != http.StatusOK {
		t.Fatalf("v1 register: %d", code)
	}
	// Subscribe through v1, observe through legacy.
	code, body := post(t, ts, "/api/v1/subscribe", map[string]string{
		"client": "acme", "subscription": "(degree = PhD)",
	})
	if code != http.StatusOK {
		t.Fatalf("v1 subscribe: %d %v", code, body)
	}
	code, legacy := get(t, ts, "/api/subscriptions?client=acme")
	if code != http.StatusOK {
		t.Fatalf("legacy subscriptions: %d", code)
	}
	if subs, _ := legacy["subscriptions"].([]any); len(subs) != 1 {
		t.Fatalf("legacy surface sees %v, want the v1 subscription", legacy)
	}
	// Publish through legacy, matches must reflect the v1 subscription.
	code, pub := post(t, ts, "/api/publish", map[string]string{"event": "(degree, PhD)"})
	if code != http.StatusOK {
		t.Fatalf("legacy publish: %d", code)
	}
	if ms, _ := pub["matches"].([]any); len(ms) != 1 {
		t.Fatalf("legacy publish matched %v, want the v1 subscription", pub)
	}
	for _, path := range []string{"/api/v1/mode", "/api/v1/stats", "/api/v1/clients"} {
		if code, _ := get(t, ts, path); code != http.StatusOK {
			t.Errorf("GET %s: %d", path, code)
		}
	}
	// Errors carry the same envelope on both surfaces.
	for _, path := range []string{"/api/unsubscribe", "/api/v1/unsubscribe"} {
		code, body := post(t, ts, path, map[string]any{"client": "acme", "id": 99})
		if code != http.StatusNotFound {
			t.Errorf("POST %s: %d, want 404", path, code)
		}
		if c, _ := body["code"].(float64); int(c) != http.StatusNotFound {
			t.Errorf("POST %s: envelope code %v, want 404", path, body["code"])
		}
	}
}

// TestTraceEndpointRawHash: pub IDs are name#epoch/seq, and although
// browsers strip '#' fragments client-side, a non-browser client may
// legitimately send the ID raw — the request-target reaches the server
// verbatim. Both the raw and the %23-escaped spelling must resolve.
// The raw form needs a hand-written request: net/http's client URL
// parsing would treat the '#' as a fragment before the bytes leave.
func TestTraceEndpointRawHash(t *testing.T) {
	ts, _ := newStack(t, nil)

	if code, _ := post(t, ts, "/api/v1/register", map[string]string{"name": "acme"}); code != http.StatusOK {
		t.Fatal("register failed")
	}
	if code, _ := post(t, ts, "/api/v1/subscribe", map[string]string{
		"client": "acme", "subscription": "(degree = PhD)",
	}); code != http.StatusOK {
		t.Fatal("subscribe failed")
	}
	code, body := post(t, ts, "/api/v1/publish", map[string]string{"event": "(degree, PhD)"})
	if code != http.StatusOK {
		t.Fatal("publish failed")
	}
	pubID, _ := body["pub_id"].(string)
	if !strings.Contains(pubID, "#") {
		t.Fatalf("pub ID %q lacks the '#' under test", pubID)
	}

	// Escaped form through the normal client.
	if code, tr := get(t, ts, "/api/v1"+strings.TrimPrefix(tracePath(pubID), "/api")); code != http.StatusOK {
		t.Fatalf("escaped trace fetch: %d (%v)", code, tr)
	}

	// Raw form over a hand-rolled HTTP/1.1 request.
	conn, err := net.Dial("tcp", strings.TrimPrefix(ts.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "GET /api/v1/trace/%s HTTP/1.1\r\nHost: stopss\r\nConnection: close\r\n\r\n", pubID)
	resp, err := http.ReadResponse(bufio.NewReader(conn), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("raw-# trace fetch: %d (%s)", resp.StatusCode, raw)
	}
	if !strings.Contains(string(raw), pubID) {
		t.Fatalf("raw-# trace body lacks pub ID %q:\n%s", pubID, raw)
	}
}

// TestMetricsOptimizerGauges: the /metrics exposition includes the
// query-optimizer families (plan cache, expansion LRU, intern table)
// snapshotted from engine stats.
func TestMetricsOptimizerGauges(t *testing.T) {
	ts, _ := newStack(t, nil)

	if code, _ := post(t, ts, "/api/v1/register", map[string]string{"name": "acme"}); code != http.StatusOK {
		t.Fatal("register failed")
	}
	if code, _ := post(t, ts, "/api/v1/subscribe", map[string]string{
		"client": "acme", "subscription": "(degree = PhD)",
	}); code != http.StatusOK {
		t.Fatal("subscribe failed")
	}
	// Publish the same shape twice: the second expansion is a cache hit.
	for i := 0; i < 2; i++ {
		if code, _ := post(t, ts, "/api/v1/publish", map[string]string{"event": "(degree, PhD)"}); code != http.StatusOK {
			t.Fatal("publish failed")
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"# TYPE stopss_optimizer_plan_cache_misses_total counter",
		"# TYPE stopss_optimizer_plans_cached gauge",
		"# TYPE stopss_optimizer_expansion_cache_hits_total counter",
		"stopss_optimizer_expansion_cache_hits_total{",
		"# TYPE stopss_optimizer_expansion_cache_size gauge",
		"# TYPE stopss_optimizer_interned_terms gauge",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics output lacks %q:\n%s", want, text)
		}
	}
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "stopss_optimizer_expansion_cache_hits_total{") && !strings.HasSuffix(line, " 1") {
			t.Fatalf("expansion hit counter = %q, want 1 (second publish should be a cache hit)", line)
		}
	}
}
