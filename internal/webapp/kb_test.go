package webapp

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"stopss/internal/broker"
	"stopss/internal/core"
	"stopss/internal/knowledge"
	"stopss/internal/ontology"
	"stopss/internal/semantic"
	"stopss/internal/workload"
)

// newKBStack is newStack with a runtime knowledge base bound.
func newKBStack(t *testing.T) (*httptest.Server, *broker.Broker) {
	t.Helper()
	ont, err := ontology.Load(workload.JobsODL, ontology.Options{})
	if err != nil {
		t.Fatal(err)
	}
	base := knowledge.NewBase(ont.Synonyms, ont.Hierarchy, ont.Mappings)
	eng := core.NewEngine(base.Stage(semantic.FullConfig()), core.WithKnowledge(base))
	b := broker.New(eng, nil)
	ts := httptest.NewServer(NewServer(b))
	t.Cleanup(ts.Close)
	return ts, b
}

func TestKBEndpointLifecycle(t *testing.T) {
	ts, b := newKBStack(t)

	code, body := get(t, ts, "/api/kb")
	if code != http.StatusOK {
		t.Fatalf("GET /api/kb: %d %v", code, body)
	}
	version := body["version"].(map[string]any)
	if version["deltas"].(float64) != 0 {
		t.Fatalf("fresh KB version: %v", version)
	}

	// Inject two deltas as JSONL, one of them unstamped and one bad.
	payload := strings.Join([]string{
		`{"origin":"","epoch":"","seq":0,"op":"add_synonym","root":"position","terms":["gig"]}`,
		`{"op":"add_isa","child":"sedan","parent":"car"}`,
	}, "\n")
	resp, err := http.Post(ts.URL+"/api/kb", "application/jsonl", strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /api/kb: %d", resp.StatusCode)
	}
	if got := b.KnowledgeVersion().Deltas; got != 2 {
		t.Fatalf("deltas after POST: %d", got)
	}

	// The injected synonym is live: an event in the new term matches a
	// subscription in the canonical term.
	if err := b.Register(broker.Client{Name: "acme"}); err != nil {
		t.Fatal(err)
	}
	code, body = post(t, ts, "/api/subscribe", map[string]any{
		"client": "acme", "subscription": "(position = dev)"})
	if code != http.StatusOK {
		t.Fatalf("subscribe: %d %v", code, body)
	}
	code, body = post(t, ts, "/api/publish", map[string]any{"event": "(gig, dev)"})
	if code != http.StatusOK {
		t.Fatalf("publish: %d %v", code, body)
	}
	if got := body["matches"].([]any); len(got) != 1 {
		t.Fatalf("matches = %v, want 1", body)
	}

	// Malformed line: 400, but preceding state intact.
	resp, err = http.Post(ts.URL+"/api/kb", "application/jsonl", strings.NewReader(`{"op":"bogus"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad delta: %d", resp.StatusCode)
	}
}

func TestKBEndpointDisabledWithoutBase(t *testing.T) {
	ts, _ := newStack(t, nil)
	code, _ := get(t, ts, "/api/kb")
	if code != http.StatusNotFound {
		t.Fatalf("GET /api/kb without base: %d", code)
	}
	resp, err := http.Post(ts.URL+"/api/kb", "application/jsonl",
		strings.NewReader(`{"op":"add_concept","term":"x"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("POST /api/kb without base: %d", resp.StatusCode)
	}
}
