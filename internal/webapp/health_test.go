package webapp

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"stopss/internal/broker"
	"stopss/internal/knowledge"
	"stopss/internal/overlay"
)

// TestSubsEndpoint drives a durable subscription into lag (offline
// sink) next to a caught-up fire-and-forget one and checks the
// /api/v1/subs ordering, filters and parameter validation.
func TestSubsEndpoint(t *testing.T) {
	ts, _, sink, ne := newDurableStack(t)

	for _, name := range []string{"acme", "beta"} {
		code, _ := post(t, ts, "/api/register", map[string]any{
			"name": name, "transport": "mem", "addr": name})
		if code != http.StatusOK {
			t.Fatalf("register %s: %d", name, code)
		}
	}
	code, body := post(t, ts, "/api/subscribe", map[string]any{
		"client": "acme", "subscription": "(university = Toronto)", "durable": true})
	if code != http.StatusOK {
		t.Fatalf("durable subscribe: %d %v", code, body)
	}
	durID := uint64(body["id"].(float64))
	if code, body = post(t, ts, "/api/subscribe", map[string]any{
		"client": "beta", "subscription": "(degree = PhD)"}); code != http.StatusOK {
		t.Fatalf("plain subscribe: %d %v", code, body)
	}

	// Three journaled publications the durable sub cannot ack: its lag
	// is 3 while the non-matching fire-and-forget sub stays at 0.
	sink.set(true)
	for i := 0; i < 3; i++ {
		if code, body := post(t, ts, "/api/publish", map[string]any{"event": "(school, Toronto)"}); code != http.StatusOK {
			t.Fatalf("publish %d: %d %v", i, code, body)
		}
	}
	if !ne.Drain(2 * time.Second) {
		t.Fatal("drain")
	}

	code, sb := get(t, ts, "/api/v1/subs")
	if code != http.StatusOK {
		t.Fatalf("subs: %d %v", code, sb)
	}
	if sb["total"].(float64) != 2 || sb["matched"].(float64) != 2 {
		t.Fatalf("total/matched = %v/%v, want 2/2", sb["total"], sb["matched"])
	}
	subs := sb["subs"].([]any)
	if len(subs) != 2 {
		t.Fatalf("subs rows = %d, want 2", len(subs))
	}
	first := subs[0].(map[string]any)
	if uint64(first["id"].(float64)) != durID || first["lag"].(float64) != 3 {
		t.Fatalf("laggiest row = %v, want durable sub %d with lag 3", first, durID)
	}
	if first["durable"] != true || first["client"] != "acme" {
		t.Fatalf("laggiest row identity = %v", first)
	}
	if first["parked"].(float64) != 3 {
		t.Fatalf("parked = %v, want 3 with the sink offline", first["parked"])
	}
	if subs[1].(map[string]any)["lag"].(float64) != 0 {
		t.Fatalf("caught-up row = %v, want lag 0", subs[1])
	}

	// min_lag hides the caught-up row but still reports the total.
	code, sb = get(t, ts, "/api/v1/subs?min_lag=1")
	if code != http.StatusOK {
		t.Fatalf("subs?min_lag: %d", code)
	}
	if sb["total"].(float64) != 2 || sb["matched"].(float64) != 1 || len(sb["subs"].([]any)) != 1 {
		t.Fatalf("min_lag=1 → total=%v matched=%v rows=%d", sb["total"], sb["matched"], len(sb["subs"].([]any)))
	}

	// limit caps rows without changing the counts; limit=0 is unlimited.
	code, sb = get(t, ts, "/api/v1/subs?limit=1")
	if code != http.StatusOK || len(sb["subs"].([]any)) != 1 || sb["matched"].(float64) != 2 {
		t.Fatalf("limit=1 → %d %v", code, sb)
	}
	code, sb = get(t, ts, "/api/v1/subs?limit=0")
	if code != http.StatusOK || len(sb["subs"].([]any)) != 2 {
		t.Fatalf("limit=0 → %d %v", code, sb)
	}

	// Malformed parameters are usage errors, not empty views.
	for _, q := range []string{"?limit=-1", "?limit=x", "?min_lag=-2", "?min_lag=x"} {
		if code, _ := get(t, ts, "/api/v1/subs"+q); code != http.StatusBadRequest {
			t.Errorf("subs%s: %d, want 400", q, code)
		}
	}

	// After the sink heals, a resume catches the durable sub up and the
	// lag drains to zero.
	sink.set(false)
	if code, body := post(t, ts, "/api/resume", map[string]any{"client": "acme", "id": durID}); code != http.StatusOK {
		t.Fatalf("resume: %d %v", code, body)
	}
	if !ne.Drain(2 * time.Second) {
		t.Fatal("drain after resume")
	}
	_, sb = get(t, ts, "/api/v1/subs?min_lag=1")
	if sb["matched"].(float64) != 0 {
		t.Fatalf("lagging subs after catch-up: %v", sb)
	}
}

// TestClusterEndpoint: 404 without an overlay, and a faithful
// round-trip of the injected cluster view with one.
func TestClusterEndpoint(t *testing.T) {
	ts, b := newStack(t, nil)
	if code, body := get(t, ts, "/api/v1/cluster"); code != http.StatusNotFound {
		t.Fatalf("standalone cluster: %d %v, want 404", code, body)
	}

	fixture := []overlay.ClusterEntry{
		{Broker: "b00", Self: true, Summary: overlay.OpsSummary{Origin: "b00", Subscriptions: 2}},
		{Broker: "b01", AgeMS: 12, Summary: overlay.OpsSummary{Origin: "b01"}},
		{Broker: "b02", AgeMS: 99000, Stale: true, Down: true, Summary: overlay.OpsSummary{Origin: "b02"}},
	}
	ts2 := httptest.NewServer(NewServer(b, WithCluster(func() []overlay.ClusterEntry { return fixture })))
	defer ts2.Close()

	code, body := get(t, ts2, "/api/v1/cluster")
	if code != http.StatusOK {
		t.Fatalf("cluster: %d %v", code, body)
	}
	if body["brokers"].(float64) != 3 || body["stale"].(float64) != 1 {
		t.Fatalf("brokers/stale = %v/%v, want 3/1", body["brokers"], body["stale"])
	}
	rows := body["cluster"].([]any)
	self := rows[0].(map[string]any)
	if self["broker"] != "b00" || self["self"] != true {
		t.Fatalf("row 0 = %v, want self entry b00", self)
	}
	down := rows[2].(map[string]any)
	if down["down"] != true || down["stale"] != true {
		t.Fatalf("row 2 = %v, want down+stale b02", down)
	}
	if down["summary"].(map[string]any)["origin"] != "b02" {
		t.Fatalf("row 2 summary = %v", down["summary"])
	}
}

// TestMetricsHealthFamilies: the runtime and subscription-lag gauges
// render on /metrics with bounded cardinality — top-K ranked names,
// never one series per subscription.
func TestMetricsHealthFamilies(t *testing.T) {
	ts, _, sink, ne := newDurableStack(t)

	code, _ := post(t, ts, "/api/register", map[string]any{
		"name": "acme", "transport": "mem", "addr": "acme"})
	if code != http.StatusOK {
		t.Fatalf("register: %d", code)
	}
	// More lagging durable subs than healthTopK: the exposition must cap
	// at the ranked gauges.
	for i := 0; i < healthTopK+3; i++ {
		code, body := post(t, ts, "/api/subscribe", map[string]any{
			"client": "acme", "subscription": "(university = Toronto)", "durable": true})
		if code != http.StatusOK {
			t.Fatalf("subscribe %d: %d %v", i, code, body)
		}
	}
	sink.set(true)
	if code, body := post(t, ts, "/api/publish", map[string]any{"event": "(school, Toronto)"}); code != http.StatusOK {
		t.Fatalf("publish: %d %v", code, body)
	}
	if !ne.Drain(2 * time.Second) {
		t.Fatal("drain")
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	// Gauges may carry a broker label, so match "name[{labels}] value".
	for _, want := range []string{
		`stopss_runtime_goroutines(\{[^}]*\})? `,
		`stopss_runtime_heap_bytes(\{[^}]*\})? `,
		`stopss_subs_tracked(\{[^}]*\})? ` + fmt.Sprint(healthTopK+3),
		`stopss_subs_lag_max(\{[^}]*\})? 1`,
		`stopss_subs_lag_sum(\{[^}]*\})? ` + fmt.Sprint(healthTopK+3),
		`stopss_subs_lag_rank1(\{[^}]*\})? 1`,
		`stopss_subs_lag_rank` + fmt.Sprint(healthTopK) + `(\{[^}]*\})? 1`,
	} {
		if !regexp.MustCompile(want).MatchString(text) {
			t.Fatalf("/metrics output lacks /%s/:\n%s", want, text)
		}
	}
	if strings.Contains(text, "lag_rank"+fmt.Sprint(healthTopK+1)) {
		t.Fatalf("/metrics leaked rank beyond top-%d:\n%s", healthTopK, text)
	}
}

// TestMetricsScrapeUnderChurn scrapes /metrics concurrently with
// knowledge re-indexing and subscription churn. Run with -race this
// guards the lock discipline between the scrape-time snapshots
// (SubStats, engine stats, runtime reads) and the mutating paths.
func TestMetricsScrapeUnderChurn(t *testing.T) {
	ts, b := newKBStack(t)
	if err := b.Register(broker.Client{Name: "churn"}); err != nil {
		t.Fatal(err)
	}

	const rounds = 50
	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // scraper
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			resp, err := http.Get(ts.URL + "/metrics")
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				t.Error(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("/metrics during churn: %d", resp.StatusCode)
				return
			}
		}
	}()
	go func() { // knowledge re-indexer
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if _, err := b.InjectKnowledge(knowledge.Delta{
				Op: knowledge.OpAddSynonym, Root: "position", Terms: []string{fmt.Sprintf("gig%d", i)},
			}); err != nil {
				t.Errorf("inject %d: %v", i, err)
				return
			}
		}
	}()
	go func() { // subscription churn
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			code, body := post(t, ts, "/api/subscribe", map[string]any{
				"client": "churn", "subscription": "(degree = PhD)"})
			if code != http.StatusOK {
				t.Errorf("subscribe %d: %d %v", i, code, body)
				return
			}
			id := uint64(body["id"].(float64))
			if code, body := post(t, ts, "/api/unsubscribe", map[string]any{
				"client": "churn", "id": id}); code != http.StatusOK {
				t.Errorf("unsubscribe %d: %d %v", i, code, body)
				return
			}
		}
	}()
	wg.Wait()
}
