// Package webapp implements the web application of the demonstration
// setup (paper §4, Figure 2): client registration, subscription and
// publication input over an HTTP/JSON API, a mode switch between
// semantic and syntactic operation, and a statistics view.
//
// The API is versioned: every route lives under /api/v1/..., and the
// original unversioned /api/... paths remain as aliases of v1 so
// existing clients and scripts keep working. Errors are a uniform JSON
// envelope {"error":"...","code":<http status>} with the status code
// repeated in the body, and broker conditions map to proper statuses:
// unknown client/subscription → 404, foreign subscription → 403,
// non-durable subscription or missing journal/store → 409, malformed
// input → 400.
//
// Subscriptions and publications are submitted in the paper's surface
// syntax (internal/sublang):
//
//	POST /api/v1/register      {"name":"acme","transport":"tcp","addr":"127.0.0.1:9000"}
//	POST /api/v1/subscribe     {"client":"acme","subscription":"(university = Toronto) and (degree = PhD)"}
//	POST /api/v1/subscribe     {"client":"acme","subscription":"...","durable":true}
//	POST /api/v1/resume        {"client":"acme","id":1}   → replay-from-cursor for a durable sub
//	POST /api/v1/detach        {"client":"acme","id":1}   → page a durable sub out to the store
//	POST /api/v1/unsubscribe   {"client":"acme","id":1}
//	POST /api/v1/publish       {"event":"(school, Toronto)(degree, PhD)(graduation year, 1990)"}
//	POST /api/v1/publish-from  {"client":"acme","event":"..."}  → enforces the advertisement
//	POST /api/v1/advertise     {"client":"acme","advertisement":"..."}
//	GET  /api/v1/overlaps?client=acme → subscriptions the advertisement can match
//	POST /api/v1/explain       {"id":1,"event":"..."} → why (not) matched
//	GET  /api/v1/mode          → {"mode":"semantic"}
//	POST /api/v1/mode          {"mode":"syntactic"}
//	GET  /api/v1/stats         → broker and engine counters (incl. plan-cache,
//	                             expansion-LRU and intern-table gauges)
//	GET  /api/v1/clients       → registered client names
//	GET  /api/v1/subscriptions?client=acme → the client's subscriptions
//	GET  /api/v1/snapshot      → durable broker state as JSON lines
//	GET  /api/v1/kb            → knowledge-base version (delta count + digest)
//	POST /api/v1/kb            JSONL knowledge deltas (ontc -delta output)
//	GET  /api/v1/journal       → publication-journal stats + durable cursors
//	GET  /api/v1/trace/<id>    → assembled span tree of one publication
//	                             (DESIGN §10; the '#' in the pub ID may be
//	                             sent raw or URL-encoded as %23)
//	GET  /api/v1/subs          → per-subscription delivery accounting,
//	                             laggiest first (?limit=K, ?min_lag=N)
//	GET  /api/v1/cluster       → gossiped federation health view with
//	                             staleness stamps (overlay brokers only)
//	GET  /metrics              → Prometheus text exposition of every registry
//	GET  /                     → demo page
package webapp

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"

	"stopss/internal/broker"
	"stopss/internal/core"
	"stopss/internal/knowledge"
	"stopss/internal/message"
	"stopss/internal/metrics"
	"stopss/internal/notify"
	"stopss/internal/overlay"
	"stopss/internal/sublang"
	"stopss/internal/trace"
)

// metricSource is one registry rendered into GET /metrics.
type metricSource struct {
	prefix string
	reg    *metrics.Registry
}

// Server is the HTTP front end over a broker.
type Server struct {
	broker  *broker.Broker
	mux     *http.ServeMux
	sources []metricSource
	labels  map[string]string
	// cluster supplies the federation health view for GET /api/cluster
	// (WithCluster); nil on standalone brokers.
	cluster func() []overlay.ClusterEntry
}

// Option customizes a Server.
type Option func(*Server)

// WithMetrics adds a registry to the GET /metrics exposition under the
// given prefix (the broker tracer's registry — stage histograms, trace
// counters, overlay counters when the tracer was installed by an
// overlay node — is always included under "stopss"). Registries must
// not repeat a (prefix, metric name) pair or the exposition would emit
// duplicate families.
func WithMetrics(prefix string, reg *metrics.Registry) Option {
	return func(s *Server) {
		if reg != nil {
			s.sources = append(s.sources, metricSource{prefix: prefix, reg: reg})
		}
	}
}

// WithMetricsLabels attaches constant labels (e.g. broker identity) to
// every exposed sample. Defaults to broker="<tracer identity>".
func WithMetricsLabels(labels map[string]string) Option {
	return func(s *Server) { s.labels = labels }
}

// NewServer builds the handler tree.
func NewServer(b *broker.Broker, opts ...Option) *Server {
	s := &Server{broker: b, mux: http.NewServeMux()}
	for _, o := range opts {
		o(s)
	}
	// Every API route registers twice: under the versioned /api/v1
	// prefix (canonical) and under the original /api prefix (legacy
	// alias, same handlers, same wire types). New routes must join this
	// table, not bypass it, so the two surfaces can never drift.
	routes := []struct {
		verb, path string
		h          http.HandlerFunc
	}{
		{"POST", "/register", s.handleRegister},
		{"POST", "/subscribe", s.handleSubscribe},
		{"POST", "/unsubscribe", s.handleUnsubscribe},
		{"POST", "/publish", s.handlePublish},
		{"GET", "/mode", s.handleGetMode},
		{"POST", "/mode", s.handleSetMode},
		{"POST", "/advertise", s.handleAdvertise},
		{"POST", "/publish-from", s.handlePublishFrom},
		{"GET", "/overlaps", s.handleOverlaps},
		{"POST", "/explain", s.handleExplain},
		{"GET", "/stats", s.handleStats},
		{"GET", "/clients", s.handleClients},
		{"GET", "/subscriptions", s.handleSubscriptions},
		{"GET", "/snapshot", s.handleSnapshot},
		{"GET", "/kb", s.handleKBStatus},
		{"POST", "/kb", s.handleKBApply},
		{"GET", "/journal", s.handleJournal},
		{"POST", "/resume", s.handleResume},
		{"POST", "/detach", s.handleDetach},
		{"GET", "/trace/{id...}", s.handleTrace},
		{"GET", "/subs", s.handleSubs},
		{"GET", "/cluster", s.handleCluster},
	}
	for _, rt := range routes {
		s.mux.HandleFunc(rt.verb+" /api/v1"+rt.path, rt.h)
		s.mux.HandleFunc(rt.verb+" /api"+rt.path, rt.h)
	}
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /", s.handleIndex)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// --- wire types ---

type registerRequest struct {
	Name      string `json:"name"`
	Transport string `json:"transport,omitempty"`
	Addr      string `json:"addr,omitempty"`
}

type subscribeRequest struct {
	Client       string `json:"client"`
	Subscription string `json:"subscription"`
	// Durable requests at-least-once delivery backed by the broker's
	// publication journal: the subscription gets a cursor that advances
	// on acknowledged delivery, and POST /api/resume replays everything
	// past it after a reconnect. Requires -journal-dir on the server.
	Durable bool `json:"durable,omitempty"`
}

type subscribeResponse struct {
	// ID is the first (or only) subscription created; IDs lists every
	// subscription of a disjunctive submission, one per "or"-disjunct.
	ID      message.SubID   `json:"id"`
	IDs     []message.SubID `json:"ids"`
	Parsed  string          `json:"parsed"`
	Durable bool            `json:"durable,omitempty"`
}

type unsubscribeRequest struct {
	Client string        `json:"client"`
	ID     message.SubID `json:"id"`
}

type publishRequest struct {
	Event string `json:"event"`
}

type publishResponse struct {
	Matches  []message.SubID `json:"matches"`
	Notified int             `json:"notified"`
	Dropped  int             `json:"dropped"`
	Parsed   string          `json:"parsed"`
	// PubID is the publication's trace identity; feed it (with '#'
	// URL-encoded as %23) to GET /api/trace/<pub_id>.
	PubID string `json:"pub_id,omitempty"`
}

type modeBody struct {
	Mode string `json:"mode"`
}

// errorBody is the uniform error envelope of every API error response,
// versioned and legacy alike. Code repeats the HTTP status so clients
// reading only the body (queued responses, logs) can still classify.
type errorBody struct {
	Error string `json:"error"`
	Code  int    `json:"code"`
}

// --- helpers ---

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error(), Code: status})
}

// writeBrokerErr maps broker sentinel conditions to HTTP statuses:
// things that don't exist are 404, things that exist but belong to
// someone else are 403, operations the broker's configuration or the
// subscription's kind cannot support are 409, and anything else is a
// plain bad request.
func writeBrokerErr(w http.ResponseWriter, err error) {
	writeErr(w, statusFor(err), err)
}

func statusFor(err error) int {
	switch {
	case errors.Is(err, broker.ErrUnknownClient),
		errors.Is(err, broker.ErrUnknownSubscription):
		return http.StatusNotFound
	case errors.Is(err, broker.ErrNotOwner):
		return http.StatusForbidden
	case errors.Is(err, broker.ErrNotDurable),
		errors.Is(err, broker.ErrNoJournal):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}

func decode[T any](w http.ResponseWriter, r *http.Request, into *T) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("webapp: decoding request: %w", err))
		return false
	}
	return true
}

// --- handlers ---

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if !decode(w, r, &req) {
		return
	}
	c := broker.Client{Name: req.Name}
	if req.Transport != "" {
		c.Route = notify.Route{Transport: req.Transport, Addr: req.Addr}
	}
	if err := s.broker.Register(c); err != nil {
		writeBrokerErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"registered": req.Name})
}

func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	var req subscribeRequest
	if !decode(w, r, &req) {
		return
	}
	groups, err := sublang.ParseSubscriptionSet(req.Subscription)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ids := make([]message.SubID, 0, len(groups))
	for _, preds := range groups {
		var id message.SubID
		if req.Durable {
			id, err = s.broker.SubscribeDurable(req.Client, preds)
		} else {
			id, err = s.broker.Subscribe(req.Client, preds)
		}
		if err != nil {
			// Roll back the disjuncts already stored so the submission
			// is all-or-nothing.
			for _, done := range ids {
				_ = s.broker.Unsubscribe(req.Client, done)
			}
			writeBrokerErr(w, err)
			return
		}
		ids = append(ids, id)
	}
	writeJSON(w, http.StatusOK, subscribeResponse{
		ID:      ids[0],
		IDs:     ids,
		Parsed:  sublang.FormatSubscriptionSet(groups),
		Durable: req.Durable,
	})
}

func (s *Server) handleUnsubscribe(w http.ResponseWriter, r *http.Request) {
	var req unsubscribeRequest
	if !decode(w, r, &req) {
		return
	}
	if err := s.broker.Unsubscribe(req.Client, req.ID); err != nil {
		writeBrokerErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"unsubscribed": req.ID})
}

func (s *Server) handlePublish(w http.ResponseWriter, r *http.Request) {
	var req publishRequest
	if !decode(w, r, &req) {
		return
	}
	ev, err := sublang.ParseEvent(req.Event)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.broker.Publish(ev)
	if err != nil {
		writeBrokerErr(w, err)
		return
	}
	matches := res.Matches
	if matches == nil {
		matches = []message.SubID{}
	}
	writeJSON(w, http.StatusOK, publishResponse{
		Matches:  matches,
		Notified: res.Notified,
		Dropped:  res.Dropped,
		Parsed:   sublang.FormatEvent(ev),
		PubID:    res.PubID,
	})
}

type advertiseRequest struct {
	Client        string `json:"client"`
	Advertisement string `json:"advertisement"`
}

// handleAdvertise records the publisher's advertised event space.
func (s *Server) handleAdvertise(w http.ResponseWriter, r *http.Request) {
	var req advertiseRequest
	if !decode(w, r, &req) {
		return
	}
	preds, err := sublang.ParseSubscription(req.Advertisement)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := s.broker.Advertise(req.Client, preds); err != nil {
		writeBrokerErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"advertised": req.Client})
}

type publishFromRequest struct {
	Client string `json:"client"`
	Event  string `json:"event"`
}

// handlePublishFrom publishes on behalf of a client, enforcing its
// advertisement.
func (s *Server) handlePublishFrom(w http.ResponseWriter, r *http.Request) {
	var req publishFromRequest
	if !decode(w, r, &req) {
		return
	}
	ev, err := sublang.ParseEvent(req.Event)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.broker.PublishFrom(req.Client, ev)
	if err != nil {
		writeBrokerErr(w, err)
		return
	}
	matches := res.Matches
	if matches == nil {
		matches = []message.SubID{}
	}
	writeJSON(w, http.StatusOK, publishResponse{
		Matches: matches, Notified: res.Notified, Dropped: res.Dropped,
		Parsed: sublang.FormatEvent(ev), PubID: res.PubID,
	})
}

// handleOverlaps lists the subscriptions a publisher's advertisement can
// ever match.
func (s *Server) handleOverlaps(w http.ResponseWriter, r *http.Request) {
	client := r.URL.Query().Get("client")
	if client == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("webapp: missing ?client= parameter"))
		return
	}
	ids, err := s.broker.OverlappingSubscriptions(client)
	if err != nil {
		writeBrokerErr(w, err)
		return
	}
	if ids == nil {
		ids = []message.SubID{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"client": client, "overlaps": ids})
}

type explainRequest struct {
	ID    message.SubID `json:"id"`
	Event string        `json:"event"`
}

// handleExplain traces why a subscription does or does not match a
// publication — the "witness the matching" view of the demonstration.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req explainRequest
	if !decode(w, r, &req) {
		return
	}
	ev, err := sublang.ParseEvent(req.Event)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	x, err := s.broker.Engine().Explain(req.ID, ev)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"matched": x.Matched,
		"trace":   x.String(),
	})
}

func (s *Server) handleGetMode(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, modeBody{Mode: s.broker.Engine().Mode().String()})
}

func (s *Server) handleSetMode(w http.ResponseWriter, r *http.Request) {
	var req modeBody
	if !decode(w, r, &req) {
		return
	}
	mode, err := core.ParseMode(req.Mode)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := s.broker.Engine().SetMode(mode); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, modeBody{Mode: mode.String()})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.broker.Stats())
}

func (s *Server) handleClients(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"clients": s.broker.Clients()})
}

// subscriptionInfo is one row of the GET /api/subscriptions listing.
type subscriptionInfo struct {
	ID   message.SubID `json:"id"`
	Text string        `json:"text"`
}

func (s *Server) handleSubscriptions(w http.ResponseWriter, r *http.Request) {
	client := r.URL.Query().Get("client")
	if client == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("webapp: missing ?client= parameter"))
		return
	}
	var out []subscriptionInfo
	for _, id := range s.broker.SubscriptionsOf(client) {
		if sub, ok := s.broker.Engine().Subscription(id); ok {
			out = append(out, subscriptionInfo{ID: id, Text: sublang.FormatSubscription(sub.Preds)})
		}
	}
	if out == nil {
		out = []subscriptionInfo{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"client": client, "subscriptions": out})
}

// handleKBStatus reports the broker's knowledge-base version: the
// applied-delta count, rejection count and digest operators compare
// across brokers to find federation knowledge skew.
func (s *Server) handleKBStatus(w http.ResponseWriter, r *http.Request) {
	if s.broker.Engine().Knowledge() == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("webapp: no knowledge base bound to this broker"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"enabled": true,
		"version": s.broker.KnowledgeVersion(),
	})
}

// kbApplyResult is one line's outcome in the POST /api/kb response.
type kbApplyResult struct {
	ID        string `json:"id"`
	Applied   bool   `json:"applied"`
	Duplicate bool   `json:"duplicate,omitempty"`
	Rejected  bool   `json:"rejected,omitempty"`
	Reindexed int    `json:"reindexed,omitempty"`
	Error     string `json:"error,omitempty"`
}

// handleKBApply injects knowledge deltas at runtime: the body is one
// JSON delta per line (the `ontc -delta` output). Unstamped deltas get
// the deterministic content+line stamp (knowledge.FileStamp), so
// re-POSTing the same update log — to this broker or any other — is
// idempotent; applied deltas replicate to the federation through the
// overlay.
//
// The stamp is positional (content + line number), so idempotence
// holds for byte-identical replays only: a delta that reappears at a
// shifted line — a regenerated diff, or logs concatenated into one
// body — gets a fresh identity and re-enters the replicated
// append-only log. That is harmless to convergence (the re-applied
// operation is a no-op or a deterministic rejection, and it floods
// like any delta), but it permanently grows every broker's log and
// changes the federation digest. Treat each update log as an
// immutable artifact: POST it verbatim, and ship new changes as a new
// log rather than editing or concatenating old ones.
//
// Per-line outcomes are reported, and any malformed line fails the
// request after the preceding lines have been applied (application is
// per-delta, not transactional).
func (s *Server) handleKBApply(w http.ResponseWriter, r *http.Request) {
	if s.broker.Engine().Knowledge() == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("webapp: no knowledge base bound to this broker"))
		return
	}
	sc := bufio.NewScanner(http.MaxBytesReader(w, r.Body, 8<<20))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var results []kbApplyResult
	status := http.StatusOK
	var lineNo uint64
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		d, err := knowledge.Decode(line)
		if err == nil {
			d, err = knowledge.FileStamp(lineNo, d)
		}
		if err != nil {
			results = append(results, kbApplyResult{Error: err.Error()})
			status = http.StatusBadRequest
			break
		}
		rep, err := s.broker.InjectKnowledge(d)
		if err != nil {
			results = append(results, kbApplyResult{ID: d.ID(), Error: err.Error()})
			status = http.StatusBadRequest
			break
		}
		results = append(results, kbApplyResult{
			ID:        rep.ID,
			Applied:   rep.Applied,
			Duplicate: rep.Duplicate,
			Rejected:  rep.Rejected,
			Reindexed: rep.Reindexed,
		})
	}
	if err := sc.Err(); err != nil && status == http.StatusOK {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, status, map[string]any{
		"results": results,
		"version": s.broker.KnowledgeVersion(),
	})
}

// handleJournal reports the publication journal's stats and the
// durable cursors — the operator's view of retention pressure, parked
// deliveries and replay progress.
func (s *Server) handleJournal(w http.ResponseWriter, r *http.Request) {
	j := s.broker.Journal()
	if j == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("webapp: no journal attached to this broker (start the server with -journal-dir)"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"enabled": true,
		"stats":   j.Stats(),
		"cursors": j.Cursors(),
	})
}

type resumeRequest struct {
	Client string        `json:"client"`
	ID     message.SubID `json:"id"`
}

// handleResume re-attaches a durable subscriber after a reconnect:
// everything past the subscription's cursor is replayed (at-least-once
// — records already in flight are delivered once, parked ones are
// retried).
func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	var req resumeRequest
	if !decode(w, r, &req) {
		return
	}
	n, err := s.broker.ResumeDurable(req.Client, req.ID)
	if err != nil {
		writeBrokerErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": req.ID, "replayed": n})
}

// handleDetach pages a durable subscription out to the subscription
// store (requires -store-dir): its resident state is released and a
// later POST /api/resume faults it back in with a full catch-up
// replay. The natural call point is a client library's "going offline
// for a while" signal.
func (s *Server) handleDetach(w http.ResponseWriter, r *http.Request) {
	var req resumeRequest
	if !decode(w, r, &req) {
		return
	}
	if s.broker.Store() == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("webapp: no subscription store attached to this broker (start the server with -store-dir)"))
		return
	}
	if err := s.broker.DetachDurable(req.Client, req.ID); err != nil {
		writeBrokerErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": req.ID, "detached": true})
}

// traceResponse is the GET /api/trace/<id> body: the publication's
// span set, start-sorted, as assembled on THIS broker (span reports
// from downstream brokers travel back along the forwarding path, so
// the origin converges on the full tree once deliveries settle).
type traceResponse struct {
	PubID  string       `json:"pub_id"`
	Broker string       `json:"broker"`
	Spans  []trace.Span `json:"spans"`
}

// handleTrace returns the assembled span tree of one publication. The
// {id...} wildcard keeps the '/' inside pub IDs (name#epoch/seq). The
// '#' may arrive either raw — servers receive the request-target
// verbatim; only browsers strip fragments client-side — or URL-encoded
// as %23 (which the mux decodes). A defensive extra unescape also
// accepts double-encoded IDs from clients that escape an already-
// escaped ID; '#' and '/' never appear percent-encoded in a pub ID
// sent straight, so the extra decode cannot corrupt a well-formed one.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if u, err := url.PathUnescape(id); err == nil {
		id = u
	}
	if id == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("webapp: missing publication ID (use /api/trace/<name>%%23<epoch>/<seq>)"))
		return
	}
	tr := s.broker.Tracer()
	if tr == nil || !tr.Traced(id) {
		writeErr(w, http.StatusNotFound, fmt.Errorf("webapp: no trace for publication %q (evicted, sampled out, or never seen here)", id))
		return
	}
	writeJSON(w, http.StatusOK, traceResponse{PubID: id, Broker: tr.Broker(), Spans: tr.Spans(id)})
}

// handleMetrics renders every registered registry in Prometheus text
// exposition format (0.0.4). The broker tracer's registry leads under
// the "stopss" prefix; WithMetrics sources follow in registration
// order (a source that aliases the tracer registry is skipped so one
// registry never emits twice).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	labels := s.labels
	var traced *metrics.Registry
	if tr := s.broker.Tracer(); tr != nil {
		traced = tr.Registry()
		if labels == nil && tr.Broker() != "" {
			labels = map[string]string{"broker": tr.Broker()}
		}
		if err := traced.WritePrometheus(w, "stopss", labels); err != nil {
			return // client went away mid-scrape; nothing to salvage
		}
	}
	for _, src := range s.sources {
		if src.reg == traced {
			continue
		}
		if err := src.reg.WritePrometheus(w, src.prefix, labels); err != nil {
			return
		}
	}
	// Query-optimizer gauges (plan cache, expansion LRU, intern table)
	// live in engine stats, not a long-lived registry: snapshot them
	// into a scratch registry per scrape so they render with the same
	// formatting and labels as everything else.
	st := s.broker.Engine().Stats()
	opt := metrics.NewRegistry()
	opt.Counter("plan_cache_hits").Add(st.PlanCacheHits)
	opt.Counter("plan_cache_misses").Add(st.PlanCacheMisses)
	opt.Gauge("plans_cached").Set(int64(st.PlansCached))
	opt.Counter("expansion_cache_hits").Add(st.ExpansionHits)
	opt.Counter("expansion_cache_misses").Add(st.ExpansionMisses)
	opt.Counter("expansion_cache_evictions").Add(st.ExpansionEvictions)
	opt.Counter("expansion_cache_invalidated").Add(st.ExpansionInvalidated)
	opt.Gauge("expansion_cache_size").Set(int64(st.ExpansionSize))
	opt.Gauge("interned_terms").Set(int64(st.InternedTerms))
	if err := opt.WritePrometheus(w, "stopss_optimizer", labels); err != nil {
		return
	}
	// Process health and per-subscription lag (health.go).
	s.writeHealthMetrics(w, labels)
}

// handleSnapshot streams the broker's durable state (clients, routes,
// subscriptions) as JSON lines — the format broker.Restore consumes.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/jsonl")
	if err := s.broker.Snapshot(w); err != nil {
		// Headers are already out; the truncated body will fail to
		// restore, which is the safe failure mode.
		fmt.Fprintf(w, `{"kind":"error","error":%q}`+"\n", err.Error())
	}
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, indexHTML)
}

// indexHTML is the single-page demo UI: registration, subscription and
// publication forms wired to the JSON API, plus a mode toggle — the
// "web-based application for client registration and
// subscription/publication input" of paper §4.
const indexHTML = `<!DOCTYPE html>
<html>
<head><meta charset="utf-8"><title>S-ToPSS Demonstration</title>
<style>
 body { font-family: sans-serif; margin: 2em; max-width: 56em; }
 fieldset { margin-bottom: 1em; }
 input[type=text] { width: 40em; }
 pre { background: #f4f4f4; padding: .6em; }
</style></head>
<body>
<h1>S-ToPSS — Semantic Toronto Publish/Subscribe System</h1>
<p>Job-finder demonstration (VLDB 2003). Mode:
 <select id="mode" onchange="setMode()">
  <option value="semantic">semantic</option>
  <option value="syntactic">syntactic</option>
 </select></p>
<fieldset><legend>Register client</legend>
 <input type="text" id="client" placeholder="company name" value="acme">
 <button onclick="register()">Register</button></fieldset>
<fieldset><legend>Subscribe</legend>
 <input type="text" id="sub" value="(university = Toronto) and (degree = PhD) and (professional experience >= 4)">
 <button onclick="subscribe()">Subscribe</button></fieldset>
<fieldset><legend>Publish resume</legend>
 <input type="text" id="pub" value="(school, Toronto)(degree, PhD)(work experience, true)(graduation year, 1990)">
 <button onclick="publish()">Publish</button></fieldset>
<pre id="out">ready</pre>
<script>
async function api(path, body) {
  const opts = body ? {method:'POST', body: JSON.stringify(body)} : {};
  const res = await fetch(path, opts);
  const text = await res.text();
  document.getElementById('out').textContent = text;
  return text;
}
function register()  { api('/api/register',  {name: document.getElementById('client').value}); }
function subscribe() { api('/api/subscribe', {client: document.getElementById('client').value, subscription: document.getElementById('sub').value}); }
function publish()   { api('/api/publish',   {event: document.getElementById('pub').value}); }
function setMode()   { api('/api/mode',      {mode: document.getElementById('mode').value}); }
</script>
</body></html>
`
