package webapp

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"stopss/internal/broker"
	"stopss/internal/core"
	"stopss/internal/journal"
	"stopss/internal/notify"
	"stopss/internal/ontology"
	"stopss/internal/semantic"
	"stopss/internal/store"
	"stopss/internal/workload"
)

// flakySink is an in-memory notification endpoint with an on/off
// switch, mirroring a subscriber that disconnects.
type flakySink struct {
	mu      sync.Mutex
	offline bool
	seen    int
}

func (f *flakySink) Name() string { return "mem" }

func (f *flakySink) Send(string, notify.Notification) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.offline {
		return errOffline
	}
	f.seen++
	return nil
}

func (f *flakySink) Close() error { return nil }

func (f *flakySink) set(offline bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.offline = offline
}

func (f *flakySink) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seen
}

var errOffline = errors.New("mem: endpoint offline")

// newDurableStack is newStack plus an attached journal.
func newDurableStack(t *testing.T) (*httptest.Server, *broker.Broker, *flakySink, *notify.Engine) {
	t.Helper()
	ont, err := ontology.Load(workload.JobsODL, ontology.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sink := &flakySink{}
	ne, err := notify.NewEngine(notify.Config{Workers: 2, MaxRetries: 1, Backoff: time.Millisecond}, sink)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ne.Close() })
	j, err := journal.Open(journal.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = j.Close() })
	b := broker.New(core.NewEngine(ont.Stage(semantic.FullConfig())), ne)
	b.AttachJournal(j)
	ts := httptest.NewServer(NewServer(b))
	t.Cleanup(ts.Close)
	return ts, b, sink, ne
}

func TestJournalEndpointAndDurableResume(t *testing.T) {
	ts, _, sink, ne := newDurableStack(t)

	code, _ := post(t, ts, "/api/register", map[string]any{
		"name": "acme", "transport": "mem", "addr": "acme"})
	if code != http.StatusOK {
		t.Fatalf("register: %d", code)
	}
	code, body := post(t, ts, "/api/subscribe", map[string]any{
		"client": "acme", "subscription": "(university = Toronto)", "durable": true})
	if code != http.StatusOK {
		t.Fatalf("durable subscribe: %d %v", code, body)
	}
	if body["durable"] != true {
		t.Fatalf("response not flagged durable: %v", body)
	}
	id := body["id"].(float64)

	// One delivered, then the endpoint goes away and one parks.
	if code, body := post(t, ts, "/api/publish", map[string]any{"event": "(school, Toronto)"}); code != http.StatusOK {
		t.Fatalf("publish: %d %v", code, body)
	}
	if !ne.Drain(2 * time.Second) {
		t.Fatal("drain 1")
	}
	sink.set(true)
	if code, body := post(t, ts, "/api/publish", map[string]any{"event": "(school, Toronto)"}); code != http.StatusOK {
		t.Fatalf("publish: %d %v", code, body)
	}
	if !ne.Drain(2 * time.Second) {
		t.Fatal("drain 2")
	}

	code, jbody := get(t, ts, "/api/journal")
	if code != http.StatusOK {
		t.Fatalf("journal: %d %v", code, jbody)
	}
	stats := jbody["stats"].(map[string]any)
	if stats["Appends"].(float64) != 2 {
		t.Fatalf("journal stats = %v, want 2 appends", stats)
	}
	cursors := jbody["cursors"].(map[string]any)
	if cursors["sub-1"].(float64) != 1 {
		t.Fatalf("cursors = %v, want sub-1 at 1", cursors)
	}

	// Reconnect and resume: the parked publication replays.
	sink.set(false)
	code, rbody := post(t, ts, "/api/resume", map[string]any{"client": "acme", "id": id})
	if code != http.StatusOK {
		t.Fatalf("resume: %d %v", code, rbody)
	}
	if rbody["replayed"].(float64) != 1 {
		t.Fatalf("resume replayed %v, want 1", rbody["replayed"])
	}
	if !ne.Drain(2 * time.Second) {
		t.Fatal("drain 3")
	}
	if sink.count() != 2 {
		t.Fatalf("endpoint saw %d deliveries, want 2", sink.count())
	}

	// Resume of a non-durable sub fails.
	code, body = post(t, ts, "/api/subscribe", map[string]any{
		"client": "acme", "subscription": "(degree = PhD)"})
	if code != http.StatusOK {
		t.Fatalf("subscribe: %d %v", code, body)
	}
	if code, _ := post(t, ts, "/api/resume", map[string]any{"client": "acme", "id": body["id"]}); code != http.StatusConflict {
		t.Fatalf("resume of non-durable sub: %d, want 409", code)
	}
}

func TestDetachEndpointRoundTrip(t *testing.T) {
	ts, b, sink, ne := newDurableStack(t)
	st, err := store.Open(store.Config{Path: filepath.Join(t.TempDir(), "subs.heap"), PageSize: 512, Pages: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = st.Close() })
	if err := b.AttachStore(st); err != nil {
		t.Fatal(err)
	}

	code, _ := post(t, ts, "/api/register", map[string]any{
		"name": "acme", "transport": "mem", "addr": "acme"})
	if code != http.StatusOK {
		t.Fatalf("register: %d", code)
	}
	code, body := post(t, ts, "/api/subscribe", map[string]any{
		"client": "acme", "subscription": "(university = Toronto)", "durable": true})
	if code != http.StatusOK {
		t.Fatalf("durable subscribe: %d %v", code, body)
	}
	id := body["id"].(float64)

	code, dbody := post(t, ts, "/api/detach", map[string]any{"client": "acme", "id": id})
	if code != http.StatusOK {
		t.Fatalf("detach: %d %v", code, dbody)
	}
	if got := b.Stats(); got.Detached != 1 || got.Durable != 0 {
		t.Fatalf("after detach: Detached=%d Durable=%d", got.Detached, got.Durable)
	}

	// Published while paged out: journaled, not delivered.
	if code, body := post(t, ts, "/api/publish", map[string]any{"event": "(school, Toronto)"}); code != http.StatusOK {
		t.Fatalf("publish: %d %v", code, body)
	}
	if !ne.Drain(2 * time.Second) {
		t.Fatal("drain")
	}
	if sink.count() != 0 {
		t.Fatalf("detached subscription delivered %d times", sink.count())
	}

	// Resume faults it back in and replays the missed publication.
	code, rbody := post(t, ts, "/api/resume", map[string]any{"client": "acme", "id": id})
	if code != http.StatusOK {
		t.Fatalf("resume: %d %v", code, rbody)
	}
	if rbody["replayed"].(float64) != 1 {
		t.Fatalf("resume replayed %v, want 1", rbody["replayed"])
	}
	if !ne.Drain(2 * time.Second) {
		t.Fatal("drain 2")
	}
	if sink.count() != 1 {
		t.Fatalf("endpoint saw %d deliveries, want 1", sink.count())
	}

	// Detach of an unknown sub is a client error, not a crash.
	if code, _ := post(t, ts, "/api/detach", map[string]any{"client": "acme", "id": 99}); code != http.StatusNotFound {
		t.Fatalf("detach of unknown sub: %d, want 404", code)
	}
}

func TestDetachEndpointWithoutStore(t *testing.T) {
	ts, _, _, _ := newDurableStack(t)
	if code, _ := post(t, ts, "/api/detach", map[string]any{"client": "acme", "id": 1}); code != http.StatusNotFound {
		t.Fatalf("detach without store: %d, want 404", code)
	}
}

func TestJournalEndpointWithoutJournal(t *testing.T) {
	ts, _ := newStack(t, nil)
	if code, _ := get(t, ts, "/api/journal"); code != http.StatusNotFound {
		t.Fatalf("journal without journal: %d, want 404", code)
	}
	if code, _ := post(t, ts, "/api/subscribe", map[string]any{
		"client": "acme", "subscription": "(degree = PhD)", "durable": true}); code != http.StatusConflict {
		t.Fatalf("durable subscribe without journal: %d, want 409", code)
	}
}
