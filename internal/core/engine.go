// Package core assembles the S-ToPSS engine of Figure 1: a semantic
// stage (internal/semantic) in front of a content-based matching
// algorithm (internal/matching).
//
// The engine is the unit the demonstration runs in "semantic" or
// "syntactic" mode (paper §4): in syntactic mode the semantic stage is
// bypassed entirely and the engine behaves like the underlying ToPSS
// matcher; in semantic mode subscriptions are synonym-canonicalized on
// entry and every publication is expanded into a set of derived events
// whose matches are unioned.
//
// Engine is safe for concurrent use: matching state is guarded by a
// read-write mutex (publications of distinct events still serialize on
// the matcher, whose counter structures are single-writer by design).
package core

import (
	"fmt"
	"slices"
	"sort"
	"sync"
	"time"

	"stopss/internal/knowledge"
	"stopss/internal/matching"
	"stopss/internal/message"
	"stopss/internal/semantic"
)

// Mode selects semantic or syntactic operation (paper §4: "the
// application can run in two different modes: semantic or syntactic").
type Mode int

// The two demonstration modes.
const (
	Syntactic Mode = iota
	Semantic
)

// String returns "semantic" or "syntactic".
func (m Mode) String() string {
	if m == Semantic {
		return "semantic"
	}
	return "syntactic"
}

// ParseMode converts the surface form to a Mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "semantic":
		return Semantic, nil
	case "syntactic":
		return Syntactic, nil
	default:
		return Syntactic, fmt.Errorf("core: unknown mode %q (want semantic or syntactic)", s)
	}
}

// Stats aggregates engine activity since construction.
type Stats struct {
	Subscriptions   int           // currently indexed
	SubsAdded       uint64        // total ever added
	SubsRemoved     uint64        // total ever removed
	Events          uint64        // publications processed
	DerivedEvents   uint64        // events produced by the semantic stage (incl. roots)
	Matches         uint64        // subscription matches delivered
	SynonymRewrites uint64        // attribute/value rewrites (events + subscriptions)
	HierarchyPairs  uint64        // generalized pairs added
	MappingPairs    uint64        // pairs derived by mapping functions
	MappingCalls    uint64        // mapping function invocations
	Truncated       uint64        // publications whose expansion hit the budget
	SemanticTime    time.Duration // cumulative time in the semantic stage
	MatchTime       time.Duration // cumulative time in the matching algorithm

	// Knowledge-base observability (zero when no base is bound): the
	// applied-delta count and digest identify this engine's KB version,
	// so operators can spot federation knowledge skew at a glance.
	KBDeltas    uint64 // deltas in the applied log (incl. rejected)
	KBRejected  uint64 // deltas rejected deterministically
	KBReindexed uint64 // subscriptions re-indexed by knowledge updates
	// KBFullReindexes counts knowledge re-indexes that fell back to the
	// full subscription set (affected-term set past KBFullReindexTerms,
	// or an explicit full request). With bounded multi-origin
	// convergence this should stay 0 in steady state — the sim asserts
	// exactly that — so a non-zero rate is a cost regression signal.
	KBFullReindexes uint64
	KBVersion       string // order-sensitive digest of the applied log

	// Query-optimizer observability (DESIGN.md §12). Plan-cache counters
	// come from the matcher (compiled subscription plans shared across
	// duplicates); expansion counters from the engine's semantic-
	// expansion LRU; InternedTerms is the size of the process-wide
	// string-intern table (global, so Merge takes the max, not the sum).
	PlanCacheHits        uint64
	PlanCacheMisses      uint64
	PlansCached          int
	ExpansionHits        uint64
	ExpansionMisses      uint64
	ExpansionEvictions   uint64
	ExpansionInvalidated uint64
	ExpansionSize        int
	InternedTerms        int
}

// PubSub is the engine surface the broker (and everything above it)
// programs against. *Engine implements it directly; overlay.ShardedEngine
// implements it by fanning out over a pool of Engines. Keeping the
// broker on this interface is what lets one deployment swap a single
// engine for a sharded pool without touching the dispatch layer.
type PubSub interface {
	Subscribe(s message.Subscription) error
	Unsubscribe(id message.SubID) bool
	Subscription(id message.SubID) (message.Subscription, bool)
	Publish(ev message.Event) (MatchResult, error)
	Explain(id message.SubID, ev message.Event) (Explanation, error)
	Mode() Mode
	SetMode(m Mode) error
	Stats() Stats
	Size() int
	Stage() *semantic.Stage
	MatcherName() string

	// ApplyKnowledge folds one knowledge delta into the bound base,
	// swaps the semantic stage to the fresh snapshot, and re-indexes
	// affected subscriptions — all excluded against in-flight
	// publications, like SetMode. Errors when no base is bound.
	ApplyKnowledge(d knowledge.Delta) (KnowledgeReport, error)
	// Knowledge exposes the bound knowledge base (nil when none).
	Knowledge() *knowledge.Base
}

// Engine is the S-ToPSS box of Figure 1.
type Engine struct {
	mu      sync.RWMutex
	stage   *semantic.Stage
	matcher matching.Matcher
	mode    Mode
	// originals remembers the subscription as submitted, so that mode
	// switches can re-canonicalize and notifications can echo the
	// user's own terminology.
	originals map[message.SubID]message.Subscription
	stats     Stats
	kb        *knowledge.Base // optional; set with WithKnowledge

	// matchScratch accumulates per-derived-event match results during a
	// multi-event union so the hot path allocates no dedup map. Guarded
	// by mu (the union runs under the write lock); only a right-sized
	// copy of the deduped result ever escapes.
	matchScratch []message.SubID

	// expCache memoizes semantic-expansion results by event signature
	// (nil when disabled). stageVersion is the stage snapshot version
	// the cache contents were computed under; Publish flushes on
	// mismatch, which catches out-of-band stage mutations (SetConfig,
	// ontology Replace) that bypass ApplyKnowledge's precise
	// invalidation. Both guarded by mu.
	expCache     *ExpansionCache
	expCap       int
	stageVersion uint64
}

// Option configures an Engine.
type Option func(*Engine)

// WithMatcher selects the underlying matching algorithm (default:
// counting).
func WithMatcher(m matching.Matcher) Option {
	return func(e *Engine) { e.matcher = m }
}

// WithMode selects the initial mode (default: Semantic).
func WithMode(m Mode) Option {
	return func(e *Engine) { e.mode = m }
}

// WithKnowledge binds a runtime knowledge base. The engine's stage must
// have been built over the base's structures (knowledge.Base.Stage does
// that), so Apply outcomes swap in coherently.
func WithKnowledge(b *knowledge.Base) Option {
	return func(e *Engine) { e.kb = b }
}

// WithExpansionCache sets the semantic-expansion LRU capacity; n <= 0
// disables memoization. Default: DefaultExpansionCacheSize.
func WithExpansionCache(n int) Option {
	return func(e *Engine) { e.expCap = n }
}

// NewEngine builds an engine over the given semantic stage. A nil stage
// yields an engine with an empty knowledge base (still valid: it simply
// never rewrites or expands anything).
func NewEngine(stage *semantic.Stage, opts ...Option) *Engine {
	if stage == nil {
		stage = semantic.NewStage(nil, nil, nil, semantic.FullConfig())
	}
	e := &Engine{
		stage:     stage,
		matcher:   matching.NewCounting(),
		mode:      Semantic,
		originals: make(map[message.SubID]message.Subscription),
		expCap:    DefaultExpansionCacheSize,
	}
	for _, o := range opts {
		o(e)
	}
	e.expCache = NewExpansionCache(e.expCap)
	e.stageVersion = e.stage.Version()
	return e
}

// ExpansionCache exposes the engine's expansion LRU (nil when disabled).
// The sharded pool reuses the same type at pool level; this accessor
// exists for tests and diagnostics.
func (e *Engine) ExpansionCache() *ExpansionCache { return e.expCache }

// Stage exposes the semantic stage (e.g. for the ontology loader).
func (e *Engine) Stage() *semantic.Stage { return e.stage }

// MatcherName reports the underlying algorithm.
func (e *Engine) MatcherName() string { return e.matcher.Name() }

// Mode reports the current mode.
func (e *Engine) Mode() Mode {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.mode
}

// SetMode switches between semantic and syntactic operation. Because
// subscriptions are canonicalized when indexed, a switch re-indexes every
// stored subscription under the new mode's rewrite.
func (e *Engine) SetMode(m Mode) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if m == e.mode {
		return nil
	}
	old := e.mode
	e.mode = m // indexedForm derives the staged forms under the new mode
	// Re-index all subscriptions from their original forms.
	ids := make([]message.SubID, 0, len(e.originals))
	for id := range e.originals {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	if err := e.reindexIDsLocked(ids); err != nil {
		// Staged validation failed before the matcher was touched:
		// revert the mode so engine and matcher stay consistent.
		e.mode = old
		return err
	}
	return nil
}

// reindexIDsLocked re-derives, re-compiles and re-installs the indexed
// forms of the given subscriptions under the current mode and stage.
// Every new form is compiled (which validates it) BEFORE the first
// removal — validation is the only content-dependent failure of the
// compile-and-add path — so a failed re-index leaves the matcher exactly
// as it was, consistent with e.originals. After a successful re-index
// the matcher re-estimates plan selectivity: the indexed population just
// changed, so compile-time posting counts have gone stale. Callers hold
// e.mu.
func (e *Engine) reindexIDsLocked(ids []message.SubID) error {
	plans := make([]*matching.Plan, len(ids))
	for i, id := range ids {
		p, err := e.matcher.Compile(e.indexedForm(e.originals[id]))
		if err != nil {
			return fmt.Errorf("core: re-indexing subscription %d: %w", id, err)
		}
		plans[i] = p
	}
	for _, id := range ids {
		if !e.matcher.Remove(id) {
			return fmt.Errorf("core: subscription %d lost during re-index", id)
		}
	}
	var firstErr error
	for i, id := range ids {
		// Add cannot fail here (the plan compiled and its ID was just
		// removed), but if it ever does, keep re-inserting the rest so
		// the matcher misses at most the one refused subscription, and
		// report it instead of dropping entries silently.
		if err := e.matcher.Add(id, plans[i]); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("core: re-indexing subscription %d: %w", id, err)
		}
	}
	if len(ids) > 0 {
		e.matcher.Reestimate()
	}
	return firstErr
}

// indexedForm computes the form of a subscription as stored in the
// matcher under the current mode. Callers hold e.mu.
func (e *Engine) indexedForm(s message.Subscription) message.Subscription {
	if e.mode != Semantic {
		return s.Clone()
	}
	out, rewrites := e.stage.ProcessSubscription(s)
	e.stats.SynonymRewrites += uint64(rewrites)
	return out
}

// Subscribe validates, canonicalizes and indexes a subscription.
func (e *Engine) Subscribe(s message.Subscription) error {
	if err := s.Validate(); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.originals[s.ID]; dup {
		return fmt.Errorf("core: subscription %d already exists", s.ID)
	}
	p, err := e.matcher.Compile(e.indexedForm(s))
	if err != nil {
		return err
	}
	if err := e.matcher.Add(s.ID, p); err != nil {
		return err
	}
	e.originals[s.ID] = s.Clone()
	e.stats.SubsAdded++
	return nil
}

// Unsubscribe removes a subscription, reporting whether it existed.
func (e *Engine) Unsubscribe(id message.SubID) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.originals[id]; !ok {
		return false
	}
	delete(e.originals, id)
	e.matcher.Remove(id)
	e.stats.SubsRemoved++
	return true
}

// Subscription returns the original (pre-canonicalization) form of a
// stored subscription.
func (e *Engine) Subscription(id message.SubID) (message.Subscription, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	s, ok := e.originals[id]
	if !ok {
		return message.Subscription{}, false
	}
	return s.Clone(), true
}

// MatchResult reports the outcome of one publication.
type MatchResult struct {
	// Matches holds the IDs of all satisfied subscriptions, ascending.
	Matches []message.SubID
	// Expansion is the semantic stage's report (Events[0] is the root
	// event; empty Events in syntactic mode means the original event
	// was matched directly).
	Expansion semantic.Result
	// SemanticTime and MatchTime split the publication's latency
	// between the two pipeline halves (experiment T1).
	SemanticTime time.Duration
	MatchTime    time.Duration
}

// Publish runs a publication through the pipeline and returns every
// matching subscription.
func (e *Engine) Publish(ev message.Event) (MatchResult, error) {
	if err := ev.Validate(); err != nil {
		return MatchResult{}, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()

	var res MatchResult
	e.stats.Events++

	if e.mode == Semantic {
		t0 := time.Now()
		res.Expansion = e.expandLocked(ev)
		res.SemanticTime = time.Since(t0)
		e.stats.SemanticTime += res.SemanticTime
		e.stats.DerivedEvents += uint64(len(res.Expansion.Events))
		e.stats.SynonymRewrites += uint64(res.Expansion.SynonymRewrites)
		e.stats.HierarchyPairs += uint64(res.Expansion.HierarchyPairs)
		e.stats.MappingPairs += uint64(res.Expansion.MappingPairs)
		e.stats.MappingCalls += uint64(res.Expansion.MappingCalls)
		if res.Expansion.Truncated {
			e.stats.Truncated++
		}

		t1 := time.Now()
		res.Matches = e.unionMatchesLocked(res.Expansion.Events)
		res.MatchTime = time.Since(t1)
	} else {
		t1 := time.Now()
		res.Matches = e.unionMatchesLocked([]message.Event{ev})
		res.MatchTime = time.Since(t1)
	}

	e.stats.MatchTime += res.MatchTime
	e.stats.Matches += uint64(len(res.Matches))
	return res, nil
}

// expandLocked runs the semantic stage on a publication, memoized
// through the expansion LRU when enabled. A stage version mismatch
// (out-of-band SetConfig or ontology Replace) flushes the cache before
// the probe; ApplyKnowledge invalidates precisely and re-stamps the
// version itself, so the common knowledge path never flushes here.
// Callers hold e.mu for writing.
func (e *Engine) expandLocked(ev message.Event) semantic.Result {
	if e.expCache == nil {
		return e.stage.ProcessEvent(ev)
	}
	if v := e.stage.Version(); v != e.stageVersion {
		e.expCache.Flush()
		e.stageVersion = v
	}
	sig := ev.Signature()
	if res, ok := e.expCache.Get(sig); ok {
		return res
	}
	res := e.stage.ProcessEvent(ev)
	e.expCache.Put(sig, res, EventTerms(ev))
	return res
}

// MatchEvents matches a set of already-expanded events against the
// index, bypassing the semantic stage, and returns the union of the
// matches in ascending order. A sharded deployment expands a
// publication once and hands the derived set to every shard through
// this entry point, so the (identical) semantic work is not repeated
// per shard. Only matching counters are updated; the caller owns the
// publication-level statistics.
func (e *Engine) MatchEvents(events []message.Event) []message.SubID {
	e.mu.Lock()
	defer e.mu.Unlock()
	t0 := time.Now()
	matches := e.unionMatchesLocked(events)
	e.stats.MatchTime += time.Since(t0)
	e.stats.Matches += uint64(len(matches))
	return matches
}

// unionMatchesLocked matches every derived event and returns the
// ascending union of the results. Multi-event unions accumulate into
// the engine's scratch slice (sort + in-place compaction instead of a
// per-publication dedup map); the scratch never escapes — callers get
// a right-sized copy. Callers hold e.mu.
func (e *Engine) unionMatchesLocked(events []message.Event) []message.SubID {
	ids := e.matchScratch[:0]
	n := 0
	if len(events) == 1 {
		// Single event: the matcher's appended region is already sorted
		// and duplicate-free.
		ids = e.matcher.Match(events[0], ids)
		n = len(ids)
	} else {
		for _, ev := range events {
			ids = e.matcher.Match(ev, ids)
		}
		slices.Sort(ids)
		for i, id := range ids {
			if i == 0 || id != ids[i-1] {
				ids[n] = id
				n++
			}
		}
	}
	e.matchScratch = ids[:0] // keep the grown capacity for the next union
	if n == 0 {
		return nil
	}
	out := make([]message.SubID, n)
	copy(out, ids[:n])
	return out
}

// Merge accumulates another snapshot into s, summing counters and
// durations. The sharded engine uses it to roll per-shard statistics
// into one engine-level view (Subscriptions sums because shards
// partition the subscription set).
func (s Stats) Merge(o Stats) Stats {
	s.Subscriptions += o.Subscriptions
	s.SubsAdded += o.SubsAdded
	s.SubsRemoved += o.SubsRemoved
	s.Events += o.Events
	s.DerivedEvents += o.DerivedEvents
	s.Matches += o.Matches
	s.SynonymRewrites += o.SynonymRewrites
	s.HierarchyPairs += o.HierarchyPairs
	s.MappingPairs += o.MappingPairs
	s.MappingCalls += o.MappingCalls
	s.Truncated += o.Truncated
	s.SemanticTime += o.SemanticTime
	s.MatchTime += o.MatchTime
	s.KBReindexed += o.KBReindexed
	s.KBFullReindexes += o.KBFullReindexes
	s.PlanCacheHits += o.PlanCacheHits
	s.PlanCacheMisses += o.PlanCacheMisses
	s.PlansCached += o.PlansCached
	s.ExpansionHits += o.ExpansionHits
	s.ExpansionMisses += o.ExpansionMisses
	s.ExpansionEvictions += o.ExpansionEvictions
	s.ExpansionInvalidated += o.ExpansionInvalidated
	s.ExpansionSize += o.ExpansionSize
	// The intern table is process-global: every engine reports the same
	// table, so a merge keeps the larger snapshot instead of summing.
	if o.InternedTerms > s.InternedTerms {
		s.InternedTerms = o.InternedTerms
	}
	// KB version fields are per-base, not additive: a sharded pool's
	// shards share one base bound at the pool level, so at most one
	// side of a merge carries them.
	if s.KBVersion == "" {
		s.KBVersion = o.KBVersion
		s.KBDeltas += o.KBDeltas
		s.KBRejected += o.KBRejected
	}
	return s
}

// Stats returns a snapshot of engine counters.
func (e *Engine) Stats() Stats {
	e.mu.RLock()
	s := e.stats
	s.Subscriptions = e.matcher.Size()
	ps := e.matcher.PlanStats()
	kb := e.kb
	expCache := e.expCache
	e.mu.RUnlock()
	s.PlanCacheHits = ps.Hits
	s.PlanCacheMisses = ps.Misses
	s.PlansCached = ps.Cached
	es := expCache.Stats()
	s.ExpansionHits = es.Hits
	s.ExpansionMisses = es.Misses
	s.ExpansionEvictions = es.Evictions
	s.ExpansionInvalidated = es.Invalidated
	s.ExpansionSize = es.Size
	s.InternedTerms = message.InternedTerms()
	if kb != nil {
		v := kb.Version()
		s.KBDeltas = uint64(v.Deltas)
		s.KBRejected = uint64(v.Rejected)
		s.KBVersion = v.Digest
	}
	return s
}

// Size reports the number of indexed subscriptions.
func (e *Engine) Size() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.matcher.Size()
}
