package core

import (
	"fmt"
	"sync"
	"testing"

	"stopss/internal/matching"
	"stopss/internal/message"
	"stopss/internal/semantic"
)

// paperStage builds the knowledge base that makes every example in the
// paper's §1 and §3.1 work end to end.
func paperStage(t testing.TB) *semantic.Stage {
	t.Helper()
	syn := semantic.NewSynonyms()
	for root, syns := range map[string][]string{
		"university":              {"school", "college"},
		"professional experience": {"work experience"},
	} {
		if err := syn.AddGroup(root, syns...); err != nil {
			t.Fatal(err)
		}
	}

	h := semantic.NewHierarchy()
	for child, parent := range map[string]string{
		"PhD": "graduate degree", "MSc": "graduate degree",
		"graduate degree": "degree", "BSc": "degree",
	} {
		if err := h.AddIsA(child, parent); err != nil {
			t.Fatal(err)
		}
	}

	m := semantic.NewMappings()
	if err := m.Add(semantic.FuncOf{
		FName:     "experience-from-graduation",
		FTriggers: []string{"graduation year"},
		FApply: func(e message.Event) []message.Pair {
			v, ok := e.Get("graduation year")
			if !ok {
				return nil
			}
			y, ok := v.AsFloat()
			if !ok {
				return nil
			}
			// Present date fixed to the paper's publication year.
			return []message.Pair{{Attr: "professional experience", Val: message.Int(2003 - int64(y))}}
		},
	}); err != nil {
		t.Fatal(err)
	}
	return semantic.NewStage(syn, h, m, semantic.FullConfig())
}

// paperSubscription is S of §1.
func paperSubscription(id message.SubID) message.Subscription {
	return message.NewSubscription(id, "recruiter",
		message.Pred("university", message.OpEq, message.String("Toronto")),
		message.Pred("degree", message.OpEq, message.String("PhD")),
		message.Pred("professional experience", message.OpGe, message.Int(4)),
	)
}

// paperEvent is E of §1.
func paperEvent() message.Event {
	return message.E(
		"school", "Toronto",
		"degree", "PhD",
		"work experience", true,
		"graduation year", 1990,
	)
}

// TestFigure1 is the golden end-to-end pipeline test (experiment F1):
// the §1 subscription/event pair that no syntactic system can match must
// match in semantic mode through the combination of all three stages
// (synonyms for university/school and professional experience/work
// experience, mapping function for experience-from-graduation).
func TestFigure1(t *testing.T) {
	for _, alg := range matching.Algorithms() {
		t.Run(alg, func(t *testing.T) {
			m, err := matching.New(alg)
			if err != nil {
				t.Fatal(err)
			}
			eng := NewEngine(paperStage(t), WithMatcher(m))
			if err := eng.Subscribe(paperSubscription(1)); err != nil {
				t.Fatal(err)
			}

			res, err := eng.Publish(paperEvent())
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Matches) != 1 || res.Matches[0] != 1 {
				t.Fatalf("semantic mode: Matches = %v, want [1]\nexpansion: %+v",
					res.Matches, res.Expansion)
			}
			if len(res.Expansion.Events) < 2 {
				t.Errorf("expected derived events, got %d", len(res.Expansion.Events))
			}

			// Syntactic mode: the same pair must NOT match.
			if err := eng.SetMode(Syntactic); err != nil {
				t.Fatal(err)
			}
			res, err = eng.Publish(paperEvent())
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Matches) != 0 {
				t.Fatalf("syntactic mode: Matches = %v, want none", res.Matches)
			}

			// And back: mode switches re-index correctly.
			if err := eng.SetMode(Semantic); err != nil {
				t.Fatal(err)
			}
			res, err = eng.Publish(paperEvent())
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Matches) != 1 {
				t.Fatalf("after switching back: Matches = %v, want [1]", res.Matches)
			}
		})
	}
}

func TestSection31SynonymExample(t *testing.T) {
	// S: (university = Toronto) ∧ (professional experience ≥ 4)
	// E: (school, Toronto)(professional experience, 5)
	eng := NewEngine(paperStage(t))
	s := message.NewSubscription(7, "recruiter",
		message.Pred("university", message.OpEq, message.String("Toronto")),
		message.Pred("professional experience", message.OpGe, message.Int(4)))
	if err := eng.Subscribe(s); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Publish(message.E("school", "Toronto", "professional experience", 5))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 {
		t.Fatalf("Matches = %v, want [7]", res.Matches)
	}
}

func TestHierarchyDirectionality(t *testing.T) {
	// Subscription asks for the GENERAL term; event carries the
	// SPECIALIZED one → match (R1). The reverse must not match (R2).
	eng := NewEngine(paperStage(t))
	general := message.NewSubscription(1, "c",
		message.Pred("degree", message.OpEq, message.String("graduate degree")))
	specific := message.NewSubscription(2, "c",
		message.Pred("degree", message.OpEq, message.String("PhD")))
	for _, s := range []message.Subscription{general, specific} {
		if err := eng.Subscribe(s); err != nil {
			t.Fatal(err)
		}
	}

	res, err := eng.Publish(message.E("degree", "PhD"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 2 {
		t.Fatalf("specialized event: Matches = %v, want [1 2]", res.Matches)
	}

	res, err = eng.Publish(message.E("degree", "graduate degree"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 || res.Matches[0] != 1 {
		t.Fatalf("general event: Matches = %v, want [1] only (rule R2)", res.Matches)
	}
}

func TestSemanticSupersetOfSyntactic(t *testing.T) {
	// Property: for positive (negation-free) subscriptions, the semantic
	// match set contains the syntactic one.
	eng := NewEngine(paperStage(t))
	subs := []message.Subscription{
		message.NewSubscription(1, "c", message.Pred("university", message.OpEq, message.String("Toronto"))),
		message.NewSubscription(2, "c", message.Pred("school", message.OpEq, message.String("Toronto"))),
		message.NewSubscription(3, "c", message.Pred("degree", message.OpEq, message.String("degree"))),
	}
	for _, s := range subs {
		if err := eng.Subscribe(s); err != nil {
			t.Fatal(err)
		}
	}
	events := []message.Event{
		message.E("school", "Toronto"),
		message.E("university", "Toronto"),
		message.E("degree", "PhD"),
		message.E("nothing", 1),
	}
	for _, ev := range events {
		if err := eng.SetMode(Syntactic); err != nil {
			t.Fatal(err)
		}
		syn, err := eng.Publish(ev)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.SetMode(Semantic); err != nil {
			t.Fatal(err)
		}
		sem, err := eng.Publish(ev)
		if err != nil {
			t.Fatal(err)
		}
		in := make(map[message.SubID]bool)
		for _, id := range sem.Matches {
			in[id] = true
		}
		for _, id := range syn.Matches {
			if !in[id] {
				t.Fatalf("event %v: syntactic match %d missing from semantic set %v", ev, id, sem.Matches)
			}
		}
	}
	// And subscription 1 vs 2: after canonicalization both match the
	// school event in semantic mode.
	if err := eng.SetMode(Semantic); err != nil {
		t.Fatal(err)
	}
	res, _ := eng.Publish(message.E("school", "Toronto"))
	if len(res.Matches) < 2 {
		t.Errorf("synonym subscriptions should both match: %v", res.Matches)
	}
}

func TestSubscribeLifecycleAndErrors(t *testing.T) {
	eng := NewEngine(paperStage(t))
	s := paperSubscription(1)
	if err := eng.Subscribe(s); err != nil {
		t.Fatal(err)
	}
	if err := eng.Subscribe(s); err == nil {
		t.Error("duplicate subscribe must fail")
	}
	if err := eng.Subscribe(message.NewSubscription(2, "c")); err == nil {
		t.Error("invalid subscription must fail")
	}
	if _, err := eng.Publish(message.Event{}); err == nil {
		t.Error("invalid event must fail")
	}
	if got, ok := eng.Subscription(1); !ok || got.Subscriber != "recruiter" {
		t.Errorf("Subscription(1) = %v, %v", got, ok)
	}
	// Stored form is the ORIGINAL (pre-canonicalization) one.
	if got, _ := eng.Subscription(1); got.Preds[0].Attr != "university" {
		t.Errorf("original subscription mutated: %v", got)
	}
	if eng.Size() != 1 {
		t.Errorf("Size = %d, want 1", eng.Size())
	}
	if !eng.Unsubscribe(1) || eng.Unsubscribe(1) {
		t.Error("Unsubscribe semantics wrong")
	}
	if _, ok := eng.Subscription(1); ok {
		t.Error("unsubscribed ID still resolvable")
	}
	if eng.Size() != 0 {
		t.Errorf("Size = %d, want 0", eng.Size())
	}
}

func TestModeParsingAndString(t *testing.T) {
	if m, err := ParseMode("semantic"); err != nil || m != Semantic {
		t.Errorf("ParseMode(semantic) = %v, %v", m, err)
	}
	if m, err := ParseMode("syntactic"); err != nil || m != Syntactic {
		t.Errorf("ParseMode(syntactic) = %v, %v", m, err)
	}
	if _, err := ParseMode("other"); err == nil {
		t.Error("unknown mode must fail")
	}
	if Semantic.String() != "semantic" || Syntactic.String() != "syntactic" {
		t.Error("Mode.String broken")
	}
}

func TestStatsAccounting(t *testing.T) {
	eng := NewEngine(paperStage(t))
	if err := eng.Subscribe(paperSubscription(1)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := eng.Publish(paperEvent()); err != nil {
			t.Fatal(err)
		}
	}
	st := eng.Stats()
	if st.Events != 5 {
		t.Errorf("Events = %d, want 5", st.Events)
	}
	if st.Matches != 5 {
		t.Errorf("Matches = %d, want 5", st.Matches)
	}
	if st.DerivedEvents < 10 {
		t.Errorf("DerivedEvents = %d, want >= 10", st.DerivedEvents)
	}
	if st.SynonymRewrites == 0 || st.MappingCalls == 0 {
		t.Errorf("semantic counters empty: %+v", st)
	}
	if st.Subscriptions != 1 || st.SubsAdded != 1 {
		t.Errorf("subscription counters wrong: %+v", st)
	}
	if st.SemanticTime <= 0 || st.MatchTime <= 0 {
		t.Errorf("timing counters empty: %+v", st)
	}
}

func TestEngineDefaultsAndNilStage(t *testing.T) {
	eng := NewEngine(nil)
	if eng.MatcherName() != "counting" {
		t.Errorf("default matcher = %q, want counting", eng.MatcherName())
	}
	if eng.Mode() != Semantic {
		t.Error("default mode should be semantic")
	}
	if eng.Stage() == nil {
		t.Fatal("Stage() must not be nil")
	}
	// Engine with empty knowledge base still matches syntactically.
	if err := eng.Subscribe(message.NewSubscription(1, "c",
		message.Pred("a", message.OpEq, message.Int(1)))); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Publish(message.E("a", 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 {
		t.Errorf("Matches = %v", res.Matches)
	}
}

func TestEngineConcurrentPublishSubscribe(t *testing.T) {
	eng := NewEngine(paperStage(t), WithMatcher(matching.NewCounting()))
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := message.SubID(w * 1000)
			for i := 0; i < 50; i++ {
				id := base + message.SubID(i)
				s := message.NewSubscription(id, fmt.Sprintf("c%d", w),
					message.Pred("university", message.OpEq, message.String("Toronto")))
				if err := eng.Subscribe(s); err != nil {
					errs <- err
					return
				}
				if _, err := eng.Publish(message.E("school", "Toronto")); err != nil {
					errs <- err
					return
				}
				if i%3 == 0 {
					eng.Unsubscribe(id)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Sanity: remaining subscriptions all match.
	res, err := eng.Publish(message.E("school", "Toronto"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != eng.Size() {
		t.Errorf("matches %d != size %d", len(res.Matches), eng.Size())
	}
}

func TestLossToleranceKnob(t *testing.T) {
	// §3.2: restricting the generality level reduces matches.
	syn := semantic.NewSynonyms()
	h := semantic.NewHierarchy()
	chain := []string{"l0", "l1", "l2", "l3", "l4"}
	for i := 0; i+1 < len(chain); i++ {
		if err := h.AddIsA(chain[i], chain[i+1]); err != nil {
			t.Fatal(err)
		}
	}
	for level := 0; level <= 4; level++ {
		cfg := semantic.Config{Hierarchy: true, MaxGeneralization: level}
		if level == 0 {
			cfg.MaxGeneralization = 0 // unlimited
		}
		eng := NewEngine(semantic.NewStage(syn, h, nil, cfg))
		for i, term := range chain {
			s := message.NewSubscription(message.SubID(i+1), "c",
				message.Pred("x", message.OpEq, message.String(term)))
			if err := eng.Subscribe(s); err != nil {
				t.Fatal(err)
			}
		}
		res, err := eng.Publish(message.E("x", "l0"))
		if err != nil {
			t.Fatal(err)
		}
		want := 5 // unlimited: l0..l4 all match
		if level > 0 {
			want = level + 1
		}
		if len(res.Matches) != want {
			t.Errorf("level %d: matches = %d, want %d (%v)", level, len(res.Matches), want, res.Matches)
		}
	}
}
