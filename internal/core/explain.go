package core

import (
	"fmt"
	"strings"

	"stopss/internal/message"
)

// Explanation traces why one subscription matched one publication: per
// predicate, which derived event and which attribute/value pair
// satisfied it, and whether that pair existed in the original
// publication or was produced by the semantic stage. The demonstration's
// purpose — "the real power of this scheme is only apparent by
// witnessing how seamlessly unrelated objects end up matching" (paper
// §4) — is exactly what an explanation makes visible.
type Explanation struct {
	SubID      message.SubID
	Subscriber string
	Matched    bool
	Steps      []ExplainStep
}

// ExplainStep records the witness for one predicate.
type ExplainStep struct {
	Predicate message.Predicate
	// Satisfied reports whether any derived event satisfied the
	// predicate (false only when the subscription did not match).
	Satisfied bool
	// EventIndex is the index into the expansion's Events of the first
	// derived event containing the witness (0 = root event).
	EventIndex int
	// Witness is the satisfying pair (absent for not-exists, which is
	// witnessed by absence).
	Witness message.Pair
	// Derived reports whether the witness pair was absent from the
	// original publication — i.e. the semantic stage created it.
	Derived bool
}

// Explain re-runs the semantic expansion of ev and traces how the stored
// subscription id is (or is not) satisfied. It is a diagnostic path: it
// does not touch engine statistics.
func (e *Engine) Explain(id message.SubID, ev message.Event) (Explanation, error) {
	if err := ev.Validate(); err != nil {
		return Explanation{}, err
	}
	e.mu.RLock()
	orig, ok := e.originals[id]
	mode := e.mode
	e.mu.RUnlock()
	if !ok {
		return Explanation{}, fmt.Errorf("core: unknown subscription %d", id)
	}

	// Reproduce the indexed form and the expansion outside the lock
	// (Stage and ProcessSubscription are read-only over the knowledge
	// structures).
	sub := orig.Clone()
	var events []message.Event
	if mode == Semantic {
		sub, _ = e.stage.ProcessSubscription(sub)
		events = e.stage.ProcessEvent(ev).Events
	} else {
		events = []message.Event{ev}
	}

	out := Explanation{SubID: id, Subscriber: orig.Subscriber, Matched: true}
	for _, p := range sub.Preds {
		step := ExplainStep{Predicate: p}
		for idx, dev := range events {
			if w, found := witness(p, dev); found {
				step.Satisfied = true
				step.EventIndex = idx
				step.Witness = w
				step.Derived = !pairIn(ev, w)
				break
			}
		}
		if !step.Satisfied {
			out.Matched = false
		}
		out.Steps = append(out.Steps, step)
	}
	return out, nil
}

// witness returns the first pair of dev satisfying p. Not-exists
// predicates are witnessed by the attribute's absence (empty pair).
func witness(p message.Predicate, dev message.Event) (message.Pair, bool) {
	if p.Op == message.OpNotExists {
		if dev.Has(p.Attr) {
			return message.Pair{}, false
		}
		return message.Pair{}, true
	}
	for _, pair := range dev.Pairs() {
		if pair.Attr == p.Attr && p.Eval(pair.Val, true) {
			return pair, true
		}
	}
	return message.Pair{}, false
}

// pairIn reports whether the original publication already carried the
// pair (same attribute and equal value).
func pairIn(ev message.Event, w message.Pair) bool {
	if w.Attr == "" {
		return true // absence witness: nothing was derived
	}
	for _, pair := range ev.Pairs() {
		if pair.Attr == w.Attr && pair.Val.Equal(w.Val) {
			return true
		}
	}
	return false
}

// String renders the explanation as a human-readable trace.
func (x Explanation) String() string {
	var sb strings.Builder
	verdict := "MATCH"
	if !x.Matched {
		verdict = "NO MATCH"
	}
	fmt.Fprintf(&sb, "%s — subscription %d (%s)\n", verdict, x.SubID, x.Subscriber)
	for _, s := range x.Steps {
		switch {
		case !s.Satisfied:
			fmt.Fprintf(&sb, "  ✗ %s — no derived event satisfies it\n", s.Predicate)
		case s.Predicate.Op == message.OpNotExists:
			fmt.Fprintf(&sb, "  ✓ %s — attribute absent\n", s.Predicate)
		case s.Derived:
			fmt.Fprintf(&sb, "  ✓ %s — by (%s, %s), DERIVED by the semantic stage (event %d)\n",
				s.Predicate, s.Witness.Attr, s.Witness.Val, s.EventIndex)
		default:
			fmt.Fprintf(&sb, "  ✓ %s — by (%s, %s) from the original publication\n",
				s.Predicate, s.Witness.Attr, s.Witness.Val)
		}
	}
	return sb.String()
}
