package core_test

import (
	"fmt"

	"stopss/internal/core"
	"stopss/internal/message"
	"stopss/internal/ontology"
	"stopss/internal/semantic"
	"stopss/internal/workload"
)

// ExampleEngine runs the paper's opening example through the engine in
// both modes.
func ExampleEngine() {
	ont, _ := ontology.Load(workload.JobsODL, ontology.Options{})
	engine := core.NewEngine(ont.Stage(semantic.FullConfig()))

	_ = engine.Subscribe(message.NewSubscription(1, "recruiter",
		message.Pred("university", message.OpEq, message.String("Toronto")),
		message.Pred("degree", message.OpEq, message.String("PhD")),
		message.Pred("professional experience", message.OpGe, message.Int(4)),
	))

	resume := message.E("school", "Toronto", "degree", "PhD",
		"work experience", true, "graduation year", 1990)

	res, _ := engine.Publish(resume)
	fmt.Println("semantic: ", res.Matches)

	_ = engine.SetMode(core.Syntactic)
	res, _ = engine.Publish(resume)
	fmt.Println("syntactic:", res.Matches)
	// Output:
	// semantic:  [1]
	// syntactic: []
}

// ExampleEngine_Explain traces why the match happened.
func ExampleEngine_Explain() {
	ont, _ := ontology.Load(workload.JobsODL, ontology.Options{})
	engine := core.NewEngine(ont.Stage(semantic.FullConfig()))
	_ = engine.Subscribe(message.NewSubscription(1, "recruiter",
		message.Pred("university", message.OpEq, message.String("Toronto"))))

	x, _ := engine.Explain(1, message.E("school", "Toronto"))
	fmt.Print(x)
	// Output:
	// MATCH — subscription 1 (recruiter)
	//   ✓ (university = Toronto) — by (university, Toronto), DERIVED by the semantic stage (event 0)
}
