package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"stopss/internal/knowledge"
	"stopss/internal/matching"
	"stopss/internal/semantic"
	"stopss/internal/workload"
)

// newDifferentialEngine builds an engine over a private knowledge base
// (cloned from the generator's genesis structures, so every engine folds
// the same delta stream independently) with the given matcher and
// expansion-cache capacity.
func newDifferentialEngine(t *testing.T, gen *workload.Generator, alg string, cacheCap int) *Engine {
	t.Helper()
	m, err := matching.New(alg)
	if err != nil {
		t.Fatal(err)
	}
	kb := gen.KB()
	base := knowledge.NewBase(kb.Synonyms.Clone(), kb.Hierarchy.Clone(), kb.Mappings.Clone())
	return NewEngine(base.Stage(semantic.FullConfig()),
		WithMatcher(m), WithKnowledge(base), WithExpansionCache(cacheCap))
}

// TestDifferentialOptimizedPipelineMatchesNaive is the safety net for
// the whole optimizer stack: every optimized engine (plan cache +
// predicate pushdown + expansion LRU, one per matching algorithm) must
// produce exactly the match sets of a reference engine running the
// Naive matcher with memoization disabled — across randomized
// subscriptions, repeated event shapes (cache-hit path), and knowledge
// deltas injected mid-stream (both the precise synonym invalidation and
// the hierarchy/concept flush paths). A stale cache entry, a plan
// ordered into wrongness, or an over-shared compiled plan all surface
// here as a match-set divergence.
func TestDifferentialOptimizedPipelineMatchesNaive(t *testing.T) {
	for _, seed := range []int64{11, 12, 13} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			gen, err := workload.New(workload.Config{
				Seed: seed, SynonymProb: 0.7, ConceptProb: 0.5,
			})
			if err != nil {
				t.Fatal(err)
			}
			subs := gen.Subscriptions(300)
			shapes := gen.Events(60) // few shapes, many publishes → cache hits

			// Reference: no plan sharing across algorithms, no memoized
			// expansions — every publication runs the full pipeline.
			ref := newDifferentialEngine(t, gen, "naive", 0)
			engines := []*Engine{ref}
			for _, alg := range matching.Algorithms() {
				// Tiny capacity so eviction and re-fill paths run too.
				engines = append(engines, newDifferentialEngine(t, gen, alg, 32))
			}
			for _, e := range engines {
				for _, s := range subs {
					if err := e.Subscribe(s); err != nil {
						t.Fatal(err)
					}
				}
			}

			rng := rand.New(rand.NewSource(seed * 7))
			var seq uint64
			nextDelta := func() knowledge.Delta {
				seq++
				d := knowledge.Delta{Origin: "difftest", Epoch: "e1", Seq: seq}
				switch seq % 3 {
				case 0:
					// Precise invalidation path: alias one generated string
					// value to another, changing the canonical form of
					// events and subscriptions that mention it as written.
					d.Op = knowledge.OpAddSynonym
					d.Root = fmt.Sprintf("attr%02d-val%03d", 4+seq%3, seq%4)
					d.Terms = []string{fmt.Sprintf("attr%02d-val%03d", 4+seq%3, 5+seq%5)}
				case 1:
					// Flush path: new is-a edge between generated values.
					d.Op = knowledge.OpAddIsA
					d.Child = fmt.Sprintf("attr%02d-val%03d", 5+seq%2, 10+seq)
					d.Parent = fmt.Sprintf("attr%02d-val%03d", 5+seq%2, seq%3)
				default:
					// Flush path: fresh concept node.
					d.Op = knowledge.OpAddConcept
					d.Term = fmt.Sprintf("difftest-concept-%d", seq)
				}
				return d
			}

			for step := 0; step < 500; step++ {
				if step > 0 && step%60 == 0 {
					d := nextDelta()
					var want KnowledgeReport
					for i, e := range engines {
						rep, err := e.ApplyKnowledge(d)
						if err != nil {
							t.Fatalf("step %d: ApplyKnowledge on %s: %v", step, e.MatcherName(), err)
						}
						if i == 0 {
							want = rep
						} else if rep.Applied != want.Applied || rep.Changed != want.Changed {
							t.Fatalf("step %d: delta outcome diverged: %s got %+v, naive got %+v",
								step, e.MatcherName(), rep, want)
						}
					}
					continue
				}
				ev := shapes[rng.Intn(len(shapes))]
				want, err := ref.Publish(ev)
				if err != nil {
					t.Fatal(err)
				}
				for _, e := range engines[1:] {
					got, err := e.Publish(ev)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got.Matches, want.Matches) {
						t.Fatalf("step %d: %s disagrees with uncached naive\n got %v\nwant %v\nevent %v",
							step, e.MatcherName(), got.Matches, want.Matches, ev)
					}
				}
			}

			// The run must actually have exercised the optimizer paths it
			// claims to cover, or the equivalence above proves nothing.
			for _, e := range engines[1:] {
				st := e.Stats()
				if st.ExpansionHits == 0 {
					t.Errorf("%s: expansion cache never hit", e.MatcherName())
				}
				if st.ExpansionInvalidated == 0 {
					t.Errorf("%s: knowledge deltas never invalidated cached expansions", e.MatcherName())
				}
				if st.PlanCacheHits == 0 {
					t.Errorf("%s: plan cache never shared a compiled plan", e.MatcherName())
				}
			}
			if st := ref.Stats(); st.ExpansionHits != 0 || st.ExpansionSize != 0 {
				t.Errorf("reference engine memoized expansions despite WithExpansionCache(0): %+v", st)
			}
		})
	}
}

// TestDifferentialConcurrentPublishAndKnowledge drives publishers and a
// knowledge-delta writer against one cached engine at once. Correctness
// of the interleaving is covered by the sequential differential test;
// this one exists to run under -race: the expansion cache, the stage
// version stamp, and the plan cache must tolerate publish/apply
// concurrency without data races.
func TestDifferentialConcurrentPublishAndKnowledge(t *testing.T) {
	gen, err := workload.New(workload.Config{Seed: 41, SynonymProb: 0.7, ConceptProb: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	eng := newDifferentialEngine(t, gen, "counting", 64)
	for _, s := range gen.Subscriptions(150) {
		if err := eng.Subscribe(s); err != nil {
			t.Fatal(err)
		}
	}
	shapes := gen.Events(20)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if _, err := eng.Publish(shapes[(w+i)%len(shapes)]); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= 20; i++ {
			d := knowledge.Delta{
				Origin: "difftest", Epoch: "e1", Seq: uint64(i),
				Op:   knowledge.OpAddSynonym,
				Root: fmt.Sprintf("attr05-val%03d", i%4),
				Terms: []string{
					fmt.Sprintf("attr05-val%03d", 6+i%6),
				},
			}
			if _, err := eng.ApplyKnowledge(d); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if got := eng.Stats().Events; got != 800 {
		t.Fatalf("published %d events, want 800", got)
	}
}
