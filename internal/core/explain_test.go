package core

import (
	"strings"
	"testing"

	"stopss/internal/message"
)

func TestExplainPaperExample(t *testing.T) {
	eng := NewEngine(paperStage(t))
	if err := eng.Subscribe(paperSubscription(1)); err != nil {
		t.Fatal(err)
	}
	x, err := eng.Explain(1, paperEvent())
	if err != nil {
		t.Fatal(err)
	}
	if !x.Matched {
		t.Fatalf("explanation says no match:\n%s", x)
	}
	if len(x.Steps) != 3 {
		t.Fatalf("steps = %d, want 3", len(x.Steps))
	}
	// university = Toronto: witnessed by the synonym-rewritten root
	// event pair — present in the rewritten event, but DERIVED relative
	// to the original publication (which said "school").
	uni := x.Steps[0]
	if !uni.Satisfied || uni.Witness.Attr != "university" || !uni.Derived {
		t.Errorf("university step = %+v", uni)
	}
	// degree = PhD: carried verbatim by the original publication.
	deg := x.Steps[1]
	if !deg.Satisfied || deg.Derived {
		t.Errorf("degree step = %+v", deg)
	}
	// professional experience >= 4: derived by the mapping function.
	exp := x.Steps[2]
	if !exp.Satisfied || !exp.Derived || exp.Witness.Val.IntVal() != 13 {
		t.Errorf("experience step = %+v", exp)
	}
	text := x.String()
	for _, want := range []string{"MATCH", "DERIVED by the semantic stage", "from the original publication"} {
		if !strings.Contains(text, want) {
			t.Errorf("explanation text missing %q:\n%s", want, text)
		}
	}
}

func TestExplainNoMatch(t *testing.T) {
	eng := NewEngine(paperStage(t))
	if err := eng.Subscribe(paperSubscription(1)); err != nil {
		t.Fatal(err)
	}
	// A candidate with too little experience: graduated 2001 → 2 years.
	x, err := eng.Explain(1, message.E("school", "Toronto", "degree", "PhD", "graduation year", 2001))
	if err != nil {
		t.Fatal(err)
	}
	if x.Matched {
		t.Fatalf("should not match:\n%s", x)
	}
	var failed *ExplainStep
	for i := range x.Steps {
		if !x.Steps[i].Satisfied {
			failed = &x.Steps[i]
		}
	}
	if failed == nil || failed.Predicate.Attr != "professional experience" {
		t.Errorf("wrong failing step: %+v", x.Steps)
	}
	if !strings.Contains(x.String(), "NO MATCH") || !strings.Contains(x.String(), "✗") {
		t.Errorf("text = %s", x.String())
	}
}

func TestExplainSyntacticMode(t *testing.T) {
	eng := NewEngine(paperStage(t), WithMode(Syntactic))
	if err := eng.Subscribe(paperSubscription(1)); err != nil {
		t.Fatal(err)
	}
	x, err := eng.Explain(1, paperEvent())
	if err != nil {
		t.Fatal(err)
	}
	if x.Matched {
		t.Error("syntactic mode must not match the paper pair")
	}
	// In syntactic mode nothing is ever derived.
	for _, s := range x.Steps {
		if s.Derived {
			t.Errorf("syntactic step claims derivation: %+v", s)
		}
	}
}

func TestExplainNotExistsAndErrors(t *testing.T) {
	eng := NewEngine(paperStage(t))
	s := message.NewSubscription(2, "c",
		message.Pred("salary", message.OpNotExists, message.None()),
		message.Pred("degree", message.OpEq, message.String("PhD")))
	if err := eng.Subscribe(s); err != nil {
		t.Fatal(err)
	}
	x, err := eng.Explain(2, message.E("degree", "PhD"))
	if err != nil {
		t.Fatal(err)
	}
	if !x.Matched {
		t.Fatalf("should match:\n%s", x)
	}
	if !strings.Contains(x.String(), "attribute absent") {
		t.Errorf("not-exists witness missing:\n%s", x)
	}

	if _, err := eng.Explain(99, message.E("a", 1)); err == nil {
		t.Error("unknown subscription must error")
	}
	if _, err := eng.Explain(2, message.Event{}); err == nil {
		t.Error("invalid event must error")
	}
}

// TestExplainConsistentWithPublish: Explain's verdict must agree with
// the engine's actual matching decision on arbitrary workload pairs.
func TestExplainConsistentWithPublish(t *testing.T) {
	eng := NewEngine(paperStage(t))
	subs := []message.Subscription{
		paperSubscription(1),
		message.NewSubscription(2, "c", message.Pred("degree", message.OpEq, message.String("graduate degree"))),
		message.NewSubscription(3, "c", message.Pred("nothing", message.OpEq, message.Int(1))),
	}
	for _, s := range subs {
		if err := eng.Subscribe(s); err != nil {
			t.Fatal(err)
		}
	}
	events := []message.Event{
		paperEvent(),
		message.E("degree", "PhD"),
		message.E("x", 1),
	}
	for _, ev := range events {
		res, err := eng.Publish(ev)
		if err != nil {
			t.Fatal(err)
		}
		matched := make(map[message.SubID]bool)
		for _, id := range res.Matches {
			matched[id] = true
		}
		for _, s := range subs {
			x, err := eng.Explain(s.ID, ev)
			if err != nil {
				t.Fatal(err)
			}
			if x.Matched != matched[s.ID] {
				t.Errorf("Explain(%d, %v) = %v, Publish says %v", s.ID, ev, x.Matched, matched[s.ID])
			}
		}
	}
}
