package core

import (
	"fmt"
	"reflect"
	"testing"

	"stopss/internal/matching"
	"stopss/internal/message"
	"stopss/internal/semantic"
	"stopss/internal/workload"
)

// TestQuickEnginesAgreeAcrossMatchers is the engine-level counterpart of
// the matcher-equivalence property: under the FULL semantic pipeline,
// the engine must produce identical match sets regardless of which
// matching algorithm sits behind the semantic stage. This is precisely
// the paper's modularity claim — the semantic stage composes with
// "existing matching algorithms" without changing their semantics.
func TestQuickEnginesAgreeAcrossMatchers(t *testing.T) {
	for _, mode := range []Mode{Semantic, Syntactic} {
		for _, seed := range []int64{1, 2, 3} {
			gen, err := workload.New(workload.Config{
				Seed: seed, SynonymProb: 0.7, ConceptProb: 0.5,
			})
			if err != nil {
				t.Fatal(err)
			}
			subs := gen.Subscriptions(400)
			events := gen.Events(120)

			engines := make([]*Engine, 0, 3)
			for _, alg := range matching.Algorithms() {
				m, err := matching.New(alg)
				if err != nil {
					t.Fatal(err)
				}
				eng := NewEngine(gen.KB().Stage(semantic.FullConfig()),
					WithMatcher(m), WithMode(mode))
				for _, s := range subs {
					if err := eng.Subscribe(s); err != nil {
						t.Fatal(err)
					}
				}
				engines = append(engines, eng)
			}
			for i, e := range events {
				ref, err := engines[0].Publish(e)
				if err != nil {
					t.Fatal(err)
				}
				for k := 1; k < len(engines); k++ {
					got, err := engines[k].Publish(e)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got.Matches, ref.Matches) {
						t.Fatalf("mode %v seed %d event %d: %s disagrees with %s\n got %v\nwant %v\nevent %v",
							mode, seed, i, engines[k].MatcherName(), engines[0].MatcherName(),
							got.Matches, ref.Matches, e)
					}
				}
			}
		}
	}
}

// TestQuickModeSwitchPreservesSubscriptions: an engine that flips modes
// repeatedly under churn must never lose or duplicate subscriptions.
func TestQuickModeSwitchPreservesSubscriptions(t *testing.T) {
	gen, err := workload.New(workload.Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(gen.KB().Stage(semantic.FullConfig()))
	live := 0
	for step := 0; step < 200; step++ {
		switch step % 5 {
		case 0, 1, 2:
			if err := eng.Subscribe(gen.Subscription(fmt.Sprintf("c%d", step))); err != nil {
				t.Fatal(err)
			}
			live++
		case 3:
			mode := Semantic
			if step%2 == 0 {
				mode = Syntactic
			}
			if err := eng.SetMode(mode); err != nil {
				t.Fatal(err)
			}
		case 4:
			if live > 0 {
				// Remove the lowest still-live subscription ID (the
				// generator assigns 1-based sequence numbers).
				removed := false
				for id := 1; id <= step+1 && !removed; id++ {
					removed = eng.Unsubscribe(message.SubID(id))
				}
				if removed {
					live--
				}
			}
		}
		if eng.Size() != live {
			t.Fatalf("step %d: Size = %d, want %d", step, eng.Size(), live)
		}
	}
}
