package core

import (
	"fmt"
	"testing"

	"stopss/internal/knowledge"
	"stopss/internal/message"
	"stopss/internal/semantic"
)

func kbDelta(seq uint64, d knowledge.Delta) knowledge.Delta {
	d.Origin, d.Epoch, d.Seq = "t", "e1", seq
	return d
}

func newKBEngine(t testing.TB) (*Engine, *knowledge.Base) {
	t.Helper()
	base := knowledge.NewBase(nil, nil, nil)
	e := NewEngine(base.Stage(semantic.FullConfig()), WithKnowledge(base))
	return e, base
}

func mustSub(t testing.TB, e *Engine, id message.SubID, attr, val string) {
	t.Helper()
	s := message.NewSubscription(id, fmt.Sprintf("c%d", id),
		message.Pred(attr, message.OpEq, message.String(val)))
	if err := e.Subscribe(s); err != nil {
		t.Fatal(err)
	}
}

func matchIDs(t testing.TB, e *Engine, kv ...any) []message.SubID {
	t.Helper()
	res, err := e.Publish(message.E(kv...))
	if err != nil {
		t.Fatal(err)
	}
	return res.Matches
}

func TestApplyKnowledgeSynonymReindexesTouchedSubs(t *testing.T) {
	e, _ := newKBEngine(t)
	mustSub(t, e, 1, "job", "dev")   // mentions the soon-to-be synonym
	mustSub(t, e, 2, "other", "dev") // untouched

	if got := matchIDs(t, e, "position", "dev"); len(got) != 0 {
		t.Fatalf("pre-delta match: %v", got)
	}

	rep, err := e.ApplyKnowledge(kbDelta(1, knowledge.Delta{
		Op: knowledge.OpAddSynonym, Root: "position", Terms: []string{"job"}}))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Applied || !rep.Changed || rep.Rejected {
		t.Fatalf("report: %+v", rep)
	}
	if rep.Reindexed != 1 || rep.FullReindex {
		t.Fatalf("reindexed %d (full=%v), want exactly the touched subscription", rep.Reindexed, rep.FullReindex)
	}

	// Subscription written as "job" now matches canonical events...
	if got := matchIDs(t, e, "position", "dev"); len(got) != 1 || got[0] != 1 {
		t.Fatalf("post-delta canonical match: %v", got)
	}
	// ...and synonym events still match through event rewriting.
	if got := matchIDs(t, e, "job", "dev"); len(got) != 1 || got[0] != 1 {
		t.Fatalf("post-delta synonym match: %v", got)
	}

	st := e.Stats()
	if st.KBDeltas != 1 || st.KBReindexed != 1 || st.KBVersion == "" {
		t.Fatalf("stats: %+v", st)
	}
}

func TestApplyKnowledgeHierarchyNeedsNoReindex(t *testing.T) {
	e, _ := newKBEngine(t)
	mustSub(t, e, 1, "car", "c1")

	rep, err := e.ApplyKnowledge(kbDelta(1, knowledge.Delta{
		Op: knowledge.OpAddIsA, Child: "sedan", Parent: "car"}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reindexed != 0 {
		t.Fatalf("hierarchy delta re-indexed %d subscriptions", rep.Reindexed)
	}
	// Event generalization picks the new edge up immediately.
	if got := matchIDs(t, e, "sedan", "c1"); len(got) != 1 || got[0] != 1 {
		t.Fatalf("generalized match: %v", got)
	}
}

func TestApplyKnowledgeMappingLifecycle(t *testing.T) {
	e, _ := newKBEngine(t)
	mustSub(t, e, 1, "skill", "COBOL")

	decl := &knowledge.MapDecl{
		Name: "mainframe", Attr: "position", Match: message.String("mainframe developer"),
		Derived: []knowledge.DerivedPair{{Attr: "skill", Val: message.String("COBOL")}},
	}
	if _, err := e.ApplyKnowledge(kbDelta(1, knowledge.Delta{Op: knowledge.OpAddMapping, Map: decl})); err != nil {
		t.Fatal(err)
	}
	if got := matchIDs(t, e, "position", "mainframe developer"); len(got) != 1 {
		t.Fatalf("mapping-derived match: %v", got)
	}
	if _, err := e.ApplyKnowledge(kbDelta(2, knowledge.Delta{Op: knowledge.OpRetire, Name: "mainframe"})); err != nil {
		t.Fatal(err)
	}
	if got := matchIDs(t, e, "position", "mainframe developer"); len(got) != 0 {
		t.Fatalf("retired mapping still fires: %v", got)
	}
}

func TestApplyKnowledgeRejectedAndDuplicate(t *testing.T) {
	e, _ := newKBEngine(t)
	d := kbDelta(1, knowledge.Delta{Op: knowledge.OpAddIsA, Child: "a", Parent: "b"})
	if _, err := e.ApplyKnowledge(d); err != nil {
		t.Fatal(err)
	}
	rep, err := e.ApplyKnowledge(d)
	if err != nil || !rep.Duplicate {
		t.Fatalf("duplicate: %+v, %v", rep, err)
	}
	rep, err = e.ApplyKnowledge(kbDelta(2, knowledge.Delta{Op: knowledge.OpAddIsA, Child: "b", Parent: "a"}))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Rejected || rep.Changed || rep.Reindexed != 0 {
		t.Fatalf("cycle delta: %+v", rep)
	}
	st := e.Stats()
	if st.KBDeltas != 2 || st.KBRejected != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestApplyKnowledgeSyntacticModeSkipsReindex(t *testing.T) {
	base := knowledge.NewBase(nil, nil, nil)
	e := NewEngine(base.Stage(semantic.FullConfig()), WithKnowledge(base), WithMode(Syntactic))
	mustSub(t, e, 1, "job", "dev")
	rep, err := e.ApplyKnowledge(kbDelta(1, knowledge.Delta{
		Op: knowledge.OpAddSynonym, Root: "position", Terms: []string{"job"}}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reindexed != 0 {
		t.Fatalf("syntactic mode re-indexed %d", rep.Reindexed)
	}
	// Switching to semantic mode later re-canonicalizes from originals
	// under the post-delta stage.
	if err := e.SetMode(Semantic); err != nil {
		t.Fatal(err)
	}
	if got := matchIDs(t, e, "position", "dev"); len(got) != 1 {
		t.Fatalf("post-mode-switch match: %v", got)
	}
}

func TestApplyKnowledgeWithoutBase(t *testing.T) {
	e := NewEngine(nil)
	if _, err := e.ApplyKnowledge(kbDelta(1, knowledge.Delta{Op: knowledge.OpAddConcept, Term: "x"})); err == nil {
		t.Fatal("apply without base succeeded")
	}
	if e.Knowledge() != nil {
		t.Fatal("unbound engine reports a base")
	}
}
