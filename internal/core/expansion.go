package core

import (
	"sync"

	"stopss/internal/message"
	"stopss/internal/semantic"
)

// DefaultExpansionCacheSize is the expansion LRU capacity engines use
// unless WithExpansionCache overrides it.
const DefaultExpansionCacheSize = 1024

// ExpansionCache is a bounded LRU of semantic-expansion results keyed on
// the event's signature (its canonical pair multiset). Workloads repeat
// event shapes constantly — the same stock symbol, the same sensor tuple
// — and for a fixed stage snapshot the expansion of a shape is
// deterministic, so repeated shapes can skip semantic.Stage entirely.
//
// Entries remember the raw terms (attributes and string values) of the
// original event. A synonym delta invalidates exactly the entries whose
// terms intersect the delta's changed-term set — the same raw-term
// argument that drives subscription re-indexing (message.Subscription.
// TouchesTerms): an event whose expansion a synonym change could alter
// mentions a changed term as written. Hierarchy and mapping deltas
// restructure the expansion stages themselves and flush the whole cache.
//
// The cache is safe for concurrent use; the sharded pool probes it from
// concurrent publishers.
type ExpansionCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*expEntry
	head    *expEntry // most recently used
	tail    *expEntry // least recently used

	hits        uint64
	misses      uint64
	evictions   uint64
	invalidated uint64
}

type expEntry struct {
	key        string
	res        semantic.Result
	terms      []string
	prev, next *expEntry
}

// ExpansionCacheStats is a point-in-time snapshot of cache counters.
type ExpansionCacheStats struct {
	Hits        uint64
	Misses      uint64
	Evictions   uint64
	Invalidated uint64
	Size        int
	Capacity    int
}

// NewExpansionCache builds a cache holding at most capacity entries.
// Capacity <= 0 returns nil: a nil *ExpansionCache is a valid, always-
// missing cache, which is how engines disable memoization.
func NewExpansionCache(capacity int) *ExpansionCache {
	if capacity <= 0 {
		return nil
	}
	return &ExpansionCache{cap: capacity, entries: make(map[string]*expEntry, capacity)}
}

// Get returns the memoized expansion for the event signature, promoting
// the entry to most-recently-used.
func (c *ExpansionCache) Get(sig string) (semantic.Result, bool) {
	if c == nil {
		return semantic.Result{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	en, ok := c.entries[sig]
	if !ok {
		c.misses++
		return semantic.Result{}, false
	}
	c.hits++
	c.moveToFront(en)
	return en.res, true
}

// Put memoizes an expansion under the event signature, evicting the
// least-recently-used entry when full. terms are the raw terms of the
// original event (EventTerms); the slice is retained.
func (c *ExpansionCache) Put(sig string, res semantic.Result, terms []string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if en, ok := c.entries[sig]; ok {
		en.res, en.terms = res, terms
		c.moveToFront(en)
		return
	}
	if len(c.entries) >= c.cap {
		c.evict(c.tail)
		c.evictions++
	}
	en := &expEntry{key: sig, res: res, terms: terms}
	c.entries[sig] = en
	c.pushFront(en)
}

// InvalidateTerms drops every entry whose term set intersects the given
// changed-term set and reports how many were dropped.
func (c *ExpansionCache) InvalidateTerms(affected []string) int {
	if c == nil || len(affected) == 0 {
		return 0
	}
	set := make(map[string]bool, len(affected))
	for _, t := range affected {
		set[t] = true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for en := c.head; en != nil; {
		next := en.next
		for _, t := range en.terms {
			if set[t] {
				c.evict(en)
				n++
				break
			}
		}
		en = next
	}
	c.invalidated += uint64(n)
	return n
}

// Flush drops every entry (hierarchy/mapping delta, stage swap, config
// change).
func (c *ExpansionCache) Flush() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.invalidated += uint64(len(c.entries))
	c.entries = make(map[string]*expEntry, c.cap)
	c.head, c.tail = nil, nil
}

// Len reports the current entry count.
func (c *ExpansionCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats snapshots the cache counters.
func (c *ExpansionCache) Stats() ExpansionCacheStats {
	if c == nil {
		return ExpansionCacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return ExpansionCacheStats{
		Hits: c.hits, Misses: c.misses,
		Evictions: c.evictions, Invalidated: c.invalidated,
		Size: len(c.entries), Capacity: c.cap,
	}
}

// --- intrusive LRU list (head = MRU, tail = LRU) ---

func (c *ExpansionCache) pushFront(en *expEntry) {
	en.prev, en.next = nil, c.head
	if c.head != nil {
		c.head.prev = en
	}
	c.head = en
	if c.tail == nil {
		c.tail = en
	}
}

func (c *ExpansionCache) unlink(en *expEntry) {
	if en.prev != nil {
		en.prev.next = en.next
	} else {
		c.head = en.next
	}
	if en.next != nil {
		en.next.prev = en.prev
	} else {
		c.tail = en.prev
	}
	en.prev, en.next = nil, nil
}

func (c *ExpansionCache) moveToFront(en *expEntry) {
	if c.head == en {
		return
	}
	c.unlink(en)
	c.pushFront(en)
}

func (c *ExpansionCache) evict(en *expEntry) {
	c.unlink(en)
	delete(c.entries, en.key)
}

// EventTerms collects the raw terms of an event — attribute names plus
// string values — for expansion-cache invalidation bookkeeping. The
// sharded pool uses it to stamp entries in its pool-level cache.
func EventTerms(ev message.Event) []string {
	terms := make([]string, 0, ev.Len())
	for _, p := range ev.Pairs() {
		terms = append(terms, p.Attr)
		if p.Val.Kind() == message.KindString {
			terms = append(terms, p.Val.Str())
		}
	}
	return terms
}
