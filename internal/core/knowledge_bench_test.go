package core

import (
	"fmt"
	"testing"

	"stopss/internal/knowledge"
	"stopss/internal/message"
	"stopss/internal/semantic"
)

// BenchmarkKnowledgeApply measures what a live ontology update costs at
// scale, per stored-subscription count:
//
//   - incremental: ApplyKnowledge of a synonym delta whose member term
//     no stored subscription mentions — the common case. Cost is the
//     copy-on-write clone of the knowledge structures plus one linear
//     touch-scan over originals; the matcher is untouched.
//   - touched: ApplyKnowledge of a synonym delta that re-indexes a
//     small fixed number of subscriptions (10) — clone + scan + a
//     handful of matcher remove/add pairs.
//   - full: the fallback the incremental path avoids — re-indexing
//     every stored subscription (what a naive implementation pays, and
//     what out-of-order delivery used to force before refolds reported
//     the changed-term diff; see BenchmarkKnowledgeMultiOrigin at the
//     repo root for the multi-origin study, EXPERIMENTS T9).
//
// Results are recorded in EXPERIMENTS.md (T8).
func BenchmarkKnowledgeApply(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("subs=%d", n), func(b *testing.B) {
			base := knowledge.NewBase(nil, nil, nil)
			e := NewEngine(base.Stage(semantic.FullConfig()), WithKnowledge(base))
			// Subscriptions over a bounded attribute universe, plus ten
			// "hot" subscriptions per touched-term generation.
			for i := 0; i < n; i++ {
				s := message.NewSubscription(message.SubID(i+1), "c",
					message.Pred(fmt.Sprintf("attr%d", i%1024), message.OpEq,
						message.String(fmt.Sprintf("hot%d", i/10))))
				if err := e.Subscribe(s); err != nil {
					b.Fatal(err)
				}
			}
			o := knowledge.NewOrigin("bench")

			b.Run("incremental", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					d := o.Stamp(knowledge.Delta{Op: knowledge.OpAddSynonym,
						Root: "bench-root", Terms: []string{fmt.Sprintf("fresh-%d", i)}})
					rep, err := e.ApplyKnowledge(d)
					if err != nil {
						b.Fatal(err)
					}
					if rep.Reindexed != 0 {
						b.Fatalf("incremental re-indexed %d", rep.Reindexed)
					}
				}
			})
			b.Run("touched", func(b *testing.B) {
				b.ReportAllocs()
				reindexed := 0
				for i := 0; i < b.N; i++ {
					// Each hot<g> value is mentioned by exactly 10
					// subscriptions; every generation touches a fresh one.
					d := o.Stamp(knowledge.Delta{Op: knowledge.OpAddSynonym,
						Root: "hot-root", Terms: []string{fmt.Sprintf("hot%d", i%(n/10))}})
					rep, err := e.ApplyKnowledge(d)
					if err != nil {
						b.Fatal(err)
					}
					reindexed += rep.Reindexed
				}
				b.ReportMetric(float64(reindexed)/float64(b.N), "subs-reindexed/op")
			})
			b.Run("full", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := e.ReindexKnowledge(nil, true); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}
