package core

import (
	"fmt"
	"sort"

	"stopss/internal/knowledge"
	"stopss/internal/message"
)

// KnowledgeReport is the engine-level outcome of applying one knowledge
// delta: the base-level outcome plus what re-indexing it forced.
type KnowledgeReport struct {
	ID          string   // the delta's stamped identity (origin#epoch/seq)
	Applied     bool     // delta newly appended to the log
	Duplicate   bool     // delta already known; nothing changed
	Rejected    bool     // delta logged but its operation failed deterministically
	Refolded    bool     // out-of-merge-order arrival re-folded a log suffix
	Changed     bool     // the semantic structures changed
	FullReindex bool     // re-indexing fell back to the full subscription set
	Reindexed   int      // subscriptions re-indexed
	Affected    []string // terms whose canonical form changed (drives re-indexing)
	Version     knowledge.Version
}

// KBFullReindexTerms is the incremental re-index threshold: a delta
// touching more distinct terms than this re-indexes the whole
// subscription set instead of scanning per-subscription. Beyond this
// point the per-term bookkeeping costs more than it saves.
const KBFullReindexTerms = 128

// Knowledge implements PubSub.
func (e *Engine) Knowledge() *knowledge.Base { return e.kb }

// ApplyKnowledge implements PubSub: fold the delta into the base, swap
// the stage snapshot, and re-index affected subscriptions, all under
// the engine lock so no publication ever matches against a
// half-updated (new stage, old index) pairing. The base reports the
// exact changed-term set even when the arrival re-folded a log suffix,
// so the re-index is incremental on every path — a full re-index only
// ever happens past the KBFullReindexTerms threshold.
func (e *Engine) ApplyKnowledge(d knowledge.Delta) (KnowledgeReport, error) {
	if e.kb == nil {
		return KnowledgeReport{}, fmt.Errorf("core: no knowledge base bound to this engine")
	}
	e.mu.Lock()
	defer e.mu.Unlock()

	out, err := e.kb.Apply(d)
	if err != nil {
		return KnowledgeReport{}, err
	}
	rep := KnowledgeReport{
		ID:        d.ID(),
		Applied:   out.Applied,
		Duplicate: out.Duplicate,
		Rejected:  out.Rejected,
		Refolded:  out.Refolded,
		Changed:   out.Changed,
		Affected:  out.Affected,
		Version:   e.kb.Version(),
	}
	if !out.Changed {
		return rep, nil
	}
	e.stage.Replace(out.Synonyms, out.Hierarchy, out.Mappings)
	e.invalidateExpansionsLocked(d, out.Refolded, out.Affected)
	rep.Reindexed, rep.FullReindex, err = e.reindexKnowledgeLocked(out.Affected, false)
	if err != nil {
		return rep, err
	}
	return rep, nil
}

// invalidateExpansionsLocked drops the memoized expansions a knowledge
// change could have altered and re-stamps the validated stage version so
// the next Publish does not flush redundantly. An in-order synonym delta
// changes expansions only for events mentioning an affected term — the
// same raw-term argument that scopes subscription re-indexing — so it
// invalidates precisely. Everything else (hierarchy or mapping deltas,
// which restructure the expansion stages; refolds, which may flip the
// outcome of any logged delta) flushes the cache. Callers hold e.mu.
func (e *Engine) invalidateExpansionsLocked(d knowledge.Delta, refolded bool, affected []string) {
	if e.expCache != nil {
		if d.Op == knowledge.OpAddSynonym && !refolded {
			e.expCache.InvalidateTerms(affected)
		} else {
			e.expCache.Flush()
		}
	}
	e.stageVersion = e.stage.Version()
}

// ReindexKnowledge re-indexes the subscriptions a knowledge update
// affected, under the engine lock. The sharded pool calls this per
// shard after applying the delta once and swapping the shared stage;
// single-engine deployments go through ApplyKnowledge instead.
func (e *Engine) ReindexKnowledge(affected []string, full bool) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	n, _, err := e.reindexKnowledgeLocked(affected, full)
	return n, err
}

// reindexKnowledgeLocked re-indexes subscriptions whose original form
// mentions an affected term — the only subscriptions whose canonical
// (indexed) form a knowledge delta can change, since subscriptions pass
// only the synonym stage and the base reports exactly the terms whose
// canonical form changed. Past KBFullReindexTerms distinct terms it
// falls back to re-indexing everything. Callers hold e.mu.
func (e *Engine) reindexKnowledgeLocked(affected []string, full bool) (int, bool, error) {
	if e.mode != Semantic {
		// Syntactic mode indexes subscriptions verbatim; nothing stored
		// depends on the knowledge base. A later SetMode re-canonicalizes
		// from originals under the then-current stage anyway.
		return 0, full, nil
	}
	if !full && len(affected) > KBFullReindexTerms {
		full = true
	}
	var ids []message.SubID
	if full {
		e.stats.KBFullReindexes++
		ids = make([]message.SubID, 0, len(e.originals))
		for id := range e.originals {
			ids = append(ids, id)
		}
	} else {
		if len(affected) == 0 {
			return 0, false, nil // hierarchy/mapping delta: index untouched
		}
		set := make(map[string]bool, len(affected))
		for _, t := range affected {
			set[t] = true
		}
		for id, s := range e.originals {
			if s.TouchesTerms(set) {
				ids = append(ids, id)
			}
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	// Staged re-index (new forms validated before any removal), so a
	// failure cannot leave the matcher missing subscriptions that
	// e.originals still lists.
	if err := e.reindexIDsLocked(ids); err != nil {
		return 0, full, err
	}
	e.stats.KBReindexed += uint64(len(ids))
	return len(ids), full, nil
}
