package core

import (
	"fmt"
	"sort"

	"stopss/internal/knowledge"
	"stopss/internal/message"
)

// KnowledgeReport is the engine-level outcome of applying one knowledge
// delta: the base-level outcome plus what re-indexing it forced.
type KnowledgeReport struct {
	ID          string // the delta's stamped identity (origin#epoch/seq)
	Applied     bool   // delta newly appended to the log
	Duplicate   bool   // delta already known; nothing changed
	Rejected    bool   // delta logged but its operation failed deterministically
	Rebuilt     bool   // out-of-order arrival re-folded the base from genesis
	Changed     bool   // the semantic structures changed
	FullReindex bool   // re-indexing fell back to the full subscription set
	Reindexed   int    // subscriptions re-indexed
	Version     knowledge.Version
}

// KBFullReindexTerms is the incremental re-index threshold: a delta
// touching more distinct terms than this re-indexes the whole
// subscription set instead of scanning per-subscription. Beyond this
// point the per-term bookkeeping costs more than it saves.
const KBFullReindexTerms = 128

// Knowledge implements PubSub.
func (e *Engine) Knowledge() *knowledge.Base { return e.kb }

// ApplyKnowledge implements PubSub: fold the delta into the base, swap
// the stage snapshot, and re-index affected subscriptions, all under
// the engine lock so no publication ever matches against a
// half-updated (new stage, old index) pairing.
func (e *Engine) ApplyKnowledge(d knowledge.Delta) (KnowledgeReport, error) {
	if e.kb == nil {
		return KnowledgeReport{}, fmt.Errorf("core: no knowledge base bound to this engine")
	}
	e.mu.Lock()
	defer e.mu.Unlock()

	out, err := e.kb.Apply(d)
	if err != nil {
		return KnowledgeReport{}, err
	}
	rep := KnowledgeReport{
		ID:        d.ID(),
		Applied:   out.Applied,
		Duplicate: out.Duplicate,
		Rejected:  out.Rejected,
		Rebuilt:   out.Rebuilt,
		Changed:   out.Changed,
		Version:   e.kb.Version(),
	}
	if !out.Changed {
		return rep, nil
	}
	e.stage.Replace(out.Synonyms, out.Hierarchy, out.Mappings)
	rep.Reindexed, rep.FullReindex, err = e.reindexKnowledgeLocked(out.Affected, out.Rebuilt)
	if err != nil {
		return rep, err
	}
	return rep, nil
}

// ReindexKnowledge re-indexes the subscriptions a knowledge update
// affected, under the engine lock. The sharded pool calls this per
// shard after applying the delta once and swapping the shared stage;
// single-engine deployments go through ApplyKnowledge instead.
func (e *Engine) ReindexKnowledge(affected []string, full bool) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	n, _, err := e.reindexKnowledgeLocked(affected, full)
	return n, err
}

// reindexKnowledgeLocked re-indexes subscriptions whose original form
// mentions an affected term — the only subscriptions whose canonical
// (indexed) form a knowledge delta can change, since subscriptions pass
// only the synonym stage and a known term's root never changes. Past
// kbFullReindexTerms distinct terms (or after a genesis rebuild) it
// falls back to re-indexing everything. Callers hold e.mu.
func (e *Engine) reindexKnowledgeLocked(affected []string, full bool) (int, bool, error) {
	if e.mode != Semantic {
		// Syntactic mode indexes subscriptions verbatim; nothing stored
		// depends on the knowledge base. A later SetMode re-canonicalizes
		// from originals under the then-current stage anyway.
		return 0, full, nil
	}
	if !full && len(affected) > KBFullReindexTerms {
		full = true
	}
	var ids []message.SubID
	if full {
		ids = make([]message.SubID, 0, len(e.originals))
		for id := range e.originals {
			ids = append(ids, id)
		}
	} else {
		if len(affected) == 0 {
			return 0, false, nil // hierarchy/mapping delta: index untouched
		}
		set := make(map[string]bool, len(affected))
		for _, t := range affected {
			set[t] = true
		}
		for id, s := range e.originals {
			if subscriptionTouches(s, set) {
				ids = append(ids, id)
			}
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	// Staged re-index (new forms validated before any removal), so a
	// failure cannot leave the matcher missing subscriptions that
	// e.originals still lists.
	if err := e.reindexIDsLocked(ids); err != nil {
		return 0, full, err
	}
	e.stats.KBReindexed += uint64(len(ids))
	return len(ids), full, nil
}

// subscriptionTouches reports whether any predicate attribute (or
// string operand) of the subscription's ORIGINAL form is an affected
// term. Raw terms suffice: only previously-unknown terms can acquire a
// new canonical form (semantic.Synonyms.Known), and a previously
// unknown term appears in the indexed form exactly as written.
func subscriptionTouches(s message.Subscription, affected map[string]bool) bool {
	for _, p := range s.Preds {
		if affected[p.Attr] {
			return true
		}
		if p.Val.Kind() == message.KindString && affected[p.Val.Str()] {
			return true
		}
	}
	return false
}
