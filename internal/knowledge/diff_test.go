package knowledge

import (
	"strings"
	"testing"

	"stopss/internal/message"
	"stopss/internal/ontology"
	"stopss/internal/semantic"
)

const oldODL = `
domain jobs
synonyms {
    position: job
}
concepts {
    degree { PhD }
}
mappings {
    map position "mainframe developer" -> era "1960-1980"
}
`

const newODL = `
domain jobs
synonyms {
    position: job, post
    salary: pay
}
concepts {
    degree { PhD "graduate degree" { MSc } }
}
mappings {
    map position "web developer" -> skill "JavaScript"
}
`

func loadStructs(t *testing.T, src string) Structures {
	t.Helper()
	ont, err := ontology.Load(src, ontology.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return Structures{Synonyms: ont.Synonyms, Hierarchy: ont.Hierarchy, Mappings: ont.Mappings}
}

func TestDiffEmitsEvolution(t *testing.T) {
	old, neu := loadStructs(t, oldODL), loadStructs(t, newODL)
	deltas, warnings, err := Diff(old, neu)
	if err != nil {
		t.Fatal(err)
	}
	// The old pair-map disappears → one retire warning-free delta; the
	// dropped nothing else, so warnings should be empty.
	for _, w := range warnings {
		t.Errorf("unexpected warning: %s", w)
	}

	// Applying the diff on top of the OLD ontology must reproduce the
	// new one's behaviour.
	base := NewBase(old.Synonyms, old.Hierarchy, old.Mappings)
	o := NewOrigin("diff")
	for _, d := range deltas {
		out, err := base.Apply(o.Stamp(d))
		if err != nil {
			t.Fatalf("applying %s: %v", d, err)
		}
		if out.Rejected {
			t.Fatalf("diff delta rejected: %s (%s)", d, out.RejectReason)
		}
	}
	st := base.Stage(semantic.FullConfig())

	// New synonym members.
	res := st.ProcessEvent(message.E("post", "x", "pay", "y"))
	root := res.Events[0]
	if !root.Has("position") || !root.Has("salary") {
		t.Fatalf("new synonyms not applied: %v", root)
	}
	// New hierarchy path: MSc is-a "graduate degree" is-a degree.
	if !st.Hierarchy().IsA("MSc", "degree") {
		t.Fatal("new hierarchy edges not applied")
	}
	// Old hierarchy preserved.
	if !st.Hierarchy().IsA("PhD", "degree") {
		t.Fatal("genesis hierarchy lost")
	}
	// Mapping swap (same auto-generated name, new content): the old
	// behaviour is retired, the new one live.
	if st.Mappings().Len() != 1 {
		t.Fatalf("mappings after diff: %v", st.Mappings().Names())
	}
	for _, ev := range st.ProcessEvent(message.E("position", "mainframe developer")).Events {
		if ev.Has("era") {
			t.Fatal("retired mapping content still fires")
		}
	}
	pairs := st.ProcessEvent(message.E("position", "web developer"))
	foundSkill := false
	for _, ev := range pairs.Events {
		if v, ok := ev.Get("skill"); ok && v.Str() == "JavaScript" {
			foundSkill = true
		}
	}
	if !foundSkill {
		t.Fatal("new mapping not applied")
	}
}

func TestDiffWarnsOnRemovals(t *testing.T) {
	old, neu := loadStructs(t, newODL), loadStructs(t, oldODL) // reversed
	_, warnings, err := Diff(old, neu)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(warnings, "\n")
	for _, want := range []string{"salary", "MSc", "removed"} {
		if !strings.Contains(joined, want) {
			t.Errorf("warnings missing %q:\n%s", want, joined)
		}
	}
}

func TestDiffRejectsRerooting(t *testing.T) {
	old := loadStructs(t, "domain d\nsynonyms {\n    a: b\n}\n")
	neu := loadStructs(t, "domain d\nsynonyms {\n    c: b\n}\n")
	if _, _, err := Diff(old, neu); err == nil {
		t.Fatal("re-rooted term diffed without error")
	}
}
