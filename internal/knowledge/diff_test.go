package knowledge

import (
	"math/rand"
	"strings"
	"testing"

	"stopss/internal/message"
	"stopss/internal/ontology"
	"stopss/internal/semantic"
)

const oldODL = `
domain jobs
synonyms {
    position: job
}
concepts {
    degree { PhD }
}
mappings {
    map position "mainframe developer" -> era "1960-1980"
}
`

const newODL = `
domain jobs
synonyms {
    position: job, post
    salary: pay
}
concepts {
    degree { PhD "graduate degree" { MSc } }
}
mappings {
    map position "web developer" -> skill "JavaScript"
}
`

func loadStructs(t *testing.T, src string) Structures {
	t.Helper()
	ont, err := ontology.Load(src, ontology.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return Structures{Synonyms: ont.Synonyms, Hierarchy: ont.Hierarchy, Mappings: ont.Mappings}
}

func TestDiffEmitsEvolution(t *testing.T) {
	old, neu := loadStructs(t, oldODL), loadStructs(t, newODL)
	deltas, warnings, err := Diff(old, neu)
	if err != nil {
		t.Fatal(err)
	}
	// The pair-map changes content under the same auto-generated name
	// → one replacing add_mapping delta; nothing else was dropped, so
	// warnings should be empty.
	for _, w := range warnings {
		t.Errorf("unexpected warning: %s", w)
	}

	// Applying the diff on top of the OLD ontology must reproduce the
	// new one's behaviour.
	base := NewBase(old.Synonyms, old.Hierarchy, old.Mappings)
	o := NewOrigin("diff")
	for _, d := range deltas {
		out, err := base.Apply(o.Stamp(d))
		if err != nil {
			t.Fatalf("applying %s: %v", d, err)
		}
		if out.Rejected {
			t.Fatalf("diff delta rejected: %s (%s)", d, out.RejectReason)
		}
	}
	st := base.Stage(semantic.FullConfig())

	// New synonym members.
	res := st.ProcessEvent(message.E("post", "x", "pay", "y"))
	root := res.Events[0]
	if !root.Has("position") || !root.Has("salary") {
		t.Fatalf("new synonyms not applied: %v", root)
	}
	// New hierarchy path: MSc is-a "graduate degree" is-a degree.
	if !st.Hierarchy().IsA("MSc", "degree") {
		t.Fatal("new hierarchy edges not applied")
	}
	// Old hierarchy preserved.
	if !st.Hierarchy().IsA("PhD", "degree") {
		t.Fatal("genesis hierarchy lost")
	}
	// Mapping swap (same auto-generated name, new content): the old
	// behaviour is replaced, the new one live.
	if st.Mappings().Len() != 1 {
		t.Fatalf("mappings after diff: %v", st.Mappings().Names())
	}
	for _, ev := range st.ProcessEvent(message.E("position", "mainframe developer")).Events {
		if ev.Has("era") {
			t.Fatal("superseded mapping content still fires")
		}
	}
	pairs := st.ProcessEvent(message.E("position", "web developer"))
	foundSkill := false
	for _, ev := range pairs.Events {
		if v, ok := ev.Get("skill"); ok && v.Str() == "JavaScript" {
			foundSkill = true
		}
	}
	if !foundSkill {
		t.Fatal("new mapping not applied")
	}
}

// TestDiffFileStampFoldOrderSafe reproduces the documented injection
// paths (stopss-server -kb-watch, POST /api/kb): every line of the
// emitted log is stamped with a per-line content-hash epoch. One file
// now folds in line order under the sequence-major merge, but deltas
// from several logs (or logs mixed with live origins) still interleave
// by sequence number, so a content-changed mapping must remain a
// single self-contained delta — a retire-then-add pair could fold
// add-first, be rejected as already registered, and then be deleted by
// the retire, losing the update federation-wide. The shuffled arrival
// orders below also exercise the suffix-refold path end to end.
func TestDiffFileStampFoldOrderSafe(t *testing.T) {
	old, neu := loadStructs(t, oldODL), loadStructs(t, newODL)
	deltas, _, err := Diff(old, neu)
	if err != nil {
		t.Fatal(err)
	}
	// The changed mapping (same auto-generated name, new content) must
	// be exactly one delta, and nothing may retire it.
	mapDeltas := 0
	for _, d := range deltas {
		switch d.Op {
		case OpAddMapping:
			mapDeltas++
		case OpRetire:
			t.Fatalf("changed mapping emitted an order-sensitive retire: %s", d)
		}
	}
	if mapDeltas != 1 {
		t.Fatalf("changed mapping emitted %d add_mapping deltas, want 1", mapDeltas)
	}

	stamped := make([]Delta, len(deltas))
	for i, d := range deltas {
		if stamped[i], err = FileStamp(uint64(i+1), d); err != nil {
			t.Fatalf("stamping line %d: %v", i+1, err)
		}
	}

	// Every arrival order — including the canonical (sorted) merge
	// fold order itself — must converge on the new ontology's mapping
	// behaviour with no rejections.
	rng := rand.New(rand.NewSource(7))
	var wantDigest string
	for trial := 0; trial < 20; trial++ {
		ds := append([]Delta(nil), stamped...)
		if trial > 0 {
			rng.Shuffle(len(ds), func(i, j int) { ds[i], ds[j] = ds[j], ds[i] })
		}
		b := NewBase(old.Synonyms, old.Hierarchy, old.Mappings)
		for _, d := range ds {
			out, err := b.Apply(d)
			if err != nil {
				t.Fatalf("trial %d: applying %s: %v", trial, d, err)
			}
			if out.Rejected {
				t.Fatalf("trial %d: delta rejected: %s (%s)", trial, d, out.RejectReason)
			}
		}
		v := b.Version()
		if trial == 0 {
			wantDigest = v.Digest
		} else if v.Digest != wantDigest {
			t.Fatalf("trial %d: digest %s, want %s", trial, v.Digest, wantDigest)
		}
		st := b.Stage(semantic.FullConfig())
		if st.Mappings().Len() != 1 {
			t.Fatalf("trial %d: mappings after fold: %v", trial, st.Mappings().Names())
		}
		for _, ev := range st.ProcessEvent(message.E("position", "mainframe developer")).Events {
			if ev.Has("era") {
				t.Fatalf("trial %d: superseded mapping content still fires", trial)
			}
		}
		found := false
		for _, ev := range st.ProcessEvent(message.E("position", "web developer")).Events {
			if v, ok := ev.Get("skill"); ok && v.Str() == "JavaScript" {
				found = true
			}
		}
		if !found {
			t.Fatalf("trial %d: updated mapping lost in fold order %v", trial, ds)
		}
	}
}

func TestDiffWarnsOnRemovals(t *testing.T) {
	old, neu := loadStructs(t, newODL), loadStructs(t, oldODL) // reversed
	_, warnings, err := Diff(old, neu)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(warnings, "\n")
	for _, want := range []string{"salary", "MSc", "removed"} {
		if !strings.Contains(joined, want) {
			t.Errorf("warnings missing %q:\n%s", want, joined)
		}
	}
}

func TestDiffRejectsRerooting(t *testing.T) {
	old := loadStructs(t, "domain d\nsynonyms {\n    a: b\n}\n")
	neu := loadStructs(t, "domain d\nsynonyms {\n    c: b\n}\n")
	if _, _, err := Diff(old, neu); err == nil {
		t.Fatal("re-rooted term diffed without error")
	}
}
