// Package knowledge turns the static semantic knowledge of S-ToPSS —
// synonym tables, concept hierarchies, mapping functions — into a
// replicated, versioned knowledge base that a broker federation can
// evolve at runtime.
//
// The unit of change is a Delta: one append-only operation (AddSynonym,
// AddConcept, AddIsA, AddMapping, Retire) stamped with the identity of
// the broker that created it (origin name, incarnation epoch, per-epoch
// sequence). Deltas flood the overlay like publications do — hop lists
// for loop prevention, origin-scoped IDs for duplicate suppression —
// and every broker folds them into its Base in one canonical order, so
// brokers that have seen the same delta set hold byte-identical
// semantic state regardless of arrival order (see Base).
//
// The semantic structures themselves stay copy-on-write: a Base never
// mutates a published *semantic.Synonyms/Hierarchy/Mappings; it clones,
// applies, and hands the fresh snapshot to the engine, which swaps it
// into the shared semantic.Stage atomically and incrementally re-indexes
// only the subscriptions the delta affected.
package knowledge

import (
	"encoding/json"
	"fmt"

	"stopss/internal/message"
	"stopss/internal/semantic"
)

// Op enumerates the knowledge-base operations.
type Op string

// The delta operations. All are append-only except OpRetire, which
// unregisters a mapping function by name (mapping functions are the
// only structure that can be removed without changing the canonical
// form of already-indexed subscriptions; retiring synonyms or is-a
// edges would, and is rejected at validation).
const (
	OpAddSynonym Op = "add_synonym" // Root + Terms join one synonym group
	OpAddConcept Op = "add_concept" // Term registered in the hierarchy
	OpAddIsA     Op = "add_isa"     // Child is-a Parent edge
	OpAddMapping Op = "add_mapping" // Map declares (or replaces) a pair-map function
	OpRetire     Op = "retire"      // Name unregisters a mapping function
)

// MapDecl is the serializable form of a declarative pair-map mapping
// function (semantic.PairMap): when the trigger pair (Attr, Match)
// appears in an event, the Derived pairs are added.
type MapDecl struct {
	Name    string        `json:"name"`
	Attr    string        `json:"attr"`
	Match   message.Value `json:"match"`
	Derived []DerivedPair `json:"derived"`
}

// DerivedPair is one derived attribute/value pair of a MapDecl.
type DerivedPair struct {
	Attr string        `json:"attr"`
	Val  message.Value `json:"val"`
}

// Func lowers the declaration into the runtime mapping function.
func (m MapDecl) Func() semantic.MappingFunc {
	derived := make([]message.Pair, len(m.Derived))
	for i, d := range m.Derived {
		derived[i] = message.Pair{Attr: d.Attr, Val: d.Val}
	}
	return semantic.PairMap{MapName: m.Name, Attr: m.Attr, Match: m.Match, Derived: derived}
}

// Delta is one versioned knowledge-base operation. Origin, Epoch and
// Seq form its overlay-wide identity; a Delta without them is
// "unstamped" (as emitted by `ontc -delta`) and must be stamped by an
// Origin before it enters a Base.
type Delta struct {
	Origin string `json:"origin"`
	Epoch  string `json:"epoch"`
	Seq    uint64 `json:"seq"`
	Op     Op     `json:"op"`

	Root   string   `json:"root,omitempty"`   // add_synonym: canonical term
	Terms  []string `json:"terms,omitempty"`  // add_synonym: member terms
	Term   string   `json:"term,omitempty"`   // add_concept
	Child  string   `json:"child,omitempty"`  // add_isa
	Parent string   `json:"parent,omitempty"` // add_isa
	Map    *MapDecl `json:"map,omitempty"`    // add_mapping
	Name   string   `json:"name,omitempty"`   // retire: mapping function name
}

// ID returns the overlay-wide identity, mirroring the publication ID
// scheme (origin#epoch/seq) so the overlay's duplicate-suppression
// machinery applies unchanged.
func (d Delta) ID() string {
	return fmt.Sprintf("%s#%s/%d", d.Origin, d.Epoch, d.Seq)
}

// Stamped reports whether the delta carries a full origin identity.
func (d Delta) Stamped() bool {
	return d.Origin != "" && d.Epoch != "" && d.Seq != 0
}

// Validate checks the operation payload (not the stamp; use Stamped).
func (d Delta) Validate() error {
	switch d.Op {
	case OpAddSynonym:
		if d.Root == "" {
			return fmt.Errorf("knowledge: %s needs a root term", d.Op)
		}
		for _, t := range d.Terms {
			if t == "" {
				return fmt.Errorf("knowledge: %s %q has an empty member term", d.Op, d.Root)
			}
		}
	case OpAddConcept:
		if d.Term == "" {
			return fmt.Errorf("knowledge: %s needs a term", d.Op)
		}
	case OpAddIsA:
		if d.Child == "" || d.Parent == "" {
			return fmt.Errorf("knowledge: %s needs child and parent", d.Op)
		}
		if d.Child == d.Parent {
			return fmt.Errorf("knowledge: %s: %q cannot specialize itself", d.Op, d.Child)
		}
	case OpAddMapping:
		if d.Map == nil {
			return fmt.Errorf("knowledge: %s needs a map declaration", d.Op)
		}
		if d.Map.Name == "" {
			return fmt.Errorf("knowledge: %s needs a map name", d.Op)
		}
		if d.Map.Attr == "" {
			return fmt.Errorf("knowledge: %s %q needs a trigger attribute", d.Op, d.Map.Name)
		}
		if len(d.Map.Derived) == 0 {
			return fmt.Errorf("knowledge: %s %q derives nothing", d.Op, d.Map.Name)
		}
		for _, p := range d.Map.Derived {
			if p.Attr == "" {
				return fmt.Errorf("knowledge: %s %q derives a pair with an empty attribute", d.Op, d.Map.Name)
			}
		}
	case OpRetire:
		if d.Name == "" {
			return fmt.Errorf("knowledge: %s needs a mapping function name", d.Op)
		}
	default:
		return fmt.Errorf("knowledge: unknown op %q", d.Op)
	}
	return nil
}

// MaxDeltaBytes bounds one encoded delta. It is far below the overlay
// frame limit (1 MiB), leaving room for the frame envelope (origin,
// hop list), so every delta a Base accepts is guaranteed replicable —
// an applied-but-unsendable delta would diverge the federation
// permanently and flap every link that tries to sync it.
const MaxDeltaBytes = 128 << 10

// Encode serializes the delta as one JSON object (the wire and log
// format — one delta per line in delta-log files and snapshots).
func Encode(d Delta) ([]byte, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(d)
}

// Decode parses one encoded delta and validates its payload. The stamp
// may be absent (unstamped deltas are legal in delta-log files; the
// injecting broker stamps them).
func Decode(data []byte) (Delta, error) {
	if len(data) > MaxDeltaBytes {
		return Delta{}, fmt.Errorf("knowledge: delta of %d bytes exceeds the %d-byte limit", len(data), MaxDeltaBytes)
	}
	var d Delta
	if err := json.Unmarshal(data, &d); err != nil {
		return Delta{}, fmt.Errorf("knowledge: decoding delta: %w", err)
	}
	if err := d.Validate(); err != nil {
		return Delta{}, err
	}
	return d, nil
}

// FileStamp deterministically stamps an unstamped delta for replayable
// injection from a delta-log file or admin request: the origin is the
// fixed name "odl", the epoch a content hash of the operation payload,
// and the sequence the (1-based) line number. Re-reading the same file
// after a restart or truncation — or injecting the same file at
// several brokers — therefore reproduces identical delta IDs, and
// duplicate suppression absorbs the replay instead of appending the
// whole log again under fresh identities. Already-stamped deltas pass
// through unchanged.
//
// The canonical merge order is sequence-major (see less), so a single
// file's lines fold in LINE order — reading a delta log top to bottom
// is a run of pure in-order appends, no refolds. Across files (or
// against live broker origins) lines with equal numbers interleave in
// hash order, deterministically but arbitrarily; convergence never
// depends on it, and the delta language is fold-order-independent
// (add_isa registers its concepts implicitly; add_mapping replaces an
// equal-name function, so a changed mapping never needs an
// order-sensitive retire/add pair). The one residual sensitivity: two
// deltas touching the SAME mapping name on the SAME line number of
// different logs fold in hash order — put only the final state of a
// mapping in a log, as Diff does.
func FileStamp(line uint64, d Delta) (Delta, error) {
	if d.Stamped() {
		return d, nil
	}
	if line == 0 {
		return Delta{}, fmt.Errorf("knowledge: FileStamp needs a 1-based line number")
	}
	enc, err := Encode(d)
	if err != nil {
		return Delta{}, err
	}
	h := fnvSum(fnvOffset, enc)
	d.Origin = "odl"
	d.Epoch = fmt.Sprintf("f%016x", h)
	d.Seq = line
	return d, nil
}

// less orders deltas canonically: by sequence number first, then origin
// name, then epoch. Any total order identical on every broker would do
// for convergence — every Base folds its log in this order (see
// Base.Apply), so equal delta sets produce equal semantic state — but
// sequence-major ordering is what keeps multi-origin convergence
// incremental: it is the deterministic round-robin merge of per-origin
// in-order tails, so origins injecting concurrently land near the
// merge tail and an arrival is out of order only by the skew between
// origin watermarks, never by the origins' name order. (Origin-major
// ordering would put every delta of the alphabetically-first origin
// before the entire log tail, forcing a near-full refold per
// cross-origin delta.)
func less(a, b Delta) bool {
	if a.Seq != b.Seq {
		return a.Seq < b.Seq
	}
	if a.Origin != b.Origin {
		return a.Origin < b.Origin
	}
	return a.Epoch < b.Epoch
}

// String summarizes the delta for logs and diagnostics.
func (d Delta) String() string {
	switch d.Op {
	case OpAddSynonym:
		return fmt.Sprintf("%s[%s: %s←%v]", d.Op, d.ID(), d.Root, d.Terms)
	case OpAddConcept:
		return fmt.Sprintf("%s[%s: %s]", d.Op, d.ID(), d.Term)
	case OpAddIsA:
		return fmt.Sprintf("%s[%s: %s is-a %s]", d.Op, d.ID(), d.Child, d.Parent)
	case OpAddMapping:
		name := "?"
		if d.Map != nil {
			name = d.Map.Name
		}
		return fmt.Sprintf("%s[%s: %s]", d.Op, d.ID(), name)
	case OpRetire:
		return fmt.Sprintf("%s[%s: %s]", d.Op, d.ID(), d.Name)
	}
	return fmt.Sprintf("%s[%s]", d.Op, d.ID())
}
