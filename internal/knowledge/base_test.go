package knowledge

import (
	"math/rand"
	"testing"

	"stopss/internal/message"
	"stopss/internal/semantic"
)

func stamp(origin, epoch string, seq uint64, d Delta) Delta {
	d.Origin, d.Epoch, d.Seq = origin, epoch, seq
	return d
}

func testDeltas() []Delta {
	return []Delta{
		stamp("a", "e1", 1, Delta{Op: OpAddSynonym, Root: "position", Terms: []string{"job", "post"}}),
		stamp("a", "e1", 2, Delta{Op: OpAddIsA, Child: "sedan", Parent: "car"}),
		stamp("a", "e1", 3, Delta{Op: OpAddConcept, Term: "vehicle"}),
		stamp("b", "e9", 1, Delta{Op: OpAddSynonym, Root: "salary", Terms: []string{"pay"}}),
		stamp("b", "e9", 2, Delta{Op: OpAddIsA, Child: "car", Parent: "vehicle"}),
		stamp("b", "e9", 3, Delta{Op: OpAddMapping, Map: &MapDecl{
			Name: "m1", Attr: "position", Match: message.String("mainframe developer"),
			Derived: []DerivedPair{{Attr: "skill", Val: message.String("COBOL")}},
		}}),
		stamp("b", "e9", 4, Delta{Op: OpRetire, Name: "m1"}),
		// Deterministically rejected: cycle with a→e1/2 + b→e9/2. Seq 5
		// places it after both edges in the sequence-major merge order,
		// so every arrival order folds the forward edges first and
		// rejects this one.
		stamp("c", "e5", 5, Delta{Op: OpAddIsA, Child: "vehicle", Parent: "sedan"}),
	}
}

func applyAll(t *testing.T, b *Base, ds []Delta) {
	t.Helper()
	for _, d := range ds {
		if _, err := b.Apply(d); err != nil {
			t.Fatalf("apply %s: %v", d, err)
		}
	}
}

// TestConvergenceUnderPermutation: every arrival order yields the same
// digest and the same semantic state.
func TestConvergenceUnderPermutation(t *testing.T) {
	ref := NewBase(nil, nil, nil)
	applyAll(t, ref, testDeltas())
	want := ref.Version()
	if want.Rejected != 1 {
		t.Fatalf("reference rejected = %d, want 1", want.Rejected)
	}

	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		ds := testDeltas()
		rng.Shuffle(len(ds), func(i, j int) { ds[i], ds[j] = ds[j], ds[i] })
		b := NewBase(nil, nil, nil)
		applyAll(t, b, ds)
		got := b.Version()
		if got.Digest != want.Digest || got.Deltas != want.Deltas || got.Rejected != want.Rejected {
			t.Fatalf("trial %d: version %+v, want %+v (order %v)", trial, got, want, ds)
		}
		// Semantic state identical, not just digests.
		st := b.Stage(semantic.FullConfig())
		res := st.ProcessEvent(message.E("job", "dev", "sedan", "x"))
		root := res.Events[0]
		if !root.Has("position") {
			t.Fatalf("trial %d: synonym not applied: %v", trial, root)
		}
		foundVehicle := false
		for _, ev := range res.Events {
			if ev.Has("vehicle") {
				foundVehicle = true
			}
		}
		if !foundVehicle {
			t.Fatalf("trial %d: transitive hierarchy not applied", trial)
		}
		if st.Mappings().Has("m1") {
			t.Fatalf("trial %d: retired mapping still registered", trial)
		}
	}
}

// TestAddMappingReplaces: add_mapping supersedes an equal-name
// function — from genesis or an earlier delta — in every arrival
// order. Replace semantics keep a changed mapping one self-contained
// delta; the retire/add pair it replaces could fold reversed under
// content-hash stamping (FileStamp), rejecting the add and then
// retiring the mapping outright.
func TestAddMappingReplaces(t *testing.T) {
	decl := func(attr string, val string) *MapDecl {
		return &MapDecl{
			Name: "m", Attr: "position", Match: message.String("mainframe developer"),
			Derived: []DerivedPair{{Attr: attr, Val: message.String(val)}},
		}
	}
	fires := func(t *testing.T, b *Base, attr string) bool {
		t.Helper()
		st := b.Stage(semantic.FullConfig())
		for _, ev := range st.ProcessEvent(message.E("position", "mainframe developer")).Events {
			if ev.Has(attr) {
				return true
			}
		}
		return false
	}

	// Genesis function replaced by a delta.
	maps := semantic.NewMappings()
	if err := maps.Add(decl("era", "1960-1980").Func()); err != nil {
		t.Fatal(err)
	}
	b := NewBase(nil, nil, maps)
	out, err := b.Apply(stamp("a", "e1", 1, Delta{Op: OpAddMapping, Map: decl("skill", "COBOL")}))
	if err != nil || out.Rejected || !out.Changed {
		t.Fatalf("replacing genesis mapping: %+v, %v", out, err)
	}
	if !fires(t, b, "skill") || fires(t, b, "era") {
		t.Fatal("genesis mapping not replaced")
	}

	// Earlier-delta function replaced, in both arrival orders (origin
	// "a" folds canonically before "b", so "b"'s version must win
	// regardless of which arrives first).
	d1 := stamp("a", "e1", 1, Delta{Op: OpAddMapping, Map: decl("era", "1960-1980")})
	d2 := stamp("b", "e1", 1, Delta{Op: OpAddMapping, Map: decl("skill", "COBOL")})
	var digests []string
	for _, order := range [][]Delta{{d1, d2}, {d2, d1}} {
		b := NewBase(nil, nil, nil)
		applyAll(t, b, order)
		v := b.Version()
		if v.Rejected != 0 {
			t.Fatalf("order %v: %d rejections, want 0", order, v.Rejected)
		}
		if !fires(t, b, "skill") || fires(t, b, "era") {
			t.Fatalf("order %v: canonical-last mapping version not live", order)
		}
		digests = append(digests, v.Digest)
	}
	if digests[0] != digests[1] {
		t.Fatalf("digests diverged across arrival orders: %v", digests)
	}
}

func TestDuplicateAndWatermarks(t *testing.T) {
	b := NewBase(nil, nil, nil)
	d := testDeltas()[0]
	out, err := b.Apply(d)
	if err != nil || !out.Applied || !out.Changed {
		t.Fatalf("first apply: %+v, %v", out, err)
	}
	if got := out.Affected; len(got) != 2 || got[0] != "job" || got[1] != "post" {
		t.Fatalf("affected = %v, want [job post]", got)
	}
	out, err = b.Apply(d)
	if err != nil || !out.Duplicate || out.Applied {
		t.Fatalf("duplicate apply: %+v, %v", out, err)
	}
	v := b.Version()
	if v.Deltas != 1 || v.Origins["a#e1"] != 1 {
		t.Fatalf("version after dup: %+v", v)
	}
}

func TestRejectionIsRecordedButInert(t *testing.T) {
	b := NewBase(nil, nil, nil)
	applyAll(t, b, []Delta{
		stamp("a", "e1", 1, Delta{Op: OpAddSynonym, Root: "position", Terms: []string{"job"}}),
	})
	// "job" is already a member of "position"; re-rooting must reject.
	out, err := b.Apply(stamp("a", "e1", 2, Delta{Op: OpAddSynonym, Root: "job", Terms: []string{"gig"}}))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Applied || !out.Rejected || out.Changed {
		t.Fatalf("conflicting synonym: %+v", out)
	}
	v := b.Version()
	if v.Deltas != 2 || v.Rejected != 1 {
		t.Fatalf("version: %+v", v)
	}
	// The rejected delta left no partial state behind.
	if b.syn.Known("gig") {
		t.Fatal("rejected delta partially applied")
	}
}

func TestGenesisIsNeverMutated(t *testing.T) {
	syn := semantic.NewSynonyms()
	if err := syn.AddGroup("position", "job"); err != nil {
		t.Fatal(err)
	}
	b := NewBase(syn, nil, nil)
	st := b.Stage(semantic.FullConfig())
	applyAll(t, b, []Delta{
		stamp("a", "e1", 2, Delta{Op: OpAddSynonym, Root: "salary", Terms: []string{"pay"}}),
		// Lower sequence number: out of merge order, forces a refold.
		stamp("a", "e0", 1, Delta{Op: OpAddConcept, Term: "car"}),
	})
	if syn.Known("pay") {
		t.Fatal("genesis synonyms were mutated")
	}
	// The stage built before the updates still serves the old snapshot
	// (engines install new snapshots explicitly via Replace).
	if got, _ := st.Synonyms().Canonical("pay"); got != "pay" {
		t.Fatalf("old stage snapshot changed: pay → %q", got)
	}
	if v := b.Version(); v.Rebuilds != 1 || v.Deltas != 2 {
		t.Fatalf("version: %+v", v)
	}
	// Genesis knowledge is still part of the current state.
	b.mu.Lock()
	cur := b.syn
	b.mu.Unlock()
	if got, _ := cur.Canonical("job"); got != "position" {
		t.Fatalf("genesis group lost after refold: job → %q", got)
	}
}

func TestOriginStamping(t *testing.T) {
	o := NewOrigin("b1")
	d1 := o.Stamp(Delta{Op: OpAddConcept, Term: "x"})
	d2 := o.Stamp(Delta{Op: OpAddConcept, Term: "y"})
	if !d1.Stamped() || !d2.Stamped() {
		t.Fatalf("stamp failed: %v %v", d1, d2)
	}
	if d1.Seq != 1 || d2.Seq != 2 || d1.Epoch != d2.Epoch || d1.Origin != "b1" {
		t.Fatalf("stamps: %v %v", d1, d2)
	}
	if again := o.Stamp(d1); again.Seq != 1 {
		t.Fatalf("re-stamping changed identity: %v", again)
	}
	o2 := NewOrigin("b1")
	if o2.Stamp(Delta{Op: OpAddConcept, Term: "z"}).Epoch == d1.Epoch {
		t.Fatal("two incarnations share an epoch")
	}
}

func TestApplyUnstampedFails(t *testing.T) {
	b := NewBase(nil, nil, nil)
	if _, err := b.Apply(Delta{Op: OpAddConcept, Term: "x"}); err == nil {
		t.Fatal("unstamped delta applied")
	}
}
