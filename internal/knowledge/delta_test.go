package knowledge

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"stopss/internal/message"
)

func TestDeltaRoundTrip(t *testing.T) {
	for _, d := range testDeltas() {
		enc, err := Encode(d)
		if err != nil {
			t.Fatalf("encode %s: %v", d, err)
		}
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("decode %s: %v", d, err)
		}
		enc2, err := Encode(got)
		if err != nil {
			t.Fatalf("re-encode %s: %v", d, err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("round trip not stable:\n  %s\n  %s", enc, enc2)
		}
		if got.ID() != d.ID() {
			t.Fatalf("ID changed: %s → %s", d.ID(), got.ID())
		}
	}
}

func TestDeltaValidate(t *testing.T) {
	bad := []Delta{
		{Op: "frobnicate"},
		{Op: OpAddSynonym},
		{Op: OpAddSynonym, Root: "r", Terms: []string{""}},
		{Op: OpAddConcept},
		{Op: OpAddIsA, Child: "x"},
		{Op: OpAddIsA, Child: "x", Parent: "x"},
		{Op: OpAddMapping},
		{Op: OpAddMapping, Map: &MapDecl{Name: "m"}},
		{Op: OpAddMapping, Map: &MapDecl{Name: "m", Attr: "a"}},
		{Op: OpAddMapping, Map: &MapDecl{Name: "m", Attr: "a",
			Derived: []DerivedPair{{Attr: "", Val: message.String("v")}}}},
		{Op: OpRetire},
	}
	for _, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("delta %+v validated", d)
		}
	}
}

func TestMapDeclFunc(t *testing.T) {
	decl := MapDecl{
		Name: "m", Attr: "position", Match: message.String("mainframe developer"),
		Derived: []DerivedPair{
			{Attr: "skill", Val: message.String("COBOL")},
			{Attr: "era", Val: message.String("1960-1980")},
		},
	}
	f := decl.Func()
	if f.Name() != "m" {
		t.Fatalf("name %q", f.Name())
	}
	pairs := f.Apply(message.E("position", "mainframe developer"))
	if len(pairs) != 2 || pairs[0].Attr != "skill" || pairs[1].Attr != "era" {
		t.Fatalf("apply: %v", pairs)
	}
	if got := f.Apply(message.E("position", "web developer")); got != nil {
		t.Fatalf("non-matching apply: %v", got)
	}
}

func TestFileStampIdempotent(t *testing.T) {
	d := Delta{Op: OpAddSynonym, Root: "position", Terms: []string{"job"}}
	s1, err := FileStamp(3, d)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := FileStamp(3, d)
	if err != nil {
		t.Fatal(err)
	}
	if s1.ID() != s2.ID() {
		t.Fatalf("same content+line stamped differently: %s vs %s", s1.ID(), s2.ID())
	}
	if !s1.Stamped() || s1.Seq != 3 || s1.Origin != "odl" {
		t.Fatalf("stamp: %+v", s1)
	}
	// Different line or content → different identity.
	if s3, _ := FileStamp(4, d); s3.ID() == s1.ID() {
		t.Fatal("different line, same ID")
	}
	other := d
	other.Terms = []string{"gig"}
	if s4, _ := FileStamp(3, other); s4.ID() == s1.ID() {
		t.Fatal("different content, same ID")
	}
	// Replaying the stamped delta into a base is a duplicate, not a
	// fresh append — the property the kb-watch restart path relies on.
	b := NewBase(nil, nil, nil)
	if out, err := b.Apply(s1); err != nil || !out.Applied {
		t.Fatalf("first apply: %+v, %v", out, err)
	}
	if out, err := b.Apply(s2); err != nil || !out.Duplicate {
		t.Fatalf("replay: %+v, %v", out, err)
	}
	// Pre-stamped deltas pass through untouched.
	pre := stamp("b1", "e1", 9, d)
	if got, err := FileStamp(1, pre); err != nil || got.ID() != pre.ID() {
		t.Fatalf("pre-stamped delta restamped: %v, %v", got, err)
	}
	if _, err := FileStamp(0, d); err == nil {
		t.Fatal("line 0 accepted (Stamped() would be false)")
	}
}

func TestOversizedDeltaRefused(t *testing.T) {
	terms := make([]string, 0, MaxDeltaBytes/8)
	for i := 0; len(terms) < cap(terms); i++ {
		terms = append(terms, fmt.Sprintf("term%06d", i))
	}
	d := stamp("a", "e1", 1, Delta{Op: OpAddSynonym, Root: "r", Terms: terms})
	b := NewBase(nil, nil, nil)
	if _, err := b.Apply(d); err == nil {
		t.Fatal("oversized delta applied")
	}
	if b.Len() != 0 {
		t.Fatal("oversized delta logged")
	}
	enc, _ := json.Marshal(d)
	if _, err := Decode(enc); err == nil {
		t.Fatal("oversized delta decoded")
	}
}

// FuzzKBDelta fuzzes the delta codec: any input that decodes must
// re-encode and decode to the same delta (stable round trip), and the
// codec must never panic.
func FuzzKBDelta(f *testing.F) {
	for _, d := range testDeltas() {
		enc, err := Encode(d)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Add([]byte(`{"op":"add_synonym","root":"r","terms":["a","b"]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Decode(data)
		if err != nil {
			return
		}
		enc, err := Encode(d)
		if err != nil {
			t.Fatalf("decoded delta %s does not re-encode: %v", d, err)
		}
		d2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-encoded delta does not decode: %v\n%s", err, enc)
		}
		enc2, err := Encode(d2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("unstable round trip:\n  %s\n  %s", enc, enc2)
		}
	})
}
