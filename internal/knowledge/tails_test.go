package knowledge

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"stopss/internal/message"
	"stopss/internal/semantic"
)

// multiOriginDeltas builds per-origin in-order delta streams with
// cross-origin interactions: synonyms (including a deterministic
// conflict), hierarchy edges and a mapping lifecycle, so refolds
// exercise rejection re-derivation, not just clean appends.
func multiOriginDeltas() [][]Delta {
	streamA := []Delta{
		stamp("a", "e1", 1, Delta{Op: OpAddSynonym, Root: "position", Terms: []string{"job"}}),
		stamp("a", "e1", 2, Delta{Op: OpAddIsA, Child: "sedan", Parent: "car"}),
		stamp("a", "e1", 3, Delta{Op: OpAddSynonym, Root: "salary", Terms: []string{"pay", "wage"}}),
		stamp("a", "e1", 4, Delta{Op: OpAddConcept, Term: "vehicle"}),
	}
	streamB := []Delta{
		stamp("b", "e9", 1, Delta{Op: OpAddSynonym, Root: "position", Terms: []string{"post"}}),
		// Conflicts with a#e1/1 ("job" already rooted at "position"):
		// rejected wherever it folds after it, which the sequence-major
		// merge makes deterministic (seq 2 of b folds after seq 1 of a).
		stamp("b", "e9", 2, Delta{Op: OpAddSynonym, Root: "gig", Terms: []string{"job"}}),
		stamp("b", "e9", 3, Delta{Op: OpAddIsA, Child: "car", Parent: "vehicle"}),
		stamp("b", "e9", 4, Delta{Op: OpAddMapping, Map: &MapDecl{
			Name: "m1", Attr: "position", Match: message.String("mainframe developer"),
			Derived: []DerivedPair{{Attr: "skill", Val: message.String("COBOL")}},
		}}),
	}
	streamC := []Delta{
		stamp("c", "e5", 1, Delta{Op: OpAddConcept, Term: "degree"}),
		stamp("c", "e5", 2, Delta{Op: OpAddIsA, Child: "PhD", Parent: "degree"}),
		stamp("c", "e5", 4, Delta{Op: OpAddSynonym, Root: "school", Terms: []string{"university"}}),
		// Seq 5 merges after b#e9/4's add_mapping, so the retire folds
		// over a registered function in every arrival order.
		stamp("c", "e5", 5, Delta{Op: OpRetire, Name: "m1"}),
	}
	return [][]Delta{streamA, streamB, streamC}
}

// stateProbe summarizes the semantic state for cross-arrival-order
// comparison: canonical forms, hierarchy reachability, live mappings.
func stateProbe(t *testing.T, b *Base) string {
	t.Helper()
	st := b.Stage(semantic.FullConfig())
	probe := ""
	for _, term := range []string{"job", "post", "pay", "wage", "gig", "university"} {
		c, _ := st.Synonyms().Canonical(term)
		probe += term + "→" + c + ";"
	}
	probe += fmt.Sprintf("sedan-is-vehicle=%v;", st.Hierarchy().IsA("sedan", "vehicle"))
	probe += fmt.Sprintf("m1=%v", st.Mappings().Has("m1"))
	return probe
}

// applyCounting applies deltas in the given arrival order, returning
// how many arrivals were out of merge order (sorted before the then
// current log tail) — the number of refolds the base is allowed.
func applyCounting(t *testing.T, b *Base, ds []Delta) (outOfOrder uint64) {
	t.Helper()
	var tail Delta
	for i, d := range ds {
		if i > 0 && less(d, tail) {
			outOfOrder++
		}
		if i == 0 || less(tail, d) {
			tail = d
		}
		if _, err := b.Apply(d); err != nil {
			t.Fatalf("apply %s: %v", d, err)
		}
	}
	return outOfOrder
}

// TestMultiOriginArrivalOrderProperty is the bounded-convergence
// property of the tail merge: for every interleaving of per-origin
// in-order streams — and for fully shuffled arrival orders too — the
// digest and semantic state are identical, and the refold count equals
// EXACTLY the number of out-of-merge-order arrivals. In-order arrivals
// never refold; each out-of-order arrival refolds once.
func TestMultiOriginArrivalOrderProperty(t *testing.T) {
	streams := multiOriginDeltas()
	var canonical []Delta
	for _, s := range streams {
		canonical = append(canonical, s...)
	}
	// Reference: canonical (merge-order) arrival — zero refolds.
	ref := NewBase(nil, nil, nil)
	if ooo := applyCounting(t, ref, sortedCopy(canonical)); ooo != 0 {
		t.Fatalf("canonical order counted %d out-of-order arrivals", ooo)
	}
	want := ref.Version()
	if want.Rebuilds != 0 {
		t.Fatalf("canonical-order arrival refolded: %+v", want)
	}
	if want.Rejected != 1 {
		t.Fatalf("reference rejected = %d, want 1 (the b#e9/2 conflict)", want.Rejected)
	}
	wantProbe := stateProbe(t, ref)

	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		var ds []Delta
		if trial%2 == 0 {
			// Realistic replication: each origin's stream arrives in
			// order, streams interleave randomly.
			ds = interleave(rng, streams)
		} else {
			// Adversarial: fully shuffled, per-origin order violated.
			ds = append([]Delta(nil), canonical...)
			rng.Shuffle(len(ds), func(i, j int) { ds[i], ds[j] = ds[j], ds[i] })
		}
		b := NewBase(nil, nil, nil)
		ooo := applyCounting(t, b, ds)
		got := b.Version()
		if got.Digest != want.Digest || got.Deltas != want.Deltas || got.Rejected != want.Rejected {
			t.Fatalf("trial %d: version %+v, want %+v (order %v)", trial, got, want, ds)
		}
		if got.Rebuilds != ooo {
			t.Fatalf("trial %d: %d refolds for %d out-of-order arrivals (order %v)",
				trial, got.Rebuilds, ooo, ds)
		}
		if probe := stateProbe(t, b); probe != wantProbe {
			t.Fatalf("trial %d: state diverged:\n  %s\n  %s", trial, probe, wantProbe)
		}
	}
}

func sortedCopy(ds []Delta) []Delta {
	out := append([]Delta(nil), ds...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && less(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// interleave merges the streams in random order while preserving each
// stream's internal order (the arrival pattern overlay flooding
// actually produces).
func interleave(rng *rand.Rand, streams [][]Delta) []Delta {
	idx := make([]int, len(streams))
	var out []Delta
	for {
		live := make([]int, 0, len(streams))
		for s := range streams {
			if idx[s] < len(streams[s]) {
				live = append(live, s)
			}
		}
		if len(live) == 0 {
			return out
		}
		s := live[rng.Intn(len(live))]
		out = append(out, streams[s][idx[s]])
		idx[s]++
	}
}

// TestRefoldBoundedByCheckpoints: an out-of-order arrival into a long
// log refolds only from the nearest checkpoint, not from genesis — the
// work is bounded by the out-of-order window plus one checkpoint
// interval, independent of log length.
func TestRefoldBoundedByCheckpoints(t *testing.T) {
	b := NewBase(nil, nil, nil)
	const n = 200
	for i := 1; i <= n; i++ {
		d := stamp("b", "e1", uint64(i), Delta{Op: OpAddConcept, Term: fmt.Sprintf("c%d", i)})
		if out, err := b.Apply(d); err != nil || out.Refolded {
			t.Fatalf("in-order apply %d: %+v, %v", i, out, err)
		}
	}
	// Origin "a" is 5 sequence numbers behind the tail: the insertion
	// point is near the end, and the refold must start at the last
	// checkpoint before it.
	late := stamp("a", "e1", uint64(n-5), Delta{Op: OpAddSynonym, Root: "position", Terms: []string{"job"}})
	out, err := b.Apply(late)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Refolded || !out.Changed || out.Rejected {
		t.Fatalf("late arrival: %+v", out)
	}
	if !reflect.DeepEqual(out.Affected, []string{"job"}) {
		t.Fatalf("affected = %v, want [job]", out.Affected)
	}
	v := b.Version()
	if v.Rebuilds != 1 {
		t.Fatalf("rebuilds = %d, want 1", v.Rebuilds)
	}
	if max := uint64(kbCheckpointEvery + 8); v.Refolded > max {
		t.Fatalf("refolded %d deltas, want ≤ %d (checkpointed suffix, not genesis)", v.Refolded, max)
	}

	// The checkpoint-resumed fold must agree exactly with a clean fold
	// of the same set in canonical order.
	ref := NewBase(nil, nil, nil)
	applyAll(t, ref, sortedCopy(b.Log()))
	if rv := ref.Version(); rv.Digest != v.Digest || rv.Rejected != v.Rejected {
		t.Fatalf("checkpoint fold diverged from clean fold: %+v vs %+v", v, rv)
	}
	if got, want := stateProbe(t, b), stateProbe(t, ref); got != want {
		t.Fatalf("state diverged:\n  %s\n  %s", got, want)
	}
}

// TestRefoldOutcomeDiff pins the Outcome semantics of the refold path:
// the changed-term set is the old/new canonical diff (including terms
// re-rooted by a flipped earlier delta), a rejected insertion that
// flips nothing reports Changed=false, and an insertion that flips an
// earlier delta's outcome reports every re-rooted term.
func TestRefoldOutcomeDiff(t *testing.T) {
	// Rejected out-of-order insertion, no flips: state identical.
	b := NewBase(nil, nil, nil)
	applyAll(t, b, []Delta{
		stamp("b", "e1", 1, Delta{Op: OpAddSynonym, Root: "position", Terms: []string{"job"}}),
		stamp("b", "e1", 2, Delta{Op: OpAddConcept, Term: "car"}),
	})
	// Origin "z" sorts after "b" at sequence 1, so the insertion folds
	// AFTER the position/job group exists and rejects deterministically
	// (inserting as origin "a" would fold first, apply, and flip the
	// other delta instead — the second half of this test).
	out, err := b.Apply(stamp("z", "e1", 1, Delta{Op: OpAddSynonym, Root: "job", Terms: []string{"gig"}}))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Refolded || !out.Rejected || out.Changed || len(out.Affected) != 0 {
		t.Fatalf("rejected refold: %+v", out)
	}

	// Flip: origin c rooted "w" under "q"; an earlier-merging delta
	// from origin a re-roots "w" first, so c's delta now rejects. The
	// diff must list both the directly added term and the re-rooted one.
	b2 := NewBase(nil, nil, nil)
	applyAll(t, b2, []Delta{
		stamp("c", "e1", 50, Delta{Op: OpAddSynonym, Root: "q", Terms: []string{"w"}}),
	})
	out, err = b2.Apply(stamp("a", "e1", 45, Delta{Op: OpAddSynonym, Root: "w", Terms: []string{"v"}}))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Refolded || out.Rejected || !out.Changed {
		t.Fatalf("flipping refold: %+v", out)
	}
	if !reflect.DeepEqual(out.Affected, []string{"v", "w"}) {
		t.Fatalf("affected = %v, want [v w]", out.Affected)
	}
	if v := b2.Version(); v.Rejected != 1 {
		t.Fatalf("flipped delta not rejected: %+v", v)
	}
}

// TestCheckpointRetentionBounded: checkpoint memory is capped at
// kbMaxCheckpoints snapshots no matter how long the log grows, and an
// arrival older than the retained window still converges — it just
// pays a genesis refold (cost, not correctness).
func TestCheckpointRetentionBounded(t *testing.T) {
	b := NewBase(nil, nil, nil)
	const n = 40 * kbCheckpointEvery // would pin 40 checkpoints uncapped
	for i := 1; i <= n; i++ {
		d := stamp("b", "e1", uint64(i), Delta{Op: OpAddConcept, Term: fmt.Sprintf("c%d", i)})
		if _, err := b.Apply(d); err != nil {
			t.Fatal(err)
		}
	}
	b.mu.Lock()
	pinned := len(b.cps)
	oldest := 0
	if pinned > 0 {
		oldest = b.cps[0].idx
	}
	b.mu.Unlock()
	if pinned > kbMaxCheckpoints {
		t.Fatalf("%d checkpoints retained, cap is %d", pinned, kbMaxCheckpoints)
	}
	if oldest <= n-kbMaxCheckpoints*kbCheckpointEvery-kbCheckpointEvery {
		t.Fatalf("oldest retained checkpoint at %d; eviction should keep only the newest window", oldest)
	}

	// Far older than any retained checkpoint: genesis refold, exact
	// convergence with a clean canonical fold.
	deep := stamp("a", "e1", 1, Delta{Op: OpAddSynonym, Root: "position", Terms: []string{"job"}})
	out, err := b.Apply(deep)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Refolded || !out.Changed || !reflect.DeepEqual(out.Affected, []string{"job"}) {
		t.Fatalf("deep arrival: %+v", out)
	}
	v := b.Version()
	if v.Refolded < uint64(n) {
		t.Fatalf("deep arrival refolded %d deltas, expected a genesis refold of ≥%d", v.Refolded, n)
	}
	ref := NewBase(nil, nil, nil)
	applyAll(t, ref, sortedCopy(b.Log()))
	if rv := ref.Version(); rv.Digest != v.Digest {
		t.Fatalf("deep refold diverged: %s vs %s", v.Digest, rv.Digest)
	}
}
