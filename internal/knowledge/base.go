package knowledge

import (
	cryptorand "crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"stopss/internal/semantic"
)

// Origin mints delta identities for one broker incarnation: a fixed
// (name, epoch) pair and a monotonically increasing sequence. A broker
// that restarts creates a fresh Origin, so its new deltas can never be
// confused with (or suppressed by) those of its previous life — the
// same scheme overlay publication IDs use.
type Origin struct {
	name  string
	epoch string
	seq   atomic.Uint64
}

// NewOrigin creates an origin for the given broker name with a fresh
// random epoch.
func NewOrigin(name string) *Origin {
	return &Origin{name: name, epoch: newEpoch()}
}

// Name reports the origin's broker name.
func (o *Origin) Name() string { return o.name }

// Stamp fills the delta's identity with this origin's name, epoch and
// next sequence number. Already-stamped deltas are returned unchanged.
func (o *Origin) Stamp(d Delta) Delta {
	if d.Stamped() {
		return d
	}
	d.Origin = o.name
	d.Epoch = o.epoch
	d.Seq = o.seq.Add(1)
	return d
}

// newEpoch returns an 8-hex-char incarnation tag (shared scheme with
// overlay publication epochs).
func newEpoch() string {
	var b [4]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		return fmt.Sprintf("e%d", epochFallback.Add(1))
	}
	return hex.EncodeToString(b[:])
}

var epochFallback atomic.Uint64

// Version identifies the state of a Base. Two bases with equal Digests
// hold identical delta logs and therefore identical semantic state —
// the convergence check of the federation.
type Version struct {
	// Deltas counts every delta in the log, including rejected ones.
	Deltas int `json:"deltas"`
	// Rejected counts deltas whose operation failed deterministically
	// (synonym conflict, hierarchy cycle, retiring an unknown mapping).
	// They stay in the log — peers must still receive them for digests
	// to converge — but contribute nothing to the semantic state.
	Rejected int `json:"rejected"`
	// Rebuilds counts out-of-order arrivals that forced a full fold
	// from genesis (an efficiency, not a correctness, signal).
	Rebuilds uint64 `json:"rebuilds"`
	// Digest is an order-sensitive FNV-64a hash over the canonical log.
	Digest string `json:"digest"`
	// Origins maps "origin#epoch" to the highest sequence applied from
	// that incarnation — the per-origin watermark operators read to
	// locate federation knowledge skew.
	Origins map[string]uint64 `json:"origins,omitempty"`
}

// Outcome reports what one Apply did.
type Outcome struct {
	// Applied: the delta was new and is now part of the log (even if
	// its operation was rejected). Replication forwards exactly the
	// applied deltas.
	Applied bool
	// Duplicate: the delta was already in the log; nothing changed.
	Duplicate bool
	// Rejected: the delta is in the log but its operation failed
	// deterministically; the semantic state did not change.
	Rejected bool
	// RejectReason carries the rejection error text (diagnostics only).
	RejectReason string
	// Rebuilt: the delta arrived out of canonical order and the state
	// was re-folded from genesis. Affected is meaningless in this case;
	// callers must re-index fully.
	Rebuilt bool
	// Changed: the semantic structures differ from before the call;
	// Synonyms/Hierarchy/Mappings hold the fresh snapshot to install.
	Changed bool
	// Affected lists terms whose canonical form changed — the
	// previously-unknown member terms of a synonym delta. Only
	// subscriptions mentioning one of these need re-indexing
	// (hierarchy and mapping deltas never change indexed subscription
	// forms, so for them Affected is empty). Valid only when Changed
	// and not Rebuilt.
	Affected []string

	Synonyms  *semantic.Synonyms
	Hierarchy *semantic.Hierarchy
	Mappings  *semantic.Mappings
}

// Base is one broker's replicated knowledge base: an append-only log of
// deltas over a fixed genesis (the ontology every broker was started
// with), folded into semantic structures in one canonical order.
//
// Convergence argument: (1) delta IDs are unique and deltas immutable,
// so the log is a grow-only set; (2) the fold order (knowledge.less) is
// a total order independent of arrival order; (3) each operation either
// applies or is rejected deterministically as a function of the folded
// prefix alone. Hence two bases with the same genesis and the same
// delta set hold identical structures and equal digests, no matter how
// replication interleaved. Out-of-order arrivals re-fold from genesis;
// in-order arrivals (the overwhelmingly common case — one origin
// feeding sequential updates) take an incremental clone-and-apply path.
//
// A Base never mutates structures it has handed out: Apply clones the
// current snapshot, mutates the clone, and publishes it. Engines swap
// the fresh snapshot into their semantic.Stage (see Stage.Replace).
type Base struct {
	mu sync.Mutex

	genSyn  *semantic.Synonyms
	genHier *semantic.Hierarchy
	genMaps *semantic.Mappings

	syn  *semantic.Synonyms
	hier *semantic.Hierarchy
	maps *semantic.Mappings

	log    []Delta  // canonical order
	encLog [][]byte // cached encodings, parallel to log
	// digest is the rolling order-sensitive FNV-64a over encLog,
	// maintained incrementally on in-order appends (the common case)
	// and recomputed from the cached encodings on a refold — Version()
	// never re-marshals the log.
	digest   uint64
	origins  map[string]uint64 // "origin#epoch" → max seq
	applied  map[string]bool
	rejected map[string]string // delta ID → reason
	rebuilds uint64
}

// NewBase builds a knowledge base over the given genesis structures
// (nil arguments mean empty). The structures are also the initial
// current state, so build the engine's semantic.Stage over the same
// pointers (Base.Stage does exactly that) — they are never mutated,
// only replaced.
func NewBase(syn *semantic.Synonyms, hier *semantic.Hierarchy, maps *semantic.Mappings) *Base {
	if syn == nil {
		syn = semantic.NewSynonyms()
	}
	if hier == nil {
		hier = semantic.NewHierarchy()
	}
	if maps == nil {
		maps = semantic.NewMappings()
	}
	return &Base{
		genSyn: syn, genHier: hier, genMaps: maps,
		syn: syn, hier: hier, maps: maps,
		digest:   fnvOffset,
		origins:  make(map[string]uint64),
		applied:  make(map[string]bool),
		rejected: make(map[string]string),
	}
}

// Streaming FNV-64a, kept as a plain uint64 so the digest can be
// carried incrementally across appends.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// fnvSum folds data into a running FNV-64a state.
func fnvSum(h uint64, data []byte) uint64 {
	for _, b := range data {
		h ^= uint64(b)
		h *= fnvPrime
	}
	return h
}

// fnvAbsorb folds one log record into the rolling digest: the record
// bytes plus a '\n' separator, making the digest length-prefixed-free
// yet record-boundary-sensitive.
func fnvAbsorb(h uint64, data []byte) uint64 {
	h = fnvSum(h, data)
	h ^= '\n'
	h *= fnvPrime
	return h
}

// Stage builds a semantic stage over the base's current structures;
// the stage stays coherent with the base as long as every Apply outcome
// is installed via Stage.Replace (core.Engine.ApplyKnowledge does).
func (b *Base) Stage(cfg semantic.Config) *semantic.Stage {
	b.mu.Lock()
	defer b.mu.Unlock()
	return semantic.NewStage(b.syn, b.hier, b.maps, cfg)
}

// Apply folds one delta into the base. The returned error reports
// malformed input (unstamped or invalid payload); operation-level
// failures are NOT errors — they are deterministic rejections recorded
// in the log (see Outcome.Rejected).
func (b *Base) Apply(d Delta) (Outcome, error) {
	if !d.Stamped() {
		return Outcome{}, fmt.Errorf("knowledge: applying unstamped delta %s", d)
	}
	if err := d.Validate(); err != nil {
		return Outcome{}, err
	}
	enc, err := Encode(d)
	if err != nil {
		return Outcome{}, err
	}
	if len(enc) > MaxDeltaBytes {
		// Oversized deltas are refused as malformed input, never
		// logged: a logged delta must be guaranteed to fit an overlay
		// frame, or it would apply locally yet be unreplicable —
		// permanent divergence plus a link flap on every sync replay.
		return Outcome{}, fmt.Errorf("knowledge: delta %s encodes to %d bytes (max %d)", d.ID(), len(enc), MaxDeltaBytes)
	}
	b.mu.Lock()
	defer b.mu.Unlock()

	id := d.ID()
	if b.applied[id] {
		return Outcome{Duplicate: true}, nil
	}
	b.applied[id] = true
	key := d.Origin + "#" + d.Epoch
	if d.Seq > b.origins[key] {
		b.origins[key] = d.Seq
	}

	var out Outcome
	out.Applied = true
	if n := len(b.log); n == 0 || less(b.log[n-1], d) {
		// In order: incremental clone-and-apply, digest carried forward.
		b.log = append(b.log, d)
		b.encLog = append(b.encLog, enc)
		b.digest = fnvAbsorb(b.digest, enc)
		syn, hier, maps := b.syn.Clone(), b.hier.Clone(), b.maps.Clone()
		affected, err := applyOp(d, syn, hier, maps)
		if err != nil {
			b.rejected[id] = err.Error()
			out.Rejected = true
			out.RejectReason = err.Error()
			return out, nil
		}
		b.syn, b.hier, b.maps = syn, hier, maps
		out.Changed = true
		out.Affected = affected
	} else {
		// Out of order: insert at the canonical position, re-fold the
		// state from genesis, and recompute the digest from the cached
		// encodings.
		i := sort.Search(len(b.log), func(i int) bool { return less(d, b.log[i]) })
		b.log = append(b.log, Delta{})
		copy(b.log[i+1:], b.log[i:])
		b.log[i] = d
		b.encLog = append(b.encLog, nil)
		copy(b.encLog[i+1:], b.encLog[i:])
		b.encLog[i] = enc
		b.digest = fnvOffset
		for _, e := range b.encLog {
			b.digest = fnvAbsorb(b.digest, e)
		}
		b.refold()
		b.rebuilds++
		out.Rebuilt = true
		out.Changed = true
		out.Rejected = b.rejected[id] != ""
		out.RejectReason = b.rejected[id]
	}
	out.Synonyms, out.Hierarchy, out.Mappings = b.syn, b.hier, b.maps
	return out, nil
}

// refold recomputes the current structures from genesis over the whole
// canonical log, re-deriving the rejection set. Callers hold b.mu.
func (b *Base) refold() {
	syn, hier, maps := b.genSyn.Clone(), b.genHier.Clone(), b.genMaps.Clone()
	b.rejected = make(map[string]string)
	for _, d := range b.log {
		if _, err := applyOp(d, syn, hier, maps); err != nil {
			b.rejected[d.ID()] = err.Error()
		}
	}
	b.syn, b.hier, b.maps = syn, hier, maps
}

// applyOp applies one operation to the given (private, mutable)
// structures. It is atomic: it either fully applies or — after
// pre-validation against the current state — fails without mutating
// anything, so a rejected delta leaves no partial edits behind and the
// fold is deterministic.
func applyOp(d Delta, syn *semantic.Synonyms, hier *semantic.Hierarchy, maps *semantic.Mappings) ([]string, error) {
	switch d.Op {
	case OpAddSynonym:
		if syn.Known(d.Root) && !syn.IsRoot(d.Root) {
			root, _ := syn.Canonical(d.Root)
			return nil, fmt.Errorf("%q is already a synonym of %q and cannot become a root", d.Root, root)
		}
		var affected []string
		for _, t := range d.Terms {
			if t == d.Root {
				continue
			}
			if syn.Known(t) {
				if r, _ := syn.Canonical(t); r != d.Root {
					return nil, fmt.Errorf("%q already maps to root %q, cannot remap to %q", t, r, d.Root)
				}
				continue // already in this group; no-op
			}
			affected = append(affected, t)
		}
		if err := syn.AddGroup(d.Root, d.Terms...); err != nil {
			return nil, err // unreachable after pre-validation; kept as a guard
		}
		return affected, nil

	case OpAddConcept:
		return nil, hier.AddConcept(d.Term)

	case OpAddIsA:
		if hier.IsA(d.Parent, d.Child) {
			return nil, fmt.Errorf("is-a edge %q → %q would create a cycle", d.Child, d.Parent)
		}
		return nil, hier.AddIsA(d.Child, d.Parent)

	case OpAddMapping:
		// Replace semantics: an equal-name mapping (genesis or earlier
		// delta) is superseded, never a rejection. This keeps a changed
		// mapping a single self-contained delta — a retire/add pair
		// would depend on fold order, which for content-hash-stamped
		// logs (FileStamp) is a hash order, not emission order, and the
		// add could fold first, reject, and leave the retire to delete
		// the mapping outright.
		replaced := maps.Remove(d.Map.Name)
		if err := maps.Add(d.Map.Func()); err != nil {
			// Unreachable: Validate guarantees a name, a trigger
			// attribute and derived pairs, and Remove cleared the only
			// other failure (a duplicate name). Guarded so an impossible
			// failure cannot silently half-apply.
			return nil, fmt.Errorf("replacing mapping %q (previous %v): %v", d.Map.Name, replaced, err)
		}
		return nil, nil

	case OpRetire:
		if !maps.Remove(d.Name) {
			return nil, fmt.Errorf("mapping function %q is not registered", d.Name)
		}
		return nil, nil
	}
	return nil, fmt.Errorf("unknown op %q", d.Op)
}

// Version snapshots the base's identity. O(origins), no marshalling:
// the digest is maintained incrementally by Apply.
func (b *Base) Version() Version {
	b.mu.Lock()
	defer b.mu.Unlock()
	v := Version{
		Deltas:   len(b.log),
		Rejected: len(b.rejected),
		Rebuilds: b.rebuilds,
		Digest:   fmt.Sprintf("%016x", b.digest),
		Origins:  make(map[string]uint64, len(b.origins)),
	}
	for k, seq := range b.origins {
		v.Origins[k] = seq
	}
	return v
}

// Log returns the applied delta log in canonical order (a copy). The
// broker persists it in snapshots and replays it onto freshly
// connected overlay links, so a restarted or healed peer catches up by
// ordinary duplicate-suppressed flooding.
func (b *Base) Log() []Delta {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Delta(nil), b.log...)
}

// Len reports the log length.
func (b *Base) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.log)
}
