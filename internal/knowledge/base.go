package knowledge

import (
	cryptorand "crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"stopss/internal/semantic"
)

// Origin mints delta identities for one broker incarnation: a fixed
// (name, epoch) pair and a monotonically increasing sequence. A broker
// that restarts creates a fresh Origin, so its new deltas can never be
// confused with (or suppressed by) those of its previous life — the
// same scheme overlay publication IDs use.
type Origin struct {
	name  string
	epoch string
	seq   atomic.Uint64
}

// NewOrigin creates an origin for the given broker name with a fresh
// random epoch.
func NewOrigin(name string) *Origin {
	return &Origin{name: name, epoch: newEpoch()}
}

// Name reports the origin's broker name.
func (o *Origin) Name() string { return o.name }

// Stamp fills the delta's identity with this origin's name, epoch and
// next sequence number. Already-stamped deltas are returned unchanged.
func (o *Origin) Stamp(d Delta) Delta {
	if d.Stamped() {
		return d
	}
	d.Origin = o.name
	d.Epoch = o.epoch
	d.Seq = o.seq.Add(1)
	return d
}

// newEpoch returns an 8-hex-char incarnation tag (shared scheme with
// overlay publication epochs).
func newEpoch() string {
	var b [4]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		return fmt.Sprintf("e%d", epochFallback.Add(1))
	}
	return hex.EncodeToString(b[:])
}

var epochFallback atomic.Uint64

// Version identifies the state of a Base. Two bases with equal Digests
// hold identical delta logs and therefore identical semantic state —
// the convergence check of the federation.
type Version struct {
	// Deltas counts every delta in the log, including rejected ones.
	Deltas int `json:"deltas"`
	// Rejected counts deltas whose operation failed deterministically
	// (synonym conflict, hierarchy cycle, retiring an unknown mapping).
	// They stay in the log — peers must still receive them for digests
	// to converge — but contribute nothing to the semantic state.
	Rejected int `json:"rejected"`
	// Rebuilds counts arrivals out of merge order, each of which
	// re-folded a bounded log suffix (an efficiency, not a correctness,
	// signal — in-order arrivals never refold).
	Rebuilds uint64 `json:"rebuilds"`
	// Refolded is the cumulative number of delta fold operations those
	// suffix refolds re-executed. Divided by Rebuilds it is the mean
	// refold depth; checkpoints bound it near the out-of-order window,
	// not the log length.
	Refolded uint64 `json:"refolded,omitempty"`
	// Digest is an order-sensitive FNV-64a hash over the canonical log.
	Digest string `json:"digest"`
	// Origins maps "origin#epoch" to the highest sequence applied from
	// that incarnation — the per-origin watermark operators read to
	// locate federation knowledge skew.
	Origins map[string]uint64 `json:"origins,omitempty"`
}

// Outcome reports what one Apply did.
type Outcome struct {
	// Applied: the delta was new and is now part of the log (even if
	// its operation was rejected). Replication forwards exactly the
	// applied deltas.
	Applied bool
	// Duplicate: the delta was already in the log; nothing changed.
	Duplicate bool
	// Rejected: the delta is in the log but its operation failed
	// deterministically; the semantic state did not change.
	Rejected bool
	// RejectReason carries the rejection error text (diagnostics only).
	RejectReason string
	// Refolded: the delta arrived out of merge order and a log suffix
	// was re-folded from the nearest checkpoint. Affected is still
	// exact — refolds diff the old and new canonical maps — so callers
	// never need a full re-index; the flag is an efficiency signal.
	Refolded bool
	// Changed: the semantic structures differ from before the call;
	// Synonyms/Hierarchy/Mappings hold the fresh snapshot to install.
	Changed bool
	// Affected lists the terms whose canonical form changed, sorted —
	// on the incremental path the previously-unknown member terms of a
	// synonym delta, on the refold path the old-state/new-state synonym
	// diff. Only subscriptions mentioning one of these need re-indexing
	// (hierarchy and mapping deltas never change indexed subscription
	// forms, so for them Affected is empty). Valid whenever Changed.
	Affected []string

	Synonyms  *semantic.Synonyms
	Hierarchy *semantic.Hierarchy
	Mappings  *semantic.Mappings
}

// kbCheckpointEvery is the fold-checkpoint spacing: the state after
// every kbCheckpointEvery-th delta of the canonical log is pinned, so
// an out-of-merge-order arrival refolds at most its out-of-order
// window plus one checkpoint interval — never the whole log. In-order
// checkpoints are free (the copy-on-write discipline freezes published
// snapshots), refold-path checkpoints cost one clone each.
const kbCheckpointEvery = 32

// kbMaxCheckpoints bounds how many checkpoints a base retains (the
// most recent ones). Refolds only ever resume near the out-of-order
// window — within a few sequence numbers of the merge frontier — so
// old checkpoints are dead weight: without a cap a long-lived broker
// would hold a full state snapshot per kbCheckpointEvery deltas
// forever, O(log × state) memory. The retained window covers
// kbMaxCheckpoints × kbCheckpointEvery ≈ 256 deltas of skew; an
// arrival older than that (an origin hundreds of sequence numbers
// behind the frontier — partition-heal territory, where link sync
// replays in canonical order anyway) falls back to a genesis refold,
// which is a cost, not a correctness, event.
const kbMaxCheckpoints = 8

// checkpoint pins the folded state and rolling digest after the first
// idx deltas of the canonical log (the genesis state is the implicit
// checkpoint at idx 0). Checkpoint structures are frozen: they are
// either published snapshots (never mutated again by the copy-on-write
// discipline) or private clones taken mid-refold.
type checkpoint struct {
	idx    int
	syn    *semantic.Synonyms
	hier   *semantic.Hierarchy
	maps   *semantic.Mappings
	digest uint64
}

// Base is one broker's replicated knowledge base: an append-only log of
// deltas over a fixed genesis (the ontology every broker was started
// with), folded into semantic structures in one canonical order.
//
// The canonical order (knowledge.less) is sequence-major: it is the
// deterministic merge of per-origin in-order tails — each origin's
// deltas appear in epoch/seq order, interleaved round-robin by
// sequence number. Origins injecting concurrently therefore land near
// the merge tail, so the overwhelmingly common arrivals (in order
// within their origin, and within one out-of-order window of the other
// origins' watermarks) take the incremental clone-and-apply path or
// refold only a short suffix from the nearest checkpoint.
//
// Convergence argument: (1) delta IDs are unique and deltas immutable,
// so the log is a grow-only set; (2) the merge order is a total order
// independent of arrival order; (3) each operation either applies or
// is rejected deterministically as a function of the folded prefix
// alone. Hence two bases with the same genesis and the same delta set
// hold identical structures and equal digests, no matter how
// replication interleaved.
//
// A Base never mutates structures it has handed out: Apply clones the
// current snapshot, mutates the clone, and publishes it. Engines swap
// the fresh snapshot into their semantic.Stage (see Stage.Replace).
type Base struct {
	mu sync.Mutex

	genSyn  *semantic.Synonyms
	genHier *semantic.Hierarchy
	genMaps *semantic.Mappings

	syn  *semantic.Synonyms
	hier *semantic.Hierarchy
	maps *semantic.Mappings

	log    []Delta  // canonical (merge) order
	encLog [][]byte // cached encodings, parallel to log
	// cps holds the sparse fold checkpoints in ascending idx order
	// (idx > 0; genesis is the implicit checkpoint at 0), capped at
	// the kbMaxCheckpoints most recent. An insertion at position i
	// invalidates every checkpoint past i and refolds from the last
	// one at or before it (genesis when none remains that old).
	cps []checkpoint
	// digest is the rolling order-sensitive FNV-64a over encLog,
	// maintained incrementally on in-order appends (the common case)
	// and recomputed from the nearest checkpoint on a refold —
	// Version() never re-marshals the log.
	digest   uint64
	origins  map[string]uint64 // "origin#epoch" → max seq
	applied  map[string]bool
	rejected map[string]string // delta ID → reason
	rebuilds uint64
	refolded uint64
}

// NewBase builds a knowledge base over the given genesis structures
// (nil arguments mean empty). The structures are also the initial
// current state, so build the engine's semantic.Stage over the same
// pointers (Base.Stage does exactly that) — they are never mutated,
// only replaced.
func NewBase(syn *semantic.Synonyms, hier *semantic.Hierarchy, maps *semantic.Mappings) *Base {
	if syn == nil {
		syn = semantic.NewSynonyms()
	}
	if hier == nil {
		hier = semantic.NewHierarchy()
	}
	if maps == nil {
		maps = semantic.NewMappings()
	}
	return &Base{
		genSyn: syn, genHier: hier, genMaps: maps,
		syn: syn, hier: hier, maps: maps,
		digest:   fnvOffset,
		origins:  make(map[string]uint64),
		applied:  make(map[string]bool),
		rejected: make(map[string]string),
	}
}

// Streaming FNV-64a, kept as a plain uint64 so the digest can be
// carried incrementally across appends.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// fnvSum folds data into a running FNV-64a state.
func fnvSum(h uint64, data []byte) uint64 {
	for _, b := range data {
		h ^= uint64(b)
		h *= fnvPrime
	}
	return h
}

// fnvAbsorb folds one log record into the rolling digest: the record
// bytes plus a '\n' separator, making the digest length-prefixed-free
// yet record-boundary-sensitive.
func fnvAbsorb(h uint64, data []byte) uint64 {
	h = fnvSum(h, data)
	h ^= '\n'
	h *= fnvPrime
	return h
}

// Stage builds a semantic stage over the base's current structures;
// the stage stays coherent with the base as long as every Apply outcome
// is installed via Stage.Replace (core.Engine.ApplyKnowledge does).
func (b *Base) Stage(cfg semantic.Config) *semantic.Stage {
	b.mu.Lock()
	defer b.mu.Unlock()
	return semantic.NewStage(b.syn, b.hier, b.maps, cfg)
}

// Apply folds one delta into the base. The returned error reports
// malformed input (unstamped or invalid payload); operation-level
// failures are NOT errors — they are deterministic rejections recorded
// in the log (see Outcome.Rejected).
func (b *Base) Apply(d Delta) (Outcome, error) {
	if !d.Stamped() {
		return Outcome{}, fmt.Errorf("knowledge: applying unstamped delta %s", d)
	}
	if err := d.Validate(); err != nil {
		return Outcome{}, err
	}
	enc, err := Encode(d)
	if err != nil {
		return Outcome{}, err
	}
	if len(enc) > MaxDeltaBytes {
		// Oversized deltas are refused as malformed input, never
		// logged: a logged delta must be guaranteed to fit an overlay
		// frame, or it would apply locally yet be unreplicable —
		// permanent divergence plus a link flap on every sync replay.
		return Outcome{}, fmt.Errorf("knowledge: delta %s encodes to %d bytes (max %d)", d.ID(), len(enc), MaxDeltaBytes)
	}
	b.mu.Lock()
	defer b.mu.Unlock()

	id := d.ID()
	if b.applied[id] {
		return Outcome{Duplicate: true}, nil
	}
	b.applied[id] = true
	key := d.Origin + "#" + d.Epoch
	if d.Seq > b.origins[key] {
		b.origins[key] = d.Seq
	}

	var out Outcome
	out.Applied = true
	if n := len(b.log); n == 0 || less(b.log[n-1], d) {
		// In merge order: incremental clone-and-apply, digest carried
		// forward, checkpoint pinned for free at the spacing boundary
		// (the published snapshot is frozen by copy-on-write).
		b.log = append(b.log, d)
		b.encLog = append(b.encLog, enc)
		b.digest = fnvAbsorb(b.digest, enc)
		syn, hier, maps := b.syn.Clone(), b.hier.Clone(), b.maps.Clone()
		affected, err := applyOp(d, syn, hier, maps)
		if err != nil {
			b.rejected[id] = err.Error()
			out.Rejected = true
			out.RejectReason = err.Error()
		} else {
			b.syn, b.hier, b.maps = syn, hier, maps
			out.Changed = true
			sort.Strings(affected)
			out.Affected = affected
		}
		if len(b.log)%kbCheckpointEvery == 0 {
			b.pinCheckpoint(checkpoint{
				idx: len(b.log), syn: b.syn, hier: b.hier, maps: b.maps, digest: b.digest,
			})
		}
	} else {
		// Out of merge order: insert at the canonical position and
		// refold the suffix from the nearest checkpoint at or before
		// it. The old and new synonym maps are then diffed, so the
		// outcome still carries the exact changed-term set and callers
		// re-index incrementally, exactly as on the in-order path.
		i := sort.Search(len(b.log), func(i int) bool { return less(d, b.log[i]) })
		b.log = append(b.log, Delta{})
		copy(b.log[i+1:], b.log[i:])
		b.log[i] = d
		b.encLog = append(b.encLog, nil)
		copy(b.encLog[i+1:], b.encLog[i:])
		b.encLog[i] = enc

		oldSyn := b.syn
		flipped := b.refoldFrom(i)
		b.rebuilds++
		out.Refolded = true
		out.RejectReason = b.rejected[id]
		out.Rejected = out.RejectReason != ""
		// A rejected insertion that flipped no other delta's outcome
		// left the effective operation sequence — and so the state —
		// exactly as it was.
		out.Changed = !out.Rejected || flipped
		if out.Changed {
			out.Affected = oldSyn.DiffTerms(b.syn)
		}
	}
	out.Synonyms, out.Hierarchy, out.Mappings = b.syn, b.hier, b.maps
	return out, nil
}

// refoldFrom re-derives the current structures over log[from:] starting
// at the last checkpoint at or before from, re-deriving the rejection
// set of the refolded suffix and re-pinning checkpoints along the way.
// It reports whether any previously logged delta's rejection status
// flipped. Callers hold b.mu and have already inserted the new delta.
func (b *Base) refoldFrom(from int) (flipped bool) {
	// Locate the checkpoint to resume from and drop the now-stale ones
	// past the insertion point (their indices shifted and their states
	// no longer reflect the new prefix).
	start, digest := 0, uint64(fnvOffset)
	syn, hier, maps := b.genSyn, b.genHier, b.genMaps
	k := sort.Search(len(b.cps), func(k int) bool { return b.cps[k].idx > from })
	if k > 0 {
		cp := b.cps[k-1]
		start, digest = cp.idx, cp.digest
		syn, hier, maps = cp.syn, cp.hier, cp.maps
	}
	b.cps = b.cps[:k]

	// Fold the suffix on private clones; published snapshots and
	// checkpoint states stay frozen.
	syn, hier, maps = syn.Clone(), hier.Clone(), maps.Clone()
	for j := start; j < len(b.log); j++ {
		d := b.log[j]
		id := d.ID()
		was, hadReason := b.rejected[id]
		delete(b.rejected, id)
		if _, err := applyOp(d, syn, hier, maps); err != nil {
			b.rejected[id] = err.Error()
			if !hadReason {
				flipped = flipped || j != from // the inserted delta has no prior status
			}
		} else if hadReason && was != "" {
			flipped = true
		}
		digest = fnvAbsorb(digest, b.encLog[j])
		if n := j + 1; n%kbCheckpointEvery == 0 && n < len(b.log) {
			b.pinCheckpoint(checkpoint{
				idx: n, syn: syn.Clone(), hier: hier.Clone(), maps: maps.Clone(), digest: digest,
			})
		}
	}
	b.refolded += uint64(len(b.log) - start)
	b.syn, b.hier, b.maps = syn, hier, maps
	b.digest = digest
	return flipped
}

// pinCheckpoint appends a checkpoint and evicts the oldest past the
// retention cap, keeping memory bounded at kbMaxCheckpoints snapshots
// regardless of log length. Callers hold b.mu and append in ascending
// idx order.
func (b *Base) pinCheckpoint(cp checkpoint) {
	b.cps = append(b.cps, cp)
	if len(b.cps) > kbMaxCheckpoints {
		n := copy(b.cps, b.cps[len(b.cps)-kbMaxCheckpoints:])
		for i := n; i < len(b.cps); i++ {
			b.cps[i] = checkpoint{} // release the evicted snapshots
		}
		b.cps = b.cps[:n]
	}
}

// applyOp applies one operation to the given (private, mutable)
// structures. It is atomic: it either fully applies or — after
// pre-validation against the current state — fails without mutating
// anything, so a rejected delta leaves no partial edits behind and the
// fold is deterministic.
func applyOp(d Delta, syn *semantic.Synonyms, hier *semantic.Hierarchy, maps *semantic.Mappings) ([]string, error) {
	switch d.Op {
	case OpAddSynonym:
		if syn.Known(d.Root) && !syn.IsRoot(d.Root) {
			root, _ := syn.Canonical(d.Root)
			return nil, fmt.Errorf("%q is already a synonym of %q and cannot become a root", d.Root, root)
		}
		var affected []string
		for _, t := range d.Terms {
			if t == d.Root {
				continue
			}
			if syn.Known(t) {
				if r, _ := syn.Canonical(t); r != d.Root {
					return nil, fmt.Errorf("%q already maps to root %q, cannot remap to %q", t, r, d.Root)
				}
				continue // already in this group; no-op
			}
			affected = append(affected, t)
		}
		if err := syn.AddGroup(d.Root, d.Terms...); err != nil {
			return nil, err // unreachable after pre-validation; kept as a guard
		}
		return affected, nil

	case OpAddConcept:
		return nil, hier.AddConcept(d.Term)

	case OpAddIsA:
		if hier.IsA(d.Parent, d.Child) {
			return nil, fmt.Errorf("is-a edge %q → %q would create a cycle", d.Child, d.Parent)
		}
		return nil, hier.AddIsA(d.Child, d.Parent)

	case OpAddMapping:
		// Replace semantics: an equal-name mapping (genesis or earlier
		// delta) is superseded, never a rejection. This keeps a changed
		// mapping a single self-contained delta — a retire/add pair
		// would depend on fold order, which across delta-log files
		// (FileStamp) is not the emission order, and the add could fold
		// first, reject, and leave the retire to delete the mapping
		// outright.
		replaced := maps.Remove(d.Map.Name)
		if err := maps.Add(d.Map.Func()); err != nil {
			// Unreachable: Validate guarantees a name, a trigger
			// attribute and derived pairs, and Remove cleared the only
			// other failure (a duplicate name). Guarded so an impossible
			// failure cannot silently half-apply.
			return nil, fmt.Errorf("replacing mapping %q (previous %v): %v", d.Map.Name, replaced, err)
		}
		return nil, nil

	case OpRetire:
		if !maps.Remove(d.Name) {
			return nil, fmt.Errorf("mapping function %q is not registered", d.Name)
		}
		return nil, nil
	}
	return nil, fmt.Errorf("unknown op %q", d.Op)
}

// Version snapshots the base's identity. O(origins), no marshalling:
// the digest is maintained incrementally by Apply.
func (b *Base) Version() Version {
	b.mu.Lock()
	defer b.mu.Unlock()
	v := Version{
		Deltas:   len(b.log),
		Rejected: len(b.rejected),
		Rebuilds: b.rebuilds,
		Refolded: b.refolded,
		Digest:   fmt.Sprintf("%016x", b.digest),
		Origins:  make(map[string]uint64, len(b.origins)),
	}
	for k, seq := range b.origins {
		v.Origins[k] = seq
	}
	return v
}

// Log returns the applied delta log in canonical order (a copy). The
// broker persists it in snapshots and replays it onto freshly
// connected overlay links, so a restarted or healed peer catches up by
// ordinary duplicate-suppressed flooding — and because the replay
// order IS the merge order, a catch-up folds as pure in-order appends.
func (b *Base) Log() []Delta {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Delta(nil), b.log...)
}

// Len reports the log length.
func (b *Base) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.log)
}
