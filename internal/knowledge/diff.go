package knowledge

import (
	"fmt"

	"stopss/internal/semantic"
)

// Structures bundles the three compiled semantic knowledge structures
// of one ontology — the shape ontology.Ontology compiles to, accepted
// here directly so the knowledge package needs no compiler dependency.
type Structures struct {
	Synonyms  *semantic.Synonyms
	Hierarchy *semantic.Hierarchy
	Mappings  *semantic.Mappings
}

// Diff computes the delta log that evolves the compiled ontology old
// into new: the operations a running federation must apply so brokers
// started from old match brokers started from new. The returned deltas
// are unstamped (the injecting broker stamps them).
//
// Changes the delta language cannot express are returned as warnings
// rather than silently dropped: removing synonyms, concepts or is-a
// edges (the KB is append-only for those), and mapping functions
// compiled from computed `rule` declarations (only declarative `map`
// pair-maps serialize). An incompatible change — a term re-rooted to a
// different synonym group — is an error, because no delta sequence can
// reproduce it.
func Diff(old, new Structures) ([]Delta, []string, error) {
	var deltas []Delta
	var warnings []string

	// Synonyms: new groups and new members of existing groups.
	for _, root := range new.Synonyms.RootTerms() {
		if old.Synonyms.Known(root) && !old.Synonyms.IsRoot(root) {
			oldRoot, _ := old.Synonyms.Canonical(root)
			return nil, nil, fmt.Errorf("knowledge: term %q is a member of group %q in the old ontology but a root in the new one", root, oldRoot)
		}
		group := new.Synonyms.GroupOf(root) // root first, then members
		var fresh []string
		for _, t := range group[1:] {
			if old.Synonyms.Known(t) {
				if r, _ := old.Synonyms.Canonical(t); r != root {
					return nil, nil, fmt.Errorf("knowledge: term %q moves from group %q to %q; re-rooting is not expressible as a delta", t, r, root)
				}
				continue
			}
			fresh = append(fresh, t)
		}
		if len(fresh) > 0 || !old.Synonyms.Known(root) {
			deltas = append(deltas, Delta{Op: OpAddSynonym, Root: root, Terms: fresh})
		}
	}
	for _, root := range old.Synonyms.RootTerms() {
		if !new.Synonyms.Known(root) {
			warnings = append(warnings, fmt.Sprintf("synonym group %q removed; removal is not expressible as a delta", root))
			continue
		}
		for _, t := range old.Synonyms.GroupOf(root)[1:] {
			if !new.Synonyms.Known(t) {
				warnings = append(warnings, fmt.Sprintf("synonym %q (group %q) removed; removal is not expressible as a delta", t, root))
			}
		}
	}

	// Hierarchy: new concepts, then new is-a edges.
	for _, c := range new.Hierarchy.Concepts() {
		if !old.Hierarchy.Has(c) {
			deltas = append(deltas, Delta{Op: OpAddConcept, Term: c})
		}
	}
	for _, c := range new.Hierarchy.Concepts() {
		oldParents := make(map[string]bool)
		for _, p := range old.Hierarchy.Parents(c) {
			oldParents[p] = true
		}
		for _, p := range new.Hierarchy.Parents(c) {
			if !oldParents[p] {
				deltas = append(deltas, Delta{Op: OpAddIsA, Child: c, Parent: p})
			}
		}
	}
	for _, c := range old.Hierarchy.Concepts() {
		if !new.Hierarchy.Has(c) {
			warnings = append(warnings, fmt.Sprintf("concept %q removed; removal is not expressible as a delta", c))
			continue
		}
		newParents := make(map[string]bool)
		for _, p := range new.Hierarchy.Parents(c) {
			newParents[p] = true
		}
		for _, p := range old.Hierarchy.Parents(c) {
			if !newParents[p] {
				warnings = append(warnings, fmt.Sprintf("is-a edge %q → %q removed; removal is not expressible as a delta", c, p))
			}
		}
	}

	// Mappings: a new or content-changed function is one add_mapping
	// delta — add_mapping replaces an equal-name function when folded,
	// so a change needs no retire/add pair whose outcome would depend
	// on fold order (one file's lines fold in line order under the
	// sequence-major merge, but deltas from different logs or live
	// origins interleave by sequence number, not emission time). Retire
	// is emitted only for removed functions. Only declarative pair-maps
	// serialize; computed rules warn.
	for _, name := range new.Mappings.Names() {
		f, _ := new.Mappings.Func(name)
		pm, ok := f.(semantic.PairMap)
		if oldF, had := old.Mappings.Func(name); had {
			oldPM, oldOK := oldF.(semantic.PairMap)
			if !ok || !oldOK {
				if !mappingRulesAssumedEqual(oldOK, ok) {
					warnings = append(warnings, fmt.Sprintf("mapping %q changed kind; computed rules do not serialize as deltas", name))
				}
				continue
			}
			if pairMapEqual(oldPM, pm) {
				continue
			}
		} else if !ok {
			warnings = append(warnings, fmt.Sprintf("mapping %q is a computed rule; only declarative pair-maps serialize as deltas", name))
			continue
		}
		deltas = append(deltas, Delta{Op: OpAddMapping, Map: pairMapDecl(pm)})
	}
	for _, name := range old.Mappings.Names() {
		if !new.Mappings.Has(name) {
			deltas = append(deltas, Delta{Op: OpRetire, Name: name})
		}
	}

	return deltas, warnings, nil
}

// mappingRulesAssumedEqual: two computed rules with the same name are
// assumed unchanged (rule bodies are not comparable once compiled); a
// kind flip (rule ↔ pair-map) is reported.
func mappingRulesAssumedEqual(oldIsPairMap, newIsPairMap bool) bool {
	return oldIsPairMap == newIsPairMap
}

func pairMapDecl(pm semantic.PairMap) *MapDecl {
	decl := &MapDecl{Name: pm.MapName, Attr: pm.Attr, Match: pm.Match}
	for _, p := range pm.Derived {
		decl.Derived = append(decl.Derived, DerivedPair{Attr: p.Attr, Val: p.Val})
	}
	return decl
}

func pairMapEqual(a, b semantic.PairMap) bool {
	if a.Attr != b.Attr || !a.Match.Equal(b.Match) || len(a.Derived) != len(b.Derived) {
		return false
	}
	for i := range a.Derived {
		if a.Derived[i].Attr != b.Derived[i].Attr || !a.Derived[i].Val.Equal(b.Derived[i].Val) {
			return false
		}
	}
	return true
}
