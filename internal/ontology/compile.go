package ontology

import (
	"fmt"
	"sort"

	"stopss/internal/message"
	"stopss/internal/semantic"
)

// Ontology is a compiled ODL document: the hash-based runtime structures
// the semantic stage consumes, plus the domain name for multi-domain
// bookkeeping.
type Ontology struct {
	Domain    string
	Synonyms  *semantic.Synonyms
	Hierarchy *semantic.Hierarchy
	Mappings  *semantic.Mappings
}

// Options tunes compilation.
type Options struct {
	// Normalize lower-cases and space-normalizes every term (see
	// semantic.NormalizeTerm). Off by default: the paper's examples are
	// case-sensitive ("PhD").
	Normalize bool
	// Prefix, when non-empty, prefixes rule and map names with
	// "<domain>." so that identically named rules in different domains
	// can coexist in one registry.
	Prefix bool
}

// Compile lowers a parsed document into runtime structures.
func Compile(doc *Document, opts Options) (*Ontology, error) {
	norm := func(t string) string {
		if opts.Normalize {
			return semantic.NormalizeTerm(t)
		}
		return t
	}

	o := &Ontology{
		Domain:    doc.Domain,
		Synonyms:  semantic.NewSynonyms(),
		Hierarchy: semantic.NewHierarchy(),
		Mappings:  semantic.NewMappings(),
	}

	for _, g := range doc.Synonyms {
		members := make([]string, len(g.Members))
		for i, m := range g.Members {
			members[i] = norm(m)
		}
		if err := o.Synonyms.AddGroup(norm(g.Root), members...); err != nil {
			return nil, errf(g.Line, 1, "synonym group %q: %v", g.Root, err)
		}
	}

	var walk func(parent string, n ConceptNode) error
	walk = func(parent string, n ConceptNode) error {
		name := norm(n.Name)
		if err := o.Hierarchy.AddConcept(name); err != nil {
			return errf(n.Line, 1, "concept %q: %v", n.Name, err)
		}
		if parent != "" {
			if err := o.Hierarchy.AddIsA(name, parent); err != nil {
				return errf(n.Line, 1, "concept %q: %v", n.Name, err)
			}
		}
		for _, c := range n.Children {
			if err := walk(name, c); err != nil {
				return err
			}
		}
		return nil
	}
	for _, root := range doc.Concepts {
		if err := walk("", root); err != nil {
			return nil, err
		}
	}

	qualify := func(name string) string {
		if opts.Prefix {
			return doc.Domain + "." + name
		}
		return name
	}

	for _, r := range doc.Rules {
		f, err := compileRule(r, norm, qualify(r.Name))
		if err != nil {
			return nil, err
		}
		if err := o.Mappings.Add(f); err != nil {
			return nil, errf(r.Line, 1, "rule %q: %v", r.Name, err)
		}
	}

	for i, pm := range doc.PairMaps {
		f, err := compilePairMap(pm, norm, fmt.Sprintf("%s#map%d", qualify(pm.Attr), i))
		if err != nil {
			return nil, err
		}
		if err := o.Mappings.Add(f); err != nil {
			return nil, errf(pm.Line, 1, "map %q: %v", pm.Attr, err)
		}
	}
	return o, nil
}

// ruleFunc is the compiled form of a RuleDecl. It fires when every
// condition holds and every derive expression evaluates; evaluation
// failures (missing attribute, type mismatch) silently disable the rule
// for that event.
type ruleFunc struct {
	name     string
	triggers []string
	conds    []Condition
	derives  []compiledDerive
}

type compiledDerive struct {
	attr string
	expr Expr
}

// Name implements semantic.MappingFunc.
func (r *ruleFunc) Name() string { return r.name }

// Triggers implements semantic.MappingFunc.
func (r *ruleFunc) Triggers() []string { return r.triggers }

// Apply implements semantic.MappingFunc.
func (r *ruleFunc) Apply(e message.Event) []message.Pair {
	for _, c := range r.conds {
		if !evalCondition(c, e) {
			return nil
		}
	}
	out := make([]message.Pair, 0, len(r.derives))
	for _, d := range r.derives {
		v, err := d.expr.Eval(e)
		if err != nil {
			return nil // expression does not apply to this event
		}
		out = append(out, message.Pair{Attr: d.attr, Val: v})
	}
	return out
}

// compileRule normalizes terms, infers triggers from the attributes the
// rule references, and validates that at least one trigger exists.
func compileRule(r RuleDecl, norm func(string) string, name string) (semantic.MappingFunc, error) {
	if len(r.Derives) == 0 {
		return nil, errf(r.Line, 1, "rule %q derives nothing", r.Name)
	}
	f := &ruleFunc{name: name}

	var attrs []string
	for i := range r.Conditions {
		c := r.Conditions[i]
		if c.Exists {
			c.Attr = norm(c.Attr)
			attrs = append(attrs, c.Attr)
		} else {
			c.Left = normalizeExpr(c.Left, norm)
			c.Right = normalizeExpr(c.Right, norm)
			attrs = c.Left.Attrs(attrs)
			attrs = c.Right.Attrs(attrs)
		}
		f.conds = append(f.conds, c)
	}
	for _, d := range r.Derives {
		expr := normalizeExpr(d.Expr, norm)
		attrs = expr.Attrs(attrs)
		f.derives = append(f.derives, compiledDerive{attr: norm(d.Attr), expr: expr})
	}

	seen := make(map[string]bool)
	for _, a := range attrs {
		if !seen[a] {
			seen[a] = true
			f.triggers = append(f.triggers, a)
		}
	}
	sort.Strings(f.triggers)
	if len(f.triggers) == 0 {
		return nil, errf(r.Line, 1, "rule %q references no attributes; it could never be triggered", r.Name)
	}
	return f, nil
}

// normalizeExpr rewrites attribute references through the term
// normalizer.
func normalizeExpr(e Expr, norm func(string) string) Expr {
	switch x := e.(type) {
	case AttrRef:
		return AttrRef{Name: norm(x.Name)}
	case Neg:
		return Neg{X: normalizeExpr(x.X, norm)}
	case BinOp:
		return BinOp{Op: x.Op, L: normalizeExpr(x.L, norm), R: normalizeExpr(x.R, norm)}
	default:
		return e
	}
}

func compilePairMap(pm PairMapDecl, norm func(string) string, name string) (semantic.MappingFunc, error) {
	if len(pm.Derived) == 0 {
		return nil, errf(pm.Line, 1, "map %q derives nothing", pm.Attr)
	}
	derived := make([]message.Pair, len(pm.Derived))
	for i, d := range pm.Derived {
		derived[i] = message.Pair{Attr: norm(d.Attr), Val: literalValue(d.Value, norm)}
	}
	return semantic.PairMap{
		MapName: name,
		Attr:    norm(pm.Attr),
		Match:   literalValue(pm.Value, norm),
		Derived: derived,
	}, nil
}

func literalValue(l Literal, norm func(string) string) message.Value {
	if l.IsNum {
		return numValue(l.Num)
	}
	return message.String(norm(l.Str))
}

// Load parses and compiles one ODL document.
func Load(src string, opts Options) (*Ontology, error) {
	doc, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Compile(doc, opts)
}

// Merge combines several compiled ontologies into one knowledge base —
// the multi-domain operation of paper §3.2. Inter-domain bridges are
// ordinary mapping functions declared in any of the documents (or added
// programmatically afterwards).
func Merge(onts ...*Ontology) (*Ontology, error) {
	out := &Ontology{
		Domain:    "merged",
		Synonyms:  semantic.NewSynonyms(),
		Hierarchy: semantic.NewHierarchy(),
		Mappings:  semantic.NewMappings(),
	}
	if len(onts) == 1 {
		out.Domain = onts[0].Domain
	}
	names := make([]string, 0, len(onts))
	for _, o := range onts {
		names = append(names, o.Domain)
		if err := out.Synonyms.Merge(o.Synonyms); err != nil {
			return nil, fmt.Errorf("ontology: merging %q: %w", o.Domain, err)
		}
		if err := out.Hierarchy.Merge(o.Hierarchy); err != nil {
			return nil, fmt.Errorf("ontology: merging %q: %w", o.Domain, err)
		}
		if err := out.Mappings.Merge(o.Mappings); err != nil {
			return nil, fmt.Errorf("ontology: merging %q: %w", o.Domain, err)
		}
	}
	if len(onts) > 1 {
		sort.Strings(names)
		out.Domain = "merged(" + names[0]
		for _, n := range names[1:] {
			out.Domain += "+" + n
		}
		out.Domain += ")"
	}
	return out, nil
}

// Stage builds a semantic stage over the ontology with the given
// configuration.
func (o *Ontology) Stage(cfg semantic.Config) *semantic.Stage {
	return semantic.NewStage(o.Synonyms, o.Hierarchy, o.Mappings, cfg)
}

// Summary describes the compiled ontology for diagnostics and the ontc
// tool.
func (o *Ontology) Summary() string {
	return fmt.Sprintf("domain %q: %d synonym terms in %d groups, %d concepts, %d mapping functions",
		o.Domain, o.Synonyms.Len(), o.Synonyms.Groups(), o.Hierarchy.Len(), o.Mappings.Len())
}
