package ontology_test

import (
	"fmt"

	"stopss/internal/message"
	"stopss/internal/ontology"
	"stopss/internal/semantic"
)

// ExampleLoad compiles an ODL document and uses it for semantic
// expansion.
func ExampleLoad() {
	ont, err := ontology.Load(`
domain jobs
synonyms { university: school }
mappings {
    rule experience
        when exists("graduation year")
        derive "professional experience" = 2003 - attr("graduation year")
}
`, ontology.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	stage := ont.Stage(semantic.FullConfig())
	res := stage.ProcessEvent(message.E("school", "Toronto", "graduation year", 1990))
	last := res.Events[len(res.Events)-1]
	v, _ := last.Get("professional experience")
	fmt.Println(ont.Domain, v)
	// Output:
	// jobs 13
}

// ExampleFormat pretty-prints a parsed document in canonical form.
func ExampleFormat() {
	doc, _ := ontology.Parse(`domain d synonyms { a: b , c }`)
	fmt.Print(ontology.Format(doc))
	// Output:
	// domain d
	//
	// synonyms {
	//     a: b, c
	// }
}

// ExampleImportDAML translates a DAML+OIL fragment (the paper's future
// work) into the runtime representation.
func ExampleImportDAML() {
	ont, err := ontology.ImportDAML(`<?xml version="1.0"?>
<rdf:RDF xmlns:rdf="r" xmlns:rdfs="s" xmlns:daml="d">
  <daml:Class rdf:ID="car">
    <rdfs:subClassOf rdf:resource="#vehicle"/>
  </daml:Class>
</rdf:RDF>`, "autos")
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(ont.Hierarchy.IsA("car", "vehicle"))
	// Output:
	// true
}
