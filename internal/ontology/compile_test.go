package ontology

import (
	"strings"
	"testing"

	"stopss/internal/message"
	"stopss/internal/semantic"
)

func compileJobs(t *testing.T, opts Options) *Ontology {
	t.Helper()
	o, err := Load(jobsODL, opts)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestCompileSynonyms(t *testing.T) {
	o := compileJobs(t, Options{})
	for term, root := range map[string]string{
		"school":          "university",
		"college":         "university",
		"alma mater":      "university",
		"work experience": "professional experience",
	} {
		if got, _ := o.Synonyms.Canonical(term); got != root {
			t.Errorf("Canonical(%q) = %q, want %q", term, got, root)
		}
	}
}

func TestCompileHierarchy(t *testing.T) {
	o := compileJobs(t, Options{})
	if !o.Hierarchy.IsA("PhD", "degree") {
		t.Error("PhD should be a degree transitively")
	}
	if !o.Hierarchy.IsA("BSc", "degree") {
		t.Error("BSc should be a degree")
	}
	if o.Hierarchy.IsA("degree", "PhD") {
		t.Error("hierarchy direction reversed")
	}
	if d, _ := o.Hierarchy.Depth("PhD"); d != 2 {
		t.Errorf("Depth(PhD) = %d, want 2", d)
	}
}

func TestCompileRuleFires(t *testing.T) {
	o := compileJobs(t, Options{})
	fns := o.Mappings.Applicable(message.E("graduation year", 1993))
	if len(fns) != 1 {
		t.Fatalf("Applicable = %d funcs", len(fns))
	}
	pairs := fns[0].Apply(message.E("graduation year", 1993))
	if len(pairs) != 1 || pairs[0].Attr != "professional experience" {
		t.Fatalf("Apply = %v", pairs)
	}
	if pairs[0].Val.IntVal() != 10 {
		t.Errorf("derived experience = %v, want 10 (paper §3.1)", pairs[0].Val)
	}
	// Missing trigger → rule invisible.
	if fns := o.Mappings.Applicable(message.E("x", 1)); len(fns) != 0 {
		t.Errorf("rule applicable without trigger: %d", len(fns))
	}
	// Non-numeric graduation year → rule declines, no panic.
	if pairs := fns[0].Apply(message.E("graduation year", "nineteen-ninety")); pairs != nil {
		t.Errorf("rule should not fire on type mismatch: %v", pairs)
	}
}

func TestCompilePairMap(t *testing.T) {
	o := compileJobs(t, Options{})
	fns := o.Mappings.Applicable(message.E("position", "mainframe developer"))
	if len(fns) != 1 {
		t.Fatalf("Applicable = %d", len(fns))
	}
	pairs := fns[0].Apply(message.E("position", "mainframe developer"))
	if len(pairs) != 2 {
		t.Fatalf("Apply = %v", pairs)
	}
	if pairs[0].Attr != "skill" || pairs[0].Val.Str() != "COBOL" {
		t.Errorf("pair 0 = %v", pairs[0])
	}
	if pairs[1].Attr != "era" || pairs[1].Val.Str() != "1960-1980" {
		t.Errorf("pair 1 = %v", pairs[1])
	}
}

func TestCompileNormalization(t *testing.T) {
	o := compileJobs(t, Options{Normalize: true})
	if got, _ := o.Synonyms.Canonical("school"); got != "university" {
		t.Errorf("Canonical(school) = %q", got)
	}
	if !o.Hierarchy.IsA("phd", "degree") {
		t.Error("normalized hierarchy should know phd")
	}
	if o.Hierarchy.Has("PhD") {
		t.Error("unnormalized concept should not exist when Normalize is on")
	}
}

func TestCompilePrefixedNames(t *testing.T) {
	o := compileJobs(t, Options{Prefix: true})
	names := o.Mappings.Names()
	joined := strings.Join(names, " ")
	if !strings.Contains(joined, "jobs.experience_from_graduation") {
		t.Errorf("rule names not domain-prefixed: %v", names)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		src      string
		contains string
	}{
		{`domain d synonyms { a: b } synonyms { c: b }`, "already maps"},
		{`domain d concepts { a { a } }`, "cannot specialize itself"},
		{`domain d concepts { a { b { a } } }`, "cycle"},
		{`domain d mappings { rule r derive a = 1 }`, "references no attributes"},
		{`domain d mappings { rule r when exists(x) derive a = 1 rule r when exists(x) derive a = 1 }`, "already registered"},
	}
	for _, tc := range cases {
		_, err := Load(tc.src, Options{})
		if err == nil {
			t.Errorf("Load(%q) should fail", tc.src)
			continue
		}
		if !strings.Contains(err.Error(), tc.contains) {
			t.Errorf("Load(%q) error = %q, want contains %q", tc.src, err, tc.contains)
		}
	}
}

func TestRuleConditionGating(t *testing.T) {
	src := `
domain d
mappings {
    rule gated
        when attr(score) >= 50 and attr(kind) = "exam"
        derive grade = attr(score) / 10
}
`
	o, err := Load(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	f := o.Mappings.Applicable(message.E("score", 80, "kind", "exam"))[0]

	if pairs := f.Apply(message.E("score", 80, "kind", "exam")); len(pairs) != 1 || pairs[0].Val.IntVal() != 8 {
		t.Errorf("rule should fire: %v", pairs)
	}
	if pairs := f.Apply(message.E("score", 30, "kind", "exam")); pairs != nil {
		t.Errorf("failed condition must gate the rule: %v", pairs)
	}
	if pairs := f.Apply(message.E("score", 80, "kind", "quiz")); pairs != nil {
		t.Errorf("failed equality must gate the rule: %v", pairs)
	}
	if pairs := f.Apply(message.E("score", 80)); pairs != nil {
		t.Errorf("missing attribute must gate the rule: %v", pairs)
	}
}

func TestRuleArithmetic(t *testing.T) {
	src := `
domain d
mappings {
    rule math derive v = -(attr(a) + 2) * 3 / (1 + 1) - -4
    rule division when exists(a) derive w = attr(a) / attr(b)
    rule concat derive s = "x-" + attr(name)
}
`
	o, err := Load(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var mathF, divF, catF semantic.MappingFunc
	for _, f := range o.Mappings.Applicable(message.E("a", 4, "b", 0, "name", "n")) {
		switch f.Name() {
		case "math":
			mathF = f
		case "division":
			divF = f
		case "concat":
			catF = f
		}
	}
	// -(4+2)*3/2 - -4 = -18/2 + 4 = -5
	pairs := mathF.Apply(message.E("a", 4))
	if len(pairs) != 1 || pairs[0].Val.IntVal() != -5 {
		t.Errorf("math = %v, want -5", pairs)
	}
	// Division by zero declines instead of panicking.
	if pairs := divF.Apply(message.E("a", 4, "b", 0)); pairs != nil {
		t.Errorf("division by zero should decline: %v", pairs)
	}
	if pairs := divF.Apply(message.E("a", 4, "b", 2)); len(pairs) != 1 || pairs[0].Val.IntVal() != 2 {
		t.Errorf("division = %v", pairs)
	}
	// String concatenation.
	if pairs := catF.Apply(message.E("name", "n")); len(pairs) != 1 || pairs[0].Val.Str() != "x-n" {
		t.Errorf("concat = %v", pairs)
	}
	// Fractional results stay floats.
	src2 := `domain d mappings { rule half derive h = attr(n) / 2 }`
	o2, err := Load(src2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	f := o2.Mappings.Applicable(message.E("n", 5))[0]
	p := f.Apply(message.E("n", 5))
	if p[0].Val.Kind() != message.KindFloat || p[0].Val.FloatVal() != 2.5 {
		t.Errorf("half of 5 = %v (%s)", p[0].Val, p[0].Val.Kind())
	}
}

func TestMergeMultiDomain(t *testing.T) {
	jobs := compileJobs(t, Options{Prefix: true})
	autos, err := Load(`
domain autos
synonyms { car: automobile }
concepts { vehicle { car truck } }
mappings {
    map car "vintage" -> era "pre-1970"
}
`, Options{Prefix: true})
	if err != nil {
		t.Fatal(err)
	}
	merged, err := Merge(jobs, autos)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := merged.Synonyms.Canonical("automobile"); got != "car" {
		t.Error("autos synonyms lost in merge")
	}
	if got, _ := merged.Synonyms.Canonical("school"); got != "university" {
		t.Error("jobs synonyms lost in merge")
	}
	if !merged.Hierarchy.IsA("PhD", "degree") || !merged.Hierarchy.IsA("car", "vehicle") {
		t.Error("hierarchies lost in merge")
	}
	if merged.Mappings.Len() != jobs.Mappings.Len()+autos.Mappings.Len() {
		t.Errorf("mapping count = %d", merged.Mappings.Len())
	}
	if !strings.Contains(merged.Domain, "autos") || !strings.Contains(merged.Domain, "jobs") {
		t.Errorf("merged domain name = %q", merged.Domain)
	}
	if !strings.Contains(merged.Summary(), "mapping functions") {
		t.Errorf("Summary = %q", merged.Summary())
	}
}

func TestOntologyStage(t *testing.T) {
	o := compileJobs(t, Options{})
	st := o.Stage(semantic.FullConfig())
	res := st.ProcessEvent(message.E("school", "Toronto", "graduation year", 1990))
	if len(res.Events) < 2 {
		t.Fatalf("expected expansion, got %d events", len(res.Events))
	}
	if !res.Events[0].Has("university") {
		t.Error("synonym stage not wired through ontology")
	}
	found := false
	for _, ev := range res.Events {
		if v, ok := ev.Get("professional experience"); ok && v.IntVal() == 13 {
			found = true
		}
	}
	if !found {
		t.Errorf("mapping rule not wired: %v", res.Events)
	}
}

func TestSingleDomainMergeKeepsName(t *testing.T) {
	jobs := compileJobs(t, Options{})
	m, err := Merge(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Domain != "jobs" {
		t.Errorf("Domain = %q, want jobs", m.Domain)
	}
}
