// Package ontology implements ODL, the ontology description language of
// this S-ToPSS reproduction, and its compiler into the hash-based
// runtime structures of internal/semantic.
//
// The paper's future work (§2) is "automating translation of ontologies
// expressed in DAML+OIL into a more efficient representation suitable
// for S-ToPSS"; ODL plays the role of the interchange format. A document
// declares one domain:
//
//	domain jobs
//
//	synonyms {
//	    university: school, college, "alma mater"
//	    "professional experience": "work experience"
//	}
//
//	concepts {
//	    degree {
//	        "graduate degree" { phd msc }
//	        bsc
//	    }
//	}
//
//	mappings {
//	    rule experience_from_graduation
//	        when exists("graduation year")
//	        derive "professional experience" = 2003 - attr("graduation year")
//
//	    map position "mainframe developer" -> skill "COBOL", era "1960-1980"
//	}
//
// Comments run from '#' to end of line. Identifiers are bare words
// (letters, digits, '_', '-'); terms containing spaces are quoted.
package ontology

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates lexical token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokString
	tokNumber
	tokLBrace // {
	tokRBrace // }
	tokLParen // (
	tokRParen // )
	tokColon  // :
	tokComma  // ,
	tokArrow  // ->
	tokPlus   // +
	tokMinus  // -
	tokStar   // *
	tokSlash  // /
	tokEq     // =
	tokNe     // !=
	tokLt     // <
	tokLe     // <=
	tokGt     // >
	tokGe     // >=
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of file"
	case tokIdent:
		return "identifier"
	case tokString:
		return "string"
	case tokNumber:
		return "number"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokColon:
		return "':'"
	case tokComma:
		return "','"
	case tokArrow:
		return "'->'"
	case tokPlus:
		return "'+'"
	case tokMinus:
		return "'-'"
	case tokStar:
		return "'*'"
	case tokSlash:
		return "'/'"
	case tokEq:
		return "'='"
	case tokNe:
		return "'!='"
	case tokLt:
		return "'<'"
	case tokLe:
		return "'<='"
	case tokGt:
		return "'>'"
	case tokGe:
		return "'>='"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

// token is one lexical unit with its source position.
type token struct {
	kind tokKind
	text string  // identifier or string payload
	num  float64 // number payload
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokIdent, tokString:
		return fmt.Sprintf("%s %q", t.kind, t.text)
	case tokNumber:
		return fmt.Sprintf("number %g", t.num)
	default:
		return t.kind.String()
	}
}

// Error reports an ODL syntax or semantic error with position.
type Error struct {
	Line int
	Col  int
	Msg  string
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("odl:%d:%d: %s", e.Line, e.Col, e.Msg)
}

func errf(line, col int, format string, args ...any) error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

// lexer turns ODL source into tokens.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) peekByte() (byte, bool) {
	if l.pos >= len(l.src) {
		return 0, false
	}
	return l.src[l.pos], true
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() {
	for {
		c, ok := l.peekByte()
		if !ok {
			return
		}
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.advance()
		case c == '#':
			for {
				c, ok := l.peekByte()
				if !ok || c == '\n' {
					break
				}
				_ = c
				l.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || c == '-' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	line, col := l.line, l.col
	c, ok := l.peekByte()
	if !ok {
		return token{kind: tokEOF, line: line, col: col}, nil
	}
	switch {
	case c == '{':
		l.advance()
		return token{kind: tokLBrace, line: line, col: col}, nil
	case c == '}':
		l.advance()
		return token{kind: tokRBrace, line: line, col: col}, nil
	case c == '(':
		l.advance()
		return token{kind: tokLParen, line: line, col: col}, nil
	case c == ')':
		l.advance()
		return token{kind: tokRParen, line: line, col: col}, nil
	case c == ':':
		l.advance()
		return token{kind: tokColon, line: line, col: col}, nil
	case c == ',':
		l.advance()
		return token{kind: tokComma, line: line, col: col}, nil
	case c == '+':
		l.advance()
		return token{kind: tokPlus, line: line, col: col}, nil
	case c == '*':
		l.advance()
		return token{kind: tokStar, line: line, col: col}, nil
	case c == '/':
		l.advance()
		return token{kind: tokSlash, line: line, col: col}, nil
	case c == '=':
		l.advance()
		return token{kind: tokEq, line: line, col: col}, nil
	case c == '!':
		l.advance()
		if c2, ok := l.peekByte(); ok && c2 == '=' {
			l.advance()
			return token{kind: tokNe, line: line, col: col}, nil
		}
		return token{}, errf(line, col, "unexpected '!'")
	case c == '<':
		l.advance()
		if c2, ok := l.peekByte(); ok && c2 == '=' {
			l.advance()
			return token{kind: tokLe, line: line, col: col}, nil
		}
		return token{kind: tokLt, line: line, col: col}, nil
	case c == '>':
		l.advance()
		if c2, ok := l.peekByte(); ok && c2 == '=' {
			l.advance()
			return token{kind: tokGe, line: line, col: col}, nil
		}
		return token{kind: tokGt, line: line, col: col}, nil
	case c == '-':
		l.advance()
		if c2, ok := l.peekByte(); ok && c2 == '>' {
			l.advance()
			return token{kind: tokArrow, line: line, col: col}, nil
		}
		return token{kind: tokMinus, line: line, col: col}, nil
	case c == '"':
		return l.lexString(line, col)
	case c >= '0' && c <= '9':
		return l.lexNumber(line, col)
	case isIdentStart(c):
		return l.lexIdent(line, col)
	default:
		return token{}, errf(line, col, "unexpected character %q", string(rune(c)))
	}
}

func (l *lexer) lexString(line, col int) (token, error) {
	l.advance() // opening quote
	var sb strings.Builder
	for {
		c, ok := l.peekByte()
		if !ok || c == '\n' {
			return token{}, errf(line, col, "unterminated string")
		}
		l.advance()
		if c == '\\' {
			c2, ok := l.peekByte()
			if !ok {
				return token{}, errf(line, col, "unterminated escape")
			}
			l.advance()
			switch c2 {
			case '"':
				sb.WriteByte('"')
			case '\\':
				sb.WriteByte('\\')
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			default:
				return token{}, errf(line, col, "unknown escape \\%s", string(rune(c2)))
			}
			continue
		}
		if c == '"' {
			return token{kind: tokString, text: sb.String(), line: line, col: col}, nil
		}
		sb.WriteByte(c)
	}
}

func (l *lexer) lexNumber(line, col int) (token, error) {
	start := l.pos
	seenDot := false
	for {
		c, ok := l.peekByte()
		if !ok {
			break
		}
		if c == '.' {
			if seenDot {
				return token{}, errf(line, col, "malformed number")
			}
			seenDot = true
			l.advance()
			continue
		}
		if c < '0' || c > '9' {
			break
		}
		l.advance()
	}
	text := l.src[start:l.pos]
	var num float64
	if _, err := fmt.Sscanf(text, "%g", &num); err != nil {
		return token{}, errf(line, col, "malformed number %q", text)
	}
	return token{kind: tokNumber, num: num, text: text, line: line, col: col}, nil
}

func (l *lexer) lexIdent(line, col int) (token, error) {
	start := l.pos
	for {
		c, ok := l.peekByte()
		if !ok || !isIdentPart(c) {
			break
		}
		l.advance()
	}
	return token{kind: tokIdent, text: l.src[start:l.pos], line: line, col: col}, nil
}

// lexAll tokenizes the whole document (used by the parser and tests).
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
