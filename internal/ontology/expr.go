package ontology

import (
	"fmt"

	"stopss/internal/message"
)

// Expr is an arithmetic expression over event attributes, used in rule
// conditions and derive clauses. Grammar (precedence low → high):
//
//	expr   := term (('+'|'-') term)*
//	term   := unary (('*'|'/') unary)*
//	unary  := '-' unary | primary
//	primary:= number | string | attr '(' string-or-ident ')' | '(' expr ')'
type Expr interface {
	// Eval computes the expression over an event. An error means the
	// expression does not apply to this event (missing attribute,
	// non-numeric operand); rules treat that as "rule does not fire",
	// not as a system failure.
	Eval(e message.Event) (message.Value, error)
	// Attrs appends the attributes the expression references.
	Attrs(dst []string) []string
	// String renders ODL source for the expression.
	String() string
}

// NumLit is a numeric literal. Integral literals evaluate to KindInt so
// that derived pairs compare cleanly with integer predicates.
type NumLit struct{ V float64 }

// Eval implements Expr.
func (n NumLit) Eval(message.Event) (message.Value, error) { return numValue(n.V), nil }

// Attrs implements Expr.
func (n NumLit) Attrs(dst []string) []string { return dst }

// String implements Expr.
func (n NumLit) String() string { return fmt.Sprintf("%g", n.V) }

// StrLit is a string literal.
type StrLit struct{ V string }

// Eval implements Expr.
func (s StrLit) Eval(message.Event) (message.Value, error) { return message.String(s.V), nil }

// Attrs implements Expr.
func (s StrLit) Attrs(dst []string) []string { return dst }

// String implements Expr.
func (s StrLit) String() string { return quoteODL(s.V) }

// AttrRef reads an attribute of the event: attr("graduation year").
type AttrRef struct{ Name string }

// Eval implements Expr.
func (a AttrRef) Eval(e message.Event) (message.Value, error) {
	v, ok := e.Get(a.Name)
	if !ok {
		return message.None(), fmt.Errorf("attribute %q absent", a.Name)
	}
	return v, nil
}

// Attrs implements Expr.
func (a AttrRef) Attrs(dst []string) []string { return append(dst, a.Name) }

// String implements Expr.
func (a AttrRef) String() string { return "attr(" + quoteODL(a.Name) + ")" }

// Neg is unary minus.
type Neg struct{ X Expr }

// Eval implements Expr.
func (n Neg) Eval(e message.Event) (message.Value, error) {
	v, err := n.X.Eval(e)
	if err != nil {
		return message.None(), err
	}
	f, ok := v.AsFloat()
	if !ok {
		return message.None(), fmt.Errorf("cannot negate %s value", v.Kind())
	}
	return numValue(-f), nil
}

// Attrs implements Expr.
func (n Neg) Attrs(dst []string) []string { return n.X.Attrs(dst) }

// String implements Expr.
func (n Neg) String() string { return "-" + n.X.String() }

// BinOp is a binary arithmetic node: + - * /. Addition of two strings
// concatenates; all other combinations require numeric operands.
type BinOp struct {
	Op   byte // '+', '-', '*', '/'
	L, R Expr
}

// Eval implements Expr.
func (b BinOp) Eval(e message.Event) (message.Value, error) {
	l, err := b.L.Eval(e)
	if err != nil {
		return message.None(), err
	}
	r, err := b.R.Eval(e)
	if err != nil {
		return message.None(), err
	}
	if b.Op == '+' && l.Kind() == message.KindString && r.Kind() == message.KindString {
		return message.String(l.Str() + r.Str()), nil
	}
	lf, ok1 := l.AsFloat()
	rf, ok2 := r.AsFloat()
	if !ok1 || !ok2 {
		return message.None(), fmt.Errorf("operator %q needs numeric operands, got %s and %s",
			string(rune(b.Op)), l.Kind(), r.Kind())
	}
	switch b.Op {
	case '+':
		return numValue(lf + rf), nil
	case '-':
		return numValue(lf - rf), nil
	case '*':
		return numValue(lf * rf), nil
	case '/':
		if rf == 0 {
			return message.None(), fmt.Errorf("division by zero")
		}
		return numValue(lf / rf), nil
	default:
		return message.None(), fmt.Errorf("unknown operator %q", string(rune(b.Op)))
	}
}

// Attrs implements Expr.
func (b BinOp) Attrs(dst []string) []string { return b.R.Attrs(b.L.Attrs(dst)) }

// String implements Expr.
func (b BinOp) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, string(rune(b.Op)), b.R)
}

// numValue renders a float as Int when integral, preserving the loose
// numeric typing of the publication language.
func numValue(f float64) message.Value {
	if f == float64(int64(f)) {
		return message.Int(int64(f))
	}
	return message.Float(f)
}

// evalCondition reports whether a when-conjunct holds for the event.
// Unsatisfiable evaluation (missing attribute, type mismatch) counts as
// false, never as an error: the rule simply does not fire.
func evalCondition(c Condition, e message.Event) bool {
	if c.Exists {
		return e.Has(c.Attr)
	}
	l, err := c.Left.Eval(e)
	if err != nil {
		return false
	}
	r, err := c.Right.Eval(e)
	if err != nil {
		return false
	}
	switch c.Cmp {
	case "=":
		return l.Equal(r)
	case "!=":
		return !l.Equal(r)
	}
	cmp, ok := l.Compare(r)
	if !ok {
		return false
	}
	switch c.Cmp {
	case "<":
		return cmp < 0
	case "<=":
		return cmp <= 0
	case ">":
		return cmp > 0
	case ">=":
		return cmp >= 0
	default:
		return false
	}
}
