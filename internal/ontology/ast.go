package ontology

// The abstract syntax tree of an ODL document. The parser produces a
// Document; the compiler (compile.go) lowers it into the runtime
// structures of internal/semantic.

// Document is one parsed ODL file: a named domain with synonym groups,
// a concept forest, and mapping declarations.
type Document struct {
	Domain   string
	Synonyms []SynonymGroup
	Concepts []ConceptNode
	Rules    []RuleDecl
	PairMaps []PairMapDecl
}

// SynonymGroup is `root: member, member, …`.
type SynonymGroup struct {
	Root    string
	Members []string
	Line    int
}

// ConceptNode is one node of the concept forest; children are
// specializations of the node ("child is-a node").
type ConceptNode struct {
	Name     string
	Children []ConceptNode
	Line     int
}

// RuleDecl is a computed mapping function:
//
//	rule name when <conditions> derive attr = expr, attr = expr
//
// The when clause is optional (an absent clause always holds, provided
// the derive expressions can evaluate).
type RuleDecl struct {
	Name       string
	Conditions []Condition
	Derives    []Derive
	Line       int
}

// Condition is one conjunct of a when clause: either exists(attr) or a
// comparison between two expressions.
type Condition struct {
	// Exists is set for exists(attr); Attr holds the attribute.
	Exists bool
	Attr   string
	// Otherwise a comparison Left Cmp Right.
	Left  Expr
	Cmp   string // "=", "!=", "<", "<=", ">", ">="
	Right Expr
	Line  int
}

// Derive is one derived pair: Attr = Expr.
type Derive struct {
	Attr string
	Expr Expr
	Line int
}

// PairMapDecl is a declarative single-pair mapping:
//
//	map attr "value" -> attr "value", attr "value"
type PairMapDecl struct {
	Attr    string
	Value   Literal
	Derived []PairDecl
	Line    int
}

// PairDecl is one derived (attr, literal) pair of a map declaration.
type PairDecl struct {
	Attr  string
	Value Literal
}

// Literal is a string or numeric constant in ODL source.
type Literal struct {
	IsNum bool
	Str   string
	Num   float64
}
