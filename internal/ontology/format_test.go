package ontology

import (
	"reflect"
	"strings"
	"testing"

	"stopss/internal/message"
)

// normalizeDoc strips position information so structural comparison
// ignores line numbers.
func normalizeDoc(d *Document) *Document {
	out := *d
	out.Synonyms = append([]SynonymGroup{}, d.Synonyms...)
	for i := range out.Synonyms {
		out.Synonyms[i].Line = 0
	}
	var walk func(n ConceptNode) ConceptNode
	walk = func(n ConceptNode) ConceptNode {
		n.Line = 0
		kids := make([]ConceptNode, len(n.Children))
		for i, c := range n.Children {
			kids[i] = walk(c)
		}
		n.Children = kids
		return n
	}
	out.Concepts = make([]ConceptNode, len(d.Concepts))
	for i, c := range d.Concepts {
		out.Concepts[i] = walk(c)
	}
	out.Rules = append([]RuleDecl{}, d.Rules...)
	for i := range out.Rules {
		out.Rules[i].Line = 0
		conds := append([]Condition{}, out.Rules[i].Conditions...)
		for j := range conds {
			conds[j].Line = 0
		}
		out.Rules[i].Conditions = conds
		ders := append([]Derive{}, out.Rules[i].Derives...)
		for j := range ders {
			ders[j].Line = 0
		}
		out.Rules[i].Derives = ders
	}
	out.PairMaps = append([]PairMapDecl{}, d.PairMaps...)
	for i := range out.PairMaps {
		out.PairMaps[i].Line = 0
	}
	return &out
}

func TestFormatRoundTripJobs(t *testing.T) {
	doc, err := Parse(jobsODL)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(doc)
	back, err := Parse(text)
	if err != nil {
		t.Fatalf("formatted output does not parse: %v\n%s", err, text)
	}
	if !reflect.DeepEqual(normalizeDoc(doc), normalizeDoc(back)) {
		t.Errorf("round trip changed the document\n--- formatted ---\n%s", text)
	}
}

func TestFormatIdempotent(t *testing.T) {
	doc, err := Parse(jobsODL)
	if err != nil {
		t.Fatal(err)
	}
	once := Format(doc)
	doc2, err := Parse(once)
	if err != nil {
		t.Fatal(err)
	}
	twice := Format(doc2)
	if once != twice {
		t.Errorf("Format not idempotent:\n--- once ---\n%s\n--- twice ---\n%s", once, twice)
	}
}

func TestFormatQuotesKeywordsAndSpaces(t *testing.T) {
	doc := &Document{
		Domain: "jobs domain", // space → quoted
		Synonyms: []SynonymGroup{
			{Root: "rule", Members: []string{"map", "plain"}}, // keywords → quoted
		},
		Concepts: []ConceptNode{{Name: "graduate degree"}},
	}
	text := Format(doc)
	for _, want := range []string{`"jobs domain"`, `"rule":`, `"map"`, `"graduate degree"`} {
		if !strings.Contains(text, want) {
			t.Errorf("formatted output missing %q:\n%s", want, text)
		}
	}
	back, err := Parse(text)
	if err != nil {
		t.Fatalf("quoted output does not parse: %v\n%s", err, text)
	}
	if back.Domain != "jobs domain" || back.Synonyms[0].Root != "rule" {
		t.Errorf("round trip lost quoting: %+v", back)
	}
}

func TestFormatRoundTripRuleExpressions(t *testing.T) {
	src := `
domain d
mappings {
    rule r1 when attr(x) > 0 and exists(y) and attr(s) = "lit"
        derive out = -(attr(x) + 2) * 3 / (1 + 1), msg = "pre-" + attr(s)
    map position "mainframe developer" -> skill "COBOL", years 2.5, neg -3
}
`
	doc, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(doc)
	back, err := Parse(text)
	if err != nil {
		t.Fatalf("formatted output does not parse: %v\n%s", err, text)
	}
	// Compare semantics rather than AST shape (parenthesization may
	// differ): evaluate the derive expressions on a probe event.
	probe := func(d *Document) []string {
		var out []string
		for _, r := range d.Rules {
			for _, dv := range r.Derives {
				v, err := dv.Expr.Eval(mustEvent())
				if err != nil {
					out = append(out, "err:"+err.Error())
				} else {
					out = append(out, v.String())
				}
			}
		}
		for _, pm := range d.PairMaps {
			out = append(out, formatLiteral(pm.Value))
			for _, dd := range pm.Derived {
				out = append(out, dd.Attr+"="+formatLiteral(dd.Value))
			}
		}
		return out
	}
	if !reflect.DeepEqual(probe(doc), probe(back)) {
		t.Errorf("round trip changed semantics:\n orig: %v\n back: %v\n--- formatted ---\n%s",
			probe(doc), probe(back), text)
	}
}

func mustEvent() message.Event {
	return message.E("x", 4, "s", "lit", "y", 1)
}
