package ontology

import (
	"strings"
	"testing"
)

func kinds(toks []token) []tokKind {
	out := make([]tokKind, len(toks))
	for i, t := range toks {
		out[i] = t.kind
	}
	return out
}

func TestLexBasics(t *testing.T) {
	toks, err := lexAll(`domain jobs { } ( ) : , -> + - * / = != < <= > >=`)
	if err != nil {
		t.Fatal(err)
	}
	want := []tokKind{
		tokIdent, tokIdent, tokLBrace, tokRBrace, tokLParen, tokRParen,
		tokColon, tokComma, tokArrow, tokPlus, tokMinus, tokStar, tokSlash,
		tokEq, tokNe, tokLt, tokLe, tokGt, tokGe, tokEOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("kinds = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexStringsAndEscapes(t *testing.T) {
	toks, err := lexAll(`"alma mater" "quo\"te" "tab\t" "back\\slash" "line\n"`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"alma mater", `quo"te`, "tab\t", `back\slash`, "line\n"}
	for i, w := range want {
		if toks[i].kind != tokString || toks[i].text != w {
			t.Errorf("token %d = %v, want string %q", i, toks[i], w)
		}
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := lexAll(`42 2.5 1990 0.125`)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{42, 2.5, 1990, 0.125}
	for i, w := range want {
		if toks[i].kind != tokNumber || toks[i].num != w {
			t.Errorf("token %d = %v, want number %g", i, toks[i], w)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks, err := lexAll("a # comment to end of line\nb # another\n# full line\nc")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 4 { // a b c EOF
		t.Fatalf("tokens = %v", toks)
	}
	if toks[1].text != "b" || toks[1].line != 2 {
		t.Errorf("line tracking broken: %+v", toks[1])
	}
	if toks[2].line != 4 {
		t.Errorf("token c on line %d, want 4", toks[2].line)
	}
}

func TestLexIdentifiers(t *testing.T) {
	toks, err := lexAll(`foo foo_bar foo-bar foo2 _x`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"foo", "foo_bar", "foo-bar", "foo2", "_x"}
	for i, w := range want {
		if toks[i].kind != tokIdent || toks[i].text != w {
			t.Errorf("token %d = %v, want ident %q", i, toks[i], w)
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{
		`"unterminated`,
		`"bad escape \q"`,
		`"unterminated escape \`,
		`1.2.3`,
		`!x`,
		"\"newline\nin string\"",
		`@`,
	} {
		if _, err := lexAll(src); err == nil {
			t.Errorf("lexAll(%q) should fail", src)
		} else if !strings.HasPrefix(err.Error(), "odl:") {
			t.Errorf("error should carry position: %v", err)
		}
	}
}

func TestLexPositionInError(t *testing.T) {
	_, err := lexAll("ok ok\n   @")
	if err == nil {
		t.Fatal("expected error")
	}
	oerr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if oerr.Line != 2 || oerr.Col != 4 {
		t.Errorf("position = %d:%d, want 2:4", oerr.Line, oerr.Col)
	}
}

func TestArrowVsMinus(t *testing.T) {
	toks, err := lexAll(`a -> b - c -5`)
	if err != nil {
		t.Fatal(err)
	}
	want := []tokKind{tokIdent, tokArrow, tokIdent, tokMinus, tokIdent, tokMinus, tokNumber, tokEOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", got, want)
		}
	}
}
