package ontology

import (
	"encoding/xml"
	"fmt"
	"strings"

	"stopss/internal/semantic"
)

// This file implements the paper's stated future work (§2): "automating
// translation of ontologies expressed in DAML+OIL into a more efficient
// representation suitable for S-ToPSS."
//
// ImportDAML reads the subset of DAML+OIL (RDF/XML syntax) that carries
// the knowledge S-ToPSS consumes:
//
//   - daml:Class rdf:ID="car" with nested rdfs:subClassOf
//     rdf:resource="#vehicle"      → concept-hierarchy is-a edges
//   - daml:samePropertyAs / daml:sameClassAs / daml:equivalentTo
//     (nested in a class/property)  → synonym groups, rooted at the
//     element that declares the equivalence
//   - rdfs:label                    → alternative surface form, treated
//     as a synonym of the ID
//
// Mapping functions have no DAML+OIL counterpart (they are arbitrary
// computations); they remain the domain expert's job and are declared in
// ODL or Go. The importer returns an Ontology whose Mappings registry is
// empty.

// damlDocument mirrors the RDF/XML structure we accept.
type damlDocument struct {
	XMLName    xml.Name       `xml:"RDF"`
	Classes    []damlClass    `xml:"Class"`
	Properties []damlProperty `xml:"DatatypeProperty"`
	ObjProps   []damlProperty `xml:"ObjectProperty"`
}

type damlClass struct {
	ID          string         `xml:"ID,attr"`
	About       string         `xml:"about,attr"`
	Label       string         `xml:"label"`
	SubClassOf  []damlResource `xml:"subClassOf"`
	SameClassAs []damlResource `xml:"sameClassAs"`
	Equivalent  []damlResource `xml:"equivalentTo"`
}

type damlProperty struct {
	ID             string         `xml:"ID,attr"`
	About          string         `xml:"about,attr"`
	Label          string         `xml:"label"`
	SamePropertyAs []damlResource `xml:"samePropertyAs"`
	Equivalent     []damlResource `xml:"equivalentTo"`
}

type damlResource struct {
	Resource string `xml:"resource,attr"`
}

// refName extracts the local concept name from an rdf:resource reference
// ("#vehicle" or "http://example.org/onto#vehicle" → "vehicle").
func refName(ref string) string {
	if i := strings.LastIndex(ref, "#"); i >= 0 {
		return ref[i+1:]
	}
	if i := strings.LastIndex(ref, "/"); i >= 0 {
		return ref[i+1:]
	}
	return ref
}

// nameOf returns a node's own name: rdf:ID, or the fragment of
// rdf:about.
func nameOf(id, about string) string {
	if id != "" {
		return id
	}
	return refName(about)
}

// ImportDAML parses a DAML+OIL (RDF/XML subset) document and compiles it
// into the runtime structures. domain names the resulting ontology.
func ImportDAML(src string, domain string) (*Ontology, error) {
	var doc damlDocument
	dec := xml.NewDecoder(strings.NewReader(src))
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("ontology: parsing DAML+OIL: %w", err)
	}
	if domain == "" {
		domain = "daml-import"
	}
	o := &Ontology{
		Domain:    domain,
		Synonyms:  semantic.NewSynonyms(),
		Hierarchy: semantic.NewHierarchy(),
		Mappings:  semantic.NewMappings(),
	}

	for _, c := range doc.Classes {
		name := nameOf(c.ID, c.About)
		if name == "" {
			return nil, fmt.Errorf("ontology: DAML class without rdf:ID or rdf:about")
		}
		if err := o.Hierarchy.AddConcept(name); err != nil {
			return nil, err
		}
		for _, sup := range c.SubClassOf {
			parent := refName(sup.Resource)
			if parent == "" {
				return nil, fmt.Errorf("ontology: class %q has empty rdfs:subClassOf resource", name)
			}
			if err := o.Hierarchy.AddIsA(name, parent); err != nil {
				return nil, fmt.Errorf("ontology: class %q: %w", name, err)
			}
		}
		var syns []string
		for _, eq := range append(c.SameClassAs, c.Equivalent...) {
			if s := refName(eq.Resource); s != "" && s != name {
				syns = append(syns, s)
			}
		}
		if c.Label != "" && c.Label != name {
			syns = append(syns, c.Label)
		}
		if len(syns) > 0 {
			if err := o.Synonyms.AddGroup(name, syns...); err != nil {
				return nil, fmt.Errorf("ontology: class %q synonyms: %w", name, err)
			}
		}
	}

	props := append(append([]damlProperty{}, doc.Properties...), doc.ObjProps...)
	for _, p := range props {
		name := nameOf(p.ID, p.About)
		if name == "" {
			return nil, fmt.Errorf("ontology: DAML property without rdf:ID or rdf:about")
		}
		var syns []string
		for _, eq := range append(p.SamePropertyAs, p.Equivalent...) {
			if s := refName(eq.Resource); s != "" && s != name {
				syns = append(syns, s)
			}
		}
		if p.Label != "" && p.Label != name {
			syns = append(syns, p.Label)
		}
		if len(syns) > 0 {
			if err := o.Synonyms.AddGroup(name, syns...); err != nil {
				return nil, fmt.Errorf("ontology: property %q synonyms: %w", name, err)
			}
		}
	}
	return o, nil
}
