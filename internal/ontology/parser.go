package ontology

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

// Parse parses one ODL document.
func Parse(src string) (*Document, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.document()
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) peek() token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) expect(k tokKind) (token, error) {
	t := p.cur()
	if t.kind != k {
		return t, errf(t.line, t.col, "expected %s, found %s", k, t)
	}
	return p.advance(), nil
}

// expectKeyword consumes an identifier with the given text.
func (p *parser) expectKeyword(kw string) error {
	t := p.cur()
	if t.kind != tokIdent || t.text != kw {
		return errf(t.line, t.col, "expected %q, found %s", kw, t)
	}
	p.advance()
	return nil
}

// atKeyword reports whether the current token is the identifier kw.
func (p *parser) atKeyword(kw string) bool {
	t := p.cur()
	return t.kind == tokIdent && t.text == kw
}

// term consumes an identifier or quoted string and returns its text.
func (p *parser) term() (string, error) {
	t := p.cur()
	switch t.kind {
	case tokIdent, tokString:
		p.advance()
		if t.text == "" {
			return "", errf(t.line, t.col, "empty term")
		}
		return t.text, nil
	default:
		return "", errf(t.line, t.col, "expected a term (identifier or string), found %s", t)
	}
}

// document := "domain" term section*
func (p *parser) document() (*Document, error) {
	if err := p.expectKeyword("domain"); err != nil {
		return nil, err
	}
	name, err := p.term()
	if err != nil {
		return nil, err
	}
	doc := &Document{Domain: name}
	for p.cur().kind != tokEOF {
		t := p.cur()
		switch {
		case p.atKeyword("synonyms"):
			if err := p.synonymsSection(doc); err != nil {
				return nil, err
			}
		case p.atKeyword("concepts"):
			if err := p.conceptsSection(doc); err != nil {
				return nil, err
			}
		case p.atKeyword("mappings"):
			if err := p.mappingsSection(doc); err != nil {
				return nil, err
			}
		default:
			return nil, errf(t.line, t.col, "expected a section (synonyms, concepts or mappings), found %s", t)
		}
	}
	return doc, nil
}

// synonymsSection := "synonyms" "{" group* "}"
// group           := term ":" term ("," term)*
func (p *parser) synonymsSection(doc *Document) error {
	p.advance() // "synonyms"
	if _, err := p.expect(tokLBrace); err != nil {
		return err
	}
	for p.cur().kind != tokRBrace {
		line := p.cur().line
		root, err := p.term()
		if err != nil {
			return err
		}
		if _, err := p.expect(tokColon); err != nil {
			return err
		}
		g := SynonymGroup{Root: root, Line: line}
		for {
			member, err := p.term()
			if err != nil {
				return err
			}
			g.Members = append(g.Members, member)
			if p.cur().kind != tokComma {
				break
			}
			p.advance()
		}
		doc.Synonyms = append(doc.Synonyms, g)
	}
	_, err := p.expect(tokRBrace)
	return err
}

// conceptsSection := "concepts" "{" conceptNode* "}"
// conceptNode     := term ("{" conceptNode* "}")?
func (p *parser) conceptsSection(doc *Document) error {
	p.advance() // "concepts"
	if _, err := p.expect(tokLBrace); err != nil {
		return err
	}
	for p.cur().kind != tokRBrace {
		n, err := p.conceptNode(0)
		if err != nil {
			return err
		}
		doc.Concepts = append(doc.Concepts, n)
	}
	_, err := p.expect(tokRBrace)
	return err
}

const maxConceptDepth = 64

func (p *parser) conceptNode(depth int) (ConceptNode, error) {
	if depth > maxConceptDepth {
		t := p.cur()
		return ConceptNode{}, errf(t.line, t.col, "concept nesting exceeds %d levels", maxConceptDepth)
	}
	line := p.cur().line
	name, err := p.term()
	if err != nil {
		return ConceptNode{}, err
	}
	n := ConceptNode{Name: name, Line: line}
	if p.cur().kind == tokLBrace {
		p.advance()
		for p.cur().kind != tokRBrace {
			child, err := p.conceptNode(depth + 1)
			if err != nil {
				return ConceptNode{}, err
			}
			n.Children = append(n.Children, child)
		}
		if _, err := p.expect(tokRBrace); err != nil {
			return ConceptNode{}, err
		}
	}
	return n, nil
}

// mappingsSection := "mappings" "{" (rule | pairMap)* "}"
func (p *parser) mappingsSection(doc *Document) error {
	p.advance() // "mappings"
	if _, err := p.expect(tokLBrace); err != nil {
		return err
	}
	for p.cur().kind != tokRBrace {
		switch {
		case p.atKeyword("rule"):
			r, err := p.ruleDecl()
			if err != nil {
				return err
			}
			doc.Rules = append(doc.Rules, r)
		case p.atKeyword("map"):
			m, err := p.pairMapDecl()
			if err != nil {
				return err
			}
			doc.PairMaps = append(doc.PairMaps, m)
		default:
			t := p.cur()
			return errf(t.line, t.col, "expected 'rule' or 'map', found %s", t)
		}
	}
	_, err := p.expect(tokRBrace)
	return err
}

// ruleDecl := "rule" ident ("when" condition ("and" condition)*)?
//
//	"derive" derive ("," derive)*
func (p *parser) ruleDecl() (RuleDecl, error) {
	line := p.cur().line
	p.advance() // "rule"
	nameTok, err := p.expect(tokIdent)
	if err != nil {
		return RuleDecl{}, err
	}
	r := RuleDecl{Name: nameTok.text, Line: line}
	if p.atKeyword("when") {
		p.advance()
		for {
			c, err := p.condition()
			if err != nil {
				return RuleDecl{}, err
			}
			r.Conditions = append(r.Conditions, c)
			if !p.atKeyword("and") {
				break
			}
			p.advance()
		}
	}
	if err := p.expectKeyword("derive"); err != nil {
		return RuleDecl{}, err
	}
	for {
		dLine := p.cur().line
		attr, err := p.term()
		if err != nil {
			return RuleDecl{}, err
		}
		if _, err := p.expect(tokEq); err != nil {
			return RuleDecl{}, err
		}
		expr, err := p.expr()
		if err != nil {
			return RuleDecl{}, err
		}
		r.Derives = append(r.Derives, Derive{Attr: attr, Expr: expr, Line: dLine})
		if p.cur().kind != tokComma {
			break
		}
		p.advance()
	}
	return r, nil
}

// condition := "exists" "(" term ")" | expr cmp expr
func (p *parser) condition() (Condition, error) {
	line := p.cur().line
	if p.atKeyword("exists") && p.peek().kind == tokLParen {
		p.advance() // "exists"
		p.advance() // "("
		attr, err := p.term()
		if err != nil {
			return Condition{}, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return Condition{}, err
		}
		return Condition{Exists: true, Attr: attr, Line: line}, nil
	}
	left, err := p.expr()
	if err != nil {
		return Condition{}, err
	}
	t := p.cur()
	var cmp string
	switch t.kind {
	case tokEq:
		cmp = "="
	case tokNe:
		cmp = "!="
	case tokLt:
		cmp = "<"
	case tokLe:
		cmp = "<="
	case tokGt:
		cmp = ">"
	case tokGe:
		cmp = ">="
	default:
		return Condition{}, errf(t.line, t.col, "expected a comparison operator, found %s", t)
	}
	p.advance()
	right, err := p.expr()
	if err != nil {
		return Condition{}, err
	}
	return Condition{Left: left, Cmp: cmp, Right: right, Line: line}, nil
}

// expr := term (('+'|'-') term)*
func (p *parser) expr() (Expr, error) {
	left, err := p.mulTerm()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().kind {
		case tokPlus:
			p.advance()
			right, err := p.mulTerm()
			if err != nil {
				return nil, err
			}
			left = BinOp{Op: '+', L: left, R: right}
		case tokMinus:
			p.advance()
			right, err := p.mulTerm()
			if err != nil {
				return nil, err
			}
			left = BinOp{Op: '-', L: left, R: right}
		default:
			return left, nil
		}
	}
}

// mulTerm := unary (('*'|'/') unary)*
func (p *parser) mulTerm() (Expr, error) {
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().kind {
		case tokStar:
			p.advance()
			right, err := p.unary()
			if err != nil {
				return nil, err
			}
			left = BinOp{Op: '*', L: left, R: right}
		case tokSlash:
			p.advance()
			right, err := p.unary()
			if err != nil {
				return nil, err
			}
			left = BinOp{Op: '/', L: left, R: right}
		default:
			return left, nil
		}
	}
}

// unary := '-' unary | primary
func (p *parser) unary() (Expr, error) {
	if p.cur().kind == tokMinus {
		p.advance()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return Neg{X: x}, nil
	}
	return p.primary()
}

// primary := number | string | "attr" "(" term ")" | "(" expr ")"
func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.advance()
		return NumLit{V: t.num}, nil
	case t.kind == tokString:
		p.advance()
		return StrLit{V: t.text}, nil
	case t.kind == tokIdent && t.text == "attr":
		p.advance()
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		name, err := p.term()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return AttrRef{Name: name}, nil
	case t.kind == tokLParen:
		p.advance()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, errf(t.line, t.col, "expected an expression, found %s", t)
	}
}

// pairMapDecl := "map" term literal "->" pair ("," pair)*
// pair        := term literal
func (p *parser) pairMapDecl() (PairMapDecl, error) {
	line := p.cur().line
	p.advance() // "map"
	attr, err := p.term()
	if err != nil {
		return PairMapDecl{}, err
	}
	val, err := p.literal()
	if err != nil {
		return PairMapDecl{}, err
	}
	if _, err := p.expect(tokArrow); err != nil {
		return PairMapDecl{}, err
	}
	m := PairMapDecl{Attr: attr, Value: val, Line: line}
	for {
		dAttr, err := p.term()
		if err != nil {
			return PairMapDecl{}, err
		}
		dVal, err := p.literal()
		if err != nil {
			return PairMapDecl{}, err
		}
		m.Derived = append(m.Derived, PairDecl{Attr: dAttr, Value: dVal})
		if p.cur().kind != tokComma {
			break
		}
		p.advance()
	}
	return m, nil
}

// literal := string | number | ident (bare word treated as string)
func (p *parser) literal() (Literal, error) {
	t := p.cur()
	switch t.kind {
	case tokString, tokIdent:
		p.advance()
		return Literal{Str: t.text}, nil
	case tokNumber:
		p.advance()
		return Literal{IsNum: true, Num: t.num}, nil
	case tokMinus:
		p.advance()
		n, err := p.expect(tokNumber)
		if err != nil {
			return Literal{}, err
		}
		return Literal{IsNum: true, Num: -n.num}, nil
	default:
		return Literal{}, errf(t.line, t.col, "expected a literal, found %s", t)
	}
}
