package ontology

import (
	"strings"
	"testing"

	"stopss/internal/core"
	"stopss/internal/message"
	"stopss/internal/semantic"
)

// autosDAML expresses (a fragment of) the autos domain in DAML+OIL
// RDF/XML syntax, the interchange format of the paper's future work.
const autosDAML = `<?xml version="1.0"?>
<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
         xmlns:rdfs="http://www.w3.org/2000/01/rdf-schema#"
         xmlns:daml="http://www.daml.org/2001/03/daml+oil#">

  <daml:Class rdf:ID="vehicle"/>

  <daml:Class rdf:ID="car">
    <rdfs:subClassOf rdf:resource="#vehicle"/>
    <daml:sameClassAs rdf:resource="#automobile"/>
    <rdfs:label>auto</rdfs:label>
  </daml:Class>

  <daml:Class rdf:ID="sedan">
    <rdfs:subClassOf rdf:resource="#car"/>
  </daml:Class>

  <daml:Class rdf:about="http://example.org/autos#truck">
    <rdfs:subClassOf rdf:resource="http://example.org/autos#vehicle"/>
  </daml:Class>

  <daml:DatatypeProperty rdf:ID="price">
    <daml:samePropertyAs rdf:resource="#cost"/>
  </daml:DatatypeProperty>

  <daml:ObjectProperty rdf:ID="university">
    <daml:equivalentTo rdf:resource="#school"/>
    <rdfs:label>college</rdfs:label>
  </daml:ObjectProperty>
</rdf:RDF>
`

func TestImportDAML(t *testing.T) {
	o, err := ImportDAML(autosDAML, "autos")
	if err != nil {
		t.Fatal(err)
	}
	if o.Domain != "autos" {
		t.Errorf("Domain = %q", o.Domain)
	}
	// Hierarchy: sedan → car → vehicle, truck → vehicle (via rdf:about URIs).
	if !o.Hierarchy.IsA("sedan", "vehicle") {
		t.Error("sedan should be a vehicle transitively")
	}
	if !o.Hierarchy.IsA("truck", "vehicle") {
		t.Error("rdf:about URI references should resolve to local names")
	}
	if o.Hierarchy.IsA("vehicle", "sedan") {
		t.Error("direction reversed")
	}
	// Synonyms: sameClassAs + rdfs:label on classes, samePropertyAs +
	// equivalentTo + label on properties.
	for term, root := range map[string]string{
		"automobile": "car",
		"auto":       "car",
		"cost":       "price",
		"school":     "university",
		"college":    "university",
	} {
		if got, _ := o.Synonyms.Canonical(term); got != root {
			t.Errorf("Canonical(%q) = %q, want %q", term, got, root)
		}
	}
	// No mapping functions come from DAML.
	if o.Mappings.Len() != 0 {
		t.Errorf("Mappings.Len = %d, want 0", o.Mappings.Len())
	}
	if !strings.Contains(o.Summary(), "autos") {
		t.Errorf("Summary = %q", o.Summary())
	}
}

func TestImportDAMLErrors(t *testing.T) {
	cases := []string{
		`not xml at all`,
		`<?xml version="1.0"?><rdf:RDF xmlns:rdf="x" xmlns:daml="y"><daml:Class/></rdf:RDF>`, // no ID
		`<?xml version="1.0"?><rdf:RDF xmlns:rdf="x" xmlns:rdfs="z" xmlns:daml="y">
		   <daml:Class rdf:ID="a"><rdfs:subClassOf rdf:resource="#b"/></daml:Class>
		   <daml:Class rdf:ID="b"><rdfs:subClassOf rdf:resource="#a"/></daml:Class>
		 </rdf:RDF>`, // cycle
	}
	for _, src := range cases {
		if _, err := ImportDAML(src, "d"); err == nil {
			t.Errorf("ImportDAML should fail on %q", src[:min(40, len(src))])
		}
	}
}

func TestImportDAMLDefaultDomain(t *testing.T) {
	o, err := ImportDAML(`<?xml version="1.0"?><rdf:RDF xmlns:rdf="x"></rdf:RDF>`, "")
	if err != nil {
		t.Fatal(err)
	}
	if o.Domain != "daml-import" {
		t.Errorf("Domain = %q", o.Domain)
	}
}

// TestDAMLEquivalentToODL: the same knowledge expressed in DAML+OIL and
// in ODL drives the engine to identical matching decisions — the
// "translation into a more efficient representation" is faithful.
func TestDAMLEquivalentToODL(t *testing.T) {
	odl := `
domain autos
synonyms {
    car: automobile, auto
    price: cost
    university: school, college
}
concepts {
    vehicle { car { sedan } truck }
}
`
	fromODL, err := Load(odl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fromDAML, err := ImportDAML(autosDAML, "autos")
	if err != nil {
		t.Fatal(err)
	}

	sub := message.NewSubscription(1, "dealer",
		message.Pred("item", message.OpEq, message.String("vehicle")))
	probe := func(o *Ontology) []message.SubID {
		eng := core.NewEngine(o.Stage(semantic.FullConfig()))
		if err := eng.Subscribe(sub); err != nil {
			t.Fatal(err)
		}
		res, err := eng.Publish(message.E("item", "sedan"))
		if err != nil {
			t.Fatal(err)
		}
		return res.Matches
	}
	a, b := probe(fromODL), probe(fromDAML)
	if len(a) != 1 || len(b) != 1 {
		t.Errorf("ODL matches %v, DAML matches %v — both should be [1]", a, b)
	}
}

// TestMergeDAMLWithODL: imported DAML ontologies merge with ODL-compiled
// ones like any other (multi-domain operation).
func TestMergeDAMLWithODL(t *testing.T) {
	daml, err := ImportDAML(autosDAML, "autos")
	if err != nil {
		t.Fatal(err)
	}
	odl, err := Load(`domain jobs synonyms { degree: diploma }`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	merged, err := Merge(daml, odl)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := merged.Synonyms.Canonical("diploma"); got != "degree" {
		t.Error("ODL synonyms lost")
	}
	if !merged.Hierarchy.IsA("sedan", "vehicle") {
		t.Error("DAML hierarchy lost")
	}
}
