package ontology

import (
	"fmt"
	"strconv"
	"strings"
)

// Format renders a Document back into canonical ODL source. The output
// parses back to a structurally identical document (round-trip property
// tested), making it suitable for ontology normalization and diffing —
// `ontc` can thus act as a formatter.
func Format(doc *Document) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "domain %s\n", formatTerm(doc.Domain))

	if len(doc.Synonyms) > 0 {
		sb.WriteString("\nsynonyms {\n")
		for _, g := range doc.Synonyms {
			members := make([]string, len(g.Members))
			for i, m := range g.Members {
				members[i] = formatTerm(m)
			}
			fmt.Fprintf(&sb, "    %s: %s\n", formatTerm(g.Root), strings.Join(members, ", "))
		}
		sb.WriteString("}\n")
	}

	if len(doc.Concepts) > 0 {
		sb.WriteString("\nconcepts {\n")
		for _, n := range doc.Concepts {
			formatConcept(&sb, n, 1)
		}
		sb.WriteString("}\n")
	}

	if len(doc.Rules) > 0 || len(doc.PairMaps) > 0 {
		sb.WriteString("\nmappings {\n")
		for _, r := range doc.Rules {
			fmt.Fprintf(&sb, "    rule %s\n", r.Name)
			if len(r.Conditions) > 0 {
				conds := make([]string, len(r.Conditions))
				for i, c := range r.Conditions {
					conds[i] = formatCondition(c)
				}
				fmt.Fprintf(&sb, "        when %s\n", strings.Join(conds, " and "))
			}
			derives := make([]string, len(r.Derives))
			for i, d := range r.Derives {
				derives[i] = fmt.Sprintf("%s = %s", formatTerm(d.Attr), d.Expr)
			}
			fmt.Fprintf(&sb, "        derive %s\n", strings.Join(derives, ", "))
		}
		for _, pm := range doc.PairMaps {
			pairs := make([]string, len(pm.Derived))
			for i, d := range pm.Derived {
				pairs[i] = fmt.Sprintf("%s %s", formatTerm(d.Attr), formatLiteral(d.Value))
			}
			fmt.Fprintf(&sb, "    map %s %s -> %s\n",
				formatTerm(pm.Attr), formatLiteral(pm.Value), strings.Join(pairs, ", "))
		}
		sb.WriteString("}\n")
	}
	return sb.String()
}

func formatConcept(sb *strings.Builder, n ConceptNode, depth int) {
	indent := strings.Repeat("    ", depth)
	if len(n.Children) == 0 {
		fmt.Fprintf(sb, "%s%s\n", indent, formatTerm(n.Name))
		return
	}
	fmt.Fprintf(sb, "%s%s {\n", indent, formatTerm(n.Name))
	for _, c := range n.Children {
		formatConcept(sb, c, depth+1)
	}
	fmt.Fprintf(sb, "%s}\n", indent)
}

func formatCondition(c Condition) string {
	if c.Exists {
		return fmt.Sprintf("exists(%s)", formatTerm(c.Attr))
	}
	return fmt.Sprintf("%s %s %s", c.Left, c.Cmp, c.Right)
}

// formatTerm quotes a term unless it is a bare identifier.
func formatTerm(t string) string {
	if isBareIdent(t) {
		return t
	}
	return quoteODL(t)
}

// quoteODL renders a string literal using only the escapes the ODL
// lexer understands (\" \\ \n \t); all other bytes pass through
// verbatim. strconv.Quote is unsuitable here: it emits \xNN and \uNNNN
// escapes that ODL does not define.
func quoteODL(s string) string {
	var sb strings.Builder
	sb.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '"':
			sb.WriteString(`\"`)
		case '\\':
			sb.WriteString(`\\`)
		case '\n':
			sb.WriteString(`\n`)
		case '\t':
			sb.WriteString(`\t`)
		default:
			sb.WriteByte(c)
		}
	}
	sb.WriteByte('"')
	return sb.String()
}

func isBareIdent(t string) bool {
	if t == "" {
		return false
	}
	// Keywords must be quoted to avoid being re-parsed as structure.
	switch t {
	case "domain", "synonyms", "concepts", "mappings", "rule", "map",
		"when", "derive", "and", "exists", "attr":
		return false
	}
	if !isIdentStart(t[0]) || t[0] >= 0x80 {
		return false
	}
	for i := 0; i < len(t); i++ {
		c := t[i]
		if c >= 0x80 || !isIdentPart(c) {
			return false
		}
	}
	return true
}

func formatLiteral(l Literal) string {
	if l.IsNum {
		return strconv.FormatFloat(l.Num, 'g', -1, 64)
	}
	return quoteODL(l.Str)
}
