package ontology

import (
	"strings"
	"testing"
)

const jobsODL = `
# The job-finder domain of the paper's running examples.
domain jobs

synonyms {
    university: school, college, "alma mater"
    "professional experience": "work experience"
}

concepts {
    degree {
        "graduate degree" { PhD MSc }
        BSc
    }
}

mappings {
    rule experience_from_graduation
        when exists("graduation year")
        derive "professional experience" = 2003 - attr("graduation year")

    map position "mainframe developer" -> skill "COBOL", era "1960-1980"
}
`

func TestParseJobsDocument(t *testing.T) {
	doc, err := Parse(jobsODL)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Domain != "jobs" {
		t.Errorf("Domain = %q", doc.Domain)
	}
	if len(doc.Synonyms) != 2 {
		t.Fatalf("Synonyms = %d, want 2", len(doc.Synonyms))
	}
	if doc.Synonyms[0].Root != "university" || len(doc.Synonyms[0].Members) != 3 {
		t.Errorf("group 0 = %+v", doc.Synonyms[0])
	}
	if doc.Synonyms[0].Members[2] != "alma mater" {
		t.Errorf("quoted member = %q", doc.Synonyms[0].Members[2])
	}
	if len(doc.Concepts) != 1 || doc.Concepts[0].Name != "degree" {
		t.Fatalf("Concepts = %+v", doc.Concepts)
	}
	grad := doc.Concepts[0].Children[0]
	if grad.Name != "graduate degree" || len(grad.Children) != 2 {
		t.Errorf("graduate degree node = %+v", grad)
	}
	if len(doc.Rules) != 1 {
		t.Fatalf("Rules = %d, want 1", len(doc.Rules))
	}
	r := doc.Rules[0]
	if r.Name != "experience_from_graduation" || len(r.Conditions) != 1 || !r.Conditions[0].Exists {
		t.Errorf("rule = %+v", r)
	}
	if len(r.Derives) != 1 || r.Derives[0].Attr != "professional experience" {
		t.Errorf("derives = %+v", r.Derives)
	}
	if got := r.Derives[0].Expr.String(); got != `(2003 - attr("graduation year"))` {
		t.Errorf("expr = %q", got)
	}
	if len(doc.PairMaps) != 1 {
		t.Fatalf("PairMaps = %d, want 1", len(doc.PairMaps))
	}
	pm := doc.PairMaps[0]
	if pm.Attr != "position" || pm.Value.Str != "mainframe developer" || len(pm.Derived) != 2 {
		t.Errorf("pair map = %+v", pm)
	}
}

func TestParseRuleVariants(t *testing.T) {
	src := `
domain d
mappings {
    rule simple derive a = 1
    rule multi_derive derive a = 1, b = attr(x) * 2
    rule multi_cond when attr(x) > 0 and attr(y) != "no" and exists(z)
        derive w = attr(x) + attr(y)
    rule arithmetic derive v = -(attr(a) + 2) * 3 / (1 + 1) - -4
    rule strings when attr(s) = "yes" derive msg = "pre-" + attr(s)
}
`
	doc, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Rules) != 5 {
		t.Fatalf("Rules = %d, want 5", len(doc.Rules))
	}
	if len(doc.Rules[1].Derives) != 2 {
		t.Errorf("multi_derive has %d derives", len(doc.Rules[1].Derives))
	}
	if len(doc.Rules[2].Conditions) != 3 {
		t.Errorf("multi_cond has %d conditions", len(doc.Rules[2].Conditions))
	}
}

func TestParseConceptForest(t *testing.T) {
	src := `
domain autos
concepts {
    vehicle {
        car { sedan suv }
        truck { pickup }
    }
    color { red blue }
}
`
	doc, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Concepts) != 2 {
		t.Fatalf("roots = %d, want 2", len(doc.Concepts))
	}
	if len(doc.Concepts[0].Children) != 2 || len(doc.Concepts[0].Children[0].Children) != 2 {
		t.Errorf("vehicle subtree = %+v", doc.Concepts[0])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src      string
		contains string
	}{
		{``, `expected "domain"`},
		{`domain`, "expected a term"},
		{`domain d junk`, "expected a section"},
		{`domain d synonyms { a }`, "expected ':'"},
		{`domain d synonyms { a: }`, "expected a term"},
		{`domain d synonyms { a: b,, }`, "expected a term"},
		{`domain d concepts { `, "expected a term"},
		{`domain d concepts { a { b }`, "expected a term"},
		{`domain d mappings { junk }`, "expected 'rule' or 'map'"},
		{`domain d mappings { rule }`, "expected identifier"},
		{`domain d mappings { rule r }`, `expected "derive"`},
		{`domain d mappings { rule r derive }`, "expected a term"},
		{`domain d mappings { rule r derive a }`, "expected '='"},
		{`domain d mappings { rule r derive a = }`, "expected an expression"},
		{`domain d mappings { rule r when derive a = 1 }`, "expected an expression"},
		{`domain d mappings { rule r when exists(x derive a = 1 }`, "expected ')'"},
		{`domain d mappings { rule r derive a = (1 + }`, "expected an expression"},
		{`domain d mappings { rule r derive a = (1 }`, "expected ')'"},
		{`domain d mappings { rule r derive a = attr }`, "expected '('"},
		{`domain d mappings { map a -> b 1 }`, "expected a literal"},
		{`domain d mappings { map a 1 b 2 }`, "expected '->'"},
		{`domain d mappings { map a 1 -> }`, "expected a term"},
		{`domain d mappings { map a 1 -> b }`, "expected a literal"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.src)
		if err == nil {
			t.Errorf("Parse(%q) should fail", tc.src)
			continue
		}
		if !strings.Contains(err.Error(), tc.contains) {
			t.Errorf("Parse(%q) error = %q, want contains %q", tc.src, err, tc.contains)
		}
	}
}

func TestParseDeepNestingRejected(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("domain d concepts { ")
	for i := 0; i < 80; i++ {
		sb.WriteString("a { ")
	}
	src := sb.String()
	if _, err := Parse(src); err == nil || !strings.Contains(err.Error(), "nesting") {
		t.Errorf("deep nesting should be rejected with a clear error, got %v", err)
	}
}

func TestParseNegativeLiteralInMap(t *testing.T) {
	doc, err := Parse(`domain d mappings { map t -1 -> u -2.5 }`)
	if err != nil {
		t.Fatal(err)
	}
	pm := doc.PairMaps[0]
	if !pm.Value.IsNum || pm.Value.Num != -1 {
		t.Errorf("match literal = %+v", pm.Value)
	}
	if !pm.Derived[0].Value.IsNum || pm.Derived[0].Value.Num != -2.5 {
		t.Errorf("derived literal = %+v", pm.Derived[0].Value)
	}
}

func TestParseMultipleSections(t *testing.T) {
	src := `
domain d
synonyms { a: b }
concepts { c }
mappings { rule r derive x = attr(a) }
synonyms { e: f }
`
	doc, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Synonyms) != 2 {
		t.Errorf("repeated sections should accumulate: %+v", doc.Synonyms)
	}
}
