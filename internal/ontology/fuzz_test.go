package ontology

import "testing"

// FuzzParse checks the ODL front end never panics and that accepted
// documents survive a format → parse round trip.
func FuzzParse(f *testing.F) {
	f.Add(jobsODL)
	f.Add(`domain d`)
	f.Add(`domain d synonyms { a: b, c }`)
	f.Add(`domain d concepts { a { b { c } d } }`)
	f.Add(`domain d mappings { rule r when exists(x) derive y = attr(x) * 2 - 1 }`)
	f.Add(`domain d mappings { map a "v" -> b "w", c 3 }`)
	f.Add(`domain "quoted domain" synonyms { "root term": "member term" }`)
	f.Add(`domain d # comment
synonyms { a: b }`)
	f.Add(`{{{{`)
	f.Add(`domain d mappings { rule r derive a = ((((1)))) }`)

	f.Fuzz(func(t *testing.T, src string) {
		doc, err := Parse(src)
		if err != nil {
			return
		}
		text := Format(doc)
		back, err := Parse(text)
		if err != nil {
			t.Fatalf("formatted ODL does not re-parse: %v\nsource: %q\nformat: %q", err, src, text)
		}
		// Idempotence: formatting the re-parse changes nothing.
		if again := Format(back); again != text {
			t.Fatalf("Format not idempotent:\nfirst:  %q\nsecond: %q", text, again)
		}
		// Compilation must not panic either; semantic errors are fine.
		_, _ = Compile(doc, Options{})
		_, _ = Compile(doc, Options{Normalize: true, Prefix: true})
	})
}

// FuzzImportDAML checks the XML importer against arbitrary input.
func FuzzImportDAML(f *testing.F) {
	f.Add(`<?xml version="1.0"?><rdf:RDF xmlns:rdf="x"></rdf:RDF>`)
	f.Add(`<?xml version="1.0"?><rdf:RDF xmlns:rdf="x" xmlns:rdfs="z" xmlns:daml="y">
<daml:Class rdf:ID="a"><rdfs:subClassOf rdf:resource="#b"/></daml:Class></rdf:RDF>`)
	f.Add(`not xml`)
	f.Add(`<rdf:RDF xmlns:rdf="x"><Class rdf:ID=""/></rdf:RDF>`)
	f.Fuzz(func(t *testing.T, src string) {
		o, err := ImportDAML(src, "fuzz")
		if err != nil {
			return
		}
		// Whatever imported must be internally consistent: ancestors
		// terminate (the importer rejects cycles).
		for _, root := range o.Hierarchy.Roots() {
			o.Hierarchy.Descendants(root)
		}
	})
}
