// Package sublang parses the textual surface syntax of S-ToPSS
// subscriptions and publications, which follows the notation of the
// paper:
//
//	subscription: (university = Toronto) and (degree = PhD) and
//	              (professional experience >= 4)
//	publication:  (school, Toronto)(degree, PhD)(graduation year, 1990)
//
// Attributes may contain spaces ("professional experience"). Values are
// type-inferred like message.ParseValue — integers, floats and booleans
// parse to their kinds, everything else is a string — unless quoted with
// double quotes, which forces string ("1990" stays a string). The
// conjunction keyword is "and" (case-insensitive); "&&" and "∧" are
// accepted as alternatives.
//
// Supported predicate forms:
//
//	(attr = v) (attr != v) (attr < v) (attr <= v) (attr > v) (attr >= v)
//	(attr prefix v) (attr suffix v) (attr contains v)
//	(attr exists) (attr not-exists)
//	(attr between lo and hi)
package sublang

import (
	"fmt"
	"strings"

	"stopss/internal/message"
)

// ParseError reports a syntax error with its byte offset in the input.
type ParseError struct {
	Input  string
	Offset int
	Msg    string
}

// Error implements error.
func (e *ParseError) Error() string {
	return fmt.Sprintf("sublang: %s at offset %d in %q", e.Msg, e.Offset, snippet(e.Input, e.Offset))
}

func snippet(s string, off int) string {
	const w = 20
	lo, hi := off-w, off+w
	if lo < 0 {
		lo = 0
	}
	if hi > len(s) {
		hi = len(s)
	}
	return s[lo:hi]
}

func errAt(input string, off int, format string, args ...any) error {
	return &ParseError{Input: input, Offset: off, Msg: fmt.Sprintf(format, args...)}
}

// ParseSubscriptionSet parses a disjunction of conjunctions:
//
//	(a = 1) and (b = 2) or (c = 3)
//
// "and" binds tighter than "or" ("||" is accepted as an alternative), so
// the example yields two groups: [a=1 ∧ b=2] and [c=3]. Content-based
// pub/sub systems represent a disjunctive subscription as one
// subscription per disjunct; the web application does exactly that.
func ParseSubscriptionSet(input string) ([][]message.Predicate, error) {
	var groups [][]message.Predicate
	start := 0
	i := 0
	inQuote := false
	flush := func(end, next int) error {
		part := strings.TrimSpace(input[start:end])
		if part == "" {
			return errAt(input, end, "empty disjunct")
		}
		preds, err := ParseSubscription(part)
		if err != nil {
			return err
		}
		groups = append(groups, preds)
		start = next
		return nil
	}
	for i < len(input) {
		c := input[i]
		switch {
		case inQuote:
			if c == '\\' {
				i++
			} else if c == '"' {
				inQuote = false
			}
			i++
		case c == '"':
			inQuote = true
			i++
		case c == 'o' || c == 'O':
			// Word-boundary "or" outside quotes.
			if i+2 <= len(input) && strings.EqualFold(input[i:i+2], "or") &&
				(i == 0 || isSpaceOrParen(input[i-1])) &&
				(i+2 == len(input) || isSpaceOrParen(input[i+2])) {
				if err := flush(i, i+2); err != nil {
					return nil, err
				}
				i += 2
				continue
			}
			i++
		case c == '|':
			if strings.HasPrefix(input[i:], "||") {
				if err := flush(i, i+2); err != nil {
					return nil, err
				}
				i += 2
				continue
			}
			i++
		default:
			i++
		}
	}
	if err := flush(len(input), len(input)); err != nil {
		return nil, err
	}
	return groups, nil
}

func isSpaceOrParen(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '(' || c == ')'
}

// FormatSubscriptionSet renders disjunct groups back to surface syntax.
func FormatSubscriptionSet(groups [][]message.Predicate) string {
	parts := make([]string, len(groups))
	for i, g := range groups {
		parts[i] = FormatSubscription(g)
	}
	return strings.Join(parts, " or ")
}

// ParseSubscription parses a conjunction of parenthesized predicates.
func ParseSubscription(input string) ([]message.Predicate, error) {
	var preds []message.Predicate
	i := skipSpace(input, 0)
	for i < len(input) {
		if input[i] != '(' {
			return nil, errAt(input, i, "expected '(' to open a predicate")
		}
		close, err := matchParen(input, i)
		if err != nil {
			return nil, err
		}
		p, err := parsePredicate(input, i+1, close)
		if err != nil {
			return nil, err
		}
		preds = append(preds, p)
		i = skipSpace(input, close+1)
		if i >= len(input) {
			break
		}
		// Conjunction separator (optional between back-to-back parens).
		if input[i] == '(' {
			continue
		}
		j, ok := eatConjunction(input, i)
		if !ok {
			return nil, errAt(input, i, "expected 'and' between predicates")
		}
		i = skipSpace(input, j)
		if i >= len(input) {
			return nil, errAt(input, i, "dangling conjunction")
		}
	}
	if len(preds) == 0 {
		return nil, errAt(input, 0, "empty subscription")
	}
	for _, p := range preds {
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("sublang: %w", err)
		}
	}
	return preds, nil
}

// ParseEvent parses a publication: a sequence of (attr, value) pairs.
func ParseEvent(input string) (message.Event, error) {
	var ev message.Event
	i := skipSpace(input, 0)
	for i < len(input) {
		if input[i] != '(' {
			return message.Event{}, errAt(input, i, "expected '(' to open a pair")
		}
		close, err := matchParen(input, i)
		if err != nil {
			return message.Event{}, err
		}
		body := input[i+1 : close]
		comma := commaSplit(body)
		if comma < 0 {
			return message.Event{}, errAt(input, i+1, "pair needs a comma: (attr, value)")
		}
		attr, err := attrToken(strings.TrimSpace(body[:comma]))
		if err != nil || attr == "" {
			return message.Event{}, errAt(input, i+1, "empty or malformed attribute")
		}
		val, err := parseValueToken(strings.TrimSpace(body[comma+1:]))
		if err != nil {
			return message.Event{}, errAt(input, i+1+comma, "%v", err)
		}
		ev.Add(attr, val)
		i = skipSpace(input, close+1)
	}
	if ev.Len() == 0 {
		return message.Event{}, errAt(input, 0, "empty publication")
	}
	return ev, nil
}

// FormatEvent renders an event back into surface syntax; quoted strings
// are used where type inference would otherwise change the kind.
func FormatEvent(e message.Event) string {
	var sb strings.Builder
	for _, p := range e.Pairs() {
		fmt.Fprintf(&sb, "(%s, %s)", formatAttr(p.Attr), formatValue(p.Val))
	}
	return sb.String()
}

// formatAttr quotes attribute names that would otherwise confuse the
// parser: embedded operator words, quotes, parentheses or commas.
func formatAttr(attr string) string {
	needsQuote := strings.ContainsAny(attr, `(),"=<>!`+"\\")
	if !needsQuote {
		for _, w := range []string{"prefix", "suffix", "contains", "exists", "not-exists", "between"} {
			for _, field := range strings.Fields(attr) {
				if field == w {
					needsQuote = true
				}
			}
		}
	}
	if needsQuote || attr == "" || attr != strings.TrimSpace(attr) {
		return `"` + escapeQuoted(attr) + `"`
	}
	return attr
}

// FormatSubscription renders predicates back into surface syntax.
func FormatSubscription(preds []message.Predicate) string {
	parts := make([]string, len(preds))
	for i, p := range preds {
		switch {
		case p.Op.IsUnary():
			parts[i] = fmt.Sprintf("(%s %s)", formatAttr(p.Attr), p.Op)
		case p.Op == message.OpBetween:
			parts[i] = fmt.Sprintf("(%s between %s and %s)", formatAttr(p.Attr), formatValue(p.Val), formatValue(p.Hi))
		default:
			parts[i] = fmt.Sprintf("(%s %s %s)", formatAttr(p.Attr), p.Op, formatValue(p.Val))
		}
	}
	return strings.Join(parts, " and ")
}

func formatValue(v message.Value) string {
	if v.Kind() == message.KindString {
		s := v.Str()
		// Quote when inference would mis-kind or structure would break.
		if message.ParseValue(s).Kind() != message.KindString ||
			strings.ContainsAny(s, `(),"\`) || s == "" ||
			s != strings.TrimSpace(s) {
			return `"` + escapeQuoted(s) + `"`
		}
		return s
	}
	out := v.String()
	if v.Kind() == message.KindFloat && message.ParseValue(out).Kind() != message.KindFloat {
		// An integral float like 5.0 prints as "5"; keep the kind.
		out += ".0"
	}
	return out
}

// --- internals ---

func skipSpace(s string, i int) int {
	for i < len(s) && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r') {
		i++
	}
	return i
}

// matchParen returns the index of the ')' closing the '(' at i,
// honouring double-quoted segments.
func matchParen(s string, i int) (int, error) {
	inQuote := false
	for j := i + 1; j < len(s); j++ {
		switch {
		case inQuote:
			if s[j] == '\\' {
				j++
			} else if s[j] == '"' {
				inQuote = false
			}
		case s[j] == '"':
			inQuote = true
		case s[j] == ')':
			return j, nil
		case s[j] == '(':
			return 0, errAt(s, j, "nested '(' not allowed")
		}
	}
	return 0, errAt(s, i, "unclosed '('")
}

// commaSplit finds the first top-level comma, honouring quotes.
func commaSplit(body string) int {
	inQuote := false
	for j := 0; j < len(body); j++ {
		switch {
		case inQuote:
			if body[j] == '\\' {
				j++
			} else if body[j] == '"' {
				inQuote = false
			}
		case body[j] == '"':
			inQuote = true
		case body[j] == ',':
			return j
		}
	}
	return -1
}

// eatConjunction consumes "and", "&&" or "∧" at i, case-insensitively,
// returning the index after it.
func eatConjunction(s string, i int) (int, bool) {
	rest := s[i:]
	switch {
	case len(rest) >= 3 && strings.EqualFold(rest[:3], "and"):
		return i + 3, true
	case strings.HasPrefix(rest, "&&"):
		return i + 2, true
	case strings.HasPrefix(rest, "∧"):
		return i + len("∧"), true
	}
	return i, false
}

// operator tokens ordered so that longer forms match first.
var opTokens = []struct {
	tok string
	op  message.Op
}{
	{"not-exists", message.OpNotExists},
	{"between", message.OpBetween},
	{"contains", message.OpContains},
	{"prefix", message.OpPrefix},
	{"suffix", message.OpSuffix},
	{"exists", message.OpExists},
	{"<=", message.OpLe},
	{">=", message.OpGe},
	{"!=", message.OpNe},
	{"<>", message.OpNe},
	{"==", message.OpEq},
	{"=", message.OpEq},
	{"<", message.OpLt},
	{">", message.OpGt},
}

// parsePredicate parses the body of one parenthesized predicate,
// input[open:close].
func parsePredicate(input string, open, close int) (message.Predicate, error) {
	body := input[open:close]
	// Find the operator: the first occurrence of any token outside
	// quotes, preferring longer tokens at the same position.
	opPos, opLen := -1, 0
	var op message.Op
	inQuote := false
	for j := 0; j < len(body); j++ {
		if inQuote {
			if body[j] == '\\' {
				j++
			} else if body[j] == '"' {
				inQuote = false
			}
			continue
		}
		if body[j] == '"' {
			inQuote = true
			continue
		}
		for _, cand := range opTokens {
			if !strings.HasPrefix(body[j:], cand.tok) {
				continue
			}
			// Word operators need boundaries — and a non-empty
			// attribute before them — so an attribute named
			// "prefix length" is not cut apart.
			if isWordOp(cand.tok) {
				before := j > 0 && (body[j-1] == ' ' || body[j-1] == '\t')
				afterIdx := j + len(cand.tok)
				after := afterIdx >= len(body) || body[afterIdx] == ' ' || body[afterIdx] == '\t'
				if !before || !after || strings.TrimSpace(body[:j]) == "" {
					continue
				}
			}
			opPos, opLen, op = j, len(cand.tok), cand.op
			break
		}
		if opPos >= 0 {
			break
		}
	}
	if opPos < 0 {
		return message.Predicate{}, errAt(input, open, "no operator in predicate")
	}
	attr, err := attrToken(strings.TrimSpace(body[:opPos]))
	if err != nil || attr == "" {
		return message.Predicate{}, errAt(input, open, "empty or malformed attribute")
	}
	rest := strings.TrimSpace(body[opPos+opLen:])

	switch op {
	case message.OpExists, message.OpNotExists:
		if rest != "" {
			return message.Predicate{}, errAt(input, open+opPos, "%s takes no value", op)
		}
		return message.Predicate{Attr: attr, Op: op}, nil
	case message.OpBetween:
		loTok, hiTok, ok := splitBetween(rest)
		if !ok {
			return message.Predicate{}, errAt(input, open+opPos, "between needs 'lo and hi'")
		}
		lo, err := parseValueToken(loTok)
		if err != nil {
			return message.Predicate{}, errAt(input, open+opPos, "%v", err)
		}
		hi, err := parseValueToken(hiTok)
		if err != nil {
			return message.Predicate{}, errAt(input, open+opPos, "%v", err)
		}
		return message.Between(attr, lo, hi), nil
	default:
		if rest == "" {
			return message.Predicate{}, errAt(input, open+opPos, "%s needs a value", op)
		}
		v, err := parseValueToken(rest)
		if err != nil {
			return message.Predicate{}, errAt(input, open+opPos, "%v", err)
		}
		return message.Pred(attr, op, v), nil
	}
}

func isWordOp(tok string) bool {
	c := tok[0]
	return c >= 'a' && c <= 'z'
}

// splitBetween splits "lo and hi" outside quotes.
func splitBetween(rest string) (lo, hi string, ok bool) {
	inQuote := false
	for j := 0; j+5 <= len(rest); j++ {
		if inQuote {
			if rest[j] == '\\' {
				j++
			} else if rest[j] == '"' {
				inQuote = false
			}
			continue
		}
		if rest[j] == '"' {
			inQuote = true
			continue
		}
		if strings.EqualFold(rest[j:j+5], " and ") {
			return strings.TrimSpace(rest[:j]), strings.TrimSpace(rest[j+5:]), true
		}
	}
	return "", "", false
}

// escapeQuoted renders s for inclusion between double quotes:
// backslashes and quotes are escaped; everything else passes verbatim.
func escapeQuoted(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// unescapeQuoted reverses escapeQuoted: a backslash makes the next
// character literal (matching the quote scanner in matchParen).
func unescapeQuoted(inner string) string {
	var sb strings.Builder
	for i := 0; i < len(inner); i++ {
		if inner[i] == '\\' && i+1 < len(inner) {
			i++
		}
		sb.WriteByte(inner[i])
	}
	return sb.String()
}

// attrToken unquotes a double-quoted attribute name; bare attributes
// (which may contain spaces) pass through. Quoting lets an attribute
// contain an operator word, e.g. ("contains lead" = true).
func attrToken(tok string) (string, error) {
	if len(tok) >= 2 && tok[0] == '"' && tok[len(tok)-1] == '"' {
		return unescapeQuoted(tok[1 : len(tok)-1]), nil
	}
	if strings.Contains(tok, `"`) {
		return "", fmt.Errorf("stray quote in attribute %q", tok)
	}
	return tok, nil
}

// parseValueToken converts a value token: quoted → string verbatim,
// otherwise type-inferred.
func parseValueToken(tok string) (message.Value, error) {
	if tok == "" {
		return message.None(), fmt.Errorf("empty value")
	}
	if tok[0] == '"' {
		if len(tok) < 2 || tok[len(tok)-1] != '"' {
			return message.None(), fmt.Errorf("unterminated quoted string %q", tok)
		}
		return message.String(unescapeQuoted(tok[1 : len(tok)-1])), nil
	}
	if strings.Contains(tok, `"`) {
		return message.None(), fmt.Errorf("stray quote in value %q", tok)
	}
	return message.ParseValue(tok), nil
}
