package sublang

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"stopss/internal/message"
)

func TestParseSubscriptionPaperExample(t *testing.T) {
	in := "(university = Toronto) and (degree = PhD) and (professional experience >= 4)"
	preds, err := ParseSubscription(in)
	if err != nil {
		t.Fatal(err)
	}
	want := []message.Predicate{
		message.Pred("university", message.OpEq, message.String("Toronto")),
		message.Pred("degree", message.OpEq, message.String("PhD")),
		message.Pred("professional experience", message.OpGe, message.Int(4)),
	}
	if !reflect.DeepEqual(preds, want) {
		t.Errorf("ParseSubscription = %v, want %v", preds, want)
	}
}

func TestParseSubscriptionForms(t *testing.T) {
	cases := []struct {
		in   string
		want message.Predicate
	}{
		{"(a = 4)", message.Pred("a", message.OpEq, message.Int(4))},
		{"(a == 4)", message.Pred("a", message.OpEq, message.Int(4))},
		{"(a != x)", message.Pred("a", message.OpNe, message.String("x"))},
		{"(a <> x)", message.Pred("a", message.OpNe, message.String("x"))},
		{"(a < 2.5)", message.Pred("a", message.OpLt, message.Float(2.5))},
		{"(a <= 2)", message.Pred("a", message.OpLe, message.Int(2))},
		{"(a > -1)", message.Pred("a", message.OpGt, message.Int(-1))},
		{"(a >= 0)", message.Pred("a", message.OpGe, message.Int(0))},
		{"(a prefix To)", message.Pred("a", message.OpPrefix, message.String("To"))},
		{"(a suffix nto)", message.Pred("a", message.OpSuffix, message.String("nto"))},
		{"(a contains ron)", message.Pred("a", message.OpContains, message.String("ron"))},
		{"(a exists)", message.Exists("a")},
		{"(a not-exists)", message.Predicate{Attr: "a", Op: message.OpNotExists}},
		{"(a between 1 and 9)", message.Between("a", message.Int(1), message.Int(9))},
		{"(a = true)", message.Pred("a", message.OpEq, message.Bool(true))},
		{`(a = "1990")`, message.Pred("a", message.OpEq, message.String("1990"))},
		{`(a = "two words")`, message.Pred("a", message.OpEq, message.String("two words"))},
		{`(a = "quo\"ted")`, message.Pred("a", message.OpEq, message.String(`quo"ted`))},
		{"(long attr name = v)", message.Pred("long attr name", message.OpEq, message.String("v"))},
		{"(salary between 50.5 and 90)", message.Between("salary", message.Float(50.5), message.Int(90))},
	}
	for _, tc := range cases {
		preds, err := ParseSubscription(tc.in)
		if err != nil {
			t.Errorf("ParseSubscription(%q): %v", tc.in, err)
			continue
		}
		if len(preds) != 1 || !reflect.DeepEqual(preds[0], tc.want) {
			t.Errorf("ParseSubscription(%q) = %v, want %v", tc.in, preds, tc.want)
		}
	}
}

func TestParseSubscriptionConjunctions(t *testing.T) {
	for _, in := range []string{
		"(a = 1) and (b = 2)",
		"(a = 1) AND (b = 2)",
		"(a = 1) && (b = 2)",
		"(a = 1) ∧ (b = 2)",
		"(a = 1)(b = 2)",
		"  (a = 1)   and   (b = 2)  ",
	} {
		preds, err := ParseSubscription(in)
		if err != nil {
			t.Errorf("ParseSubscription(%q): %v", in, err)
			continue
		}
		if len(preds) != 2 {
			t.Errorf("ParseSubscription(%q) = %d preds, want 2", in, len(preds))
		}
	}
}

func TestParseSubscriptionErrors(t *testing.T) {
	for _, in := range []string{
		"",
		"   ",
		"(a = 1",
		"a = 1)",
		"(a)",
		"( = 1)",
		"(a = )",
		"(a exists 1)",
		"(a between 1)",
		"(a between 1 and)",
		"(a = 1) or (b = 2)",
		"(a = 1) and",
		"((a = 1))",
		`(a = "unterminated)`,
		"(a between x and y and z...no)",
		"(a prefix 5) and (a prefix 6)", // validates: prefix needs string... 5 infers int
	} {
		if _, err := ParseSubscription(in); err == nil {
			t.Errorf("ParseSubscription(%q) should fail", in)
		}
	}
}

func TestWordOperatorBoundaries(t *testing.T) {
	// An attribute containing an operator word must not be split.
	preds, err := ParseSubscription("(prefix length = 4)")
	if err != nil {
		t.Fatal(err)
	}
	if preds[0].Attr != "prefix length" || preds[0].Op != message.OpEq {
		t.Errorf("got %v", preds[0])
	}
	// "existsx" is not the exists operator.
	if _, err := ParseSubscription("(a existsx)"); err == nil {
		t.Error("partial word operator must not match")
	}
}

func TestParseEventPaperExample(t *testing.T) {
	in := "(school, Toronto)(degree, PhD)(work experience, true)(graduation year, 1990)"
	e, err := ParseEvent(in)
	if err != nil {
		t.Fatal(err)
	}
	if e.Len() != 4 {
		t.Fatalf("Len = %d, want 4", e.Len())
	}
	if v, _ := e.Get("school"); v.Str() != "Toronto" {
		t.Errorf("school = %v", v)
	}
	if v, _ := e.Get("work experience"); v.Kind() != message.KindBool || !v.BoolVal() {
		t.Errorf("work experience = %v (%s)", v, v.Kind())
	}
	if v, _ := e.Get("graduation year"); v.Kind() != message.KindInt || v.IntVal() != 1990 {
		t.Errorf("graduation year = %v (%s)", v, v.Kind())
	}
}

func TestParseEventQuotedAndTyped(t *testing.T) {
	e, err := ParseEvent(`(year, "1990")(ratio, 2.5)(name, "a, b")(note, "quo\"te")`)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := e.Get("year"); v.Kind() != message.KindString {
		t.Errorf("quoted number must stay a string, got %s", v.Kind())
	}
	if v, _ := e.Get("ratio"); v.Kind() != message.KindFloat {
		t.Errorf("ratio kind = %s", v.Kind())
	}
	if v, _ := e.Get("name"); v.Str() != "a, b" {
		t.Errorf("comma inside quotes broken: %q", v.Str())
	}
	if v, _ := e.Get("note"); v.Str() != `quo"te` {
		t.Errorf("escape inside quotes broken: %q", v.Str())
	}
}

func TestParseEventErrors(t *testing.T) {
	for _, in := range []string{
		"",
		"(a)",
		"(a 1)",
		"(, 1)",
		"(a, )",
		"(a, 1",
		"junk",
		"(a, \"x)",
	} {
		if _, err := ParseEvent(in); err == nil {
			t.Errorf("ParseEvent(%q) should fail", in)
		}
	}
}

func TestParseErrorReportsOffset(t *testing.T) {
	_, err := ParseSubscription("(a = 1) or (b = 2)")
	if err == nil {
		t.Fatal("expected error")
	}
	var pe *ParseError
	if !asParseError(err, &pe) {
		t.Fatalf("error type = %T", err)
	}
	if pe.Offset != 8 {
		t.Errorf("Offset = %d, want 8", pe.Offset)
	}
	if !strings.Contains(err.Error(), "offset 8") {
		t.Errorf("Error() = %q", err.Error())
	}
}

func asParseError(err error, target **ParseError) bool {
	pe, ok := err.(*ParseError)
	if ok {
		*target = pe
	}
	return ok
}

func TestRoundTripSubscription(t *testing.T) {
	ins := [][]message.Predicate{
		{
			message.Pred("university", message.OpEq, message.String("Toronto")),
			message.Pred("professional experience", message.OpGe, message.Int(4)),
		},
		{
			message.Exists("degree"),
			message.Between("salary", message.Int(50), message.Int(90)),
			message.Pred("year", message.OpEq, message.String("1990")), // needs quoting
		},
		{
			message.Pred("note", message.OpContains, message.String("has space")),
		},
	}
	for _, preds := range ins {
		text := FormatSubscription(preds)
		back, err := ParseSubscription(text)
		if err != nil {
			t.Fatalf("round trip parse of %q: %v", text, err)
		}
		if !reflect.DeepEqual(back, preds) {
			t.Errorf("round trip changed predicates:\n in: %v\nout: %v\ntext: %q", preds, back, text)
		}
	}
}

func TestQuickRoundTripEvent(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	words := []string{"Toronto", "PhD", "a b", "1990", "true", "x(y", "comma, here", `qu"ote`, "", " lead"}
	for trial := 0; trial < 300; trial++ {
		var e message.Event
		n := 1 + r.Intn(5)
		for i := 0; i < n; i++ {
			attr := []string{"school", "degree", "graduation year", "job1"}[r.Intn(4)]
			var v message.Value
			switch r.Intn(4) {
			case 0:
				v = message.String(words[r.Intn(len(words))])
			case 1:
				v = message.Int(int64(r.Intn(100) - 50))
			case 2:
				v = message.Float(float64(r.Intn(100)) / 4)
			default:
				v = message.Bool(r.Intn(2) == 0)
			}
			e.Add(attr, v)
		}
		text := FormatEvent(e)
		back, err := ParseEvent(text)
		if err != nil {
			t.Fatalf("round trip parse of %q (from %v): %v", text, e, err)
		}
		if !e.Equal(back) {
			t.Fatalf("round trip changed event:\n in: %v\nout: %v\ntext: %q", e, back, text)
		}
		for i := 0; i < e.Len(); i++ {
			if e.Pair(i).Val.Kind() != back.Pair(i).Val.Kind() {
				t.Fatalf("kind changed at pair %d: %s vs %s (text %q)",
					i, e.Pair(i).Val.Kind(), back.Pair(i).Val.Kind(), text)
			}
		}
	}
}

func TestQuotedAttributes(t *testing.T) {
	preds, err := ParseSubscription(`("professional experience" >= 4) and ("contains lead" = true)`)
	if err != nil {
		t.Fatal(err)
	}
	if preds[0].Attr != "professional experience" {
		t.Errorf("attr = %q", preds[0].Attr)
	}
	if preds[1].Attr != "contains lead" || preds[1].Op != message.OpEq {
		t.Errorf("quoted attribute with operator word broken: %+v", preds[1])
	}
	ev, err := ParseEvent(`("graduation year", 1990)("odd,attr", 1)`)
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Has("graduation year") || !ev.Has("odd,attr") {
		t.Errorf("quoted event attributes broken: %v", ev)
	}
	// Stray quotes fail.
	if _, err := ParseSubscription(`(bad"attr = 1)`); err == nil {
		t.Error("stray quote in attribute should fail")
	}
}

func TestFormatQuotesAwkwardAttributes(t *testing.T) {
	preds := []message.Predicate{
		message.Pred("contains lead", message.OpEq, message.Bool(true)),
		message.Pred("plain attr", message.OpGe, message.Int(1)),
	}
	text := FormatSubscription(preds)
	if !strings.Contains(text, `"contains lead"`) {
		t.Errorf("operator-word attribute must be quoted: %q", text)
	}
	back, err := ParseSubscription(text)
	if err != nil {
		t.Fatalf("round trip: %v (%q)", err, text)
	}
	if back[0].Attr != "contains lead" || back[1].Attr != "plain attr" {
		t.Errorf("round trip changed attrs: %v", back)
	}
	e := message.E("odd,attr", 1)
	evText := FormatEvent(e)
	back2, err := ParseEvent(evText)
	if err != nil {
		t.Fatalf("event round trip: %v (%q)", err, evText)
	}
	if !back2.Has("odd,attr") {
		t.Errorf("event attr lost: %v", back2)
	}
}

func TestParseSubscriptionSet(t *testing.T) {
	groups, err := ParseSubscriptionSet("(a = 1) and (b = 2) or (c = 3) || (d = 4)")
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 {
		t.Fatalf("groups = %d, want 3", len(groups))
	}
	if len(groups[0]) != 2 || len(groups[1]) != 1 || len(groups[2]) != 1 {
		t.Errorf("group shapes wrong: %v", groups)
	}
	// Single conjunction: one group.
	one, err := ParseSubscriptionSet("(a = 1) and (b = 2)")
	if err != nil || len(one) != 1 {
		t.Fatalf("single group: %v %v", one, err)
	}
	// "or" inside a quoted value does not split.
	q, err := ParseSubscriptionSet(`(city = "Toronto or nearby")`)
	if err != nil || len(q) != 1 {
		t.Fatalf("quoted or: %v %v", q, err)
	}
	if q[0][0].Val.Str() != "Toronto or nearby" {
		t.Errorf("value = %q", q[0][0].Val.Str())
	}
	// Word boundary: "oregon" is not the operator.
	w, err := ParseSubscriptionSet("(state = oregon)")
	if err != nil || len(w) != 1 {
		t.Fatalf("oregon: %v %v", w, err)
	}
	// Errors.
	for _, bad := range []string{
		"or (a = 1)",
		"(a = 1) or",
		"(a = 1) or or (b = 2)",
		"",
	} {
		if _, err := ParseSubscriptionSet(bad); err == nil {
			t.Errorf("ParseSubscriptionSet(%q) should fail", bad)
		}
	}
	// Round trip.
	text := FormatSubscriptionSet(groups)
	back, err := ParseSubscriptionSet(text)
	if err != nil {
		t.Fatalf("round trip: %v (%q)", err, text)
	}
	if len(back) != len(groups) {
		t.Errorf("round trip changed group count")
	}
}
