package sublang_test

import (
	"fmt"

	"stopss/internal/sublang"
)

// ExampleParseSubscription parses the paper's §1 subscription.
func ExampleParseSubscription() {
	preds, err := sublang.ParseSubscription(
		"(university = Toronto) and (degree = PhD) and (professional experience >= 4)")
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, p := range preds {
		fmt.Println(p)
	}
	// Output:
	// (university = Toronto)
	// (degree = PhD)
	// (professional experience >= 4)
}

// ExampleParseEvent parses the paper's §1 publication.
func ExampleParseEvent() {
	ev, err := sublang.ParseEvent(
		"(school, Toronto)(degree, PhD)(work experience, true)(graduation year, 1990)")
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(ev.Len())
	v, _ := ev.Get("graduation year")
	fmt.Println(v, v.Kind())
	// Output:
	// 4
	// 1990 int
}
