package sublang

import (
	"testing"

	"stopss/internal/message"
)

// FuzzParseSubscription checks that arbitrary input never panics and
// that anything that parses also validates, formats and re-parses to the
// same predicates.
func FuzzParseSubscription(f *testing.F) {
	for _, seed := range []string{
		"(university = Toronto) and (degree = PhD) and (professional experience >= 4)",
		"(a exists)",
		"(a between 1 and 9)",
		`("quoted attr" = "quoted value")`,
		"(a prefix To) && (b suffix nto) ∧ (c contains x)",
		"(((",
		"(a = 1) or (b = 2)",
		`(a = "unterminated`,
		"(a not-exists)(b <> 5)",
		"",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		preds, err := ParseSubscription(input)
		if err != nil {
			return // rejection is fine; panics are not
		}
		for _, p := range preds {
			if err := p.Validate(); err != nil {
				t.Fatalf("parsed predicate fails validation: %v (input %q)", err, input)
			}
		}
		text := FormatSubscription(preds)
		back, err := ParseSubscription(text)
		if err != nil {
			t.Fatalf("formatted output does not re-parse: %v\ninput:  %q\nformat: %q", err, input, text)
		}
		if len(back) != len(preds) {
			t.Fatalf("round trip changed predicate count: %d → %d (input %q)", len(preds), len(back), input)
		}
		for i := range preds {
			if back[i].Canonical() != preds[i].Canonical() {
				t.Fatalf("round trip changed predicate %d:\n in: %v\nout: %v\ninput %q",
					i, preds[i], back[i], input)
			}
		}
	})
}

// FuzzParseEvent is the event-side counterpart.
func FuzzParseEvent(f *testing.F) {
	for _, seed := range []string{
		"(school, Toronto)(degree, PhD)(graduation year, 1990)",
		`(a, "1990")(b, 2.5)(c, true)`,
		`("odd,attr", 1)`,
		"(a, )",
		"junk",
		"",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		ev, err := ParseEvent(input)
		if err != nil {
			return
		}
		if err := ev.Validate(); err != nil {
			t.Fatalf("parsed event fails validation: %v (input %q)", err, input)
		}
		text := FormatEvent(ev)
		back, err := ParseEvent(text)
		if err != nil {
			t.Fatalf("formatted event does not re-parse: %v\ninput:  %q\nformat: %q", err, input, text)
		}
		if !ev.Equal(back) {
			t.Fatalf("round trip changed event:\n in: %v\nout: %v\ninput %q", ev, back, input)
		}
		_ = message.SubID(0)
	})
}
