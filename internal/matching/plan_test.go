package matching

import (
	"math/rand"
	"reflect"
	"testing"

	"stopss/internal/message"
)

func TestPlanCacheSharesDuplicates(t *testing.T) {
	for _, m := range allMatchers() {
		t.Run(m.Name(), func(t *testing.T) {
			preds := []message.Predicate{
				message.Pred("sym", message.OpEq, message.String("IBM")),
				message.Pred("price", message.OpGt, message.Int(100)),
			}
			// Same predicate set in a different order: same canonical
			// form, so the second Compile must hit the cache.
			p1, err := m.Compile(message.NewSubscription(1, "a", preds[0], preds[1]))
			if err != nil {
				t.Fatal(err)
			}
			p2, err := m.Compile(message.NewSubscription(2, "b", preds[1], preds[0]))
			if err != nil {
				t.Fatal(err)
			}
			if p1 != p2 {
				t.Fatal("duplicate subscriptions did not share one plan")
			}
			if err := m.Add(1, p1); err != nil {
				t.Fatal(err)
			}
			if err := m.Add(2, p2); err != nil {
				t.Fatal(err)
			}
			if p1.Refs() != 2 {
				t.Fatalf("Refs = %d, want 2", p1.Refs())
			}
			st := m.PlanStats()
			if st.Hits != 1 || st.Misses != 1 || st.Cached != 1 {
				t.Fatalf("PlanStats = %+v, want 1 hit, 1 miss, 1 cached", st)
			}
			got := m.Match(message.E("sym", "IBM", "price", 101), nil)
			if !reflect.DeepEqual(got, []message.SubID{1, 2}) {
				t.Fatalf("Match = %v, want [1 2]", got)
			}
			// Removing one sharer keeps the plan; removing both evicts.
			m.Remove(1)
			if st := m.PlanStats(); st.Cached != 1 {
				t.Fatalf("Cached after first Remove = %d, want 1", st.Cached)
			}
			m.Remove(2)
			if st := m.PlanStats(); st.Cached != 0 {
				t.Fatalf("Cached after both Removes = %d, want 0", st.Cached)
			}
		})
	}
}

func TestPlanDedupAndPushdownOrder(t *testing.T) {
	m := NewNaive()
	p, err := m.Compile(message.NewSubscription(1, "c",
		message.Pred("z", message.OpContains, message.String("x")),
		message.Exists("m"),
		message.Pred("a", message.OpEq, message.Int(1)),
		message.Pred("a", message.OpEq, message.Int(1)), // duplicate slot
		message.Pred("b", message.OpLt, message.Int(9)),
	))
	if err != nil {
		t.Fatal(err)
	}
	if p.NumPreds() != 4 {
		t.Fatalf("NumPreds = %d, want 4 (duplicate collapsed)", p.NumPreds())
	}
	ops := make([]message.Op, 0, 4)
	for _, pp := range p.Preds() {
		ops = append(ops, pp.Pred.Op)
	}
	want := []message.Op{message.OpEq, message.OpLt, message.OpContains, message.OpExists}
	if !reflect.DeepEqual(ops, want) {
		t.Fatalf("pushdown order = %v, want %v", ops, want)
	}
}

func TestPlanReestimateOrdersByPostings(t *testing.T) {
	m := NewNaive()
	// Make attribute "hot" far more referenced than "cold": equality
	// predicates over hot dominate the posting counts.
	for i := 0; i < 20; i++ {
		s := message.NewSubscription(message.SubID(100+i), "c",
			message.Pred("hot", message.OpEq, message.Int(int64(i))))
		if err := Index(m, s); err != nil {
			t.Fatal(err)
		}
	}
	p, err := m.Compile(message.NewSubscription(1, "c",
		message.Pred("hot", message.OpEq, message.Int(500)),
		message.Pred("cold", message.OpEq, message.Int(1)),
	))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Add(1, p); err != nil {
		t.Fatal(err)
	}
	// Compile already saw the postings, but force a re-sort through the
	// public hook and verify the rare attribute is evaluated first.
	m.Reestimate()
	if got := p.Preds()[0].Pred.Attr; got != "cold" {
		t.Fatalf("first predicate after Reestimate on %q, want cold (rarer attribute)", got)
	}
	if got := m.PlanStats().Attrs; got != 2 {
		t.Fatalf("PlanStats.Attrs = %d, want 2", got)
	}
}

func TestPlanCompileRejectsInvalid(t *testing.T) {
	m := NewCounting()
	if _, err := m.Compile(message.NewSubscription(1, "c")); err == nil {
		t.Fatal("empty subscription must be rejected")
	}
	if _, err := m.Compile(message.NewSubscription(2, "c", message.Predicate{Attr: "a"})); err == nil {
		t.Fatal("invalid operator must be rejected")
	}
	if err := m.Add(3, nil); err == nil {
		t.Fatal("nil plan must be rejected")
	}
}

func TestEventViewSemantics(t *testing.T) {
	// The interned view must preserve reference semantics, including
	// not-exists over un-interned event attributes and multi-valued
	// attributes where only a later instance satisfies the predicate.
	for _, m := range allMatchers() {
		if err := Index(m, message.NewSubscription(1, "c",
			message.Pred("vw", message.OpGe, message.Int(10)),
			message.Pred("vw-absent", message.OpNotExists, message.None()),
		)); err != nil {
			t.Fatal(err)
		}
		e := message.E("vw", 3, "vw", 15, "vw-noise-never-interned", 1)
		if got := m.Match(e, nil); !reflect.DeepEqual(got, []message.SubID{1}) {
			t.Fatalf("%s: Match = %v, want [1]", m.Name(), got)
		}
		if got := m.Match(message.E("vw", 15, "vw-absent", 0), nil); len(got) != 0 {
			t.Fatalf("%s: not-exists violated, got %v", m.Name(), got)
		}
	}
}

func TestMatchAppendsToScratch(t *testing.T) {
	for _, m := range allMatchers() {
		if err := Index(m, message.NewSubscription(7, "c",
			message.Pred("sa", message.OpEq, message.Int(1)))); err != nil {
			t.Fatal(err)
		}
		scratch := []message.SubID{99}
		out := m.Match(message.E("sa", 1), scratch)
		if !reflect.DeepEqual(out, []message.SubID{99, 7}) {
			t.Fatalf("%s: Match append = %v, want [99 7]", m.Name(), out)
		}
	}
}

// TestPlanPipelineAgreesAfterReestimate replays the central agreement
// property with Reestimate churn interleaved: re-ordering cached plans
// must never change match results.
func TestPlanPipelineAgreesAfterReestimate(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	matchers := allMatchers()
	naive := matchers[0]
	for i := 0; i < 120; i++ {
		s := randSubscription(r, message.SubID(i+1))
		for _, m := range matchers {
			if err := Index(m, s); err != nil {
				t.Fatalf("%s Add: %v", m.Name(), err)
			}
		}
	}
	for j := 0; j < 60; j++ {
		if j%7 == 0 {
			for _, m := range matchers {
				m.Reestimate()
			}
		}
		e := randEvent(r)
		want := naive.Match(e, nil)
		for _, m := range matchers[1:] {
			if got := m.Match(e, nil); !reflect.DeepEqual(got, want) {
				t.Fatalf("%s disagrees with naive on %v after reestimate: got %v want %v",
					m.Name(), e, got, want)
			}
		}
	}
}
