package matching

import (
	"fmt"
	"sort"

	"stopss/internal/message"
)

// Tree implements the matching-tree algorithm of Aguilera et al. (PODC
// 1999) — the second algorithm of citation [1], alongside the counting
// algorithm. Subscriptions are compiled into a search tree whose
// internal nodes test one attribute each (in a fixed global attribute
// order); edges are labelled with concrete values (for equality
// predicates) or with a *don't-care* that skips the test. Matching an
// event walks the tree once, following, at every node, both the edge
// labelled with the event's value for that attribute and the don't-care
// edge — so the cost is governed by the tree paths the event actually
// touches rather than by the number of subscriptions.
//
// Non-equality predicates (ranges, string operators, existence) do not
// partition well on edges; following the standard engineering of [1],
// each leaf verifies the subscription's remaining plan predicates — in
// pushdown order, skipping the ones already proven by the walk.
type Tree struct {
	planner
	root *treeNode
	subs map[message.SubID]*treeSub
}

// treeSub remembers where a subscription's leaf is, for removal, plus
// which plan predicates the walk itself proves (by canonical form) so
// verification skips them.
type treeSub struct {
	id      message.SubID
	plan    *Plan
	onEdges []string // canonical forms of predicates consumed by tree edges
	leaf    *treeNode
}

// treeNode is one test node. A node either tests an attribute (attr !=
// "", with value edges and a don't-care edge) or is a pure leaf
// container.
type treeNode struct {
	attr     string               // attribute tested here; "" for leaf-only nodes
	edges    map[string]*treeNode // canonical value → child
	dontCare *treeNode            // skip-this-attribute edge
	leaves   map[message.SubID]*treeSub
}

func newTreeNode() *treeNode {
	return &treeNode{leaves: make(map[message.SubID]*treeSub)}
}

// NewTree returns an empty matching tree.
func NewTree() *Tree {
	return &Tree{planner: newPlanner(), root: newTreeNode(), subs: make(map[message.SubID]*treeSub)}
}

// Name implements Matcher.
func (m *Tree) Name() string { return "tree" }

// Size implements Matcher.
func (m *Tree) Size() int { return len(m.subs) }

// Add implements Matcher.
func (m *Tree) Add(id message.SubID, p *Plan) error {
	if p == nil {
		return fmt.Errorf("matching: nil plan for subscription %d", id)
	}
	if _, dup := m.subs[id]; dup {
		return fmt.Errorf("matching: subscription %d already indexed", id)
	}
	ts := &treeSub{id: id, plan: p}

	// Pick the tree-indexable equality tests: one per attribute (a
	// second equality on the same attribute stays in the verified
	// remainder). Everything not consumed by an edge is verified at the
	// leaf via the shared plan.
	eq := make(map[string]message.Value)
	for i := range p.Preds() {
		pp := &p.Preds()[i]
		if pp.Pred.Op == message.OpEq {
			if _, seen := eq[pp.Pred.Attr]; !seen {
				eq[pp.Pred.Attr] = pp.Pred.Val
				ts.onEdges = append(ts.onEdges, pp.Canon)
			}
		}
	}
	attrs := make([]string, 0, len(eq))
	for a := range eq {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs) // the global attribute order of the tree

	node := m.root
	for _, a := range attrs {
		node = m.descend(node, a, eq[a])
	}
	node.leaves[id] = ts
	ts.leaf = node
	m.subs[id] = ts
	m.retain(p)
	return nil
}

// descend moves from node over the test (attr = val), building nodes and
// edges as needed. Because attributes are visited in global sorted
// order, a node's test attribute is always >= its ancestors'.
func (m *Tree) descend(node *treeNode, attr string, val message.Value) *treeNode {
	for {
		if node.attr == "" {
			// Leaf-only node: claim it for this attribute.
			node.attr = attr
			node.edges = make(map[string]*treeNode)
		}
		switch {
		case node.attr == attr:
			key := val.Canonical()
			child := node.edges[key]
			if child == nil {
				child = newTreeNode()
				node.edges[key] = child
			}
			return child
		case node.attr < attr:
			// This node tests an earlier attribute the subscription
			// does not constrain: take the don't-care edge.
			if node.dontCare == nil {
				node.dontCare = newTreeNode()
			}
			node = node.dontCare
		default:
			// node.attr > attr: the tree already ordered past attr on
			// this path. Insert a fresh test node above by pushing the
			// current node's content down the don't-care edge of a new
			// node is complex; instead keep the simple invariant by
			// routing through don't-care (correct, mildly less
			// selective).
			if node.dontCare == nil {
				node.dontCare = newTreeNode()
			}
			node = node.dontCare
		}
	}
}

// Remove implements Matcher.
func (m *Tree) Remove(id message.SubID) bool {
	ts, ok := m.subs[id]
	if !ok {
		return false
	}
	delete(m.subs, id)
	delete(ts.leaf.leaves, id)
	m.release(ts.plan)
	// Empty nodes are left in place; they are cheap and the churn of
	// restructuring paths is not worth it for this workload profile.
	return true
}

// Match implements Matcher.
func (m *Tree) Match(e message.Event, scratch []message.SubID) []message.SubID {
	m.view.reset(e)
	// Event attribute → set of canonical values (multi-valued events).
	vals := make(map[string][]string, e.Len())
	for _, p := range e.Pairs() {
		key := p.Val.Canonical()
		dup := false
		for _, k := range vals[p.Attr] {
			if k == key {
				dup = true
				break
			}
		}
		if !dup {
			vals[p.Attr] = append(vals[p.Attr], key)
		}
	}

	out, start := scratch, len(scratch)
	var walk func(n *treeNode)
	walk = func(n *treeNode) {
		if n == nil {
			return
		}
		for _, ts := range n.leaves {
			if m.verify(ts) {
				out = append(out, ts.id)
			}
		}
		if n.attr == "" {
			return
		}
		for _, key := range vals[n.attr] {
			if child := n.edges[key]; child != nil {
				walk(child)
			}
		}
		walk(n.dontCare)
	}
	walk(m.root)
	sortIDs(out[start:])
	return out
}

// verify checks the plan predicates not consumed by tree edges, in
// pushdown order against the resolved event view.
func (m *Tree) verify(ts *treeSub) bool {
	preds := ts.plan.Preds()
	for i := range preds {
		pp := &preds[i]
		onEdge := false
		for _, c := range ts.onEdges {
			if c == pp.Canon {
				onEdge = true
				break
			}
		}
		if onEdge {
			continue
		}
		if !m.view.satisfies(pp) {
			return false
		}
	}
	return true
}

// Depth reports the maximum node depth of the tree (statistic for the
// T3 discussion).
func (m *Tree) Depth() int {
	var depth func(n *treeNode) int
	depth = func(n *treeNode) int {
		if n == nil {
			return 0
		}
		best := 0
		for _, c := range n.edges {
			if d := depth(c); d > best {
				best = d
			}
		}
		if d := depth(n.dontCare); d > best {
			best = d
		}
		return best + 1
	}
	return depth(m.root)
}
