package matching

import (
	"sort"

	"stopss/internal/message"
)

// This file gives the matcher the query-optimizer treatment (ROADMAP item
// resolved by DESIGN.md §12): subscriptions compile once into a canonical
// Plan — a deduplicated predicate list in pushdown order — and plans are
// cached keyed on the subscription's canonical form, so duplicate
// subscriptions share one compiled plan. Every matcher embeds the planner
// and therefore shares the same compile path, cache, and selectivity
// statistics; what differs per algorithm is only the index consulted
// before a plan is verified.

// PlanPred is one compiled predicate of a Plan: the predicate itself plus
// its interned attribute symbol, its canonical form (unique-predicate
// identity), and its operator cost class for pushdown ordering.
type PlanPred struct {
	Pred  message.Predicate
	Sym   message.Sym
	Canon string
	class uint8
}

// opClass buckets operators by evaluation cost and typical selectivity:
// cheap, selective tests run first so non-matching events exit the
// verification loop as early as possible.
func opClass(op message.Op) uint8 {
	switch op {
	case message.OpEq:
		return 0
	case message.OpBetween:
		return 1
	case message.OpLt, message.OpLe, message.OpGt, message.OpGe:
		return 2
	case message.OpPrefix, message.OpSuffix:
		return 3
	case message.OpContains:
		return 4
	case message.OpNe:
		return 5
	case message.OpExists:
		return 6
	case message.OpNotExists:
		return 7
	default:
		return 8
	}
}

// Plan is a compiled subscription: its predicate conjunction, identical
// predicates collapsed to one slot, ordered cheapest/most-selective
// first. Plans are immutable to callers and shared between subscriptions
// whose predicate sets have the same canonical form; the owning planner
// reference-counts them and may re-order preds in place on Reestimate.
type Plan struct {
	key   string // subscription canonical form; the cache key
	preds []PlanPred
	refs  int // live subscriptions sharing this plan
}

// Key returns the canonical form the plan was compiled from.
func (p *Plan) Key() string { return p.key }

// Preds exposes the compiled predicates in current pushdown order. The
// slice must not be mutated by callers.
func (p *Plan) Preds() []PlanPred { return p.preds }

// NumPreds reports the number of deduplicated predicate slots.
func (p *Plan) NumPreds() int { return len(p.preds) }

// Refs reports how many indexed subscriptions currently share the plan.
func (p *Plan) Refs() int { return p.refs }

// eval verifies the plan against a resolved event view, predicates in
// pushdown order with early exit.
func (p *Plan) eval(v *eventView) bool {
	for i := range p.preds {
		if !v.satisfies(&p.preds[i]) {
			return false
		}
	}
	return true
}

// viewPair is one event pair resolved to its interned attribute symbol.
type viewPair struct {
	sym message.Sym
	val message.Value
}

// eventView resolves an event's pairs to interned symbols once per Match
// call, so plan verification compares uint32 symbols instead of strings.
// Pairs whose attribute was never interned are dropped: every plan
// predicate's attribute is interned at compile time, so an un-interned
// event attribute cannot satisfy (or block, for not-exists) any
// predicate. The view is a reusable per-matcher scratch buffer; matchers
// are not safe for concurrent use (package doc), so one view suffices.
type eventView struct {
	pairs []viewPair
}

func (v *eventView) reset(e message.Event) {
	v.pairs = v.pairs[:0]
	for _, p := range e.Pairs() {
		if sym, ok := message.Interned(p.Attr); ok {
			v.pairs = append(v.pairs, viewPair{sym: sym, val: p.Val})
		}
	}
}

func (v *eventView) hasSym(sym message.Sym) bool {
	for i := range v.pairs {
		if v.pairs[i].sym == sym {
			return true
		}
	}
	return false
}

// satisfies mirrors message.Predicate.Matches over the resolved view: a
// predicate is satisfied if any attribute instance satisfies it, and
// not-exists requires the attribute to be absent entirely.
func (v *eventView) satisfies(pp *PlanPred) bool {
	if pp.Pred.Op == message.OpNotExists {
		return !v.hasSym(pp.Sym)
	}
	for i := range v.pairs {
		if v.pairs[i].sym == pp.Sym && pp.Pred.Eval(v.pairs[i].val, true) {
			return true
		}
	}
	return false
}

// PlanStats reports the planner's cache and selectivity-table state.
type PlanStats struct {
	Hits   uint64 // Compile calls answered from the plan cache
	Misses uint64 // Compile calls that built a new plan
	Cached int    // distinct plans currently cached
	Attrs  int    // attributes with live posting counts
}

// planner is the shared compile pipeline embedded by every matcher. It
// owns the plan cache (canonical form → *Plan, reference-counted), the
// per-attribute posting counts that drive selectivity ordering, and the
// reusable event view.
type planner struct {
	cache    map[string]*Plan
	postings map[message.Sym]int // attr → live indexed predicate slots
	hits     uint64
	misses   uint64
	view     eventView
}

func newPlanner() planner {
	return planner{
		cache:    make(map[string]*Plan),
		postings: make(map[message.Sym]int),
	}
}

// Compile validates the subscription and returns its shared plan,
// building and caching one on first sight of this canonical form.
// Identical predicates within the subscription collapse to a single slot
// (they are satisfied together, so one slot keeps conjunction counting
// exact for every algorithm).
func (pl *planner) Compile(sub message.Subscription) (*Plan, error) {
	if err := sub.Validate(); err != nil {
		return nil, err
	}
	key := sub.Canonical()
	if p, ok := pl.cache[key]; ok {
		pl.hits++
		return p, nil
	}
	pl.misses++
	p := &Plan{key: key}
	seen := make(map[string]bool, len(sub.Preds))
	for _, pr := range sub.Preds {
		canon := pr.Canonical()
		if seen[canon] {
			continue
		}
		seen[canon] = true
		p.preds = append(p.preds, PlanPred{
			Pred:  pr,
			Sym:   message.InternSym(pr.Attr),
			Canon: canon,
			class: opClass(pr.Op),
		})
	}
	pl.order(p)
	pl.cache[key] = p
	return p, nil
}

// order sorts a plan's predicates cheapest/most-selective first: by
// operator cost class, then by ascending posting count — an attribute
// referenced by few indexed predicates is rare in the workload, so its
// test is likelier to fail fast on events that do not carry it — with the
// canonical form as a deterministic tiebreak.
func (pl *planner) order(p *Plan) {
	sort.SliceStable(p.preds, func(i, j int) bool {
		a, b := &p.preds[i], &p.preds[j]
		if a.class != b.class {
			return a.class < b.class
		}
		if pa, pb := pl.postings[a.Sym], pl.postings[b.Sym]; pa != pb {
			return pa < pb
		}
		return a.Canon < b.Canon
	})
}

// retain records one subscription now sharing the plan and feeds its
// predicates into the posting counts.
func (pl *planner) retain(p *Plan) {
	p.refs++
	for i := range p.preds {
		pl.postings[p.preds[i].Sym]++
	}
}

// release undoes retain; the last release evicts the plan from the cache.
func (pl *planner) release(p *Plan) {
	p.refs--
	for i := range p.preds {
		sym := p.preds[i].Sym
		if pl.postings[sym]--; pl.postings[sym] <= 0 {
			delete(pl.postings, sym)
		}
	}
	if p.refs <= 0 {
		delete(pl.cache, p.key)
	}
}

// Reestimate re-orders every cached plan under the current posting
// counts. Engines call it after knowledge re-indexing churns the indexed
// subscription population, when compile-time estimates have gone stale.
func (pl *planner) Reestimate() {
	for _, p := range pl.cache {
		pl.order(p)
	}
}

// PlanStats implements Matcher.
func (pl *planner) PlanStats() PlanStats {
	return PlanStats{Hits: pl.hits, Misses: pl.misses, Cached: len(pl.cache), Attrs: len(pl.postings)}
}
