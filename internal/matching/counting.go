package matching

import (
	"fmt"
	"sort"

	"stopss/internal/message"
)

// Counting implements the counting algorithm of Aguilera, Strom, Sturman,
// Astley and Chandra, "Matching events in a content-based subscription
// system" (PODC 1999) — citation [1] of the S-ToPSS paper.
//
// Identical predicates appearing in many subscriptions are stored once
// (unique-predicate table keyed by the predicate's canonical form; plans
// arrive pre-deduplicated from the planner, so a subscription contributes
// each distinct predicate exactly once). Per attribute — keyed by its
// interned symbol — there is an operator-specific index:
//
//   - equality:  hash  value → predicates               (O(1) probe)
//   - ordering:  sorted threshold arrays per operator   (binary search)
//   - between:   intervals sorted by lower bound
//   - existence: per-attribute list
//   - the rest (≠, prefix/suffix/contains, non-numeric ordering) live in
//     a per-attribute scan list evaluated directly.
//
// Matching an event walks its pairs, collects the satisfied unique
// predicates from the indexes, and increments one counter per affected
// subscription; a subscription matches when its counter reaches its
// predicate count. Counters are reset lazily with an epoch stamp, so a
// Match is O(satisfied predicates), not O(subscriptions).
type Counting struct {
	planner
	preds     map[string]*cPred               // canonical form → unique predicate
	subs      map[message.SubID]*cSub         // indexed subscriptions
	attrs     map[message.Sym]*attrIndex      // per-attribute operator indexes
	notExists map[message.Sym]map[*cPred]bool // attr → not-exists predicates
	plans     map[*Plan]*cPlan                // plan → its unique-predicate slots
	epoch     uint64
	evSyms    []message.Sym // per-Match scratch: event attribute symbols
}

// cPlan is the counting matcher's compiled form of a shared Plan: the
// unique-predicate slots it references, built once and reused by every
// subscription sharing the plan.
type cPlan struct {
	cpreds []*cPred
	refs   int // subscriptions in this matcher using the plan
}

type cPred struct {
	pred    message.Predicate
	sym     message.Sym             // interned attribute
	subs    map[message.SubID]*cSub // subscriptions referencing this predicate
	refs    int                     // total references (for removal bookkeeping)
	hitAt   uint64                  // epoch of last satisfaction (per-event dedup)
	ordered bool                    // tracked by a sorted threshold index
}

type cSub struct {
	id    message.SubID
	plan  *Plan
	need  int // number of predicate slots that must be satisfied
	count int
	seen  uint64 // epoch stamp for lazy counter reset
}

// attrIndex groups the per-attribute structures of the counting matcher.
type attrIndex struct {
	eq       map[string][]*cPred // canonical value → equality predicates
	lt       thresholds          // attr < t
	le       thresholds          // attr <= t
	gt       thresholds          // attr > t
	ge       thresholds          // attr >= t
	between  []*cPred            // sorted by lower bound
	exists   []*cPred
	scan     []*cPred // evaluated directly per pair
	betweenD bool     // between slice needs re-sort
}

// thresholds is a sorted multiset of numeric cut points with their
// predicates.
type thresholds struct {
	cuts  []float64
	preds []*cPred
	dirty bool
}

func (t *thresholds) add(cut float64, p *cPred) {
	t.cuts = append(t.cuts, cut)
	t.preds = append(t.preds, p)
	t.dirty = true
}

func (t *thresholds) sortIfDirty() {
	if !t.dirty {
		return
	}
	idx := make([]int, len(t.cuts))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return t.cuts[idx[a]] < t.cuts[idx[b]] })
	cuts := make([]float64, len(t.cuts))
	preds := make([]*cPred, len(t.preds))
	for i, j := range idx {
		cuts[i] = t.cuts[j]
		preds[i] = t.preds[j]
	}
	t.cuts, t.preds, t.dirty = cuts, preds, false
}

func (t *thresholds) remove(p *cPred) {
	for i := range t.preds {
		if t.preds[i] == p {
			t.cuts = append(t.cuts[:i], t.cuts[i+1:]...)
			t.preds = append(t.preds[:i], t.preds[i+1:]...)
			return
		}
	}
}

// NewCounting returns an empty counting matcher.
func NewCounting() *Counting {
	return &Counting{
		planner:   newPlanner(),
		preds:     make(map[string]*cPred),
		subs:      make(map[message.SubID]*cSub),
		attrs:     make(map[message.Sym]*attrIndex),
		notExists: make(map[message.Sym]map[*cPred]bool),
		plans:     make(map[*Plan]*cPlan),
	}
}

// Name implements Matcher.
func (m *Counting) Name() string { return "counting" }

// Size implements Matcher.
func (m *Counting) Size() int { return len(m.subs) }

// UniquePredicates reports the size of the shared predicate table, a key
// statistic of the counting algorithm (predicate sharing across
// subscriptions is what makes it sublinear).
func (m *Counting) UniquePredicates() int { return len(m.preds) }

func (m *Counting) attr(sym message.Sym) *attrIndex {
	ai := m.attrs[sym]
	if ai == nil {
		ai = &attrIndex{eq: make(map[string][]*cPred)}
		m.attrs[sym] = ai
	}
	return ai
}

// Add implements Matcher.
func (m *Counting) Add(id message.SubID, p *Plan) error {
	if p == nil {
		return fmt.Errorf("matching: nil plan for subscription %d", id)
	}
	if _, dup := m.subs[id]; dup {
		return fmt.Errorf("matching: subscription %d already indexed", id)
	}
	cp := m.plans[p]
	if cp == nil {
		cp = &cPlan{cpreds: make([]*cPred, 0, p.NumPreds())}
		for i := range p.Preds() {
			pp := &p.Preds()[i]
			u := m.preds[pp.Canon]
			if u == nil {
				u = &cPred{pred: pp.Pred, sym: pp.Sym, subs: make(map[message.SubID]*cSub)}
				m.preds[pp.Canon] = u
				m.indexPredicate(u)
			}
			cp.cpreds = append(cp.cpreds, u)
		}
		m.plans[p] = cp
	}
	cp.refs++
	cs := &cSub{id: id, plan: p, need: len(cp.cpreds)}
	for _, u := range cp.cpreds {
		u.refs++
		u.subs[id] = cs
	}
	m.subs[id] = cs
	m.retain(p)
	return nil
}

// indexPredicate places a new unique predicate into the per-attribute
// operator structures.
func (m *Counting) indexPredicate(cp *cPred) {
	p := cp.pred
	ai := m.attr(cp.sym)
	switch p.Op {
	case message.OpEq:
		ai.eq[p.Val.Canonical()] = append(ai.eq[p.Val.Canonical()], cp)
	case message.OpExists:
		ai.exists = append(ai.exists, cp)
	case message.OpNotExists:
		set := m.notExists[cp.sym]
		if set == nil {
			set = make(map[*cPred]bool)
			m.notExists[cp.sym] = set
		}
		set[cp] = true
	case message.OpLt, message.OpLe, message.OpGt, message.OpGe:
		if f, ok := p.Val.AsFloat(); ok {
			cp.ordered = true
			switch p.Op {
			case message.OpLt:
				ai.lt.add(f, cp)
			case message.OpLe:
				ai.le.add(f, cp)
			case message.OpGt:
				ai.gt.add(f, cp)
			case message.OpGe:
				ai.ge.add(f, cp)
			}
		} else {
			// Ordering over strings/bools: direct evaluation.
			ai.scan = append(ai.scan, cp)
		}
	case message.OpBetween:
		ai.between = append(ai.between, cp)
		ai.betweenD = true
	default:
		ai.scan = append(ai.scan, cp)
	}
}

// Remove implements Matcher.
func (m *Counting) Remove(id message.SubID) bool {
	cs, ok := m.subs[id]
	if !ok {
		return false
	}
	delete(m.subs, id)
	cp := m.plans[cs.plan]
	for _, u := range cp.cpreds {
		delete(u.subs, id)
		u.refs--
		if u.refs == 0 {
			m.unindexPredicate(u)
			delete(m.preds, u.pred.Canonical())
		}
	}
	if cp.refs--; cp.refs == 0 {
		delete(m.plans, cs.plan)
	}
	m.release(cs.plan)
	return true
}

func (m *Counting) unindexPredicate(cp *cPred) {
	p := cp.pred
	ai := m.attrs[cp.sym]
	if ai == nil {
		return
	}
	removeFrom := func(s []*cPred) []*cPred {
		for i := range s {
			if s[i] == cp {
				return append(s[:i], s[i+1:]...)
			}
		}
		return s
	}
	switch p.Op {
	case message.OpEq:
		key := p.Val.Canonical()
		ai.eq[key] = removeFrom(ai.eq[key])
		if len(ai.eq[key]) == 0 {
			delete(ai.eq, key)
		}
	case message.OpExists:
		ai.exists = removeFrom(ai.exists)
	case message.OpNotExists:
		delete(m.notExists[cp.sym], cp)
		if len(m.notExists[cp.sym]) == 0 {
			delete(m.notExists, cp.sym)
		}
	case message.OpLt:
		if cp.ordered {
			ai.lt.remove(cp)
		} else {
			ai.scan = removeFrom(ai.scan)
		}
	case message.OpLe:
		if cp.ordered {
			ai.le.remove(cp)
		} else {
			ai.scan = removeFrom(ai.scan)
		}
	case message.OpGt:
		if cp.ordered {
			ai.gt.remove(cp)
		} else {
			ai.scan = removeFrom(ai.scan)
		}
	case message.OpGe:
		if cp.ordered {
			ai.ge.remove(cp)
		} else {
			ai.scan = removeFrom(ai.scan)
		}
	case message.OpBetween:
		ai.between = removeFrom(ai.between)
	default:
		ai.scan = removeFrom(ai.scan)
	}
}

// Match implements Matcher.
func (m *Counting) Match(e message.Event, scratch []message.SubID) []message.SubID {
	m.epoch++
	out, start := scratch, len(scratch)
	m.evSyms = m.evSyms[:0]

	hit := func(cp *cPred) {
		if cp.hitAt == m.epoch {
			return // predicate already satisfied by an earlier pair
		}
		cp.hitAt = m.epoch
		for _, cs := range cp.subs {
			if cs.seen != m.epoch {
				cs.seen = m.epoch
				cs.count = 0
			}
			cs.count++
			if cs.count == cs.need {
				out = append(out, cs.id)
			}
		}
	}

	for _, pair := range e.Pairs() {
		sym, ok := message.Interned(pair.Attr)
		if !ok {
			continue // no indexed predicate can reference this attribute
		}
		m.evSyms = append(m.evSyms, sym)
		ai := m.attrs[sym]
		if ai == nil {
			continue
		}
		// Equality probe.
		for _, cp := range ai.eq[pair.Val.Canonical()] {
			hit(cp)
		}
		// Existence.
		for _, cp := range ai.exists {
			hit(cp)
		}
		// Ordering thresholds.
		if x, ok := pair.Val.AsFloat(); ok {
			ai.lt.sortIfDirty()
			ai.le.sortIfDirty()
			ai.gt.sortIfDirty()
			ai.ge.sortIfDirty()
			// attr < t  satisfied for all t > x: suffix of sorted cuts.
			from := sort.Search(len(ai.lt.cuts), func(i int) bool { return ai.lt.cuts[i] > x })
			for _, cp := range ai.lt.preds[from:] {
				hit(cp)
			}
			// attr <= t satisfied for all t >= x.
			from = sort.Search(len(ai.le.cuts), func(i int) bool { return ai.le.cuts[i] >= x })
			for _, cp := range ai.le.preds[from:] {
				hit(cp)
			}
			// attr > t  satisfied for all t < x: prefix.
			to := sort.Search(len(ai.gt.cuts), func(i int) bool { return ai.gt.cuts[i] >= x })
			for _, cp := range ai.gt.preds[:to] {
				hit(cp)
			}
			// attr >= t satisfied for all t <= x.
			to = sort.Search(len(ai.ge.cuts), func(i int) bool { return ai.ge.cuts[i] > x })
			for _, cp := range ai.ge.preds[:to] {
				hit(cp)
			}
			// Intervals sorted by lower bound: candidates have lo <= x.
			if ai.betweenD {
				sort.SliceStable(ai.between, func(a, b int) bool {
					fa, _ := ai.between[a].pred.Val.AsFloat()
					fb, _ := ai.between[b].pred.Val.AsFloat()
					return fa < fb
				})
				ai.betweenD = false
			}
			n := sort.Search(len(ai.between), func(i int) bool {
				lo, _ := ai.between[i].pred.Val.AsFloat()
				return lo > x
			})
			for _, cp := range ai.between[:n] {
				if hi, ok := cp.pred.Hi.AsFloat(); ok && x <= hi {
					hit(cp)
				}
			}
		}
		// Residual predicates: direct evaluation.
		for _, cp := range ai.scan {
			if cp.hitAt != m.epoch && cp.pred.Eval(pair.Val, true) {
				hit(cp)
			}
		}
	}

	// Negation pass: a not-exists predicate is satisfied when the event
	// lacks the attribute entirely. Event attributes that were never
	// interned cannot collide with an indexed (hence interned) attribute.
	if len(m.notExists) > 0 {
	negation:
		for sym, set := range m.notExists {
			for _, es := range m.evSyms {
				if es == sym {
					continue negation
				}
			}
			for cp := range set {
				hit(cp)
			}
		}
	}

	sortIDs(out[start:])
	return out
}
