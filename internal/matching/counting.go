package matching

import (
	"fmt"
	"sort"

	"stopss/internal/message"
)

// Counting implements the counting algorithm of Aguilera, Strom, Sturman,
// Astley and Chandra, "Matching events in a content-based subscription
// system" (PODC 1999) — citation [1] of the S-ToPSS paper.
//
// Identical predicates appearing in many subscriptions are stored once
// (unique-predicate table keyed by the predicate's canonical form). Per
// attribute there is an operator-specific index:
//
//   - equality:  hash  value → predicates               (O(1) probe)
//   - ordering:  sorted threshold arrays per operator   (binary search)
//   - between:   intervals sorted by lower bound
//   - existence: per-attribute list
//   - the rest (≠, prefix/suffix/contains, non-numeric ordering) live in
//     a per-attribute scan list evaluated directly.
//
// Matching an event walks its pairs, collects the satisfied unique
// predicates from the indexes, and increments one counter per affected
// subscription; a subscription matches when its counter reaches its
// predicate count. Counters are reset lazily with an epoch stamp, so a
// Match is O(satisfied predicates), not O(subscriptions).
type Counting struct {
	preds     map[string]*cPred          // canonical form → unique predicate
	subs      map[message.SubID]*cSub    // indexed subscriptions
	attrs     map[string]*attrIndex      // per-attribute operator indexes
	notExists map[string]map[*cPred]bool // attr → not-exists predicates
	epoch     uint64
}

type cPred struct {
	pred    message.Predicate
	subs    map[message.SubID]*cSub // subscriptions referencing this predicate (a sub may reference it more than once)
	refs    int                     // total references (for removal bookkeeping)
	hitAt   uint64                  // epoch of last satisfaction (per-event dedup)
	ordered bool                    // tracked by a sorted threshold index
}

type cSub struct {
	id    message.SubID
	need  int // number of predicate slots that must be satisfied
	preds []*cPred
	count int
	seen  uint64 // epoch stamp for lazy counter reset
}

// attrIndex groups the per-attribute structures of the counting matcher.
type attrIndex struct {
	eq       map[string][]*cPred // canonical value → equality predicates
	lt       thresholds          // attr < t
	le       thresholds          // attr <= t
	gt       thresholds          // attr > t
	ge       thresholds          // attr >= t
	between  []*cPred            // sorted by lower bound
	exists   []*cPred
	scan     []*cPred // evaluated directly per pair
	betweenD bool     // between slice needs re-sort
}

// thresholds is a sorted multiset of numeric cut points with their
// predicates.
type thresholds struct {
	cuts  []float64
	preds []*cPred
	dirty bool
}

func (t *thresholds) add(cut float64, p *cPred) {
	t.cuts = append(t.cuts, cut)
	t.preds = append(t.preds, p)
	t.dirty = true
}

func (t *thresholds) sortIfDirty() {
	if !t.dirty {
		return
	}
	idx := make([]int, len(t.cuts))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return t.cuts[idx[a]] < t.cuts[idx[b]] })
	cuts := make([]float64, len(t.cuts))
	preds := make([]*cPred, len(t.preds))
	for i, j := range idx {
		cuts[i] = t.cuts[j]
		preds[i] = t.preds[j]
	}
	t.cuts, t.preds, t.dirty = cuts, preds, false
}

func (t *thresholds) remove(p *cPred) {
	for i := range t.preds {
		if t.preds[i] == p {
			t.cuts = append(t.cuts[:i], t.cuts[i+1:]...)
			t.preds = append(t.preds[:i], t.preds[i+1:]...)
			return
		}
	}
}

// NewCounting returns an empty counting matcher.
func NewCounting() *Counting {
	return &Counting{
		preds:     make(map[string]*cPred),
		subs:      make(map[message.SubID]*cSub),
		attrs:     make(map[string]*attrIndex),
		notExists: make(map[string]map[*cPred]bool),
	}
}

// Name implements Matcher.
func (m *Counting) Name() string { return "counting" }

// Size implements Matcher.
func (m *Counting) Size() int { return len(m.subs) }

// UniquePredicates reports the size of the shared predicate table, a key
// statistic of the counting algorithm (predicate sharing across
// subscriptions is what makes it sublinear).
func (m *Counting) UniquePredicates() int { return len(m.preds) }

func (m *Counting) attr(name string) *attrIndex {
	ai := m.attrs[name]
	if ai == nil {
		ai = &attrIndex{eq: make(map[string][]*cPred)}
		m.attrs[name] = ai
	}
	return ai
}

// Add implements Matcher.
func (m *Counting) Add(sub message.Subscription) error {
	if err := sub.Validate(); err != nil {
		return err
	}
	if _, dup := m.subs[sub.ID]; dup {
		return fmt.Errorf("matching: subscription %d already indexed", sub.ID)
	}
	cs := &cSub{id: sub.ID}
	// Identical predicates within one subscription collapse to a single
	// slot: they are satisfied together, so counting them once keeps the
	// "count == need" completion test exact.
	within := make(map[string]bool, len(sub.Preds))
	for _, p := range sub.Preds {
		key := p.Canonical()
		if within[key] {
			continue
		}
		within[key] = true
		cp := m.preds[key]
		if cp == nil {
			cp = &cPred{pred: p, subs: make(map[message.SubID]*cSub)}
			m.preds[key] = cp
			m.indexPredicate(cp)
		}
		cp.refs++
		cp.subs[sub.ID] = cs
		cs.preds = append(cs.preds, cp)
	}
	cs.need = len(cs.preds)
	m.subs[sub.ID] = cs
	return nil
}

// indexPredicate places a new unique predicate into the per-attribute
// operator structures.
func (m *Counting) indexPredicate(cp *cPred) {
	p := cp.pred
	ai := m.attr(p.Attr)
	switch p.Op {
	case message.OpEq:
		ai.eq[p.Val.Canonical()] = append(ai.eq[p.Val.Canonical()], cp)
	case message.OpExists:
		ai.exists = append(ai.exists, cp)
	case message.OpNotExists:
		set := m.notExists[p.Attr]
		if set == nil {
			set = make(map[*cPred]bool)
			m.notExists[p.Attr] = set
		}
		set[cp] = true
	case message.OpLt, message.OpLe, message.OpGt, message.OpGe:
		if f, ok := p.Val.AsFloat(); ok {
			cp.ordered = true
			switch p.Op {
			case message.OpLt:
				ai.lt.add(f, cp)
			case message.OpLe:
				ai.le.add(f, cp)
			case message.OpGt:
				ai.gt.add(f, cp)
			case message.OpGe:
				ai.ge.add(f, cp)
			}
		} else {
			// Ordering over strings/bools: direct evaluation.
			ai.scan = append(ai.scan, cp)
		}
	case message.OpBetween:
		ai.between = append(ai.between, cp)
		ai.betweenD = true
	default:
		ai.scan = append(ai.scan, cp)
	}
}

// Remove implements Matcher.
func (m *Counting) Remove(id message.SubID) bool {
	cs, ok := m.subs[id]
	if !ok {
		return false
	}
	delete(m.subs, id)
	for _, cp := range cs.preds {
		delete(cp.subs, id)
		cp.refs--
		if cp.refs == 0 {
			m.unindexPredicate(cp)
			delete(m.preds, cp.pred.Canonical())
		}
	}
	return true
}

func (m *Counting) unindexPredicate(cp *cPred) {
	p := cp.pred
	ai := m.attrs[p.Attr]
	if ai == nil {
		return
	}
	removeFrom := func(s []*cPred) []*cPred {
		for i := range s {
			if s[i] == cp {
				return append(s[:i], s[i+1:]...)
			}
		}
		return s
	}
	switch p.Op {
	case message.OpEq:
		key := p.Val.Canonical()
		ai.eq[key] = removeFrom(ai.eq[key])
		if len(ai.eq[key]) == 0 {
			delete(ai.eq, key)
		}
	case message.OpExists:
		ai.exists = removeFrom(ai.exists)
	case message.OpNotExists:
		delete(m.notExists[p.Attr], cp)
		if len(m.notExists[p.Attr]) == 0 {
			delete(m.notExists, p.Attr)
		}
	case message.OpLt:
		if cp.ordered {
			ai.lt.remove(cp)
		} else {
			ai.scan = removeFrom(ai.scan)
		}
	case message.OpLe:
		if cp.ordered {
			ai.le.remove(cp)
		} else {
			ai.scan = removeFrom(ai.scan)
		}
	case message.OpGt:
		if cp.ordered {
			ai.gt.remove(cp)
		} else {
			ai.scan = removeFrom(ai.scan)
		}
	case message.OpGe:
		if cp.ordered {
			ai.ge.remove(cp)
		} else {
			ai.scan = removeFrom(ai.scan)
		}
	case message.OpBetween:
		ai.between = removeFrom(ai.between)
	default:
		ai.scan = removeFrom(ai.scan)
	}
}

// Match implements Matcher.
func (m *Counting) Match(e message.Event) []message.SubID {
	m.epoch++
	var out []message.SubID

	hit := func(cp *cPred) {
		if cp.hitAt == m.epoch {
			return // predicate already satisfied by an earlier pair
		}
		cp.hitAt = m.epoch
		for _, cs := range cp.subs {
			if cs.seen != m.epoch {
				cs.seen = m.epoch
				cs.count = 0
			}
			cs.count++
			if cs.count == cs.need {
				out = append(out, cs.id)
			}
		}
	}

	for _, pair := range e.Pairs() {
		ai := m.attrs[pair.Attr]
		if ai == nil {
			continue
		}
		// Equality probe.
		for _, cp := range ai.eq[pair.Val.Canonical()] {
			hit(cp)
		}
		// Existence.
		for _, cp := range ai.exists {
			hit(cp)
		}
		// Ordering thresholds.
		if x, ok := pair.Val.AsFloat(); ok {
			ai.lt.sortIfDirty()
			ai.le.sortIfDirty()
			ai.gt.sortIfDirty()
			ai.ge.sortIfDirty()
			// attr < t  satisfied for all t > x: suffix of sorted cuts.
			from := sort.Search(len(ai.lt.cuts), func(i int) bool { return ai.lt.cuts[i] > x })
			for _, cp := range ai.lt.preds[from:] {
				hit(cp)
			}
			// attr <= t satisfied for all t >= x.
			from = sort.Search(len(ai.le.cuts), func(i int) bool { return ai.le.cuts[i] >= x })
			for _, cp := range ai.le.preds[from:] {
				hit(cp)
			}
			// attr > t  satisfied for all t < x: prefix.
			to := sort.Search(len(ai.gt.cuts), func(i int) bool { return ai.gt.cuts[i] >= x })
			for _, cp := range ai.gt.preds[:to] {
				hit(cp)
			}
			// attr >= t satisfied for all t <= x.
			to = sort.Search(len(ai.ge.cuts), func(i int) bool { return ai.ge.cuts[i] > x })
			for _, cp := range ai.ge.preds[:to] {
				hit(cp)
			}
			// Intervals sorted by lower bound: candidates have lo <= x.
			if ai.betweenD {
				sort.SliceStable(ai.between, func(a, b int) bool {
					fa, _ := ai.between[a].pred.Val.AsFloat()
					fb, _ := ai.between[b].pred.Val.AsFloat()
					return fa < fb
				})
				ai.betweenD = false
			}
			n := sort.Search(len(ai.between), func(i int) bool {
				lo, _ := ai.between[i].pred.Val.AsFloat()
				return lo > x
			})
			for _, cp := range ai.between[:n] {
				if hi, ok := cp.pred.Hi.AsFloat(); ok && x <= hi {
					hit(cp)
				}
			}
		}
		// Residual predicates: direct evaluation.
		for _, cp := range ai.scan {
			if cp.hitAt != m.epoch && cp.pred.Eval(pair.Val, true) {
				hit(cp)
			}
		}
	}

	// Negation pass: a not-exists predicate is satisfied when the event
	// lacks the attribute entirely.
	if len(m.notExists) > 0 {
		for attrName, set := range m.notExists {
			if e.Has(attrName) {
				continue
			}
			for cp := range set {
				hit(cp)
			}
		}
	}

	sortIDs(out)
	return out
}
