package matching

import (
	"math/rand"
	"testing"

	"stopss/internal/message"
)

// Property-based tests for the covering relation: Covers must be
// reflexive, transitive (as decided — the implementation is sound but
// incomplete, and its positive verdicts must still compose), and above
// all SOUND: whenever Covers(a, b) holds, every event matching b must
// match a. Pairs are generated with a narrowing bias so that covering
// actually occurs often enough to make the properties non-vacuous.

var (
	numAttrs = []string{"x", "y"}
	strAttrs = []string{"s", "t"}
	// Small string pool over a tiny alphabet so prefix/suffix/contains
	// relations between random picks are common.
	strPool = []string{"", "a", "b", "ab", "ba", "aa", "abb", "bab", "aab"}
)

func coverNumPred(rng *rand.Rand, attr string) message.Predicate {
	v := func() message.Value { return message.Int(int64(rng.Intn(13))) }
	switch rng.Intn(9) {
	case 0:
		return message.Pred(attr, message.OpEq, v())
	case 1:
		return message.Pred(attr, message.OpNe, v())
	case 2:
		return message.Pred(attr, message.OpLt, v())
	case 3:
		return message.Pred(attr, message.OpLe, v())
	case 4:
		return message.Pred(attr, message.OpGt, v())
	case 5:
		return message.Pred(attr, message.OpGe, v())
	case 6:
		lo := rng.Intn(13)
		return message.Between(attr, message.Int(int64(lo)), message.Int(int64(lo+rng.Intn(6))))
	case 7:
		return message.Exists(attr)
	default:
		return message.Predicate{Attr: attr, Op: message.OpNotExists}
	}
}

func coverStrPred(rng *rand.Rand, attr string) message.Predicate {
	v := func() message.Value { return message.String(strPool[rng.Intn(len(strPool))]) }
	switch rng.Intn(7) {
	case 0:
		return message.Pred(attr, message.OpEq, v())
	case 1:
		return message.Pred(attr, message.OpNe, v())
	case 2:
		return message.Pred(attr, message.OpPrefix, v())
	case 3:
		return message.Pred(attr, message.OpSuffix, v())
	case 4:
		return message.Pred(attr, message.OpContains, v())
	case 5:
		return message.Exists(attr)
	default:
		return message.Predicate{Attr: attr, Op: message.OpNotExists}
	}
}

func coverSub(rng *rand.Rand) message.Subscription {
	n := 1 + rng.Intn(3)
	preds := make([]message.Predicate, 0, n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			preds = append(preds, coverNumPred(rng, numAttrs[rng.Intn(len(numAttrs))]))
		} else {
			preds = append(preds, coverStrPred(rng, strAttrs[rng.Intn(len(strAttrs))]))
		}
	}
	return sub(preds...)
}

// narrowSub derives a subscription biased toward being covered by s:
// each predicate is either kept or tightened, and extra predicates may
// be appended (a longer conjunction matches fewer events).
func narrowSub(rng *rand.Rand, s message.Subscription) message.Subscription {
	out := s.Clone()
	for i, p := range out.Preds {
		if rng.Intn(2) == 0 {
			continue
		}
		d := int64(rng.Intn(4))
		switch p.Op {
		case message.OpGe, message.OpGt:
			p.Val = message.Int(p.Val.IntVal() + d)
		case message.OpLe, message.OpLt:
			p.Val = message.Int(p.Val.IntVal() - d)
		case message.OpNe:
			// x != v is implied by any range excluding v.
			if p.Val.Kind() == message.KindInt {
				p = message.Pred(p.Attr, message.OpGt, message.Int(p.Val.IntVal()))
			}
		case message.OpBetween:
			p.Val = message.Int(p.Val.IntVal() + d)
		case message.OpPrefix, message.OpEq, message.OpContains, message.OpSuffix:
			if p.Val.Kind() == message.KindString && rng.Intn(2) == 0 {
				switch p.Op {
				case message.OpPrefix:
					p = message.Pred(p.Attr, message.OpPrefix, message.String(p.Val.Str()+"a"))
				case message.OpSuffix:
					p = message.Pred(p.Attr, message.OpSuffix, message.String("a"+p.Val.Str()))
				case message.OpContains:
					p = message.Pred(p.Attr, message.OpEq, message.String("b"+p.Val.Str()+"a"))
				}
			}
		case message.OpExists:
			if rng.Intn(2) == 0 {
				p = coverNumPred(rng, p.Attr)
				if p.Op == message.OpNotExists {
					p = message.Exists(p.Attr)
				}
			}
		}
		out.Preds[i] = p
	}
	for rng.Intn(3) == 0 {
		out.Preds = append(out.Preds, coverNumPred(rng, numAttrs[rng.Intn(len(numAttrs))]))
	}
	return out
}

func coverEvent(rng *rand.Rand) message.Event {
	var kv []any
	for _, a := range numAttrs {
		for reps := rng.Intn(3); reps > 0; reps-- { // possibly duplicate attrs: any-pair semantics
			kv = append(kv, a, rng.Intn(13))
		}
	}
	for _, a := range strAttrs {
		for reps := rng.Intn(3); reps > 0; reps-- {
			kv = append(kv, a, strPool[rng.Intn(len(strPool))])
		}
	}
	return message.E(kv...)
}

func TestCoversReflexive(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for i := 0; i < 1000; i++ {
		s := coverSub(rng)
		if !Covers(s, s) {
			t.Fatalf("Covers is not reflexive on %v", s)
		}
		if !Equivalent(s, s) {
			t.Fatalf("Equivalent is not reflexive on %v", s)
		}
	}
}

// TestCoversImpliesMatchSuperset is the soundness property the overlay
// depends on: when a covering subscription suppresses a covered one in
// a routing table, every publication the covered one wanted must still
// be pulled in by the coverer.
func TestCoversImpliesMatchSuperset(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	covering := 0
	for i := 0; i < 4000; i++ {
		a := coverSub(rng)
		b := narrowSub(rng, a)
		if rng.Intn(4) == 0 {
			b = coverSub(rng) // unrelated pairs keep the negative space honest
		}
		if !Covers(a, b) {
			continue
		}
		covering++
		for j := 0; j < 100; j++ {
			ev := coverEvent(rng)
			if b.Matches(ev) && !a.Matches(ev) {
				t.Fatalf("unsound covering:\n a = %v\n b = %v\nCovers(a,b) but %v matches b and not a", a, b, ev)
			}
		}
	}
	// Guard against generator bitrot silently making the test vacuous.
	if covering < 200 {
		t.Fatalf("only %d covering pairs in 4000 iterations; generator no longer produces covering pairs", covering)
	}
}

func TestCoversTransitive(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	chains := 0
	for i := 0; i < 4000; i++ {
		a := coverSub(rng)
		b := narrowSub(rng, a)
		c := narrowSub(rng, b)
		if rng.Intn(4) == 0 {
			c = coverSub(rng)
		}
		if !Covers(a, b) || !Covers(b, c) {
			continue
		}
		chains++
		if !Covers(a, c) {
			t.Fatalf("transitivity violated:\n a = %v\n b = %v\n c = %v\nCovers(a,b) and Covers(b,c) but not Covers(a,c)", a, b, c)
		}
	}
	if chains < 200 {
		t.Fatalf("only %d covering chains in 4000 iterations; generator no longer produces chains", chains)
	}
}

// FuzzCovers reruns the soundness property with fuzzer-chosen seeds,
// letting the engine hunt for generator states the fixed seeds above
// never reach.
func FuzzCovers(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(42))
	f.Add(int64(-7))
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		a := coverSub(rng)
		b := narrowSub(rng, a)
		if !Covers(a, a) {
			t.Fatalf("Covers not reflexive on %v", a)
		}
		if !Covers(a, b) {
			return
		}
		for j := 0; j < 50; j++ {
			ev := coverEvent(rng)
			if b.Matches(ev) && !a.Matches(ev) {
				t.Fatalf("unsound covering:\n a = %v\n b = %v\n ev = %v", a, b, ev)
			}
		}
	})
}
