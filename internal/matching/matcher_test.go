package matching

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"stopss/internal/message"
)

func allMatchers() []Matcher {
	return []Matcher{NewNaive(), NewCounting(), NewCluster(), NewTree()}
}

func TestNewByName(t *testing.T) {
	for _, name := range Algorithms() {
		m, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if m.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, m.Name())
		}
	}
	if _, err := New("quantum"); err == nil {
		t.Error("unknown algorithm must be rejected")
	}
}

func TestAddRemoveLifecycle(t *testing.T) {
	for _, m := range allMatchers() {
		t.Run(m.Name(), func(t *testing.T) {
			s := message.NewSubscription(1, "c", message.Pred("a", message.OpEq, message.Int(1)))
			if err := Index(m, s); err != nil {
				t.Fatalf("Add: %v", err)
			}
			if err := Index(m, s); err == nil {
				t.Error("duplicate Add must fail")
			}
			if m.Size() != 1 {
				t.Errorf("Size = %d, want 1", m.Size())
			}
			if !m.Remove(1) {
				t.Error("Remove of present sub should report true")
			}
			if m.Remove(1) {
				t.Error("Remove of absent sub should report false")
			}
			if m.Size() != 0 {
				t.Errorf("Size = %d, want 0", m.Size())
			}
			if got := m.Match(message.E("a", 1), nil); len(got) != 0 {
				t.Errorf("removed subscription still matches: %v", got)
			}
			// Invalid subscriptions are rejected.
			if err := Index(m, message.NewSubscription(2, "c")); err == nil {
				t.Error("empty subscription must be rejected")
			}
		})
	}
}

func TestMatchBasicOperators(t *testing.T) {
	subs := []message.Subscription{
		message.NewSubscription(1, "c", message.Pred("sym", message.OpEq, message.String("IBM"))),
		message.NewSubscription(2, "c", message.Pred("price", message.OpGt, message.Int(100))),
		message.NewSubscription(3, "c", message.Pred("price", message.OpLe, message.Int(100))),
		message.NewSubscription(4, "c",
			message.Pred("sym", message.OpEq, message.String("IBM")),
			message.Pred("price", message.OpGe, message.Int(50))),
		message.NewSubscription(5, "c", message.Exists("volume")),
		message.NewSubscription(6, "c", message.Pred("volume", message.OpNotExists, message.None())),
		message.NewSubscription(7, "c", message.Between("price", message.Int(90), message.Int(110))),
		message.NewSubscription(8, "c", message.Pred("sym", message.OpPrefix, message.String("IB"))),
		message.NewSubscription(9, "c", message.Pred("sym", message.OpNe, message.String("MSFT"))),
		message.NewSubscription(10, "c", message.Pred("sym", message.OpContains, message.String("BM"))),
	}
	cases := []struct {
		e    message.Event
		want []message.SubID
	}{
		{message.E("sym", "IBM", "price", 100), []message.SubID{1, 3, 4, 6, 7, 8, 9, 10}},
		{message.E("sym", "IBM", "price", 101), []message.SubID{1, 2, 4, 6, 7, 8, 9, 10}},
		{message.E("sym", "MSFT", "price", 200, "volume", 9), []message.SubID{2, 5}},
		{message.E("other", 1), []message.SubID{6}},
	}
	for _, m := range allMatchers() {
		for _, s := range subs {
			if err := Index(m, s); err != nil {
				t.Fatalf("%s: Add: %v", m.Name(), err)
			}
		}
		for _, tc := range cases {
			if got := m.Match(tc.e, nil); !reflect.DeepEqual(got, tc.want) {
				t.Errorf("%s: Match(%v) = %v, want %v", m.Name(), tc.e, got, tc.want)
			}
		}
	}
}

func TestMatchNumericCrossKind(t *testing.T) {
	for _, m := range allMatchers() {
		s := message.NewSubscription(1, "c", message.Pred("x", message.OpEq, message.Int(4)))
		if err := Index(m, s); err != nil {
			t.Fatal(err)
		}
		if got := m.Match(message.E("x", 4.0), nil); len(got) != 1 {
			t.Errorf("%s: Float(4.0) should satisfy x = Int(4)", m.Name())
		}
		if got := m.Match(message.E("x", "4"), nil); len(got) != 0 {
			t.Errorf("%s: String(\"4\") must not satisfy x = Int(4)", m.Name())
		}
	}
}

func TestMatchMultiValuedAttribute(t *testing.T) {
	// After semantic expansion an event may carry several values for one
	// attribute; any instance may satisfy a predicate, but one predicate
	// must not be counted twice for the same subscription.
	for _, m := range allMatchers() {
		s := message.NewSubscription(1, "c",
			message.Pred("skill", message.OpEq, message.String("COBOL")),
			message.Pred("years", message.OpGe, message.Int(3)))
		if err := Index(m, s); err != nil {
			t.Fatal(err)
		}
		e := message.E("skill", "Java", "skill", "COBOL", "skill", "COBOL", "years", 5)
		if got := m.Match(e, nil); len(got) != 1 || got[0] != 1 {
			t.Errorf("%s: Match = %v, want [1]", m.Name(), got)
		}
		// Two pairs both satisfying different thresholds must not
		// double-count a single predicate either.
		e2 := message.E("years", 5, "years", 7)
		s2 := message.NewSubscription(2, "c",
			message.Pred("years", message.OpGe, message.Int(3)),
			message.Pred("missing", message.OpEq, message.Int(1)))
		if err := Index(m, s2); err != nil {
			t.Fatal(err)
		}
		if got := m.Match(e2, nil); len(got) != 0 {
			t.Errorf("%s: double-counted predicate produced false match: %v", m.Name(), got)
		}
	}
}

func TestDuplicatePredicatesInOneSubscription(t *testing.T) {
	for _, m := range allMatchers() {
		s := message.NewSubscription(1, "c",
			message.Pred("a", message.OpEq, message.Int(1)),
			message.Pred("a", message.OpEq, message.Int(1)), // duplicate
			message.Pred("b", message.OpEq, message.Int(2)))
		if err := Index(m, s); err != nil {
			t.Fatal(err)
		}
		if got := m.Match(message.E("a", 1, "b", 2), nil); len(got) != 1 {
			t.Errorf("%s: duplicated predicate broke completion count: %v", m.Name(), got)
		}
		if got := m.Match(message.E("b", 2), nil); len(got) != 0 {
			t.Errorf("%s: partially satisfied subscription matched: %v", m.Name(), got)
		}
	}
}

func TestSharedPredicateRemoval(t *testing.T) {
	// Two subscriptions share a predicate; removing one must not break
	// the other (counting matcher refcounts unique predicates).
	for _, m := range allMatchers() {
		shared := message.Pred("sym", message.OpEq, message.String("IBM"))
		if err := Index(m, message.NewSubscription(1, "c", shared)); err != nil {
			t.Fatal(err)
		}
		if err := Index(m, message.NewSubscription(2, "c", shared, message.Pred("p", message.OpGt, message.Int(5)))); err != nil {
			t.Fatal(err)
		}
		m.Remove(1)
		got := m.Match(message.E("sym", "IBM", "p", 10), nil)
		if len(got) != 1 || got[0] != 2 {
			t.Errorf("%s: Match = %v, want [2]", m.Name(), got)
		}
	}
}

func TestCountingStats(t *testing.T) {
	m := NewCounting()
	shared := message.Pred("sym", message.OpEq, message.String("IBM"))
	for i := 1; i <= 10; i++ {
		s := message.NewSubscription(message.SubID(i), "c", shared,
			message.Pred("p", message.OpGt, message.Int(int64(i))))
		if err := Index(m, s); err != nil {
			t.Fatal(err)
		}
	}
	// 1 shared equality + 10 distinct thresholds.
	if got := m.UniquePredicates(); got != 11 {
		t.Errorf("UniquePredicates = %d, want 11", got)
	}
	m.Remove(3)
	if got := m.UniquePredicates(); got != 10 {
		t.Errorf("UniquePredicates after removal = %d, want 10", got)
	}
}

func TestClusterStats(t *testing.T) {
	m := NewCluster()
	if err := Index(m, message.NewSubscription(1, "c", message.Pred("a", message.OpEq, message.Int(1)))); err != nil {
		t.Fatal(err)
	}
	if err := Index(m, message.NewSubscription(2, "c", message.Pred("a", message.OpEq, message.Int(2)))); err != nil {
		t.Fatal(err)
	}
	if err := Index(m, message.NewSubscription(3, "c", message.Pred("a", message.OpGt, message.Int(0)))); err != nil {
		t.Fatal(err)
	}
	if m.Clusters() != 2 {
		t.Errorf("Clusters = %d, want 2", m.Clusters())
	}
	if m.Unclustered() != 1 {
		t.Errorf("Unclustered = %d, want 1", m.Unclustered())
	}
	// The unclustered subscription must still match.
	if got := m.Match(message.E("a", 5), nil); len(got) != 1 || got[0] != 3 {
		t.Errorf("Match = %v, want [3]", got)
	}
	m.Remove(1)
	if m.Clusters() != 1 {
		t.Errorf("Clusters after removal = %d, want 1", m.Clusters())
	}
}

func TestClusterBalancesAccessPredicates(t *testing.T) {
	m := NewCluster()
	// First subscription seeds cluster (a,1). The second has equality
	// predicates (a,1) and (b,2); it must pick the smaller cluster (b,2).
	if err := Index(m, message.NewSubscription(1, "c", message.Pred("a", message.OpEq, message.Int(1)))); err != nil {
		t.Fatal(err)
	}
	if err := Index(m, message.NewSubscription(2, "c",
		message.Pred("a", message.OpEq, message.Int(1)),
		message.Pred("b", message.OpEq, message.Int(2)))); err != nil {
		t.Fatal(err)
	}
	if m.Clusters() != 2 {
		t.Errorf("expected balanced clusters, got %d", m.Clusters())
	}
}

// --- random workload helpers shared with the property tests ---

func randWord(r *rand.Rand, n int) string {
	letters := "abcdef"
	b := make([]byte, 1+r.Intn(n))
	for i := range b {
		b[i] = letters[r.Intn(len(letters))]
	}
	return string(b)
}

func randValue(r *rand.Rand) message.Value {
	switch r.Intn(3) {
	case 0:
		return message.String(randWord(r, 3))
	case 1:
		return message.Int(int64(r.Intn(40)))
	default:
		return message.Float(float64(r.Intn(80)) / 2)
	}
}

func randPredicate(r *rand.Rand) message.Predicate {
	attr := randWord(r, 2)
	switch r.Intn(10) {
	case 0, 1, 2:
		return message.Pred(attr, message.OpEq, randValue(r))
	case 3:
		return message.Pred(attr, message.OpNe, randValue(r))
	case 4:
		return message.Pred(attr, message.OpLt, message.Int(int64(r.Intn(40))))
	case 5:
		return message.Pred(attr, message.OpGe, message.Int(int64(r.Intn(40))))
	case 6:
		return message.Exists(attr)
	case 7:
		return message.Pred(attr, message.OpNotExists, message.None())
	case 8:
		lo := int64(r.Intn(30))
		return message.Between(attr, message.Int(lo), message.Int(lo+int64(r.Intn(20))))
	default:
		return message.Pred(attr, message.OpPrefix, message.String(randWord(r, 2)))
	}
}

func randSubscription(r *rand.Rand, id message.SubID) message.Subscription {
	n := 1 + r.Intn(4)
	preds := make([]message.Predicate, n)
	for i := range preds {
		preds[i] = randPredicate(r)
	}
	return message.NewSubscription(id, "w", preds...)
}

func randEvent(r *rand.Rand) message.Event {
	n := 1 + r.Intn(6)
	e := message.Event{}
	for i := 0; i < n; i++ {
		e.Add(randWord(r, 2), randValue(r))
	}
	return e
}

// TestQuickMatchersAgree is the central substrate property: on random
// workloads every indexed matcher returns exactly the naive matcher's
// result set.
func TestQuickMatchersAgree(t *testing.T) {
	r := rand.New(rand.NewSource(2003))
	for trial := 0; trial < 25; trial++ {
		matchers := allMatchers()
		naive := matchers[0]
		nSubs := 50 + r.Intn(150)
		for i := 0; i < nSubs; i++ {
			s := randSubscription(r, message.SubID(i+1))
			for _, m := range matchers {
				if err := Index(m, s); err != nil {
					t.Fatalf("%s Add: %v", m.Name(), err)
				}
			}
		}
		for j := 0; j < 40; j++ {
			e := randEvent(r)
			want := naive.Match(e, nil)
			for _, m := range matchers[1:] {
				got := m.Match(e, nil)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d: %s disagrees with naive on %v:\n got %v\nwant %v",
						trial, m.Name(), e, got, want)
				}
			}
		}
	}
}

// TestQuickMatchersAgreeUnderChurn interleaves removals with matching.
func TestQuickMatchersAgreeUnderChurn(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	matchers := allMatchers()
	naive := matchers[0]
	live := make(map[message.SubID]bool)
	next := message.SubID(1)
	for step := 0; step < 600; step++ {
		switch {
		case len(live) == 0 || r.Intn(3) > 0:
			s := randSubscription(r, next)
			live[next] = true
			next++
			for _, m := range matchers {
				if err := Index(m, s); err != nil {
					t.Fatalf("Add: %v", err)
				}
			}
		default:
			// Remove a random live subscription.
			var victim message.SubID
			k := r.Intn(len(live))
			for id := range live {
				if k == 0 {
					victim = id
					break
				}
				k--
			}
			delete(live, victim)
			for _, m := range matchers {
				if !m.Remove(victim) {
					t.Fatalf("%s: Remove(%d) failed", m.Name(), victim)
				}
			}
		}
		if step%10 == 0 {
			e := randEvent(r)
			want := naive.Match(e, nil)
			for _, m := range matchers[1:] {
				if got := m.Match(e, nil); !reflect.DeepEqual(got, want) {
					t.Fatalf("step %d: %s disagrees on %v: got %v want %v", step, m.Name(), e, got, want)
				}
			}
			for _, m := range matchers {
				if m.Size() != len(live) {
					t.Fatalf("%s: Size = %d, want %d", m.Name(), m.Size(), len(live))
				}
			}
		}
	}
}

func TestMatchEmptyMatcher(t *testing.T) {
	for _, m := range allMatchers() {
		if got := m.Match(message.E("a", 1), nil); len(got) != 0 {
			t.Errorf("%s: empty matcher matched: %v", m.Name(), got)
		}
	}
}

func TestMatchDeterministicOrder(t *testing.T) {
	for _, m := range allMatchers() {
		for i := 20; i >= 1; i-- {
			s := message.NewSubscription(message.SubID(i), "c", message.Pred("a", message.OpEq, message.Int(1)))
			if err := Index(m, s); err != nil {
				t.Fatal(err)
			}
		}
		got := m.Match(message.E("a", 1), nil)
		for i := 1; i < len(got); i++ {
			if got[i-1] >= got[i] {
				t.Fatalf("%s: result not in ascending order: %v", m.Name(), got)
			}
		}
		if len(got) != 20 {
			t.Fatalf("%s: want 20 matches, got %d", m.Name(), len(got))
		}
	}
}

func ExampleMatcher() {
	m := NewCounting()
	_ = Index(m, message.NewSubscription(1, "recruiter",
		message.Pred("university", message.OpEq, message.String("Toronto")),
		message.Pred("professional experience", message.OpGe, message.Int(4)),
	))
	fmt.Println(m.Match(message.E("university", "Toronto", "professional experience", 5), nil))
	fmt.Println(m.Match(message.E("school", "Toronto", "professional experience", 5), nil))
	// Output:
	// [1]
	// []
}
