package matching

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"stopss/internal/message"
)

func TestTreeSharedPrefixPaths(t *testing.T) {
	// Subscriptions sharing equality tests share tree paths: the depth
	// grows with the number of distinct constrained attributes, not the
	// number of subscriptions.
	m := NewTree()
	for i := 0; i < 100; i++ {
		s := message.NewSubscription(message.SubID(i+1), "c",
			message.Pred("sym", message.OpEq, message.String("IBM")),
			message.Pred("price", message.OpEq, message.Int(int64(i%10))))
		if err := Index(m, s); err != nil {
			t.Fatal(err)
		}
	}
	if d := m.Depth(); d > 4 {
		t.Errorf("Depth = %d; shared prefixes should keep the tree shallow", d)
	}
	got := m.Match(message.E("sym", "IBM", "price", 3), nil)
	if len(got) != 10 {
		t.Errorf("Match = %d subs, want 10", len(got))
	}
}

func TestTreeDontCareRouting(t *testing.T) {
	// A subscription constraining only a late attribute must be found
	// through don't-care edges of earlier tests.
	m := NewTree()
	mustAdd := func(id int, preds ...message.Predicate) {
		t.Helper()
		if err := Index(m, message.NewSubscription(message.SubID(id), "c", preds...)); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(1, message.Pred("a", message.OpEq, message.Int(1)), message.Pred("z", message.OpEq, message.Int(9)))
	mustAdd(2, message.Pred("z", message.OpEq, message.Int(9)))
	mustAdd(3, message.Pred("m", message.OpEq, message.Int(5)))
	// Insertion order forces the "node.attr > attr" routing case: the
	// first path claims "a" at the root, then a sub on "a"-preceding
	// attribute arrives.
	mustAdd(4, message.Pred("A", message.OpEq, message.Int(0))) // "A" < "a"

	cases := []struct {
		e    message.Event
		want []message.SubID
	}{
		{message.E("a", 1, "z", 9), []message.SubID{1, 2}},
		{message.E("z", 9), []message.SubID{2}},
		{message.E("m", 5), []message.SubID{3}},
		{message.E("A", 0), []message.SubID{4}},
		{message.E("a", 1), nil},
	}
	for _, tc := range cases {
		got := m.Match(tc.e, nil)
		if !reflect.DeepEqual(got, tc.want) && !(len(got) == 0 && len(tc.want) == 0) {
			t.Errorf("Match(%v) = %v, want %v", tc.e, got, tc.want)
		}
	}
}

func TestTreeResidualOnlySubscription(t *testing.T) {
	// No equality predicates at all: the subscription lives at the root
	// and is verified residually.
	m := NewTree()
	if err := Index(m, message.NewSubscription(1, "c",
		message.Pred("p", message.OpGt, message.Int(10)))); err != nil {
		t.Fatal(err)
	}
	if got := m.Match(message.E("p", 11), nil); len(got) != 1 {
		t.Errorf("Match = %v", got)
	}
	if got := m.Match(message.E("p", 9), nil); len(got) != 0 {
		t.Errorf("Match = %v", got)
	}
}

func TestTreeDuplicateEqualitySameAttr(t *testing.T) {
	// Two equalities on one attribute: the second goes residual, making
	// the subscription unsatisfiable by a single-valued event but
	// satisfiable by a multi-valued one.
	m := NewTree()
	if err := Index(m, message.NewSubscription(1, "c",
		message.Pred("tag", message.OpEq, message.String("x")),
		message.Pred("tag", message.OpEq, message.String("y")))); err != nil {
		t.Fatal(err)
	}
	if got := m.Match(message.E("tag", "x"), nil); len(got) != 0 {
		t.Errorf("single-valued event matched: %v", got)
	}
	if got := m.Match(message.E("tag", "x", "tag", "y"), nil); len(got) != 1 {
		t.Errorf("multi-valued event should match: %v", got)
	}
}

func TestTreeFuzzAgainstNaive(t *testing.T) {
	r := rand.New(rand.NewSource(808))
	for trial := 0; trial < 15; trial++ {
		naive, tree := NewNaive(), NewTree()
		for i := 0; i < 120; i++ {
			s := randSubscription(r, message.SubID(i+1))
			if err := Index(naive, s); err != nil {
				t.Fatal(err)
			}
			if err := Index(tree, s); err != nil {
				t.Fatal(err)
			}
		}
		for j := 0; j < 60; j++ {
			e := randEvent(r)
			want := naive.Match(e, nil)
			got := tree.Match(e, nil)
			if !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
				t.Fatalf("tree disagrees with naive on %v:\n got %v\nwant %v", e, got, want)
			}
		}
	}
}

func ExampleTree() {
	m := NewTree()
	_ = Index(m, message.NewSubscription(1, "recruiter",
		message.Pred("university", message.OpEq, message.String("Toronto")),
		message.Pred("professional experience", message.OpGe, message.Int(4))))
	fmt.Println(m.Match(message.E("university", "Toronto", "professional experience", 5), nil))
	fmt.Println(m.Depth())
	// Output:
	// [1]
	// 2
}
