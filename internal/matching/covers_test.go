package matching

import (
	"math/rand"
	"testing"

	"stopss/internal/message"
)

func sub(preds ...message.Predicate) message.Subscription {
	return message.NewSubscription(1, "c", preds...)
}

func TestCoversBasics(t *testing.T) {
	cases := []struct {
		name string
		a, b message.Subscription
		want bool
	}{
		{"identical",
			sub(message.Pred("x", message.OpEq, message.Int(1))),
			sub(message.Pred("x", message.OpEq, message.Int(1))), true},
		{"numeric kind collapse",
			sub(message.Pred("x", message.OpEq, message.Int(4))),
			sub(message.Pred("x", message.OpEq, message.Float(4))), true},
		{"wider range covers narrower",
			sub(message.Pred("x", message.OpGe, message.Int(1))),
			sub(message.Pred("x", message.OpGe, message.Int(5))), true},
		{"narrower does not cover wider",
			sub(message.Pred("x", message.OpGe, message.Int(5))),
			sub(message.Pred("x", message.OpGe, message.Int(1))), false},
		{"ge covers eq above",
			sub(message.Pred("x", message.OpGe, message.Int(3))),
			sub(message.Pred("x", message.OpEq, message.Int(7))), true},
		{"lt covers between below",
			sub(message.Pred("x", message.OpLt, message.Int(10))),
			sub(message.Between("x", message.Int(1), message.Int(9))), true},
		{"between covers inner between",
			sub(message.Between("x", message.Int(0), message.Int(10))),
			sub(message.Between("x", message.Int(2), message.Int(8))), true},
		{"between does not cover outer",
			sub(message.Between("x", message.Int(2), message.Int(8))),
			sub(message.Between("x", message.Int(0), message.Int(10))), false},
		{"exists covered by any value predicate",
			sub(message.Exists("x")),
			sub(message.Pred("x", message.OpEq, message.Int(1))), true},
		{"value predicate not covered by exists",
			sub(message.Pred("x", message.OpEq, message.Int(1))),
			sub(message.Exists("x")), false},
		{"not-exists only by not-exists",
			sub(message.Pred("x", message.OpNotExists, message.None())),
			sub(message.Pred("x", message.OpNotExists, message.None())), true},
		{"not-exists not by eq",
			sub(message.Pred("x", message.OpNotExists, message.None())),
			sub(message.Pred("x", message.OpEq, message.Int(1))), false},
		{"ne covered by different eq",
			sub(message.Pred("x", message.OpNe, message.Int(5))),
			sub(message.Pred("x", message.OpEq, message.Int(3))), true},
		{"ne not covered by same eq",
			sub(message.Pred("x", message.OpNe, message.Int(5))),
			sub(message.Pred("x", message.OpEq, message.Int(5))), false},
		{"ne covered by lt below",
			sub(message.Pred("x", message.OpNe, message.Int(5))),
			sub(message.Pred("x", message.OpLt, message.Int(5))), true},
		{"prefix covers longer prefix",
			sub(message.Pred("x", message.OpPrefix, message.String("To"))),
			sub(message.Pred("x", message.OpPrefix, message.String("Toronto"))), true},
		{"prefix covered by eq",
			sub(message.Pred("x", message.OpPrefix, message.String("To"))),
			sub(message.Pred("x", message.OpEq, message.String("Toronto"))), true},
		{"contains covered by prefix",
			sub(message.Pred("x", message.OpContains, message.String("oro"))),
			sub(message.Pred("x", message.OpPrefix, message.String("Toronto"))), true},
		{"suffix covers longer suffix",
			sub(message.Pred("x", message.OpSuffix, message.String("to"))),
			sub(message.Pred("x", message.OpSuffix, message.String("onto"))), true},
		{"fewer predicates cover more",
			sub(message.Pred("x", message.OpEq, message.Int(1))),
			sub(message.Pred("x", message.OpEq, message.Int(1)),
				message.Pred("y", message.OpEq, message.Int(2))), true},
		{"more predicates do not cover fewer",
			sub(message.Pred("x", message.OpEq, message.Int(1)),
				message.Pred("y", message.OpEq, message.Int(2))),
			sub(message.Pred("x", message.OpEq, message.Int(1))), false},
		{"different attributes never imply",
			sub(message.Pred("x", message.OpEq, message.Int(1))),
			sub(message.Pred("y", message.OpEq, message.Int(1))), false},
		{"string ordering",
			sub(message.Pred("x", message.OpLt, message.String("m"))),
			sub(message.Pred("x", message.OpLt, message.String("g"))), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Covers(tc.a, tc.b); got != tc.want {
				t.Errorf("Covers(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
			}
		})
	}
}

func TestEquivalent(t *testing.T) {
	a := sub(message.Pred("x", message.OpEq, message.Int(4)))
	b := sub(message.Pred("x", message.OpEq, message.Float(4)))
	if !Equivalent(a, b) {
		t.Error("numerically equal equality subscriptions should be equivalent")
	}
	c := sub(message.Pred("x", message.OpGe, message.Int(4)))
	if Equivalent(a, c) {
		t.Error("eq and ge are not equivalent")
	}
}

// satisfyingValue produces a value that satisfies p (nil means use
// attribute absence).
func satisfyingValue(r *rand.Rand, p message.Predicate) (message.Value, bool) {
	switch p.Op {
	case message.OpEq:
		return p.Val, true
	case message.OpNe:
		return message.String("definitely-other-" + randWord(r, 3)), true
	case message.OpLt:
		if f, ok := p.Val.AsFloat(); ok {
			return message.Float(f - 1 - float64(r.Intn(5))), true
		}
		return message.None(), false
	case message.OpLe:
		if f, ok := p.Val.AsFloat(); ok {
			return message.Float(f - float64(r.Intn(5))), true
		}
		return message.None(), false
	case message.OpGt:
		if f, ok := p.Val.AsFloat(); ok {
			return message.Float(f + 1 + float64(r.Intn(5))), true
		}
		return message.None(), false
	case message.OpGe:
		if f, ok := p.Val.AsFloat(); ok {
			return message.Float(f + float64(r.Intn(5))), true
		}
		return message.None(), false
	case message.OpBetween:
		lo, _ := p.Val.AsFloat()
		hi, _ := p.Hi.AsFloat()
		return message.Float(lo + (hi-lo)*r.Float64()), true
	case message.OpPrefix:
		return message.String(p.Val.Str() + randWord(r, 3)), true
	case message.OpSuffix:
		return message.String(randWord(r, 3) + p.Val.Str()), true
	case message.OpContains:
		return message.String(randWord(r, 2) + p.Val.Str() + randWord(r, 2)), true
	case message.OpExists:
		return message.Int(int64(r.Intn(10))), true
	default: // NotExists: no pair at all
		return message.None(), false
	}
}

// eventSatisfying builds an event that matches the subscription, by
// construction, plus noise pairs.
func eventSatisfying(r *rand.Rand, s message.Subscription) (message.Event, bool) {
	var ev message.Event
	for _, p := range s.Preds {
		if p.Op == message.OpNotExists {
			continue // satisfied by absence
		}
		v, ok := satisfyingValue(r, p)
		if !ok {
			return message.Event{}, false
		}
		ev.Add(p.Attr, v)
	}
	// Noise that must not break matching (avoid attributes of s).
	for i := 0; i < r.Intn(3); i++ {
		ev.Add("noise-"+randWord(r, 2), randValue(r))
	}
	if ev.Len() == 0 {
		ev.Add("noise", message.Int(1))
	}
	return ev, true
}

// TestQuickCoversIsSound: whenever Covers(a, b) holds, every event
// (constructed to) match b must match a.
func TestQuickCoversIsSound(t *testing.T) {
	r := rand.New(rand.NewSource(404))
	covered := 0
	for trial := 0; trial < 4000; trial++ {
		a := randSubscription(r, 1)
		b := randSubscription(r, 2)
		// Bias: half the time derive b from a by narrowing, so that
		// Covers fires often enough to test the sound direction.
		if trial%2 == 0 {
			b = a.Clone()
			b.ID = 2
			if len(b.Preds) > 0 && r.Intn(2) == 0 {
				b.Preds = append(b.Preds, randPredicate(r))
			}
		}
		if !Covers(a, b) {
			continue
		}
		covered++
		for k := 0; k < 20; k++ {
			ev, ok := eventSatisfying(r, b)
			if !ok {
				break
			}
			if !b.Matches(ev) {
				continue // construction failed (e.g. conflicting preds); not a covering question
			}
			if !a.Matches(ev) {
				t.Fatalf("UNSOUND: Covers(a,b) but event matches only b\n a=%v\n b=%v\n e=%v", a, b, ev)
			}
		}
	}
	if covered < 100 {
		t.Fatalf("only %d covered pairs exercised; generator too weak", covered)
	}
}

// TestQuickCoversReflexiveTransitive: Covers is a preorder.
func TestQuickCoversReflexiveTransitive(t *testing.T) {
	r := rand.New(rand.NewSource(405))
	for trial := 0; trial < 500; trial++ {
		a := randSubscription(r, 1)
		if !Covers(a, a) {
			t.Fatalf("Covers not reflexive on %v", a)
		}
	}
	// Transitivity over a chain of narrowing ranges.
	wide := sub(message.Pred("x", message.OpGe, message.Int(0)))
	mid := sub(message.Pred("x", message.OpGe, message.Int(5)))
	tight := sub(message.Pred("x", message.OpGe, message.Int(9)))
	if !Covers(wide, mid) || !Covers(mid, tight) || !Covers(wide, tight) {
		t.Error("transitivity broken on range chain")
	}
}
