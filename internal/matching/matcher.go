// Package matching implements the content-based matching algorithms that
// S-ToPSS builds on. The paper (§3.1) extends "existing matching
// algorithms" and cites two: the counting algorithm of Aguilera et al.
// (PODC 1999) and the clustering/access-predicate algorithm of Fabret et
// al. (SIGMOD 2001). Both are implemented here, together with a naive
// linear-scan matcher that serves as the correctness oracle and scaling
// baseline.
//
// All matchers implement Matcher and must produce exactly the matches of
// the reference semantics message.Subscription.Matches; the property
// tests in this package enforce pairwise agreement on random workloads.
//
// Matchers are not safe for concurrent use; the broker layer serializes
// access (see internal/broker).
package matching

import (
	"fmt"
	"sort"

	"stopss/internal/message"
)

// Matcher indexes subscriptions and matches events against them.
type Matcher interface {
	// Add indexes the subscription. Adding an ID that is already
	// present is an error.
	Add(sub message.Subscription) error
	// Remove deletes the subscription and reports whether it existed.
	Remove(id message.SubID) bool
	// Match returns the IDs of all subscriptions satisfied by the
	// event, in ascending order.
	Match(e message.Event) []message.SubID
	// Size reports the number of indexed subscriptions.
	Size() int
	// Name identifies the algorithm for reports and benchmarks.
	Name() string
}

// New constructs a matcher by algorithm name: "naive", "counting",
// "cluster" or "tree".
func New(algorithm string) (Matcher, error) {
	switch algorithm {
	case "naive":
		return NewNaive(), nil
	case "counting":
		return NewCounting(), nil
	case "cluster":
		return NewCluster(), nil
	case "tree":
		return NewTree(), nil
	default:
		return nil, fmt.Errorf("matching: unknown algorithm %q (want naive, counting, cluster or tree)", algorithm)
	}
}

// Algorithms lists the available matcher names in a stable order.
func Algorithms() []string { return []string{"naive", "counting", "cluster", "tree"} }

// Naive is the brute-force matcher: it evaluates every subscription
// against every event. It is the oracle for the indexed matchers and the
// lower baseline for experiment T3.
type Naive struct {
	subs map[message.SubID]message.Subscription
}

// NewNaive returns an empty naive matcher.
func NewNaive() *Naive {
	return &Naive{subs: make(map[message.SubID]message.Subscription)}
}

// Name implements Matcher.
func (m *Naive) Name() string { return "naive" }

// Size implements Matcher.
func (m *Naive) Size() int { return len(m.subs) }

// Add implements Matcher.
func (m *Naive) Add(sub message.Subscription) error {
	if err := sub.Validate(); err != nil {
		return err
	}
	if _, dup := m.subs[sub.ID]; dup {
		return fmt.Errorf("matching: subscription %d already indexed", sub.ID)
	}
	m.subs[sub.ID] = sub.Clone()
	return nil
}

// Remove implements Matcher.
func (m *Naive) Remove(id message.SubID) bool {
	if _, ok := m.subs[id]; !ok {
		return false
	}
	delete(m.subs, id)
	return true
}

// Match implements Matcher.
func (m *Naive) Match(e message.Event) []message.SubID {
	var out []message.SubID
	for id, s := range m.subs {
		if s.Matches(e) {
			out = append(out, id)
		}
	}
	sortIDs(out)
	return out
}

func sortIDs(ids []message.SubID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
