// Package matching implements the content-based matching algorithms that
// S-ToPSS builds on. The paper (§3.1) extends "existing matching
// algorithms" and cites two: the counting algorithm of Aguilera et al.
// (PODC 1999) and the clustering/access-predicate algorithm of Fabret et
// al. (SIGMOD 2001). Both are implemented here, together with a matching
// tree and a naive linear-scan matcher that serves as the correctness
// oracle and scaling baseline.
//
// Since PR 9 the matchers share a query-optimizer front end (plan.go):
// subscriptions compile once into a canonical *Plan — predicates
// deduplicated and ordered cheapest/most-selective first — and plans are
// cached so duplicate subscriptions share one compiled form. All
// matchers must produce exactly the matches of the reference semantics
// message.Subscription.Matches; the property tests in this package
// enforce pairwise agreement on random workloads.
//
// Matchers are not safe for concurrent use; the engine/broker layers
// serialize access (see internal/core, internal/broker).
package matching

import (
	"fmt"
	"sort"

	"stopss/internal/message"
)

// Matcher indexes compiled subscription plans and matches events against
// them. The compile step is shared across implementations (Compile,
// Reestimate and PlanStats are provided by the embedded planner); Add,
// Remove and Match are the algorithm-specific surface.
type Matcher interface {
	// Compile validates the subscription and returns its plan. Plans
	// are cached by the subscription's canonical predicate form, so
	// compiling a duplicate subscription returns the shared plan.
	Compile(sub message.Subscription) (*Plan, error)
	// Add indexes the plan under the given subscription ID. The plan
	// must come from this matcher's Compile. Adding an ID that is
	// already present is an error.
	Add(id message.SubID, p *Plan) error
	// Remove deletes the subscription and reports whether it existed.
	Remove(id message.SubID) bool
	// Match appends the IDs of all subscriptions satisfied by the
	// event to scratch and returns the extended slice. The appended
	// region is sorted ascending. Passing nil scratch allocates.
	Match(e message.Event, scratch []message.SubID) []message.SubID
	// Reestimate re-orders cached plans under current selectivity
	// statistics; engines call it after knowledge re-indexing.
	Reestimate()
	// PlanStats reports plan-cache hit/miss counters and sizes.
	PlanStats() PlanStats
	// Size reports the number of indexed subscriptions.
	Size() int
	// Name identifies the algorithm for reports and benchmarks.
	Name() string
}

// Index is the compile-and-add convenience used by tests, benchmarks and
// single-subscription call sites.
func Index(m Matcher, sub message.Subscription) error {
	p, err := m.Compile(sub)
	if err != nil {
		return err
	}
	return m.Add(sub.ID, p)
}

// New constructs a matcher by algorithm name: "naive", "counting",
// "cluster" or "tree".
func New(algorithm string) (Matcher, error) {
	switch algorithm {
	case "naive":
		return NewNaive(), nil
	case "counting":
		return NewCounting(), nil
	case "cluster":
		return NewCluster(), nil
	case "tree":
		return NewTree(), nil
	default:
		return nil, fmt.Errorf("matching: unknown algorithm %q (want naive, counting, cluster or tree)", algorithm)
	}
}

// Algorithms lists the available matcher names in a stable order.
func Algorithms() []string { return []string{"naive", "counting", "cluster", "tree"} }

// Naive is the brute-force matcher: it evaluates every subscription's
// plan against every event. It is the oracle for the indexed matchers
// and the lower baseline for experiment T3. Even the oracle benefits
// from the optimizer front end: shared plans and pushdown ordering make
// its full scan an honest lower bound rather than a strawman.
type Naive struct {
	planner
	subs map[message.SubID]*Plan
}

// NewNaive returns an empty naive matcher.
func NewNaive() *Naive {
	return &Naive{planner: newPlanner(), subs: make(map[message.SubID]*Plan)}
}

// Name implements Matcher.
func (m *Naive) Name() string { return "naive" }

// Size implements Matcher.
func (m *Naive) Size() int { return len(m.subs) }

// Add implements Matcher.
func (m *Naive) Add(id message.SubID, p *Plan) error {
	if p == nil {
		return fmt.Errorf("matching: nil plan for subscription %d", id)
	}
	if _, dup := m.subs[id]; dup {
		return fmt.Errorf("matching: subscription %d already indexed", id)
	}
	m.subs[id] = p
	m.retain(p)
	return nil
}

// Remove implements Matcher.
func (m *Naive) Remove(id message.SubID) bool {
	p, ok := m.subs[id]
	if !ok {
		return false
	}
	delete(m.subs, id)
	m.release(p)
	return true
}

// Match implements Matcher.
func (m *Naive) Match(e message.Event, scratch []message.SubID) []message.SubID {
	m.view.reset(e)
	out, start := scratch, len(scratch)
	for id, p := range m.subs {
		if p.eval(&m.view) {
			out = append(out, id)
		}
	}
	sortIDs(out[start:])
	return out
}

func sortIDs(ids []message.SubID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
